# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart" "--steps=2000" "--nproc=3")
set_tests_properties([=[example_quickstart]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;73;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_matmul]=] "/root/repo/build/examples/matmul" "--n=48" "--nproc=3")
set_tests_properties([=[example_matmul]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;74;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_jacobi]=] "/root/repo/build/examples/jacobi" "--n=24" "--nproc=3" "--tol=1e-3")
set_tests_properties([=[example_jacobi]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;75;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_gauss]=] "/root/repo/build/examples/gauss" "--n=32" "--nproc=3")
set_tests_properties([=[example_gauss]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;76;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_pipeline]=] "/root/repo/build/examples/pipeline" "--items=300" "--nproc=4")
set_tests_properties([=[example_pipeline]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;77;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_quadrature]=] "/root/repo/build/examples/quadrature" "--nproc=3")
set_tests_properties([=[example_quadrature]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;78;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_nbody]=] "/root/repo/build/examples/nbody" "--n=64" "--steps=2" "--nproc=3")
set_tests_properties([=[example_nbody]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;79;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_portability_tour]=] "/root/repo/build/examples/portability_tour" "--nproc=3" "--iters=800")
set_tests_properties([=[example_portability_tour]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;80;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_saxpy_force]=] "/root/repo/build/examples/saxpy_force" "3")
set_tests_properties([=[example_saxpy_force]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;82;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_treewalk_force]=] "/root/repo/build/examples/treewalk_force" "3")
set_tests_properties([=[example_treewalk_force]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;83;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_stencil_force]=] "/root/repo/build/examples/stencil_force" "3")
set_tests_properties([=[example_stencil_force]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;84;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_multifile_force]=] "/root/repo/build/examples/multifile_force" "3")
set_tests_properties([=[example_multifile_force]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;85;add_test;/root/repo/examples/CMakeLists.txt;0;")
