# Empty dependencies file for multifile_force.
# This may be replaced when dependencies are built.
