file(REMOVE_RECURSE
  "CMakeFiles/multifile_force.dir/multi_main_gen.cpp.o"
  "CMakeFiles/multifile_force.dir/multi_main_gen.cpp.o.d"
  "CMakeFiles/multifile_force.dir/multi_stats_gen.cpp.o"
  "CMakeFiles/multifile_force.dir/multi_stats_gen.cpp.o.d"
  "multi_main_gen.cpp"
  "multi_stats_gen.cpp"
  "multifile_force"
  "multifile_force.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multifile_force.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
