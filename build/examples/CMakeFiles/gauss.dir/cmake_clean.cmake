file(REMOVE_RECURSE
  "CMakeFiles/gauss.dir/gauss.cpp.o"
  "CMakeFiles/gauss.dir/gauss.cpp.o.d"
  "gauss"
  "gauss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
