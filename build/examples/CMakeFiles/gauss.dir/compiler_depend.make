# Empty compiler generated dependencies file for gauss.
# This may be replaced when dependencies are built.
