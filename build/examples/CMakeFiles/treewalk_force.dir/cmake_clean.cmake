file(REMOVE_RECURSE
  "CMakeFiles/treewalk_force.dir/treewalk_gen.cpp.o"
  "CMakeFiles/treewalk_force.dir/treewalk_gen.cpp.o.d"
  "treewalk_force"
  "treewalk_force.pdb"
  "treewalk_gen.cpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewalk_force.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
