# Empty dependencies file for treewalk_force.
# This may be replaced when dependencies are built.
