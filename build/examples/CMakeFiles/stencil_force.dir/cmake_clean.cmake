file(REMOVE_RECURSE
  "CMakeFiles/stencil_force.dir/stencil_gen.cpp.o"
  "CMakeFiles/stencil_force.dir/stencil_gen.cpp.o.d"
  "stencil_force"
  "stencil_force.pdb"
  "stencil_gen.cpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_force.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
