# Empty compiler generated dependencies file for stencil_force.
# This may be replaced when dependencies are built.
