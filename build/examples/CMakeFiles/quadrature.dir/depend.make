# Empty dependencies file for quadrature.
# This may be replaced when dependencies are built.
