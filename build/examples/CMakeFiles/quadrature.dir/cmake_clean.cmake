file(REMOVE_RECURSE
  "CMakeFiles/quadrature.dir/quadrature.cpp.o"
  "CMakeFiles/quadrature.dir/quadrature.cpp.o.d"
  "quadrature"
  "quadrature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quadrature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
