file(REMOVE_RECURSE
  "CMakeFiles/portability_tour.dir/portability_tour.cpp.o"
  "CMakeFiles/portability_tour.dir/portability_tour.cpp.o.d"
  "portability_tour"
  "portability_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portability_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
