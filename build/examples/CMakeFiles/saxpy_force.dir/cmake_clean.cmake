file(REMOVE_RECURSE
  "CMakeFiles/saxpy_force.dir/saxpy_gen.cpp.o"
  "CMakeFiles/saxpy_force.dir/saxpy_gen.cpp.o.d"
  "saxpy_force"
  "saxpy_force.pdb"
  "saxpy_gen.cpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saxpy_force.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
