# Empty compiler generated dependencies file for saxpy_force.
# This may be replaced when dependencies are built.
