file(REMOVE_RECURSE
  "CMakeFiles/test_portability.dir/test_portability.cpp.o"
  "CMakeFiles/test_portability.dir/test_portability.cpp.o.d"
  "test_portability"
  "test_portability.pdb"
  "test_portability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
