# Empty dependencies file for test_portability.
# This may be replaced when dependencies are built.
