file(REMOVE_RECURSE
  "CMakeFiles/test_doall.dir/test_doall.cpp.o"
  "CMakeFiles/test_doall.dir/test_doall.cpp.o.d"
  "test_doall"
  "test_doall.pdb"
  "test_doall[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_doall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
