# Empty compiler generated dependencies file for test_doall.
# This may be replaced when dependencies are built.
