file(REMOVE_RECURSE
  "CMakeFiles/test_preproc_macro.dir/test_preproc_macro.cpp.o"
  "CMakeFiles/test_preproc_macro.dir/test_preproc_macro.cpp.o.d"
  "test_preproc_macro"
  "test_preproc_macro.pdb"
  "test_preproc_macro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preproc_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
