# Empty dependencies file for test_preproc_macro.
# This may be replaced when dependencies are built.
