file(REMOVE_RECURSE
  "CMakeFiles/test_preproc_translate.dir/test_preproc_translate.cpp.o"
  "CMakeFiles/test_preproc_translate.dir/test_preproc_translate.cpp.o.d"
  "test_preproc_translate"
  "test_preproc_translate.pdb"
  "test_preproc_translate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preproc_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
