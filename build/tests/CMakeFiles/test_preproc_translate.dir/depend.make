# Empty dependencies file for test_preproc_translate.
# This may be replaced when dependencies are built.
