# Empty dependencies file for test_pcase.
# This may be replaced when dependencies are built.
