file(REMOVE_RECURSE
  "CMakeFiles/test_pcase.dir/test_pcase.cpp.o"
  "CMakeFiles/test_pcase.dir/test_pcase.cpp.o.d"
  "test_pcase"
  "test_pcase.pdb"
  "test_pcase[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
