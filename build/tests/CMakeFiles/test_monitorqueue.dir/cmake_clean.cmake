file(REMOVE_RECURSE
  "CMakeFiles/test_monitorqueue.dir/test_monitorqueue.cpp.o"
  "CMakeFiles/test_monitorqueue.dir/test_monitorqueue.cpp.o.d"
  "test_monitorqueue"
  "test_monitorqueue.pdb"
  "test_monitorqueue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monitorqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
