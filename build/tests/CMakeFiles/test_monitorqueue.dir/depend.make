# Empty dependencies file for test_monitorqueue.
# This may be replaced when dependencies are built.
