# Empty dependencies file for test_resolve.
# This may be replaced when dependencies are built.
