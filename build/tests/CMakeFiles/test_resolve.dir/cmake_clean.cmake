file(REMOVE_RECURSE
  "CMakeFiles/test_resolve.dir/test_resolve.cpp.o"
  "CMakeFiles/test_resolve.dir/test_resolve.cpp.o.d"
  "test_resolve"
  "test_resolve.pdb"
  "test_resolve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
