# Empty dependencies file for test_hepcell.
# This may be replaced when dependencies are built.
