file(REMOVE_RECURSE
  "CMakeFiles/test_hepcell.dir/test_hepcell.cpp.o"
  "CMakeFiles/test_hepcell.dir/test_hepcell.cpp.o.d"
  "test_hepcell"
  "test_hepcell.pdb"
  "test_hepcell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hepcell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
