# Empty compiler generated dependencies file for test_module.
# This may be replaced when dependencies are built.
