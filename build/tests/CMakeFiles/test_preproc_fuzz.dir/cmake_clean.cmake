file(REMOVE_RECURSE
  "CMakeFiles/test_preproc_fuzz.dir/test_preproc_fuzz.cpp.o"
  "CMakeFiles/test_preproc_fuzz.dir/test_preproc_fuzz.cpp.o.d"
  "test_preproc_fuzz"
  "test_preproc_fuzz.pdb"
  "test_preproc_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preproc_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
