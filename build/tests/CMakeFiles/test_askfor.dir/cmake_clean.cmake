file(REMOVE_RECURSE
  "CMakeFiles/test_askfor.dir/test_askfor.cpp.o"
  "CMakeFiles/test_askfor.dir/test_askfor.cpp.o.d"
  "test_askfor"
  "test_askfor.pdb"
  "test_askfor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_askfor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
