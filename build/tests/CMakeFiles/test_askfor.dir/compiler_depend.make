# Empty compiler generated dependencies file for test_askfor.
# This may be replaced when dependencies are built.
