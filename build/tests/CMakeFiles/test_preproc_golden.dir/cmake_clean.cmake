file(REMOVE_RECURSE
  "CMakeFiles/test_preproc_golden.dir/test_preproc_golden.cpp.o"
  "CMakeFiles/test_preproc_golden.dir/test_preproc_golden.cpp.o.d"
  "test_preproc_golden"
  "test_preproc_golden.pdb"
  "test_preproc_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preproc_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
