# Empty dependencies file for test_force_driver.
# This may be replaced when dependencies are built.
