file(REMOVE_RECURSE
  "CMakeFiles/test_force_driver.dir/test_force_driver.cpp.o"
  "CMakeFiles/test_force_driver.dir/test_force_driver.cpp.o.d"
  "test_force_driver"
  "test_force_driver.pdb"
  "test_force_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_force_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
