file(REMOVE_RECURSE
  "CMakeFiles/test_preproc_pass1.dir/test_preproc_pass1.cpp.o"
  "CMakeFiles/test_preproc_pass1.dir/test_preproc_pass1.cpp.o.d"
  "test_preproc_pass1"
  "test_preproc_pass1.pdb"
  "test_preproc_pass1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preproc_pass1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
