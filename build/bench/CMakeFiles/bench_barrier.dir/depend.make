# Empty dependencies file for bench_barrier.
# This may be replaced when dependencies are built.
