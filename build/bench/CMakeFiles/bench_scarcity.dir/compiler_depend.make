# Empty compiler generated dependencies file for bench_scarcity.
# This may be replaced when dependencies are built.
