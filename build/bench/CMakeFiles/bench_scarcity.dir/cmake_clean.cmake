file(REMOVE_RECURSE
  "CMakeFiles/bench_scarcity.dir/bench_scarcity.cpp.o"
  "CMakeFiles/bench_scarcity.dir/bench_scarcity.cpp.o.d"
  "bench_scarcity"
  "bench_scarcity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scarcity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
