# Empty dependencies file for bench_programs.
# This may be replaced when dependencies are built.
