file(REMOVE_RECURSE
  "CMakeFiles/bench_programs.dir/bench_programs.cpp.o"
  "CMakeFiles/bench_programs.dir/bench_programs.cpp.o.d"
  "bench_programs"
  "bench_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
