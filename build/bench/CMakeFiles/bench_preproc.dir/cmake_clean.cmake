file(REMOVE_RECURSE
  "CMakeFiles/bench_preproc.dir/bench_preproc.cpp.o"
  "CMakeFiles/bench_preproc.dir/bench_preproc.cpp.o.d"
  "bench_preproc"
  "bench_preproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_preproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
