# Empty compiler generated dependencies file for bench_preproc.
# This may be replaced when dependencies are built.
