file(REMOVE_RECURSE
  "CMakeFiles/bench_process.dir/bench_process.cpp.o"
  "CMakeFiles/bench_process.dir/bench_process.cpp.o.d"
  "bench_process"
  "bench_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
