# Empty compiler generated dependencies file for bench_askfor.
# This may be replaced when dependencies are built.
