file(REMOVE_RECURSE
  "CMakeFiles/bench_askfor.dir/bench_askfor.cpp.o"
  "CMakeFiles/bench_askfor.dir/bench_askfor.cpp.o.d"
  "bench_askfor"
  "bench_askfor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_askfor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
