file(REMOVE_RECURSE
  "CMakeFiles/forcepp.dir/preproc/forcepp_main.cpp.o"
  "CMakeFiles/forcepp.dir/preproc/forcepp_main.cpp.o.d"
  "forcepp"
  "forcepp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forcepp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
