# Empty compiler generated dependencies file for forcepp.
# This may be replaced when dependencies are built.
