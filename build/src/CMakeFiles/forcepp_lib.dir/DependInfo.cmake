
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/preproc/diag.cpp" "src/CMakeFiles/forcepp_lib.dir/preproc/diag.cpp.o" "gcc" "src/CMakeFiles/forcepp_lib.dir/preproc/diag.cpp.o.d"
  "/root/repo/src/preproc/driver_gen.cpp" "src/CMakeFiles/forcepp_lib.dir/preproc/driver_gen.cpp.o" "gcc" "src/CMakeFiles/forcepp_lib.dir/preproc/driver_gen.cpp.o.d"
  "/root/repo/src/preproc/machmacros.cpp" "src/CMakeFiles/forcepp_lib.dir/preproc/machmacros.cpp.o" "gcc" "src/CMakeFiles/forcepp_lib.dir/preproc/machmacros.cpp.o.d"
  "/root/repo/src/preproc/macro.cpp" "src/CMakeFiles/forcepp_lib.dir/preproc/macro.cpp.o" "gcc" "src/CMakeFiles/forcepp_lib.dir/preproc/macro.cpp.o.d"
  "/root/repo/src/preproc/pass1.cpp" "src/CMakeFiles/forcepp_lib.dir/preproc/pass1.cpp.o" "gcc" "src/CMakeFiles/forcepp_lib.dir/preproc/pass1.cpp.o.d"
  "/root/repo/src/preproc/textutil.cpp" "src/CMakeFiles/forcepp_lib.dir/preproc/textutil.cpp.o" "gcc" "src/CMakeFiles/forcepp_lib.dir/preproc/textutil.cpp.o.d"
  "/root/repo/src/preproc/translate.cpp" "src/CMakeFiles/forcepp_lib.dir/preproc/translate.cpp.o" "gcc" "src/CMakeFiles/forcepp_lib.dir/preproc/translate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/force.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
