file(REMOVE_RECURSE
  "libforcepp_lib.a"
)
