file(REMOVE_RECURSE
  "CMakeFiles/forcepp_lib.dir/preproc/diag.cpp.o"
  "CMakeFiles/forcepp_lib.dir/preproc/diag.cpp.o.d"
  "CMakeFiles/forcepp_lib.dir/preproc/driver_gen.cpp.o"
  "CMakeFiles/forcepp_lib.dir/preproc/driver_gen.cpp.o.d"
  "CMakeFiles/forcepp_lib.dir/preproc/machmacros.cpp.o"
  "CMakeFiles/forcepp_lib.dir/preproc/machmacros.cpp.o.d"
  "CMakeFiles/forcepp_lib.dir/preproc/macro.cpp.o"
  "CMakeFiles/forcepp_lib.dir/preproc/macro.cpp.o.d"
  "CMakeFiles/forcepp_lib.dir/preproc/pass1.cpp.o"
  "CMakeFiles/forcepp_lib.dir/preproc/pass1.cpp.o.d"
  "CMakeFiles/forcepp_lib.dir/preproc/textutil.cpp.o"
  "CMakeFiles/forcepp_lib.dir/preproc/textutil.cpp.o.d"
  "CMakeFiles/forcepp_lib.dir/preproc/translate.cpp.o"
  "CMakeFiles/forcepp_lib.dir/preproc/translate.cpp.o.d"
  "libforcepp_lib.a"
  "libforcepp_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forcepp_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
