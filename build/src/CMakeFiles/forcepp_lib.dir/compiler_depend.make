# Empty compiler generated dependencies file for forcepp_lib.
# This may be replaced when dependencies are built.
