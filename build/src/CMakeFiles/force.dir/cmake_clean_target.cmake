file(REMOVE_RECURSE
  "libforce.a"
)
