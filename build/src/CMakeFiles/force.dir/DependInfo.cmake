
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/askfor.cpp" "src/CMakeFiles/force.dir/core/askfor.cpp.o" "gcc" "src/CMakeFiles/force.dir/core/askfor.cpp.o.d"
  "/root/repo/src/core/barrier.cpp" "src/CMakeFiles/force.dir/core/barrier.cpp.o" "gcc" "src/CMakeFiles/force.dir/core/barrier.cpp.o.d"
  "/root/repo/src/core/critical.cpp" "src/CMakeFiles/force.dir/core/critical.cpp.o" "gcc" "src/CMakeFiles/force.dir/core/critical.cpp.o.d"
  "/root/repo/src/core/doall.cpp" "src/CMakeFiles/force.dir/core/doall.cpp.o" "gcc" "src/CMakeFiles/force.dir/core/doall.cpp.o.d"
  "/root/repo/src/core/env.cpp" "src/CMakeFiles/force.dir/core/env.cpp.o" "gcc" "src/CMakeFiles/force.dir/core/env.cpp.o.d"
  "/root/repo/src/core/force.cpp" "src/CMakeFiles/force.dir/core/force.cpp.o" "gcc" "src/CMakeFiles/force.dir/core/force.cpp.o.d"
  "/root/repo/src/core/module.cpp" "src/CMakeFiles/force.dir/core/module.cpp.o" "gcc" "src/CMakeFiles/force.dir/core/module.cpp.o.d"
  "/root/repo/src/core/pcase.cpp" "src/CMakeFiles/force.dir/core/pcase.cpp.o" "gcc" "src/CMakeFiles/force.dir/core/pcase.cpp.o.d"
  "/root/repo/src/core/resolve.cpp" "src/CMakeFiles/force.dir/core/resolve.cpp.o" "gcc" "src/CMakeFiles/force.dir/core/resolve.cpp.o.d"
  "/root/repo/src/core/site.cpp" "src/CMakeFiles/force.dir/core/site.cpp.o" "gcc" "src/CMakeFiles/force.dir/core/site.cpp.o.d"
  "/root/repo/src/machdep/arena.cpp" "src/CMakeFiles/force.dir/machdep/arena.cpp.o" "gcc" "src/CMakeFiles/force.dir/machdep/arena.cpp.o.d"
  "/root/repo/src/machdep/costmodel.cpp" "src/CMakeFiles/force.dir/machdep/costmodel.cpp.o" "gcc" "src/CMakeFiles/force.dir/machdep/costmodel.cpp.o.d"
  "/root/repo/src/machdep/hepcell.cpp" "src/CMakeFiles/force.dir/machdep/hepcell.cpp.o" "gcc" "src/CMakeFiles/force.dir/machdep/hepcell.cpp.o.d"
  "/root/repo/src/machdep/linkage.cpp" "src/CMakeFiles/force.dir/machdep/linkage.cpp.o" "gcc" "src/CMakeFiles/force.dir/machdep/linkage.cpp.o.d"
  "/root/repo/src/machdep/locks.cpp" "src/CMakeFiles/force.dir/machdep/locks.cpp.o" "gcc" "src/CMakeFiles/force.dir/machdep/locks.cpp.o.d"
  "/root/repo/src/machdep/machine.cpp" "src/CMakeFiles/force.dir/machdep/machine.cpp.o" "gcc" "src/CMakeFiles/force.dir/machdep/machine.cpp.o.d"
  "/root/repo/src/machdep/process.cpp" "src/CMakeFiles/force.dir/machdep/process.cpp.o" "gcc" "src/CMakeFiles/force.dir/machdep/process.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/force.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/force.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/force.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/force.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/force.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/force.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/force.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/force.dir/util/table.cpp.o.d"
  "/root/repo/src/util/timing.cpp" "src/CMakeFiles/force.dir/util/timing.cpp.o" "gcc" "src/CMakeFiles/force.dir/util/timing.cpp.o.d"
  "/root/repo/src/util/trace.cpp" "src/CMakeFiles/force.dir/util/trace.cpp.o" "gcc" "src/CMakeFiles/force.dir/util/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
