# Empty dependencies file for force.
# This may be replaced when dependencies are built.
