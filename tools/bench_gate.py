#!/usr/bin/env python3
"""Gate a fresh BENCH_*.json artifact against its committed baseline.

This is the single regression-gate mechanism for every CI bench job
(.github/workflows/ci.yml); the per-bench gate shell that used to live
inline in the workflow (and the --gate flag bench_process once carried)
is replaced by invocations of this script.

Contract (shared with bench/bench_common.hpp render_bench_json()):

  {
    "schema_version": <int>,        # must match between baseline/current
    "bench": "<name>",              # must match between baseline/current
    <flat metadata: strings/numbers>,
    "results": [ {flat row of strings/numbers}, ... ]
  }

Rows are identified by their string-valued fields (e.g. workload + model
+ mode); numeric fields are metrics. A gated metric may live at the top
level (e.g. thread_pooled_speedup) or per row (e.g. rel_throughput): the
script compares wherever the baseline carries it.

Usage:

  # schema-validate one artifact (the writer/gate contract check):
  bench_gate.py --check BENCH_apps.json

  # gate: fail if any gated metric regressed more than --max-regression:
  bench_gate.py --baseline BENCH_apps.json --current fresh/BENCH_apps.json \
      --metric rel_throughput --max-regression 1.5

  # build a conservative baseline: per-row/top-level minimum (maximum for
  # :lower metrics) of each gated metric across several runs of one bench:
  bench_gate.py --merge-min --out BENCH_apps.json \
      --metric rel_throughput run1.json run2.json run3.json

Metric direction defaults to higher-is-better; append ":lower" for
metrics where smaller is better (e.g. --metric ns_per_item:lower).

--merge-min exists because a baseline from a single run flakes on noisy
hosts: the gate only fires on drops below baseline / max-regression, so
recording the conservative envelope of N runs absorbs host noise without
loosening the budget (docs/VALIDATION.md, baseline refresh policy). All
non-gated fields are kept from the first input run.

Exit codes: 0 ok; 1 a gated metric regressed (or a baseline row/metric
disappeared from the current run); 2 schema violation, schema_version or
bench-name mismatch, or usage error.
"""

import argparse
import json
import sys


class GateError(Exception):
    """Schema violation or baseline/current incompatibility (exit 2)."""


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_doc(doc, path):
    """Checks one parsed artifact against the BENCH_*.json contract."""
    problems = []
    if not isinstance(doc, dict):
        raise GateError(f"{path}: top level must be a JSON object")
    if not isinstance(doc.get("schema_version"), int) or isinstance(
        doc.get("schema_version"), bool
    ):
        problems.append('missing or non-integer "schema_version"')
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        problems.append('missing or empty "bench" name')
    results = doc.get("results")
    if not isinstance(results, list):
        problems.append('"results" must be an array')
        results = []
    for key, value in doc.items():
        if key == "results":
            continue
        if not (isinstance(value, str) or is_number(value)):
            problems.append(f'top-level field "{key}" is not a string/number')
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            problems.append(f"results[{i}] is not an object")
            continue
        for key, value in row.items():
            if not (isinstance(value, str) or is_number(value)):
                problems.append(
                    f'results[{i}].{key} is not a string/number'
                )
    if problems:
        raise GateError(
            f"{path}: does not match the BENCH_*.json schema "
            f"(bench_common.hpp render_bench_json):\n  - "
            + "\n  - ".join(problems)
        )


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        raise GateError(f"cannot open {path}: {e}") from e
    except json.JSONDecodeError as e:
        raise GateError(f"{path}: not valid JSON: {e}") from e
    validate_doc(doc, path)
    return doc


def row_identity(row):
    """A row is addressed by its string-valued fields, order-independent."""
    return tuple(sorted((k, v) for k, v in row.items() if isinstance(v, str)))


def parse_metric(spec):
    name, sep, direction = spec.partition(":")
    if not name or (sep and direction not in ("higher", "lower")):
        raise GateError(
            f"bad --metric '{spec}': expected name[:higher|:lower]"
        )
    return name, (direction or "higher")


def compare(label, metric, direction, base, cur, max_regression):
    """One gate line; returns True when within the allowed regression."""
    if base <= 0.0:
        print(f"gate: {label:<44} baseline {base:.3f} <= 0, skipped")
        return True
    if direction == "higher":
        floor = base / max_regression
        ok = cur >= floor
        print(
            f"gate: {label:<44} baseline {base:.3f}, current {cur:.3f}, "
            f"floor {floor:.3f} -> {'ok' if ok else 'REGRESSED'}"
        )
    else:
        ceiling = base * max_regression
        ok = cur <= ceiling
        print(
            f"gate: {label:<44} baseline {base:.3f}, current {cur:.3f}, "
            f"ceiling {ceiling:.3f} -> {'ok' if ok else 'REGRESSED'}"
        )
    return ok


def gate(baseline, current, metrics, max_regression, baseline_path,
         current_path):
    if baseline["schema_version"] != current["schema_version"]:
        raise GateError(
            f"schema_version mismatch: baseline {baseline_path} has "
            f"{baseline['schema_version']}, current {current_path} has "
            f"{current['schema_version']}. The committed baseline is stale "
            "- regenerate it with the current bench writer and commit the "
            "refreshed record (docs/VALIDATION.md, baseline refresh policy)."
        )
    if baseline["bench"] != current["bench"]:
        raise GateError(
            f"bench name mismatch: baseline '{baseline['bench']}' vs "
            f"current '{current['bench']}' - wrong artifact passed?"
        )

    current_rows = {}
    for row in current.get("results", []):
        current_rows.setdefault(row_identity(row), []).append(row)

    ok = True
    for name, direction in metrics:
        compared = 0
        # Top-level metric (e.g. the force_entry speedup ratios).
        if is_number(baseline.get(name)):
            if not is_number(current.get(name)):
                print(f"gate: FAILED - top-level metric '{name}' is in the "
                      f"baseline but missing from {current_path}")
                ok = False
            else:
                ok = compare(name, name, direction, float(baseline[name]),
                             float(current[name]), max_regression) and ok
            compared += 1
        # Per-row metric, keyed by the row's string fields.
        for row in baseline.get("results", []):
            if not is_number(row.get(name)):
                continue
            compared += 1
            identity = row_identity(row)
            label = "/".join(v for _, v in identity) or "<row>"
            matches = current_rows.get(identity, [])
            if not matches:
                print(f"gate: FAILED - baseline row {label} has no "
                      f"counterpart in {current_path}")
                ok = False
                continue
            if len(matches) > 1:
                print(f"gate: FAILED - row {label} is ambiguous in "
                      f"{current_path} ({len(matches)} matches)")
                ok = False
                continue
            if not is_number(matches[0].get(name)):
                print(f"gate: FAILED - row {label} in {current_path} lacks "
                      f"metric '{name}'")
                ok = False
                continue
            ok = compare(f"{label} {name}", name, direction,
                         float(row[name]), float(matches[0][name]),
                         max_regression) and ok
        if compared == 0:
            raise GateError(
                f"metric '{name}' appears nowhere in baseline "
                f"{baseline_path} - typo, or the baseline predates it?"
            )
    return ok


def merge_min(docs, metrics, paths):
    """Conservative baseline: per-metric min (max for :lower) across runs.

    Every doc must describe the same bench at the same schema_version and
    carry the same row identities; all non-gated fields come from the
    first run.
    """
    base = docs[0]
    for doc, path in zip(docs[1:], paths[1:]):
        if doc["schema_version"] != base["schema_version"]:
            raise GateError(f"{path}: schema_version differs from {paths[0]}")
        if doc["bench"] != base["bench"]:
            raise GateError(f"{path}: bench name differs from {paths[0]}")

    def envelope(values, direction):
        return min(values) if direction == "higher" else max(values)

    merged = dict(base)
    merged["results"] = [dict(row) for row in base.get("results", [])]
    row_sets = []
    for doc, path in zip(docs, paths):
        rows = {}
        for row in doc.get("results", []):
            identity = row_identity(row)
            if identity in rows:
                raise GateError(f"{path}: ambiguous row {identity}")
            rows[identity] = row
        row_sets.append((rows, path))
    for name, direction in metrics:
        touched = 0
        if is_number(base.get(name)):
            values = []
            for doc, path in zip(docs, paths):
                if not is_number(doc.get(name)):
                    raise GateError(
                        f"{path}: top-level metric '{name}' missing"
                    )
                values.append(float(doc[name]))
            merged[name] = envelope(values, direction)
            touched += 1
        for row in merged["results"]:
            if not is_number(row.get(name)):
                continue
            identity = row_identity(row)
            values = []
            for rows, path in row_sets:
                other = rows.get(identity)
                label = "/".join(v for _, v in identity) or "<row>"
                if other is None or not is_number(other.get(name)):
                    raise GateError(
                        f"{path}: row {label} missing metric '{name}'"
                    )
                values.append(float(other[name]))
            row[name] = envelope(values, direction)
            touched += 1
        if touched == 0:
            raise GateError(
                f"metric '{name}' appears nowhere in {paths[0]}"
            )
    return merged


def render(doc):
    """Renders a merged doc in the same shape render_bench_json() emits."""
    lines = []
    for key, value in doc.items():
        if key == "results":
            continue
        lines.append(f"  {json.dumps(key)}: {json.dumps(value)}")
    rows = [
        "    {" + ", ".join(
            f"{json.dumps(k)}: {json.dumps(v)}" for k, v in row.items()
        ) + "}"
        for row in doc.get("results", [])
    ]
    return ("{\n" + ",\n".join(lines) + ",\n  \"results\": [\n"
            + ",\n".join(rows) + "\n  ]\n}\n")


def main(argv):
    parser = argparse.ArgumentParser(
        description="Gate BENCH_*.json artifacts against committed baselines."
    )
    parser.add_argument("--check", metavar="FILE",
                        help="schema-validate one artifact and exit")
    parser.add_argument("--baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("--current", help="freshly measured BENCH_*.json")
    parser.add_argument("--metric", action="append", default=[],
                        metavar="NAME[:higher|:lower]",
                        help="gated metric (repeatable); direction defaults "
                             "to higher-is-better")
    parser.add_argument("--max-regression", type=float, default=1.5,
                        help="allowed ratio vs baseline (default 1.5)")
    parser.add_argument("--merge-min", action="store_true",
                        help="write a conservative baseline: per-metric "
                             "min (max for :lower) across the given runs")
    parser.add_argument("--out", metavar="FILE",
                        help="output path for --merge-min")
    parser.add_argument("runs", nargs="*", metavar="RUN.json",
                        help="input runs for --merge-min")
    args = parser.parse_args(argv)

    try:
        if args.check:
            doc = load(args.check)
            print(f"{args.check}: schema ok (bench '{doc['bench']}', "
                  f"schema_version {doc['schema_version']}, "
                  f"{len(doc['results'])} rows)")
            return 0
        if args.merge_min:
            if not args.out or len(args.runs) < 2:
                parser.error("--merge-min needs --out FILE and >= 2 runs")
            if not args.metric:
                parser.error("at least one --metric is required")
            metrics = [parse_metric(m) for m in args.metric]
            docs = [load(p) for p in args.runs]
            merged = merge_min(docs, metrics, args.runs)
            with open(args.out, "w", encoding="utf-8") as f:
                f.write(render(merged))
            validate_doc(merged, args.out)
            print(f"bench_gate: wrote {args.out} (conservative envelope of "
                  f"{len(args.runs)} runs)")
            return 0
        if not args.baseline or not args.current:
            parser.error("--baseline and --current are required "
                         "(or use --check FILE)")
        if not args.metric:
            parser.error("at least one --metric is required")
        if args.max_regression <= 1.0:
            parser.error("--max-regression must be > 1.0")
        metrics = [parse_metric(m) for m in args.metric]
        baseline = load(args.baseline)
        current = load(args.current)
        ok = gate(baseline, current, metrics, args.max_regression,
                  args.baseline, args.current)
    except GateError as e:
        print(f"bench_gate: {e}", file=sys.stderr)
        return 2
    if not ok:
        print("bench_gate: FAILED - at least one gated metric regressed "
              f"more than {args.max_regression}x vs {args.baseline}",
              file=sys.stderr)
        return 1
    print(f"bench_gate: ok ({args.current} vs {args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
