#!/usr/bin/env python3
"""Validate (and optionally gate on) a forcepp --lint-report JSON artifact.

Contract (shared with preproc/lint.hpp render_lint_report()):

  {
    "schema_version": 1,
    "generator": "forcelint",
    "units": ["main.force", ...],
    "target_process_model": "thread" | "os-fork" | "cluster",
    "rules": ["R1", ...],
    "findings_are_errors": bool,
    "findings": [ {"rule", "severity", "file", "line", "col", "message"} ],
    "routines": [ {"name", "unit", "may_execute_collective",
                   "collective_on_straight_path", "calls_unresolved",
                   "async_top", "locks", "shared_writes", "callees",
                   "async"} ],
    "models": [ {"model", "compatible", "violations":
                 [{"construct", "file", "line", "reason"}]} ]
  }

Usage:

  # schema-validate one artifact (the writer/consumer contract check):
  lint_report_check.py --check lint_report.json

  # additionally require a model verdict - the admission gate a deploy
  # pipeline runs before selecting a process backend:
  lint_report_check.py --check --require-compatible os-fork report.json
  lint_report_check.py --check --require-incompatible os-fork report.json

Exit codes: 0 ok; 1 a required model verdict does not hold; 2 schema
violation or usage error. Mirrors tools/bench_gate.py --check for
BENCH_*.json.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1
MODELS = ("thread", "os-fork", "cluster")


class SchemaError(Exception):
    """Contract violation in the report artifact (exit 2)."""


def fail(cond, msg):
    if not cond:
        raise SchemaError(msg)


def check_report(report):
    fail(isinstance(report, dict), "report root must be an object")
    fail(report.get("schema_version") == SCHEMA_VERSION,
         "schema_version must be %d, got %r"
         % (SCHEMA_VERSION, report.get("schema_version")))
    fail(report.get("generator") == "forcelint",
         "generator must be 'forcelint'")

    units = report.get("units")
    fail(isinstance(units, list) and units, "units must be a non-empty list")
    fail(all(isinstance(u, str) for u in units), "units must be strings")

    fail(report.get("target_process_model") in MODELS,
         "target_process_model must be one of %s" % (MODELS,))

    rules = report.get("rules")
    fail(isinstance(rules, list) and rules, "rules must be a non-empty list")
    fail(isinstance(report.get("findings_are_errors"), bool),
         "findings_are_errors must be a bool")

    findings = report.get("findings")
    fail(isinstance(findings, list), "findings must be a list")
    for f in findings:
        for key in ("rule", "severity", "file", "message"):
            fail(isinstance(f.get(key), str),
                 "finding field %r must be a string: %r" % (key, f))
        for key in ("line", "col"):
            fail(isinstance(f.get(key), int),
                 "finding field %r must be an int: %r" % (key, f))
        fail(f["file"] in units,
             "finding names unknown unit %r" % f["file"])

    routines = report.get("routines")
    fail(isinstance(routines, list), "routines must be a list")
    for r in routines:
        for key in ("name", "unit"):
            fail(isinstance(r.get(key), str),
                 "routine field %r must be a string: %r" % (key, r))
        for key in ("may_execute_collective", "collective_on_straight_path",
                    "calls_unresolved", "async_top"):
            fail(isinstance(r.get(key), bool),
                 "routine field %r must be a bool: %r" % (key, r))
        for key in ("locks", "shared_writes", "callees"):
            fail(isinstance(r.get(key), list),
                 "routine field %r must be a list: %r" % (key, r))
        fail(isinstance(r.get("async"), dict),
             "routine field 'async' must be an object: %r" % r)
        fail(all(v in ("full", "empty", "unknown")
                 for v in r["async"].values()),
             "async states must be full/empty/unknown: %r" % r)

    models = report.get("models")
    fail(isinstance(models, list), "models must be a list")
    fail(tuple(m.get("model") for m in models) == MODELS,
         "models must cover exactly %s in order" % (MODELS,))
    for m in models:
        fail(isinstance(m.get("compatible"), bool),
             "model field 'compatible' must be a bool: %r" % m)
        violations = m.get("violations")
        fail(isinstance(violations, list),
             "model field 'violations' must be a list: %r" % m)
        fail(m["compatible"] == (not violations),
             "model %r: compatible flag contradicts its violations"
             % m["model"])
        for v in violations:
            for key in ("construct", "file", "reason"):
                fail(isinstance(v.get(key), str),
                     "violation field %r must be a string: %r" % (key, v))
            fail(isinstance(v.get("line"), int),
                 "violation field 'line' must be an int: %r" % v)
            fail(v["file"] in units,
                 "violation names unknown unit %r" % v["file"])
    thread = models[0]
    fail(thread["compatible"] and not thread["violations"],
         "the thread model accepts every construct by definition")


def verdict(report, model):
    for m in report["models"]:
        if m["model"] == model:
            return m["compatible"]
    raise SchemaError("model %r not in report" % model)


def main(argv):
    parser = argparse.ArgumentParser(
        description="validate a forcepp --lint-report JSON artifact")
    parser.add_argument("report", help="path to the lint report JSON")
    parser.add_argument("--check", action="store_true",
                        help="schema-validate the artifact")
    parser.add_argument("--require-compatible", metavar="MODEL",
                        choices=MODELS, default=None,
                        help="exit 1 unless the report lists MODEL "
                             "compatible")
    parser.add_argument("--require-incompatible", metavar="MODEL",
                        choices=MODELS, default=None,
                        help="exit 1 unless the report lists MODEL "
                             "incompatible")
    args = parser.parse_args(argv)
    if not (args.check or args.require_compatible
            or args.require_incompatible):
        parser.error("nothing to do: pass --check and/or --require-*")

    try:
        with open(args.report, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print("lint_report_check: cannot read %s: %s" % (args.report, e),
              file=sys.stderr)
        return 2

    try:
        check_report(report)
    except SchemaError as e:
        print("lint_report_check: %s: %s" % (args.report, e),
              file=sys.stderr)
        return 2

    rc = 0
    if args.require_compatible and not verdict(report,
                                               args.require_compatible):
        print("lint_report_check: %s is NOT %s-compatible"
              % (args.report, args.require_compatible), file=sys.stderr)
        rc = 1
    if args.require_incompatible and verdict(report,
                                             args.require_incompatible):
        print("lint_report_check: %s unexpectedly %s-compatible"
              % (args.report, args.require_incompatible), file=sys.stderr)
        rc = 1
    if rc == 0:
        print("lint_report_check: %s ok (units=%d, findings=%d)"
              % (args.report, len(report["units"]),
                 len(report["findings"])))
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
