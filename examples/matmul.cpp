// Dense matrix multiply C = A*B distributed with DOALL loops.
//
// The motivating workload class of the paper: regular numerical kernels
// that should run unchanged for any number of processes. Rows of C are
// distributed either prescheduled or selfscheduled; the result is verified
// against a sequential reference.
//
//   ./matmul --machine alliant --nproc 8 --n 192 --schedule selfsched
#include <cmath>
#include <cstdio>
#include <vector>

#include "theforce.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("machine", "native", "machine model")
      .option("nproc", "4", "force size")
      .option("n", "128", "matrix dimension")
      .option("schedule", "selfsched", "presched | selfsched | guided");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const std::string schedule = cli.get("schedule");

  // Deterministic inputs.
  force::util::Xoshiro256 rng(42);
  std::vector<double> a(n * n);
  std::vector<double> b(n * n);
  std::vector<double> c(n * n, 0.0);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  force::ForceConfig config;
  config.machine = cli.get("machine");
  config.nproc = static_cast<int>(cli.get_int("nproc"));
  force::Force f(config);

  force::util::WallTimer timer;
  timer.start();
  f.run([&](force::Ctx& ctx) {
    auto row_body = [&](std::int64_t i) {
      const double* arow = &a[static_cast<std::size_t>(i) * n];
      double* crow = &c[static_cast<std::size_t>(i) * n];
      for (std::size_t k = 0; k < n; ++k) {
        const double aik = arow[k];
        const double* brow = &b[k * n];
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    };
    const auto last = static_cast<std::int64_t>(n) - 1;
    if (schedule == "presched") {
      ctx.presched_do(0, last, 1, row_body);
    } else if (schedule == "guided") {
      ctx.guided_do(FORCE_SITE, 0, last, 1, row_body);
    } else {
      ctx.selfsched_do(FORCE_SITE, 0, last, 1, row_body);
    }
    ctx.barrier();
  });
  timer.stop();

  // Verify a deterministic sample of entries against a scalar reference.
  double max_err = 0.0;
  force::util::Xoshiro256 pick(7);
  for (int s = 0; s < 256; ++s) {
    const auto i = static_cast<std::size_t>(
        pick.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto j = static_cast<std::size_t>(
        pick.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    double ref = 0.0;
    for (std::size_t k = 0; k < n; ++k) ref += a[i * n + k] * b[k * n + j];
    max_err = std::fmax(max_err, std::fabs(ref - c[i * n + j]));
  }

  const auto& stats = f.env().stats();
  std::printf(
      "matmul n=%zu machine=%s np=%d schedule=%s: %s, max|err|=%.3g, "
      "dispatches=%llu\n",
      n, config.machine.c_str(), config.nproc, schedule.c_str(),
      force::util::format_duration_ns(
          static_cast<double>(timer.elapsed_ns()))
          .c_str(),
      max_err,
      static_cast<unsigned long long>(
          stats.doall_dispatches.load(std::memory_order_relaxed)));
  return max_err < 1e-9 ? 0 : 1;
}
