// Quickstart: a guided tour of the Force API.
//
// Computes pi by numerical integration three ways - prescheduled DOALL,
// selfscheduled DOALL and Askfor - on any of the seven machine models, and
// demonstrates barrier sections, critical sections and async variables.
//
//   ./quickstart --machine encore --nproc 8
#include <cmath>
#include <cstdio>

#include "theforce.hpp"
#include "util/cli.hpp"

namespace {

double integrand(double x) { return 4.0 / (1.0 + x * x); }

}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("machine", "native", "machine model to run on")
      .option("nproc", "4", "force size")
      .option("steps", "100000", "integration steps");
  if (!cli.parse(argc, argv)) return 0;

  force::ForceConfig config;
  config.machine = cli.get("machine");
  config.nproc = static_cast<int>(cli.get_int("nproc"));
  const std::int64_t steps = cli.get_int("steps");
  const double h = 1.0 / static_cast<double>(steps);

  force::Force f(config);
  // Shared variables live in the machine's shared arena, like Force
  // `Shared` declarations.
  auto& pi_presched = f.shared<double>("pi_presched");
  auto& pi_selfsched = f.shared<double>("pi_selfsched");
  auto& pi_askfor = f.shared<double>("pi_askfor");

  f.run([&](force::Ctx& ctx) {
    // --- prescheduled DOALL: iteration k to process k mod NP -------------
    double local = 0.0;
    ctx.presched_do(0, steps - 1, 1, [&](std::int64_t i) {
      local += h * integrand((static_cast<double>(i) + 0.5) * h);
    });
    // Critical section: sum the private partials into the shared result.
    ctx.critical(FORCE_SITE, [&] { pi_presched += local; });

    // Barrier with a section: one arbitrary process reports.
    ctx.barrier([&] {
      std::printf("presched  pi ~= %.9f (err %.2e)\n", pi_presched,
                  std::fabs(pi_presched - M_PI));
    });

    // --- selfscheduled DOALL: dynamic index claims ------------------------
    local = 0.0;
    ctx.selfsched_do(
        FORCE_SITE, 0, steps - 1, 1,
        [&](std::int64_t i) {
          local += h * integrand((static_cast<double>(i) + 0.5) * h);
        },
        /*chunk=*/256);
    ctx.critical(FORCE_SITE, [&] { pi_selfsched += local; });
    ctx.barrier([&] {
      std::printf("selfsched pi ~= %.9f (err %.2e)\n", pi_selfsched,
                  std::fabs(pi_selfsched - M_PI));
    });

    // --- Askfor: work generated at run time -------------------------------
    struct Strip {
      std::int64_t begin, end;
    };
    auto& monitor = ctx.askfor<Strip>(FORCE_SITE);
    if (ctx.leader()) {
      monitor.put({0, steps});  // one big strip; workers split it
    }
    ctx.barrier();
    local = 0.0;
    monitor.work([&](Strip& s, force::core::Askfor<Strip>& self) {
      if (s.end - s.begin > steps / 64) {
        const std::int64_t mid = s.begin + (s.end - s.begin) / 2;
        self.put({mid, s.end});  // new concurrent instance, at run time
        s.end = mid;
      }
      for (std::int64_t i = s.begin; i < s.end; ++i) {
        local += h * integrand((static_cast<double>(i) + 0.5) * h);
      }
    });
    ctx.critical(FORCE_SITE, [&] { pi_askfor += local; });
    ctx.barrier([&] {
      std::printf("askfor    pi ~= %.9f (err %.2e)\n", pi_askfor,
                  std::fabs(pi_askfor - M_PI));
    });

    // --- async variables: produce/consume ---------------------------------
    auto& token = ctx.async_var<int>(FORCE_SITE);
    if (ctx.me() == 1) token.produce(ctx.np());
    ctx.barrier([&] {
      int v = token.consume();
      std::printf("async token consumed: %d (hardware full/empty: %s)\n", v,
                  token.uses_hardware_path() ? "yes" : "no");
    });
  });

  const auto& machine = f.env().machine();
  std::printf("ran on machine '%s' (%s locks, %s sharing, %s processes)\n",
              machine.name().c_str(),
              force::machdep::lock_kind_name(machine.spec().lock_kind),
              force::machdep::sharing_strategy_name(machine.spec().sharing),
              force::machdep::process_model_name(
                  machine.spec().process_model));
  return 0;
}
