// Jacobi iteration for the 2D Laplace equation, SPMD style.
//
// The classic barrier-per-sweep Force program: all processes update
// disjoint rows of the new grid (prescheduled), a barrier separates the
// sweeps, and the residual is reduced through private partials + a
// critical section; a barrier section checks convergence and swaps grids.
//
//   ./jacobi --machine sequent --nproc 8 --n 128 --tol 1e-6
#include <cmath>
#include <cstdio>
#include <vector>

#include "theforce.hpp"
#include "util/cli.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("machine", "native", "machine model")
      .option("nproc", "4", "force size")
      .option("n", "96", "grid dimension (n x n interior)")
      .option("tol", "1e-5", "convergence tolerance")
      .option("max-sweeps", "20000", "sweep limit");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::size_t>(cli.get_int("n")) + 2;  // + halo
  const double tol = cli.get_double("tol");
  const auto max_sweeps = cli.get_int("max-sweeps");

  // Boundary condition: top edge held at 100, the rest at 0.
  std::vector<double> grid_a(n * n, 0.0);
  std::vector<double> grid_b(n * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    grid_a[j] = 100.0;
    grid_b[j] = 100.0;
  }

  force::ForceConfig config;
  config.machine = cli.get("machine");
  config.nproc = static_cast<int>(cli.get_int("nproc"));
  force::Force f(config);
  auto& residual = f.shared<double>("residual");
  auto& converged = f.shared<int>("converged");
  auto& sweeps = f.shared<std::int64_t>("sweeps");

  force::util::WallTimer timer;
  timer.start();
  f.run([&](force::Ctx& ctx) {
    double* src = grid_a.data();
    double* dst = grid_b.data();
    while (converged == 0 && sweeps < max_sweeps) {
      double local_res = 0.0;
      ctx.presched_do(1, static_cast<std::int64_t>(n) - 2, 1,
                      [&](std::int64_t i) {
        const std::size_t row = static_cast<std::size_t>(i) * n;
        for (std::size_t j = 1; j + 1 < n; ++j) {
          const double next = 0.25 * (src[row + j - 1] + src[row + j + 1] +
                                      src[row - n + j] + src[row + n + j]);
          local_res = std::fmax(local_res, std::fabs(next - src[row + j]));
          dst[row + j] = next;
        }
      });
      ctx.critical(FORCE_SITE,
                   [&] { residual = std::fmax(residual, local_res); });
      // The barrier section is the sequential heartbeat of the sweep: one
      // process inspects the residual, advances the counter and resets.
      ctx.barrier([&] {
        ++sweeps;
        if (residual < tol) converged = 1;
        residual = 0.0;
      });
      std::swap(src, dst);
    }
  });
  timer.stop();

  // Physical sanity: interior values must lie within the boundary range
  // and the row below the hot edge must have warmed up.
  const double* final_grid = (sweeps % 2 == 0) ? grid_a.data() : grid_b.data();
  bool sane = true;
  for (std::size_t i = 1; i + 1 < n && sane; ++i) {
    for (std::size_t j = 1; j + 1 < n; ++j) {
      const double v = final_grid[i * n + j];
      if (v < -1e-9 || v > 100.0 + 1e-9) {
        sane = false;
        break;
      }
    }
  }
  if (final_grid[n + n / 2] < 1.0) sane = false;

  std::printf("jacobi %zux%zu machine=%s np=%d: %s sweeps=%lld %s\n", n - 2,
              n - 2, config.machine.c_str(), config.nproc,
              converged != 0 ? "converged" : "sweep-limited",
              static_cast<long long>(sweeps), sane ? "(sane)" : "(INSANE)");
  std::printf("  wall %s, %llu barrier episodes\n",
              force::util::format_duration_ns(
                  static_cast<double>(timer.elapsed_ns()))
                  .c_str(),
              static_cast<unsigned long long>(
                  f.env().stats().barrier_episodes.load(
                      std::memory_order_relaxed)));
  return sane ? 0 : 1;
}
