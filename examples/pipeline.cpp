// A three-stage producer/filter/consumer pipeline built from Resolve and
// async variables.
//
// Resolve (the paper's future-work construct, implemented here) splits the
// force into three weighted components. The stages hand items to each
// other through async cells: full = item present, empty = slot free, so a
// cell is a capacity-one bounded buffer and backpressure comes for free.
// Each cell has exactly one consuming process (its owner), which keeps the
// blocking produce/consume protocol deadlock-free.
//
//   ./pipeline --machine flex32 --nproc 6 --items 2000
#include <cstdio>
#include <vector>

#include "theforce.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("machine", "native", "machine model")
      .option("nproc", "6", "force size (>= 3)")
      .option("items", "2000", "items to push through the pipeline");
  if (!cli.parse(argc, argv)) return 0;

  const std::int64_t items = cli.get_int("items");

  force::ForceConfig config;
  config.machine = cli.get("machine");
  config.nproc = static_cast<int>(cli.get_int("nproc"));
  force::Force f(config);
  auto& accepted_sum = f.shared<std::int64_t>("accepted_sum");
  auto& accepted_count = f.shared<std::int64_t>("accepted_count");

  // The partition is a pure function of (np, weights), so it can be
  // computed up front to size the inter-stage buffers: one cell per
  // consuming process.
  const std::vector<int> sizes =
      force::core::resolve_partition(config.nproc, {1, 1, 1});
  const auto n_filters = static_cast<std::size_t>(sizes[1]);
  const auto n_sinks = static_cast<std::size_t>(sizes[2]);
  constexpr std::int64_t kEnd = -1;

  f.run([&](force::Ctx& ctx) {
    auto& to_filter = ctx.async_array<std::int64_t>(FORCE_SITE, n_filters);
    auto& to_sink = ctx.async_array<std::int64_t>(FORCE_SITE, n_sinks);

    ctx.resolve(FORCE_SITE)
        .component("source", 1,
                   [&](force::Ctx& sub) {
                     // Sources deal the item space prescheduled; cell
                     // i % n_filters feeds filter i % n_filters.
                     sub.presched_do(0, items - 1, 1, [&](std::int64_t i) {
                       to_filter[static_cast<std::size_t>(i) % n_filters]
                           .produce(i);
                     });
                     sub.barrier();  // all items in flight
                     if (sub.leader()) {
                       for (std::size_t s = 0; s < n_filters; ++s) {
                         to_filter[s].produce(kEnd);
                       }
                     }
                   })
        .component("filter", 1,
                   [&](force::Ctx& sub) {
                     // Filter p consumes exactly cell p.
                     const auto my_cell = static_cast<std::size_t>(sub.me0());
                     for (;;) {
                       const std::int64_t v = to_filter[my_cell].consume();
                       if (v == kEnd) break;
                       if (v % 3 == 0) {  // keep multiples of three
                         to_sink[static_cast<std::size_t>(v) % n_sinks]
                             .produce(v);
                       }
                     }
                     sub.barrier();  // every filter is done forwarding
                     if (sub.leader()) {
                       for (std::size_t s = 0; s < n_sinks; ++s) {
                         to_sink[s].produce(kEnd);
                       }
                     }
                   })
        .component("sink", 1,
                   [&](force::Ctx& sub) {
                     const auto my_cell = static_cast<std::size_t>(sub.me0());
                     std::int64_t local_sum = 0;
                     std::int64_t local_count = 0;
                     for (;;) {
                       const std::int64_t v = to_sink[my_cell].consume();
                       if (v == kEnd) break;
                       local_sum += v;
                       ++local_count;
                     }
                     sub.critical(FORCE_SITE, [&] {
                       accepted_sum += local_sum;
                       accepted_count += local_count;
                     });
                   })
        .run();
  });

  // Expected: all multiples of 3 in [0, items).
  std::int64_t want_sum = 0;
  std::int64_t want_count = 0;
  for (std::int64_t i = 0; i < items; i += 3) {
    want_sum += i;
    ++want_count;
  }
  std::printf("pipeline machine=%s np=%d: accepted %lld items, sum %lld "
              "(want %lld / %lld), produces=%llu\n",
              config.machine.c_str(), config.nproc,
              static_cast<long long>(accepted_count),
              static_cast<long long>(accepted_sum),
              static_cast<long long>(want_count),
              static_cast<long long>(want_sum),
              static_cast<unsigned long long>(f.env().stats().produces.load(
                  std::memory_order_relaxed)));
  return (accepted_sum == want_sum && accepted_count == want_count) ? 0 : 1;
}
