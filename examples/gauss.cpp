// Pipelined Gaussian elimination - the "tightly coupled" Force showcase.
//
// LU factorization without pivoting on a diagonally dominant matrix. Rows
// are dealt cyclically to processes; the owner of pivot row k announces it
// through an async variable, and every process copies (read-keeping-full)
// that announcement before eliminating its own rows. Fine-grained
// producer/consumer coupling between processes, exactly the algorithm
// class the paper's "high performance of tightly coupled programs" claim
// is about (cf. Jordan's HEP work).
//
//   ./gauss --machine hep --nproc 8 --n 96
#include <cmath>
#include <cstdio>
#include <vector>

#include "theforce.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("machine", "native", "machine model")
      .option("nproc", "4", "force size")
      .option("n", "96", "matrix dimension");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::size_t>(cli.get_int("n"));

  // Diagonally dominant system A x = b with known solution x* = 1.
  force::util::Xoshiro256 rng(1234);
  std::vector<double> a(n * n);
  for (auto& v : a) v = rng.uniform(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    a[i * n + i] += static_cast<double>(n);
  }
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a[i * n + j];
  }
  std::vector<double> original = a;

  force::ForceConfig config;
  config.machine = cli.get("machine");
  config.nproc = static_cast<int>(cli.get_int("nproc"));
  force::Force f(config);

  force::util::WallTimer timer;
  timer.start();
  f.run([&](force::Ctx& ctx) {
    // pivot_ready[k] becomes full when row k is fully eliminated and may
    // be used as the pivot row by everyone else.
    auto& pivot_ready = ctx.async_array<int>(FORCE_SITE, n);
    const int np = ctx.np();
    const int me0 = ctx.me0();

    // Row i is owned by process i mod np. Each process sweeps its rows in
    // order; before applying elimination step k it waits for pivot row k.
    // The pipeline: the owner of row k publishes it the moment the row has
    // survived steps 0..k-1.
    std::vector<std::size_t> mine;
    for (std::size_t i = static_cast<std::size_t>(me0); i < n;
         i += static_cast<std::size_t>(np)) {
      mine.push_back(i);
    }
    // next_step[idx]: how many elimination steps row mine[idx] already had.
    std::vector<std::size_t> done(mine.size(), 0);

    if (!mine.empty() && mine[0] == 0) {
      pivot_ready[0].produce(1);  // row 0 needs no elimination
    }
    for (std::size_t k = 0; k + 1 < n; ++k) {
      (void)pivot_ready[k].copy();  // wait until pivot row k is final
      const double pivot = a[k * n + k];
      for (std::size_t idx = 0; idx < mine.size(); ++idx) {
        const std::size_t i = mine[idx];
        if (i <= k || done[idx] != k) continue;
        const double factor = a[i * n + k] / pivot;
        a[i * n + k] = factor;  // store L below the diagonal
        for (std::size_t j = k + 1; j < n; ++j) {
          a[i * n + j] -= factor * a[k * n + j];
        }
        done[idx] = k + 1;
        if (i == k + 1) {
          pivot_ready[i].produce(1);  // the next pivot row is ready: go!
        }
      }
    }
    ctx.barrier();
  });
  timer.stop();

  // Sequential triangular solves with the factored matrix.
  std::vector<double> y(n), x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t j = 0; j < i; ++j) s -= a[i * n + j] * y[j];
    y[i] = s;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a[ii * n + j] * x[j];
    x[ii] = s / a[ii * n + ii];
  }

  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_err = std::fmax(max_err, std::fabs(x[i] - 1.0));
  }
  // And a residual check against the untouched matrix.
  double max_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double r = -b[i];
    for (std::size_t j = 0; j < n; ++j) r += original[i * n + j] * x[j];
    max_res = std::fmax(max_res, std::fabs(r));
  }

  std::printf(
      "gauss n=%zu machine=%s np=%d: %s  max|x-1|=%.3g  max|Ax-b|=%.3g  "
      "produces=%llu\n",
      n, config.machine.c_str(), config.nproc,
      force::util::format_duration_ns(
          static_cast<double>(timer.elapsed_ns()))
          .c_str(),
      max_err, max_res,
      static_cast<unsigned long long>(
          f.env().stats().produces.load(std::memory_order_relaxed)));
  return (max_err < 1e-8 && max_res < 1e-6) ? 0 : 1;
}
