// Portability tour: the paper's headline claim as a runnable example.
//
// One Force program - touching every construct class: work distribution,
// control-oriented synchronization, data-oriented synchronization - runs
// unchanged on all seven machine models. The program only talks to the
// machine through the machine-independent runtime, so the loop below is
// literally the same code the paper ported between six multiprocessors.
//
//   ./portability_tour --nproc 4
#include <cstdio>
#include <numeric>
#include <vector>

#include "theforce.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

/// The machine-independent Force program: returns true if every invariant
/// held. `iters` scales the workload.
bool the_program(force::Force& f, std::int64_t iters) {
  auto& doall_sum = f.shared<std::int64_t>("doall_sum");
  auto& critical_sum = f.shared<std::int64_t>("critical_sum");
  auto& relay_total = f.shared<std::int64_t>("relay_total");
  bool ok = true;

  f.run([&](force::Ctx& ctx) {
    // Work distribution: selfscheduled DOALL with a reduction.
    std::int64_t local = 0;
    ctx.selfsched_do(FORCE_SITE, 1, iters, 1,
                     [&](std::int64_t i) { local += i; });
    ctx.critical(FORCE_SITE, [&] { doall_sum += local; });

    // Control-oriented synchronization: barrier with section.
    ctx.barrier([&] { critical_sum = 0; });
    ctx.critical(FORCE_SITE, [&] { critical_sum += ctx.me(); });
    ctx.barrier();

    // Data-oriented synchronization: a produce/consume relay around the
    // whole force - process 1 seeds, each consume-add-produce hop passes
    // the token on; strict alternation is forced by the full/empty state.
    auto& relay = ctx.async_var<std::int64_t>(FORCE_SITE);
    if (ctx.me() == 1) relay.produce(0);
    for (int hop = 0; hop < 4; ++hop) {
      const std::int64_t v = relay.consume();
      relay.produce(v + 1);
    }
    ctx.barrier([&] { relay_total = relay.consume(); });

    // Pcase: one block per construct family, any order.
    ctx.pcase(FORCE_SITE)
        .sect([&] { (void)0; })
        .sect_if(ctx.np() > 1, [&] { (void)0; })
        .run_selfsched();
    ctx.barrier();
  });

  const std::int64_t want = iters * (iters + 1) / 2;
  ok = ok && doall_sum == want;
  ok = ok && critical_sum == f.nproc() * (f.nproc() + 1) / 2;
  ok = ok && relay_total == 4 * f.nproc();
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("nproc", "4", "force size")
      .option("iters", "5000", "loop length");
  if (!cli.parse(argc, argv)) return 0;

  const int nproc = static_cast<int>(cli.get_int("nproc"));
  const std::int64_t iters = cli.get_int("iters");

  force::util::Table table({"machine", "locks", "sharing", "processes",
                            "full/empty", "correct", "lock ops",
                            "sim time"});
  bool all_ok = true;
  for (const auto& name : force::machdep::machine_names()) {
    force::ForceConfig config;
    config.machine = name;
    config.nproc = nproc;
    force::Force f(config);
    const auto before =
        force::machdep::snapshot(f.env().machine().counters());
    const bool ok = the_program(f, iters);
    const auto delta =
        force::machdep::snapshot(f.env().machine().counters()) - before;
    all_ok = all_ok && ok;

    const auto& spec = f.env().machine().spec();
    const auto model = f.env().machine().cost_model();
    table.add_row(
        {name, force::machdep::lock_kind_name(spec.lock_kind),
         force::machdep::sharing_strategy_name(spec.sharing),
         force::machdep::process_model_name(spec.process_model),
         spec.hardware_full_empty ? "hardware" : "2-lock",
         ok ? "yes" : "NO",
         force::util::Table::num(static_cast<std::int64_t>(delta.acquires)),
         force::util::format_duration_ns(model.lock_time_ns(delta))});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("portability: %s (np=%d, one program, %zu machines)\n",
              all_ok ? "OK" : "FAILED", nproc,
              force::machdep::machine_names().size());
  return all_ok ? 0 : 1;
}
