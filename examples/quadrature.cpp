// Adaptive quadrature with the Askfor monitor.
//
// Integrates a sharply peaked function by interval bisection: the degree
// of concurrency is unknown at compile time - intervals that fail the
// accuracy test put two refined subproblems back into the monitor at run
// time, exactly the situation the paper introduces Askfor for.
//
//   ./quadrature --machine cray2 --nproc 8
#include <cmath>
#include <cstdio>

#include "theforce.hpp"
#include "util/cli.hpp"

namespace {

// A narrow peak the fixed-grid methods would need a huge n to resolve.
double f_peak(double x) {
  return 1.0 / (1e-4 + (x - 0.37) * (x - 0.37)) +
         0.5 / (1e-3 + (x - 0.81) * (x - 0.81));
}

double simpson(double a, double b) {
  const double m = 0.5 * (a + b);
  return (b - a) / 6.0 * (f_peak(a) + 4.0 * f_peak(m) + f_peak(b));
}

struct Interval {
  double a, b, whole;
};

}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("machine", "native", "machine model")
      .option("nproc", "4", "force size")
      .option("tol", "1e-9", "per-interval tolerance");
  if (!cli.parse(argc, argv)) return 0;

  force::ForceConfig config;
  config.machine = cli.get("machine");
  config.nproc = static_cast<int>(cli.get_int("nproc"));
  const double tol = cli.get_double("tol");

  force::Force f(config);
  auto& integral = f.shared<double>("integral");
  auto& intervals_done = f.shared<std::int64_t>("intervals_done");

  f.run([&](force::Ctx& ctx) {
    auto& monitor = ctx.askfor<Interval>(FORCE_SITE);
    if (ctx.leader()) {
      monitor.put({0.0, 1.0, simpson(0.0, 1.0)});
    }
    ctx.barrier();

    double local_sum = 0.0;
    std::int64_t local_done = 0;
    monitor.work([&](Interval& iv, force::core::Askfor<Interval>& self) {
      const double m = 0.5 * (iv.a + iv.b);
      const double left = simpson(iv.a, m);
      const double right = simpson(m, iv.b);
      if (std::fabs(left + right - iv.whole) < 15.0 * tol ||
          (iv.b - iv.a) < 1e-12) {
        // Accurate enough: Richardson-corrected contribution.
        local_sum += left + right + (left + right - iv.whole) / 15.0;
        ++local_done;
      } else {
        // Request two new concurrent instances at run time.
        self.put({iv.a, m, left});
        self.put({m, iv.b, right});
      }
    });
    ctx.critical(FORCE_SITE, [&] {
      integral += local_sum;
      intervals_done += local_done;
    });
    ctx.barrier();
  });

  // Reference value via dense Simpson on a million panels.
  double reference = 0.0;
  const int panels = 1 << 20;
  for (int i = 0; i < panels; ++i) {
    const double a = static_cast<double>(i) / panels;
    const double b = static_cast<double>(i + 1) / panels;
    reference += simpson(a, b);
  }

  const double err = std::fabs(integral - reference);
  std::printf(
      "quadrature machine=%s np=%d: integral=%.9f reference=%.9f "
      "err=%.2e leaves=%lld grants=%zu\n",
      config.machine.c_str(), config.nproc, integral, reference, err,
      static_cast<long long>(intervals_done),
      f.env().stats().askfor_grants.load(std::memory_order_relaxed));
  return err < 1e-5 * std::fabs(reference) ? 0 : 1;
}
