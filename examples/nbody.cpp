// Direct-summation N-body step with DOALL + reductions, and optional
// execution tracing.
//
// Demonstrates the extension constructs working together: a guided DOALL
// over the O(n^2) force computation (triangular, so guided scheduling
// matters), tournament reductions for the energy diagnostics, and the
// tracer exporting a chrome://tracing timeline of the whole run.
//
//   ./nbody --machine native --nproc 8 --n 256 --steps 4 --trace nbody.json
#include <cmath>
#include <cstdio>
#include <vector>

#include "theforce.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

namespace {

struct Body {
  double x, y, z;
  double vx, vy, vz;
  double m;
};

constexpr double kDt = 1e-3;
constexpr double kSoftening = 1e-3;

double total_energy(const std::vector<Body>& bodies) {
  double e = 0.0;
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    const Body& a = bodies[i];
    e += 0.5 * a.m * (a.vx * a.vx + a.vy * a.vy + a.vz * a.vz);
    for (std::size_t j = i + 1; j < bodies.size(); ++j) {
      const Body& b = bodies[j];
      const double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
      e -= a.m * b.m /
           std::sqrt(dx * dx + dy * dy + dz * dz + kSoftening);
    }
  }
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("machine", "native", "machine model")
      .option("nproc", "4", "force size")
      .option("n", "256", "bodies")
      .option("steps", "4", "time steps")
      .option("trace", "", "write a chrome://tracing JSON here");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const int steps = static_cast<int>(cli.get_int("steps"));
  const std::string trace_path = cli.get("trace");

  // A cold Plummer-ish blob with zero net momentum.
  force::util::Xoshiro256 rng(7);
  std::vector<Body> bodies(n);
  for (auto& b : bodies) {
    b = {rng.normal(), rng.normal(), rng.normal(), 0, 0, 0, 1.0 / n};
  }
  std::vector<double> ax(n), ay(n), az(n);
  const double e0 = total_energy(bodies);

  force::ForceConfig config;
  config.machine = cli.get("machine");
  config.nproc = static_cast<int>(cli.get_int("nproc"));
  config.trace = !trace_path.empty();
  force::Force f(config);
  auto& kinetic = f.shared<double>("kinetic");

  force::util::WallTimer timer;
  timer.start();
  f.run([&](force::Ctx& ctx) {
    for (int step = 0; step < steps; ++step) {
      // Accelerations: row i costs O(n - i) with the symmetric trick
      // unavailable (writes would race), so each row does the full O(n)
      // inner loop; guided scheduling balances the tail.
      ctx.guided_do(FORCE_SITE, 0, static_cast<std::int64_t>(n) - 1, 1,
                    [&](std::int64_t i) {
        const Body& a = bodies[static_cast<std::size_t>(i)];
        double fx = 0, fy = 0, fz = 0;
        for (std::size_t j = 0; j < n; ++j) {
          const Body& b = bodies[j];
          const double dx = b.x - a.x, dy = b.y - a.y, dz = b.z - a.z;
          const double r2 = dx * dx + dy * dy + dz * dz + kSoftening;
          const double inv_r3 = 1.0 / (r2 * std::sqrt(r2));
          fx += b.m * dx * inv_r3;
          fy += b.m * dy * inv_r3;
          fz += b.m * dz * inv_r3;
        }
        ax[static_cast<std::size_t>(i)] = fx;
        ay[static_cast<std::size_t>(i)] = fy;
        az[static_cast<std::size_t>(i)] = fz;
      });
      ctx.barrier();

      // Kick + drift, prescheduled; local kinetic energy reduced.
      double local_ke = 0.0;
      ctx.presched_do(0, static_cast<std::int64_t>(n) - 1, 1,
                      [&](std::int64_t i) {
        Body& b = bodies[static_cast<std::size_t>(i)];
        b.vx += kDt * ax[static_cast<std::size_t>(i)];
        b.vy += kDt * ay[static_cast<std::size_t>(i)];
        b.vz += kDt * az[static_cast<std::size_t>(i)];
        b.x += kDt * b.vx;
        b.y += kDt * b.vy;
        b.z += kDt * b.vz;
        local_ke += 0.5 * b.m *
                    (b.vx * b.vx + b.vy * b.vy + b.vz * b.vz);
      });
      ctx.reduce_into<double>(
          FORCE_SITE, local_ke, kinetic,
          [](double a, double b) { return a + b; },
          force::core::ReduceStrategy::kTournament);
      ctx.barrier();
    }
  });
  timer.stop();

  const double e1 = total_energy(bodies);
  const double drift = std::fabs(e1 - e0) / std::fabs(e0);
  std::printf(
      "nbody n=%zu steps=%d machine=%s np=%d: %s  KE=%.6f  |dE|/E=%.2e\n",
      n, steps, config.machine.c_str(), config.nproc,
      force::util::format_duration_ns(static_cast<double>(timer.elapsed_ns()))
          .c_str(),
      kinetic, drift);
  if (!trace_path.empty() && f.env().tracer() != nullptr) {
    if (f.env().tracer()->write_chrome_json(trace_path)) {
      std::printf("trace written to %s (%llu events); open in "
                  "chrome://tracing or ui.perfetto.dev\n",
                  trace_path.c_str(),
                  static_cast<unsigned long long>(
                      f.env().tracer()->total_recorded()));
    }
  }
  // Sanity: with a small dt the total energy must be roughly conserved.
  return drift < 0.05 ? 0 : 1;
}
