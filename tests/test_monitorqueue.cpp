// Tests for the [LO83]-style bounded queue monitor.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/env.hpp"
#include "core/monitorqueue.hpp"

namespace fc = force::core;

namespace {
fc::ForceConfig test_config(const std::string& machine = "native") {
  fc::ForceConfig cfg;
  cfg.nproc = 4;
  cfg.machine = machine;
  return cfg;
}
}  // namespace

TEST(MonitorQueue, FifoSingleThreaded) {
  fc::ForceEnvironment env(test_config());
  fc::MonitorQueue<int> q(env, 8);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.size(), 3u);
  int v = 0;
  EXPECT_TRUE(q.pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.pop(&v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(q.try_pop(&v));
}

TEST(MonitorQueue, TryPushRespectsCapacity) {
  fc::ForceEnvironment env(test_config());
  fc::MonitorQueue<int> q(env, 2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  int v = 0;
  ASSERT_TRUE(q.pop(&v));
  EXPECT_TRUE(q.try_push(3));
}

TEST(MonitorQueue, ZeroCapacityThrows) {
  fc::ForceEnvironment env(test_config());
  EXPECT_THROW(fc::MonitorQueue<int>(env, 0), force::util::CheckError);
}

TEST(MonitorQueue, PushBlocksWhileFull) {
  fc::ForceEnvironment env(test_config());
  fc::MonitorQueue<int> q(env, 1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::jthread producer([&] {
    q.push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  int v = 0;
  ASSERT_TRUE(q.pop(&v));
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(MonitorQueue, PopBlocksWhileEmpty) {
  fc::ForceEnvironment env(test_config());
  fc::MonitorQueue<int> q(env, 4);
  std::atomic<int> got{0};
  std::jthread consumer([&] {
    int v = 0;
    ASSERT_TRUE(q.pop(&v));
    got = v;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), 0);
  ASSERT_TRUE(q.push(17));
  consumer.join();
  EXPECT_EQ(got.load(), 17);
}

TEST(MonitorQueue, CloseDrainsThenEnds) {
  fc::ForceEnvironment env(test_config());
  fc::MonitorQueue<int> q(env, 8);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // refused after close
  int v = 0;
  EXPECT_TRUE(q.pop(&v));  // drains
  EXPECT_TRUE(q.pop(&v));
  EXPECT_FALSE(q.pop(&v));  // ended
  EXPECT_TRUE(q.closed());
}

TEST(MonitorQueue, CloseWakesBlockedConsumers) {
  fc::ForceEnvironment env(test_config());
  fc::MonitorQueue<int> q(env, 4);
  std::atomic<bool> ended{false};
  std::jthread consumer([&] {
    int v = 0;
    ended = !q.pop(&v);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(ended.load());
}

TEST(MonitorQueue, ConservationUnderManyProducersAndConsumers) {
  fc::ForceEnvironment env(test_config());
  fc::MonitorQueue<std::int64_t> q(env, 4);
  constexpr int kProducers = 3;
  constexpr int kConsumers = 2;
  constexpr std::int64_t kEach = 400;
  std::mutex m;
  std::vector<std::int64_t> consumed;
  {
    std::vector<std::jthread> team;
    for (int p = 0; p < kProducers; ++p) {
      team.emplace_back([&, p] {
        for (std::int64_t i = 0; i < kEach; ++i) {
          ASSERT_TRUE(q.push(p * kEach + i + 1));
        }
      });
    }
    std::atomic<int> producers_left{kProducers};
    // A closer thread: when all producers finished, close the stream.
    team.emplace_back([&] {
      while (q.total_pushed() <
             static_cast<std::uint64_t>(kProducers * kEach)) {
        std::this_thread::yield();
      }
      q.close();
    });
    (void)producers_left;
    for (int c = 0; c < kConsumers; ++c) {
      team.emplace_back([&] {
        std::int64_t v = 0;
        while (q.pop(&v)) {
          std::lock_guard<std::mutex> g(m);
          consumed.push_back(v);
        }
      });
    }
  }
  ASSERT_EQ(consumed.size(), static_cast<std::size_t>(kProducers * kEach));
  std::sort(consumed.begin(), consumed.end());
  for (std::size_t i = 0; i < consumed.size(); ++i) {
    ASSERT_EQ(consumed[i], static_cast<std::int64_t>(i + 1));
  }
  EXPECT_EQ(q.total_popped(), q.total_pushed());
}

TEST(MonitorQueue, WorksOnEveryMachineModel) {
  for (const auto& machine : force::machdep::machine_names()) {
    fc::ForceEnvironment env(test_config(machine));
    fc::MonitorQueue<int> q(env, 4);
    std::int64_t sum = 0;
    std::jthread producer([&] {
      for (int i = 1; i <= 100; ++i) ASSERT_TRUE(q.push(i));
      q.close();
    });
    int v = 0;
    while (q.pop(&v)) sum += v;
    producer.join();
    EXPECT_EQ(sum, 5050) << machine;
  }
}

TEST(MonitorQueue, UsesOnlyGenericLocks) {
  // The queue's traffic must be visible in the machine lock counters: it
  // is built from the machine-dependent layer alone.
  fc::ForceEnvironment env(test_config("cray2"));
  const auto before = force::machdep::snapshot(env.machine().counters());
  fc::MonitorQueue<int> q(env, 4);
  q.push(1);
  int v = 0;
  q.pop(&v);
  const auto delta =
      force::machdep::snapshot(env.machine().counters()) - before;
  EXPECT_GE(delta.acquires, 2u);
}
