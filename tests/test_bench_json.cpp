// Round-trips the bench_common.hpp JSON writer through tools/bench_gate.py:
// the C++ side renders a BENCH_*.json document, the Python side (the single
// CI gate over these artifacts) must accept it under --check, pass a
// self-gate, and *fail* on a synthetically regressed copy, a bumped
// schema_version, and a metric the baseline never recorded. This pins the
// writer and the gate to one contract so they cannot drift apart silently.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "bench_common.hpp"

#ifndef FORCE_BENCH_GATE_PY
#error "build must define FORCE_BENCH_GATE_PY (path to tools/bench_gate.py)"
#endif

namespace {

namespace fb = force::bench;
namespace fs = std::filesystem;

/// Runs a shell command, returning its exit status (-1 if it did not exit
/// normally). Output is silenced; the gate's diagnostics are for humans in
/// CI logs, the tests only assert on exit codes.
int run(const std::string& cmd) {
  const int status = std::system((cmd + " > /dev/null 2>&1").c_str());
  if (status == -1) return -1;
#if defined(_WIN32)
  return status;
#else
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#endif
}

bool have_python3() {
  return run("python3 --version") == 0;
}

std::string gate() {
  return std::string("python3 ") + FORCE_BENCH_GATE_PY;
}

/// A small two-row document exercising every field kind the real benches
/// emit: string identity fields, integer counters, and float ratios.
std::string sample_doc(double fast_rel, double slow_rel,
                       bool include_rel = true) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 2; ++i) {
    std::vector<std::string> row;
    row.push_back(fb::json_field(
        "workload", fb::json_str(i == 0 ? "fast" : "slow")));
    row.push_back(fb::json_field("model", fb::json_str("thread")));
    row.push_back(fb::json_field("items", fb::json_num(std::uint64_t(100))));
    if (include_rel) {
      row.push_back(fb::json_field(
          "rel_throughput", fb::json_num(i == 0 ? fast_rel : slow_rel)));
    }
    rows.push_back(row);
  }
  std::vector<std::string> meta = fb::host_meta_fields();
  meta.push_back(fb::json_field("np", fb::json_num(std::uint64_t(4))));
  return fb::render_bench_json("apps", meta, rows);
}

class BenchJsonGateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!have_python3()) GTEST_SKIP() << "python3 not on PATH";
    // Per-test directory: ctest runs these cases as parallel processes,
    // so a shared path would let one test overwrite another's fixtures.
    dir_ = fs::path(::testing::TempDir()) / "bench_json_gate" /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::create_directories(dir_);
  }

  std::string write(const std::string& name, const std::string& text) {
    const std::string path = (dir_ / name).string();
    EXPECT_TRUE(fb::write_text_file(path, text));
    return path;
  }

  fs::path dir_;
};

TEST(BenchJsonRender, DocumentCarriesSchemaVersionAndBenchName) {
  const std::string doc = sample_doc(2.0, 1.0);
  EXPECT_NE(doc.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"bench\": \"apps\""), std::string::npos);
  EXPECT_NE(doc.find("\"results\": ["), std::string::npos);
  EXPECT_NE(doc.find("\"workload\": \"fast\""), std::string::npos);
  EXPECT_NE(doc.find("\"rel_throughput\": 2.000"), std::string::npos);
}

TEST(BenchJsonRender, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(fb::json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
}

TEST_F(BenchJsonGateTest, WriterOutputPassesSchemaCheck) {
  const std::string doc = write("ok.json", sample_doc(2.0, 1.0));
  EXPECT_EQ(run(gate() + " --check " + doc), 0);
}

TEST_F(BenchJsonGateTest, SelfGatePasses) {
  const std::string doc = write("base.json", sample_doc(2.0, 1.0));
  EXPECT_EQ(run(gate() + " --baseline " + doc + " --current " + doc +
                " --metric rel_throughput --max-regression 1.5"),
            0);
}

TEST_F(BenchJsonGateTest, SyntheticRegressionFailsGate) {
  const std::string base = write("base.json", sample_doc(2.0, 1.0));
  // "slow" drops 1.0 -> 0.4: a 2.5x regression, over the 1.5x budget.
  const std::string cur = write("cur.json", sample_doc(2.0, 0.4));
  EXPECT_EQ(run(gate() + " --baseline " + base + " --current " + cur +
                " --metric rel_throughput --max-regression 1.5"),
            1);
  // Inside the budget it passes (1.0 -> 0.8 is 1.25x).
  const std::string ok = write("ok.json", sample_doc(2.0, 0.8));
  EXPECT_EQ(run(gate() + " --baseline " + base + " --current " + ok +
                " --metric rel_throughput --max-regression 1.5"),
            0);
}

TEST_F(BenchJsonGateTest, LowerIsBetterDirectionFlips) {
  const std::string base = write("base.json", sample_doc(2.0, 1.0));
  const std::string worse = write("worse.json", sample_doc(2.0, 2.0));
  // As higher-is-better, 1.0 -> 2.0 is an improvement...
  EXPECT_EQ(run(gate() + " --baseline " + base + " --current " + worse +
                " --metric rel_throughput --max-regression 1.5"),
            0);
  // ...as lower-is-better it is a 2x regression.
  EXPECT_EQ(run(gate() + " --baseline " + base + " --current " + worse +
                " --metric rel_throughput:lower --max-regression 1.5"),
            1);
}

TEST_F(BenchJsonGateTest, SchemaVersionMismatchFailsLoudly) {
  std::string stale = sample_doc(2.0, 1.0);
  const std::string needle = "\"schema_version\": 1";
  const auto pos = stale.find(needle);
  ASSERT_NE(pos, std::string::npos);
  stale.replace(pos, needle.size(), "\"schema_version\": 0");
  const std::string base = write("stale.json", stale);
  const std::string cur = write("cur.json", sample_doc(2.0, 1.0));
  // Exit 2: contract error, not a measured regression.
  EXPECT_EQ(run(gate() + " --baseline " + base + " --current " + cur +
                " --metric rel_throughput --max-regression 1.5"),
            2);
}

TEST_F(BenchJsonGateTest, MetricMissingEverywhereIsAnError) {
  const std::string base = write("base.json", sample_doc(2.0, 1.0));
  const std::string cur = write("cur.json", sample_doc(2.0, 1.0));
  EXPECT_EQ(run(gate() + " --baseline " + base + " --current " + cur +
                " --metric no_such_metric --max-regression 1.5"),
            2);
}

TEST_F(BenchJsonGateTest, RowDroppedFromCurrentFailsGate) {
  const std::string base = write("base.json", sample_doc(2.0, 1.0));
  // Re-render with only the "fast" row: the baseline's "slow" row has no
  // counterpart, which must read as a regression, not a silent skip.
  std::vector<std::string> row;
  row.push_back(fb::json_field("workload", fb::json_str("fast")));
  row.push_back(fb::json_field("model", fb::json_str("thread")));
  row.push_back(fb::json_field("items", fb::json_num(std::uint64_t(100))));
  row.push_back(fb::json_field("rel_throughput", fb::json_num(2.0)));
  std::vector<std::string> meta = fb::host_meta_fields();
  meta.push_back(fb::json_field("np", fb::json_num(std::uint64_t(4))));
  const std::string cur =
      write("cur.json", fb::render_bench_json("apps", meta, {row}));
  EXPECT_EQ(run(gate() + " --baseline " + base + " --current " + cur +
                " --metric rel_throughput --max-regression 1.5"),
            1);
}

TEST_F(BenchJsonGateTest, MergeMinTakesPerRowEnvelope) {
  // Two runs where each row is worst in a different run: the merged
  // baseline must take the per-row minimum, and every input run must
  // then pass a gate against it.
  const std::string a = write("a.json", sample_doc(2.0, 0.9));
  const std::string b = write("b.json", sample_doc(1.6, 1.2));
  const std::string merged = (dir_ / "merged.json").string();
  ASSERT_EQ(run(gate() + " --merge-min --out " + merged +
                " --metric rel_throughput " + a + " " + b),
            0);
  EXPECT_EQ(run(gate() + " --check " + merged), 0);
  for (const std::string& doc : {a, b}) {
    EXPECT_EQ(run(gate() + " --baseline " + merged + " --current " + doc +
                  " --metric rel_throughput --max-regression 1.5"),
              0);
  }
  // A genuine regression below the envelope still fails.
  const std::string bad = write("bad.json", sample_doc(0.9, 0.5));
  EXPECT_EQ(run(gate() + " --baseline " + merged + " --current " + bad +
                " --metric rel_throughput --max-regression 1.5"),
            1);
}

TEST_F(BenchJsonGateTest, MetricRemovedFromCurrentRowsFailsGate) {
  const std::string base = write("base.json", sample_doc(2.0, 1.0));
  const std::string cur =
      write("cur.json", sample_doc(2.0, 1.0, /*include_rel=*/false));
  EXPECT_EQ(run(gate() + " --baseline " + base + " --current " + cur +
                " --metric rel_throughput --max-regression 1.5"),
            1);
}

}  // namespace
