// The os-fork process backend: real fork(2) children over a MAP_SHARED
// arena with futex-based process-shared synchronization, and - the part
// that earns its keep - robust join: a child that dies on a signal or
// exits nonzero is detected, reported with its process number and
// last-known construct site, and never wedges the survivors.
//
// Assertions about in-team state are made through the shared arena: a
// child's gtest failure would be invisible (children leave with _Exit),
// so children write results into shared variables and the parent asserts
// after the join.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <string>
#include <thread>

#include "core/force.hpp"
#include "machdep/process.hpp"
#include "util/check.hpp"

namespace core = force::core;
namespace md = force::machdep;

namespace {

constexpr int kNproc = 4;

force::ForceConfig fork_config() {
  force::ForceConfig cfg;
  cfg.nproc = kNproc;
  cfg.process_model = "os-fork";
  return cfg;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

TEST(ForkBackend, ModelNameAndTeamKind) {
  EXPECT_STREQ(md::process_model_name(md::ProcessModelKind::kOsFork),
               "os-fork");
  force::Force f(fork_config());
  EXPECT_EQ(f.env().process_model(), md::ProcessModel::kOsFork);
  EXPECT_STREQ(f.env().backend().name(), "os-fork");
  EXPECT_TRUE(f.env().arena().process_shared());
  EXPECT_EQ(f.env().arena().backing(), md::ArenaBacking::kSharedMapping);
}

// The core tentpole claim: a write made by one real process (own address
// space) is visible to its siblings through the MAP_SHARED arena, and to
// the parent after the join.
TEST(ForkBackend, SharedArenaVisibleAcrossProcesses) {
  force::Force f(fork_config());
  auto& slots = f.shared<std::array<std::int64_t, kNproc>>("slots");
  auto& cross = f.shared<std::array<std::int64_t, kNproc>>("cross");
  f.run([&](core::Ctx& ctx) {
    const auto me = static_cast<std::size_t>(ctx.me0());
    slots[me] = 100 + ctx.me();
    ctx.barrier();
    // Read a *sibling's* write: proves the pages really are shared, not
    // copy-on-write ghosts.
    cross[me] = slots[(me + 1) % kNproc];
  });
  for (int p = 0; p < kNproc; ++p) {
    EXPECT_EQ(slots[static_cast<std::size_t>(p)], 100 + p + 1);
    EXPECT_EQ(cross[static_cast<std::size_t>(p)], 100 + ((p + 1) % kNproc) + 1);
  }
}

// Children really are separate processes: a write to an ordinary (non-
// arena) global must NOT be visible to siblings or to the parent.
TEST(ForkBackend, PrivateMemoryIsNotShared) {
  static int plain_global = 0;
  force::Force f(fork_config());
  auto& observed = f.shared<std::array<int, kNproc>>("observed");
  f.run([&](core::Ctx& ctx) {
    ctx.barrier();
    const int before = plain_global;
    plain_global = 1000 + ctx.me();  // private to this child
    ctx.barrier();
    observed[static_cast<std::size_t>(ctx.me0())] = before + plain_global;
  });
  EXPECT_EQ(plain_global, 0) << "a child's write leaked into the parent";
  for (int p = 0; p < kNproc; ++p) {
    // Each child saw 0 before its own write, then its own value only.
    EXPECT_EQ(observed[static_cast<std::size_t>(p)], 1000 + p + 1);
  }
}

TEST(ForkBackend, SpawnStatsCountProcesses) {
  force::Force f(fork_config());
  const auto stats = f.run([](core::Ctx&) {});
  EXPECT_EQ(stats.processes, kNproc);
  EXPECT_GT(stats.create_ns, 0);
  EXPECT_GE(stats.join_ns, 0);
}

TEST(ForkBackend, RepeatedRunsReuseTheArenaState) {
  force::Force f(fork_config());
  auto& counter = f.shared<std::int64_t>("counter");
  for (int round = 0; round < 3; ++round) {
    f.run([&](core::Ctx& ctx) {
      ctx.critical(FORCE_SITE, [&] { counter += 1; });
      ctx.barrier();
    });
  }
  EXPECT_EQ(counter, 3 * kNproc);
}

// --- robust join: death tests ----------------------------------------------

// A child SIGKILLed while its siblings sit in a barrier. The parent must
// detect the death, poison the team so the survivors are released, and
// report the victim's process number and last construct site - all well
// inside the 60 s ctest timeout.
TEST(ForkDeath, SigkillMidBarrierIsReportedAndDoesNotHang) {
  force::Force f(fork_config());
  const auto t0 = std::chrono::steady_clock::now();
  try {
    f.run([](core::Ctx& ctx) {
      if (ctx.me() == 2) {
        raise(SIGKILL);  // dies before arriving
      }
      ctx.barrier();  // siblings park here forever - until poisoned
    });
    FAIL() << "a SIGKILLed child must surface as ProcessDeathError";
  } catch (const md::ProcessDeathError& e) {
    EXPECT_EQ(e.process(), 2);
    EXPECT_EQ(e.term_signal(), SIGKILL);
    EXPECT_EQ(e.exit_code(), -1);
    EXPECT_GT(e.pid(), 0);
    EXPECT_NE(std::string(e.what()).find("killed by signal"),
              std::string::npos);
    // Survivors were parked in the global barrier when the team died.
    EXPECT_NE(std::string(e.what()).find("construct site"), std::string::npos);
  }
  EXPECT_LT(seconds_since(t0), 30.0) << "robust join took too long";
}

// A child SIGKILLed mid-askfor, while it still owes a complete(): the
// monitor's working count can never drain, so without poison the other
// workers would wait forever.
TEST(ForkDeath, SigkillMidAskforIsReportedAndDoesNotHang) {
  force::Force f(fork_config());
  const auto t0 = std::chrono::steady_clock::now();
  try {
    f.run([](core::Ctx& ctx) {
      auto& af = ctx.askfor<std::int64_t>(FORCE_SITE);
      if (ctx.leader()) {
        for (int i = 0; i < 64; ++i) af.put(i);
      }
      ctx.barrier();
      af.work([&](std::int64_t&, core::Askfor<std::int64_t>&) {
        if (ctx.me() == 3) {
          raise(SIGKILL);  // dies holding a granted, uncompleted task
        }
        // Keep the queue alive long enough that process 3's first ask is
        // certain to be granted a task (64 tasks, ~10 ms each elsewhere).
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      });
    });
    FAIL() << "a SIGKILLed worker must surface as ProcessDeathError";
  } catch (const md::ProcessDeathError& e) {
    EXPECT_EQ(e.process(), 3);
    EXPECT_EQ(e.term_signal(), SIGKILL);
  }
  EXPECT_LT(seconds_since(t0), 30.0) << "robust join took too long";
}

// Nonzero exit: a child throwing an ordinary exception leaves with code 1
// and its what() preserved in the team control block.
TEST(ForkDeath, ChildExceptionCarriesMessageAndProcessNumber) {
  force::Force f(fork_config());
  try {
    f.run([](core::Ctx& ctx) {
      if (ctx.me() == 1) {
        throw std::runtime_error("deliberate child failure");
      }
      ctx.barrier();
    });
    FAIL() << "a throwing child must surface as ProcessDeathError";
  } catch (const md::ProcessDeathError& e) {
    EXPECT_EQ(e.process(), 1);
    EXPECT_EQ(e.term_signal(), 0);
    EXPECT_EQ(e.exit_code(), 1);
    EXPECT_NE(e.error_text().find("deliberate child failure"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("deliberate child failure"),
              std::string::npos);
  }
}

// Only the primary death is reported: the survivors' poison-collateral
// exits (code 103) must not mask or replace the original victim.
TEST(ForkDeath, CollateralPoisonExitsAreNotReportedAsPrimary) {
  force::Force f(fork_config());
  try {
    f.run([](core::Ctx& ctx) {
      if (ctx.me() == 4) raise(SIGKILL);
      ctx.barrier();
    });
    FAIL() << "expected ProcessDeathError";
  } catch (const md::ProcessDeathError& e) {
    EXPECT_EQ(e.process(), 4);
    EXPECT_EQ(e.term_signal(), SIGKILL);
  }
}

// A death does not wedge the *parent*: after discarding the dirty driver
// (arena synchronization state may be mid-protocol when a team dies), a
// fresh Force in the same parent process runs cleanly - the poison word
// of the dead team must not leak into the next.
TEST(ForkDeath, AFreshDriverRunsCleanlyAfterADeath) {
  {
    force::Force dying(fork_config());
    EXPECT_THROW(dying.run([](core::Ctx& ctx) {
                   if (ctx.me() == 2) raise(SIGKILL);
                   ctx.barrier();
                 }),
                 md::ProcessDeathError);
  }
  force::Force f(fork_config());
  auto& ok = f.shared<std::int64_t>("ok");
  f.run([&](core::Ctx& ctx) {
    ctx.critical(FORCE_SITE, [&] { ok += 1; });
    ctx.barrier();
  });
  EXPECT_EQ(ok, kNproc);
}

// --- configuration policy ---------------------------------------------------

TEST(ForkConfig, ExplicitSentryIsRejected) {
  force::ForceConfig cfg = fork_config();
  cfg.sentry = true;
  EXPECT_THROW(force::Force f(cfg), force::util::CheckError);
}

TEST(ForkConfig, ExplicitTraceIsRejected) {
  force::ForceConfig cfg = fork_config();
  cfg.trace = true;
  EXPECT_THROW(force::Force f(cfg), force::util::CheckError);
}

TEST(ForkConfig, ThreadBarrierAlgorithmFactoryIsRejected) {
  force::Force f(fork_config());
  EXPECT_THROW(f.env().make_barrier(2, "central-sense"),
               force::util::CheckError);
}

TEST(ForkConfig, PcaseAndResolveAreRejected) {
  force::Force f(fork_config());
  EXPECT_THROW(f.run([](core::Ctx& ctx) {
                 (void)ctx.pcase(FORCE_SITE);
               }),
               md::ProcessDeathError);
  EXPECT_THROW(f.run([](core::Ctx& ctx) {
                 (void)ctx.resolve(FORCE_SITE);
               }),
               md::ProcessDeathError);
}
