// The portability experiment as a test (paper §1, §4; DESIGN.md E1):
// one SPMD program exercising every construct class must pass unchanged on
// all seven machine models at several force sizes.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>

#include "core/force.hpp"
#include "core/privatevar.hpp"

namespace fc = force::core;

namespace {

/// The machine-independent construct suite; returns the number of failed
/// invariants (0 = pass).
int construct_suite(force::Force& f) {
  int failures = 0;
  auto& selfsched_sum = f.shared<std::int64_t>("s_sum");
  auto& presched_sum = f.shared<std::int64_t>("p_sum");
  auto& pcase_hits = f.shared<std::int64_t>("pcase_hits");
  auto& askfor_sum = f.shared<std::int64_t>("a_sum");
  // Declared before the force starts, as a startup routine would: on the
  // link-time (Sequent) machine a first touch after link() is an error.
  (void)f.shared<std::int64_t>("r_sum");
  std::atomic<std::int64_t> relay_final{0};

  f.run([&](fc::Ctx& ctx) {
    // 1. selfsched DOALL + critical reduction
    std::int64_t local = 0;
    ctx.selfsched_do(FORCE_SITE, 1, 500, 1,
                     [&](std::int64_t i) { local += i; });
    ctx.critical(FORCE_SITE, [&] { selfsched_sum += local; });

    // 2. presched DOALL (negative stride)
    local = 0;
    ctx.presched_do(500, 1, -1, [&](std::int64_t i) { local += i; });
    ctx.critical(FORCE_SITE, [&] { presched_sum += local; });
    ctx.barrier();

    // 3. pcase
    ctx.pcase(FORCE_SITE)
        .sect([&] { ctx.critical(FORCE_SITE, [&] { ++pcase_hits; }); })
        .sect([&] { ctx.critical(FORCE_SITE, [&] { ++pcase_hits; }); })
        .sect_if(false, [&] { pcase_hits += 100; })
        .run_selfsched();
    ctx.barrier();

    // 4. askfor with run-time work generation
    auto& monitor = ctx.askfor<std::int64_t>(FORCE_SITE);
    if (ctx.leader()) monitor.put(16);
    ctx.barrier();
    std::int64_t asum = 0;
    monitor.work([&](std::int64_t& v, fc::Askfor<std::int64_t>& self) {
      asum += v;
      if (v > 1) {
        self.put(v / 2);
        self.put(v / 2);
      }
    });
    ctx.critical(FORCE_SITE, [&] { askfor_sum += asum; });

    // 5. produce/consume relay
    auto& relay = ctx.async_var<std::int64_t>(FORCE_SITE);
    if (ctx.me() == 1) relay.produce(0);
    for (int hop = 0; hop < 3; ++hop) {
      relay.produce(relay.consume() + 1);
    }
    ctx.barrier([&] { relay_final = relay.consume(); });

    // 6. resolve into two components with nested loops
    auto& rsum = ctx.shared<std::int64_t>("r_sum");
    if (ctx.np() >= 2) {
      // One lock shared by BOTH components: a per-component critical()
      // would namespace to two different locks, and two different locks do
      // not exclude each other - the components run concurrently, so their
      // rsum updates would genuinely race (TSan catches this).
      auto& rsum_lock = ctx.named_lock("r_sum_lock");
      ctx.resolve(FORCE_SITE)
          .component("left", 1,
                     [&](fc::Ctx& sub) {
                       std::int64_t l = 0;
                       sub.selfsched_do(FORCE_SITE, 1, 50, 1,
                                        [&](std::int64_t i) { l += i; });
                       rsum_lock.acquire();
                       rsum += l;
                       rsum_lock.release();
                     })
          .component("right", 1,
                     [&](fc::Ctx& sub) {
                       std::int64_t l = 0;
                       sub.presched_do(1, 50, 1,
                                       [&](std::int64_t i) { l += i; });
                       rsum_lock.acquire();
                       rsum += l;
                       rsum_lock.release();
                     })
          .run();
    }
  });

  if (selfsched_sum != 125250) ++failures;
  if (presched_sum != 125250) ++failures;
  if (pcase_hits != 2) ++failures;
  // askfor: 16 splits into 2x8 -> ... total = 16 * (depth+1) = 16*5 ... the
  // exact sum: each level contributes 16, levels 16,8,4,2,1 -> 5*16 = 80.
  if (askfor_sum != 80) ++failures;
  if (relay_final.load() != 3 * f.nproc()) ++failures;
  if (f.nproc() >= 2 && f.shared<std::int64_t>("r_sum") != 2 * 1275)
    ++failures;
  return failures;
}

}  // namespace

class PortabilityTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(PortabilityTest, ConstructSuitePassesUnchanged) {
  const auto& [machine, np] = GetParam();
  fc::ForceConfig cfg;
  cfg.machine = machine;
  cfg.nproc = np;
  force::Force f(cfg);
  EXPECT_EQ(construct_suite(f), 0) << machine << " np=" << np;
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, PortabilityTest,
    ::testing::Combine(
        ::testing::Values("hep", "flex32", "encore", "sequent", "alliant",
                          "cray2", "native"),
        ::testing::Values(1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
      return std::get<0>(info.param) + "_np" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Portability, ResultsAreIdenticalAcrossMachines) {
  // The same program computes the same answer everywhere - the essence of
  // "programs written in the language are portable".
  std::int64_t reference = -1;
  for (const auto& machine : force::machdep::machine_names()) {
    fc::ForceConfig cfg;
    cfg.machine = machine;
    cfg.nproc = 3;
    force::Force f(cfg);
    auto& sum = f.shared<std::int64_t>("sum");
    f.run([&](fc::Ctx& ctx) {
      std::int64_t local = 0;
      ctx.selfsched_do(FORCE_SITE, 1, 777, 3,
                       [&](std::int64_t i) { local += i * i; });
      ctx.critical(FORCE_SITE, [&] { sum += local; });
    });
    if (reference < 0) reference = sum;
    EXPECT_EQ(sum, reference) << machine;
  }
}

TEST(Portability, NprocIndependence) {
  // "independence of the number of processes executing a parallel
  // program": answers do not depend on np.
  std::int64_t reference = -1;
  for (int np : {1, 2, 3, 5, 8, 13}) {
    force::Force f({.nproc = np});
    auto& sum = f.shared<std::int64_t>("sum");
    f.run([&](fc::Ctx& ctx) {
      std::int64_t local = 0;
      ctx.guided_do(FORCE_SITE, 1, 1000, 1,
                    [&](std::int64_t i) { local += i; });
      ctx.critical(FORCE_SITE, [&] { sum += local; });
    });
    if (reference < 0) reference = sum;
    EXPECT_EQ(sum, reference) << "np=" << np;
  }
  EXPECT_EQ(reference, 500500);
}
