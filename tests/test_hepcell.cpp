// Tests for the HEP tagged-memory cell emulation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "machdep/hepcell.hpp"

namespace md = force::machdep;

TEST(HepCell, StartsEmpty) {
  md::HepCell cell;
  EXPECT_FALSE(cell.is_full());
}

TEST(HepCell, InitialValueConstructorStartsFull) {
  md::HepCell cell(99);
  EXPECT_TRUE(cell.is_full());
  EXPECT_EQ(cell.consume(), 99u);
  EXPECT_FALSE(cell.is_full());
}

TEST(HepCell, ProduceConsumeRoundTrip) {
  md::HepCell cell;
  cell.produce(12345);
  EXPECT_TRUE(cell.is_full());
  EXPECT_EQ(cell.consume(), 12345u);
  EXPECT_FALSE(cell.is_full());
}

TEST(HepCell, CopyLeavesFull) {
  md::HepCell cell;
  cell.produce(7);
  EXPECT_EQ(cell.copy(), 7u);
  EXPECT_TRUE(cell.is_full());
  EXPECT_EQ(cell.consume(), 7u);
}

TEST(HepCell, TryOperationsRespectState) {
  md::HepCell cell;
  std::uint64_t out = 0;
  EXPECT_FALSE(cell.try_consume(&out));
  EXPECT_TRUE(cell.try_produce(1));
  EXPECT_FALSE(cell.try_produce(2));  // already full
  EXPECT_TRUE(cell.try_consume(&out));
  EXPECT_EQ(out, 1u);
}

TEST(HepCell, MakeEmptyFromAnyState) {
  md::HepCell cell;
  cell.make_empty();  // already empty: no-op
  EXPECT_FALSE(cell.is_full());
  cell.produce(3);
  cell.make_empty();  // Void on a full cell discards the value
  EXPECT_FALSE(cell.is_full());
  cell.produce(4);  // and the cell is usable again
  EXPECT_EQ(cell.consume(), 4u);
}

TEST(HepCell, MakeFullInitializesLockStyle) {
  md::HepCell cell;
  cell.make_full(1);
  EXPECT_TRUE(cell.is_full());
  EXPECT_EQ(cell.consume(), 1u);
}

TEST(HepCell, SeizePublishProtocol) {
  md::HepCell cell;
  cell.seize_empty();
  cell.publish_full();
  EXPECT_TRUE(cell.is_full());
  cell.seize_full();
  cell.publish_empty();
  EXPECT_FALSE(cell.is_full());
}

TEST(HepCell, TrySeizeRespectsState) {
  md::HepCell cell;
  EXPECT_FALSE(cell.try_seize_full());
  ASSERT_TRUE(cell.try_seize_empty());
  // While busy, both try-seizes fail.
  EXPECT_FALSE(cell.try_seize_empty());
  EXPECT_FALSE(cell.try_seize_full());
  cell.publish_full();
  EXPECT_TRUE(cell.try_seize_full());
  cell.publish_empty();
}

TEST(HepCell, ProducerBlocksUntilConsumed) {
  md::HepCell cell;
  cell.produce(1);
  std::atomic<bool> second_done{false};
  std::jthread producer([&] {
    cell.produce(2);  // blocks: cell full
    second_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_done.load());
  EXPECT_EQ(cell.consume(), 1u);
  producer.join();
  EXPECT_TRUE(second_done.load());
  EXPECT_EQ(cell.consume(), 2u);
}

TEST(HepCell, AlternationUnderManyProducersAndConsumers) {
  // Conservation: everything produced is consumed exactly once.
  md::HepCell cell;
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  std::vector<std::uint64_t> consumed;
  std::mutex consumed_mutex;
  {
    std::vector<std::jthread> team;
    for (int p = 0; p < kProducers; ++p) {
      team.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          cell.produce(static_cast<std::uint64_t>(p) * kPerProducer + i + 1);
        }
      });
    }
    for (int c = 0; c < kConsumers; ++c) {
      team.emplace_back([&] {
        for (int i = 0; i < kPerProducer; ++i) {
          const std::uint64_t v = cell.consume();
          std::lock_guard<std::mutex> g(consumed_mutex);
          consumed.push_back(v);
        }
      });
    }
  }
  ASSERT_EQ(consumed.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(consumed.begin(), consumed.end());
  for (std::size_t i = 0; i < consumed.size(); ++i) {
    ASSERT_EQ(consumed[i], i + 1);  // every token exactly once
  }
  EXPECT_FALSE(cell.is_full());
}

TEST(HepCell, WaitCounterAdvancesUnderBlocking) {
  md::HepCell::reset_wait_counter();
  md::HepCell cell;
  std::jthread consumer([&] { (void)cell.consume(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cell.produce(1);
  consumer.join();
  EXPECT_GE(md::HepCell::total_waits(), 1u);
}
