// Golden tests: the generated code for the paper's selfscheduled-DO
// example is pinned structurally, and complete translations of a reference
// program are compared against checked-in golden files per machine.
//
// Regenerate the goldens after an intentional codegen change with:
//   forcepp tests/golden/loop.force --machine <m> --o tests/golden/loop.<m>.golden.cpp
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "preproc/translate.hpp"

namespace pp = force::preproc;

namespace {

#ifndef FORCE_TEST_DATA_DIR
#define FORCE_TEST_DATA_DIR "."
#endif

std::string data_path(const std::string& name) {
  return std::string(FORCE_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing test data file: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

pp::TranslationResult translate_file(const std::string& file,
                                     const std::string& machine) {
  pp::TranslateOptions opts;
  opts.machine = machine;
  opts.source_name = "tests/golden/" + file;
  return pp::translate(read_file(data_path(file)), opts);
}

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

}  // namespace

// The paper prints the expansion of:
//   Selfsched DO 100 K = START, LAST, INCR
//     (* LOOPBODY *)
//   100 End Selfsched DO
// Our translation routes the loop through SelfschedLoop, whose object code
// is the paper's expansion verbatim (entry gate, locked index grab,
// completion test, exit gate). The golden here pins the generated call and
// the pass-1 intermediate form.
TEST(PaperExpansion, SelfschedDoTranslationIsPinned) {
  pp::TranslateOptions opts;
  opts.machine = "native";
  opts.emit_pass1 = true;
  const auto r = pp::translate(
      "Force P\n"
      "Private integer K\n"
      "Shared integer START, LAST, INCR\n"
      "Selfsched DO 100 K = START, LAST, INCR\n"
      "  // (* LOOPBODY *)\n"
      "100 End Selfsched DO\n"
      "Join\n",
      opts);
  ASSERT_TRUE(r.ok) << r.diags.render_all("paper.force");
  // Pass 1: the parameterized function-macro form.
  EXPECT_TRUE(
      contains(r.pass1_text, "@selfsched_do(100, K, START, LAST, INCR)"));
  EXPECT_TRUE(contains(r.pass1_text, "@end_selfsched_do(100)"));
  // Pass 2: the machine-independent statement macro expanded onto the
  // runtime (which holds the BARWIN/BARWOT/ZZNBAR machinery).
  EXPECT_TRUE(contains(
      r.cpp_code,
      "ctx.selfsched_do(FORCE_SITE_TAGGED(\"L100\"), (START), (LAST), "
      "(INCR), [&](std::int64_t K) {"));
}

class GoldenTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenTest, TranslationMatchesCheckedInGolden) {
  const std::string machine = GetParam();
  const auto r = translate_file("loop.force", machine);
  ASSERT_TRUE(r.ok) << r.diags.render_all("loop.force");
  const std::string golden =
      read_file(data_path("loop." + machine + ".golden.cpp"));
  EXPECT_EQ(r.cpp_code, golden)
      << "generated code drifted from the golden for " << machine
      << "; regenerate with forcepp if the change is intentional";
}

INSTANTIATE_TEST_SUITE_P(Machines, GoldenTest,
                         ::testing::Values("hep", "sequent", "native"),
                         [](const auto& info) { return info.param; });

TEST(Golden, GoldenSourceTranslatesOnEveryMachine) {
  for (const char* machine : {"hep", "flex32", "encore", "sequent",
                              "alliant", "cray2", "native"}) {
    const auto r = translate_file("loop.force", machine);
    EXPECT_TRUE(r.ok) << machine << "\n"
                      << r.diags.render_all("loop.force");
  }
}
