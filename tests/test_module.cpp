// Tests for Forcesub / Externf / Forcecall and the startup linkage
// (paper §3.1, §4.1.2, §4.2).
#include <gtest/gtest.h>

#include <atomic>

#include "core/force.hpp"
#include "machdep/linkage.hpp"

namespace fc = force::core;
namespace md = force::machdep;

TEST(Linkage, RegistersAndRunsStartupsInOrder) {
  md::LinkageRegistry reg;
  std::vector<std::string> order;
  reg.register_module("MAIN", [&](md::SharedArena&) { order.push_back("MAIN"); });
  reg.register_module("SUB1", [&](md::SharedArena&) { order.push_back("SUB1"); });
  reg.register_module("SUB2", [&](md::SharedArena&) { order.push_back("SUB2"); });
  EXPECT_TRUE(reg.has_module("SUB1"));
  EXPECT_FALSE(reg.has_module("SUB3"));
  md::SharedArena arena(1 << 16, 4096, md::SharingStrategy::kCompileTime);
  EXPECT_EQ(reg.run_startup(arena), 3u);
  EXPECT_EQ(order, (std::vector<std::string>{"MAIN", "SUB1", "SUB2"}));
}

TEST(Linkage, DuplicateModuleThrows) {
  md::LinkageRegistry reg;
  reg.register_module("M", [](md::SharedArena&) {});
  EXPECT_THROW(reg.register_module("M", [](md::SharedArena&) {}),
               force::util::CheckError);
}

TEST(Linkage, LinkTimeArenaIsLinkedByStartup) {
  // The Sequent protocol end-to-end: startups declare, run_startup links.
  md::LinkageRegistry reg;
  reg.register_module("MAIN", [](md::SharedArena& a) {
    a.declare("X", 64, 8, md::VarClass::kShared);
  });
  reg.register_module("SUB", [](md::SharedArena& a) {
    a.declare("Y", 64, 8, md::VarClass::kShared);
  });
  md::SharedArena arena(1 << 16, 4096, md::SharingStrategy::kLinkTime);
  reg.run_startup(arena);
  EXPECT_TRUE(arena.linked());
  EXPECT_NE(arena.resolve("X"), nullptr);
  EXPECT_NE(arena.resolve("Y"), nullptr);
}

TEST(Subroutines, ForcecallRunsOnAllProcesses) {
  force::Force f({.nproc = 4});
  std::atomic<int> calls{0};
  f.subroutines().register_sub(
      "WORK", nullptr, [&](fc::Ctx& ctx) {
        calls.fetch_add(1);
        EXPECT_EQ(ctx.np(), 4);
      });
  f.run([](fc::Ctx& ctx) { ctx.call("WORK"); });
  EXPECT_EQ(calls.load(), 4);
}

TEST(Subroutines, SubroutineUsesConstructsAndSharedState) {
  force::Force f({.nproc = 3});
  f.subroutines().register_sub("SUM", nullptr, [](fc::Ctx& ctx) {
    auto& total = ctx.shared<std::int64_t>("SUBTOTAL");
    std::int64_t local = 0;
    ctx.selfsched_do(FORCE_SITE, 1, 60, 1,
                     [&](std::int64_t i) { local += i; });
    ctx.critical(FORCE_SITE, [&] { total += local; });
    ctx.barrier();
  });
  f.run([](fc::Ctx& ctx) {
    ctx.call("SUM");
    EXPECT_EQ(ctx.shared<std::int64_t>("SUBTOTAL"), 1830);
  });
}

TEST(Subroutines, StartupDeclaresSharedVariablesBeforeTheForce) {
  // On a link-time machine the subroutine's startup routine must declare
  // its shared names or the allocation would fail after link().
  force::Force f({.nproc = 2, .machine = "sequent"});
  f.subroutines().register_sub(
      "S",
      [](md::SharedArena& a) {
        a.declare("SVAR", sizeof(std::int64_t), alignof(std::int64_t),
                  md::VarClass::kShared);
      },
      [](fc::Ctx& ctx) {
        auto& v = ctx.shared<std::int64_t>("SVAR");
        ctx.critical(FORCE_SITE, [&] { v += 1; });
      });
  f.run([](fc::Ctx& ctx) { ctx.call("S"); });
  EXPECT_EQ(*static_cast<std::int64_t*>(f.env().arena().resolve("SVAR")), 2);
}

TEST(Subroutines, UndeclaredSharedOnLinkTimeMachineFails) {
  // Without the startup declaration, first-touch allocation after link()
  // reproduces the Sequent linker failure.
  force::Force f({.nproc = 1, .machine = "sequent"});
  std::atomic<int> failures{0};
  f.run([&](fc::Ctx& ctx) {
    try {
      (void)ctx.shared<std::int64_t>("NEVER_DECLARED");
    } catch (const force::util::CheckError&) {
      failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 1);
}

TEST(Subroutines, UnknownForcecallThrows) {
  force::Force f({.nproc = 1});
  EXPECT_THROW(f.run([](fc::Ctx& ctx) { ctx.call("MISSING"); }),
               force::util::CheckError);
}

TEST(Subroutines, DuplicateRegistrationThrows) {
  force::Force f({.nproc = 1});
  f.subroutines().register_sub("A", nullptr, [](fc::Ctx&) {});
  EXPECT_THROW(f.subroutines().register_sub("A", nullptr, [](fc::Ctx&) {}),
               force::util::CheckError);
}

TEST(Subroutines, NamesAreListed) {
  force::Force f({.nproc = 1});
  f.subroutines().register_sub("A", nullptr, [](fc::Ctx&) {});
  f.subroutines().register_sub("B", nullptr, [](fc::Ctx&) {});
  EXPECT_EQ(f.subroutines().names(),
            (std::vector<std::string>{"A", "B"}));
  EXPECT_TRUE(f.subroutines().has("A"));
  EXPECT_FALSE(f.subroutines().has("C"));
}

TEST(Subroutines, NestedForcecall) {
  force::Force f({.nproc = 2});
  std::atomic<int> inner_calls{0};
  f.subroutines().register_sub("INNER", nullptr,
                               [&](fc::Ctx&) { inner_calls.fetch_add(1); });
  f.subroutines().register_sub("OUTER", nullptr,
                               [](fc::Ctx& ctx) { ctx.call("INNER"); });
  f.run([](fc::Ctx& ctx) { ctx.call("OUTER"); });
  EXPECT_EQ(inner_calls.load(), 2);
}
