// Cross-model conformance matrix (driven by tests/CMakeLists.txt).
//
// One binary, four canonical Force programs, each checked bit-identically
// against a sequential oracle:
//
//   * Saxpy            - selfscheduled DOALL over doubles;
//   * BarrierReduction - critical accumulation + barrier-section publish,
//                        iterated so barrier reuse is exercised;
//   * AskforTreewalk   - dynamic work generation through the monitor;
//   * ProduceConsume   - an async-variable pipeline through every process.
//
// The configuration cell comes in on the command line:
//   --machine=<name> --dispatch=auto|locked --barrier=<algorithm> --fork
//   --cluster --pool --pool-nm
// and CMake registers one labeled ctest per cell: every machine model x
// both dispatch engines x all four barrier algorithms for the thread
// backends, plus every machine model under the os-fork backend and the
// cluster backend (separate address spaces over a socket transport). The
// same program bytes must produce the same answer everywhere - the
// paper's portability claim, executed.
//
// --pool runs each program as several sequential forces on one persistent
// team pool (config.team_pool), and --pool-nm additionally folds the
// members onto kNproc/2 workers (N:M fiber scheduling, NP = 2W); every
// pooled re-entry must stay bit-identical to the fresh-team oracle.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/force.hpp"

namespace core = force::core;

namespace {

std::string g_machine = "native";
std::string g_dispatch = "auto";
std::string g_barrier = "paper-lock";
bool g_fork = false;
bool g_cluster = false;
bool g_pool = false;
bool g_pool_nm = false;

constexpr int kNproc = 4;

force::ForceConfig cell_config() {
  force::ForceConfig cfg;
  cfg.nproc = kNproc;
  cfg.machine = g_machine;
  cfg.dispatch = g_dispatch;
  cfg.barrier_algorithm = g_barrier;
  if (g_fork) cfg.process_model = "os-fork";
  if (g_cluster) cfg.process_model = "cluster";
  if (g_pool || g_pool_nm) cfg.team_pool = true;
  if (g_pool_nm) cfg.pool_workers = kNproc / 2;  // NP = 2W
  return cfg;
}

// Pooled cells repeat each program so the team re-enters the parked pool;
// fresh-team cells run once (the repeat would only re-measure spawn).
int cell_runs() { return (g_pool || g_pool_nm) ? 4 : 1; }

}  // namespace

// --- Saxpy: selfscheduled DOALL --------------------------------------------

TEST(Conformance, Saxpy) {
  constexpr std::size_t kN = 4096;
  using Vec = std::array<double, kN>;

  Vec x{};
  Vec oracle{};
  const double a = 2.5;
  for (std::size_t i = 0; i < kN; ++i) {
    x[i] = 0.25 * static_cast<double>(i) - 17.0;
    oracle[i] = a * x[i] + 3.0;
  }

  force::Force f(cell_config());
  auto& xs = f.shared<Vec>("x");
  auto& ys = f.shared<Vec>("y");
  xs = x;
  for (int run = 0; run < cell_runs(); ++run) {
    for (std::size_t i = 0; i < kN; ++i) ys[i] = 3.0;
    f.run([&](core::Ctx& ctx) {
      ctx.selfsched_do(FORCE_SITE, 0, kN - 1, 1, [&](std::int64_t i) {
        const auto u = static_cast<std::size_t>(i);
        ys[u] = a * xs[u] + ys[u];
      });
      ctx.barrier();
    });
    EXPECT_EQ(std::memcmp(ys.data(), oracle.data(), sizeof(Vec)), 0)
        << "saxpy result is not bit-identical to the sequential oracle "
        << "(run " << run << ")";
  }
}

// --- BarrierReduction: critical + barrier section, iterated -----------------

TEST(Conformance, BarrierSectionReduction) {
  constexpr int kRounds = 5;
  constexpr std::int64_t kN = 1000;

  // Oracle: rounds of sum(1..kN) scaled by the round number.
  std::array<std::int64_t, kRounds> oracle{};
  for (int r = 0; r < kRounds; ++r) {
    std::int64_t s = 0;
    for (std::int64_t i = 1; i <= kN; ++i) s += i * (r + 1);
    oracle[static_cast<std::size_t>(r)] = s;
  }

  force::Force f(cell_config());
  auto& results = f.shared<std::array<std::int64_t, kRounds>>("results");
  for (int run = 0; run < cell_runs(); ++run) {
    results = {};
    f.run([&](core::Ctx& ctx) {
      for (int r = 0; r < kRounds; ++r) {
        std::int64_t local = 0;
        ctx.presched_do(1, kN, 1,
                        [&](std::int64_t i) { local += i * (r + 1); });
        ctx.reduce_into<std::int64_t>(
            FORCE_SITE, local, results[static_cast<std::size_t>(r)],
            [](std::int64_t p, std::int64_t q) { return p + q; });
      }
    });
    for (int r = 0; r < kRounds; ++r) {
      EXPECT_EQ(results[static_cast<std::size_t>(r)],
                oracle[static_cast<std::size_t>(r)])
          << "round " << r << " (run " << run << ")";
    }
  }
}

// --- AskforTreewalk: dynamic work through the monitor -----------------------

TEST(Conformance, AskforTreewalk) {
  constexpr std::int64_t kLeafBound = 1 << 10;  // implicit binary tree, 2047 nodes

  std::int64_t oracle = 0;
  for (std::int64_t v = 1; v < 2 * kLeafBound; ++v) oracle += v * 7 - 3;

  force::Force f(cell_config());
  auto& total = f.shared<std::int64_t>("total");
  for (int run = 0; run < cell_runs(); ++run) {
    total = 0;
    f.run([&](core::Ctx& ctx) {
      auto& af = ctx.askfor<std::int64_t>(FORCE_SITE);
      if (ctx.leader()) af.put(1);
      af.work([&](std::int64_t& node, core::Askfor<std::int64_t>& a) {
        ctx.critical(FORCE_SITE, [&] { total += node * 7 - 3; });
        if (node < kLeafBound) {
          a.put(2 * node);
          a.put(2 * node + 1);
        }
      });
      ctx.barrier();
    });
    EXPECT_EQ(total, oracle) << "run " << run;
  }
}

// --- ProduceConsume: async-variable pipeline through every process ----------

TEST(Conformance, ProduceConsumePipeline) {
  constexpr std::int64_t kItems = 64;

  // Stage p (1-based) maps v -> 3*v + p; items flow 1 -> 2 -> ... -> NP.
  std::int64_t oracle = 0;
  for (std::int64_t i = 0; i < kItems; ++i) {
    std::int64_t v = i;
    for (int p = 1; p <= kNproc; ++p) v = 3 * v + p;
    oracle += v;
  }

  force::Force f(cell_config());
  auto& sink = f.shared<std::int64_t>("sink");
  for (int run = 0; run < cell_runs(); ++run) {
  sink = 0;
  f.run([&](core::Ctx& ctx) {
    // Cells between stages: stage p produces into cells[p-1].
    auto& cells = ctx.async_array<std::int64_t>(FORCE_SITE, kNproc);
    const int me = ctx.me();
    std::int64_t acc = 0;
    for (std::int64_t i = 0; i < kItems; ++i) {
      std::int64_t v =
          me == 1 ? i : cells[static_cast<std::size_t>(me - 2)].consume();
      v = 3 * v + me;
      if (me == kNproc) {
        acc += v;
      } else {
        cells[static_cast<std::size_t>(me - 1)].produce(v);
      }
    }
    if (me == kNproc) {
      ctx.critical(FORCE_SITE, [&] { sink = acc; });
    }
    ctx.barrier();
  });
  EXPECT_EQ(sink, oracle) << "run " << run;
  }
}

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--machine=", 0) == 0) {
      g_machine = arg.substr(10);
    } else if (arg.rfind("--dispatch=", 0) == 0) {
      g_dispatch = arg.substr(11);
    } else if (arg.rfind("--barrier=", 0) == 0) {
      g_barrier = arg.substr(10);
    } else if (arg == "--fork") {
      g_fork = true;
    } else if (arg == "--cluster") {
      g_cluster = true;
    } else if (arg == "--pool") {
      g_pool = true;
    } else if (arg == "--pool-nm") {
      g_pool_nm = true;
    }
  }
  return RUN_ALL_TESTS();
}
