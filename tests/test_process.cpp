// Tests for process creation/termination models (paper §4.1.1).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include <thread>

#include "machdep/process.hpp"
#include "util/check.hpp"

namespace md = force::machdep;

TEST(ProcessModelNames, AllDistinct) {
  EXPECT_STREQ(md::process_model_name(md::ProcessModelKind::kForkJoinCopy),
               "fork-join-copy");
  EXPECT_STREQ(md::process_model_name(md::ProcessModelKind::kForkSharedData),
               "fork-shared-data");
  EXPECT_STREQ(md::process_model_name(md::ProcessModelKind::kHepCreate),
               "hep-create");
}

TEST(ProcessModel, PrivateRegionSelection) {
  // Only the stack is private under the Alliant model.
  EXPECT_EQ(md::private_region_for(md::ProcessModelKind::kForkSharedData),
            md::PrivateSpace::Region::kStack);
  EXPECT_EQ(md::private_region_for(md::ProcessModelKind::kForkJoinCopy),
            md::PrivateSpace::Region::kData);
  EXPECT_EQ(md::private_region_for(md::ProcessModelKind::kHepCreate),
            md::PrivateSpace::Region::kData);
}

TEST(ProcessTeam, RunsEveryProcessExactlyOnce) {
  md::ProcessTeam team(md::ProcessModelKind::kHepCreate);
  std::mutex m;
  std::set<int> seen;
  const auto stats = team.run(6, nullptr, [&](int proc) {
    std::lock_guard<std::mutex> g(m);
    EXPECT_TRUE(seen.insert(proc).second) << "duplicate process id";
  });
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
  EXPECT_EQ(stats.processes, 6);
  EXPECT_GE(stats.create_ns, 0);
  EXPECT_GE(stats.join_ns, 0);
}

TEST(ProcessTeam, ZeroProcessesThrows) {
  md::ProcessTeam team(md::ProcessModelKind::kHepCreate);
  EXPECT_THROW(team.run(0, nullptr, [](int) {}), force::util::CheckError);
}

TEST(ProcessTeam, ForkModelMaterializesAndChargesCopies) {
  md::ProcessTeam team(md::ProcessModelKind::kForkJoinCopy);
  md::PrivateSpace space(2048, 1024);
  const auto stats = team.run(4, &space, [](int) {});
  EXPECT_TRUE(space.materialized());
  EXPECT_EQ(stats.bytes_copied, 4u * (2048u + 1024u));
}

TEST(ProcessTeam, HepModelCopiesNothing) {
  md::ProcessTeam team(md::ProcessModelKind::kHepCreate);
  md::PrivateSpace space(2048, 1024);
  const auto stats = team.run(4, &space, [](int) {});
  EXPECT_EQ(stats.bytes_copied, 0u);
}

TEST(ProcessTeam, AlliantModelCopiesOnlyStacks) {
  md::ProcessTeam team(md::ProcessModelKind::kForkSharedData);
  md::PrivateSpace space(2048, 1024);
  const auto stats = team.run(4, &space, [](int) {});
  EXPECT_EQ(stats.bytes_copied, 4u * 1024u);
}

TEST(ProcessTeam, FirstExceptionIsRethrownAfterJoin) {
  md::ProcessTeam team(md::ProcessModelKind::kHepCreate);
  std::atomic<int> completions{0};
  try {
    team.run(4, nullptr, [&](int proc) {
      if (proc == 2) throw std::runtime_error("process 2 failed");
      completions.fetch_add(1);
    });
    FAIL() << "should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "process 2 failed");
  }
  // Every other process ran to completion (no thread was abandoned).
  EXPECT_EQ(completions.load(), 3);
}

TEST(ProcessTeam, ProcessesActuallyRunConcurrently) {
  // All processes must be alive at once (the force exists as a whole):
  // rendezvous through an atomic - impossible if processes ran serially.
  md::ProcessTeam team(md::ProcessModelKind::kForkJoinCopy);
  constexpr int kNp = 4;
  std::atomic<int> arrived{0};
  team.run(kNp, nullptr, [&](int) {
    arrived.fetch_add(1);
    while (arrived.load() < kNp) std::this_thread::yield();
  });
  EXPECT_EQ(arrived.load(), kNp);
}
