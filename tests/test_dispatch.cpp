// Tests for the capability-gated dispatch fast path: the DispatchCounter
// engines, the Chase-Lev StealDeque, and the lock-accounting contract -
// lock-only machine models keep routing every dispatch through
// MachineModel::new_lock() locks (one generic-lock pass per claim, visible
// in LockCounters), while hardware-RMW machines pay no lock at all.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/askfor.hpp"
#include "core/doall.hpp"
#include "core/env.hpp"
#include "machdep/machine.hpp"
#include "machdep/stealdeque.hpp"

namespace fc = force::core;
namespace fm = force::machdep;

namespace {

fc::ForceConfig test_config(int np, const std::string& machine = "native",
                            const std::string& dispatch = "auto") {
  fc::ForceConfig cfg;
  cfg.nproc = np;
  cfg.machine = machine;
  cfg.dispatch = dispatch;
  return cfg;
}

void on_team(int np, const std::function<void(int)>& fn) {
  std::vector<std::jthread> team;
  for (int t = 0; t < np; ++t) team.emplace_back([&fn, t] { fn(t); });
}

}  // namespace

// --- capability wiring -----------------------------------------------------------

TEST(DispatchCapability, MatchesTheMachineRegistry) {
  // The 1989 split: HEP, Flex/32, Multimax and Balance dispatch through
  // generic locks; Alliant FX/8, Cray-2 and native have hardware RMW.
  EXPECT_FALSE(fm::machine_spec("hep").hardware_atomic_rmw);
  EXPECT_FALSE(fm::machine_spec("flex32").hardware_atomic_rmw);
  EXPECT_FALSE(fm::machine_spec("encore").hardware_atomic_rmw);
  EXPECT_FALSE(fm::machine_spec("sequent").hardware_atomic_rmw);
  EXPECT_TRUE(fm::machine_spec("alliant").hardware_atomic_rmw);
  EXPECT_TRUE(fm::machine_spec("cray2").hardware_atomic_rmw);
  EXPECT_TRUE(fm::machine_spec("native").hardware_atomic_rmw);
}

TEST(DispatchCapability, FactoryHonoursCapabilityAndOverride) {
  fm::MachineModel native(fm::machine_spec("native"));
  EXPECT_TRUE(native.new_dispatch_counter()->lock_free());
  EXPECT_FALSE(native.new_dispatch_counter(/*force_locked=*/true)->lock_free());
  fm::MachineModel sequent(fm::machine_spec("sequent"));
  EXPECT_FALSE(sequent.new_dispatch_counter()->lock_free());

  fc::ForceEnvironment auto_env(test_config(2, "native"));
  EXPECT_TRUE(auto_env.lock_free_dispatch());
  fc::ForceEnvironment locked_env(test_config(2, "native", "locked"));
  EXPECT_FALSE(locked_env.lock_free_dispatch());
  EXPECT_FALSE(locked_env.new_dispatch_counter()->lock_free());
}

TEST(DispatchCapability, BadDispatchConfigThrows) {
  EXPECT_THROW(fc::ForceEnvironment env(test_config(1, "native", "turbo")),
               force::util::CheckError);
}

// --- DispatchCounter -------------------------------------------------------------

class DispatchCounterBothEngines : public ::testing::TestWithParam<bool> {
 protected:
  std::unique_ptr<fm::DispatchCounter> make() {
    machine_ = std::make_unique<fm::MachineModel>(fm::machine_spec("native"));
    return machine_->new_dispatch_counter(/*force_locked=*/GetParam());
  }
  std::unique_ptr<fm::MachineModel> machine_;
};

TEST_P(DispatchCounterBothEngines, TilesTheTripSpaceExactlyOnce) {
  auto counter = make();
  EXPECT_EQ(counter->lock_free(), !GetParam());
  constexpr std::int64_t kTrips = 10000;
  constexpr int kThreads = 8;
  std::mutex m;
  std::vector<char> seen(kTrips, 0);
  std::atomic<int> exhausted_claims{0};
  on_team(kThreads, [&](int me) {
    const std::int64_t want = 1 + me % 3;  // mixed chunk sizes
    for (;;) {
      const fm::DispatchClaim c = counter->claim(want, kTrips);
      if (c.count == 0) {
        exhausted_claims.fetch_add(1);
        break;
      }
      ASSERT_LE(c.begin + c.count, kTrips);
      std::lock_guard<std::mutex> g(m);
      for (std::int64_t t = c.begin; t < c.begin + c.count; ++t) {
        ASSERT_EQ(seen[static_cast<std::size_t>(t)], 0) << t;
        seen[static_cast<std::size_t>(t)] = 1;
      }
    }
  });
  for (std::int64_t t = 0; t < kTrips; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], 1) << t;
  }
  EXPECT_EQ(exhausted_claims.load(), kThreads);
}

TEST_P(DispatchCounterBothEngines, ClampsInsteadOfRunningAway) {
  // The signed-overflow guard: exhausted processes may keep claiming
  // forever without the stored value drifting past the limit.
  auto counter = make();
  constexpr std::int64_t kTrips = 10;
  on_team(4, [&](int) {
    for (int i = 0; i < 1000; ++i) {
      (void)counter->claim(1 << 20, kTrips);
    }
  });
  EXPECT_EQ(counter->value(), kTrips);
}

TEST_P(DispatchCounterBothEngines, FractionClaimsShrinkAndCover) {
  auto counter = make();
  constexpr std::int64_t kTrips = 4096;
  std::mutex m;
  std::vector<char> seen(kTrips, 0);
  std::vector<std::int64_t> first_claims;
  on_team(4, [&](int) {
    for (;;) {
      const fm::DispatchClaim c = counter->claim_fraction(kTrips, 8);
      if (c.count == 0) break;
      std::lock_guard<std::mutex> g(m);
      if (first_claims.empty()) first_claims.push_back(c.count);
      for (std::int64_t t = c.begin; t < c.begin + c.count; ++t) {
        ASSERT_EQ(seen[static_cast<std::size_t>(t)], 0) << t;
        seen[static_cast<std::size_t>(t)] = 1;
      }
    }
  });
  for (std::int64_t t = 0; t < kTrips; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], 1) << t;
  }
  // The first grant is a big fraction, never more than remaining/divisor.
  EXPECT_LE(first_claims.at(0), kTrips / 8);
  EXPECT_EQ(counter->value(), kTrips);
}

INSTANTIATE_TEST_SUITE_P(Engines, DispatchCounterBothEngines,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "locked" : "atomic";
                         });

// --- StealDeque ------------------------------------------------------------------

TEST(StealDeque, OwnerIsLifoThievesAreFifo) {
  fm::StealDeque dq;
  for (std::size_t v = 1; v <= 4; ++v) EXPECT_TRUE(dq.push(v));
  std::size_t v = 0;
  EXPECT_TRUE(dq.steal(&v));
  EXPECT_EQ(v, 1u);  // oldest first
  EXPECT_TRUE(dq.pop(&v));
  EXPECT_EQ(v, 4u);  // newest first
  EXPECT_TRUE(dq.pop(&v));
  EXPECT_EQ(v, 3u);
  EXPECT_TRUE(dq.steal(&v));
  EXPECT_EQ(v, 2u);
  EXPECT_FALSE(dq.pop(&v));
  EXPECT_FALSE(dq.steal(&v));
}

TEST(StealDeque, BoundedPushReportsFull) {
  fm::StealDeque dq;
  for (std::size_t v = 0; v < fm::StealDeque::kCapacity; ++v) {
    EXPECT_TRUE(dq.push(v));
  }
  EXPECT_FALSE(dq.push(999));
  std::size_t v = 0;
  EXPECT_TRUE(dq.steal(&v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(dq.push(999));  // space reopened
}

TEST(StealDeque, ConcurrentOwnerAndThievesLoseNothing) {
  // One owner interleaving push/pop with three thieves: every pushed
  // value is consumed exactly once across pops and steals.
  fm::StealDeque dq;
  constexpr std::size_t kValues = 20000;
  std::mutex m;
  std::multiset<std::size_t> consumed;
  std::atomic<bool> owner_done{false};
  std::vector<std::jthread> thieves;
  for (int t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      std::size_t v = 0;
      for (;;) {
        if (dq.steal(&v)) {
          std::lock_guard<std::mutex> g(m);
          consumed.insert(v);
        } else if (owner_done.load(std::memory_order_acquire)) {
          if (!dq.steal(&v)) break;
          std::lock_guard<std::mutex> g(m);
          consumed.insert(v);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  {
    std::size_t next = 1;
    std::size_t v = 0;
    while (next <= kValues) {
      // Push a small burst, pop part of it back: exercises the b==t race.
      for (int burst = 0; burst < 4 && next <= kValues; ++burst) {
        while (!dq.push(next)) std::this_thread::yield();
        ++next;
      }
      if (dq.pop(&v)) {
        std::lock_guard<std::mutex> g(m);
        consumed.insert(v);
      }
    }
    owner_done.store(true, std::memory_order_release);
  }
  thieves.clear();  // join
  ASSERT_EQ(consumed.size(), kValues);
  for (std::size_t v = 1; v <= kValues; ++v) {
    EXPECT_EQ(consumed.count(v), 1u) << v;
  }
}

// --- lock accounting: the acceptance contract ------------------------------------

TEST(DispatchLockAccounting, LockOnlyMachinePaysOneAcquirePerDispatch) {
  // On a lock-only model one selfsched episode costs exactly:
  //   np BARWIN passes + np BARWOT passes + (trips + np) dispatch passes,
  // all on locks handed out by MachineModel::new_lock(). This is the
  // seed's lock traffic, unchanged.
  const int np = 2;
  const std::int64_t trips = 50;
  fc::ForceEnvironment env(test_config(np, "sequent"));
  fc::SelfschedLoop loop(env, np);
  const auto before = fm::snapshot(env.machine().counters());
  on_team(np, [&](int me) { loop.run(me, 1, trips, 1, [](std::int64_t) {}); });
  const auto delta = fm::snapshot(env.machine().counters()) - before;
  EXPECT_EQ(delta.acquires,
            static_cast<std::uint64_t>(2 * np + (trips + np)));
  EXPECT_EQ(env.stats().doall_dispatches.load(),
            static_cast<std::uint64_t>(trips + np));
}

TEST(DispatchLockAccounting, AtomicMachinePaysOnlyTheGates) {
  // Same episode on native: the gates still cost 2*np lock passes (the
  // paper's BARWIN/BARWOT protocol is kept verbatim) but dispatch itself
  // never touches a lock.
  const int np = 2;
  const std::int64_t trips = 50;
  fc::ForceEnvironment env(test_config(np, "native"));
  fc::SelfschedLoop loop(env, np);
  const auto before = fm::snapshot(env.machine().counters());
  on_team(np, [&](int me) { loop.run(me, 1, trips, 1, [](std::int64_t) {}); });
  const auto delta = fm::snapshot(env.machine().counters()) - before;
  EXPECT_EQ(delta.acquires, static_cast<std::uint64_t>(2 * np));
  EXPECT_EQ(env.stats().doall_dispatches.load(),
            static_cast<std::uint64_t>(trips + np));
}

TEST(DispatchLockAccounting, ForcedLockedNativeMatchesTheSeedTraffic) {
  // dispatch="locked" restores the seed's full lock traffic on a capable
  // machine - the knob the benches use to measure the speedup.
  const int np = 2;
  const std::int64_t trips = 50;
  fc::ForceEnvironment env(test_config(np, "native", "locked"));
  fc::SelfschedLoop loop(env, np);
  const auto before = fm::snapshot(env.machine().counters());
  on_team(np, [&](int me) { loop.run(me, 1, trips, 1, [](std::int64_t) {}); });
  const auto delta = fm::snapshot(env.machine().counters()) - before;
  EXPECT_EQ(delta.acquires,
            static_cast<std::uint64_t>(2 * np + (trips + np)));
}

TEST(DispatchLockAccounting, AskforFastPathKeepsTheMonitorCold) {
  // A worker expanding a task tree from its own deque touches the monitor
  // lock only to fetch the externally seeded root and to latch
  // termination - a handful of acquires for hundreds of tasks.
  fc::ForceEnvironment env(test_config(1, "native"));
  fc::Askfor<int> monitor(env);
  ASSERT_TRUE(env.lock_free_dispatch());
  const auto before = fm::snapshot(env.machine().counters());
  monitor.put(0);  // external seed: slow path by design
  std::atomic<int> executed{0};
  on_team(1, [&](int) {
    monitor.work([&](int& depth, fc::Askfor<int>& self) {
      executed.fetch_add(1);
      if (depth < 7) {
        self.put(depth + 1);
        self.put(depth + 1);
      }
    });
  });
  EXPECT_EQ(executed.load(), (1 << 8) - 1);  // full binary tree, depth 7
  const auto delta = fm::snapshot(env.machine().counters()) - before;
  EXPECT_LE(delta.acquires, 8u);
}

TEST(DispatchLockAccounting, AskforLockedEngineKeepsSeedTraffic) {
  // Single-threaded drain on a lock-only machine: put, grant, the final
  // drained probe and complete are one monitor pass each - deterministic,
  // exactly the seed's counts.
  fc::ForceEnvironment env(test_config(1, "sequent"));
  fc::AskforCore core(env);
  EXPECT_FALSE(core.lock_free());
  const auto before = fm::snapshot(env.machine().counters());
  for (std::size_t t = 0; t < 5; ++t) core.put(t);
  std::size_t token = 0;
  while (core.ask(&token) == fc::AskforCore::Outcome::kWork) {
    core.complete();
  }
  const auto delta = fm::snapshot(env.machine().counters()) - before;
  // 5 puts + 6 asks (5 grants + 1 drain) + 5 completes.
  EXPECT_EQ(delta.acquires, 16u);
}
