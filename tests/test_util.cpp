// Unit tests for the util substrate: timing, RNG, stats, tables, CLI.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace fu = force::util;

// --- check ------------------------------------------------------------------

TEST(Check, ThrowsWithMessageAndLocation) {
  try {
    FORCE_CHECK(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const fu::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

TEST(Check, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(FORCE_CHECK(true, "never"));
}

// --- timing -----------------------------------------------------------------

TEST(Timing, MonotonicClock) {
  const auto a = fu::now_ns();
  const auto b = fu::now_ns();
  EXPECT_LE(a, b);
}

TEST(Timing, WallTimerAccumulates) {
  fu::WallTimer t;
  t.start();
  fu::spin_for_ns(1'000'000);
  t.stop();
  const auto first = t.elapsed_ns();
  EXPECT_GE(first, 900'000);
  t.start();
  fu::spin_for_ns(1'000'000);
  t.stop();
  EXPECT_GT(t.elapsed_ns(), first);
}

TEST(Timing, TimerMisuseThrows) {
  fu::WallTimer t;
  EXPECT_THROW(t.stop(), fu::CheckError);
  t.start();
  EXPECT_THROW(t.start(), fu::CheckError);
}

TEST(Timing, ScopedTimer) {
  fu::WallTimer t;
  {
    fu::ScopedTimer s(t);
    fu::spin_for_ns(100'000);
  }
  EXPECT_FALSE(t.running());
  EXPECT_GT(t.elapsed_ns(), 0);
}

TEST(Timing, FormatDurationPicksUnits) {
  EXPECT_EQ(fu::format_duration_ns(1.5e9), "1.500 s");
  EXPECT_EQ(fu::format_duration_ns(2.5e6), "2.500 ms");
  EXPECT_EQ(fu::format_duration_ns(3.25e3), "3.250 us");
  EXPECT_EQ(fu::format_duration_ns(42), "42.000 ns");
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  fu::Xoshiro256 a(123), b(123), c(124);
  EXPECT_EQ(a.next(), b.next());
  fu::Xoshiro256 a2(123);
  EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, Uniform01InRange) {
  fu::Xoshiro256 g(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  fu::Xoshiro256 g(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(g.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntBadRangeThrows) {
  fu::Xoshiro256 g(9);
  EXPECT_THROW(g.uniform_int(5, 4), fu::CheckError);
}

TEST(Rng, SubstreamsDiffer) {
  fu::Xoshiro256 base(42);
  auto s1 = base.substream(1);
  auto s2 = base.substream(2);
  EXPECT_NE(s1.next(), s2.next());
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  fu::Xoshiro256 g(11);
  fu::OnlineStats st;
  for (int i = 0; i < 50000; ++i) st.add(g.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.05);
  EXPECT_NEAR(st.stddev(), 1.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  fu::Xoshiro256 g(12);
  fu::OnlineStats st;
  for (int i = 0; i < 50000; ++i) st.add(g.exponential(2.0));
  EXPECT_NEAR(st.mean(), 0.5, 0.03);
}

TEST(Rng, LognormalIsPositive) {
  fu::Xoshiro256 g(13);
  for (int i = 0; i < 1000; ++i) ASSERT_GT(g.lognormal(0.0, 1.0), 0.0);
}

// --- stats ------------------------------------------------------------------

TEST(Stats, OnlineStatsBasics) {
  fu::OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, OnlineStatsMergeMatchesSequential) {
  fu::Xoshiro256 g(5);
  fu::OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = g.uniform(-3, 3);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, MergeWithEmpty) {
  fu::OnlineStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Stats, SampleSetPercentiles) {
  fu::SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_THROW((void)s.percentile(101), fu::CheckError);
}

TEST(Stats, HistogramBinsAndClamps) {
  fu::Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps to bin 0
  h.add(100.0);   // clamps to last
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_FALSE(h.render().empty());
}

TEST(Stats, LoadImbalance) {
  EXPECT_DOUBLE_EQ(fu::load_imbalance({1, 1, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(fu::load_imbalance({2, 0}), 1.0);
  EXPECT_DOUBLE_EQ(fu::load_imbalance({}), 0.0);
}

// --- table ------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  fu::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Numbers right-aligned: "22.5" ends its cell.
  EXPECT_NE(out.find(" 22.5 |"), std::string::npos);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  fu::Table t({"a", "b"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  fu::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), fu::CheckError);
}

// --- cli --------------------------------------------------------------------

TEST(Cli, ParsesOptionsFlagsAndPositionals) {
  fu::CliParser cli;
  cli.option("n", "4", "count").option("name", "x", "a name").flag("fast", "go");
  const char* argv[] = {"prog", "--n=8", "--name", "batman", "--fast", "pos1"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(cli.get_int("n"), 8);
  EXPECT_EQ(cli.get("name"), "batman");
  EXPECT_TRUE(cli.get_flag("fast"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, DefaultsApply) {
  fu::CliParser cli;
  cli.option("n", "4", "count").flag("fast", "go");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 4);
  EXPECT_FALSE(cli.get_flag("fast"));
}

TEST(Cli, UnknownOptionThrows) {
  fu::CliParser cli;
  const char* argv[] = {"prog", "--what"};
  EXPECT_THROW(cli.parse(2, argv), fu::CheckError);
}

TEST(Cli, MissingValueThrows) {
  fu::CliParser cli;
  cli.option("n", "4", "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), fu::CheckError);
}

TEST(Cli, NonNumericIntThrows) {
  fu::CliParser cli;
  cli.option("n", "4", "count");
  const char* argv[] = {"prog", "--n=abc"};
  ASSERT_TRUE(cli.parse(3 - 1, argv));
  EXPECT_THROW((void)cli.get_int("n"), fu::CheckError);
}

TEST(Cli, ParseIntList) {
  EXPECT_EQ(fu::parse_int_list("1,2,4, 8"), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_TRUE(fu::parse_int_list("").empty());
  EXPECT_THROW(fu::parse_int_list("1,x"), fu::CheckError);
}
