// Persistent team pools (machdep/teampool.*): the spawn tax paid once.
//
// Three layers under test:
//
//   * TeamPool - the thread-axis pool by itself: parked workers execute
//     sequential forces, multiplex wider forces N:M, and survive member
//     exceptions (ProcessTeam::run's rethrow contract).
//   * Force over a pool - sequential force entries on one pooled team
//     must behave exactly like fresh teams: shared state accumulates,
//     constructs re-arm per entry, the sentry stays report-free.
//   * ForkTeamPool - resident fork(2) children: the same child pids serve
//     every entry, a SIGKILLed pool child surfaces exactly once as
//     ProcessDeathError, and the next force transparently re-forks.
//
// As in test_process_fork.cpp, child-side assertions go through the
// shared arena (a child's gtest failure would be invisible); the parent
// asserts after the join.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unistd.h>

#include "core/force.hpp"
#include "core/sentry.hpp"
#include "machdep/process.hpp"
#include "machdep/teampool.hpp"
#include "util/check.hpp"

namespace core = force::core;
namespace md = force::machdep;

namespace {

constexpr int kNproc = 4;

force::ForceConfig pool_config() {
  force::ForceConfig cfg;
  cfg.nproc = kNproc;
  cfg.team_pool = true;
  return cfg;
}

force::ForceConfig fork_pool_config() {
  force::ForceConfig cfg;
  cfg.nproc = kNproc;
  cfg.process_model = "os-fork";
  cfg.team_pool = true;
  return cfg;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

// --- TeamPool: the thread-axis pool by itself -------------------------------

TEST(TeamPoolUnit, SequentialForcesRunEveryMember) {
  md::TeamPool pool(kNproc);
  EXPECT_EQ(pool.workers(), kNproc);
  std::array<std::atomic<int>, kNproc> visits{};
  for (int run = 0; run < 5; ++run) {
    const auto stats = pool.run(kNproc, [&](int m) {
      visits[static_cast<std::size_t>(m)].fetch_add(1,
                                                    std::memory_order_relaxed);
    });
    EXPECT_EQ(stats.processes, kNproc);
  }
  for (int m = 0; m < kNproc; ++m) {
    EXPECT_EQ(visits[static_cast<std::size_t>(m)].load(), 5) << "member " << m;
  }
}

TEST(TeamPoolUnit, WiderForceIsMultiplexedOntoFewerWorkers) {
  md::TeamPool pool(2);  // NP = 2W
  std::array<std::atomic<int>, kNproc> visits{};
  const auto stats = pool.run(kNproc, [&](int m) {
    visits[static_cast<std::size_t>(m)].fetch_add(1,
                                                  std::memory_order_relaxed);
  });
  EXPECT_EQ(stats.processes, kNproc);
  for (int m = 0; m < kNproc; ++m) {
    EXPECT_EQ(visits[static_cast<std::size_t>(m)].load(), 1) << "member " << m;
  }
}

TEST(TeamPoolUnit, MemberExceptionIsRethrownAndThePoolSurvives) {
  md::TeamPool pool(kNproc);
  EXPECT_THROW(pool.run(kNproc,
                        [](int m) {
                          if (m == 1) {
                            throw std::runtime_error("deliberate member "
                                                     "failure");
                          }
                        }),
               std::runtime_error);
  // The contract of ProcessTeam::run carries over: after the rethrow the
  // team has quiesced and the pool serves the next force normally.
  std::atomic<int> ran{0};
  pool.run(kNproc,
           [&](int) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), kNproc);
}

// --- Force over a pooled thread team ----------------------------------------

TEST(PooledForce, SequentialForcesAccumulateLikeFreshTeams) {
  force::Force f(pool_config());
  auto& counter = f.shared<std::int64_t>("counter");
  for (int round = 0; round < 5; ++round) {
    const auto stats = f.run([&](core::Ctx& ctx) {
      ctx.critical(FORCE_SITE, [&] { counter += 1; });
      ctx.barrier();
    });
    EXPECT_EQ(stats.processes, kNproc);
  }
  EXPECT_EQ(counter, 5 * kNproc);
}

TEST(PooledForce, NmPoolDrivesMembersThroughBarriersAndCriticals) {
  force::ForceConfig cfg = pool_config();
  cfg.pool_workers = kNproc / 2;  // NP = 2W: members become continuations
  force::Force f(cfg);
  auto& counter = f.shared<std::int64_t>("counter");
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    f.run([&](core::Ctx& ctx) {
      ctx.barrier();
      ctx.critical(FORCE_SITE, [&] { counter += 1; });
      ctx.barrier();
      ctx.critical(FORCE_SITE, [&] { counter += 1; });
    });
  }
  EXPECT_EQ(counter, 2 * kRounds * kNproc);
}

TEST(PooledForce, ArenaGenerationIsStableAcrossPooledReentry) {
  // The cheap-re-entry contract behind Force::run's sentry walk skip: a
  // force that allocates nothing new must leave the arena generation
  // untouched, so re-entering the pool never re-walks the placements.
  force::Force f(pool_config());
  auto& counter = f.shared<std::int64_t>("counter");
  const auto program = [&](core::Ctx& ctx) {
    ctx.critical(FORCE_SITE, [&] { counter += 1; });
    ctx.barrier();
  };
  f.run(program);  // first entry may place construct state lazily
  const std::uint64_t gen = f.env().arena().generation();
  f.run(program);
  f.run(program);
  EXPECT_EQ(f.env().arena().generation(), gen)
      << "pooled re-entry must not allocate";
  EXPECT_EQ(counter, 3 * kNproc);
}

TEST(PooledForce, SentryStaysReportFreeAcrossPooledReentry) {
  // A 1:1 pool keeps every member on its own OS thread, so the sentry
  // remains fully observable; pooled re-entry (same worker threads, new
  // run generation) must not manufacture races between entries.
  force::ForceConfig cfg = pool_config();
  cfg.sentry = true;
  force::Force f(cfg);
  auto& counter = f.shared<std::int64_t>("counter");
  for (int round = 0; round < 3; ++round) {
    f.run([&](core::Ctx& ctx) {
      ctx.critical(FORCE_SITE, [&] { counter += 1; });
      ctx.barrier();
      // Unlocked writes to disjoint slots after a barrier: ordered, clean.
      auto& slots = ctx.env().arena().get_or_create<
          std::array<std::int64_t, kNproc>>("slots");
      slots[static_cast<std::size_t>(ctx.me0())] = counter;
      ctx.barrier();
    });
  }
  auto* sn = f.env().sentry();
  ASSERT_NE(sn, nullptr);
  EXPECT_EQ(sn->total_reports(), 0u)
      << "pooled re-entry manufactured sentry reports";
  EXPECT_EQ(counter, 3 * kNproc);
}

// --- configuration policy ---------------------------------------------------

TEST(PoolConfig, NmWithSentryIsRejected) {
  force::ForceConfig cfg = pool_config();
  cfg.pool_workers = 2;
  cfg.sentry = true;  // two members share one OS thread: unobservable
  EXPECT_THROW(force::Force f(cfg), force::util::CheckError);
}

TEST(PoolConfig, NmWithOsForkIsRejected) {
  force::ForceConfig cfg = fork_pool_config();
  cfg.pool_workers = 2;  // the fork pool keeps one resident child per member
  EXPECT_THROW(force::Force f(cfg), force::util::CheckError);
}

// --- Force over a resident fork(2) pool -------------------------------------

TEST(PooledForkForce, ResidentChildrenServeEverySequentialForce) {
  force::Force f(fork_pool_config());
  auto& counter = f.shared<std::int64_t>("counter");
  auto& pids = f.shared<std::array<long, kNproc>>("pids");
  std::array<long, kNproc> first_pids{};
  for (int round = 0; round < 4; ++round) {
    f.run([&](core::Ctx& ctx) {
      pids[static_cast<std::size_t>(ctx.me0())] = static_cast<long>(getpid());
      ctx.critical(FORCE_SITE, [&] { counter += 1; });
      ctx.barrier();
    });
    if (round == 0) {
      first_pids = pids;
    } else {
      // The whole point of the pool: the SAME resident children run every
      // force, no fork(2) per entry.
      EXPECT_EQ(pids, first_pids) << "round " << round << " re-forked";
    }
  }
  EXPECT_EQ(counter, 4 * kNproc);
  EXPECT_TRUE(f.env().fork_pool(kNproc).armed());
}

TEST(PooledForkForce, RetirementDoesNotReexecuteTheProgram) {
  // shutdown() wakes the parked children by bumping the arm generation (a
  // bare wake could be slept through). The children must read that new
  // generation as "retire", not as one more armed force: a spurious extra
  // run would duplicate the program's MAP_SHARED side effects at every
  // pool retirement (env destruction, fork_pool width change).
  force::Force f(fork_pool_config());
  auto& counter = f.shared<std::int64_t>("counter");
  const auto program = [&](core::Ctx& ctx) {
    ctx.critical(FORCE_SITE, [&] { counter += 1; });
    ctx.barrier();
  };
  f.run(program);
  f.run(program);
  EXPECT_EQ(counter, 2 * kNproc);
  // Synchronous: returns only after every resident child is reaped, so a
  // duplicated run would already be visible in the shared counter here.
  f.env().fork_pool(kNproc).shutdown();
  EXPECT_EQ(counter, 2 * kNproc)
      << "pool retirement re-executed the pooled program";
}

TEST(PooledForkForce, ADifferentProgramOnAnArmedPoolIsRejected) {
  // Resident children re-execute the closure the pool was armed with (the
  // fork-point stack is COW-frozen), so Force::run pins the program type.
  force::Force f(fork_pool_config());
  auto& ok = f.shared<std::int64_t>("ok");
  f.run([&](core::Ctx& ctx) {
    ctx.critical(FORCE_SITE, [&] { ok += 1; });
    ctx.barrier();
  });
  EXPECT_EQ(ok, kNproc);
  EXPECT_THROW(f.run([&](core::Ctx& ctx) {
                 (void)ok;
                 ctx.barrier();
                 ctx.barrier();
               }),
               force::util::CheckError);
}

TEST(PooledForkDeath, SigkilledPoolChildIsReportedOnceAndThePoolRecovers) {
  force::Force f(fork_pool_config());
  auto& kill_flag = f.shared<std::int64_t>("kill_flag");
  auto& ok = f.shared<std::int64_t>("ok");
  const auto t0 = std::chrono::steady_clock::now();
  // One program for every run (the fork-pool contract); the parent steers
  // the victim through the shared arena, which resident children see live.
  const auto program = [&](core::Ctx& ctx) {
    if (kill_flag != 0 && ctx.me() == 2) {
      raise(SIGKILL);  // dies before arriving at the barrier
    }
    ctx.barrier();
    ctx.critical(FORCE_SITE, [&] { ok += 1; });
    ctx.barrier();
  };

  kill_flag = 0;
  f.run(program);
  EXPECT_EQ(ok, kNproc);

  kill_flag = 1;
  try {
    f.run(program);
    FAIL() << "a SIGKILLed pool child must surface as ProcessDeathError";
  } catch (const md::ProcessDeathError& e) {
    // Reported once, with the victim's identity - the survivors' poison
    // collateral must not mask it.
    EXPECT_EQ(e.process(), 2);
    EXPECT_EQ(e.term_signal(), SIGKILL);
    EXPECT_GT(e.pid(), 0);
  }
  EXPECT_EQ(ok, kNproc) << "the poisoned run must not have half-completed";
  EXPECT_FALSE(f.env().fork_pool(kNproc).armed())
      << "a dead team must be retired";

  // The next force transparently re-forks a fresh resident team.
  kill_flag = 0;
  f.run(program);
  EXPECT_EQ(ok, 2 * kNproc);
  EXPECT_TRUE(f.env().fork_pool(kNproc).armed());
  EXPECT_LT(seconds_since(t0), 30.0) << "pooled robust join took too long";
}
