// Tests for the parallel algorithm skeletons (core/algorithms.hpp):
// correctness against sequential references, every machine model, many
// shapes and force sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "core/algorithms.hpp"
#include "util/rng.hpp"

namespace fc = force::core;

namespace {

std::vector<std::int64_t> random_ints(std::size_t n, std::uint64_t seed) {
  force::util::Xoshiro256 rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = rng.uniform_int(-1000, 1000);
  return v;
}

}  // namespace

class AlgorithmsTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(AlgorithmsTest, InclusiveScanMatchesSequential) {
  const auto [np, n] = GetParam();
  auto data = random_ints(n, 17);
  std::vector<std::int64_t> expect = data;
  std::partial_sum(expect.begin(), expect.end(), expect.begin());
  force::Force f({.nproc = np});
  f.run([&](fc::Ctx& ctx) {
    fc::parallel_inclusive_scan<std::int64_t>(
        ctx, FORCE_SITE, data,
        [](std::int64_t a, std::int64_t b) { return a + b; });
  });
  EXPECT_EQ(data, expect);
}

TEST_P(AlgorithmsTest, SortMatchesStdSort) {
  const auto [np, n] = GetParam();
  auto data = random_ints(n, 29);
  std::vector<std::int64_t> expect = data;
  std::sort(expect.begin(), expect.end());
  force::Force f({.nproc = np});
  f.run([&](fc::Ctx& ctx) { fc::parallel_sort(ctx, FORCE_SITE, data); });
  EXPECT_EQ(data, expect);
}

TEST_P(AlgorithmsTest, HistogramMatchesSequential) {
  const auto [np, n] = GetParam();
  const auto data = random_ints(n, 31);
  constexpr std::size_t kBins = 10;
  std::vector<std::int64_t> expect(kBins, 0);
  for (auto x : data) {
    const double frac = static_cast<double>(x + 1000) / 2000.0;
    auto idx = static_cast<std::ptrdiff_t>(frac * kBins);
    idx = std::clamp<std::ptrdiff_t>(idx, 0, kBins - 1);
    ++expect[static_cast<std::size_t>(idx)];
  }
  force::Force f({.nproc = np});
  std::vector<std::int64_t> got;
  std::mutex m;
  f.run([&](fc::Ctx& ctx) {
    auto h = fc::parallel_histogram<std::int64_t>(ctx, FORCE_SITE, data,
                                                  kBins, -1000, 1000);
    std::lock_guard<std::mutex> g(m);
    got = h;  // every process receives the same histogram
    EXPECT_EQ(h, expect);
  });
  EXPECT_EQ(got, expect);
  EXPECT_EQ(std::accumulate(got.begin(), got.end(), std::int64_t{0}),
            static_cast<std::int64_t>(n));
}

TEST_P(AlgorithmsTest, ArgmaxMatchesSequential) {
  const auto [np, n] = GetParam();
  if (n == 0) return;
  const auto data = random_ints(n, 37);
  const auto expect = static_cast<std::int64_t>(
      std::max_element(data.begin(), data.end()) - data.begin());
  force::Force f({.nproc = np});
  std::atomic<int> failures{0};
  f.run([&](fc::Ctx& ctx) {
    if (fc::parallel_argmax(ctx, FORCE_SITE, data) != expect) {
      failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndSizes, AlgorithmsTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{7}, std::size_t{64},
                                         std::size_t{1000})),
    [](const ::testing::TestParamInfo<std::tuple<int, std::size_t>>& info) {
      return "np" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Algorithms, ScanWithNonCommutativeAssociativeOp) {
  // String concatenation: associative but not commutative, so the result
  // checks that blocks were combined strictly left to right.
  std::vector<std::string> data{"a", "b", "c", "d", "e", "f", "g", "h"};
  force::Force f({.nproc = 3});
  f.run([&](fc::Ctx& ctx) {
    fc::parallel_inclusive_scan<std::string>(
        ctx, FORCE_SITE, data,
        [](std::string a, std::string b) { return a + b; });
  });
  EXPECT_EQ(data.back(), "abcdefgh");
  EXPECT_EQ(data[2], "abc");
}

TEST(Algorithms, SortAlreadySortedAndReversed) {
  for (bool reversed : {false, true}) {
    std::vector<std::int64_t> data(257);
    std::iota(data.begin(), data.end(), -100);
    if (reversed) std::reverse(data.begin(), data.end());
    force::Force f({.nproc = 4});
    f.run([&](fc::Ctx& ctx) { fc::parallel_sort(ctx, FORCE_SITE, data); });
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  }
}

TEST(Algorithms, SortWithManyDuplicates) {
  force::util::Xoshiro256 rng(5);
  std::vector<std::int64_t> data(500);
  for (auto& x : data) x = rng.uniform_int(0, 3);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  force::Force f({.nproc = 5});
  f.run([&](fc::Ctx& ctx) { fc::parallel_sort(ctx, FORCE_SITE, data); });
  EXPECT_EQ(data, expect);
}

TEST(Algorithms, WorkOnEveryMachineModel) {
  for (const auto& machine : force::machdep::machine_names()) {
    fc::ForceConfig cfg;
    cfg.nproc = 3;
    cfg.machine = machine;
    force::Force f(cfg);
    auto data = random_ints(200, 41);
    auto expect = data;
    std::partial_sum(expect.begin(), expect.end(), expect.begin());
    f.run([&](fc::Ctx& ctx) {
      fc::parallel_inclusive_scan<std::int64_t>(
          ctx, FORCE_SITE, data,
          [](std::int64_t a, std::int64_t b) { return a + b; });
    });
    EXPECT_EQ(data, expect) << machine;
  }
}

TEST(Algorithms, RepeatedCallsAtOneSite) {
  // One SHARED vector (the algorithms operate on shared data, SPMD):
  // re-initialized by the barrier-section executor each round.
  force::Force f({.nproc = 4});
  std::vector<std::int64_t> data;
  f.run([&](fc::Ctx& ctx) {
    for (int round = 1; round <= 5; ++round) {
      ctx.barrier([&] { data.assign(100, round); });
      fc::parallel_inclusive_scan<std::int64_t>(
          ctx, FORCE_SITE, data,
          [](std::int64_t a, std::int64_t b) { return a + b; });
      if (ctx.leader()) {
        EXPECT_EQ(data.back(), 100 * round);
      }
      ctx.barrier();
    }
  });
}
