// Tests for the Force driver, Ctx, shared/private variables and the
// integration of constructs through the public API.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <map>
#include <set>
#include <thread>

#include "core/force.hpp"
#include "core/privatevar.hpp"

namespace fc = force::core;

TEST(ForceDriver, RunsNprocProcessesWithFortranStyleIds) {
  force::Force f({.nproc = 5});
  std::mutex m;
  std::set<int> mes;
  f.run([&](fc::Ctx& ctx) {
    EXPECT_EQ(ctx.np(), 5);
    EXPECT_EQ(ctx.me(), ctx.me0() + 1);
    std::lock_guard<std::mutex> g(m);
    mes.insert(ctx.me());
  });
  EXPECT_EQ(mes, (std::set<int>{1, 2, 3, 4, 5}));
}

TEST(ForceDriver, LeaderIsExactlyProcessOne) {
  force::Force f({.nproc = 4});
  std::atomic<int> leaders{0};
  f.run([&](fc::Ctx& ctx) {
    if (ctx.leader()) {
      leaders.fetch_add(1);
      EXPECT_EQ(ctx.me(), 1);
    }
  });
  EXPECT_EQ(leaders.load(), 1);
}

TEST(ForceDriver, SharedVariablesAreShared) {
  force::Force f({.nproc = 4});
  f.run([&](fc::Ctx& ctx) {
    auto& x = ctx.shared<std::int64_t>("x");
    ctx.critical(FORCE_SITE, [&] { x += ctx.me(); });
    ctx.barrier();
    EXPECT_EQ(x, 1 + 2 + 3 + 4);
  });
}

TEST(ForceDriver, SharedSeenFromDriverAndProcesses) {
  force::Force f({.nproc = 2});
  auto& x = f.shared<double>("x");
  x = 2.5;
  f.run([&](fc::Ctx& ctx) {
    EXPECT_DOUBLE_EQ(ctx.shared<double>("x"), 2.5);
  });
}

TEST(ForceDriver, RngSubstreamsAreDeterministicAndDistinct) {
  force::Force f({.nproc = 3, .machine = "native"});
  std::mutex m;
  std::map<int, std::uint64_t> draws;
  f.run([&](fc::Ctx& ctx) {
    const auto v = ctx.rng().next();
    std::lock_guard<std::mutex> g(m);
    draws[ctx.me()] = v;
  });
  EXPECT_EQ(draws.size(), 3u);
  EXPECT_NE(draws[1], draws[2]);
  EXPECT_NE(draws[2], draws[3]);
  // Deterministic across an identical force.
  force::Force f2({.nproc = 3, .machine = "native"});
  f2.run([&](fc::Ctx& ctx) {
    EXPECT_EQ(ctx.rng().next(), draws[ctx.me()]) << ctx.me();
  });
}

TEST(ForceDriver, MultipleRunsReuseTheForce) {
  force::Force f({.nproc = 3});
  auto& acc = f.shared<std::int64_t>("acc");
  for (int round = 0; round < 4; ++round) {
    f.run([&](fc::Ctx& ctx) {
      ctx.critical(FORCE_SITE, [&] { acc += 1; });
    });
  }
  EXPECT_EQ(acc, 4 * 3);
  EXPECT_EQ(f.lifetime_stats().processes, 3);
}

TEST(ForceDriver, ProcessExceptionSurfacesAfterJoin) {
  force::Force f({.nproc = 3});
  EXPECT_THROW(f.run([&](fc::Ctx& ctx) {
    if (ctx.me() == 2) throw std::runtime_error("kaboom");
  }),
               std::runtime_error);
}

TEST(ForceDriver, NullProgramThrows) {
  force::Force f({.nproc = 1});
  EXPECT_THROW(f.run(nullptr), force::util::CheckError);
}

TEST(ForceDriver, BarrierSectionFromCtx) {
  force::Force f({.nproc = 6});
  std::atomic<int> sections{0};
  f.run([&](fc::Ctx& ctx) {
    for (int e = 0; e < 10; ++e) {
      ctx.barrier([&] { sections.fetch_add(1); });
    }
  });
  EXPECT_EQ(sections.load(), 10);
  EXPECT_EQ(f.env().stats().barrier_episodes.load(), 10u);
}

TEST(ForceDriver, SitesDistinguishConstructsByLine) {
  force::Force f({.nproc = 2});
  f.run([&](fc::Ctx& ctx) {
    auto& a = ctx.async_var<int>(FORCE_SITE);
    auto& b = ctx.async_var<int>(FORCE_SITE);
    EXPECT_NE(&a, &b);
    auto& a2 = ctx.async_var<int>(FORCE_SITE_TAGGED("a"));
    auto& a3 = ctx.async_var<int>(FORCE_SITE_TAGGED("b"));
    EXPECT_NE(&a2, &a3);
  });
}

TEST(ForceDriver, SiteReuseWithDifferentTypeIsDetected) {
  force::Force f({.nproc = 1});
  f.run([&](fc::Ctx& ctx) {
    const fc::Site site{"fixed.cpp", 1, ""};
    (void)ctx.async_var<int>(site);
    EXPECT_THROW((void)ctx.async_var<double>(site),
                 force::util::CheckError);
  });
}

TEST(ForceDriver, AsyncNamedIsSharedByName) {
  force::Force f({.nproc = 2});
  std::atomic<int> got{0};
  f.run([&](fc::Ctx& ctx) {
    auto& v = ctx.async_named<int>("HANDOFF");
    if (ctx.me() == 1) v.produce(41);
    if (ctx.me() == 2) got = v.consume();
  });
  EXPECT_EQ(got.load(), 41);
}

TEST(ForceDriver, BadConfigThrows) {
  EXPECT_THROW(force::Force({.nproc = 0}), force::util::CheckError);
  EXPECT_THROW(force::Force({.nproc = 2, .machine = "vax"}),
               force::util::CheckError);
  EXPECT_THROW(
      force::Force({.nproc = 2, .barrier_algorithm = "imaginary"}),
      force::util::CheckError);
}

TEST(ForceDriver, NamedLocksAreSharedByNameAndCrossThreadReleasable) {
  force::Force f({.nproc = 2});
  std::atomic<bool> order_ok{false};
  f.run([&](fc::Ctx& ctx) {
    auto& lock = ctx.named_lock("GUARD");
    if (ctx.me() == 1) {
      lock.acquire();          // hold it...
      ctx.barrier();
      // ...process 2 releases it (binary-semaphore semantics).
    } else {
      ctx.barrier();
      lock.release();
      order_ok = true;
    }
    ctx.barrier();
    // Must be acquirable again by anyone.
    if (ctx.leader()) {
      lock.acquire();
      lock.release();
    }
  });
  EXPECT_TRUE(order_ok.load());
}

// --- private variables across process models ------------------------------------

TEST(PrivateVars, ForkModelsInheritParentValue) {
  for (const char* machine : {"sequent", "encore", "flex32", "cray2",
                              "alliant"}) {
    force::Force f({.nproc = 3, .machine = machine});
    fc::Private<std::int64_t> seed(f.env());
    seed.parent() = 123;
    std::atomic<int> matches{0};
    f.run([&](fc::Ctx& ctx) {
      if (seed.get(ctx) == 123) matches.fetch_add(1);
      seed.get(ctx) = ctx.me();  // private writes don't interfere
    });
    EXPECT_EQ(matches.load(), 3) << machine;
    // Each process wrote its own copy.
    for (int p = 0; p < 3; ++p) {
      EXPECT_EQ(seed.for_process(p), p + 1) << machine;
    }
  }
}

TEST(PrivateVars, HepCreateStartsDefault) {
  force::Force f({.nproc = 3, .machine = "hep"});
  fc::Private<std::int64_t> seed(f.env());
  seed.parent() = 123;
  std::atomic<int> zeros{0};
  f.run([&](fc::Ctx& ctx) {
    if (seed.get(ctx) == 0) zeros.fetch_add(1);
  });
  EXPECT_EQ(zeros.load(), 3);
}

TEST(PrivateVars, AlliantMisplacedPrivateIsAccidentallyShared) {
  // The hazard the paper warns about: a "private" in the data region is
  // one shared buffer under the Alliant fork model.
  force::Force f({.nproc = 2, .machine = "alliant"});
  fc::MisplacedPrivate<std::int64_t> misplaced(f.env());
  f.run([&](fc::Ctx& ctx) {
    ctx.barrier([&] { misplaced.get(ctx) = 55; });
    // Every process sees the write - sharing where privacy was intended.
    EXPECT_EQ(misplaced.get(ctx), 55);
  });
  // Whereas on a full-fork machine the same code keeps copies private:
  force::Force f2({.nproc = 2, .machine = "sequent"});
  fc::MisplacedPrivate<std::int64_t> fine(f2.env());
  std::atomic<int> isolated{0};
  f2.run([&](fc::Ctx& ctx) {
    if (ctx.me() == 1) fine.get(ctx) = 55;
    ctx.barrier();
    if (ctx.me() == 2 && fine.get(ctx) == 0) isolated.fetch_add(1);
  });
  EXPECT_EQ(isolated.load(), 1);
}

// --- cross-construct integration -------------------------------------------------

TEST(Integration, ReductionPipeline) {
  // selfsched -> critical -> barrier section -> async handoff, together.
  force::Force f({.nproc = 4});
  auto& sum = f.shared<std::int64_t>("sum");
  std::atomic<std::int64_t> final_value{0};
  f.run([&](fc::Ctx& ctx) {
    std::int64_t local = 0;
    ctx.selfsched_do(FORCE_SITE, 1, 1000, 1,
                     [&](std::int64_t i) { local += i; });
    ctx.critical(FORCE_SITE, [&] { sum += local; });
    auto& handoff = ctx.async_var<std::int64_t>(FORCE_SITE);
    ctx.barrier([&] { handoff.produce(sum); });
    ctx.barrier([&] { final_value = handoff.consume(); });
  });
  EXPECT_EQ(final_value.load(), 500500);
}

TEST(Integration, BarrierAlgorithmsAreInterchangeable) {
  for (const auto& algorithm : fc::barrier_algorithm_names()) {
    fc::ForceConfig cfg;
    cfg.nproc = 4;
    cfg.barrier_algorithm = algorithm;
    force::Force f(cfg);
    auto& x = f.shared<std::int64_t>("x");
    f.run([&](fc::Ctx& ctx) {
      for (int e = 0; e < 5; ++e) {
        ctx.critical(FORCE_SITE, [&] { ++x; });
        ctx.barrier([&] {
          EXPECT_EQ(x % ctx.np(), 0) << algorithm;
        });
      }
    });
    EXPECT_EQ(x, 20) << algorithm;
  }
}
