// Tests for pass 1 (the "sed" stage) of forcepp plus the text utilities.
#include <gtest/gtest.h>

#include "preproc/pass1.hpp"
#include "preproc/textutil.hpp"

namespace pp = force::preproc;

namespace {
std::string one(const std::string& line) {
  pp::DiagSink diags;
  auto out = pp::rewrite_line(line, 1, diags);
  EXPECT_TRUE(diags.ok()) << diags.render_all("<test>");
  EXPECT_EQ(out.size(), 1u);
  return out.empty() ? "" : out[0];
}
}  // namespace

// --- textutil -------------------------------------------------------------------

TEST(TextUtil, Trim) {
  EXPECT_EQ(pp::trim("  a b  "), "a b");
  EXPECT_EQ(pp::trim(""), "");
  EXPECT_EQ(pp::trim(" \t "), "");
}

TEST(TextUtil, MatchKeywordIsCaseInsensitiveAndBoundaryAware) {
  EXPECT_EQ(*pp::match_keyword("Barrier", "barrier"), "");
  EXPECT_EQ(*pp::match_keyword("CRITICAL Lock1", "Critical"), "Lock1");
  EXPECT_FALSE(pp::match_keyword("Barriers", "Barrier").has_value());
  EXPECT_FALSE(pp::match_keyword("Bar", "Barrier").has_value());
}

TEST(TextUtil, MatchKeywordsSequence) {
  EXPECT_EQ(*pp::match_keywords("End  Presched   DO",
                                {"End", "Presched", "DO"}),
            "");
  EXPECT_FALSE(
      pp::match_keywords("End Selfsched DO", {"End", "Presched", "DO"})
          .has_value());
}

TEST(TextUtil, SplitArgsRespectsNesting) {
  EXPECT_EQ(pp::split_args("a, f(b, c), d"),
            (std::vector<std::string>{"a", "f(b, c)", "d"}));
  EXPECT_EQ(pp::split_args("\"x,y\", z"),
            (std::vector<std::string>{"\"x,y\"", "z"}));
  EXPECT_TRUE(pp::split_args("").empty());
}

TEST(TextUtil, SplitLabel) {
  auto l = pp::split_label("100 End Selfsched DO");
  ASSERT_TRUE(l.label.has_value());
  EXPECT_EQ(*l.label, 100);
  EXPECT_EQ(l.rest, "End Selfsched DO");
  EXPECT_FALSE(pp::split_label("End barrier").label.has_value());
  EXPECT_FALSE(pp::split_label("42").label.has_value());  // bare number
}

TEST(TextUtil, IsIdentifier) {
  EXPECT_TRUE(pp::is_identifier("X"));
  EXPECT_TRUE(pp::is_identifier("my_var2"));
  EXPECT_FALSE(pp::is_identifier("2x"));
  EXPECT_FALSE(pp::is_identifier("a b"));
  EXPECT_FALSE(pp::is_identifier(""));
}

// --- statement rewriting ----------------------------------------------------------

TEST(Pass1, ProgramStructure) {
  EXPECT_EQ(one("Force MYPROG"), "@force_main(MYPROG)");
  EXPECT_EQ(one("Forcesub HELPER"), "@forcesub(HELPER)");
  EXPECT_EQ(one("End Forcesub"), "@end_forcesub()");
  EXPECT_EQ(one("Externf HELPER"), "@externf(HELPER)");
  EXPECT_EQ(one("Forcecall HELPER"), "@forcecall(HELPER)");
  EXPECT_EQ(one("Join"), "@join()");
  EXPECT_EQ(one("End declarations"), "@end_declarations()");
}

TEST(Pass1, Declarations) {
  EXPECT_EQ(one("Shared real X(100)"), "@shared_decl(real, X, 100)");
  EXPECT_EQ(one("Private integer I"), "@private_decl(integer, I)");
  EXPECT_EQ(one("Async real V"), "@async_decl(real, V)");
  EXPECT_EQ(one("Shared double precision D"),
            "@shared_decl(double precision, D)");
  EXPECT_EQ(one("Shared integer A(10,20)"),
            "@shared_decl(integer, A, 10, 20)");
}

TEST(Pass1, MultipleDeclaratorsExpandToMultipleCalls) {
  pp::DiagSink diags;
  auto out = pp::rewrite_line("Shared real X(8), Y, Z(4)", 1, diags);
  ASSERT_TRUE(diags.ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "@shared_decl(real, X, 8)");
  EXPECT_EQ(out[1], "@shared_decl(real, Y)");
  EXPECT_EQ(out[2], "@shared_decl(real, Z, 4)");
}

TEST(Pass1, Synchronization) {
  EXPECT_EQ(one("Barrier"), "@barrier_begin()");
  EXPECT_EQ(one("End barrier"), "@barrier_end()");
  EXPECT_EQ(one("Critical LOCK1"), "@critical_begin(LOCK1)");
  EXPECT_EQ(one("End critical"), "@critical_end()");
}

TEST(Pass1, DoLoops) {
  EXPECT_EQ(one("Selfsched DO 100 K = START, LAST, INCR"),
            "@selfsched_do(100, K, START, LAST, INCR)");
  EXPECT_EQ(one("Selfsched DO 100 K = 1, N"),
            "@selfsched_do(100, K, 1, N, 1)");  // default increment
  EXPECT_EQ(one("Presched DO 20 I = 0, 99, 2"),
            "@presched_do(20, I, 0, 99, 2)");
  EXPECT_EQ(one("100 End Selfsched DO"), "@end_selfsched_do(100)");
  EXPECT_EQ(one("20 End Presched DO"), "@end_presched_do(20)");
}

TEST(Pass1, Do2AndGuidedLoops) {
  EXPECT_EQ(one("Presched DO2 30 I = 1, 8 ; J = 1, 8"),
            "@presched_do2(30, I, 1, 8, 1, J, 1, 8, 1)");
  EXPECT_EQ(one("Selfsched DO2 40 I = 0, 7, 1 ; J = 10, 2, -2"),
            "@selfsched_do2(40, I, 0, 7, 1, J, 10, 2, -2)");
  EXPECT_EQ(one("Guided DO 50 K = 1, 1000"),
            "@guided_do(50, K, 1, 1000, 1)");
  EXPECT_EQ(one("30 End Presched DO2"), "@end_presched_do2(30)");
  EXPECT_EQ(one("40 End Selfsched DO2"), "@end_selfsched_do2(40)");
  EXPECT_EQ(one("50 End Guided DO"), "@end_guided_do(50)");
}

TEST(Pass1, Do2Errors) {
  auto expect_error = [](const std::string& line) {
    pp::DiagSink diags;
    (void)pp::rewrite_line(line, 1, diags);
    EXPECT_FALSE(diags.ok()) << line;
  };
  expect_error("Presched DO2 30 I = 1, 8");        // missing second control
  expect_error("Selfsched DO2 I = 1, 8 ; J = 1, 8");  // missing label
  expect_error("Presched DO2 30 I = 1 ; J = 1, 8");   // too few bounds
}

TEST(Pass1, Pcase) {
  EXPECT_EQ(one("Pcase"), "@pcase_begin(presched)");
  EXPECT_EQ(one("Pcase Selfsched"), "@pcase_begin(selfsched)");
  EXPECT_EQ(one("Usect"), "@usect()");
  EXPECT_EQ(one("Csect (x > 0)"), "@csect(x > 0)");
  EXPECT_EQ(one("End pcase"), "@pcase_end()");
}

TEST(Pass1, AskforStatements) {
  EXPECT_EQ(one("Askfor 300 T of integer"), "@askfor_begin(300, T, integer)");
  EXPECT_EQ(one("Seedwork 300 N*2"), "@seedwork(300, N*2)");
  EXPECT_EQ(one("Putwork T + 1"), "@putwork(T + 1)");
  EXPECT_EQ(one("Probend"), "@probend()");
  EXPECT_EQ(one("300 End Askfor"), "@end_askfor(300)");
  auto expect_error = [](const std::string& line) {
    pp::DiagSink diags;
    (void)pp::rewrite_line(line, 1, diags);
    EXPECT_FALSE(diags.ok()) << line;
  };
  expect_error("Askfor T of integer");   // missing label
  expect_error("Askfor 300 T");          // missing type
  expect_error("Seedwork 300");          // missing expression
  expect_error("Putwork");               // missing expression
  expect_error("Probend now");           // stray operand
}

TEST(Pass1, RawLockStatements) {
  EXPECT_EQ(one("Lock MYLOCK"), "@rawlock(MYLOCK)");
  EXPECT_EQ(one("Unlock MYLOCK"), "@rawunlock(MYLOCK)");
  pp::DiagSink diags;
  (void)pp::rewrite_line("Lock", 1, diags);
  EXPECT_FALSE(diags.ok());
}

TEST(Pass1, ReduceStatement) {
  EXPECT_EQ(one("Reduce L into TOTAL"), "@reduce_stmt(TOTAL, +, L)");
  EXPECT_EQ(one("Reduce L*2.0 into TOTAL with max"),
            "@reduce_stmt(TOTAL, max, L*2.0)");
  EXPECT_EQ(one("Reduce P into PROD with *"), "@reduce_stmt(PROD, *, P)");
  pp::DiagSink diags;
  (void)pp::rewrite_line("Reduce L", 1, diags);
  EXPECT_FALSE(diags.ok());
}

TEST(Pass1, AsyncAccesses) {
  EXPECT_EQ(one("Produce V = A + B"), "@produce(V, A + B)");
  EXPECT_EQ(one("Consume V into X"), "@consume(V, X)");
  EXPECT_EQ(one("Copy V into X"), "@copyasync(V, X)");
  EXPECT_EQ(one("Void V"), "@voidasync(V)");
  EXPECT_EQ(one("Isfull V into FLAG"), "@isfull(V, FLAG)");
}

TEST(Pass1, CommentsAndPassthrough) {
  EXPECT_EQ(one("! a comment"), "// a comment");
  EXPECT_EQ(one("x = y + 1;"), "x = y + 1;");  // C++ passes through
  EXPECT_EQ(one(""), "");
}

TEST(Pass1, KeywordsAreCaseInsensitive) {
  EXPECT_EQ(one("SELFSCHED do 7 k = 1, 5"), "@selfsched_do(7, k, 1, 5, 1)");
  EXPECT_EQ(one("end BARRIER"), "@barrier_end()");
}

TEST(Pass1, Errors) {
  auto expect_error = [](const std::string& line) {
    pp::DiagSink diags;
    (void)pp::rewrite_line(line, 1, diags);
    EXPECT_FALSE(diags.ok()) << line;
  };
  expect_error("Shared");                       // no type/vars
  expect_error("Shared floatish X");            // unknown type
  expect_error("Selfsched DO K = 1, 10");       // missing label
  expect_error("Selfsched DO 9 K = 1");         // too few bounds
  expect_error("Produce V");                    // no '='
  expect_error("Consume V");                    // no 'into'
  expect_error("Critical");                     // no lock name
  expect_error("17 Something else");            // stray label
  expect_error("Csect ()");                     // empty condition
}

TEST(Pass1, FullRewriteKeepsOriginLines) {
  const std::string src = "Force P\nShared real A, B\nJoin\n";
  pp::DiagSink diags;
  const auto result = pp::rewrite_force_syntax(src, diags);
  ASSERT_TRUE(diags.ok());
  ASSERT_EQ(result.lines.size(), 4u);  // Force, 2 decls, Join
  EXPECT_EQ(result.origin, (std::vector<int>{1, 2, 2, 3}));
}
