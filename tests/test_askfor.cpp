// Tests for the Askfor monitor (paper §3.3, [LO83]).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/askfor.hpp"
#include "core/env.hpp"

namespace fc = force::core;

namespace {
fc::ForceConfig test_config(int np, const std::string& machine = "native",
                            const std::string& dispatch = "auto") {
  fc::ForceConfig cfg;
  cfg.nproc = np;
  cfg.machine = machine;
  cfg.dispatch = dispatch;
  return cfg;
}

void on_team(int np, const std::function<void(int)>& fn) {
  std::vector<std::jthread> team;
  for (int t = 0; t < np; ++t) team.emplace_back([&fn, t] { fn(t); });
}
}  // namespace

TEST(AskforCore, DrainsSeededWork) {
  fc::ForceEnvironment env(test_config(1));
  fc::AskforCore core(env);
  for (std::size_t t = 0; t < 5; ++t) core.put(t);
  std::size_t token = 0;
  std::set<std::size_t> got;
  while (core.ask(&token) == fc::AskforCore::Outcome::kWork) {
    got.insert(token);
    core.complete();
  }
  EXPECT_EQ(got.size(), 5u);
  EXPECT_TRUE(core.ended());
  EXPECT_EQ(core.granted(), 5u);
}

TEST(AskforCore, DrainIsProvisionalProbendIsSticky) {
  for (const char* dispatch : {"auto", "locked"}) {
    fc::ForceEnvironment env(test_config(1, "native", dispatch));
    fc::AskforCore core(env);
    std::size_t token = 0;
    // An empty monitor drains immediately...
    EXPECT_EQ(core.ask(&token), fc::AskforCore::Outcome::kDone);
    // ...but a drain is provisional: a seed put behind it re-opens the
    // monitor instead of vanishing (on a hot pooled team the first
    // asker's drained latch can genuinely beat the leader's seed).
    core.put(99);
    ASSERT_EQ(core.ask(&token), fc::AskforCore::Outcome::kWork) << dispatch;
    EXPECT_EQ(token, 99u);
    core.complete();
    // probend() is final for the episode: later puts drop, as ever.
    core.probend();
    core.put(7);
    EXPECT_EQ(core.ask(&token), fc::AskforCore::Outcome::kDone) << dispatch;
  }
}

TEST(AskforCore, CompleteWithoutGrantThrows) {
  fc::ForceEnvironment env(test_config(1));
  fc::AskforCore core(env);
  EXPECT_THROW(core.complete(), force::util::CheckError);
}

TEST(AskforCore, WaitsWhileAWorkerMightProduce) {
  // One worker holds a task; a second asker must wait (not get kDone)
  // until the worker either puts more work or completes.
  fc::ForceEnvironment env(test_config(2));
  fc::AskforCore core(env);
  core.put(1);
  std::size_t token = 0;
  ASSERT_EQ(core.ask(&token), fc::AskforCore::Outcome::kWork);

  std::atomic<bool> second_returned{false};
  std::atomic<int> second_outcome{-1};
  std::jthread asker([&] {
    std::size_t t2 = 0;
    const auto outcome = core.ask(&t2);
    second_outcome = static_cast<int>(outcome);
    second_returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_returned.load());  // still waiting: we might put()
  core.put(2);                           // we do produce more work
  asker.join();
  EXPECT_EQ(second_outcome.load(),
            static_cast<int>(fc::AskforCore::Outcome::kWork));
  core.complete();   // our task
  core.complete();   // the asker's task (granted, never completed by it)
}

TEST(Askfor, EveryTaskExecutedExactlyOnce) {
  const int np = 4;
  fc::ForceEnvironment env(test_config(np));
  fc::Askfor<int> monitor(env);
  for (int i = 0; i < 100; ++i) monitor.put(i);
  std::mutex m;
  std::multiset<int> executed;
  on_team(np, [&](int) {
    monitor.work([&](int& task, fc::Askfor<int>&) {
      std::lock_guard<std::mutex> g(m);
      executed.insert(task);
    });
  });
  EXPECT_EQ(executed.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(executed.count(i), 1u) << i;
}

TEST(Askfor, RuntimeGeneratedWorkIsExecuted) {
  // A binary task tree generated at run time: the paper's "request during
  // run time that a new concurrent instance is executed".
  const int np = 4;
  fc::ForceEnvironment env(test_config(np));
  fc::Askfor<std::pair<int, int>> monitor(env);  // (depth, id)
  monitor.put({0, 1});
  std::atomic<int> leaves{0};
  std::atomic<int> total{0};
  constexpr int kDepth = 6;
  on_team(np, [&](int) {
    monitor.work([&](std::pair<int, int>& task,
                     fc::Askfor<std::pair<int, int>>& self) {
      total.fetch_add(1);
      if (task.first < kDepth) {
        self.put({task.first + 1, task.second * 2});
        self.put({task.first + 1, task.second * 2 + 1});
      } else {
        leaves.fetch_add(1);
      }
    });
  });
  EXPECT_EQ(leaves.load(), 1 << kDepth);
  EXPECT_EQ(total.load(), (1 << (kDepth + 1)) - 1);  // full binary tree
}

TEST(Askfor, WorkReturnsPerProcessCounts) {
  const int np = 3;
  fc::ForceEnvironment env(test_config(np));
  fc::Askfor<int> monitor(env);
  for (int i = 0; i < 30; ++i) monitor.put(i);
  std::atomic<std::size_t> sum{0};
  on_team(np, [&](int) {
    sum.fetch_add(monitor.work([&](int&, fc::Askfor<int>&) {}));
  });
  EXPECT_EQ(sum.load(), 30u);
}

TEST(Askfor, ProbendStopsTheComputationEarly) {
  // A "search": the first worker to find the needle aborts everyone.
  const int np = 4;
  fc::ForceEnvironment env(test_config(np));
  fc::Askfor<int> monitor(env);
  for (int i = 0; i < 10000; ++i) monitor.put(i);
  std::atomic<int> executed{0};
  on_team(np, [&](int) {
    monitor.work([&](int& task, fc::Askfor<int>& self) {
      executed.fetch_add(1);
      if (task == 17) self.probend();
    });
  });
  EXPECT_TRUE(monitor.ended());
  EXPECT_LT(executed.load(), 10000);  // the abort actually cut work short
}

TEST(Askfor, ThrowingBodyCompletesItsGrant) {
  const int np = 2;
  fc::ForceEnvironment env(test_config(np));
  fc::Askfor<int> monitor(env);
  for (int i = 0; i < 10; ++i) monitor.put(i);
  std::atomic<int> throws{0};
  std::atomic<int> executed{0};
  on_team(np, [&](int) {
    for (;;) {
      try {
        monitor.work([&](int& task, fc::Askfor<int>&) {
          executed.fetch_add(1);
          if (task == 5) throw std::runtime_error("bad task");
        });
        break;  // drained
      } catch (const std::runtime_error&) {
        throws.fetch_add(1);  // resume working after the bad task
      }
    }
  });
  EXPECT_EQ(throws.load(), 1);
  EXPECT_EQ(executed.load(), 10);
  EXPECT_TRUE(monitor.ended());
}

// --- steal-heavy: one seeder, many thieves ---------------------------------------

class AskforStealTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AskforStealTest, OneSeederManyThievesExactlyOnce) {
  // The worst case for work stealing: a single root task seeds the whole
  // frontier into ONE worker's deque, so the other seven workers can only
  // make progress by stealing, and every task recursively put()s so the
  // deques keep refilling. Every generated (depth, id) must execute
  // exactly once, on both dispatch engines.
  const int np = 8;
  fc::ForceEnvironment env(test_config(np, "native", GetParam()));
  using Task = std::pair<int, std::uint32_t>;  // (depth, heap id)
  fc::Askfor<Task> monitor(env);
  constexpr int kDepth = 9;
  std::mutex m;
  std::multiset<Task> executed;
  monitor.put({0, 1});  // the root; whichever worker grants it seeds
  on_team(np, [&](int) {
    monitor.work([&](Task& task, fc::Askfor<Task>& self) {
      if (task.first == 0) {
        // The seeder: eight subtree roots, all into the seeder's deque.
        for (std::uint32_t r = 2; r <= 9; ++r) self.put({1, r});
      } else if (task.first < kDepth) {
        self.put({task.first + 1, task.second * 2});
        self.put({task.first + 1, task.second * 2 + 1});
      }
      std::lock_guard<std::mutex> g(m);
      executed.insert(task);
    });
  });
  // The root plus eight binary subtrees spanning depths 1..kDepth, each
  // with 2^kDepth - 1 nodes. Heap ids are unique per depth level, so
  // (depth, id) identifies a task globally.
  const std::size_t expected = 8u * ((1u << kDepth) - 1u) + 1u;
  ASSERT_EQ(executed.size(), expected);
  for (const auto& task : executed) {
    EXPECT_EQ(executed.count(task), 1u)
        << task.first << ":" << task.second;
  }
  EXPECT_EQ(monitor.granted(), expected);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, AskforStealTest,
                         ::testing::Values("auto", "locked"),
                         [](const auto& info) { return info.param; });

TEST(Askfor, WorksOnEveryMachineModel) {
  for (const auto& machine : force::machdep::machine_names()) {
    const int np = 3;
    fc::ForceEnvironment env(test_config(np, machine));
    fc::Askfor<int> monitor(env);
    for (int i = 1; i <= 40; ++i) monitor.put(i);
    std::atomic<std::int64_t> sum{0};
    on_team(np, [&](int) {
      monitor.work([&](int& t, fc::Askfor<int>&) { sum.fetch_add(t); });
    });
    EXPECT_EQ(sum.load(), 820) << machine;
  }
}
