// gtest main with the Force validation knobs.
//
// Translates the sentry command-line flags into the environment variables
// every ForceEnvironment honours (see core/env.cpp), then hands the
// remaining arguments to gtest:
//
//   --sentry                 run every test under sentry validation
//   --schedule-fuzz=<seed>   validation + deterministic schedule fuzzing
//   --sentry-stall-ms=<n>    stall threshold for the watchdog
//
// Explicit ForceConfig settings inside a test still win over the
// variables, so seeded-bug tests keep their own deterministic seeds.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

int main(int argc, char** argv) {
  int keep = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sentry") {
      ::setenv("FORCE_SENTRY", "1", 1);
    } else if (arg.rfind("--schedule-fuzz=", 0) == 0) {
      ::setenv("FORCE_SCHEDULE_FUZZ",
               arg.c_str() + std::strlen("--schedule-fuzz="), 1);
    } else if (arg.rfind("--sentry-stall-ms=", 0) == 0) {
      ::setenv("FORCE_SENTRY_STALL_MS",
               arg.c_str() + std::strlen("--sentry-stall-ms="), 1);
    } else {
      argv[keep++] = argv[i];
    }
  }
  argc = keep;
  argv[argc] = nullptr;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
