// Tests for the Force sentry (core/sentry.hpp): seeded-bug negatives that
// every machine model must flag, and positive (clean) programs that must
// produce zero findings even under schedule fuzzing.
//
// The negative tests are deterministic by construction, not by schedule:
// the race check is Eraser-style (unordered + disjoint locksets), so it
// fires on every interleaving; the lock-order check is a graph property of
// the acquisition history; the stall check only needs one Produce to block
// past the (tiny) threshold.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <set>

#include "core/force.hpp"
#include "machdep/machine.hpp"
#include "preproc/lint.hpp"

namespace fc = force::core;

namespace {

std::vector<std::string> all_machines() { return force::machdep::machine_names(); }

fc::ForceConfig sentry_config(int np, const std::string& machine,
                              std::uint64_t fuzz_seed) {
  fc::ForceConfig cfg;
  cfg.nproc = np;
  cfg.machine = machine;
  cfg.sentry = true;
  cfg.schedule_fuzz = fuzz_seed;
  return cfg;
}

// Pins an environment variable for one test and restores the ambient value
// after, so the knob tests behave the same under a bare run and under
// `test_sentry --sentry` / `--schedule-fuzz=<seed>` (which export these).
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVarGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Seeded bugs: the sentry must flag these on every machine model.
// ---------------------------------------------------------------------------

TEST(SentrySeededBugs, UnlockedSharedWriteInDoallIsARace) {
  for (const std::string& machine : all_machines()) {
    SCOPED_TRACE(machine);
    fc::Force f(sentry_config(4, machine, 7));
    f.shared<std::atomic<long>>("race_counter");  // link-time machines
    f.run([&](fc::Ctx& ctx) {
      // The classic seeded bug: every process updates a shared counter in
      // a DOALL with no lock and no barrier between the updates. The
      // payload op is atomic so the program itself has no undefined
      // behaviour (and stays TSan-clean) - but the *synchronization* is
      // absent, which is exactly what the lockset detector checks.
      auto& counter = ctx.shared<std::atomic<long>>("race_counter");
      ctx.presched_do(1, 8, 1, [&](std::int64_t) {
        counter.fetch_add(1, std::memory_order_relaxed);
        ctx.note_write(FORCE_SITE, &counter);
      });
    });
    auto* sn = f.env().sentry();
    ASSERT_NE(sn, nullptr);
    EXPECT_GE(sn->report_count(fc::Sentry::ReportKind::kRace), 1u)
        << "seeded race not flagged on " << machine;
  }
}

TEST(SentrySeededBugs, LockOrderInversionIsFlaggedWithoutADeadlock) {
  for (const std::string& machine : all_machines()) {
    SCOPED_TRACE(machine);
    fc::Force f(sentry_config(2, machine, 11));
    f.run([&](fc::Ctx& ctx) {
      auto& a = ctx.named_lock("order_a");
      auto& b = ctx.named_lock("order_b");
      // Phase 1: everyone acquires a -> b. Phase 2: b -> a. The barrier
      // between the phases means the deadlock can never actually strike -
      // the sentry must still flag the cycle in the acquisition-order
      // graph, because a schedule interleaving the two chains would hang.
      a.acquire();
      b.acquire();
      b.release();
      a.release();
      ctx.barrier();
      b.acquire();
      a.acquire();
      a.release();
      b.release();
    });
    auto* sn = f.env().sentry();
    ASSERT_NE(sn, nullptr);
    EXPECT_GE(sn->report_count(fc::Sentry::ReportKind::kLockOrder), 1u)
        << "lock-order inversion not flagged on " << machine;
    EXPECT_EQ(sn->report_count(fc::Sentry::ReportKind::kDeadlock), 0u);
  }
}

TEST(SentrySeededBugs, ProduceWithNoConsumeStalls) {
  for (const std::string& machine : all_machines()) {
    SCOPED_TRACE(machine);
    fc::ForceConfig cfg = sentry_config(2, machine, 13);
    cfg.sentry_stall_ms = 50;
    fc::Force f(cfg);
    auto* sn = f.env().sentry();
    ASSERT_NE(sn, nullptr);
    f.run([&](fc::Ctx& ctx) {
      auto& ch = ctx.async_var<long>(FORCE_SITE);
      if (ctx.me() == 1) {
        ch.produce(1);
        ch.produce(2);  // blocks: the variable is full and nobody consumes
      } else {
        // Wait for the watchdog to flag the blocked Produce, then rescue
        // process 1 so the run can end.
        while (sn->report_count(fc::Sentry::ReportKind::kStall) == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        EXPECT_EQ(ch.consume(), 1);
        EXPECT_EQ(ch.consume(), 2);
      }
    });
    EXPECT_GE(sn->report_count(fc::Sentry::ReportKind::kStall), 1u)
        << "blocked Produce not flagged on " << machine;
  }
}

// ---------------------------------------------------------------------------
// Clean programs: zero findings, even with the fuzzer widening schedules.
// ---------------------------------------------------------------------------

TEST(SentryClean, LockedSharedUpdatesAreNotARace) {
  for (const std::string& machine : all_machines()) {
    SCOPED_TRACE(machine);
    fc::Force f(sentry_config(4, machine, 21));
    f.shared<long>("locked_counter");  // link-time machines
    f.run([&](fc::Ctx& ctx) {
      auto& counter = ctx.shared<long>("locked_counter");
      ctx.presched_do(1, 8, 1, [&](std::int64_t) {
        ctx.critical(FORCE_SITE, [&] {
          ++counter;
          ctx.note_write(FORCE_SITE, &counter);
        });
      });
    });
    auto* sn = f.env().sentry();
    ASSERT_NE(sn, nullptr);
    EXPECT_EQ(sn->total_reports(), 0u)
        << "false positive on " << machine << ": "
        << (sn->reports().empty() ? std::string()
                                  : sn->reports().front().what);
  }
}

TEST(SentryClean, BarrierEpisodesOrderUnlockedPhases) {
  for (const std::string& machine : all_machines()) {
    SCOPED_TRACE(machine);
    fc::Force f(sentry_config(4, machine, 23));
    f.shared<long>("phase_value");  // link-time machines
    f.run([&](fc::Ctx& ctx) {
      auto& value = ctx.shared<long>("phase_value");
      // Single-writer phases separated by barriers: no locks anywhere,
      // ordered purely by barrier episodes - the Force's bread and butter.
      if (ctx.leader()) {
        value = 41;
        ctx.note_write(FORCE_SITE, &value);
      }
      ctx.barrier();
      long seen = value;
      ctx.note_read(FORCE_SITE, &value);
      EXPECT_EQ(seen, 41);
      ctx.barrier([&] {
        // Barrier-section write: ordered before every process's exit from
        // the barrier.
        value = 42;
        ctx.note_write(FORCE_SITE, &value);
      });
      ctx.note_read(FORCE_SITE, &value);
      EXPECT_EQ(value, 42);
    });
    auto* sn = f.env().sentry();
    ASSERT_NE(sn, nullptr);
    EXPECT_EQ(sn->total_reports(), 0u)
        << "false positive on " << machine << ": "
        << (sn->reports().empty() ? std::string()
                                  : sn->reports().front().what);
  }
}

TEST(SentryClean, MixedConstructProgramHasZeroFindings) {
  for (const std::string& machine : all_machines()) {
    SCOPED_TRACE(machine);
    fc::Force f(sentry_config(4, machine, 29));
    f.shared<long>("mixed_sum");  // link-time machines
    f.shared<std::atomic<int>>("mixed_done");
    f.run([&](fc::Ctx& ctx) {
      const int np = ctx.np();
      // Selfscheduled DOALL feeding a critical-guarded accumulator.
      auto& sum = ctx.shared<long>("mixed_sum");
      ctx.selfsched_do(FORCE_SITE, 1, 16, 1, [&](std::int64_t i) {
        ctx.critical(FORCE_SITE, [&] {
          sum += i;
          ctx.note_write(FORCE_SITE, &sum);
        });
      });
      ctx.barrier();
      EXPECT_EQ(sum, 136);
      // An async ring: each process produces one token, consumes its
      // neighbour's (produce/consume edges order the payload accesses).
      auto& ring = ctx.async_array<long>(FORCE_SITE, static_cast<std::size_t>(np));
      ring[static_cast<std::size_t>(ctx.me0())].produce(10 + ctx.me());
      const std::size_t next = static_cast<std::size_t>((ctx.me0() + 1) % np);
      const long got = ring[next].consume();
      EXPECT_EQ(got, 10 + static_cast<long>(next) + 1);
      ctx.barrier();
      // Askfor: the leader seeds np tasks, everyone works them dry.
      auto& monitor = ctx.askfor<int>(FORCE_SITE);
      if (ctx.leader()) {
        for (int t = 0; t < np; ++t) monitor.put(t);
      }
      ctx.barrier();
      std::atomic<int>& done = ctx.shared<std::atomic<int>>("mixed_done");
      monitor.work([&](int&, fc::Askfor<int>&) {
        done.fetch_add(1, std::memory_order_relaxed);
      });
      ctx.barrier();
      EXPECT_EQ(done.load(std::memory_order_relaxed), np);
    });
    auto* sn = f.env().sentry();
    ASSERT_NE(sn, nullptr);
    EXPECT_EQ(sn->total_reports(), 0u)
        << "false positive on " << machine << ": "
        << (sn->reports().empty() ? std::string()
                                  : sn->reports().front().what);
  }
}

// ---------------------------------------------------------------------------
// Knobs and report plumbing.
// ---------------------------------------------------------------------------

TEST(SentryKnobs, EnvironmentVariablesEnableTheSentry) {
  EnvVarGuard sentry("FORCE_SENTRY", "1");
  EnvVarGuard fuzz("FORCE_SCHEDULE_FUZZ", nullptr);
  fc::ForceConfig cfg;
  cfg.nproc = 2;
  fc::Force f(cfg);
  ASSERT_NE(f.env().sentry(), nullptr);
  EXPECT_FALSE(f.env().sentry()->fuzzing());
}

TEST(SentryKnobs, FuzzSeedImpliesSentry) {
  EnvVarGuard sentry("FORCE_SENTRY", nullptr);
  EnvVarGuard fuzz("FORCE_SCHEDULE_FUZZ", "99");
  fc::ForceConfig cfg;
  cfg.nproc = 2;
  fc::Force f(cfg);
  ASSERT_NE(f.env().sentry(), nullptr);
  EXPECT_TRUE(f.env().sentry()->fuzzing());
}

TEST(SentryKnobs, OffByDefaultAndReportKindNames) {
  EnvVarGuard sentry("FORCE_SENTRY", nullptr);
  EnvVarGuard fuzz("FORCE_SCHEDULE_FUZZ", nullptr);
  fc::ForceConfig cfg;
  cfg.nproc = 2;
  fc::Force f(cfg);
  EXPECT_EQ(f.env().sentry(), nullptr);
  EXPECT_STREQ(fc::Sentry::report_kind_name(fc::Sentry::ReportKind::kRace),
               "race");
  EXPECT_STREQ(
      fc::Sentry::report_kind_name(fc::Sentry::ReportKind::kLockOrder),
      "lock-order");
  EXPECT_STREQ(
      fc::Sentry::report_kind_name(fc::Sentry::ReportKind::kDeadlock),
      "deadlock");
  EXPECT_STREQ(fc::Sentry::report_kind_name(fc::Sentry::ReportKind::kStall),
               "stall");
}

// ---------------------------------------------------------------------------
// Static/dynamic agreement: forcelint's lock-order graph (rule R4) must
// find the same inversion cycle on the Force-dialect version of the
// program that the runtime sentry flags while executing it.
// ---------------------------------------------------------------------------

TEST(SentryCrossCheck, StaticLockGraphMatchesRuntimeInversionReport) {
  // The Force-dialect twin of LockOrderInversionIsFlaggedWithoutADeadlock:
  // a -> b in phase one, b -> a in phase two, a barrier between.
  const std::string source =
      "Force INVERT\n"
      "Shared integer X\n"
      "End declarations\n"
      "Lock order_a\n"
      "Lock order_b\n"
      "  X = 1;\n"
      "Unlock order_b\n"
      "Unlock order_a\n"
      "Barrier\n"
      "End barrier\n"
      "Lock order_b\n"
      "Lock order_a\n"
      "  X = 2;\n"
      "Unlock order_a\n"
      "Unlock order_b\n"
      "Join\n";
  force::preproc::DiagSink diags;
  const force::preproc::LintResult res =
      force::preproc::run_forcelint(source, {}, diags);
  const auto cycles = res.lock_graph.cycles();
  ASSERT_EQ(cycles.size(), 1u);
  const std::set<std::string> static_cycle(cycles[0].begin(),
                                           cycles[0].end());

  // Run the same acquisition pattern for real and collect the lock names
  // the sentry's inversion report mentions (labels read "lock '<name>'").
  fc::Force f(sentry_config(2, "native", 11));
  f.run([&](fc::Ctx& ctx) {
    auto& a = ctx.named_lock("order_a");
    auto& b = ctx.named_lock("order_b");
    a.acquire();
    b.acquire();
    b.release();
    a.release();
    ctx.barrier();
    b.acquire();
    a.acquire();
    a.release();
    b.release();
  });
  auto* sn = f.env().sentry();
  ASSERT_NE(sn, nullptr);
  ASSERT_GE(sn->report_count(fc::Sentry::ReportKind::kLockOrder), 1u);
  std::set<std::string> runtime_cycle;
  for (const auto& r : sn->reports()) {
    if (r.kind != fc::Sentry::ReportKind::kLockOrder) continue;
    const std::string& what = r.what;
    std::size_t pos = 0;
    while ((pos = what.find("lock '", pos)) != std::string::npos) {
      pos += 6;
      const std::size_t end = what.find('\'', pos);
      if (end == std::string::npos) break;
      runtime_cycle.insert(what.substr(pos, end - pos));
      pos = end + 1;
    }
  }
  EXPECT_EQ(static_cycle, runtime_cycle)
      << "forcelint and the runtime sentry disagree on the inversion cycle";
}

TEST(SentryKnobs, RaceReportNamesTheTrackedVariable) {
  fc::Force f(sentry_config(2, "native", 31));
  f.run([&](fc::Ctx& ctx) {
    auto& x = ctx.shared<std::atomic<long>>("named_for_report");
    x.fetch_add(1, std::memory_order_relaxed);
    ctx.note_write(FORCE_SITE, &x);
  });
  auto* sn = f.env().sentry();
  ASSERT_NE(sn, nullptr);
  ASSERT_GE(sn->report_count(fc::Sentry::ReportKind::kRace), 1u);
  bool named = false;
  for (const auto& r : sn->reports()) {
    if (r.what.find("named_for_report") != std::string::npos) named = true;
  }
  EXPECT_TRUE(named) << "race report does not carry the variable name";
}
