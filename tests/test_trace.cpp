// Tests for the execution tracer and its runtime integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/force.hpp"
#include "util/trace.hpp"

namespace fu = force::util;
namespace fc = force::core;

// --- TraceRing ----------------------------------------------------------------

TEST(TraceRing, RecordsInOrder) {
  fu::TraceRing ring(8);
  for (int i = 0; i < 5; ++i) {
    fu::TraceEvent e;
    e.begin_ns = i;
    e.end_ns = i;
    ring.record(e);
  }
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(events[static_cast<std::size_t>(i)].begin_ns, i);
  EXPECT_EQ(ring.recorded(), 5u);
}

TEST(TraceRing, WrapsKeepingTheNewest) {
  fu::TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    fu::TraceEvent e;
    e.begin_ns = i;
    ring.record(e);
  }
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().begin_ns, 6);
  EXPECT_EQ(events.back().begin_ns, 9);
  EXPECT_EQ(ring.recorded(), 10u);
}

TEST(TraceRing, ZeroCapacityThrows) {
  EXPECT_THROW(fu::TraceRing ring(0), fu::CheckError);
}

// Overflow by more than two wraps: the survivors must be exactly the last
// `capacity` events, still in record order - "most recent events win".
TEST(TraceRing, OverflowKeepsTheLastCapacityEventsInOrder) {
  fu::TraceRing ring(8);
  for (int i = 0; i < 20; ++i) {
    fu::TraceEvent e;
    e.begin_ns = i;
    e.arg = i;
    ring.record(e);
  }
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].begin_ns, 12 + i);
    EXPECT_EQ(events[static_cast<std::size_t>(i)].arg, 12 + i);
  }
  EXPECT_EQ(ring.recorded(), 20u);
}

// An overflowed ring must still export sane Chrome JSON: one event entry
// per survivor, newest args present, evicted args absent, braces balanced.
TEST(Tracer, OverflowedRingRoundTripsThroughChromeJson) {
  fu::Tracer tracer(1, /*events_per_process=*/8);
  for (int i = 0; i < 20; ++i) {
    tracer.record(0, fu::TraceKind::kLoopDispatch, 100 + i, 100 + i, i);
  }
  const auto events = tracer.all_events();
  ASSERT_EQ(events.size(), 8u);

  const std::string json = tracer.to_chrome_json();
  for (int survivor = 12; survivor < 20; ++survivor) {
    EXPECT_NE(json.find("\"args\":{\"arg\":" + std::to_string(survivor) + "}"),
              std::string::npos)
        << "survivor " << survivor << " missing from the export";
  }
  for (int evicted = 0; evicted < 12; ++evicted) {
    EXPECT_EQ(json.find("\"args\":{\"arg\":" + std::to_string(evicted) + "}"),
              std::string::npos)
        << "evicted event " << evicted << " leaked into the export";
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// --- Tracer --------------------------------------------------------------------

TEST(Tracer, SpanRecordsADuration) {
  fu::Tracer tracer(2);
  {
    fu::Tracer::Span span(&tracer, 1, fu::TraceKind::kCritical, 42);
    fu::spin_for_ns(100'000);
  }
  const auto events = tracer.all_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].proc, 1);
  EXPECT_EQ(events[0].kind, fu::TraceKind::kCritical);
  EXPECT_EQ(events[0].arg, 42);
  EXPECT_GT(events[0].end_ns - events[0].begin_ns, 50'000);
}

TEST(Tracer, InstantHasZeroDuration) {
  fu::Tracer tracer(1);
  tracer.instant(0, fu::TraceKind::kLoopDispatch, 7);
  const auto events = tracer.all_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].begin_ns, events[0].end_ns);
}

TEST(Tracer, EventsAreSortedByBeginTime) {
  fu::Tracer tracer(2);
  tracer.record(1, fu::TraceKind::kPhase, 300, 400);
  tracer.record(0, fu::TraceKind::kPhase, 100, 200);
  const auto events = tracer.all_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LT(events[0].begin_ns, events[1].begin_ns);
}

TEST(Tracer, RejectsBadProcessIds) {
  fu::Tracer tracer(2);
  EXPECT_THROW(tracer.record(2, fu::TraceKind::kPhase, 0, 0),
               fu::CheckError);
  EXPECT_THROW(tracer.record(-1, fu::TraceKind::kPhase, 0, 0),
               fu::CheckError);
}

TEST(Tracer, ChromeJsonIsWellFormed) {
  fu::Tracer tracer(2);
  tracer.record(0, fu::TraceKind::kBarrier, 1000, 2000, 5);
  tracer.instant(1, fu::TraceKind::kProduce, 9);
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"barrier\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);   // proc 0 -> tid 1
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  // Braces balance (cheap well-formedness proxy).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Tracer, WritesJsonFile) {
  fu::Tracer tracer(1);
  tracer.instant(0, fu::TraceKind::kConsume);
  const std::string path = ::testing::TempDir() + "/force_trace_test.json";
  ASSERT_TRUE(tracer.write_chrome_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("consume"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceKindNames, AllNamed) {
  for (auto k : {fu::TraceKind::kBarrier, fu::TraceKind::kSection,
                 fu::TraceKind::kCritical, fu::TraceKind::kLoopDispatch,
                 fu::TraceKind::kLoopRun, fu::TraceKind::kProduce,
                 fu::TraceKind::kConsume, fu::TraceKind::kAskforGrant,
                 fu::TraceKind::kPhase}) {
    EXPECT_STRNE(fu::trace_kind_name(k), "unknown");
  }
}

// --- runtime integration ---------------------------------------------------------

TEST(TraceIntegration, DisabledByDefault) {
  force::Force f({.nproc = 2});
  EXPECT_EQ(f.env().tracer(), nullptr);
  f.run([](fc::Ctx& ctx) { ctx.barrier(); });  // must not crash
}

TEST(TraceIntegration, RecordsBarriersCriticalsAndLoops) {
  fc::ForceConfig cfg;
  cfg.nproc = 3;
  cfg.trace = true;
  force::Force f(cfg);
  f.run([](fc::Ctx& ctx) {
    ctx.selfsched_do(FORCE_SITE, 1, 10, 1, [](std::int64_t) {});
    ctx.critical(FORCE_SITE, [] {});
    ctx.barrier([] {});
  });
  auto* tracer = f.env().tracer();
  ASSERT_NE(tracer, nullptr);
  const auto events = tracer->all_events();
  auto count = [&](fu::TraceKind k) {
    return std::count_if(events.begin(), events.end(),
                         [k](const fu::TraceEvent& e) { return e.kind == k; });
  };
  EXPECT_EQ(count(fu::TraceKind::kBarrier), 3);   // one per process
  EXPECT_EQ(count(fu::TraceKind::kSection), 1);   // exactly one executor
  EXPECT_EQ(count(fu::TraceKind::kCritical), 3);
  EXPECT_EQ(count(fu::TraceKind::kLoopRun), 3);
  // Dispatches: 10 in-range + 3 exhausted grabs.
  EXPECT_EQ(count(fu::TraceKind::kLoopDispatch), 13);
}

TEST(TraceIntegration, DispatchArgsCoverTheIndexSpace) {
  fc::ForceConfig cfg;
  cfg.nproc = 2;
  cfg.trace = true;
  force::Force f(cfg);
  f.run([](fc::Ctx& ctx) {
    ctx.selfsched_do(FORCE_SITE, 1, 6, 1, [](std::int64_t) {});
  });
  std::vector<std::int64_t> dispatched;
  for (const auto& e : f.env().tracer()->all_events()) {
    if (e.kind == fu::TraceKind::kLoopDispatch && e.arg >= 1 && e.arg <= 6) {
      dispatched.push_back(e.arg);
    }
  }
  std::sort(dispatched.begin(), dispatched.end());
  EXPECT_EQ(dispatched, (std::vector<std::int64_t>{1, 2, 3, 4, 5, 6}));
}

TEST(TraceIntegration, ExportsARunnableTimeline) {
  fc::ForceConfig cfg;
  cfg.nproc = 2;
  cfg.trace = true;
  force::Force f(cfg);
  f.run([](fc::Ctx& ctx) {
    for (int e = 0; e < 3; ++e) ctx.barrier();
  });
  const std::string json = f.env().tracer()->to_chrome_json();
  EXPECT_NE(json.find("\"name\":\"barrier\""), std::string::npos);
  EXPECT_GE(f.env().tracer()->total_recorded(), 6u);
}
