// Tests for the complete forcepp pipeline (paper §4.3): statement macro
// expansion, module/driver generation, machine-dependent differences, and
// structural error detection.
#include <gtest/gtest.h>

#include "preproc/translate.hpp"

namespace pp = force::preproc;

namespace {

pp::TranslationResult run(const std::string& src,
                          const std::string& machine = "native") {
  pp::TranslateOptions opts;
  opts.machine = machine;
  opts.source_name = "test.force";
  opts.emit_pass1 = true;
  return pp::translate(src, opts);
}

constexpr const char* kMinimal = "Force P\nJoin\n";

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

}  // namespace

TEST(Translate, MinimalProgramProducesDriverAndBody) {
  const auto r = run(kMinimal);
  ASSERT_TRUE(r.ok) << r.diags.render_all("test.force");
  EXPECT_TRUE(contains(r.cpp_code, "static void P_body(force::core::Ctx& ctx)"));
  EXPECT_TRUE(contains(r.cpp_code, "int main("));
  EXPECT_TRUE(contains(r.cpp_code, "config.machine = \"native\";"));
  EXPECT_TRUE(contains(r.cpp_code, "force_.run(P_body);"));
  EXPECT_TRUE(contains(r.cpp_code, "#include \"theforce.hpp\""));
}

TEST(Translate, DeclarationsBindVariables) {
  const auto r = run(
      "Force P\n"
      "Shared real X(100)\n"
      "Shared integer N\n"
      "Private real T\n"
      "Async real V\n"
      "Join\n");
  ASSERT_TRUE(r.ok) << r.diags.render_all("test.force");
  EXPECT_TRUE(contains(
      r.cpp_code,
      "auto& X = ctx.shared<std::array<double, 100>>(\"X\");"));
  EXPECT_TRUE(contains(r.cpp_code, "auto& N = ctx.shared<std::int64_t>(\"N\");"));
  EXPECT_TRUE(contains(r.cpp_code, "double T{};"));
  EXPECT_TRUE(contains(r.cpp_code,
                       "auto& V = ctx.async_named<double>(\"V\");"));
}

TEST(Translate, TwoDimensionalArraysNestRowMajor) {
  const auto r = run("Force P\nShared real A(10,20)\nJoin\n");
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(contains(
      r.cpp_code,
      "ctx.shared<std::array<std::array<double, 20>, 10>>(\"A\")"));
}

TEST(Translate, ConstructsExpandToRuntimeCalls) {
  const auto r = run(
      "Force P\n"
      "Shared integer S\n"
      "Private integer I\n"
      "Barrier\n"
      "  S = 0;\n"
      "End barrier\n"
      "Selfsched DO 10 I = 1, 100, 2\n"
      "  S += I;\n"
      "10 End Selfsched DO\n"
      "Critical L1\n"
      "  S += 1;\n"
      "End critical\n"
      "Join\n");
  ASSERT_TRUE(r.ok) << r.diags.render_all("test.force");
  EXPECT_TRUE(contains(r.cpp_code, "ctx.barrier([&] {"));
  EXPECT_TRUE(contains(
      r.cpp_code,
      "ctx.selfsched_do(FORCE_SITE_TAGGED(\"L10\"), (1), (100), (2), "
      "[&](std::int64_t I) {"));
  EXPECT_TRUE(
      contains(r.cpp_code, "ctx.critical(FORCE_SITE_TAGGED(\"L1\"), [&] {"));
}

TEST(Translate, Do2AndGuidedExpandToRuntimeCalls) {
  const auto r = run(
      "Force P\n"
      "Private integer I, J, K\n"
      "Selfsched DO2 30 I = 0, 7 ; J = 0, 7\n"
      "  (void)(I + J);\n"
      "30 End Selfsched DO2\n"
      "Presched DO2 40 I = 1, 4 ; J = 1, 4\n"
      "  (void)(I * J);\n"
      "40 End Presched DO2\n"
      "Guided DO 50 K = 1, 100\n"
      "  (void)K;\n"
      "50 End Guided DO\n"
      "Join\n");
  ASSERT_TRUE(r.ok) << r.diags.render_all("test.force");
  EXPECT_TRUE(contains(
      r.cpp_code,
      "ctx.selfsched_do2(FORCE_SITE_TAGGED(\"L30\"), (0), (7), (1), (0), "
      "(7), (1), [&](std::int64_t I, std::int64_t J) {"));
  EXPECT_TRUE(contains(
      r.cpp_code,
      "ctx.presched_do2((1), (4), (1), (1), (4), (1), [&](std::int64_t I, "
      "std::int64_t J) {"));
  EXPECT_TRUE(contains(
      r.cpp_code,
      "ctx.guided_do(FORCE_SITE_TAGGED(\"L50\"), (1), (100), (1), "
      "[&](std::int64_t K) {"));
}

TEST(Translate, AskforBlockExpandsToMonitorWork) {
  const auto r = run(
      "Force P\n"
      "Seedwork 300 1\n"
      "Askfor 300 T of real\n"
      "  Putwork T / 2.0\n"
      "  Probend\n"
      "300 End Askfor\n"
      "Join\n");
  ASSERT_TRUE(r.ok) << r.diags.render_all("test.force");
  // The Seedwork precedes the block but gets the block's task type (real).
  EXPECT_TRUE(contains(r.cpp_code,
                       "ctx.askfor_named<double>(\"L300\").put(1);"));
  EXPECT_TRUE(contains(r.cpp_code, "auto& askfor__ = ctx.askfor_named<double>(\"L300\");"));
  EXPECT_TRUE(contains(
      r.cpp_code,
      "askfor__.work([&](double& T, force::core::Askfor<double>& "
      "askfor_self__) {"));
  EXPECT_TRUE(contains(r.cpp_code, "askfor_self__.put(T / 2.0);"));
  EXPECT_TRUE(contains(r.cpp_code, "askfor_self__.probend();"));
}

TEST(Translate, AskforErrors) {
  // Putwork outside a block.
  EXPECT_FALSE(run("Force P\nPutwork 1\nJoin\n").ok);
  // Probend outside a block.
  EXPECT_FALSE(run("Force P\nProbend\nJoin\n").ok);
  // Seedwork without a matching block.
  EXPECT_FALSE(run("Force P\nSeedwork 9 1\nJoin\n").ok);
  // Mismatched End label.
  EXPECT_FALSE(run("Force P\nAskfor 1 T of integer\n2 End Askfor\nJoin\n").ok);
}

TEST(Translate, RawLockStatements) {
  const auto r = run(
      "Force P\nLock GUARD\nx();\nUnlock GUARD\nJoin\n");
  ASSERT_TRUE(r.ok) << r.diags.render_all("test.force");
  EXPECT_TRUE(contains(r.cpp_code, "ctx.named_lock(\"GUARD\").acquire();"));
  EXPECT_TRUE(contains(r.cpp_code, "ctx.named_lock(\"GUARD\").release();"));
}

TEST(Translate, ReduceStatementUsesDeclaredType) {
  const auto r = run(
      "Force P\n"
      "Shared real TOTAL\n"
      "Shared integer COUNT\n"
      "Private real L\n"
      "Private integer N\n"
      "Reduce L into TOTAL with max\n"
      "Reduce N into COUNT\n"
      "Join\n");
  ASSERT_TRUE(r.ok) << r.diags.render_all("test.force");
  EXPECT_TRUE(contains(
      r.cpp_code,
      "ctx.reduce_into<double>(FORCE_SITE_TAGGED(\"RTOTAL\"), (L), TOTAL, "
      "[](double a, double b) { return a > b ? a : b; });"));
  EXPECT_TRUE(contains(
      r.cpp_code,
      "ctx.reduce_into<std::int64_t>(FORCE_SITE_TAGGED(\"RCOUNT\"), (N), "
      "COUNT, [](std::int64_t a, std::int64_t b) { return a + b; });"));
}

TEST(Translate, ReduceErrors) {
  // Undeclared target.
  EXPECT_FALSE(run("Force P\nPrivate real L\nReduce L into GHOST\nJoin\n").ok);
  // Private target (must be a shared scalar).
  EXPECT_FALSE(
      run("Force P\nPrivate real L, T\nReduce L into T\nJoin\n").ok);
  // Array target.
  EXPECT_FALSE(
      run("Force P\nShared real A(4)\nPrivate real L\nReduce L into A\nJoin\n")
          .ok);
  // Unknown operator.
  EXPECT_FALSE(run("Force P\nShared real T\nPrivate real L\n"
                   "Reduce L into T with xor\nJoin\n")
                   .ok);
}

TEST(Translate, PcaseExpandsBlocks) {
  const auto r = run(
      "Force P\n"
      "Pcase Selfsched\n"
      "Usect\n"
      "  int x = 1;\n"
      "Csect (2 > 1)\n"
      "  int y = 2;\n"
      "End pcase\n"
      "Join\n");
  ASSERT_TRUE(r.ok) << r.diags.render_all("test.force");
  EXPECT_TRUE(contains(r.cpp_code, "auto pcase__ = ctx.pcase(FORCE_SITE);"));
  EXPECT_TRUE(contains(r.cpp_code, "pcase__.sect([&] {"));
  EXPECT_TRUE(contains(r.cpp_code, "pcase__.sect_if((2 > 1), [&] {"));
  EXPECT_TRUE(contains(r.cpp_code, "pcase__.run_selfsched();"));
}

TEST(Translate, AsyncStatements) {
  const auto r = run(
      "Force P\n"
      "Async real V\n"
      "Private real T\n"
      "Produce V = 1.5\n"
      "Consume V into T\n"
      "Copy V into T\n"
      "Isfull V into T\n"
      "Void V\n"
      "Join\n");
  ASSERT_TRUE(r.ok) << r.diags.render_all("test.force");
  EXPECT_TRUE(contains(r.cpp_code, "V.produce(1.5);"));
  EXPECT_TRUE(contains(r.cpp_code, "T = V.consume();"));
  EXPECT_TRUE(contains(r.cpp_code, "T = V.copy();"));
  EXPECT_TRUE(contains(r.cpp_code, "T = V.is_full();"));
  EXPECT_TRUE(contains(r.cpp_code, "V.void_state();"));
}

TEST(Translate, ForcesubGeneratesFunctionAndRegistration) {
  const auto r = run(
      "Force P\n"
      "Externf SUB1\n"
      "Forcecall SUB1\n"
      "Join\n"
      "Forcesub SUB1\n"
      "Barrier\n"
      "End barrier\n"
      "End Forcesub\n");
  ASSERT_TRUE(r.ok) << r.diags.render_all("test.force");
  EXPECT_TRUE(contains(r.cpp_code,
                       "static void SUB1_body(force::core::Ctx& ctx)"));
  EXPECT_TRUE(contains(r.cpp_code, "ctx.call(\"SUB1\");"));
  EXPECT_TRUE(contains(
      r.cpp_code,
      "force_.subroutines().register_sub(\"SUB1\", nullptr, SUB1_body);"));
}

// --- the machine-dependent layer in generated code --------------------------------

TEST(Translate, CompileTimeMachinesStripToCommon) {
  const auto r = run("Force P\nShared real X\nJoin\n", "hep");
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(contains(r.cpp_code, "// COMMON /X/"));
  EXPECT_FALSE(contains(r.cpp_code, "_startup"));  // no startup routines
}

TEST(Translate, SequentGeneratesStartupRoutines) {
  const auto r = run(
      "Force P\n"
      "Shared real X(10)\n"
      "Join\n"
      "Forcesub S\n"
      "Shared integer Y\n"
      "End Forcesub\n",
      "sequent");
  ASSERT_TRUE(r.ok) << r.diags.render_all("test.force");
  EXPECT_TRUE(contains(r.cpp_code,
                       "static void P_startup(force::machdep::SharedArena"));
  EXPECT_TRUE(contains(r.cpp_code,
                       "static void S_startup(force::machdep::SharedArena"));
  EXPECT_TRUE(contains(r.cpp_code, "arena.declare(\"X\""));
  EXPECT_TRUE(contains(r.cpp_code, "arena.declare(\"Y\""));
  // Driver wires main first, then subroutines (the paper's call order).
  const auto main_pos = r.cpp_code.find("register_module(\"P\"");
  const auto sub_pos = r.cpp_code.find("register_module(\"S\"");
  ASSERT_NE(main_pos, std::string::npos);
  ASSERT_NE(sub_pos, std::string::npos);
  EXPECT_LT(main_pos, sub_pos);
}

TEST(Translate, MachineNameAppearsInDriver) {
  for (const char* machine : {"hep", "flex32", "encore", "sequent",
                              "alliant", "cray2", "native"}) {
    const auto r = run(kMinimal, machine);
    ASSERT_TRUE(r.ok) << machine;
    EXPECT_TRUE(contains(r.cpp_code,
                         std::string("config.machine = \"") + machine +
                             "\";"))
        << machine;
  }
}

TEST(Translate, ProcessModelOptionBakesIntoTheDriver) {
  pp::TranslateOptions opts;
  opts.machine = "encore";
  opts.source_name = "test.force";
  opts.process_model = "os-fork";
  const auto r = pp::translate(kMinimal, opts);
  ASSERT_TRUE(r.ok) << r.diags.render_all("test.force");
  EXPECT_TRUE(contains(r.cpp_code, "config.process_model = \"os-fork\";"));
  EXPECT_TRUE(contains(r.cpp_code, "os-fork model"));
  // Without the option the line must be absent - the machine's own model
  // stays in charge.
  const auto plain = run(kMinimal, "encore");
  EXPECT_FALSE(contains(plain.cpp_code, "config.process_model"));
}

TEST(Translate, SameSourceDiffersOnlyInMachineLayer) {
  // The machine-independent part of the generated code is identical: the
  // bodies differ only in comments and the generated driver/startup.
  const auto hep = run(kMinimal, "hep");
  const auto cray = run(kMinimal, "cray2");
  EXPECT_TRUE(contains(hep.cpp_code, "P_body"));
  EXPECT_TRUE(contains(cray.cpp_code, "P_body"));
  EXPECT_NE(hep.cpp_code, cray.cpp_code);  // drivers differ
}

// --- structural errors -------------------------------------------------------------

TEST(Translate, MissingMainIsAnError) {
  const auto r = run("Barrier\nEnd barrier\n");
  EXPECT_FALSE(r.ok);
}

TEST(Translate, MissingJoinIsAnError) {
  const auto r = run("Force P\n");
  EXPECT_FALSE(r.ok);
}

TEST(Translate, MismatchedDoLabelsAreErrors) {
  const auto r = run(
      "Force P\n"
      "Private integer I\n"
      "Selfsched DO 10 I = 1, 5\n"
      "20 End Selfsched DO\n"
      "Join\n");
  EXPECT_FALSE(r.ok);
}

TEST(Translate, UnclosedConstructIsAnError) {
  const auto r = run("Force P\nBarrier\nJoin\n");
  EXPECT_FALSE(r.ok);
}

TEST(Translate, UsectOutsidePcaseIsAnError) {
  const auto r = run("Force P\nUsect\nJoin\n");
  EXPECT_FALSE(r.ok);
}

TEST(Translate, DuplicateDeclarationIsAnError) {
  const auto r = run("Force P\nShared real X\nShared integer X\nJoin\n");
  EXPECT_FALSE(r.ok);
}

TEST(Translate, SecondMainIsAnError) {
  const auto r = run("Force P\nJoin\nForce Q\nJoin\n");
  EXPECT_FALSE(r.ok);
}

TEST(Translate, ExternfWithoutLocalForcesubWiresCrossUnitRegistration) {
  const auto r = run("Force P\nExternf GHOST\nForcecall GHOST\nJoin\n");
  EXPECT_TRUE(r.ok);
  // The driver declares and calls the separately compiled module's
  // registration entry point.
  EXPECT_TRUE(contains(r.cpp_code, "void force_register_GHOST(force::Force&);"));
  EXPECT_TRUE(contains(r.cpp_code, "force_register_GHOST(force_);"));
}

TEST(Translate, ModuleModeEmitsRegistrationsAndNoDriver) {
  pp::TranslateOptions opts;
  opts.machine = "sequent";
  opts.module_mode = true;
  const auto r = pp::translate(
      "Forcesub HELPER\n"
      "Shared integer HVAR\n"
      "Critical HL\n"
      "  HVAR = HVAR + 1;\n"
      "End critical\n"
      "End Forcesub\n",
      opts);
  ASSERT_TRUE(r.ok) << r.diags.render_all("mod.force");
  EXPECT_TRUE(contains(r.cpp_code,
                       "void force_register_HELPER(force::Force& force_)"));
  EXPECT_TRUE(contains(r.cpp_code, "register_module(\"HELPER\""));
  EXPECT_TRUE(contains(r.cpp_code, "register_sub(\"HELPER\""));
  EXPECT_FALSE(contains(r.cpp_code, "int main("));
}

TEST(Translate, ModuleModeRejectsMainPrograms) {
  pp::TranslateOptions opts;
  opts.module_mode = true;
  EXPECT_FALSE(pp::translate("Force P\nJoin\n", opts).ok);
  EXPECT_FALSE(pp::translate("! nothing\n", opts).ok);
}

TEST(Translate, Pass1TextIsEmittedOnRequest) {
  const auto r = run(kMinimal);
  EXPECT_TRUE(contains(r.pass1_text, "@force_main(P)"));
  EXPECT_TRUE(contains(r.pass1_text, "@join()"));
}

TEST(Translate, ExpansionCountIsReported) {
  const auto r = run(kMinimal);
  EXPECT_GE(r.macro_expansions, 2u);
}

TEST(Translate, ContextExposesModules) {
  const auto r = run(
      "Force MAIN1\nShared real X\nJoin\nForcesub HELPER\nEnd Forcesub\n");
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.context.modules.size(), 2u);
  EXPECT_EQ(r.context.modules[0].name, "MAIN1");
  EXPECT_TRUE(r.context.modules[0].is_main);
  EXPECT_EQ(r.context.modules[0].shared_variables().size(), 1u);
  EXPECT_EQ(r.context.modules[1].name, "HELPER");
  EXPECT_FALSE(r.context.modules[1].is_main);
}
