// Tests for the macro processor (the "m4" stage): templates, natives,
// utility macros, inline expansion, recursion limits.
#include <gtest/gtest.h>

#include "preproc/macro.hpp"
#include "preproc/textutil.hpp"

namespace pp = force::preproc;

namespace {
std::string expand1(pp::MacroProcessor& mp, const std::string& line) {
  pp::DiagSink diags;
  auto out = mp.expand_line(line, 1, diags);
  EXPECT_TRUE(diags.ok()) << diags.render_all("<test>");
  return pp::join_lines(out);
}
}  // namespace

TEST(Macro, TemplateSubstitution) {
  pp::MacroProcessor mp;
  mp.define("greet", "hello $1, from $0 with $# args");
  EXPECT_EQ(expand1(mp, "@greet(world, extra)"),
            "hello world, from greet with 2 args\n");
}

TEST(Macro, DollarStarJoinsAllArgs) {
  pp::MacroProcessor mp;
  mp.define("list", "[$*]");
  EXPECT_EQ(expand1(mp, "@list(a, b, c)"), "[a, b, c]\n");
}

TEST(Macro, MissingArgsSubstituteEmpty) {
  pp::MacroProcessor mp;
  mp.define("pair", "($1|$2)");
  EXPECT_EQ(expand1(mp, "@pair(x)"), "(x|)\n");
}

TEST(Macro, MultiLineTemplateBody) {
  pp::MacroProcessor mp;
  mp.define("block", "begin $1\nend $1");
  pp::DiagSink diags;
  auto out = mp.expand_line("@block(x)", 1, diags);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "begin x");
  EXPECT_EQ(out[1], "end x");
}

TEST(Macro, NestedExpansion) {
  pp::MacroProcessor mp;
  mp.define("inner", "<$1>");
  mp.define("outer", "@inner($1)");
  EXPECT_EQ(expand1(mp, "@outer(y)"), "<y>\n");
}

TEST(Macro, InlineExpansionInsideALine) {
  pp::MacroProcessor mp;
  mp.define("name", "FORCE");
  EXPECT_EQ(expand1(mp, "the @name() library"), "the FORCE library\n");
}

TEST(Macro, UndefinedCallsPassThrough) {
  pp::MacroProcessor mp;
  EXPECT_EQ(expand1(mp, "mail @example.com(x)"), "mail @example.com(x)\n");
}

TEST(Macro, NativeMacroReceivesArgs) {
  pp::MacroProcessor mp;
  mp.define_native("rev", [](const std::vector<std::string>& args, int,
                             pp::DiagSink&) -> std::vector<std::string> {
    std::string out;
    for (auto it = args.rbegin(); it != args.rend(); ++it) {
      if (!out.empty()) out += ",";
      out += *it;
    }
    return {out};
  });
  EXPECT_EQ(expand1(mp, "@rev(1, 2, 3)"), "3,2,1\n");
}

TEST(Macro, RedefinitionAndUndefine) {
  pp::MacroProcessor mp;
  mp.define("m", "one");
  EXPECT_EQ(expand1(mp, "@m()"), "one\n");
  mp.define("m", "two");
  EXPECT_EQ(expand1(mp, "@m()"), "two\n");
  mp.undefine("m");
  EXPECT_FALSE(mp.has("m"));
  EXPECT_EQ(expand1(mp, "@m()"), "@m()\n");  // now passes through
}

TEST(Macro, RecursiveMacroIsDiagnosed) {
  pp::MacroProcessor mp;
  mp.define("loop", "@loop()");
  pp::DiagSink diags;
  (void)mp.expand_line("@loop()", 1, diags);
  EXPECT_FALSE(diags.ok());
}

TEST(Macro, BalancedParensInArgs) {
  pp::MacroProcessor mp;
  mp.define("call", "$1;");
  EXPECT_EQ(expand1(mp, "@call(f(g(1), 2))"), "f(g(1), 2);\n");
}

// --- the paper's utility macros ---------------------------------------------------

TEST(UtilityMacros, First) {
  pp::MacroProcessor mp;
  EXPECT_EQ(expand1(mp, "@first(a, b, c)"), "a\n");
  EXPECT_EQ(expand1(mp, "@first()"), "\n");
}

TEST(UtilityMacros, Rest) {
  pp::MacroProcessor mp;
  EXPECT_EQ(expand1(mp, "@rest(a, b, c)"), "b, c\n");
}

TEST(UtilityMacros, ConcatAndLen) {
  pp::MacroProcessor mp;
  EXPECT_EQ(expand1(mp, "@concat(LOOP, 100)"), "LOOP100\n");
  EXPECT_EQ(expand1(mp, "@len(a, b, c, d)"), "4\n");
}

TEST(UtilityMacros, Ifelse) {
  pp::MacroProcessor mp;
  EXPECT_EQ(expand1(mp, "@ifelse(x, x, same, diff)"), "same\n");
  EXPECT_EQ(expand1(mp, "@ifelse(x, y, same, diff)"), "diff\n");
  EXPECT_EQ(expand1(mp, "@ifelse(x, y, same)"), "\n");
}

TEST(UtilityMacros, StoreAndFetch) {
  pp::MacroProcessor mp;
  EXPECT_EQ(expand1(mp, "@store(mode, selfsched)"), "\n");
  EXPECT_EQ(expand1(mp, "@fetch(mode)"), "selfsched\n");
  EXPECT_EQ(expand1(mp, "@fetch(missing, fallback)"), "fallback\n");
}

TEST(UtilityMacros, ComposeStatefulConstructs) {
  // The paper's "storing and retrieving definitions" in action: a macro
  // whose expansion depends on stored state.
  pp::MacroProcessor mp;
  mp.define("open_or_close",
            "@ifelse(@fetch(open, 0), 1, closing, opening)@store(open, 1)");
  EXPECT_EQ(expand1(mp, "@open_or_close()"), "opening\n");
  EXPECT_EQ(expand1(mp, "@open_or_close()"), "closing\n");
}

TEST(Macro, ExpansionCountAdvances) {
  pp::MacroProcessor mp;
  mp.define("a", "x");
  const auto before = mp.expansions();
  (void)expand1(mp, "@a() @a()");
  EXPECT_EQ(mp.expansions(), before + 2);
}
