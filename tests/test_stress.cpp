// Stress / property tests: randomized SPMD programs must compute identical
// results on every machine model and for every force size - the paper's
// portability and NP-independence claims under adversarial composition.
//
// A seeded RNG builds a random sequence of construct "ops"; the same
// sequence (same seed) is executed everywhere and its deterministic digest
// compared. Digests fold in only order-independent quantities (sums over
// commutative reductions), so any divergence is a genuine semantics bug.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>

#include "core/force.hpp"
#include "util/rng.hpp"

namespace fc = force::core;

namespace {

/// One randomized program: `ops` constructs drawn from the full set.
/// Returns an order-independent digest of everything it computed.
std::uint64_t run_random_program(const std::string& machine, int np,
                                 std::uint64_t seed, int ops) {
  fc::ForceConfig cfg;
  cfg.machine = machine;
  cfg.nproc = np;
  cfg.seed = seed;
  force::Force f(cfg);
  auto& digest = f.shared<std::atomic<std::uint64_t>>("digest");

  // The op schedule must be identical on every process: derive it from the
  // seed, not from the per-process RNG.
  force::util::Xoshiro256 script(seed);
  struct Op {
    int kind;
    std::int64_t a, b;
  };
  std::vector<Op> plan;
  plan.reserve(static_cast<std::size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    plan.push_back({static_cast<int>(script.uniform_int(0, 6)),
                    script.uniform_int(1, 60), script.uniform_int(1, 8)});
  }

  // Pre-declare every shared name the program will touch, as the startup
  // routines would: on the link-time (sequent) machine, first touch after
  // link() is an error by design.
  for (int i = 0; i < ops; ++i) {
    (void)f.shared<std::int64_t>("ctr" + std::to_string(i));
    (void)f.shared<std::atomic<std::int64_t>>("pc" + std::to_string(i));
  }

  f.run([&](fc::Ctx& ctx) {
    auto fold = [&](std::uint64_t v) {
      // Commutative fold: addition of hashed values.
      force::util::SplitMix64 h(v);
      digest.fetch_add(h.next(), std::memory_order_relaxed);
    };
    int op_index = 0;
    for (const Op& op : plan) {
      const auto tag = std::to_string(op_index++);
      switch (op.kind) {
        case 0: {  // selfsched sum (partition-independent via reduce)
          std::int64_t local = 0;
          ctx.selfsched_do(FORCE_SITE_TAGGED("ss"), 1, op.a, 1,
                           [&](std::int64_t i) { local += i * op.b; });
          const auto total = ctx.reduce<std::int64_t>(
              FORCE_SITE_TAGGED("ssred"), local,
              [](std::int64_t x, std::int64_t y) { return x + y; });
          if (ctx.leader()) fold(static_cast<std::uint64_t>(total) + 0x1000);
          break;
        }
        case 1: {  // presched sum (negative stride)
          std::int64_t local = 0;
          ctx.presched_do(op.a, 1, -1,
                          [&](std::int64_t i) { local += i; });
          const auto total = ctx.reduce<std::int64_t>(
              FORCE_SITE_TAGGED("psred"), local,
              [](std::int64_t x, std::int64_t y) { return x + y; });
          if (ctx.leader()) fold(static_cast<std::uint64_t>(total) + 0x2000);
          break;
        }
        case 2: {  // barrier with section
          ctx.barrier([&] { fold(0x3000 + static_cast<std::uint64_t>(op.a)); });
          break;
        }
        case 3: {  // critical increment + reduce check
          auto& counter =
              ctx.shared<std::int64_t>("ctr" + tag);
          ctx.critical(FORCE_SITE_TAGGED("crit"), [&] { ++counter; });
          const auto total = ctx.reduce<std::int64_t>(
              FORCE_SITE_TAGGED("red"), 1,
              [](std::int64_t x, std::int64_t y) { return x + y; });
          // total == np; fold an np-independent quantity.
          if (ctx.leader()) {
            fold(static_cast<std::uint64_t>(total - ctx.np()) + 0x4000);
          }
          break;
        }
        case 4: {  // pcase
          std::atomic<std::int64_t>* acc =
              &ctx.shared<std::atomic<std::int64_t>>("pc" + tag);
          auto pcase = ctx.pcase(FORCE_SITE_TAGGED("pcase"));
          for (std::int64_t b = 0; b < op.b; ++b) {
            pcase.sect([acc, b] { acc->fetch_add(b + 1); });
          }
          pcase.run_selfsched();
          ctx.barrier();
          if (ctx.leader()) {
            fold(static_cast<std::uint64_t>(acc->load()) + 0x5000);
          }
          break;
        }
        case 5: {  // askfor splitting tasks
          auto& monitor =
              ctx.askfor<std::int64_t>(FORCE_SITE_TAGGED(("af" + tag).c_str()));
          if (ctx.leader()) monitor.put(op.b);
          ctx.barrier();
          std::int64_t local = 0;
          monitor.work(
              [&](std::int64_t& v, fc::Askfor<std::int64_t>& self) {
                local += v;
                if (v > 1) {
                  self.put(v - 1);
                }
              });
          const auto total = ctx.reduce<std::int64_t>(
              FORCE_SITE_TAGGED("afred"), local,
              [](std::int64_t x, std::int64_t y) { return x + y; });
          if (ctx.leader()) fold(static_cast<std::uint64_t>(total) + 0x6000);
          break;
        }
        default: {  // async relay
          auto& relay =
              ctx.async_var<std::int64_t>(FORCE_SITE_TAGGED("relay"));
          if (ctx.leader()) relay.produce(op.a);
          const std::int64_t v = relay.consume();
          relay.produce(v + 1);
          // Final value is op.a + np; fold the np-independent part.
          const int np = ctx.np();
          ctx.barrier([&, np] {
            fold(static_cast<std::uint64_t>(relay.consume() - np) + 0x7000);
          });
          break;
        }
      }
    }
    ctx.barrier();
  });
  return digest.load();
}

}  // namespace

TEST(Stress, SameDigestOnEveryMachine) {
  constexpr std::uint64_t kSeed = 0xBADC0FFEE;
  constexpr int kOps = 12;
  const std::uint64_t reference =
      run_random_program("native", 4, kSeed, kOps);
  for (const auto& machine : force::machdep::machine_names()) {
    EXPECT_EQ(run_random_program(machine, 4, kSeed, kOps), reference)
        << machine;
  }
}

TEST(Stress, SameDigestForEveryForceSize) {
  constexpr std::uint64_t kSeed = 0x5EEDBEEF;
  constexpr int kOps = 10;
  const std::uint64_t reference = run_random_program("native", 1, kSeed, kOps);
  for (int np : {2, 3, 5, 8}) {
    EXPECT_EQ(run_random_program("native", np, kSeed, kOps), reference)
        << "np=" << np;
  }
}

TEST(Stress, ManySeedsOnTwoExtremeMachines) {
  // hep (hardware full/empty, cheap create) and cray2 (system locks,
  // scarce budget) are the most different lower layers; sweep seeds.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto a = run_random_program("hep", 3, seed * 7919, 8);
    const auto b = run_random_program("cray2", 3, seed * 7919, 8);
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

TEST(Stress, RepeatedRunsOfOneForceAccumulateConsistently) {
  force::Force f({.nproc = 4});
  auto& total = f.shared<std::int64_t>("total");
  for (int round = 0; round < 10; ++round) {
    f.run([&](fc::Ctx& ctx) {
      std::int64_t local = 0;
      ctx.guided_do(FORCE_SITE, 1, 200, 1,
                    [&](std::int64_t i) { local += i; });
      ctx.critical(FORCE_SITE, [&] { total += local; });
      ctx.barrier();
      ctx.selfsched_do2(FORCE_SITE, 1, 5, 1, 1, 5, 1,
                        [&](std::int64_t, std::int64_t) {});
      ctx.barrier();
    });
  }
  EXPECT_EQ(total, 10 * 20100);
}
