// Tests for asynchronous variables (paper §3.2, §3.4, §4.2): full/empty
// semantics via the two-lock software scheme and the HEP hardware path,
// conservation under contention, Copy, Void and state tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/async.hpp"

namespace fc = force::core;

namespace {
fc::ForceConfig test_config(const std::string& machine) {
  fc::ForceConfig cfg;
  cfg.nproc = 4;
  cfg.machine = machine;
  return cfg;
}
}  // namespace

// Parameterized over machine models: "hep" exercises the hardware path,
// everything else the two-lock scheme.
class AsyncTest : public ::testing::TestWithParam<std::string> {
 protected:
  AsyncTest() : env_(test_config(GetParam())) {}
  fc::ForceEnvironment env_;
};

TEST_P(AsyncTest, StartsEmpty) {
  fc::Async<int> v(env_);
  EXPECT_FALSE(v.is_full());
}

TEST_P(AsyncTest, ProduceConsumeRoundTrip) {
  fc::Async<double> v(env_);
  v.produce(2.5);
  EXPECT_TRUE(v.is_full());
  EXPECT_DOUBLE_EQ(v.consume(), 2.5);
  EXPECT_FALSE(v.is_full());
}

TEST_P(AsyncTest, CopyLeavesFull) {
  fc::Async<int> v(env_);
  v.produce(9);
  EXPECT_EQ(v.copy(), 9);
  EXPECT_TRUE(v.is_full());
  EXPECT_EQ(v.copy(), 9);
  EXPECT_EQ(v.consume(), 9);
  EXPECT_FALSE(v.is_full());
}

TEST_P(AsyncTest, VoidEmptiesFromAnyState) {
  fc::Async<int> v(env_);
  v.void_state();  // already empty: no-op
  EXPECT_FALSE(v.is_full());
  v.produce(1);
  v.void_state();
  EXPECT_FALSE(v.is_full());
  v.produce(2);  // usable afterwards
  EXPECT_EQ(v.consume(), 2);
}

TEST_P(AsyncTest, TryOperations) {
  fc::Async<int> v(env_);
  int out = 0;
  EXPECT_FALSE(v.try_consume(&out));
  EXPECT_TRUE(v.try_produce(5));
  EXPECT_FALSE(v.try_produce(6));  // full
  EXPECT_TRUE(v.try_consume(&out));
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(v.try_consume(&out));
}

TEST_P(AsyncTest, ProduceBlocksWhileFull) {
  fc::Async<int> v(env_);
  v.produce(1);
  std::atomic<bool> second_done{false};
  std::jthread producer([&] {
    v.produce(2);
    second_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_done.load());
  EXPECT_EQ(v.consume(), 1);
  producer.join();
  EXPECT_TRUE(second_done.load());
  EXPECT_EQ(v.consume(), 2);
}

TEST_P(AsyncTest, ConsumeBlocksWhileEmpty) {
  fc::Async<int> v(env_);
  std::atomic<int> got{-1};
  std::jthread consumer([&] { got = v.consume(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), -1);
  v.produce(7);
  consumer.join();
  EXPECT_EQ(got.load(), 7);
}

TEST_P(AsyncTest, ConservationUnderContention) {
  // Multiset in == multiset out with several producers and consumers.
  fc::Async<std::int64_t> v(env_);
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kEach = 300;
  std::mutex m;
  std::vector<std::int64_t> consumed;
  {
    std::vector<std::jthread> team;
    for (int p = 0; p < kProducers; ++p) {
      team.emplace_back([&, p] {
        for (int i = 0; i < kEach; ++i) {
          v.produce(static_cast<std::int64_t>(p) * kEach + i + 1);
        }
      });
    }
    for (int c = 0; c < kConsumers; ++c) {
      team.emplace_back([&] {
        for (int i = 0; i < kEach; ++i) {
          const std::int64_t x = v.consume();
          std::lock_guard<std::mutex> g(m);
          consumed.push_back(x);
        }
      });
    }
  }
  ASSERT_EQ(consumed.size(), static_cast<std::size_t>(kProducers * kEach));
  std::sort(consumed.begin(), consumed.end());
  for (std::size_t i = 0; i < consumed.size(); ++i) {
    ASSERT_EQ(consumed[i], static_cast<std::int64_t>(i + 1));
  }
  EXPECT_FALSE(v.is_full());
}

TEST_P(AsyncTest, WidePayloadsWork) {
  // Payloads wider than one word cannot live inside a HEP cell; the
  // runtime must still move them atomically.
  struct Wide {
    double a = 0, b = 0, c = 0;
  };
  fc::Async<Wide> v(env_);
  EXPECT_FALSE(fc::Async<Wide>::payload_in_cell());
  v.produce({1.5, 2.5, 3.5});
  const Wide w = v.consume();
  EXPECT_DOUBLE_EQ(w.a, 1.5);
  EXPECT_DOUBLE_EQ(w.b, 2.5);
  EXPECT_DOUBLE_EQ(w.c, 3.5);
}

TEST_P(AsyncTest, StatsAreCounted) {
  env_.stats().reset();
  fc::Async<int> v(env_);
  for (int i = 0; i < 5; ++i) {
    v.produce(i);
    (void)v.consume();
  }
  EXPECT_EQ(env_.stats().produces.load(std::memory_order_relaxed), 5u);
  EXPECT_EQ(env_.stats().consumes.load(std::memory_order_relaxed), 5u);
}

TEST_P(AsyncTest, AsyncArrayIndependentCells) {
  fc::AsyncArray<int> arr(env_, 8);
  EXPECT_EQ(arr.size(), 8u);
  arr[3].produce(33);
  EXPECT_TRUE(arr[3].is_full());
  EXPECT_FALSE(arr[2].is_full());
  EXPECT_EQ(arr[3].consume(), 33);
  EXPECT_THROW(arr[8], force::util::CheckError);
}

INSTANTIATE_TEST_SUITE_P(Machines, AsyncTest,
                         ::testing::Values("hep", "encore", "cray2",
                                           "native"),
                         [](const auto& info) { return info.param; });

// --- path selection -------------------------------------------------------------

TEST(AsyncPaths, HepUsesHardwareOthersUseLocks) {
  fc::ForceEnvironment hep(test_config("hep"));
  fc::ForceEnvironment enc(test_config("encore"));
  fc::Async<int> vh(hep);
  fc::Async<int> ve(enc);
  EXPECT_TRUE(vh.uses_hardware_path());
  EXPECT_FALSE(ve.uses_hardware_path());
  EXPECT_TRUE(fc::Async<int>::payload_in_cell());
}

TEST(AsyncPaths, SoftwareSchemeUsesTwoLocksPerVariable) {
  // The paper: "all other machines require the use of two locks for
  // implementation of the full/empty state" (plus our Void guard).
  fc::ForceEnvironment enc(test_config("encore"));
  const auto before = enc.machine().lock_stats().logical_locks;
  fc::Async<int> v(enc);
  const auto after = enc.machine().lock_stats().logical_locks;
  EXPECT_EQ(after - before, 3u);  // E, F, void guard
}

TEST(AsyncPaths, HardwareSchemeAllocatesNoLocks) {
  fc::ForceEnvironment hep(test_config("hep"));
  const auto before = hep.machine().lock_stats().logical_locks;
  fc::Async<int> v(hep);
  EXPECT_EQ(hep.machine().lock_stats().logical_locks, before);
}

TEST(AsyncPaths, SoftwareLockTrafficIsVisible) {
  fc::ForceEnvironment enc(test_config("encore"));
  fc::Async<int> v(enc);
  const auto before = force::machdep::snapshot(enc.machine().counters());
  v.produce(1);
  (void)v.consume();
  const auto delta =
      force::machdep::snapshot(enc.machine().counters()) - before;
  // Produce: lock F, unlock E; Consume: lock E, unlock F.
  EXPECT_EQ(delta.acquires, 2u);
  EXPECT_EQ(delta.releases, 2u);
}
