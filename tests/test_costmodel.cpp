// Tests for the deterministic cost model and its scheduling simulator.
#include <gtest/gtest.h>

#include <vector>

#include "machdep/costmodel.hpp"
#include "util/check.hpp"
#include "machdep/machine.hpp"
#include "util/check.hpp"

namespace md = force::machdep;

namespace {

md::CostModel unit_model() {
  md::CostParameters p;
  p.lock_uncontended_ns = 1;
  p.lock_contended_extra_ns = 2;
  p.spin_probe_ns = 3;
  p.blocking_wait_ns = 4;
  p.barrier_episode_ns = 0;
  p.work_scale = 1.0;
  return md::CostModel(p);
}

}  // namespace

TEST(CostModel, LockTimeIsLinearInCounters) {
  md::LockCountersSnapshot d;
  d.acquires = 10;
  d.contended_acquires = 5;
  d.spin_iterations = 2;
  d.blocking_waits = 1;
  EXPECT_DOUBLE_EQ(unit_model().lock_time_ns(d), 10 * 1 + 5 * 2 + 2 * 3 + 4);
}

TEST(CostModel, CreationTimeChargesPerProcessAndPerByte) {
  md::CostParameters p;
  p.process_create_ns = 100;
  p.copy_byte_ns = 2.0;
  md::CostModel m(p);
  EXPECT_DOUBLE_EQ(m.creation_time_ns(4, 50), 400 + 100);
}

TEST(CostModel, WorkScalesWithCpuSpeed) {
  md::CostParameters p;
  p.work_scale = 0.25;  // a CPU 4x faster than nominal
  EXPECT_DOUBLE_EQ(md::CostModel(p).work_time_ns(1000), 250);
}

TEST(Makespan, PreschedPerfectlyBalancedUniformWork) {
  const std::vector<double> work(16, 100.0);
  md::CostParameters p;
  p.barrier_episode_ns = 7;
  md::CostModel m(p);
  // 16 iterations on 4 processes: each gets 4 x 100.
  EXPECT_DOUBLE_EQ(m.presched_makespan_ns(work, 4), 400 + 7);
}

TEST(Makespan, PreschedSuffersUnderSkew) {
  // Cyclic dealing puts all the heavy iterations on one process when the
  // skew is aligned with the process count.
  std::vector<double> work(16, 10.0);
  for (std::size_t i = 0; i < work.size(); i += 4) work[i] = 1000.0;
  md::CostParameters p;
  p.barrier_episode_ns = 0;
  md::CostModel m(p);
  // Process 0 gets the four 1000s.
  EXPECT_DOUBLE_EQ(m.presched_makespan_ns(work, 4), 4000.0);
}

TEST(Makespan, SelfschedBalancesSkew) {
  std::vector<double> work(16, 10.0);
  for (std::size_t i = 0; i < work.size(); i += 4) work[i] = 1000.0;
  md::CostParameters p;
  p.barrier_episode_ns = 0;
  md::CostModel m(p);
  const double presched = m.presched_makespan_ns(work, 4);
  const double selfsched = m.selfsched_makespan_ns(work, 4, /*dispatch=*/1);
  EXPECT_LT(selfsched, presched / 2);  // the paper-shape result
}

TEST(Makespan, SelfschedDispatchOverheadHurtsFineGrain) {
  // Tiny iterations: the serialized dispatch dominates and presched wins.
  const std::vector<double> work(1000, 1.0);
  md::CostParameters p;
  p.barrier_episode_ns = 0;
  md::CostModel m(p);
  const double presched = m.presched_makespan_ns(work, 4);
  const double selfsched = m.selfsched_makespan_ns(work, 4, /*dispatch=*/50);
  EXPECT_GT(selfsched, presched);
}

TEST(Makespan, ChunkingAmortizesDispatch) {
  const std::vector<double> work(1000, 1.0);
  md::CostParameters p;
  p.barrier_episode_ns = 0;
  md::CostModel m(p);
  const double chunk1 = m.chunked_makespan_ns(work, 4, 50, 1);
  const double chunk32 = m.chunked_makespan_ns(work, 4, 50, 32);
  EXPECT_LT(chunk32, chunk1 / 4);
}

TEST(Makespan, SingleProcessDegeneratesToSerialSum) {
  const std::vector<double> work(10, 5.0);
  md::CostParameters p;
  p.barrier_episode_ns = 0;
  md::CostModel m(p);
  EXPECT_DOUBLE_EQ(m.presched_makespan_ns(work, 1), 50.0);
  // Selfsched adds one dispatch per iteration plus the final empty grab.
  EXPECT_DOUBLE_EQ(m.selfsched_makespan_ns(work, 1, 2), 50.0 + 10 * 2 + 2);
}

TEST(Makespan, EmptyLoopCostsOnlyOverhead) {
  md::CostParameters p;
  p.barrier_episode_ns = 9;
  md::CostModel m(p);
  EXPECT_DOUBLE_EQ(m.presched_makespan_ns({}, 4), 9.0);
}

TEST(Makespan, BadArgumentsThrow) {
  md::CostModel m{md::CostParameters{}};
  EXPECT_THROW((void)m.presched_makespan_ns({1.0}, 0),
               force::util::CheckError);
  EXPECT_THROW((void)m.chunked_makespan_ns({1.0}, 2, 1, 0),
               force::util::CheckError);
}

TEST(PaperShapes, MachinesOrderAsThePaperDescribes) {
  // Process creation: HEP (subroutine call) << Alliant (stack only) <<
  // Sequent (full fork).
  const auto hep = md::CostModel(md::machine_spec("hep").costs);
  const auto alliant = md::CostModel(md::machine_spec("alliant").costs);
  const auto sequent = md::CostModel(md::machine_spec("sequent").costs);
  const std::size_t half_mb = 512 * 1024;
  EXPECT_LT(hep.creation_time_ns(8, 0),
            alliant.creation_time_ns(8, half_mb));
  EXPECT_LT(alliant.creation_time_ns(8, half_mb),
            sequent.creation_time_ns(8, 2 * half_mb));
  // Produce/consume: HEP hardware beats every two-lock machine.
  const auto cray = md::CostModel(md::machine_spec("cray2").costs);
  EXPECT_LT(hep.produce_consume_time_ns(100),
            cray.produce_consume_time_ns(100) / 10);
  // Raw compute: the Cray-2 is the fastest machine of the set.
  for (const auto& name : md::machine_names()) {
    if (name == "cray2") continue;
    EXPECT_LE(md::machine_spec("cray2").costs.work_scale,
              md::machine_spec(name).costs.work_scale)
        << name;
  }
}
