// Tests for shared-memory designation (paper §4.1.2): the four sharing
// strategies, page padding rules, guard pages, the link-time protocol and
// the per-process private space semantics.
#include <gtest/gtest.h>

#include <cstring>

#include "machdep/arena.hpp"
#include "util/check.hpp"

namespace md = force::machdep;
using force::util::CheckError;

namespace {
constexpr std::size_t kPage = 4096;
}

// --- basic allocation ---------------------------------------------------------

TEST(Arena, AllocateAndResolve) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kCompileTime);
  void* p = arena.allocate("x", 8, 8, md::VarClass::kShared);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.resolve("x"), p);
  EXPECT_TRUE(arena.is_shared_address(p));
  EXPECT_TRUE(arena.contains_name("x"));
  EXPECT_FALSE(arena.contains_name("y"));
}

TEST(Arena, SameNameReturnsSameAddress) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kCompileTime);
  void* a = arena.allocate("v", 16, 8, md::VarClass::kShared);
  void* b = arena.allocate("v", 16, 8, md::VarClass::kShared);
  EXPECT_EQ(a, b);
}

TEST(Arena, MismatchedReallocationThrows) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kCompileTime);
  arena.allocate("v", 16, 8, md::VarClass::kShared);
  EXPECT_THROW(arena.allocate("v", 32, 8, md::VarClass::kShared), CheckError);
  EXPECT_THROW(arena.allocate("v", 16, 8, md::VarClass::kAsync), CheckError);
}

TEST(Arena, UnknownResolveThrows) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kCompileTime);
  EXPECT_THROW((void)arena.resolve("ghost"), CheckError);
}

TEST(Arena, AlignmentIsRespected) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kCompileTime);
  arena.allocate("odd", 3, 1, md::VarClass::kShared);
  void* p = arena.allocate("aligned", 64, 64, md::VarClass::kShared);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

TEST(Arena, ExhaustionThrows) {
  md::SharedArena arena(kPage, kPage, md::SharingStrategy::kCompileTime);
  arena.allocate("big", kPage, 8, md::VarClass::kShared);
  EXPECT_THROW(arena.allocate("more", 8, 8, md::VarClass::kShared),
               CheckError);
}

TEST(Arena, GetOrCreateConstructsOnce) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kCompileTime);
  auto& v = arena.get_or_create<std::int64_t>("counter");
  EXPECT_EQ(v, 0);
  v = 42;
  auto& v2 = arena.get_or_create<std::int64_t>("counter");
  EXPECT_EQ(v2, 42);  // not re-constructed
  EXPECT_EQ(&v, &v2);
}

// --- the Encore straddle rule ---------------------------------------------------

TEST(Arena, SmallVariableNeverStraddlesAPage) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kRuntimePadded);
  // Leave 8 bytes before the page boundary, then allocate 64: it must be
  // bumped to the next page.
  arena.allocate("filler", kPage - 8, 1, md::VarClass::kShared);
  void* p = arena.allocate("bumped", 64, 1, md::VarClass::kShared);
  const std::size_t page_first = arena.page_of(p);
  const std::size_t page_last =
      arena.page_of(static_cast<std::byte*>(p) + 63);
  EXPECT_EQ(page_first, page_last);
  EXPECT_GT(arena.padding_bytes(), 0u);
}

TEST(Arena, PageOfOutsideArenaThrows) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kRuntimePadded);
  int local = 0;
  EXPECT_THROW((void)arena.page_of(&local), CheckError);
}

// --- Encore guard pages ---------------------------------------------------------

TEST(Arena, RuntimePaddedHasIntactGuards) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kRuntimePadded);
  arena.allocate("x", 128, 8, md::VarClass::kShared);
  EXPECT_TRUE(arena.guards_intact());
  EXPECT_GE(arena.padding_bytes(), 2 * kPage);
}

TEST(Arena, GuardCorruptionIsDetected) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kRuntimePadded);
  arena.corrupt_guard_for_test();
  EXPECT_FALSE(arena.guards_intact());
}

TEST(Arena, FillingTheWholeRegionKeepsGuardsIntact) {
  md::SharedArena arena(2 * kPage, kPage, md::SharingStrategy::kRuntimePadded);
  void* a = arena.allocate("a", kPage, 1, md::VarClass::kShared);
  void* b = arena.allocate("b", kPage, 1, md::VarClass::kShared);
  std::memset(a, 0xFF, kPage);
  std::memset(b, 0xFF, kPage);
  EXPECT_TRUE(arena.guards_intact());
}

TEST(Arena, CompileTimeStrategyHasNoGuards) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kCompileTime);
  EXPECT_THROW(arena.corrupt_guard_for_test(), CheckError);
}

// --- Alliant page-aligned start -----------------------------------------------

TEST(Arena, PageAlignedStartBeginsOnPageBoundary) {
  md::SharedArena arena(1 << 16, kPage,
                        md::SharingStrategy::kPageAlignedStart);
  void* p = arena.allocate("first", 8, 8, md::VarClass::kShared);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kPage, 0u);
}

// --- the Sequent link-time protocol ---------------------------------------------

TEST(Arena, LinkTimeDeclareLinkResolve) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kLinkTime);
  arena.declare("a", 64, 8, md::VarClass::kShared);
  arena.declare("b", 64, 8, md::VarClass::kShared);
  EXPECT_FALSE(arena.linked());
  EXPECT_THROW((void)arena.resolve("a"), CheckError);  // not linked yet
  arena.link();
  EXPECT_TRUE(arena.linked());
  EXPECT_NE(arena.resolve("a"), nullptr);
  EXPECT_NE(arena.resolve("b"), nullptr);
  EXPECT_NE(arena.resolve("a"), arena.resolve("b"));
}

TEST(Arena, LinkTimeUndeclaredNameAfterLinkFails) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kLinkTime);
  arena.declare("known", 8, 8, md::VarClass::kShared);
  arena.link();
  EXPECT_NE(arena.allocate("known", 8, 8, md::VarClass::kShared), nullptr);
  // The Sequent port would fail to link this variable.
  EXPECT_THROW(arena.allocate("unknown", 8, 8, md::VarClass::kShared),
               CheckError);
}

TEST(Arena, LinkTwiceThrows) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kLinkTime);
  arena.link();
  EXPECT_THROW(arena.link(), CheckError);
}

TEST(Arena, LinkOnNonLinkTimeStrategyThrows) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kCompileTime);
  EXPECT_THROW(arena.link(), CheckError);
}

TEST(Arena, RedeclarationFollowsCommonBlockRules) {
  md::SharedArena arena(1 << 16, kPage, md::SharingStrategy::kLinkTime);
  arena.declare("v", 8, 8, md::VarClass::kShared);
  // Same shape from another module: fine, one storage (COMMON semantics).
  EXPECT_NO_THROW(arena.declare("v", 8, 8, md::VarClass::kShared));
  // Different shape: the link error a 1989 loader would give.
  EXPECT_THROW(arena.declare("v", 16, 8, md::VarClass::kShared), CheckError);
  EXPECT_THROW(arena.declare("v", 8, 8, md::VarClass::kAsync), CheckError);
  arena.link();
  EXPECT_NE(arena.resolve("v"), nullptr);
}

// --- PrivateSpace ------------------------------------------------------------

TEST(PrivateSpace, ForkCopyInheritsParentValues) {
  md::PrivateSpace space(1024, 1024);
  const auto off = space.register_slot(md::PrivateSpace::Region::kData, 8, 8);
  *static_cast<std::int64_t*>(
      space.parent_ptr(md::PrivateSpace::Region::kData, off)) = 77;
  space.materialize(3, md::PrivateSpace::InitMode::kCopyBoth);
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(*static_cast<std::int64_t*>(
                  space.ptr(p, md::PrivateSpace::Region::kData, off)),
              77);
  }
  EXPECT_EQ(space.bytes_copied(), 2u * 3u * 1024u);  // data + stack, 3 procs
}

TEST(PrivateSpace, HepCreateStartsZeroed) {
  md::PrivateSpace space(1024, 1024);
  const auto off = space.register_slot(md::PrivateSpace::Region::kData, 8, 8);
  *static_cast<std::int64_t*>(
      space.parent_ptr(md::PrivateSpace::Region::kData, off)) = 77;
  space.materialize(2, md::PrivateSpace::InitMode::kZeroBoth);
  for (int p = 0; p < 2; ++p) {
    EXPECT_EQ(*static_cast<std::int64_t*>(
                  space.ptr(p, md::PrivateSpace::Region::kData, off)),
              0);
  }
  EXPECT_EQ(space.bytes_copied(), 0u);
}

TEST(PrivateSpace, AlliantSharesDataCopiesStack) {
  md::PrivateSpace space(1024, 1024);
  const auto data_off =
      space.register_slot(md::PrivateSpace::Region::kData, 8, 8);
  const auto stack_off =
      space.register_slot(md::PrivateSpace::Region::kStack, 8, 8);
  *static_cast<std::int64_t*>(
      space.parent_ptr(md::PrivateSpace::Region::kStack, stack_off)) = 5;
  space.materialize(2, md::PrivateSpace::InitMode::kShareDataCopyStack);

  // Data region: ONE buffer, aliased - writes from "process 0" are seen by
  // "process 1" (the accidental-sharing hazard).
  void* d0 = space.ptr(0, md::PrivateSpace::Region::kData, data_off);
  void* d1 = space.ptr(1, md::PrivateSpace::Region::kData, data_off);
  EXPECT_EQ(d0, d1);

  // Stack region: genuinely private copies seeded from the parent.
  void* s0 = space.ptr(0, md::PrivateSpace::Region::kStack, stack_off);
  void* s1 = space.ptr(1, md::PrivateSpace::Region::kStack, stack_off);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(*static_cast<std::int64_t*>(s0), 5);
  EXPECT_EQ(*static_cast<std::int64_t*>(s1), 5);
  EXPECT_EQ(space.bytes_copied(), 2u * 1024u);  // stacks only
}

TEST(PrivateSpace, RegisterAfterMaterializeThrows) {
  md::PrivateSpace space(64, 64);
  space.materialize(1, md::PrivateSpace::InitMode::kZeroBoth);
  EXPECT_THROW(space.register_slot(md::PrivateSpace::Region::kData, 8, 8),
               CheckError);
}

TEST(PrivateSpace, DoubleMaterializeThrows) {
  md::PrivateSpace space(64, 64);
  space.materialize(1, md::PrivateSpace::InitMode::kZeroBoth);
  EXPECT_THROW(space.materialize(1, md::PrivateSpace::InitMode::kZeroBoth),
               CheckError);
}

TEST(PrivateSpace, CapacityExhaustionThrows) {
  md::PrivateSpace space(16, 16);
  space.register_slot(md::PrivateSpace::Region::kData, 16, 1);
  EXPECT_THROW(space.register_slot(md::PrivateSpace::Region::kData, 1, 1),
               CheckError);
}

TEST(SharingStrategyNames, AllDistinct) {
  EXPECT_STREQ(md::sharing_strategy_name(md::SharingStrategy::kCompileTime),
               "compile-time");
  EXPECT_STREQ(md::sharing_strategy_name(md::SharingStrategy::kLinkTime),
               "link-time");
  EXPECT_STREQ(md::sharing_strategy_name(md::SharingStrategy::kRuntimePadded),
               "runtime-padded");
  EXPECT_STREQ(
      md::sharing_strategy_name(md::SharingStrategy::kPageAlignedStart),
      "page-aligned-start");
}
