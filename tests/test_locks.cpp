// Unit and property tests for the generic lock layer (paper §4.1.3).
//
// Every mechanism must satisfy the same binary-semaphore contract,
// including release from a different thread than the acquirer - the
// property Produce/Consume depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "machdep/locks.hpp"
#include "util/check.hpp"

namespace md = force::machdep;

namespace {

std::vector<md::LockKind> all_kinds() {
  return {md::LockKind::kTasSpin, md::LockKind::kTtasSpin,
          md::LockKind::kTicket, md::LockKind::kMcs, md::LockKind::kSystem,
          md::LockKind::kCombined, md::LockKind::kHepFullEmpty};
}

}  // namespace

class LockTest : public ::testing::TestWithParam<md::LockKind> {
 protected:
  md::LockCounters counters_;
  std::unique_ptr<md::BasicLock> make() {
    return md::make_lock(GetParam(), &counters_);
  }
};

TEST_P(LockTest, StartsUnlocked) {
  auto lock = make();
  EXPECT_TRUE(lock->try_acquire());
  lock->release();
}

TEST_P(LockTest, TryAcquireFailsWhenHeld) {
  auto lock = make();
  lock->acquire();
  EXPECT_FALSE(lock->try_acquire());
  lock->release();
  EXPECT_TRUE(lock->try_acquire());
  lock->release();
}

TEST_P(LockTest, MutualExclusionUnderContention) {
  auto lock = make();
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  long counter = 0;  // deliberately non-atomic: the lock must protect it
  std::atomic<int> overlap{0};
  std::atomic<bool> violated{false};
  {
    std::vector<std::jthread> team;
    for (int t = 0; t < kThreads; ++t) {
      team.emplace_back([&] {
        for (int i = 0; i < kIters; ++i) {
          lock->acquire();
          if (overlap.fetch_add(1) != 0) violated = true;
          ++counter;
          overlap.fetch_sub(1);
          lock->release();
        }
      });
    }
  }
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST_P(LockTest, CrossThreadRelease) {
  // The Produce/Consume pattern: thread A locks, thread B unlocks.
  auto lock = make();
  lock->acquire();
  std::atomic<bool> released{false};
  std::jthread releaser([&] {
    lock->release();
    released = true;
  });
  releaser.join();
  EXPECT_TRUE(released.load());
  EXPECT_TRUE(lock->try_acquire());
  lock->release();
}

TEST_P(LockTest, BlockedAcquirerWokenByOtherThread) {
  auto lock = make();
  lock->acquire();
  std::atomic<bool> got_it{false};
  std::jthread waiter([&] {
    lock->acquire();  // blocks until the main thread releases
    got_it = true;
    lock->release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got_it.load());
  lock->release();
  waiter.join();
  EXPECT_TRUE(got_it.load());
}

TEST_P(LockTest, CountersTrackAcquiresAndReleases) {
  counters_.reset();
  auto lock = make();
  for (int i = 0; i < 10; ++i) {
    lock->acquire();
    lock->release();
  }
  const auto snap = md::snapshot(counters_);
  EXPECT_EQ(snap.acquires, 10u);
  EXPECT_EQ(snap.releases, 10u);
  EXPECT_EQ(snap.contended_acquires, 0u);  // single-threaded: no contention
}

TEST_P(LockTest, ContentionIsCounted) {
  counters_.reset();
  auto lock = make();
  lock->acquire();
  std::jthread waiter([&] { lock->acquire(); lock->release(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  lock->release();
  waiter.join();
  EXPECT_GE(md::snapshot(counters_).contended_acquires, 1u);
}

TEST_P(LockTest, MechanismNameMatchesKind) {
  auto lock = make();
  EXPECT_STREQ(lock->mechanism(), md::lock_kind_name(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, LockTest, ::testing::ValuesIn(all_kinds()),
    [](const ::testing::TestParamInfo<md::LockKind>& info) {
      std::string name = md::lock_kind_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- non-parameterized specifics ---------------------------------------------

TEST(LockKindNames, RoundTrip) {
  for (md::LockKind k : all_kinds()) {
    EXPECT_EQ(md::lock_kind_from_name(md::lock_kind_name(k)), k);
  }
  EXPECT_THROW(md::lock_kind_from_name("nonsense"),
               force::util::CheckError);
}

TEST(TicketLock, IsFifoFair) {
  // With a ticket lock, a queued waiter cannot be overtaken by a later
  // try_acquire: the ticket counter has moved past the serving counter.
  md::TicketLock lock(nullptr, {});
  lock.acquire();
  std::atomic<bool> waiter_done{false};
  std::jthread waiter([&] {
    lock.acquire();
    waiter_done = true;
    lock.release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(lock.try_acquire());  // the queue position belongs to waiter
  lock.release();
  waiter.join();
  EXPECT_TRUE(waiter_done.load());
}

TEST(McsLock, ReleaseWithoutHoldThrows) {
  md::McsLock lock(nullptr, {});
  EXPECT_THROW(lock.release(), force::util::CheckError);
}

TEST(CombinedLock, FallsBackToBlockingUnderLongHold) {
  md::LockCounters counters;
  md::SpinPolicy policy;
  policy.combined_spin_budget = 8;  // tiny budget: force the blocking path
  md::CombinedLock lock(&counters, policy);
  lock.acquire();
  std::jthread waiter([&] {
    lock.acquire();
    lock.release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  lock.release();
  waiter.join();
  EXPECT_GE(md::snapshot(counters).blocking_waits, 1u);
}

TEST(SystemLock, NeverSpins) {
  md::LockCounters counters;
  md::SystemLock lock(&counters);
  lock.acquire();
  std::jthread waiter([&] {
    lock.acquire();
    lock.release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lock.release();
  waiter.join();
  EXPECT_EQ(md::snapshot(counters).spin_iterations, 0u);
  EXPECT_GE(md::snapshot(counters).blocking_waits, 1u);
}

TEST(SpinLocks, SpinIterationsAreRecorded) {
  md::LockCounters counters;
  md::TasSpinLock lock(&counters, {});
  lock.acquire();
  std::jthread waiter([&] {
    lock.acquire();
    lock.release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lock.release();
  waiter.join();
  EXPECT_GT(md::snapshot(counters).spin_iterations, 0u);
}

TEST(CounterSnapshots, DifferenceOperator) {
  md::LockCounters c;
  c.acquires = 10;
  c.releases = 8;
  const auto a = md::snapshot(c);
  c.acquires = 15;
  c.releases = 12;
  const auto d = md::snapshot(c) - a;
  EXPECT_EQ(d.acquires, 5u);
  EXPECT_EQ(d.releases, 4u);
}
