// Tests for DOALL work distribution (paper §3.3, §4.2): trip counting,
// prescheduled and selfscheduled loops (1D/2D), chunked and guided
// variants. The central property: every index executes exactly once, for
// arbitrary (start, last, incr) including negative increments.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "core/doall.hpp"
#include "core/env.hpp"

namespace fc = force::core;

namespace {

fc::ForceConfig test_config(int np, const std::string& machine = "native",
                            const std::string& dispatch = "auto") {
  fc::ForceConfig cfg;
  cfg.nproc = np;
  cfg.machine = machine;
  cfg.dispatch = dispatch;
  return cfg;
}

/// Runs fn(proc) on `np` threads.
void on_team(int np, const std::function<void(int)>& fn) {
  std::vector<std::jthread> team;
  for (int t = 0; t < np; ++t) team.emplace_back([&fn, t] { fn(t); });
}

}  // namespace

// --- trip counting -------------------------------------------------------------

TEST(TripCount, FortranSemantics) {
  EXPECT_EQ(fc::loop_trip_count(1, 10, 1), 10);
  EXPECT_EQ(fc::loop_trip_count(1, 10, 2), 5);
  EXPECT_EQ(fc::loop_trip_count(1, 10, 3), 4);   // 1,4,7,10
  EXPECT_EQ(fc::loop_trip_count(10, 1, -1), 10);
  EXPECT_EQ(fc::loop_trip_count(10, 1, -4), 3);  // 10,6,2
  EXPECT_EQ(fc::loop_trip_count(5, 5, 1), 1);
  EXPECT_EQ(fc::loop_trip_count(6, 5, 1), 0);    // empty
  EXPECT_EQ(fc::loop_trip_count(5, 6, -1), 0);   // empty
  EXPECT_EQ(fc::loop_trip_count(-10, 10, 5), 5);
}

TEST(TripCount, ZeroIncrementThrows) {
  EXPECT_THROW(fc::loop_trip_count(1, 10, 0), force::util::CheckError);
}

// --- presched (pure function; no environment needed) ----------------------------

TEST(Presched, CyclicDealCoversExactlyOnce) {
  const int np = 4;
  std::map<std::int64_t, int> counts;
  for (int me = 0; me < np; ++me) {
    fc::presched_do(me, np, 1, 17, 2,
                    [&](std::int64_t i) { counts[i]++; });
  }
  ASSERT_EQ(counts.size(), 9u);  // 1,3,...,17
  for (auto& [idx, n] : counts) {
    EXPECT_EQ(n, 1) << idx;
    EXPECT_EQ((idx - 1) % 2, 0);
  }
}

TEST(Presched, AssignmentIsCyclicByTrip) {
  // Trip t belongs to process t mod np.
  std::vector<std::int64_t> got;
  fc::presched_do(1, 3, 10, 1, -1, [&](std::int64_t i) { got.push_back(i); });
  // Trips: 10(t0) 9(t1) 8(t2) 7(t3) ... process 1 takes t=1,4,7 -> 9,6,3.
  EXPECT_EQ(got, (std::vector<std::int64_t>{9, 6, 3}));
}

TEST(Presched, EmptyRangeExecutesNothing) {
  int runs = 0;
  fc::presched_do(0, 2, 5, 4, 1, [&](std::int64_t) { ++runs; });
  EXPECT_EQ(runs, 0);
}

TEST(Presched, BadArgsThrow) {
  EXPECT_THROW(fc::presched_do(2, 2, 1, 2, 1, [](std::int64_t) {}),
               force::util::CheckError);
  EXPECT_THROW(fc::presched_do(0, 0, 1, 2, 1, [](std::int64_t) {}),
               force::util::CheckError);
}

TEST(Presched2D, CoversThePairSpaceExactlyOnce) {
  const int np = 3;
  std::mutex m;
  std::map<std::pair<std::int64_t, std::int64_t>, int> counts;
  for (int me = 0; me < np; ++me) {
    fc::presched_do2(me, np, 1, 4, 1, 10, 2, -4,
                     [&](std::int64_t i, std::int64_t j) {
                       std::lock_guard<std::mutex> g(m);
                       counts[{i, j}]++;
                     });
  }
  EXPECT_EQ(counts.size(), 4u * 3u);  // i in 1..4, j in 10,6,2
  for (auto& [pair, n] : counts) EXPECT_EQ(n, 1);
}

// --- selfsched: parameterized sweep over ranges and widths -----------------------

struct RangeCase {
  std::int64_t start, last, incr;
};

class SelfschedRangeTest
    : public ::testing::TestWithParam<std::tuple<RangeCase, int>> {};

TEST_P(SelfschedRangeTest, EveryIndexExactlyOnce) {
  const auto [range, np] = GetParam();
  fc::ForceEnvironment env(test_config(np));
  fc::SelfschedLoop loop(env, np);
  std::mutex m;
  std::map<std::int64_t, int> counts;
  on_team(np, [&](int me) {
    loop.run(me, range.start, range.last, range.incr, [&](std::int64_t i) {
      std::lock_guard<std::mutex> g(m);
      counts[i]++;
    });
  });
  const std::int64_t trips =
      fc::loop_trip_count(range.start, range.last, range.incr);
  EXPECT_EQ(static_cast<std::int64_t>(counts.size()), trips);
  for (auto& [idx, n] : counts) {
    EXPECT_EQ(n, 1) << idx;
    EXPECT_TRUE(fc::loop_index_in_range(idx, range.last, range.incr));
    EXPECT_EQ((idx - range.start) % range.incr, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RangesAndWidths, SelfschedRangeTest,
    ::testing::Combine(
        ::testing::Values(RangeCase{1, 100, 1}, RangeCase{1, 100, 7},
                          RangeCase{100, 1, -1}, RangeCase{50, -50, -3},
                          RangeCase{0, 0, 1}, RangeCase{5, 4, 1},
                          RangeCase{-20, 20, 4}),
        ::testing::Values(1, 2, 4, 7)));

// --- selfsched specifics ---------------------------------------------------------

TEST(Selfsched, ReentryAfterAllLeft) {
  // A selfsched loop inside an outer sequential loop: the entry gate must
  // re-arm every episode (BARWIN/BARWOT protocol).
  const int np = 4;
  fc::ForceEnvironment env(test_config(np));
  fc::SelfschedLoop loop(env, np);
  std::atomic<std::int64_t> total{0};
  on_team(np, [&](int me) {
    for (int episode = 0; episode < 10; ++episode) {
      loop.run(me, 1, 20, 1,
               [&](std::int64_t i) { total.fetch_add(i); });
    }
  });
  EXPECT_EQ(total.load(), 10 * 210);
}

TEST(Selfsched, ChunkedCoversExactlyOnce) {
  const int np = 3;
  fc::ForceEnvironment env(test_config(np));
  fc::SelfschedLoop loop(env, np);
  std::mutex m;
  std::map<std::int64_t, int> counts;
  on_team(np, [&](int me) {
    loop.run(
        me, 0, 997, 1,
        [&](std::int64_t i) {
          std::lock_guard<std::mutex> g(m);
          counts[i]++;
        },
        /*chunk=*/16);
  });
  EXPECT_EQ(counts.size(), 998u);
  for (auto& [idx, n] : counts) EXPECT_EQ(n, 1) << idx;
}

TEST(Selfsched, ChunkingReducesDispatches) {
  const int np = 2;
  fc::ForceEnvironment env(test_config(np));
  fc::SelfschedLoop fine(env, np);
  fc::SelfschedLoop coarse(env, np);
  on_team(np, [&](int me) { fine.run(me, 1, 512, 1, [](std::int64_t) {}); });
  const auto fine_dispatches =
      env.stats().doall_dispatches.load(std::memory_order_relaxed);
  env.stats().reset();
  on_team(np, [&](int me) {
    coarse.run(me, 1, 512, 1, [](std::int64_t) {}, 64);
  });
  const auto coarse_dispatches =
      env.stats().doall_dispatches.load(std::memory_order_relaxed);
  EXPECT_GT(fine_dispatches, 8 * coarse_dispatches);
}

TEST(Selfsched, GuidedCoversExactlyOnceWithDecreasingClaims) {
  const int np = 4;
  fc::ForceEnvironment env(test_config(np));
  fc::SelfschedLoop loop(env, np);
  std::mutex m;
  std::map<std::int64_t, int> counts;
  on_team(np, [&](int me) {
    loop.run_guided(me, 1, 1000, 1, [&](std::int64_t i) {
      std::lock_guard<std::mutex> g(m);
      counts[i]++;
    });
  });
  EXPECT_EQ(counts.size(), 1000u);
  for (auto& [idx, n] : counts) EXPECT_EQ(n, 1) << idx;
  // Guided must dispatch far fewer times than once per iteration but more
  // than once per process.
  const auto dispatches =
      env.stats().doall_dispatches.load(std::memory_order_relaxed);
  EXPECT_LT(dispatches, 500u);
  EXPECT_GT(dispatches, static_cast<std::uint64_t>(np));
}

TEST(Selfsched, DivergentBoundsAreDetected) {
  const int np = 2;
  fc::ForceEnvironment env(test_config(np));
  fc::SelfschedLoop loop(env, np);
  std::atomic<int> failures{0};
  on_team(np, [&](int me) {
    try {
      // Process 0 and 1 disagree about the loop bound: SPMD violation.
      loop.run(me, 1, me == 0 ? 10 : 20, 1, [](std::int64_t) {});
    } catch (const force::util::CheckError&) {
      failures.fetch_add(1);
    }
  });
  EXPECT_GE(failures.load(), 1);
}

TEST(Selfsched, IterationStatsAreCounted) {
  const int np = 2;
  fc::ForceEnvironment env(test_config(np));
  fc::SelfschedLoop loop(env, np);
  on_team(np, [&](int me) { loop.run(me, 1, 50, 1, [](std::int64_t) {}); });
  EXPECT_EQ(env.stats().doall_iterations.load(std::memory_order_relaxed),
            50u);
  // Dispatches: one per iteration plus one exhausted grab per process.
  EXPECT_EQ(env.stats().doall_dispatches.load(std::memory_order_relaxed),
            50u + static_cast<std::uint64_t>(np));
}

TEST(Selfsched, WorksOnEveryMachineModel) {
  for (const auto& machine : force::machdep::machine_names()) {
    const int np = 3;
    fc::ForceEnvironment env(test_config(np, machine));
    fc::SelfschedLoop loop(env, np);
    std::atomic<std::int64_t> sum{0};
    on_team(np, [&](int me) {
      loop.run(me, 1, 100, 1, [&](std::int64_t i) { sum.fetch_add(i); });
    });
    EXPECT_EQ(sum.load(), 5050) << machine;
  }
}

// --- 2D selfsched ---------------------------------------------------------------

TEST(Selfsched2D, CoversPairSpaceExactlyOnce) {
  const int np = 3;
  fc::ForceEnvironment env(test_config(np));
  fc::Selfsched2Loop loop(env, np);
  std::mutex m;
  std::map<std::pair<std::int64_t, std::int64_t>, int> counts;
  on_team(np, [&](int me) {
    loop.run(me, 1, 7, 2, 30, 10, -10,
             [&](std::int64_t i, std::int64_t j) {
               std::lock_guard<std::mutex> g(m);
               counts[{i, j}]++;
             });
  });
  EXPECT_EQ(counts.size(), 4u * 3u);  // i in {1,3,5,7}, j in {30,20,10}
  for (auto& [pair, n] : counts) EXPECT_EQ(n, 1);
}

TEST(Selfsched2D, EmptyInnerRangeExecutesNothing) {
  const int np = 2;
  fc::ForceEnvironment env(test_config(np));
  fc::Selfsched2Loop loop(env, np);
  std::atomic<int> runs{0};
  on_team(np, [&](int me) {
    loop.run(me, 1, 5, 1, 5, 1, 1,
             [&](std::int64_t, std::int64_t) { runs.fetch_add(1); });
  });
  EXPECT_EQ(runs.load(), 0);
}

// --- contention sweep: every machine x both dispatch engines --------------------
//
// The dispatch rewrite's safety net: exactly-once coverage for chunked,
// guided and 2-D selfscheduled loops under real contention (8 threads) on
// all seven machine models, with the dispatch engine both auto-selected
// and forced to the lock path. On lock-only machines "locked" equals
// "auto"; on hardware-RMW machines it pins the seed's lock engine, so the
// sweep exercises the atomic fast path AND its fallback everywhere.

class DispatchContentionTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
 protected:
  static constexpr int kNp = 8;
  fc::ForceConfig config() const {
    const auto& [machine, dispatch] = GetParam();
    return test_config(kNp, machine, dispatch);
  }
};

TEST_P(DispatchContentionTest, ChunkedCoversExactlyOnce) {
  fc::ForceEnvironment env(config());
  fc::SelfschedLoop loop(env, kNp);
  std::mutex m;
  std::map<std::int64_t, int> counts;
  on_team(kNp, [&](int me) {
    loop.run(
        me, 0, 1499, 1,
        [&](std::int64_t i) {
          std::lock_guard<std::mutex> g(m);
          counts[i]++;
        },
        /*chunk=*/16);
  });
  ASSERT_EQ(counts.size(), 1500u);
  for (auto& [idx, n] : counts) EXPECT_EQ(n, 1) << idx;
}

TEST_P(DispatchContentionTest, GuidedCoversExactlyOnce) {
  fc::ForceEnvironment env(config());
  fc::SelfschedLoop loop(env, kNp);
  std::mutex m;
  std::map<std::int64_t, int> counts;
  on_team(kNp, [&](int me) {
    loop.run_guided(me, 1, 1500, 1, [&](std::int64_t i) {
      std::lock_guard<std::mutex> g(m);
      counts[i]++;
    });
  });
  ASSERT_EQ(counts.size(), 1500u);
  for (auto& [idx, n] : counts) EXPECT_EQ(n, 1) << idx;
}

TEST_P(DispatchContentionTest, TwoDimensionalCoversExactlyOnce) {
  fc::ForceEnvironment env(config());
  fc::Selfsched2Loop loop(env, kNp);
  std::mutex m;
  std::map<std::pair<std::int64_t, std::int64_t>, int> counts;
  on_team(kNp, [&](int me) {
    loop.run(
        me, 1, 30, 1, 40, 2, -2,
        [&](std::int64_t i, std::int64_t j) {
          std::lock_guard<std::mutex> g(m);
          counts[{i, j}]++;
        },
        /*chunk=*/4);
  });
  ASSERT_EQ(counts.size(), 30u * 20u);
  for (auto& [pair, n] : counts) EXPECT_EQ(n, 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllMachinesBothEngines, DispatchContentionTest,
    ::testing::Combine(::testing::ValuesIn(force::machdep::machine_names()),
                       ::testing::Values("auto", "locked")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

// --- exception safety -------------------------------------------------------------

TEST(Selfsched, ThrowingBodyStillReportsDeparture) {
  const int np = 2;
  fc::ForceEnvironment env(test_config(np));
  fc::SelfschedLoop loop(env, np);
  std::atomic<int> thrown{0};
  on_team(np, [&](int me) {
    for (int episode = 0; episode < 3; ++episode) {
      try {
        loop.run(me, 1, 10, 1, [&](std::int64_t i) {
          if (i == 5) throw std::runtime_error("boom");
        });
      } catch (const std::runtime_error&) {
        thrown.fetch_add(1);
      }
    }
  });
  // The loop stayed usable across episodes despite the throw (the
  // departure guard released the gates); exactly one process threw per
  // episode (index 5 is claimed once).
  EXPECT_EQ(thrown.load(), 3);
}
