// forcelint: the static construct-graph analyzer (preproc/lint.hpp).
//
// Each seeded fixture under tests/golden/lint/ trips exactly its rule; the
// clean fixture and every shipped example stay finding-free; suppression
// comments, rule subsets, --Werror promotion, and diagnostic rendering
// behave as documented.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "preproc/lint.hpp"
#include "preproc/translate.hpp"

namespace fp = force::preproc;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string fixture(const std::string& name) {
  return read_file(std::string(FORCE_LINT_FIXTURE_DIR) + "/" + name);
}

std::string example_source(const std::string& name) {
  return read_file(std::string(FORCE_EXAMPLES_DIR) + "/" + name);
}

/// Runs lint with default options; returns the sink for inspection.
fp::LintResult lint(const std::string& source, fp::DiagSink& diags,
                    fp::LintOptions opts = {}) {
  return fp::run_forcelint(source, opts, diags);
}

bool has_rule(const fp::DiagSink& diags, const std::string& rule_id) {
  for (const auto& d : diags.all()) {
    if (d.rule == rule_id) return true;
  }
  return false;
}

std::vector<std::string> rule_ids(const fp::DiagSink& diags) {
  std::vector<std::string> out;
  for (const auto& d : diags.all()) out.push_back(d.rule);
  return out;
}

// --- per-rule fixture detection ---------------------------------------------

struct RuleFixture {
  const char* file;
  const char* rule_id;
};

class LintFixtureTest : public ::testing::TestWithParam<RuleFixture> {};

TEST_P(LintFixtureTest, SeededFixtureTripsItsRule) {
  const RuleFixture& p = GetParam();
  fp::DiagSink diags;
  const fp::LintResult res = lint(fixture(p.file), diags);
  EXPECT_GT(res.findings, 0u) << p.file;
  EXPECT_TRUE(has_rule(diags, p.rule_id))
      << p.file << " did not trip " << p.rule_id << "; got:\n"
      << diags.render_all(p.file);
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixtureTest,
    ::testing::Values(
        RuleFixture{"r1_divergent_barrier.force", "force-lint-R1"},
        RuleFixture{"r2_unprotected_shared.force", "force-lint-R2"},
        RuleFixture{"r3_async_protocol.force", "force-lint-R3"},
        RuleFixture{"r4_lock_order.force", "force-lint-R4"},
        RuleFixture{"r5_doall_dependence.force", "force-lint-R5"},
        RuleFixture{"r6_code_after_join.force", "force-lint-R6"}),
    [](const auto& info) {
      std::string name = info.param.file;
      return name.substr(0, name.find('_'));
    });

TEST(LintFixtures, CleanFixtureHasZeroFindings) {
  fp::DiagSink diags;
  const fp::LintResult res = lint(fixture("clean.force"), diags);
  EXPECT_EQ(res.findings, 0u) << diags.render_all("clean.force");
  EXPECT_TRUE(diags.all().empty());
}

TEST(LintFixtures, R3FixtureReportsAllThreeViolations) {
  fp::DiagSink diags;
  lint(fixture("r3_async_protocol.force"), diags);
  std::size_t r3 = 0;
  for (const auto& d : diags.all()) {
    if (d.rule == "force-lint-R3") ++r3;
  }
  // Consume-before-Produce, Produce-on-full, double Void.
  EXPECT_EQ(r3, 3u) << diags.render_all("r3");
}

TEST(LintFixtures, R4FixtureExposesTheLockCycle) {
  fp::DiagSink diags;
  const fp::LintResult res = lint(fixture("r4_lock_order.force"), diags);
  const auto cycles = res.lock_graph.cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (std::vector<std::string>{"order_a", "order_b"}));
  EXPECT_TRUE(has_rule(diags, "force-lint-R4"));
}

// --- shipped examples stay clean --------------------------------------------

class LintExampleTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LintExampleTest, ShippedExampleIsFindingFree) {
  fp::DiagSink diags;
  const fp::LintResult res = lint(example_source(GetParam()), diags);
  EXPECT_EQ(res.findings, 0u)
      << GetParam() << ":\n" << diags.render_all(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Examples, LintExampleTest,
                         ::testing::Values("saxpy.force", "stencil.force",
                                           "treewalk.force",
                                           "multifile/main.force",
                                           "multifile/stats_module.force"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/' || c == '.') c = '_';
                           }
                           return name;
                         });

// --- suppression directives -------------------------------------------------

TEST(LintSuppression, OffDirectiveSilencesTheNamedRule) {
  const std::string src =
      "Force S\n"
      "Shared integer C\n"
      "End declarations\n"
      "!force$ lint off(R2)\n"
      "C = 1;\n"
      "!force$ lint on(R2)\n"
      "C = 2;\n"
      "Join\n";
  fp::DiagSink diags;
  lint(src, diags);
  ASSERT_EQ(diags.all().size(), 1u) << diags.render_all("s");
  EXPECT_EQ(diags.all()[0].rule, "force-lint-R2");
  EXPECT_EQ(diags.all()[0].line, 7);  // only the write after "lint on"
}

TEST(LintSuppression, BareOffSilencesEveryRule) {
  const std::string src =
      "Force S\n"
      "Shared integer C\n"
      "End declarations\n"
      "!force$ lint off\n"
      "C = 1;\n"
      "Join\n"
      "Barrier\n"
      "End barrier\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  EXPECT_EQ(res.findings, 0u) << diags.render_all("s");
}

TEST(LintSuppression, DirectiveAcceptsTrailingComment) {
  const std::string src =
      "Force S\n"
      "Shared integer C\n"
      "End declarations\n"
      "!force$ lint off(R2)   ! deliberate: debug counter\n"
      "C = 1;\n"
      "Join\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  EXPECT_EQ(res.findings, 0u) << diags.render_all("s");
}

TEST(LintSuppression, UnrelatedRuleStaysActive) {
  const std::string src =
      "Force S\n"
      "Shared integer C\n"
      "End declarations\n"
      "!force$ lint off(R1)\n"
      "C = 1;\n"
      "Join\n";
  fp::DiagSink diags;
  lint(src, diags);
  EXPECT_TRUE(has_rule(diags, "force-lint-R2"));
}

// --- spec parsing and rule subsets ------------------------------------------

TEST(LintSpec, DefaultEnablesAllSixRulesAsWarnings) {
  const fp::LintOptions opts = fp::parse_lint_spec("");
  EXPECT_EQ(opts.rules.size(), 6u);
  EXPECT_FALSE(opts.findings_are_errors);
  EXPECT_TRUE(opts.unknown_tokens.empty());
}

TEST(LintSpec, SubsetAndSeverityParse) {
  const fp::LintOptions opts = fp::parse_lint_spec("R2,r4,E");
  EXPECT_EQ(opts.rules.size(), 2u);
  EXPECT_EQ(opts.rules.count(fp::LintRule::kR2), 1u);
  EXPECT_EQ(opts.rules.count(fp::LintRule::kR4), 1u);
  EXPECT_TRUE(opts.findings_are_errors);
}

TEST(LintSpec, UnknownTokensAreCollectedAndNoted) {
  const fp::LintOptions opts = fp::parse_lint_spec("R2,bogus");
  ASSERT_EQ(opts.unknown_tokens.size(), 1u);
  EXPECT_EQ(opts.unknown_tokens[0], "bogus");
  fp::DiagSink diags;
  lint("Force S\nEnd declarations\nJoin\n", diags, opts);
  ASSERT_FALSE(diags.all().empty());
  EXPECT_EQ(diags.all()[0].severity, fp::Severity::kNote);
}

TEST(LintSpec, DisabledRuleDoesNotFire) {
  fp::DiagSink diags;
  lint(fixture("r2_unprotected_shared.force"), diags,
       fp::parse_lint_spec("R1"));
  EXPECT_FALSE(has_rule(diags, "force-lint-R2"));
}

TEST(LintSpec, ErrorSeverityMakesFindingsErrors) {
  fp::DiagSink diags;
  lint(fixture("r2_unprotected_shared.force"), diags,
       fp::parse_lint_spec("E"));
  EXPECT_GT(diags.errors(), 0u);
  EXPECT_FALSE(diags.ok());
}

// --- diagnostics: columns, carets, ordering, werror -------------------------

TEST(LintDiagnostics, FindingCarriesColumnAndCaretSnippet) {
  fp::DiagSink diags;
  lint(fixture("r2_unprotected_shared.force"), diags);
  ASSERT_FALSE(diags.all().empty());
  const fp::Diagnostic& d = diags.all()[0];
  EXPECT_EQ(d.rule, "force-lint-R2");
  EXPECT_EQ(d.line, 7);
  EXPECT_EQ(d.col, 1);  // COUNTER starts the line
  EXPECT_EQ(d.length, 7);
  const std::string rendered = d.render("r2.force");
  EXPECT_NE(rendered.find("r2.force:7:1:"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("[force-lint-R2]"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("COUNTER = COUNTER + 1;"), std::string::npos);
  EXPECT_NE(rendered.find("^~~~~~~"), std::string::npos) << rendered;
}

TEST(LintDiagnostics, RenderAllSortsByLineThenColumn) {
  fp::DiagSink diags;
  diags.report(fp::Severity::kWarning, 9, 5, 1, "force-lint-R2", "later", "");
  diags.report(fp::Severity::kWarning, 3, 2, 1, "force-lint-R2", "early", "");
  diags.report(fp::Severity::kWarning, 9, 1, 1, "force-lint-R2", "mid", "");
  const std::string out = diags.render_all("f");
  const std::size_t early = out.find("early");
  const std::size_t mid = out.find("mid");
  const std::size_t later = out.find("later");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(later, std::string::npos);
  EXPECT_LT(early, mid);
  EXPECT_LT(mid, later);
}

TEST(LintDiagnostics, WerrorPromotionCountsInErrorsAndExitState) {
  fp::DiagSink diags;
  diags.set_werror(true);
  diags.report(fp::Severity::kWarning, 1, 1, 1, "force-lint-R2", "w", "");
  EXPECT_EQ(diags.errors(), 1u);
  EXPECT_EQ(diags.warnings(), 1u);
  EXPECT_FALSE(diags.ok());
  ASSERT_EQ(diags.all().size(), 1u);
  EXPECT_EQ(diags.all()[0].severity, fp::Severity::kError);
}

TEST(LintDiagnostics, DeterministicAcrossRuns) {
  const std::string src = fixture("r5_doall_dependence.force");
  fp::DiagSink a;
  fp::DiagSink b;
  lint(src, a);
  lint(src, b);
  EXPECT_EQ(a.render_all("x"), b.render_all("x"));
  EXPECT_EQ(rule_ids(a), rule_ids(b));
}

// --- translate() integration ------------------------------------------------

TEST(LintTranslate, LintOptionRunsLintBeforeTranslation) {
  fp::TranslateOptions opts;
  opts.lint = true;
  const auto result =
      fp::translate(fixture("r2_unprotected_shared.force"), opts);
  EXPECT_TRUE(has_rule(result.diags, "force-lint-R2"));
  EXPECT_TRUE(result.ok);  // findings are warnings by default
}

TEST(LintTranslate, WerrorTurnsFindingsIntoTranslationFailure) {
  fp::TranslateOptions opts;
  opts.lint = true;
  opts.werror = true;
  const auto result =
      fp::translate(fixture("r2_unprotected_shared.force"), opts);
  EXPECT_TRUE(has_rule(result.diags, "force-lint-R2"));
  EXPECT_FALSE(result.ok);
}

TEST(LintTranslate, CleanExampleTranslatesCleanUnderWerror) {
  fp::TranslateOptions opts;
  opts.lint = true;
  opts.werror = true;
  const auto result = fp::translate(example_source("saxpy.force"), opts);
  EXPECT_TRUE(result.ok) << result.diags.render_all("saxpy.force");
}

TEST(LintTranslate, ModuleModeExampleStaysClean) {
  fp::TranslateOptions opts;
  opts.lint = true;
  opts.werror = true;
  opts.module_mode = true;
  const auto result =
      fp::translate(example_source("multifile/stats_module.force"), opts);
  EXPECT_TRUE(result.ok)
      << result.diags.render_all("stats_module.force");
}

// --- targeted rule semantics (inline sources) -------------------------------

TEST(LintRules, BarrierInsideUniformWhileLoopIsNotDivergent) {
  const std::string src =
      "Force S\n"
      "Shared integer C\n"
      "End declarations\n"
      "while (true) {\n"
      "Barrier\n"
      "  C = 1;\n"
      "End barrier\n"
      "}\n"
      "Join\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  EXPECT_EQ(res.findings, 0u) << diags.render_all("s");
}

TEST(LintRules, BracelessIfGuardsTheNextConstructOnly) {
  const std::string src =
      "Force S\n"
      "Private integer ME\n"
      "End declarations\n"
      "ME = 0;\n"
      "if (ME == 1)\n"
      "Barrier\n"
      "End barrier\n"
      "Join\n";
  fp::DiagSink diags;
  lint(src, diags);
  // The Barrier is divergent; End barrier follows on the unconditional path.
  std::size_t r1 = 0;
  for (const auto& d : diags.all()) {
    if (d.rule == "force-lint-R1") ++r1;
  }
  EXPECT_EQ(r1, 1u) << diags.render_all("s");
}

TEST(LintRules, DoallIndexedWriteIsPartitionedAndClean) {
  const std::string src =
      "Force S\n"
      "Shared real A(8)\n"
      "Private integer I\n"
      "End declarations\n"
      "Selfsched DO 10 I = 0, 7\n"
      "  A[I] = 1.0;\n"
      "10 End Selfsched DO\n"
      "Join\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  EXPECT_EQ(res.findings, 0u) << diags.render_all("s");
}

TEST(LintRules, DoallConstantSubscriptWriteIsR2) {
  const std::string src =
      "Force S\n"
      "Shared real A(8)\n"
      "Private integer I\n"
      "End declarations\n"
      "Selfsched DO 10 I = 0, 7\n"
      "  A[0] = 1.0;\n"
      "10 End Selfsched DO\n"
      "Join\n";
  fp::DiagSink diags;
  lint(src, diags);
  EXPECT_TRUE(has_rule(diags, "force-lint-R2")) << diags.render_all("s");
}

TEST(LintRules, DuplicateJoinIsR6) {
  const std::string src =
      "Force S\n"
      "End declarations\n"
      "Join\n"
      "Join\n";
  fp::DiagSink diags;
  lint(src, diags);
  EXPECT_TRUE(has_rule(diags, "force-lint-R6")) << diags.render_all("s");
}

TEST(LintRules, ForcecallMakesAsyncStateUnknown) {
  const std::string src =
      "Force S\n"
      "Async real CELL\n"
      "Private real T\n"
      "End declarations\n"
      "Forcecall HELPER\n"
      "Consume CELL into T\n"
      "Join\n"
      "Forcesub HELPER\n"
      "End declarations\n"
      "End Forcesub\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  // The callee may have produced CELL: no definite violation.
  EXPECT_EQ(res.findings, 0u) << diags.render_all("s");
}

}  // namespace
