// forcelint: the static construct-graph analyzer (preproc/lint.hpp).
//
// Each seeded fixture under tests/golden/lint/ trips exactly its rule; the
// clean fixture and every shipped example stay finding-free; suppression
// comments, rule subsets, --Werror promotion, and diagnostic rendering
// behave as documented.
#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "preproc/lint.hpp"
#include "preproc/translate.hpp"

namespace fp = force::preproc;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string fixture(const std::string& name) {
  return read_file(std::string(FORCE_LINT_FIXTURE_DIR) + "/" + name);
}

std::string example_source(const std::string& name) {
  return read_file(std::string(FORCE_EXAMPLES_DIR) + "/" + name);
}

/// Runs lint with default options; returns the sink for inspection.
fp::LintResult lint(const std::string& source, fp::DiagSink& diags,
                    fp::LintOptions opts = {}) {
  return fp::run_forcelint(source, opts, diags);
}

bool has_rule(const fp::DiagSink& diags, const std::string& rule_id) {
  for (const auto& d : diags.all()) {
    if (d.rule == rule_id) return true;
  }
  return false;
}

std::vector<std::string> rule_ids(const fp::DiagSink& diags) {
  std::vector<std::string> out;
  for (const auto& d : diags.all()) out.push_back(d.rule);
  return out;
}

// --- per-rule fixture detection ---------------------------------------------

struct RuleFixture {
  const char* file;
  const char* rule_id;
};

class LintFixtureTest : public ::testing::TestWithParam<RuleFixture> {};

TEST_P(LintFixtureTest, SeededFixtureTripsItsRule) {
  const RuleFixture& p = GetParam();
  fp::DiagSink diags;
  const fp::LintResult res = lint(fixture(p.file), diags);
  EXPECT_GT(res.findings, 0u) << p.file;
  EXPECT_TRUE(has_rule(diags, p.rule_id))
      << p.file << " did not trip " << p.rule_id << "; got:\n"
      << diags.render_all(p.file);
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixtureTest,
    ::testing::Values(
        RuleFixture{"r1_divergent_barrier.force", "force-lint-R1"},
        RuleFixture{"r2_unprotected_shared.force", "force-lint-R2"},
        RuleFixture{"r3_async_protocol.force", "force-lint-R3"},
        RuleFixture{"r4_lock_order.force", "force-lint-R4"},
        RuleFixture{"r5_doall_dependence.force", "force-lint-R5"},
        RuleFixture{"r6_code_after_join.force", "force-lint-R6"},
        RuleFixture{"r1_xproc_divergent_call.force", "force-lint-R1"},
        RuleFixture{"r4_xproc_lock_order.force", "force-lint-R4"}),
    [](const auto& info) {
      std::string name = info.param.file;
      name = name.substr(0, name.rfind(".force"));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

class LintR7FixtureTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LintR7FixtureTest, SeededFixtureTripsR7UnderOsForkTarget) {
  fp::LintOptions opts;
  opts.target_process_model = "os-fork";
  fp::DiagSink diags;
  const fp::LintResult res = lint(fixture(GetParam()), diags, opts);
  EXPECT_GT(res.findings, 0u) << GetParam();
  EXPECT_TRUE(has_rule(diags, "force-lint-R7"))
      << GetParam() << ":\n" << diags.render_all(GetParam());
  EXPECT_FALSE(res.compatible_with("os-fork"));
  // Without a target model the same fixture produces no diagnostic (the
  // construct is fine under the thread model) - R7 is a portability rule.
  fp::DiagSink silent;
  const fp::LintResult none = lint(fixture(GetParam()), silent);
  EXPECT_FALSE(has_rule(silent, "force-lint-R7"));
  EXPECT_FALSE(none.compatible_with("os-fork"));
}

INSTANTIATE_TEST_SUITE_P(R7Fixtures, LintR7FixtureTest,
                         ::testing::Values("r7_pcase_osfork.force",
                                           "r7_askfor_payload.force"),
                         [](const auto& info) {
                           std::string name = info.param;
                           name = name.substr(0, name.rfind(".force"));
                           return name;
                         });

TEST(LintR7, IsfullClusterFixtureTripsOnlyTheClusterTarget) {
  // Isfull is the one narrowing that is cluster-specific: the os-fork
  // model keeps the full/empty word in the shared arena and accepts it.
  fp::LintOptions cluster;
  cluster.target_process_model = "cluster";
  fp::DiagSink diags;
  const fp::LintResult res =
      lint(fixture("r7_isfull_cluster.force"), diags, cluster);
  EXPECT_GT(res.findings, 0u);
  EXPECT_TRUE(has_rule(diags, "force-lint-R7"))
      << diags.render_all("r7_isfull_cluster.force");
  EXPECT_FALSE(res.compatible_with("cluster"));
  fp::LintOptions fork;
  fork.target_process_model = "os-fork";
  fp::DiagSink silent;
  const fp::LintResult fork_res =
      lint(fixture("r7_isfull_cluster.force"), silent, fork);
  EXPECT_FALSE(has_rule(silent, "force-lint-R7"))
      << silent.render_all("r7_isfull_cluster.force");
  EXPECT_TRUE(fork_res.compatible_with("os-fork"));
  EXPECT_FALSE(fork_res.compatible_with("cluster"));
}

TEST(LintFixtures, CleanFixtureHasZeroFindings) {
  fp::DiagSink diags;
  const fp::LintResult res = lint(fixture("clean.force"), diags);
  EXPECT_EQ(res.findings, 0u) << diags.render_all("clean.force");
  EXPECT_TRUE(diags.all().empty());
}

TEST(LintFixtures, R3FixtureReportsAllThreeViolations) {
  fp::DiagSink diags;
  lint(fixture("r3_async_protocol.force"), diags);
  std::size_t r3 = 0;
  for (const auto& d : diags.all()) {
    if (d.rule == "force-lint-R3") ++r3;
  }
  // Consume-before-Produce, Produce-on-full, double Void.
  EXPECT_EQ(r3, 3u) << diags.render_all("r3");
}

TEST(LintFixtures, R4FixtureExposesTheLockCycle) {
  fp::DiagSink diags;
  const fp::LintResult res = lint(fixture("r4_lock_order.force"), diags);
  const auto cycles = res.lock_graph.cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (std::vector<std::string>{"order_a", "order_b"}));
  EXPECT_TRUE(has_rule(diags, "force-lint-R4"));
}

// --- shipped examples stay clean --------------------------------------------

class LintExampleTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LintExampleTest, ShippedExampleIsFindingFree) {
  fp::DiagSink diags;
  const fp::LintResult res = lint(example_source(GetParam()), diags);
  EXPECT_EQ(res.findings, 0u)
      << GetParam() << ":\n" << diags.render_all(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Examples, LintExampleTest,
                         ::testing::Values("saxpy.force", "stencil.force",
                                           "treewalk.force",
                                           "multifile/main.force",
                                           "multifile/stats_module.force"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/' || c == '.') c = '_';
                           }
                           return name;
                         });

// --- suppression directives -------------------------------------------------

TEST(LintSuppression, OffDirectiveSilencesTheNamedRule) {
  const std::string src =
      "Force S\n"
      "Shared integer C\n"
      "End declarations\n"
      "!force$ lint off(R2)\n"
      "C = 1;\n"
      "!force$ lint on(R2)\n"
      "C = 2;\n"
      "Join\n";
  fp::DiagSink diags;
  lint(src, diags);
  ASSERT_EQ(diags.all().size(), 1u) << diags.render_all("s");
  EXPECT_EQ(diags.all()[0].rule, "force-lint-R2");
  EXPECT_EQ(diags.all()[0].line, 7);  // only the write after "lint on"
}

TEST(LintSuppression, BareOffSilencesEveryRule) {
  const std::string src =
      "Force S\n"
      "Shared integer C\n"
      "End declarations\n"
      "!force$ lint off\n"
      "C = 1;\n"
      "Join\n"
      "Barrier\n"
      "End barrier\n"
      "!force$ lint on\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  EXPECT_EQ(res.findings, 0u) << diags.render_all("s");
}

TEST(LintSuppression, DirectiveAcceptsTrailingComment) {
  const std::string src =
      "Force S\n"
      "Shared integer C\n"
      "End declarations\n"
      "!force$ lint off(R2)   ! deliberate: debug counter\n"
      "C = 1;\n"
      "!force$ lint on(R2)\n"
      "Join\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  EXPECT_EQ(res.findings, 0u) << diags.render_all("s");
}

TEST(LintSuppression, UnclosedOffRegionGetsW1Warning) {
  const std::string src =
      "Force S\n"
      "Shared integer C\n"
      "End declarations\n"
      "!force$ lint off\n"
      "C = 1;\n"
      "Join\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  // The suppression still holds (no R2) but the unclosed region itself is
  // a finding: silently disabling rules to end of file is almost always a
  // forgotten "lint on".
  EXPECT_FALSE(has_rule(diags, "force-lint-R2"));
  EXPECT_TRUE(has_rule(diags, "force-lint-W1")) << diags.render_all("s");
  EXPECT_EQ(res.findings, 1u);
  ASSERT_EQ(diags.all().size(), 1u);
  EXPECT_EQ(diags.all()[0].line, 4);  // points at the directive itself
}

TEST(LintSuppression, UnclosedPerRuleRegionsReportEachDirective) {
  const std::string src =
      "Force S\n"
      "End declarations\n"
      "!force$ lint off(R2)\n"
      "!force$ lint off(R3)\n"
      "Join\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  EXPECT_EQ(res.findings, 2u) << diags.render_all("s");
}

TEST(LintSuppression, UnrelatedRuleStaysActive) {
  const std::string src =
      "Force S\n"
      "Shared integer C\n"
      "End declarations\n"
      "!force$ lint off(R1)\n"
      "C = 1;\n"
      "Join\n";
  fp::DiagSink diags;
  lint(src, diags);
  EXPECT_TRUE(has_rule(diags, "force-lint-R2"));
}

// --- spec parsing and rule subsets ------------------------------------------

TEST(LintSpec, DefaultEnablesAllSevenRulesAsWarnings) {
  const fp::LintOptions opts = fp::parse_lint_spec("");
  EXPECT_EQ(opts.rules.size(), 7u);
  EXPECT_EQ(opts.rules.count(fp::LintRule::kR7), 1u);
  EXPECT_FALSE(opts.findings_are_errors);
  EXPECT_TRUE(opts.unknown_tokens.empty());
}

TEST(LintSpec, SubsetAndSeverityParse) {
  const fp::LintOptions opts = fp::parse_lint_spec("R2,r4,E");
  EXPECT_EQ(opts.rules.size(), 2u);
  EXPECT_EQ(opts.rules.count(fp::LintRule::kR2), 1u);
  EXPECT_EQ(opts.rules.count(fp::LintRule::kR4), 1u);
  EXPECT_TRUE(opts.findings_are_errors);
}

TEST(LintSpec, UnknownTokensAreCollectedAndNoted) {
  const fp::LintOptions opts = fp::parse_lint_spec("R2,bogus");
  ASSERT_EQ(opts.unknown_tokens.size(), 1u);
  EXPECT_EQ(opts.unknown_tokens[0], "bogus");
  fp::DiagSink diags;
  lint("Force S\nEnd declarations\nJoin\n", diags, opts);
  ASSERT_FALSE(diags.all().empty());
  EXPECT_EQ(diags.all()[0].severity, fp::Severity::kNote);
}

TEST(LintSpec, DisabledRuleDoesNotFire) {
  fp::DiagSink diags;
  lint(fixture("r2_unprotected_shared.force"), diags,
       fp::parse_lint_spec("R1"));
  EXPECT_FALSE(has_rule(diags, "force-lint-R2"));
}

TEST(LintSpec, ErrorSeverityMakesFindingsErrors) {
  fp::DiagSink diags;
  lint(fixture("r2_unprotected_shared.force"), diags,
       fp::parse_lint_spec("E"));
  EXPECT_GT(diags.errors(), 0u);
  EXPECT_FALSE(diags.ok());
}

// --- diagnostics: columns, carets, ordering, werror -------------------------

TEST(LintDiagnostics, FindingCarriesColumnAndCaretSnippet) {
  fp::DiagSink diags;
  lint(fixture("r2_unprotected_shared.force"), diags);
  ASSERT_FALSE(diags.all().empty());
  const fp::Diagnostic& d = diags.all()[0];
  EXPECT_EQ(d.rule, "force-lint-R2");
  EXPECT_EQ(d.line, 7);
  EXPECT_EQ(d.col, 1);  // COUNTER starts the line
  EXPECT_EQ(d.length, 7);
  const std::string rendered = d.render("r2.force");
  EXPECT_NE(rendered.find("r2.force:7:1:"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("[force-lint-R2]"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("COUNTER = COUNTER + 1;"), std::string::npos);
  EXPECT_NE(rendered.find("^~~~~~~"), std::string::npos) << rendered;
}

TEST(LintDiagnostics, RenderAllSortsByLineThenColumn) {
  fp::DiagSink diags;
  diags.report(fp::Severity::kWarning, 9, 5, 1, "force-lint-R2", "later", "");
  diags.report(fp::Severity::kWarning, 3, 2, 1, "force-lint-R2", "early", "");
  diags.report(fp::Severity::kWarning, 9, 1, 1, "force-lint-R2", "mid", "");
  const std::string out = diags.render_all("f");
  const std::size_t early = out.find("early");
  const std::size_t mid = out.find("mid");
  const std::size_t later = out.find("later");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(later, std::string::npos);
  EXPECT_LT(early, mid);
  EXPECT_LT(mid, later);
}

TEST(LintDiagnostics, WerrorPromotionCountsInErrorsAndExitState) {
  fp::DiagSink diags;
  diags.set_werror(true);
  diags.report(fp::Severity::kWarning, 1, 1, 1, "force-lint-R2", "w", "");
  EXPECT_EQ(diags.errors(), 1u);
  EXPECT_EQ(diags.warnings(), 1u);
  EXPECT_FALSE(diags.ok());
  ASSERT_EQ(diags.all().size(), 1u);
  EXPECT_EQ(diags.all()[0].severity, fp::Severity::kError);
}

TEST(LintDiagnostics, DeterministicAcrossRuns) {
  const std::string src = fixture("r5_doall_dependence.force");
  fp::DiagSink a;
  fp::DiagSink b;
  lint(src, a);
  lint(src, b);
  EXPECT_EQ(a.render_all("x"), b.render_all("x"));
  EXPECT_EQ(rule_ids(a), rule_ids(b));
}

// --- translate() integration ------------------------------------------------

TEST(LintTranslate, LintOptionRunsLintBeforeTranslation) {
  fp::TranslateOptions opts;
  opts.lint = true;
  const auto result =
      fp::translate(fixture("r2_unprotected_shared.force"), opts);
  EXPECT_TRUE(has_rule(result.diags, "force-lint-R2"));
  EXPECT_TRUE(result.ok);  // findings are warnings by default
}

TEST(LintTranslate, WerrorTurnsFindingsIntoTranslationFailure) {
  fp::TranslateOptions opts;
  opts.lint = true;
  opts.werror = true;
  const auto result =
      fp::translate(fixture("r2_unprotected_shared.force"), opts);
  EXPECT_TRUE(has_rule(result.diags, "force-lint-R2"));
  EXPECT_FALSE(result.ok);
}

TEST(LintTranslate, CleanExampleTranslatesCleanUnderWerror) {
  fp::TranslateOptions opts;
  opts.lint = true;
  opts.werror = true;
  const auto result = fp::translate(example_source("saxpy.force"), opts);
  EXPECT_TRUE(result.ok) << result.diags.render_all("saxpy.force");
}

TEST(LintTranslate, ModuleModeExampleStaysClean) {
  fp::TranslateOptions opts;
  opts.lint = true;
  opts.werror = true;
  opts.module_mode = true;
  const auto result =
      fp::translate(example_source("multifile/stats_module.force"), opts);
  EXPECT_TRUE(result.ok)
      << result.diags.render_all("stats_module.force");
}

// --- targeted rule semantics (inline sources) -------------------------------

TEST(LintRules, BarrierInsideUniformWhileLoopIsNotDivergent) {
  const std::string src =
      "Force S\n"
      "Shared integer C\n"
      "End declarations\n"
      "while (true) {\n"
      "Barrier\n"
      "  C = 1;\n"
      "End barrier\n"
      "}\n"
      "Join\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  EXPECT_EQ(res.findings, 0u) << diags.render_all("s");
}

TEST(LintRules, BracelessIfGuardsTheNextConstructOnly) {
  const std::string src =
      "Force S\n"
      "Private integer ME\n"
      "End declarations\n"
      "ME = 0;\n"
      "if (ME == 1)\n"
      "Barrier\n"
      "End barrier\n"
      "Join\n";
  fp::DiagSink diags;
  lint(src, diags);
  // The Barrier is divergent; End barrier follows on the unconditional path.
  std::size_t r1 = 0;
  for (const auto& d : diags.all()) {
    if (d.rule == "force-lint-R1") ++r1;
  }
  EXPECT_EQ(r1, 1u) << diags.render_all("s");
}

TEST(LintRules, DoallIndexedWriteIsPartitionedAndClean) {
  const std::string src =
      "Force S\n"
      "Shared real A(8)\n"
      "Private integer I\n"
      "End declarations\n"
      "Selfsched DO 10 I = 0, 7\n"
      "  A[I] = 1.0;\n"
      "10 End Selfsched DO\n"
      "Join\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  EXPECT_EQ(res.findings, 0u) << diags.render_all("s");
}

TEST(LintRules, DoallConstantSubscriptWriteIsR2) {
  const std::string src =
      "Force S\n"
      "Shared real A(8)\n"
      "Private integer I\n"
      "End declarations\n"
      "Selfsched DO 10 I = 0, 7\n"
      "  A[0] = 1.0;\n"
      "10 End Selfsched DO\n"
      "Join\n";
  fp::DiagSink diags;
  lint(src, diags);
  EXPECT_TRUE(has_rule(diags, "force-lint-R2")) << diags.render_all("s");
}

TEST(LintRules, DuplicateJoinIsR6) {
  const std::string src =
      "Force S\n"
      "End declarations\n"
      "Join\n"
      "Join\n";
  fp::DiagSink diags;
  lint(src, diags);
  EXPECT_TRUE(has_rule(diags, "force-lint-R6")) << diags.render_all("s");
}

// --- interprocedural effect summaries ---------------------------------------

TEST(LintInterproc, ForcecallAppliesCalleeAsyncTransformer) {
  // HELPER definitely produces CELL, so the Consume after the call is
  // clean - the summary's async transformer, not a blanket "unknown".
  const std::string src =
      "Force S\n"
      "Async real CELL\n"
      "Private real T\n"
      "End declarations\n"
      "Forcecall HELPER\n"
      "Consume CELL into T\n"
      "Join\n"
      "Forcesub HELPER\n"
      "Async real CELL\n"
      "End declarations\n"
      "Produce CELL = 1.0\n"
      "End Forcesub\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  EXPECT_EQ(res.findings, 0u) << diags.render_all("s");
}

TEST(LintInterproc, CallToNonProducingCalleeKeepsCellEmpty) {
  // HELPER touches nothing: the pre-call "empty" state survives the call
  // and the Consume is a definite R3.
  const std::string src =
      "Force S\n"
      "Async real CELL\n"
      "Private real T\n"
      "End declarations\n"
      "Forcecall HELPER\n"
      "Consume CELL into T\n"
      "Join\n"
      "Forcesub HELPER\n"
      "End declarations\n"
      "End Forcesub\n";
  fp::DiagSink diags;
  lint(src, diags);
  EXPECT_TRUE(has_rule(diags, "force-lint-R3")) << diags.render_all("s");
}

TEST(LintInterproc, UnresolvedCallMakesAsyncUnknown) {
  // HELPER has no definition in the program: the sound top - it may have
  // produced CELL, so no definite violation.
  const std::string src =
      "Force S\n"
      "Async real CELL\n"
      "Private real T\n"
      "End declarations\n"
      "Externf HELPER\n"
      "Forcecall HELPER\n"
      "Consume CELL into T\n"
      "Join\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  EXPECT_EQ(res.findings, 0u) << diags.render_all("s");
}

TEST(LintInterproc, DivergentCallToCollectiveCalleeIsR1) {
  const std::string src =
      "Force S\n"
      "Shared integer C\n"
      "Private integer ME\n"
      "End declarations\n"
      "ME = 0;\n"
      "if (ME == 1) {\n"
      "Forcecall WORK\n"
      "}\n"
      "Join\n"
      "Forcesub WORK\n"
      "End declarations\n"
      "Barrier\n"
      "End barrier\n"
      "End Forcesub\n";
  fp::DiagSink diags;
  lint(src, diags);
  EXPECT_TRUE(has_rule(diags, "force-lint-R1")) << diags.render_all("s");
}

TEST(LintInterproc, DivergentCallToCollectiveFreeCalleeIsClean) {
  // The precision upgrade over "every Forcecall is collective": WORK has
  // no collective anywhere, so a divergent call to it cannot deadlock the
  // force.
  const std::string src =
      "Force S\n"
      "Private integer ME\n"
      "End declarations\n"
      "ME = 0;\n"
      "if (ME == 1) {\n"
      "Forcecall WORK\n"
      "}\n"
      "Join\n"
      "Forcesub WORK\n"
      "Private integer T\n"
      "End declarations\n"
      "T = 2;\n"
      "End Forcesub\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  EXPECT_EQ(res.findings, 0u) << diags.render_all("s");
}

TEST(LintInterproc, DivergentCallToUnresolvedCalleeStaysR1) {
  const std::string src =
      "Force S\n"
      "Private integer ME\n"
      "End declarations\n"
      "Externf WORK\n"
      "ME = 0;\n"
      "if (ME == 1) {\n"
      "Forcecall WORK\n"
      "}\n"
      "Join\n";
  fp::DiagSink diags;
  lint(src, diags);
  EXPECT_TRUE(has_rule(diags, "force-lint-R1")) << diags.render_all("s");
}

TEST(LintInterproc, CrossRoutineLockOrderCycleIsR4) {
  // The caller holds order_a while SUB_B acquires order_b, and holds
  // order_b while SUB_A acquires order_a - an inversion no single routine
  // exhibits.
  const std::string src =
      "Force S\n"
      "End declarations\n"
      "Lock order_a\n"
      "Forcecall SUB_B\n"
      "Unlock order_a\n"
      "Lock order_b\n"
      "Forcecall SUB_A\n"
      "Unlock order_b\n"
      "Join\n"
      "Forcesub SUB_A\n"
      "End declarations\n"
      "Lock order_a\n"
      "Unlock order_a\n"
      "End Forcesub\n"
      "Forcesub SUB_B\n"
      "End declarations\n"
      "Lock order_b\n"
      "Unlock order_b\n"
      "End Forcesub\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  EXPECT_TRUE(has_rule(diags, "force-lint-R4")) << diags.render_all("s");
  ASSERT_EQ(res.lock_graph.cycles().size(), 1u);
  EXPECT_EQ(res.lock_graph.cycles()[0],
            (std::vector<std::string>{"order_a", "order_b"}));
}

TEST(LintInterproc, RecursionTerminatesAndDegradesToAsyncTop) {
  const std::string src =
      "Force S\n"
      "End declarations\n"
      "Forcecall R\n"
      "Join\n"
      "Forcesub R\n"
      "End declarations\n"
      "Forcecall R\n"
      "End Forcesub\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);  // must not hang
  const auto it = std::find_if(
      res.summaries.begin(), res.summaries.end(),
      [](const fp::EffectSummary& s) { return s.routine == "R"; });
  ASSERT_NE(it, res.summaries.end());
  EXPECT_TRUE(it->async_top);
  EXPECT_FALSE(it->calls_unresolved);  // R resolves, it just recurses
}

TEST(LintInterproc, SummariesExposeTransitiveEffects) {
  const std::string src =
      "Force S\n"
      "End declarations\n"
      "Forcecall A\n"
      "Join\n"
      "Forcesub A\n"
      "End declarations\n"
      "Forcecall B\n"
      "End Forcesub\n"
      "Forcesub B\n"
      "Shared integer W\n"
      "End declarations\n"
      "Lock inner\n"
      "W = 1;\n"
      "Unlock inner\n"
      "Barrier\n"
      "End barrier\n"
      "End Forcesub\n";
  fp::DiagSink diags;
  const fp::LintResult res = lint(src, diags);
  const auto it = std::find_if(
      res.summaries.begin(), res.summaries.end(),
      [](const fp::EffectSummary& s) { return s.routine == "A"; });
  ASSERT_NE(it, res.summaries.end());
  EXPECT_TRUE(it->may_execute_collective);   // via B's Barrier
  EXPECT_EQ(it->locks_acquired.count("inner"), 1u);
  EXPECT_EQ(it->shared_writes.count("W"), 1u);
  EXPECT_EQ(it->callees.count("B"), 1u);
  EXPECT_FALSE(it->async_top);
  EXPECT_FALSE(it->calls_unresolved);
}

// --- whole-program (multi-unit) mode ----------------------------------------

TEST(LintProgram, ForcecallResolvesAcrossUnits) {
  const std::string main_src =
      "Force S\n"
      "Private integer ME\n"
      "End declarations\n"
      "Externf STATS\n"
      "ME = 0;\n"
      "if (ME == 1) {\n"
      "Forcecall STATS\n"
      "}\n"
      "Join\n";
  const std::string module_src =
      "Forcesub STATS\n"
      "End declarations\n"
      "Barrier\n"
      "End barrier\n"
      "End Forcesub\n";
  fp::DiagSink diags;
  fp::run_forcelint_program(
      {{"main.force", main_src}, {"stats.force", module_src}}, {}, diags);
  // The divergent call is R1 because STATS - defined in the OTHER unit -
  // contains a Barrier; single-unit lint of main_src alone could only
  // guess.
  EXPECT_TRUE(has_rule(diags, "force-lint-R1"))
      << diags.render_all("main.force");
  ASSERT_FALSE(diags.all().empty());
  EXPECT_NE(diags.all()[0].message.find("STATS"), std::string::npos);
}

TEST(LintProgram, FindingsInExtraUnitsCarryFileProvenance) {
  const std::string main_src =
      "Force S\n"
      "End declarations\n"
      "Join\n";
  const std::string module_src =
      "Forcesub STATS\n"
      "Shared integer C\n"
      "End declarations\n"
      "C = 1;\n"
      "End Forcesub\n";
  fp::DiagSink diags;
  fp::run_forcelint_program(
      {{"main.force", main_src}, {"stats.force", module_src}}, {}, diags);
  ASSERT_TRUE(has_rule(diags, "force-lint-R2"))
      << diags.render_all("main.force");
  for (const auto& d : diags.all()) {
    if (d.rule == "force-lint-R2") {
      EXPECT_EQ(d.file, "stats.force");
    }
  }
  const std::string rendered = diags.render_all("main.force");
  EXPECT_NE(rendered.find("stats.force:4:"), std::string::npos) << rendered;
}

TEST(LintProgram, IdenticalDiagnosticsDedupe) {
  fp::DiagSink diags;
  diags.report_in_file("u.force", fp::Severity::kWarning, 3, 1, 2,
                       "force-lint-R2", "same finding", "C = 1;");
  diags.report_in_file("u.force", fp::Severity::kWarning, 3, 1, 2,
                       "force-lint-R2", "same finding", "C = 1;");
  EXPECT_EQ(diags.all().size(), 1u);
  EXPECT_EQ(diags.warnings(), 1u);
}

TEST(LintProgram, MultifileExampleIsCleanWholeProgram) {
  const std::vector<fp::LintUnit> units = {
      {"main.force", example_source("multifile/main.force")},
      {"stats_module.force", example_source("multifile/stats_module.force")}};
  fp::DiagSink diags;
  const fp::LintResult res = fp::run_forcelint_program(units, {}, diags);
  EXPECT_EQ(res.findings, 0u) << diags.render_all("main.force");
  // The seed acceptance case: STATS resolves across units and the whole
  // program is os-fork portable.
  const auto it = std::find_if(
      res.summaries.begin(), res.summaries.end(),
      [](const fp::EffectSummary& s) { return s.routine == "FORCEMAIN"; });
  for (const auto& s : res.summaries) {
    if (s.callees.count("STATS") != 0) {
      EXPECT_FALSE(s.calls_unresolved);
    }
  }
  (void)it;
  EXPECT_TRUE(res.compatible_with("os-fork"));
  EXPECT_TRUE(res.compatible_with("thread"));
}

// --- R7: process-model portability ------------------------------------------

TEST(LintR7, PcaseUnderOsForkTargetFires) {
  const std::string src =
      "Force S\n"
      "End declarations\n"
      "Pcase\n"
      "Usect\n"
      "  ;\n"
      "End pcase\n"
      "Join\n";
  fp::LintOptions opts;
  opts.target_process_model = "os-fork";
  fp::DiagSink diags;
  const fp::LintResult res = fp::run_forcelint(src, opts, diags);
  EXPECT_TRUE(has_rule(diags, "force-lint-R7")) << diags.render_all("s");
  EXPECT_FALSE(res.compatible_with("os-fork"));
  EXPECT_FALSE(res.compatible_with("cluster"));  // inherits the narrowing
  EXPECT_TRUE(res.compatible_with("thread"));
}

TEST(LintR7, MatrixIsComputedEvenWithoutATargetModel) {
  const std::string src =
      "Force S\n"
      "End declarations\n"
      "Pcase\n"
      "Usect\n"
      "  ;\n"
      "End pcase\n"
      "Join\n";
  fp::DiagSink diags;
  const fp::LintResult res = fp::run_forcelint(src, {}, diags);
  // No diagnostic (the program targets the thread model, which accepts
  // Pcase) but the matrix still records what os-fork would reject.
  EXPECT_FALSE(has_rule(diags, "force-lint-R7")) << diags.render_all("s");
  EXPECT_EQ(res.findings, 0u);
  EXPECT_FALSE(res.compatible_with("os-fork"));
  ASSERT_FALSE(res.model_violations.empty());
  EXPECT_EQ(res.model_violations[0].construct, "Pcase");
  EXPECT_EQ(res.model_violations[0].line, 3);
}

TEST(LintR7, NonScalarAskforPayloadIsNotForkPortable) {
  const std::string src =
      "Force S\n"
      "Private integer T\n"
      "End declarations\n"
      "Seedwork 10 1\n"
      "Askfor 10 T of std::string\n"
      "10 End Askfor\n"
      "Join\n";
  fp::LintOptions opts;
  opts.target_process_model = "os-fork";
  fp::DiagSink diags;
  const fp::LintResult res = fp::run_forcelint(src, opts, diags);
  EXPECT_TRUE(has_rule(diags, "force-lint-R7")) << diags.render_all("s");
  EXPECT_FALSE(res.compatible_with("os-fork"));
}

TEST(LintR7, ScalarAskforPayloadIsPortable) {
  const std::string src =
      "Force S\n"
      "Private integer T\n"
      "End declarations\n"
      "Seedwork 10 1\n"
      "Askfor 10 T of integer\n"
      "10 End Askfor\n"
      "Join\n";
  fp::LintOptions opts;
  opts.target_process_model = "os-fork";
  fp::DiagSink diags;
  const fp::LintResult res = fp::run_forcelint(src, opts, diags);
  EXPECT_FALSE(has_rule(diags, "force-lint-R7")) << diags.render_all("s");
  EXPECT_TRUE(res.compatible_with("os-fork"));
}

TEST(LintR7, IsfullIsRejectedByTheClusterModelOnly) {
  const std::string src =
      "Force S\n"
      "Async real CELL\n"
      "Private integer F\n"
      "End declarations\n"
      "Produce CELL = 1.0\n"
      "Isfull CELL into F\n"
      "Join\n";
  fp::LintOptions opts;
  opts.target_process_model = "os-fork";
  fp::DiagSink diags;
  const fp::LintResult res = fp::run_forcelint(src, opts, diags);
  EXPECT_FALSE(has_rule(diags, "force-lint-R7")) << diags.render_all("s");
  EXPECT_TRUE(res.compatible_with("os-fork"));
  EXPECT_FALSE(res.compatible_with("cluster"));
}

TEST(LintR7, SuppressionDirectiveCoversR7) {
  const std::string src =
      "Force S\n"
      "End declarations\n"
      "!force$ lint off(R7)\n"
      "Pcase\n"
      "Usect\n"
      "  ;\n"
      "End pcase\n"
      "!force$ lint on(R7)\n"
      "Join\n";
  fp::LintOptions opts;
  opts.target_process_model = "os-fork";
  fp::DiagSink diags;
  const fp::LintResult res = fp::run_forcelint(src, opts, diags);
  EXPECT_EQ(res.findings, 0u) << diags.render_all("s");
  // Suppression silences the diagnostic, not the matrix.
  EXPECT_FALSE(res.compatible_with("os-fork"));
}

// --- the machine-readable report --------------------------------------------

TEST(LintReport, CleanProgramListsOsForkCompatible) {
  const std::vector<fp::LintUnit> units = {
      {"main.force", example_source("multifile/main.force")},
      {"stats_module.force", example_source("multifile/stats_module.force")}};
  fp::DiagSink diags;
  const fp::LintResult res = fp::run_forcelint_program(units, {}, diags);
  const std::string json = fp::render_lint_report(units, {}, res, diags);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"main.force\""), std::string::npos);
  EXPECT_NE(json.find("\"stats_module.force\""), std::string::npos);
  EXPECT_NE(
      json.find("{\"model\": \"os-fork\", \"compatible\": true"),
      std::string::npos)
      << json;
  EXPECT_NE(json.find("\"findings\": []"), std::string::npos) << json;
}

TEST(LintReport, ViolatingProgramListsTheConstructWithProvenance) {
  const std::vector<fp::LintUnit> units = {
      {"pcase.force",
       "Force S\n"
       "End declarations\n"
       "Pcase\n"
       "Usect\n"
       "  ;\n"
       "End pcase\n"
       "Join\n"}};
  fp::DiagSink diags;
  const fp::LintResult res = fp::run_forcelint_program(units, {}, diags);
  const std::string json = fp::render_lint_report(units, {}, res, diags);
  EXPECT_NE(
      json.find("{\"model\": \"os-fork\", \"compatible\": false"),
      std::string::npos)
      << json;
  EXPECT_NE(json.find("\"construct\": \"Pcase\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"pcase.force\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
}

TEST(LintReport, TranslateRendersReportAndExtraUnits) {
  fp::TranslateOptions opts;
  opts.lint_report = true;
  opts.lint = true;
  opts.source_name = "main.force";
  opts.lint_units.emplace_back(
      "stats_module.force", example_source("multifile/stats_module.force"));
  const auto result =
      fp::translate(example_source("multifile/main.force"), opts);
  EXPECT_TRUE(result.ok) << result.diags.render_all("main.force");
  EXPECT_NE(result.lint_report_json.find("\"schema_version\": 1"),
            std::string::npos);
  EXPECT_NE(result.lint_report_json.find("\"stats_module.force\""),
            std::string::npos);
  EXPECT_NE(result.lint_report_json.find("\"routines\""), std::string::npos);
}

// --- static R7 matches the runtime's os-fork rejections ---------------------

TEST(LintR7, StaticallyFlagsWhatTheForkBackendRejectsAtRuntime) {
  // tests/test_process_fork.cpp (ForkConfig.PcaseAndResolveAreRejected,
  // AskforPayloads) shows the fork backend rejecting Pcase and
  // non-trivially-copyable askfor payloads at run time; R7 must flag the
  // dialect-visible subset of exactly those constructs statically.
  const std::string pcase_src =
      "Force S\n"
      "End declarations\n"
      "Pcase\n"
      "Usect\n"
      "  ;\n"
      "End pcase\n"
      "Join\n";
  const std::string askfor_src =
      "Force S\n"
      "Private integer T\n"
      "End declarations\n"
      "Seedwork 10 1\n"
      "Askfor 10 T of std::string\n"
      "10 End Askfor\n"
      "Join\n";
  const std::string clean_src =
      "Force S\n"
      "Shared integer C\n"
      "End declarations\n"
      "Barrier\n"
      "  C = 1;\n"
      "End barrier\n"
      "Join\n";
  fp::LintOptions opts;
  opts.target_process_model = "os-fork";
  for (const auto* rejected : {&pcase_src, &askfor_src}) {
    fp::DiagSink diags;
    const fp::LintResult res = fp::run_forcelint(*rejected, opts, diags);
    EXPECT_TRUE(has_rule(diags, "force-lint-R7"));
    EXPECT_FALSE(res.compatible_with("os-fork"));
  }
  fp::DiagSink diags;
  const fp::LintResult res = fp::run_forcelint(clean_src, opts, diags);
  EXPECT_FALSE(has_rule(diags, "force-lint-R7"));
  EXPECT_TRUE(res.compatible_with("os-fork"));
}

TEST(LintR7, StaticallyFlagsWhatTheClusterBackendRejectsAtRuntime) {
  // tests/test_cluster.cpp (ClusterRejects.*) shows the cluster backend
  // rejecting Pcase, non-trivially-copyable askfor payloads and Isfull at
  // run time with cluster-specific diagnostics; R7 with a cluster target
  // must flag the dialect-visible form of exactly those constructs
  // statically, and accept the programs the backend accepts.
  const std::string pcase_src =
      "Force S\n"
      "End declarations\n"
      "Pcase\n"
      "Usect\n"
      "  ;\n"
      "End pcase\n"
      "Join\n";
  const std::string askfor_src =
      "Force S\n"
      "Private integer T\n"
      "End declarations\n"
      "Seedwork 10 1\n"
      "Askfor 10 T of std::string\n"
      "10 End Askfor\n"
      "Join\n";
  const std::string isfull_src =
      "Force S\n"
      "Async real CELL\n"
      "Private integer F\n"
      "End declarations\n"
      "Produce CELL = 1.0\n"
      "Isfull CELL into F\n"
      "Join\n";
  const std::string clean_src =
      "Force S\n"
      "Shared integer C\n"
      "End declarations\n"
      "Barrier\n"
      "  C = 1;\n"
      "End barrier\n"
      "Join\n";
  fp::LintOptions opts;
  opts.target_process_model = "cluster";
  for (const auto* rejected : {&pcase_src, &askfor_src, &isfull_src}) {
    fp::DiagSink diags;
    const fp::LintResult res = fp::run_forcelint(*rejected, opts, diags);
    EXPECT_TRUE(has_rule(diags, "force-lint-R7"))
        << diags.render_all("s") << *rejected;
    EXPECT_FALSE(res.compatible_with("cluster")) << *rejected;
  }
  fp::DiagSink diags;
  const fp::LintResult res = fp::run_forcelint(clean_src, opts, diags);
  EXPECT_FALSE(has_rule(diags, "force-lint-R7")) << diags.render_all("s");
  EXPECT_TRUE(res.compatible_with("cluster"));
}

}  // namespace
