// Tests for critical sections (paper §3.4).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/critical.hpp"
#include "core/env.hpp"

namespace fc = force::core;

namespace {
fc::ForceConfig test_config(int np, const std::string& machine = "native") {
  fc::ForceConfig cfg;
  cfg.nproc = np;
  cfg.machine = machine;
  return cfg;
}
}  // namespace

TEST(Critical, MutualExclusionOnEveryMachine) {
  for (const auto& machine : force::machdep::machine_names()) {
    fc::ForceEnvironment env(test_config(4, machine));
    fc::CriticalSection cs(env);
    long counter = 0;  // non-atomic on purpose
    std::atomic<int> inside{0};
    std::atomic<bool> violated{false};
    {
      std::vector<std::jthread> team;
      for (int t = 0; t < 4; ++t) {
        team.emplace_back([&] {
          for (int i = 0; i < 500; ++i) {
            cs.enter([&] {
              if (inside.fetch_add(1) != 0) violated = true;
              ++counter;
              inside.fetch_sub(1);
            });
          }
        });
      }
    }
    EXPECT_FALSE(violated.load()) << machine;
    EXPECT_EQ(counter, 2000) << machine;
    EXPECT_EQ(cs.entries(), 2000u) << machine;
  }
}

TEST(Critical, ExceptionReleasesTheLock) {
  fc::ForceEnvironment env(test_config(2));
  fc::CriticalSection cs(env);
  EXPECT_THROW(cs.enter([] { throw std::runtime_error("inside"); }),
               std::runtime_error);
  // The lock must be free again.
  bool entered = false;
  cs.enter([&] { entered = true; });
  EXPECT_TRUE(entered);
}

TEST(Critical, GuardStyleWorks) {
  fc::ForceEnvironment env(test_config(2));
  fc::CriticalSection cs(env);
  int value = 0;
  {
    fc::CriticalSection::Guard g(cs);
    value = 42;
  }
  EXPECT_EQ(value, 42);
  // Lock free after guard scope:
  cs.enter([] {});
}

TEST(Critical, StatsAreCounted) {
  fc::ForceEnvironment env(test_config(2));
  fc::CriticalSection cs(env);
  for (int i = 0; i < 7; ++i) cs.enter([] {});
  EXPECT_EQ(env.stats().critical_entries.load(std::memory_order_relaxed),
            7u);
}

TEST(Critical, DistinctSectionsDoNotInterfere) {
  fc::ForceEnvironment env(test_config(2));
  fc::CriticalSection a(env);
  fc::CriticalSection b(env);
  // Holding a does not block b.
  fc::CriticalSection::Guard ga(a);
  bool entered_b = false;
  b.enter([&] { entered_b = true; });
  EXPECT_TRUE(entered_b);
}
