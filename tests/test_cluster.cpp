// Cluster backend fault-injection wall (ISSUE 9 satellite).
//
// The cluster process model runs force members as separate processes with
// no shared mapping at all: every construct is a coordinator RPC over a
// socket, and the arena is kept coherent by a write-through software DSM.
// These tests prove the death machinery end to end:
//
//   * a peer SIGKILLed mid-barrier or mid-askfor surfaces as a
//     ProcessDeathError with peer provenance (process number, pid, signal)
//     well inside the 30 s acceptance bound, and the surviving peers are
//     released by team poison rather than hanging in their parked RPCs;
//   * a fresh force constructed after such a death runs to completion;
//   * a torn connection (peer closes its socket but keeps running) is
//     diagnosed distinctly and the wedged peer is reclaimed;
//   * the narrowing rules the static lint (R7, target cluster) promises
//     are enforced at runtime with matching diagnostics: Pcase, Resolve,
//     non-trivially-copyable askfor payloads, Isfull, the sentry, tracing
//     and team pools are all rejected with cluster-specific messages.
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/force.hpp"
#include "machdep/cluster.hpp"
#include "machdep/process.hpp"
#include "util/check.hpp"

namespace fc = force::core;
namespace md = force::machdep;

namespace {

force::ForceConfig cluster_config(int nproc) {
  force::ForceConfig cfg;
  cfg.nproc = nproc;
  cfg.process_model = "cluster";
  return cfg;
}

/// Seconds elapsed running `body`; the death tests assert the reaper's
/// grace machinery resolves well inside the 30 s acceptance bound.
template <typename Body>
double timed_seconds(Body&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

// --- SIGKILL fault injection -------------------------------------------------

TEST(ClusterDeath, SigkillMidBarrierSurfacesWithProvenance) {
  force::Force f(cluster_config(4));
  const double secs = timed_seconds([&] {
    try {
      f.run([](fc::Ctx& ctx) {
        // Three peers park inside the barrier RPC; the fourth dies without
        // arriving. The coordinator must reap it, poison the team, and
        // release the parked survivors.
        if (ctx.me() == 4) raise(SIGKILL);
        ctx.barrier();
      });
      FAIL() << "expected ProcessDeathError";
    } catch (const md::ProcessDeathError& e) {
      EXPECT_EQ(e.process(), 4);
      EXPECT_GT(e.pid(), 0);
      EXPECT_EQ(e.term_signal(), SIGKILL);
      EXPECT_EQ(e.exit_code(), -1);
      EXPECT_NE(std::string(e.what()).find("killed by signal"),
                std::string::npos);
      EXPECT_NE(std::string(e.what()).find("surviving processes released"),
                std::string::npos);
    }
  });
  EXPECT_LT(secs, 30.0);
}

TEST(ClusterDeath, SigkillMidAskforReleasesParkedSurvivors) {
  force::Force f(cluster_config(4));
  const double secs = timed_seconds([&] {
    try {
      f.run([](fc::Ctx& ctx) {
        auto& af = ctx.askfor<std::int64_t>(FORCE_SITE);
        // One token, granted to whichever peer asks first; the task never
        // completes (its holder dies), so the other peers stay parked in
        // ask() at the coordinator until the poison releases them.
        if (ctx.leader()) af.put(1);
        af.work([](std::int64_t&, fc::Askfor<std::int64_t>&) {
          raise(SIGKILL);
        });
        ctx.barrier();
      });
      FAIL() << "expected ProcessDeathError";
    } catch (const md::ProcessDeathError& e) {
      EXPECT_EQ(e.term_signal(), SIGKILL);
      EXPECT_NE(e.site().find("askfor"), std::string::npos)
          << "victim site: " << e.site();
    }
  });
  EXPECT_LT(secs, 30.0);
}

TEST(ClusterDeath, FreshForceSucceedsAfterPeerDeath) {
  {
    force::Force f(cluster_config(3));
    EXPECT_THROW(f.run([](fc::Ctx& ctx) {
      if (ctx.me() == 2) raise(SIGKILL);
      ctx.barrier();
    }),
                 md::ProcessDeathError);
  }
  // The dead team left no residue the next team could trip on: all its
  // state was coordinator-side and died with the run.
  force::Force f(cluster_config(3));
  auto& total = f.shared<std::int64_t>("total");
  total = 0;
  f.run([&](fc::Ctx& ctx) {
    ctx.critical(FORCE_SITE, [&] { total += ctx.me(); });
    ctx.barrier();
  });
  EXPECT_EQ(total, 6);
}

TEST(ClusterDeath, TornConnectionIsDiagnosedAndPeerReclaimed) {
  force::Force f(cluster_config(4));
  const double secs = timed_seconds([&] {
    try {
      f.run([](fc::Ctx& ctx) {
        if (ctx.me() == 2) {
          // Half-close: the peer process stays alive and busy, but its
          // socket is gone. The coordinator must classify this as a torn
          // connection and SIGKILL the wedged peer rather than wait for
          // an exit that will never come.
          md::cluster::sever_connection_for_test();
          for (;;) pause();
        }
        ctx.barrier();
      });
      FAIL() << "expected ProcessDeathError";
    } catch (const md::ProcessDeathError& e) {
      EXPECT_EQ(e.process(), 2);
      EXPECT_EQ(e.term_signal(), SIGKILL);
      EXPECT_NE(e.error_text().find("torn"), std::string::npos)
          << "error text: " << e.error_text();
    }
  });
  EXPECT_LT(secs, 30.0);
}

TEST(ClusterDeath, PeerExceptionCarriesConstructSiteProvenance) {
  force::Force f(cluster_config(2));
  try {
    f.run([](fc::Ctx& ctx) {
      ctx.critical(FORCE_SITE, [&ctx] {
        if (ctx.me() == 1) throw std::runtime_error("boom in critical");
      });
      ctx.barrier();
    });
    FAIL() << "expected ProcessDeathError";
  } catch (const md::ProcessDeathError& e) {
    EXPECT_EQ(e.exit_code(), 1);
    EXPECT_NE(e.error_text().find("boom in critical"), std::string::npos);
    // The victim noted the critical's lock site before dying.
    EXPECT_NE(e.site(), "startup");
  }
}

// --- runtime narrowing rules (static lint R7 cross-check, dynamic side) ------
//
// Each rejection below is the runtime half of a static R7 verdict: the lint
// with --process-model=cluster flags the same constructs at translate time
// (test_preproc_lint.cpp holds the static half).

TEST(ClusterRejects, PcaseWithClusterDiagnostic) {
  force::Force f(cluster_config(2));
  try {
    f.run([](fc::Ctx& ctx) {
      ctx.pcase(FORCE_SITE).sect([] {}).run_presched();
    });
    FAIL() << "expected ProcessDeathError";
  } catch (const md::ProcessDeathError& e) {
    EXPECT_NE(e.error_text().find("Pcase"), std::string::npos);
    EXPECT_NE(e.error_text().find("cluster"), std::string::npos);
  }
}

TEST(ClusterRejects, ResolveWithClusterDiagnostic) {
  force::Force f(cluster_config(2));
  try {
    f.run([](fc::Ctx& ctx) {
      ctx.resolve(FORCE_SITE)
          .component("only", 1, [](fc::Ctx&) {})
          .run();
    });
    FAIL() << "expected ProcessDeathError";
  } catch (const md::ProcessDeathError& e) {
    EXPECT_NE(e.error_text().find("Resolve"), std::string::npos);
    EXPECT_NE(e.error_text().find("cluster"), std::string::npos);
  }
}

TEST(ClusterRejects, NonTriviallyCopyableAskforPayload) {
  force::Force f(cluster_config(2));
  try {
    f.run([](fc::Ctx& ctx) {
      auto& af = ctx.askfor<std::string>(FORCE_SITE);
      (void)af;
    });
    FAIL() << "expected ProcessDeathError";
  } catch (const md::ProcessDeathError& e) {
    EXPECT_NE(e.error_text().find("trivially copyable"), std::string::npos);
  }
}

TEST(ClusterRejects, IsfullWithClusterDiagnostic) {
  force::Force f(cluster_config(2));
  try {
    f.run([](fc::Ctx& ctx) {
      auto& cells = ctx.async_array<std::int64_t>(FORCE_SITE, 1);
      (void)cells[0].is_full();
    });
    FAIL() << "expected ProcessDeathError";
  } catch (const md::ProcessDeathError& e) {
    EXPECT_NE(e.error_text().find("Isfull"), std::string::npos);
    EXPECT_NE(e.error_text().find("cluster"), std::string::npos);
  }
}

TEST(ClusterRejects, SentryAtConfigTime) {
  force::ForceConfig cfg = cluster_config(2);
  cfg.sentry = true;
  EXPECT_THROW(force::Force f(cfg), force::util::CheckError);
}

TEST(ClusterRejects, TraceAtConfigTime) {
  force::ForceConfig cfg = cluster_config(2);
  cfg.trace = true;
  EXPECT_THROW(force::Force f(cfg), force::util::CheckError);
}

TEST(ClusterRejects, TeamPoolAtConfigTime) {
  force::ForceConfig cfg = cluster_config(2);
  cfg.team_pool = true;
  EXPECT_THROW(force::Force f(cfg), force::util::CheckError);
}

TEST(ClusterRejects, UnknownTransportAtConfigTime) {
  force::ForceConfig cfg = cluster_config(2);
  cfg.cluster_transport = "carrier-pigeon";
  EXPECT_THROW(force::Force f(cfg), force::util::CheckError);
}

// --- transports --------------------------------------------------------------

TEST(ClusterTransport, LoopbackTcpRunsTheSameProgram) {
  force::ForceConfig cfg = cluster_config(4);
  cfg.cluster_transport = "tcp";
  force::Force f(cfg);
  auto& total = f.shared<std::int64_t>("total");
  total = 0;
  f.run([&](fc::Ctx& ctx) {
    ctx.critical(FORCE_SITE, [&] { total += ctx.me() * ctx.me(); });
    ctx.barrier();
  });
  EXPECT_EQ(total, 1 + 4 + 9 + 16);
}

// --- DSM coherence edges -----------------------------------------------------

TEST(ClusterDsm, BarrierSectionWritesReachEveryPeer) {
  // The champion's section writes must ride the release slice to all
  // peers, and a later per-peer write must ride its flush back: a
  // round-trip through both DSM directions.
  force::Force f(cluster_config(4));
  auto& seed = f.shared<std::int64_t>("seed");
  auto& echo = f.shared<std::array<std::int64_t, 4>>("echo");
  seed = 0;
  echo = {};
  f.run([&](fc::Ctx& ctx) {
    ctx.barrier([&] { seed = 41; });
    // Every peer observed the section write after release.
    const std::int64_t mine = seed + 1;
    echo[static_cast<std::size_t>(ctx.me() - 1)] = mine * ctx.me();
    ctx.barrier();
  });
  for (int p = 1; p <= 4; ++p) {
    EXPECT_EQ(echo[static_cast<std::size_t>(p - 1)], 42 * p) << "peer " << p;
  }
}

TEST(ClusterDsm, LockHandoffCarriesLatestWrites) {
  // Chained critical sections: each process increments a shared counter it
  // can only see correctly if the lock grant applied the previous holder's
  // flush. Iterated enough that interleavings vary.
  force::Force f(cluster_config(4));
  auto& counter = f.shared<std::int64_t>("counter");
  counter = 0;
  f.run([&](fc::Ctx& ctx) {
    for (int i = 0; i < 25; ++i) {
      ctx.critical(FORCE_SITE, [&] { counter += 1; });
    }
    ctx.barrier();
  });
  EXPECT_EQ(counter, 100);
}
