// Tests for Pcase (paper §3.3, §4.2).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "core/env.hpp"
#include "core/pcase.hpp"

namespace fc = force::core;

namespace {
fc::ForceConfig test_config(int np, const std::string& machine = "native") {
  fc::ForceConfig cfg;
  cfg.nproc = np;
  cfg.machine = machine;
  return cfg;
}

void on_team(int np, const std::function<void(int)>& fn) {
  std::vector<std::jthread> team;
  for (int t = 0; t < np; ++t) team.emplace_back([&fn, t] { fn(t); });
}
}  // namespace

class PcaseModeTest : public ::testing::TestWithParam<bool> {};
// param: true = selfsched, false = presched

TEST_P(PcaseModeTest, EachBlockRunsExactlyOnce) {
  const bool selfsched = GetParam();
  const int np = 4;
  fc::ForceEnvironment env(test_config(np));
  constexpr int kBlocks = 10;
  std::vector<std::atomic<int>> runs(kBlocks);
  for (auto& r : runs) r.store(0);
  on_team(np, [&](int me) {
    fc::PcaseBuilder pcase(env, me, np, "site1");
    for (int b = 0; b < kBlocks; ++b) {
      pcase.sect([&runs, b] { runs[static_cast<std::size_t>(b)]++; });
    }
    if (selfsched) {
      pcase.run_selfsched();
    } else {
      pcase.run_presched();
    }
  });
  for (int b = 0; b < kBlocks; ++b) {
    EXPECT_EQ(runs[static_cast<std::size_t>(b)].load(), 1) << "block " << b;
  }
}

TEST_P(PcaseModeTest, ConditionalBlocksRespectConditions) {
  const bool selfsched = GetParam();
  const int np = 3;
  fc::ForceEnvironment env(test_config(np));
  std::atomic<int> yes{0};
  std::atomic<int> no{0};
  on_team(np, [&](int me) {
    fc::PcaseBuilder pcase(env, me, np, "site2");
    pcase.sect_if(true, [&] { yes.fetch_add(1); })
        .sect_if(false, [&] { no.fetch_add(1); })
        .sect([&] { yes.fetch_add(1); });
    if (selfsched) {
      pcase.run_selfsched();
    } else {
      pcase.run_presched();
    }
  });
  EXPECT_EQ(yes.load(), 2);
  EXPECT_EQ(no.load(), 0);
}

TEST_P(PcaseModeTest, MoreBlocksThanProcesses) {
  const bool selfsched = GetParam();
  const int np = 2;
  fc::ForceEnvironment env(test_config(np));
  std::atomic<int> total{0};
  on_team(np, [&](int me) {
    fc::PcaseBuilder pcase(env, me, np, "site3");
    for (int b = 0; b < 17; ++b) pcase.sect([&] { total.fetch_add(1); });
    if (selfsched) {
      pcase.run_selfsched();
    } else {
      pcase.run_presched();
    }
  });
  EXPECT_EQ(total.load(), 17);
}

TEST_P(PcaseModeTest, EmptyPcaseIsANoop) {
  const bool selfsched = GetParam();
  const int np = 2;
  fc::ForceEnvironment env(test_config(np));
  on_team(np, [&](int me) {
    fc::PcaseBuilder pcase(env, me, np, "site4");
    if (selfsched) {
      pcase.run_selfsched();
    } else {
      pcase.run_presched();
    }
  });
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Modes, PcaseModeTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "selfsched" : "presched";
                         });

TEST(Pcase, PreschedDealIsSequentialByProcess) {
  // "allocates the blocks sequentially to the processes": block i runs on
  // process i mod np.
  const int np = 3;
  fc::ForceEnvironment env(test_config(np));
  constexpr int kBlocks = 9;
  std::array<std::atomic<int>, kBlocks> ran_on;
  for (auto& r : ran_on) r.store(-1);
  on_team(np, [&](int me) {
    fc::PcaseBuilder pcase(env, me, np, "site5");
    for (int b = 0; b < kBlocks; ++b) {
      pcase.sect([&ran_on, b, me] {
        ran_on[static_cast<std::size_t>(b)].store(me);
      });
    }
    pcase.run_presched();
  });
  for (int b = 0; b < kBlocks; ++b) {
    EXPECT_EQ(ran_on[static_cast<std::size_t>(b)].load(), b % np) << b;
  }
}

TEST(Pcase, SelfschedReusableAcrossEpisodes) {
  const int np = 3;
  fc::ForceEnvironment env(test_config(np));
  std::atomic<int> total{0};
  on_team(np, [&](int me) {
    for (int episode = 0; episode < 5; ++episode) {
      fc::PcaseBuilder pcase(env, me, np, "site6");
      for (int b = 0; b < 4; ++b) pcase.sect([&] { total.fetch_add(1); });
      pcase.run_selfsched();
    }
  });
  EXPECT_EQ(total.load(), 5 * 4);
}

TEST(Pcase, SelfschedBalancesUnevenBlocks) {
  // One huge block plus many small ones: with selfscheduling no process
  // executes two huge blocks... here: the process stuck in the big block
  // should not also run most small ones.
  const int np = 2;
  fc::ForceEnvironment env(test_config(np));
  std::atomic<int> big_runner{-1};
  std::atomic<int> small_by_big_runner{0};
  on_team(np, [&](int me) {
    fc::PcaseBuilder pcase(env, me, np, "site7");
    pcase.sect([&, me] {
      big_runner.store(me);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    for (int b = 0; b < 8; ++b) {
      pcase.sect([&, me] {
        if (big_runner.load() == me) small_by_big_runner.fetch_add(1);
      });
    }
    pcase.run_selfsched();
  });
  // The other process should have grabbed most of the small blocks while
  // the big one was running.
  EXPECT_LE(small_by_big_runner.load(), 2);
}

TEST(Pcase, StatsCountExecutedBlocks) {
  const int np = 2;
  fc::ForceEnvironment env(test_config(np));
  on_team(np, [&](int me) {
    fc::PcaseBuilder pcase(env, me, np, "site8");
    pcase.sect([] {}).sect_if(false, [] {}).sect([] {});
    pcase.run_selfsched();
  });
  EXPECT_EQ(env.stats().pcase_blocks.load(std::memory_order_relaxed), 2u);
}

TEST(Pcase, NullBlockThrows) {
  fc::ForceEnvironment env(test_config(1));
  fc::PcaseBuilder pcase(env, 0, 1, "site9");
  EXPECT_THROW(pcase.sect(nullptr), force::util::CheckError);
}

TEST(Pcase, WorksOnEveryMachineModel) {
  for (const auto& machine : force::machdep::machine_names()) {
    const int np = 3;
    fc::ForceEnvironment env(test_config(np, machine));
    std::atomic<int> total{0};
    on_team(np, [&](int me) {
      fc::PcaseBuilder pcase(env, me, np, "m-" + machine);
      for (int b = 0; b < 6; ++b) pcase.sect([&] { total.fetch_add(1); });
      pcase.run_selfsched();
    });
    EXPECT_EQ(total.load(), 6) << machine;
  }
}
