// Tests for Resolve (paper §3.3; "yet unimplemented" there, an implemented
// extension here): partition arithmetic, component assignment, and the
// full construct through the driver.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <thread>
#include <set>

#include "core/force.hpp"

namespace fc = force::core;

// --- partition arithmetic -------------------------------------------------------

TEST(ResolvePartition, ProportionalSplit) {
  const auto sizes = fc::resolve_partition(8, {1, 3});
  EXPECT_EQ(sizes, (std::vector<int>{2, 6}));
}

TEST(ResolvePartition, EqualWeights) {
  EXPECT_EQ(fc::resolve_partition(9, {1, 1, 1}),
            (std::vector<int>{3, 3, 3}));
}

TEST(ResolvePartition, EveryComponentGetsAtLeastOne) {
  const auto sizes = fc::resolve_partition(3, {1, 1000, 1000});
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), 3);
  for (int s : sizes) EXPECT_GE(s, 1);
}

TEST(ResolvePartition, SumsToNpForManyShapes) {
  for (int np = 3; np <= 17; ++np) {
    for (const auto& weights :
         {std::vector<int>{1, 1, 1}, std::vector<int>{5, 2, 3},
          std::vector<int>{1, 10, 1}}) {
      const auto sizes = fc::resolve_partition(np, weights);
      EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), np);
      for (int s : sizes) EXPECT_GE(s, 1);
    }
  }
}

TEST(ResolvePartition, Deterministic) {
  EXPECT_EQ(fc::resolve_partition(10, {2, 3, 5}),
            fc::resolve_partition(10, {2, 3, 5}));
}

TEST(ResolvePartition, BadInputsThrow) {
  EXPECT_THROW(fc::resolve_partition(1, {1, 1}), force::util::CheckError);
  EXPECT_THROW(fc::resolve_partition(4, {}), force::util::CheckError);
  EXPECT_THROW(fc::resolve_partition(4, {1, 0}), force::util::CheckError);
}

TEST(ResolveAssignment, ConsecutiveRanges) {
  const std::vector<int> sizes{2, 3, 1};
  std::vector<int> components;
  std::vector<int> ranks;
  for (int p = 0; p < 6; ++p) {
    const auto a = fc::assign_component(p, sizes);
    components.push_back(a.component);
    ranks.push_back(a.rank);
    EXPECT_EQ(a.width, sizes[static_cast<std::size_t>(a.component)]);
  }
  EXPECT_EQ(components, (std::vector<int>{0, 0, 1, 1, 1, 2}));
  EXPECT_EQ(ranks, (std::vector<int>{0, 1, 0, 1, 2, 0}));
  EXPECT_THROW(fc::assign_component(6, sizes), force::util::CheckError);
}

// --- the full construct ----------------------------------------------------------

TEST(Resolve, ComponentsSeeRemappedMeAndNp) {
  force::Force f({.nproc = 6});
  std::mutex m;
  std::set<std::pair<std::string, int>> seen;  // (component, sub-me0)
  f.run([&](fc::Ctx& ctx) {
    ctx.resolve(FORCE_SITE)
        .component("a", 1,
                   [&](fc::Ctx& sub) {
                     std::lock_guard<std::mutex> g(m);
                     seen.insert({"a", sub.me0()});
                     EXPECT_EQ(sub.np(), 2);
                   })
        .component("b", 2,
                   [&](fc::Ctx& sub) {
                     std::lock_guard<std::mutex> g(m);
                     seen.insert({"b", sub.me0()});
                     EXPECT_EQ(sub.np(), 4);
                   })
        .run();
  });
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_TRUE(seen.contains({"a", 0}));
  EXPECT_TRUE(seen.contains({"a", 1}));
  EXPECT_TRUE(seen.contains({"b", 3}));
}

TEST(Resolve, ComponentBarriersAreComponentLocal) {
  // A barrier inside component "a" must not wait for component "b": give
  // "b" much more work; "a" uses barriers meanwhile and must finish first.
  force::Force f({.nproc = 4});
  std::atomic<bool> a_done{false};
  std::atomic<bool> b_done{false};
  std::atomic<bool> a_finished_first{false};
  f.run([&](fc::Ctx& ctx) {
    ctx.resolve(FORCE_SITE)
        .component("a", 1,
                   [&](fc::Ctx& sub) {
                     for (int i = 0; i < 10; ++i) sub.barrier();
                     a_finished_first.store(!b_done.load());
                     a_done = true;
                   })
        .component("b", 1,
                   [&](fc::Ctx& sub) {
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(100));
                     sub.barrier();
                     b_done = true;
                   })
        .run();
  });
  EXPECT_TRUE(a_done.load());
  EXPECT_TRUE(b_done.load());
  EXPECT_TRUE(a_finished_first.load());
}

TEST(Resolve, NestedConstructsInsideComponents) {
  // A selfsched loop inside each component: the site namespace must keep
  // the two components' loop state disjoint even though the source line
  // is the same.
  force::Force f({.nproc = 6});
  auto& sum_a = f.shared<std::int64_t>("sum_a");
  auto& sum_b = f.shared<std::int64_t>("sum_b");
  f.run([&](fc::Ctx& ctx) {
    auto work = [&](fc::Ctx& sub, std::int64_t& acc) {
      std::int64_t local = 0;
      sub.selfsched_do(FORCE_SITE, 1, 100, 1,
                       [&](std::int64_t i) { local += i; });
      sub.critical(FORCE_SITE, [&] { acc += local; });
    };
    ctx.resolve(FORCE_SITE)
        .component("a", 1, [&](fc::Ctx& sub) { work(sub, sum_a); })
        .component("b", 1, [&](fc::Ctx& sub) { work(sub, sum_b); })
        .run();
  });
  EXPECT_EQ(sum_a, 5050);
  EXPECT_EQ(sum_b, 5050);
}

TEST(Resolve, JoinsBeforeContinuing) {
  force::Force f({.nproc = 4});
  std::atomic<int> in_components{0};
  std::atomic<bool> violated{false};
  f.run([&](fc::Ctx& ctx) {
    ctx.resolve(FORCE_SITE)
        .component("fast", 1, [&](fc::Ctx&) { in_components.fetch_add(1); })
        .component("slow", 1,
                   [&](fc::Ctx&) {
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(30));
                     in_components.fetch_add(1);
                   })
        .run();
    // After run() every component body has completed on every process.
    if (in_components.load() != ctx.np()) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(Resolve, ReusableAcrossEpisodes) {
  force::Force f({.nproc = 4});
  std::atomic<int> runs{0};
  f.run([&](fc::Ctx& ctx) {
    for (int e = 0; e < 5; ++e) {
      ctx.resolve(FORCE_SITE)
          .component("x", 1, [&](fc::Ctx&) { runs.fetch_add(1); })
          .component("y", 1, [&](fc::Ctx&) { runs.fetch_add(1); })
          .run();
    }
  });
  EXPECT_EQ(runs.load(), 5 * 4);
}

TEST(Resolve, DivergentComponentsAreDetectedOrImpossible) {
  // All processes build the same component list (SPMD); a width mismatch
  // against the site state is detected.
  force::Force f({.nproc = 2});
  std::atomic<int> errors{0};
  f.run([&](fc::Ctx& ctx) {
    try {
      auto r = ctx.resolve(FORCE_SITE);
      if (ctx.me0() == 0) {
        r.component("a", 1, [](fc::Ctx&) {}).component("b", 1, [](fc::Ctx&) {});
      } else {
        r.component("a", 3, [](fc::Ctx&) {}).component("b", 1, [](fc::Ctx&) {});
      }
      r.run();
    } catch (const force::util::CheckError&) {
      errors.fetch_add(1);
    }
  });
  // With np=2 both partitions are {1,1}, so this particular divergence is
  // harmless; the construct must either run or flag it - never hang.
  SUCCEED();
}

TEST(Resolve, EmptyResolveThrows) {
  force::Force f({.nproc = 2});
  std::atomic<int> errors{0};
  f.run([&](fc::Ctx& ctx) {
    try {
      ctx.resolve(FORCE_SITE).run();
    } catch (const force::util::CheckError&) {
      errors.fetch_add(1);
    }
  });
  EXPECT_EQ(errors.load(), 2);
}
