// Wire-protocol and DSM codec tests for the cluster process model
// (machdep/net.hpp, machdep/cluster.hpp dsm namespace).
//
// Everything here is pure - no sockets, no processes - so it runs under
// every sanitizer. The frame codec must reject truncated, oversized and
// version-mismatched input deterministically (never UB); the Reader must
// survive arbitrary bytes (it is the first thing hostile or corrupt input
// meets); and the diff/apply DSM half must keep a simulated coordinator and
// any number of peers bit-identical at release points under seeded-random
// message sequences - the portability claim for the software distributed
// arena, executed in miniature.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "machdep/cluster.hpp"
#include "machdep/net.hpp"

namespace net = force::machdep::net;
namespace dsm = force::machdep::cluster::dsm;

// --- frame header codec ------------------------------------------------------

TEST(ClusterProto, FrameHeaderRoundTrip) {
  net::FrameHeader in;
  in.type = static_cast<std::uint16_t>(net::MsgType::kBarrierArrive);
  in.payload_bytes = 12345;
  unsigned char buf[net::kFrameHeaderBytes];
  net::encode_frame_header(in, buf);

  net::FrameHeader out;
  ASSERT_EQ(net::decode_frame_header(buf, sizeof buf, &out),
            net::DecodeStatus::kOk);
  EXPECT_EQ(out.version, net::kProtocolVersion);
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.payload_bytes, in.payload_bytes);
}

TEST(ClusterProto, TruncatedHeaderNeedsMore) {
  net::FrameHeader in;
  unsigned char buf[net::kFrameHeaderBytes];
  net::encode_frame_header(in, buf);
  net::FrameHeader out;
  for (std::size_t len = 0; len < net::kFrameHeaderBytes; ++len) {
    EXPECT_EQ(net::decode_frame_header(buf, len, &out),
              net::DecodeStatus::kNeedMore)
        << "len " << len;
  }
}

TEST(ClusterProto, BadMagicRejected) {
  net::FrameHeader in;
  unsigned char buf[net::kFrameHeaderBytes];
  net::encode_frame_header(in, buf);
  buf[0] ^= 0xFF;
  net::FrameHeader out;
  EXPECT_EQ(net::decode_frame_header(buf, sizeof buf, &out),
            net::DecodeStatus::kBadMagic);
}

TEST(ClusterProto, VersionMismatchRejected) {
  net::FrameHeader in;
  unsigned char buf[net::kFrameHeaderBytes];
  net::encode_frame_header(in, buf);
  // The version field sits at bytes [4, 6); a peer speaking revision N+1
  // must be turned away, not misparsed.
  buf[4] ^= 0x01;
  net::FrameHeader out;
  EXPECT_EQ(net::decode_frame_header(buf, sizeof buf, &out),
            net::DecodeStatus::kBadVersion);
}

TEST(ClusterProto, OversizedPayloadRejected) {
  net::FrameHeader in;
  in.payload_bytes = net::kMaxPayloadBytes + 1;
  unsigned char buf[net::kFrameHeaderBytes];
  net::encode_frame_header(in, buf);
  net::FrameHeader out;
  EXPECT_EQ(net::decode_frame_header(buf, sizeof buf, &out),
            net::DecodeStatus::kOversized);
  // The boundary itself is legal.
  in.payload_bytes = net::kMaxPayloadBytes;
  net::encode_frame_header(in, buf);
  EXPECT_EQ(net::decode_frame_header(buf, sizeof buf, &out),
            net::DecodeStatus::kOk);
}

// --- payload writer/reader ---------------------------------------------------

TEST(ClusterProto, WriterReaderRoundTrip) {
  net::Writer w;
  w.u8(7);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.str("barrier 'saxpy'");
  const unsigned char blob[] = {1, 2, 3, 4, 5};
  w.bytes(blob, sizeof blob);

  net::Reader r(w.data());
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t c = 0;
  std::uint64_t d = 0;
  std::int64_t e = 0;
  std::string s;
  std::vector<unsigned char> v;
  ASSERT_TRUE(r.u8(&a));
  ASSERT_TRUE(r.u16(&b));
  ASSERT_TRUE(r.u32(&c));
  ASSERT_TRUE(r.u64(&d));
  ASSERT_TRUE(r.i64(&e));
  ASSERT_TRUE(r.str(&s));
  ASSERT_TRUE(r.bytes(&v));
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, 0xBEEF);
  EXPECT_EQ(c, 0xDEADBEEFu);
  EXPECT_EQ(d, 0x0123456789ABCDEFull);
  EXPECT_EQ(e, -42);
  EXPECT_EQ(s, "barrier 'saxpy'");
  EXPECT_EQ(v, std::vector<unsigned char>(blob, blob + sizeof blob));
  EXPECT_TRUE(r.exhausted());
}

TEST(ClusterProto, ReaderTruncationLatchesInsteadOfOverreading) {
  net::Writer w;
  w.u64(1);
  w.str("key");
  const std::vector<unsigned char>& full = w.data();
  // Every possible truncation point: the reader must fail cleanly, stay
  // failed, and never read past the end.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    net::Reader r(full.data(), cut);
    std::uint64_t x = 0;
    std::string s;
    const bool got_both = r.u64(&x) && r.str(&s);
    EXPECT_FALSE(got_both) << "cut " << cut;
    EXPECT_FALSE(r.ok()) << "cut " << cut;
    // Latched: subsequent reads keep failing even if bytes remain.
    std::uint8_t y = 0;
    EXPECT_FALSE(r.u8(&y)) << "cut " << cut;
  }
}

TEST(ClusterProto, ReaderSurvivesArbitraryBytes) {
  // Seeded-random fuzz: arbitrary byte soup through every getter in a
  // rotating pattern. The assertions are "no UB / no crash" (the sanitizer
  // jobs give this test its teeth) plus the ok()-latch invariant.
  std::mt19937 rng(0xF0C5u);
  for (int round = 0; round < 2000; ++round) {
    std::vector<unsigned char> soup(rng() % 64);
    for (auto& b : soup) b = static_cast<unsigned char>(rng());
    net::Reader r(soup);
    bool prev_ok = true;
    for (int op = 0; op < 16; ++op) {
      bool got = false;
      switch (op % 6) {
        case 0: { std::uint8_t v; got = r.u8(&v); break; }
        case 1: { std::uint16_t v; got = r.u16(&v); break; }
        case 2: { std::uint32_t v; got = r.u32(&v); break; }
        case 3: { std::uint64_t v; got = r.u64(&v); break; }
        case 4: { std::string v; got = r.str(&v); break; }
        default: { std::vector<unsigned char> v; got = r.bytes(&v); break; }
      }
      // The ok() latch never recovers: once a read fails, all fail.
      if (!prev_ok) EXPECT_FALSE(got);
      prev_ok = prev_ok && got;
      EXPECT_EQ(r.ok(), prev_ok);
    }
  }
}

// --- DSM records codec -------------------------------------------------------

TEST(ClusterProto, RecordsRoundTrip) {
  std::vector<dsm::Record> in;
  in.push_back({0, {1, 2, 3}});
  in.push_back({4096, {0xFF}});
  in.push_back({77, {}});

  net::Writer w;
  dsm::encode_records(&w, in);
  net::Reader r(w.data());
  std::vector<dsm::Record> out;
  ASSERT_TRUE(dsm::decode_records(&r, &out));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].offset, in[i].offset);
    EXPECT_EQ(out[i].bytes, in[i].bytes);
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(ClusterProto, TruncatedRecordsRejected) {
  std::vector<dsm::Record> in;
  in.push_back({10, {9, 8, 7, 6}});
  net::Writer w;
  dsm::encode_records(&w, in);
  const std::vector<unsigned char>& full = w.data();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    net::Reader r(full.data(), cut);
    std::vector<dsm::Record> out;
    EXPECT_FALSE(dsm::decode_records(&r, &out)) << "cut " << cut;
  }
}

// --- diff/apply --------------------------------------------------------------

TEST(ClusterDsm, DiffFindsCoalescedRunsAndSyncsShadow) {
  std::vector<unsigned char> image(256, 0);
  std::vector<unsigned char> shadow;  // zero-extended by diff
  image[10] = 1;
  image[11] = 2;
  image[12] = 3;
  image[100] = 9;

  const auto recs = dsm::diff(image.data(), image.size(), &shadow);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].offset, 10u);
  EXPECT_EQ(recs[0].bytes, (std::vector<unsigned char>{1, 2, 3}));
  EXPECT_EQ(recs[1].offset, 100u);
  EXPECT_EQ(recs[1].bytes, (std::vector<unsigned char>{9}));

  // The shadow now matches: a second diff is empty.
  EXPECT_TRUE(dsm::diff(image.data(), image.size(), &shadow).empty());
}

TEST(ClusterDsm, ApplyReconstructsTheImage) {
  std::vector<unsigned char> image(512, 0);
  std::vector<unsigned char> shadow;
  std::mt19937 rng(0xA12Eu);
  for (int i = 0; i < 100; ++i) {
    image[rng() % image.size()] = static_cast<unsigned char>(rng());
  }
  const auto recs = dsm::diff(image.data(), image.size(), &shadow);

  std::vector<unsigned char> master;
  dsm::apply(&master, recs, image.size());
  master.resize(image.size(), 0);
  EXPECT_EQ(master, image);
}

TEST(ClusterDsm, SeededMessageSequenceFuzzIsDeterministicAtReleasePoints) {
  // A miniature cluster run, all in-process: kPeers images diverge through
  // random private writes (each peer owns a disjoint stripe, the Force's
  // data-race-free discipline), flush at random moments into a global
  // update log (the coordinator), and sync the log suffix at "barriers".
  // After every barrier all images and the master must be bit-identical -
  // the deterministic-release-point contract the real transport relies on.
  constexpr int kPeers = 4;
  constexpr std::size_t kBytes = 1024;
  constexpr int kBarriers = 20;

  std::mt19937 rng(0x5EEDu);
  std::vector<unsigned char> master(kBytes, 0);
  std::vector<dsm::Record> log;
  std::vector<std::size_t> synced(kPeers, 0);  // log index each peer has seen
  std::vector<std::vector<unsigned char>> image(
      kPeers, std::vector<unsigned char>(kBytes, 0));
  std::vector<std::vector<unsigned char>> shadow(kPeers);

  const auto flush = [&](int p) {
    // Peer p ships its dirty runs... (wire round-trip included: encode,
    // decode, then append to the coordinator's log + master image)
    const auto recs = dsm::diff(image[static_cast<std::size_t>(p)].data(),
                                kBytes,
                                &shadow[static_cast<std::size_t>(p)]);
    if (recs.empty()) return;
    net::Writer w;
    dsm::encode_records(&w, recs);
    net::Reader r(w.data());
    std::vector<dsm::Record> decoded;
    ASSERT_TRUE(dsm::decode_records(&r, &decoded));
    dsm::apply(&master, decoded, kBytes);
    master.resize(kBytes, 0);
    for (auto& rec : decoded) log.push_back(std::move(rec));
  };
  const auto sync = [&](int p) {
    // ...and applies the log suffix it has not seen to image AND shadow.
    const auto sp = static_cast<std::size_t>(p);
    for (std::size_t i = synced[sp]; i < log.size(); ++i) {
      dsm::apply(&image[sp], {log[i]}, kBytes);
      dsm::apply(&shadow[sp], {log[i]}, kBytes);
    }
    image[sp].resize(kBytes, 0);
    synced[sp] = log.size();
  };

  for (int b = 0; b < kBarriers; ++b) {
    // Random phase: interleaved private writes and voluntary flushes.
    for (int step = 0; step < 200; ++step) {
      const int p = static_cast<int>(rng() % kPeers);
      if (rng() % 8 == 0) {
        flush(p);
      } else {
        // Disjoint stripes: peer p owns bytes where (offset / 16) % kPeers
        // == p this phase. Race-free by construction, like Force programs.
        const std::size_t stripe =
            (rng() % (kBytes / 16 / kPeers)) * kPeers + static_cast<std::size_t>(p);
        const std::size_t off = stripe * 16 + rng() % 16;
        image[static_cast<std::size_t>(p)][off] =
            static_cast<unsigned char>(rng());
      }
    }
    // Barrier: everyone flushes, then everyone syncs the full log.
    for (int p = 0; p < kPeers; ++p) flush(p);
    for (int p = 0; p < kPeers; ++p) sync(p);
    for (int p = 0; p < kPeers; ++p) {
      ASSERT_EQ(image[static_cast<std::size_t>(p)], master)
          << "peer " << p << " diverged after barrier " << b;
    }
    // The shadows converged too: an idle peer flushes nothing.
    for (int p = 0; p < kPeers; ++p) {
      EXPECT_TRUE(dsm::diff(image[static_cast<std::size_t>(p)].data(), kBytes,
                            &shadow[static_cast<std::size_t>(p)])
                      .empty())
          << "peer " << p << " shadow drifted after barrier " << b;
    }
  }
}
