# Runs the paper's three-step pipeline for every machine model: forcepp
# translates the Force source, then the host C++ compiler syntax-checks the
# generated translation unit (full compile+link is exercised by the
# saxpy_force example target).
foreach(machine hep flex32 encore sequent alliant cray2 native)
  set(out "${WORK_DIR}/pipeline_${machine}.cpp")
  execute_process(
    COMMAND ${FORCEPP} ${SOURCE} --machine ${machine} --o=${out}
    RESULT_VARIABLE rc OUTPUT_VARIABLE o ERROR_VARIABLE e)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "forcepp failed for ${machine}: ${e}")
  endif()
  execute_process(
    COMMAND c++ -std=c++20 -fsyntax-only -I${INCLUDE_DIR} ${out}
    RESULT_VARIABLE rc OUTPUT_VARIABLE o ERROR_VARIABLE e)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "generated code does not compile for ${machine}: ${e}")
  endif()
  message(STATUS "pipeline OK for ${machine}")
endforeach()
