# Two modes, selected by which -D variables the add_test() call passes:
#
#  - LINT_FIXTURE_DIR set: forcelint integration. Every shipped example
#    must translate clean under --lint --Werror; every seeded fixture
#    r<N>_*.force must fail with its rule id (force-lint-R<N>) on stderr.
#
#  - otherwise: the paper's three-step pipeline for every machine model -
#    forcepp translates the Force source, then the host C++ compiler
#    syntax-checks the generated translation unit (full compile+link is
#    exercised by the saxpy_force example target).
if(LINT_FIXTURE_DIR)
  file(GLOB clean_sources "${EXAMPLES_DIR}/*.force")
  list(APPEND clean_sources
    "${EXAMPLES_DIR}/multifile/main.force"
    "${LINT_FIXTURE_DIR}/clean.force")
  list(SORT clean_sources)
  foreach(src ${clean_sources})
    execute_process(
      COMMAND ${FORCEPP} ${src} --lint --Werror --o=${WORK_DIR}/lint_out.cpp
      RESULT_VARIABLE rc OUTPUT_VARIABLE o ERROR_VARIABLE e)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "forcepp --lint --Werror flagged ${src}:\n${e}")
    endif()
    message(STATUS "lint clean: ${src}")
  endforeach()
  # The separately compiled module unit needs --module.
  execute_process(
    COMMAND ${FORCEPP} ${EXAMPLES_DIR}/multifile/stats_module.force
      --module --lint --Werror --o=${WORK_DIR}/lint_module.cpp
    RESULT_VARIABLE rc OUTPUT_VARIABLE o ERROR_VARIABLE e)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "forcepp --module --lint --Werror flagged "
                        "stats_module.force:\n${e}")
  endif()
  message(STATUS "lint clean: ${EXAMPLES_DIR}/multifile/stats_module.force")
  # Each seeded fixture must fail, naming its rule. R7 fixtures are
  # portability findings: they only fire against the process model that
  # rejects the construct, so those runs add --process-model=os-fork
  # (or =cluster for the *_cluster fixtures - Isfull is cluster-only).
  foreach(rule 1 2 3 4 5 6 7)
    file(GLOB fixtures "${LINT_FIXTURE_DIR}/r${rule}_*.force")
    list(SORT fixtures)
    list(LENGTH fixtures n)
    if(n EQUAL 0)
      message(FATAL_ERROR "expected at least one r${rule}_*.force fixture")
    endif()
    foreach(fixture ${fixtures})
      set(extra_flags "")
      if(rule EQUAL 7)
        if(fixture MATCHES "_cluster\\.force$")
          set(extra_flags "--process-model=cluster")
        else()
          set(extra_flags "--process-model=os-fork")
        endif()
      endif()
      execute_process(
        COMMAND ${FORCEPP} ${fixture} --lint --Werror ${extra_flags}
          --o=${WORK_DIR}/lint_seeded.cpp
        RESULT_VARIABLE rc OUTPUT_VARIABLE o ERROR_VARIABLE e)
      if(rc EQUAL 0)
        message(FATAL_ERROR "seeded fixture ${fixture} was not flagged")
      endif()
      if(NOT e MATCHES "force-lint-R${rule}")
        message(FATAL_ERROR
          "${fixture} failed without mentioning force-lint-R${rule}:\n${e}")
      endif()
      message(STATUS "lint fixture OK: ${fixture} -> force-lint-R${rule}")
    endforeach()
  endforeach()

  # Whole-program mode over the multifile example: Forcecall sites resolve
  # across units, the program stays clean, and the machine-readable report
  # lists it os-fork compatible (the seed acceptance case).
  execute_process(
    COMMAND ${FORCEPP} ${EXAMPLES_DIR}/multifile/main.force
      --lint --Werror
      --lint-units=${EXAMPLES_DIR}/multifile/stats_module.force
      --lint-report=${WORK_DIR}/lint_report.json
      --o=${WORK_DIR}/lint_program.cpp
    RESULT_VARIABLE rc OUTPUT_VARIABLE o ERROR_VARIABLE e)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "whole-program lint flagged examples/multifile:\n${e}")
  endif()
  file(READ "${WORK_DIR}/lint_report.json" report)
  if(NOT report MATCHES "\"schema_version\": 1")
    message(FATAL_ERROR "lint report missing schema_version:\n${report}")
  endif()
  if(NOT report MATCHES "\"model\": \"os-fork\", \"compatible\": true")
    message(FATAL_ERROR
      "multifile example should be os-fork compatible:\n${report}")
  endif()
  message(STATUS "whole-program lint OK: examples/multifile (report valid)")

  # The cross-file seeded fixture: the lock-order cycle exists only when
  # both units are linted together, and the report must call it out.
  execute_process(
    COMMAND ${FORCEPP} ${LINT_FIXTURE_DIR}/multifile/r4x_main.force
      --lint --Werror
      --lint-units=${LINT_FIXTURE_DIR}/multifile/r4x_stats.force
      --lint-report=${WORK_DIR}/lint_report_r4x.json
      --o=${WORK_DIR}/lint_program_r4x.cpp
    RESULT_VARIABLE rc OUTPUT_VARIABLE o ERROR_VARIABLE e)
  if(rc EQUAL 0)
    message(FATAL_ERROR "cross-file R4 fixture was not flagged")
  endif()
  if(NOT e MATCHES "force-lint-R4")
    message(FATAL_ERROR
      "cross-file fixture failed without force-lint-R4:\n${e}")
  endif()
  # Each unit alone must be clean - the finding requires the whole program.
  execute_process(
    COMMAND ${FORCEPP} ${LINT_FIXTURE_DIR}/multifile/r4x_main.force
      --lint --Werror --o=${WORK_DIR}/lint_single_r4x.cpp
    RESULT_VARIABLE rc OUTPUT_VARIABLE o ERROR_VARIABLE e)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "r4x_main.force alone should lint clean (cycle needs both units):\n${e}")
  endif()
  message(STATUS "whole-program lint OK: cross-file R4 fixture")
  return()
endif()

foreach(machine hep flex32 encore sequent alliant cray2 native)
  set(out "${WORK_DIR}/pipeline_${machine}.cpp")
  execute_process(
    COMMAND ${FORCEPP} ${SOURCE} --machine ${machine} --o=${out}
    RESULT_VARIABLE rc OUTPUT_VARIABLE o ERROR_VARIABLE e)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "forcepp failed for ${machine}: ${e}")
  endif()
  execute_process(
    COMMAND c++ -std=c++20 -fsyntax-only -I${INCLUDE_DIR} ${out}
    RESULT_VARIABLE rc OUTPUT_VARIABLE o ERROR_VARIABLE e)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "generated code does not compile for ${machine}: ${e}")
  endif()
  message(STATUS "pipeline OK for ${machine}")
endforeach()
