# Two modes, selected by which -D variables the add_test() call passes:
#
#  - LINT_FIXTURE_DIR set: forcelint integration. Every shipped example
#    must translate clean under --lint --Werror; every seeded fixture
#    r<N>_*.force must fail with its rule id (force-lint-R<N>) on stderr.
#
#  - otherwise: the paper's three-step pipeline for every machine model -
#    forcepp translates the Force source, then the host C++ compiler
#    syntax-checks the generated translation unit (full compile+link is
#    exercised by the saxpy_force example target).
if(LINT_FIXTURE_DIR)
  file(GLOB clean_sources "${EXAMPLES_DIR}/*.force")
  list(APPEND clean_sources
    "${EXAMPLES_DIR}/multifile/main.force"
    "${LINT_FIXTURE_DIR}/clean.force")
  list(SORT clean_sources)
  foreach(src ${clean_sources})
    execute_process(
      COMMAND ${FORCEPP} ${src} --lint --Werror --o=${WORK_DIR}/lint_out.cpp
      RESULT_VARIABLE rc OUTPUT_VARIABLE o ERROR_VARIABLE e)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "forcepp --lint --Werror flagged ${src}:\n${e}")
    endif()
    message(STATUS "lint clean: ${src}")
  endforeach()
  # The separately compiled module unit needs --module.
  execute_process(
    COMMAND ${FORCEPP} ${EXAMPLES_DIR}/multifile/stats_module.force
      --module --lint --Werror --o=${WORK_DIR}/lint_module.cpp
    RESULT_VARIABLE rc OUTPUT_VARIABLE o ERROR_VARIABLE e)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "forcepp --module --lint --Werror flagged "
                        "stats_module.force:\n${e}")
  endif()
  message(STATUS "lint clean: ${EXAMPLES_DIR}/multifile/stats_module.force")
  # Each seeded fixture must fail, naming its rule.
  foreach(rule 1 2 3 4 5 6)
    file(GLOB fixtures "${LINT_FIXTURE_DIR}/r${rule}_*.force")
    list(LENGTH fixtures n)
    if(NOT n EQUAL 1)
      message(FATAL_ERROR "expected one r${rule}_*.force fixture, got ${n}")
    endif()
    list(GET fixtures 0 fixture)
    execute_process(
      COMMAND ${FORCEPP} ${fixture} --lint --Werror
        --o=${WORK_DIR}/lint_seeded.cpp
      RESULT_VARIABLE rc OUTPUT_VARIABLE o ERROR_VARIABLE e)
    if(rc EQUAL 0)
      message(FATAL_ERROR "seeded fixture ${fixture} was not flagged")
    endif()
    if(NOT e MATCHES "force-lint-R${rule}")
      message(FATAL_ERROR
        "${fixture} failed without mentioning force-lint-R${rule}:\n${e}")
    endif()
    message(STATUS "lint fixture OK: ${fixture} -> force-lint-R${rule}")
  endforeach()
  return()
endif()

foreach(machine hep flex32 encore sequent alliant cray2 native)
  set(out "${WORK_DIR}/pipeline_${machine}.cpp")
  execute_process(
    COMMAND ${FORCEPP} ${SOURCE} --machine ${machine} --o=${out}
    RESULT_VARIABLE rc OUTPUT_VARIABLE o ERROR_VARIABLE e)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "forcepp failed for ${machine}: ${e}")
  endif()
  execute_process(
    COMMAND c++ -std=c++20 -fsyntax-only -I${INCLUDE_DIR} ${out}
    RESULT_VARIABLE rc OUTPUT_VARIABLE o ERROR_VARIABLE e)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "generated code does not compile for ${machine}: ${e}")
  endif()
  message(STATUS "pipeline OK for ${machine}")
endforeach()
