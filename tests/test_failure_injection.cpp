// Failure injection: misuse and fault paths must produce diagnostics, not
// hangs or corruption.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "core/force.hpp"
#include "machdep/arena.hpp"
#include "machdep/process.hpp"

namespace fc = force::core;
namespace md = force::machdep;

TEST(FailureInjection, ThrowingLoopBodySurfacesAndOthersFinish) {
  force::Force f({.nproc = 4});
  std::atomic<std::int64_t> executed{0};
  try {
    f.run([&](fc::Ctx& ctx) {
      ctx.selfsched_do(FORCE_SITE, 1, 100, 1, [&](std::int64_t i) {
        if (i == 37) throw std::runtime_error("iteration 37 exploded");
        executed.fetch_add(1);
      });
      // NOTE: no barrier here - the thrower never arrives at one, so a
      // barrier after a potentially-throwing construct would deadlock the
      // compliant processes. That is inherent to barriers (the real Force
      // had no exceptions at all); the loop itself stays consistent.
    });
    FAIL() << "expected the exception to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "iteration 37 exploded");
  }
  // 99 good iterations ran; the thrower's process died at the barrier...
  // no: the thrower unwinds out of run; the other processes complete the
  // loop and wait at the barrier - which must NOT deadlock because the
  // whole force is joined only after every process unwound. The runtime
  // guarantees the loop itself stayed consistent:
  EXPECT_EQ(executed.load(), 99);
}

TEST(FailureInjection, ThrowingBarrierSectionPropagates) {
  // A throwing barrier section is a real hazard: the section runs in one
  // process. The paper-lock barrier holds its mutex during the section;
  // we require the exception to surface rather than hang the thrower.
  force::Force f({.nproc = 1});
  EXPECT_THROW(f.run([&](fc::Ctx& ctx) {
    ctx.barrier([&] { throw std::logic_error("section failed"); });
  }),
               std::logic_error);
}

TEST(FailureInjection, ArenaExhaustionIsDiagnosed) {
  fc::ForceConfig cfg;
  cfg.nproc = 1;
  cfg.arena_bytes = 4096;
  force::Force f(cfg);
  using HugeArray = std::array<std::byte, 1 << 20>;
  EXPECT_THROW(f.shared<HugeArray>("huge"), force::util::CheckError);
}

TEST(FailureInjection, GuardPageCorruptionIsDetectable) {
  fc::ForceConfig cfg;
  cfg.nproc = 1;
  cfg.machine = "encore";  // runtime-padded: has guard pages
  force::Force f(cfg);
  EXPECT_TRUE(f.env().arena().guards_intact());
  f.env().arena().corrupt_guard_for_test();
  EXPECT_FALSE(f.env().arena().guards_intact());
}

TEST(FailureInjection, AsyncArraySizeDivergenceDetected) {
  force::Force f({.nproc = 2});
  std::atomic<int> errors{0};
  f.run([&](fc::Ctx& ctx) {
    try {
      // SPMD violation: different sizes at the same site.
      (void)ctx.async_array<int>(FORCE_SITE_TAGGED("arr"),
                                 ctx.me() == 1 ? 4 : 8);
    } catch (const force::util::CheckError&) {
      errors.fetch_add(1);
    }
    ctx.barrier();
  });
  EXPECT_GE(errors.load(), 1);
}

TEST(FailureInjection, ConsumeTimeoutDiagnosableViaTryConsume) {
  // A consume-from-never-produced would block forever (as on the real
  // machines); programs that need to probe use try_consume / is_full.
  force::Force f({.nproc = 1});
  f.run([&](fc::Ctx& ctx) {
    auto& v = ctx.async_var<int>(FORCE_SITE);
    int out = 0;
    EXPECT_FALSE(v.try_consume(&out));
    EXPECT_FALSE(v.is_full());
  });
}

TEST(FailureInjection, SelfschedZeroIncrementThrowsForEveryone) {
  force::Force f({.nproc = 2});
  std::atomic<int> errors{0};
  f.run([&](fc::Ctx& ctx) {
    try {
      ctx.presched_do(1, 10, 0, [](std::int64_t) {});
    } catch (const force::util::CheckError&) {
      errors.fetch_add(1);
    }
  });
  EXPECT_EQ(errors.load(), 2);
}

TEST(FailureInjection, ResolveWithTooFewProcessesThrows) {
  force::Force f({.nproc = 2});
  std::atomic<int> errors{0};
  f.run([&](fc::Ctx& ctx) {
    try {
      ctx.resolve(FORCE_SITE)
          .component("a", 1, [](fc::Ctx&) {})
          .component("b", 1, [](fc::Ctx&) {})
          .component("c", 1, [](fc::Ctx&) {})
          .run();
    } catch (const force::util::CheckError&) {
      errors.fetch_add(1);
    }
  });
  EXPECT_EQ(errors.load(), 2);
}

TEST(FailureInjection, LockBudgetExhaustionDegradesGracefully) {
  // Thousands of async variables on the scarce-lock machine: allocation
  // must keep working (striped), and semantics must hold.
  fc::ForceConfig cfg;
  cfg.nproc = 2;
  cfg.machine = "cray2";
  force::Force f(cfg);
  f.run([&](fc::Ctx& ctx) {
    auto& arr = ctx.async_array<int>(FORCE_SITE, 200);  // 600 logical locks
    ctx.presched_do(0, 199, 1, [&](std::int64_t i) {
      arr[static_cast<std::size_t>(i)].produce(static_cast<int>(i));
    });
    ctx.barrier();
    ctx.presched_do(0, 199, 1, [&](std::int64_t i) {
      EXPECT_EQ(arr[static_cast<std::size_t>(i)].consume(),
                static_cast<int>(i));
    });
  });
  const auto stats = f.env().machine().lock_stats();
  EXPECT_GT(stats.striped_locks, 0u);
}

TEST(FailureInjection, CheckErrorsCarrySourceLocations) {
  try {
    force::Force f({.nproc = -3});
    FAIL();
  } catch (const force::util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("nproc"), std::string::npos);
  }
}

// --- os-fork backend ---------------------------------------------------------
//
// Under fork, a throwing child cannot unwind into the parent: the exception
// dies with the child process. The robust join converts the child's nonzero
// exit into a ProcessDeathError carrying the what() text that the child
// stashed in the shared team control block before leaving.

TEST(FailureInjection, ForkChildExceptionBecomesProcessDeathError) {
  fc::ForceConfig cfg;
  cfg.nproc = 3;
  cfg.process_model = "os-fork";
  force::Force f(cfg);
  try {
    f.run([](fc::Ctx& ctx) {
      ctx.selfsched_do(FORCE_SITE, 1, 100, 1, [](std::int64_t i) {
        // Exactly one process claims iteration 37 (which one is the
        // dispatcher's choice), so exactly one child dies.
        if (i == 37) throw std::runtime_error("iteration 37 exploded");
      });
    });
    FAIL() << "expected ProcessDeathError";
  } catch (const md::ProcessDeathError& e) {
    EXPECT_GE(e.process(), 1);
    EXPECT_LE(e.process(), 3);
    EXPECT_EQ(e.exit_code(), 1);
    EXPECT_EQ(e.term_signal(), 0);
    EXPECT_NE(e.error_text().find("iteration 37 exploded"),
              std::string::npos);
  }
}

TEST(FailureInjection, ForkCheckFailureIsDiagnosedWithItsMessage) {
  // A FORCE_CHECK tripping inside a child (zero selfsched increment) must
  // surface in the parent with the original diagnostic, not just "exit 1".
  fc::ForceConfig cfg;
  cfg.nproc = 2;
  cfg.process_model = "os-fork";
  force::Force f(cfg);
  try {
    f.run([](fc::Ctx& ctx) {
      ctx.selfsched_do(FORCE_SITE, 1, 10, 0, [](std::int64_t) {});
    });
    FAIL() << "expected ProcessDeathError";
  } catch (const md::ProcessDeathError& e) {
    EXPECT_NE(e.error_text().find("increment"), std::string::npos);
  }
}

// --- cluster backend ---------------------------------------------------------
//
// Same contract across a socket transport: the dying peer ships its what()
// text to the coordinator over the wire (kError) before exiting, and the
// coordinator's reaper folds it into the ProcessDeathError.

TEST(FailureInjection, ClusterPeerExceptionBecomesProcessDeathError) {
  fc::ForceConfig cfg;
  cfg.nproc = 3;
  cfg.process_model = "cluster";
  force::Force f(cfg);
  try {
    f.run([](fc::Ctx& ctx) {
      ctx.selfsched_do(FORCE_SITE, 1, 100, 1, [](std::int64_t i) {
        if (i == 37) throw std::runtime_error("iteration 37 exploded");
      });
    });
    FAIL() << "expected ProcessDeathError";
  } catch (const md::ProcessDeathError& e) {
    EXPECT_GE(e.process(), 1);
    EXPECT_LE(e.process(), 3);
    EXPECT_EQ(e.exit_code(), 1);
    EXPECT_EQ(e.term_signal(), 0);
    EXPECT_NE(e.error_text().find("iteration 37 exploded"),
              std::string::npos);
  }
}

TEST(FailureInjection, ClusterCheckFailureIsDiagnosedWithItsMessage) {
  fc::ForceConfig cfg;
  cfg.nproc = 2;
  cfg.process_model = "cluster";
  force::Force f(cfg);
  try {
    f.run([](fc::Ctx& ctx) {
      ctx.selfsched_do(FORCE_SITE, 1, 10, 0, [](std::int64_t) {});
    });
    FAIL() << "expected ProcessDeathError";
  } catch (const md::ProcessDeathError& e) {
    EXPECT_NE(e.error_text().find("increment"), std::string::npos);
  }
}
