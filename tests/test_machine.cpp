// Tests for the machine registry and the lock-budget (scarcity) machinery.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "machdep/machine.hpp"
#include "util/check.hpp"

namespace md = force::machdep;

TEST(MachineRegistry, HasTheSixPaperMachinesPlusNative) {
  const auto names = md::machine_names();
  ASSERT_EQ(names.size(), 7u);
  for (const char* expected :
       {"hep", "flex32", "encore", "sequent", "alliant", "cray2", "native"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(MachineRegistry, UnknownMachineThrows) {
  EXPECT_THROW(md::machine_spec("pdp11"), force::util::CheckError);
}

TEST(MachineRegistry, SpecsMatchThePaper) {
  EXPECT_TRUE(md::machine_spec("hep").hardware_full_empty);
  EXPECT_FALSE(md::machine_spec("encore").hardware_full_empty);
  EXPECT_EQ(md::machine_spec("hep").process_model,
            md::ProcessModelKind::kHepCreate);
  EXPECT_EQ(md::machine_spec("alliant").process_model,
            md::ProcessModelKind::kForkSharedData);
  EXPECT_EQ(md::machine_spec("sequent").sharing,
            md::SharingStrategy::kLinkTime);
  EXPECT_EQ(md::machine_spec("encore").sharing,
            md::SharingStrategy::kRuntimePadded);
  EXPECT_EQ(md::machine_spec("alliant").sharing,
            md::SharingStrategy::kPageAlignedStart);
  EXPECT_EQ(md::machine_spec("cray2").lock_kind, md::LockKind::kSystem);
  EXPECT_EQ(md::machine_spec("flex32").lock_kind, md::LockKind::kCombined);
  EXPECT_EQ(md::machine_spec("sequent").lock_kind, md::LockKind::kTasSpin);
  // The Cray-2 is the scarce-lock machine.
  EXPECT_GT(md::machine_spec("cray2").lock_budget, 0);
  EXPECT_LT(md::machine_spec("cray2").lock_budget, 100);
  EXPECT_LT(md::machine_spec("hep").lock_budget, 0);  // unlimited
}

TEST(MachineModel, HandsOutNativeLocksWithinBudget) {
  md::MachineModel m(md::machine_spec("encore"));
  auto lock = m.new_lock();
  EXPECT_STREQ(lock->mechanism(), "tas-spin");
  const auto stats = m.lock_stats();
  EXPECT_EQ(stats.logical_locks, 1u);
  EXPECT_EQ(stats.physical_locks, 1u);
  EXPECT_EQ(stats.striped_locks, 0u);
}

TEST(MachineModel, StripesBeyondTheBudget) {
  md::MachineSpec spec = md::machine_spec("cray2");
  spec.lock_budget = 4;
  md::MachineModel m(spec);
  std::vector<std::unique_ptr<md::BasicLock>> locks;
  for (int i = 0; i < 10; ++i) locks.push_back(m.new_lock());
  const auto stats = m.lock_stats();
  EXPECT_EQ(stats.logical_locks, 10u);
  EXPECT_EQ(stats.physical_locks, 4u);
  EXPECT_EQ(stats.striped_locks, 6u);
  EXPECT_STREQ(locks[0]->mechanism(), "system");
  EXPECT_STREQ(locks[9]->mechanism(), "striped");
}

TEST(MachineModel, StripedLocksKeepSemaphoreSemantics) {
  md::MachineSpec spec = md::machine_spec("cray2");
  spec.lock_budget = 1;
  md::MachineModel m(spec);
  // Exhaust the budget, then take two striped locks that share the pool.
  auto real = m.new_lock();
  auto a = m.new_lock();
  auto b = m.new_lock();
  ASSERT_STREQ(a->mechanism(), "striped");
  ASSERT_STREQ(b->mechanism(), "striped");

  // Independence: holding a must not make b unavailable.
  a->acquire();
  EXPECT_TRUE(b->try_acquire());
  b->release();

  // try_acquire on a held striped lock fails.
  EXPECT_FALSE(a->try_acquire());

  // Cross-thread release works (the produce/consume requirement).
  std::jthread other([&] { a->release(); });
  other.join();
  EXPECT_TRUE(a->try_acquire());
  a->release();
}

TEST(MachineModel, StripedLocksProvideMutualExclusion) {
  md::MachineSpec spec = md::machine_spec("cray2");
  spec.lock_budget = 1;
  md::MachineModel m(spec);
  auto real = m.new_lock();
  auto lock = m.new_lock();  // striped
  long counter = 0;
  std::atomic<bool> violated{false};
  std::atomic<int> inside{0};
  {
    std::vector<std::jthread> team;
    for (int t = 0; t < 3; ++t) {
      team.emplace_back([&] {
        for (int i = 0; i < 500; ++i) {
          lock->acquire();
          if (inside.fetch_add(1) != 0) violated = true;
          ++counter;
          inside.fetch_sub(1);
          lock->release();
        }
      });
    }
  }
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(counter, 1500);
}

TEST(MachineModel, CountersAreSharedAcrossItsLocks) {
  md::MachineModel m(md::machine_spec("native"));
  auto a = m.new_lock();
  auto b = m.new_lock();
  a->acquire();
  a->release();
  b->acquire();
  b->release();
  EXPECT_EQ(m.counters().acquires.load(), 2u);
}

TEST(MachineModel, CostModelReflectsSpec) {
  md::MachineModel hep(md::machine_spec("hep"));
  md::MachineModel cray(md::machine_spec("cray2"));
  md::LockCountersSnapshot d;
  d.acquires = 1000;
  // HEP synchronization is near-free; Cray-2 locks are system calls.
  EXPECT_LT(hep.cost_model().lock_time_ns(d),
            cray.cost_model().lock_time_ns(d) / 10);
}

TEST(MachineModel, ProcessTeamMatchesSpec) {
  md::MachineModel m(md::machine_spec("alliant"));
  EXPECT_EQ(m.process_team().kind(), md::ProcessModelKind::kForkSharedData);
}
