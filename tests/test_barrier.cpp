// Tests for every barrier algorithm (paper §3.4, §4.2, [AJ87]):
// correctness, section semantics, reusability, and cross-algorithm sweeps.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/barrier.hpp"
#include "core/env.hpp"

namespace fc = force::core;

namespace {

fc::ForceConfig test_config(int np) {
  fc::ForceConfig cfg;
  cfg.nproc = np;
  cfg.machine = "native";
  return cfg;
}

/// Runs `episodes` barrier episodes on `width` real threads and checks the
/// fundamental barrier property: no thread enters episode e+1 before every
/// thread finished episode e.
void check_barrier_property(fc::BarrierAlgorithm& barrier, int width,
                            int episodes) {
  std::vector<std::atomic<int>> progress(static_cast<std::size_t>(width));
  for (auto& p : progress) p.store(0);
  std::atomic<bool> violated{false};
  {
    std::vector<std::jthread> team;
    for (int t = 0; t < width; ++t) {
      team.emplace_back([&, t] {
        for (int e = 0; e < episodes; ++e) {
          progress[static_cast<std::size_t>(t)].store(e + 1);
          barrier.arrive(t);
          // After the barrier, everyone must have reached episode e+1.
          for (int other = 0; other < width; ++other) {
            if (progress[static_cast<std::size_t>(other)].load() < e + 1) {
              violated = true;
            }
          }
        }
      });
    }
  }
  EXPECT_FALSE(violated.load());
}

}  // namespace

class BarrierTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {
 protected:
  BarrierTest() : env_(test_config(std::get<1>(GetParam()))) {}
  std::unique_ptr<fc::BarrierAlgorithm> make() {
    return fc::make_barrier_algorithm(std::get<0>(GetParam()), env_,
                                      std::get<1>(GetParam()));
  }
  int width() const { return std::get<1>(GetParam()); }
  fc::ForceEnvironment env_;
};

TEST_P(BarrierTest, SynchronizesRepeatedEpisodes) {
  auto barrier = make();
  check_barrier_property(*barrier, width(), 25);
}

TEST_P(BarrierTest, SectionRunsExactlyOncePerEpisode) {
  auto barrier = make();
  constexpr int kEpisodes = 20;
  std::atomic<int> section_runs{0};
  {
    std::vector<std::jthread> team;
    for (int t = 0; t < width(); ++t) {
      team.emplace_back([&, t] {
        for (int e = 0; e < kEpisodes; ++e) {
          barrier->arrive(t, [&] { section_runs.fetch_add(1); });
        }
      });
    }
  }
  EXPECT_EQ(section_runs.load(), kEpisodes);
}

// Regression: arriving with no section - the two-argument overload handed a
// default-constructed (empty) std::function, or the one-argument overload -
// must never throw bad_function_call on any algorithm. Every algorithm now
// routes through BarrierAlgorithm::run_section()/has_section(), which treat
// an empty function as "no section" instead of invoking it.
TEST_P(BarrierTest, EmptySectionNeverThrows) {
  auto barrier = make();
  constexpr int kEpisodes = 10;
  {
    std::vector<std::jthread> team;
    for (int t = 0; t < width(); ++t) {
      team.emplace_back([&, t] {
        for (int e = 0; e < kEpisodes; ++e) {
          switch (e % 3) {
            case 0:
              barrier->arrive(t);  // one-argument overload
              break;
            case 1:
              // Explicitly empty function object - the historical crash:
              // proc 0 invoked it and threw std::bad_function_call.
              barrier->arrive(t, std::function<void()>{});
              break;
            default:
              barrier->arrive(t, fc::BarrierAlgorithm::no_section());
              break;
          }
        }
      });
    }
  }
  // Reaching here without a bad_function_call (which would abort the team
  // thread and hang the others) is the assertion; run one sectioned episode
  // to show the barrier is still healthy afterwards.
  std::atomic<int> runs{0};
  {
    std::vector<std::jthread> team;
    for (int t = 0; t < width(); ++t) {
      team.emplace_back(
          [&, t] { barrier->arrive(t, [&] { runs.fetch_add(1); }); });
    }
  }
  EXPECT_EQ(runs.load(), 1);
}

TEST_P(BarrierTest, SectionIsMutuallyExcludedFromUserCode) {
  // While the section runs, no process may be past the barrier: the
  // section increments then decrements a flag around a delay; any process
  // observing the flag set after arrive() returned is a violation.
  auto barrier = make();
  std::atomic<int> in_section{0};
  std::atomic<bool> violated{false};
  {
    std::vector<std::jthread> team;
    for (int t = 0; t < width(); ++t) {
      team.emplace_back([&, t] {
        for (int e = 0; e < 10; ++e) {
          barrier->arrive(t, [&] {
            in_section.store(1);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            in_section.store(0);
          });
          if (in_section.load() != 0) violated = true;
        }
      });
    }
  }
  EXPECT_FALSE(violated.load());
}

TEST_P(BarrierTest, SectionSeesAllPriorWrites) {
  // The classic reduction pattern: every process writes its slot before
  // the barrier; the section must observe every slot.
  auto barrier = make();
  std::vector<std::atomic<int>> slots(static_cast<std::size_t>(width()));
  for (auto& s : slots) s.store(0);
  std::atomic<int> observed_sum{0};
  {
    std::vector<std::jthread> team;
    for (int t = 0; t < width(); ++t) {
      team.emplace_back([&, t] {
        slots[static_cast<std::size_t>(t)].store(t + 1);
        barrier->arrive(t, [&] {
          int sum = 0;
          for (auto& s : slots) sum += s.load();
          observed_sum.store(sum);
        });
      });
    }
  }
  EXPECT_EQ(observed_sum.load(), width() * (width() + 1) / 2);
}

TEST_P(BarrierTest, WidthOneIsImmediate) {
  fc::ForceEnvironment env(test_config(1));
  auto barrier =
      fc::make_barrier_algorithm(std::get<0>(GetParam()), env, 1);
  int runs = 0;
  for (int e = 0; e < 100; ++e) {
    barrier->arrive(0, [&] { ++runs; });
  }
  EXPECT_EQ(runs, 100);
}

TEST_P(BarrierTest, RejectsBadProcessIds) {
  auto barrier = make();
  EXPECT_THROW(barrier->arrive(-1), force::util::CheckError);
  EXPECT_THROW(barrier->arrive(width()), force::util::CheckError);
}

TEST_P(BarrierTest, NameMatches) {
  EXPECT_EQ(make()->name(), std::get<0>(GetParam()));
  EXPECT_EQ(make()->width(), width());
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAndWidths, BarrierTest,
    ::testing::Combine(::testing::ValuesIn(fc::barrier_algorithm_names()),
                       ::testing::Values(1, 2, 3, 4, 7, 8)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
      std::string name = std::get<0>(info.param) + "_w" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(BarrierFactory, UnknownNameThrows) {
  fc::ForceEnvironment env(test_config(2));
  EXPECT_THROW(fc::make_barrier_algorithm("bogus", env, 2),
               force::util::CheckError);
}

// The process-shared (os-fork) barrier must obey the same empty-section
// contract as the thread algorithms. Futex waits are not process-private,
// so plain threads over the MAP_SHARED arena exercise the real wait path.
TEST(ProcessSharedBarrier, EmptySectionNeverThrows) {
  constexpr int kWidth = 4;
  fc::ForceConfig cfg = test_config(kWidth);
  cfg.process_model = "os-fork";
  fc::ForceEnvironment env(cfg);
  auto barrier_ptr =
      env.make_process_shared_barrier(kWidth, "%test/empty-section");
  fc::BarrierAlgorithm& barrier = *barrier_ptr;
  std::atomic<int> runs{0};
  {
    std::vector<std::jthread> team;
    for (int t = 0; t < kWidth; ++t) {
      team.emplace_back([&, t] {
        barrier.arrive(t);
        barrier.arrive(t, std::function<void()>{});
        barrier.arrive(t, fc::BarrierAlgorithm::no_section());
        barrier.arrive(t, [&] { runs.fetch_add(1); });
      });
    }
  }
  EXPECT_EQ(runs.load(), 1);
}

TEST(PaperLockBarrier, UsesOnlyGenericLocks) {
  // The lock-only barrier exercises the machine's generic lock layer: its
  // traffic must show up in the machine counters (on every machine).
  for (const char* machine : {"hep", "cray2", "encore"}) {
    fc::ForceConfig cfg = test_config(3);
    cfg.machine = machine;
    fc::ForceEnvironment env(cfg);
    const auto before = force::machdep::snapshot(env.machine().counters());
    fc::PaperLockBarrier barrier(env, 3);
    std::vector<std::jthread> team;
    for (int t = 0; t < 3; ++t) {
      team.emplace_back([&, t] {
        for (int e = 0; e < 5; ++e) barrier.arrive(t);
      });
    }
    team.clear();
    const auto delta =
        force::machdep::snapshot(env.machine().counters()) - before;
    EXPECT_GT(delta.acquires, 0u) << machine;
  }
}
