// Tests for the Reduction construct (critical idiom vs combining tree).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>

#include "core/force.hpp"

namespace fc = force::core;

namespace {
std::function<std::int64_t(std::int64_t, std::int64_t)> plus_i64() {
  return [](std::int64_t a, std::int64_t b) { return a + b; };
}
}  // namespace

class ReduceTest
    : public ::testing::TestWithParam<std::tuple<fc::ReduceStrategy, int>> {};

TEST_P(ReduceTest, SumOfProcessNumbers) {
  const auto [strategy, np] = GetParam();
  force::Force f({.nproc = np});
  std::atomic<int> failures{0};
  f.run([&, s = strategy](fc::Ctx& ctx) {
    const std::int64_t total = ctx.reduce<std::int64_t>(
        FORCE_SITE, ctx.me(), plus_i64(), s);
    if (total != static_cast<std::int64_t>(ctx.np()) * (ctx.np() + 1) / 2) {
      failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(ReduceTest, EveryProcessGetsTheResult) {
  const auto [strategy, np] = GetParam();
  force::Force f({.nproc = np});
  std::vector<std::int64_t> results(static_cast<std::size_t>(np), -1);
  f.run([&, s = strategy](fc::Ctx& ctx) {
    results[static_cast<std::size_t>(ctx.me0())] =
        ctx.reduce<std::int64_t>(FORCE_SITE, 1, plus_i64(), s);
  });
  for (int p = 0; p < np; ++p) {
    EXPECT_EQ(results[static_cast<std::size_t>(p)], np) << p;
  }
}

TEST_P(ReduceTest, ReusableAcrossEpisodesWithChangingValues) {
  const auto [strategy, np] = GetParam();
  force::Force f({.nproc = np});
  std::atomic<int> failures{0};
  f.run([&, s = strategy](fc::Ctx& ctx) {
    for (std::int64_t round = 1; round <= 20; ++round) {
      const std::int64_t total = ctx.reduce<std::int64_t>(
          FORCE_SITE, round * ctx.me(), plus_i64(), s);
      const std::int64_t want =
          round * static_cast<std::int64_t>(ctx.np()) * (ctx.np() + 1) / 2;
      if (total != want) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(ReduceTest, MaxReduction) {
  const auto [strategy, np] = GetParam();
  force::Force f({.nproc = np});
  std::atomic<int> failures{0};
  f.run([&, s = strategy](fc::Ctx& ctx) {
    const std::int64_t biggest = ctx.reduce<std::int64_t>(
        FORCE_SITE, (ctx.me() * 7919) % 101,
        [](std::int64_t a, std::int64_t b) { return std::max(a, b); }, s);
    std::int64_t want = 0;
    for (int p = 1; p <= ctx.np(); ++p) {
      want = std::max<std::int64_t>(want, (p * 7919) % 101);
    }
    if (biggest != want) failures.fetch_add(1);
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(ReduceTest, DoublePayloads) {
  const auto [strategy, np] = GetParam();
  force::Force f({.nproc = np});
  std::atomic<int> failures{0};
  f.run([&, s = strategy](fc::Ctx& ctx) {
    const double sum = ctx.reduce<double>(
        FORCE_SITE, 0.5 * ctx.me(),
        [](double a, double b) { return a + b; }, s);
    const double want = 0.5 * ctx.np() * (ctx.np() + 1) / 2.0;
    if (std::fabs(sum - want) > 1e-12) failures.fetch_add(1);
  });
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndWidths, ReduceTest,
    ::testing::Combine(::testing::Values(fc::ReduceStrategy::kCritical,
                                         fc::ReduceStrategy::kTournament),
                       ::testing::Values(1, 2, 3, 4, 7, 8)),
    [](const ::testing::TestParamInfo<std::tuple<fc::ReduceStrategy, int>>&
           info) {
      const char* s = std::get<0>(info.param) == fc::ReduceStrategy::kCritical
                          ? "critical"
                          : "tournament";
      return std::string(s) + "_w" + std::to_string(std::get<1>(info.param));
    });

TEST(Reduce, WorksOnEveryMachineModel) {
  for (const auto& machine : force::machdep::machine_names()) {
    fc::ForceConfig cfg;
    cfg.nproc = 4;
    cfg.machine = machine;
    force::Force f(cfg);
    std::atomic<int> failures{0};
    f.run([&](fc::Ctx& ctx) {
      const auto v = ctx.reduce<std::int64_t>(FORCE_SITE, ctx.me(),
                                              plus_i64());
      if (v != 10) failures.fetch_add(1);
    });
    EXPECT_EQ(failures.load(), 0) << machine;
  }
}

TEST(Reduce, TournamentUsesNoLocksBeyondTheBarrier) {
  // The combining tree itself is lock-free; only the trailing barrier
  // touches locks (and only on lock-based barrier algorithms).
  fc::ForceConfig cfg;
  cfg.nproc = 4;
  cfg.barrier_algorithm = "central-sense";  // lock-free barrier
  force::Force f(cfg);
  f.run([](fc::Ctx&) {});  // warm up the force
  const auto before = force::machdep::snapshot(f.env().machine().counters());
  f.run([&](fc::Ctx& ctx) {
    (void)ctx.reduce<std::int64_t>(FORCE_SITE, 1, plus_i64(),
                                   fc::ReduceStrategy::kTournament);
  });
  const auto delta =
      force::machdep::snapshot(f.env().machine().counters()) - before;
  EXPECT_EQ(delta.acquires, 0u);
}

TEST(Reduce, ReduceIntoWritesSharedTargetRaceFree) {
  for (fc::ReduceStrategy s : {fc::ReduceStrategy::kCritical,
                               fc::ReduceStrategy::kTournament}) {
    force::Force f({.nproc = 4});
    auto& total = f.shared<std::int64_t>("total");
    std::atomic<int> failures{0};
    f.run([&](fc::Ctx& ctx) {
      for (std::int64_t round = 1; round <= 5; ++round) {
        ctx.reduce_into<std::int64_t>(FORCE_SITE, round, total, plus_i64(),
                                      s);
        // Visible to every process as soon as the construct returns.
        if (total != round * ctx.np()) failures.fetch_add(1);
      }
    });
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(total, 5 * 4);
  }
}

TEST(Reduce, InsideResolveComponents) {
  force::Force f({.nproc = 6});
  std::atomic<int> failures{0};
  f.run([&](fc::Ctx& ctx) {
    ctx.resolve(FORCE_SITE)
        .component("a", 1,
                   [&](fc::Ctx& sub) {
                     const auto v = sub.reduce<std::int64_t>(
                         FORCE_SITE, 1, plus_i64());
                     if (v != sub.np()) failures.fetch_add(1);
                   })
        .component("b", 1,
                   [&](fc::Ctx& sub) {
                     const auto v = sub.reduce<std::int64_t>(
                         FORCE_SITE, 2, plus_i64());
                     if (v != 2 * sub.np()) failures.fetch_add(1);
                   })
        .run();
  });
  EXPECT_EQ(failures.load(), 0);
}
