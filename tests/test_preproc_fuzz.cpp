// Robustness tests for forcepp: adversarial and randomized inputs must
// produce diagnostics, never crashes, hangs or silent garbage.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "preproc/lint.hpp"
#include "preproc/translate.hpp"
#include "util/rng.hpp"

namespace pp = force::preproc;

namespace {

pp::TranslationResult run(const std::string& src) {
  pp::TranslateOptions opts;
  opts.machine = "native";
  opts.source_name = "fuzz.force";
  return pp::translate(src, opts);
}

/// forcelint over arbitrary soup must terminate with a verdict (possibly
/// zero findings) and be deterministic: two runs render identically.
/// Whole-program mode gets the same guarantee: the soup split in two
/// units (summaries, fixpoint, report rendering included).
void lint_is_robust_and_deterministic(const std::string& src) {
  pp::DiagSink a;
  pp::DiagSink b;
  EXPECT_NO_THROW({ (void)pp::run_forcelint(src, {}, a); }) << src;
  EXPECT_NO_THROW({ (void)pp::run_forcelint(src, {}, b); }) << src;
  EXPECT_EQ(a.render_all("fuzz.force"), b.render_all("fuzz.force")) << src;

  const std::size_t half = src.size() / 2;
  const std::vector<pp::LintUnit> units = {
      {"fuzz_a.force", src.substr(0, half)},
      {"fuzz_b.force", src.substr(half)}};
  pp::LintOptions opts;
  opts.target_process_model = "os-fork";
  pp::DiagSink pa;
  pp::DiagSink pb;
  std::string ra;
  std::string rb;
  EXPECT_NO_THROW({
    const pp::LintResult res = pp::run_forcelint_program(units, opts, pa);
    ra = pp::render_lint_report(units, opts, res, pa);
  }) << src;
  EXPECT_NO_THROW({
    const pp::LintResult res = pp::run_forcelint_program(units, opts, pb);
    rb = pp::render_lint_report(units, opts, res, pb);
  }) << src;
  EXPECT_EQ(pa.render_all("fuzz_a.force"), pb.render_all("fuzz_a.force"))
      << src;
  EXPECT_EQ(ra, rb) << src;
}

}  // namespace

TEST(PreprocFuzz, EmptyAndWhitespaceInputs) {
  EXPECT_FALSE(run("").ok);           // no main program
  EXPECT_FALSE(run("\n\n\n").ok);
  EXPECT_FALSE(run("   \t  \n").ok);
}

TEST(PreprocFuzz, AdversarialStatements) {
  // Each of these must produce a diagnostic (ok == false) or translate
  // cleanly - never throw out of translate().
  const char* cases[] = {
      "Force\nJoin\n",                          // missing name
      "Force P Q\nJoin\n",                      // junk after name
      "Force P\nShared\nJoin\n",                // empty declaration
      "Force P\nShared real \nJoin\n",
      "Force P\nShared real X(\nJoin\n",        // unbalanced paren
      "Force P\nShared real X((((\nJoin\n",
      "Force P\nSelfsched DO\nJoin\n",
      "Force P\nSelfsched DO 1 I=\nJoin\n",
      "Force P\n1 End Selfsched DO\nJoin\n",    // end without begin
      "Force P\nEnd barrier\nJoin\n",
      "Force P\nEnd critical\nJoin\n",
      "Force P\nEnd pcase\nJoin\n",
      "Force P\nUsect\nJoin\n",
      "Force P\nCsect\nJoin\n",
      "Force P\nProduce = 5\nJoin\n",
      "Force P\nConsume into X\nJoin\n",
      "Force P\nReduce into X\nJoin\n",
      "Force P\nJoin\nJoin\n",                  // double join
      "Join\n",                                 // join without main
      "End Forcesub\n",
      "Forcesub\n",
      "Force P\nForcesub S\nEnd Forcesub\nJoin\n",  // nested module
      "Force P\nBarrier\nBarrier\nEnd barrier\nJoin\n",  // unbalanced
      "Force P\nCritical L\nEnd barrier\nJoin\n",        // crossed ends
      "Force P\nPcase\nUsect\nEnd barrier\nJoin\n",
      "Force P\nSelfsched DO 5 I = 1, 10\n6 End Selfsched DO\nJoin\n",
      "Force P\nShared integer X\nShared real X\nJoin\n",  // dup decl
      "Force P\nReduce L into MISSING\nJoin\n",
      "Force P\nShared real A(2)\nPrivate real L\nReduce L into A\nJoin\n",
      "@force_main(EVIL)\nJoin\n",              // raw macro injection
      "Force P\n@join()\n",                     // raw macro call for join
  };
  for (const char* src : cases) {
    EXPECT_NO_THROW({ (void)run(src); }) << src;
    lint_is_robust_and_deterministic(src);
  }
}

TEST(PreprocFuzz, LintThroughTranslateNeverThrowsOnAdversarialInput) {
  pp::TranslateOptions opts;
  opts.machine = "native";
  opts.source_name = "fuzz.force";
  opts.lint = true;
  opts.werror = true;
  const char* cases[] = {
      "",
      "Force\nJoin\n",
      "Force P\nBarrier\nJoin\n",                 // unterminated construct
      "Force P\nLock A\nLock B\nUnlock A\nJoin\n",  // dangling lock
      "Force P\nAsync real V\nConsume V into X\nJoin\n",
      "Force P\nif (x\nBarrier\nEnd barrier\nJoin\n",  // unbalanced paren
      "Force P\n!force$ lint off(\nJoin\n",       // malformed directive
      "Force P\n!force$ lint off(R9)\nJoin\n",    // out-of-range rule
      "Force P\n!force$ lint off\nJoin\n",        // unclosed region (W1)
      "Force P\nForcecall P\nJoin\n",             // main calls itself
      "Force P\nForcecall\nJoin\n",               // call without a name
      // Mutual recursion across Forcesubs: the fixpoint must terminate.
      "Force P\nForcecall A\nJoin\n"
      "Forcesub A\nForcecall B\nEnd Forcesub\n"
      "Forcesub B\nForcecall A\nEnd Forcesub\n",
      // Forcecall to a routine defined twice (first definition wins).
      "Force P\nForcecall A\nJoin\n"
      "Forcesub A\nBarrier\nEnd barrier\nEnd Forcesub\n"
      "Forcesub A\nEnd Forcesub\n",
      "Force P\nAskfor 1 T of\nJoin\n",           // truncated askfor
      "Force P\nSeedwork 1\nAskfor 1 T of weird&type\n1 End Askfor\nJoin\n",
  };
  for (const char* src : cases) {
    EXPECT_NO_THROW({ (void)pp::translate(src, opts); }) << src;
  }
}

TEST(PreprocFuzz, ErrorsCarryLineNumbers) {
  const auto r = run("Force P\nx = 1;\nShared floatish X\nJoin\n");
  ASSERT_FALSE(r.ok);
  bool found = false;
  for (const auto& d : r.diags.all()) {
    if (d.line == 3) found = true;
  }
  EXPECT_TRUE(found) << r.diags.render_all("fuzz.force");
}

TEST(PreprocFuzz, RandomLineSoupNeverCrashes) {
  // Random printable soup interleaved with statement fragments; translate
  // must always terminate with a verdict.
  force::util::Xoshiro256 rng(0xF022);
  const char* fragments[] = {
      "Force P",     "Join",           "Barrier",       "End barrier",
      "Critical L",  "End critical",   "Usect",         "Pcase",
      "End pcase",   "Shared real X",  "Private integer I",
      "Produce V = 1", "Consume V into X", "Selfsched DO 9 I = 1, 4",
      "9 End Selfsched DO", "Reduce X into Y", "Forcecall Q",
      "x += 1;",     "if (true) {",    "}",
      "Forcesub Q",  "End Forcesub",   "Externf Q",
      "Lock A",      "Unlock A",       "Async real V",
      "Askfor 7 T of integer", "7 End Askfor", "Isfull V into X",
  };
  for (int trial = 0; trial < 50; ++trial) {
    std::string src;
    const int lines = static_cast<int>(rng.uniform_int(1, 30));
    for (int l = 0; l < lines; ++l) {
      if (rng.uniform01() < 0.7) {
        src += fragments[rng.uniform_int(
            0, static_cast<std::int64_t>(std::size(fragments)) - 1)];
      } else {
        const int len = static_cast<int>(rng.uniform_int(0, 40));
        for (int c = 0; c < len; ++c) {
          src += static_cast<char>(rng.uniform_int(32, 126));
        }
      }
      src += '\n';
    }
    EXPECT_NO_THROW({ (void)run(src); }) << "trial " << trial << ":\n"
                                         << src;
    lint_is_robust_and_deterministic(src);
  }
}

TEST(PreprocFuzz, DeepNestingIsBounded) {
  // Hundreds of nested barriers: the translator must either accept or
  // diagnose, in bounded time, without stack issues.
  std::string src = "Force P\n";
  for (int i = 0; i < 300; ++i) src += "Barrier\n";
  for (int i = 0; i < 300; ++i) src += "End barrier\n";
  src += "Join\n";
  const auto r = run(src);
  EXPECT_TRUE(r.ok) << r.diags.render_all("fuzz.force");
}

TEST(PreprocFuzz, VeryLongLines) {
  std::string expr = "1";
  for (int i = 0; i < 2000; ++i) expr += "+1";
  const auto r = run("Force P\nShared integer X\nBarrier\nX = " + expr +
                     ";\nEnd barrier\nJoin\n");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.cpp_code.find(expr), std::string::npos);
}

TEST(PreprocFuzz, ManyErrorsAllReported) {
  std::string src = "Force P\n";
  for (int i = 0; i < 20; ++i) src += "Shared floatish V" + std::to_string(i) + "\n";
  src += "Join\n";
  const auto r = run(src);
  EXPECT_FALSE(r.ok);
  EXPECT_GE(r.diags.errors(), 20u);
}
