// The capability cross-check (docs/PORTING.md, "The ExecutionBackend
// layer"): one declarative table in src/machdep/backend.hpp drives
//
//   (a) the runtime's construct-rejection diagnostics,
//   (b) forcelint R7's per-model compatibility matrix, and
//   (c) the capability table embedded in docs/PORTING.md.
//
// This suite proves the three agree cell for cell, so a table edit that
// forgets one consumer fails here instead of drifting silently.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/askfor.hpp"
#include "core/async.hpp"
#include "core/env.hpp"
#include "core/reduce.hpp"
#include "machdep/backend.hpp"
#include "preproc/lint.hpp"
#include "util/check.hpp"

namespace fc = force::core;
namespace fp = force::preproc;
namespace md = force::machdep;

namespace {

fc::ForceConfig config_for(md::ProcessModel model) {
  fc::ForceConfig cfg;
  cfg.nproc = 2;
  cfg.machine = "native";
  if (model == md::ProcessModel::kOsFork) cfg.process_model = "os-fork";
  if (model == md::ProcessModel::kCluster) cfg.process_model = "cluster";
  return cfg;
}

std::string trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

}  // namespace

// --- the table itself -------------------------------------------------------

TEST(CapabilityTable, RowsAreUniqueAndThreadAcceptsEverything) {
  std::set<std::string> ids;
  for (const md::CapabilityRow& row : md::capability_table()) {
    // The thread substrate is the reference semantics: every construct
    // must be supported there, narrowing only ever happens on os-fork
    // and cluster.
    EXPECT_TRUE(row.thread) << row.id;
    EXPECT_TRUE(ids.insert(row.id).second) << "duplicate id " << row.id;
    EXPECT_EQ(&md::capability_row(row.cap), &row);
  }
  EXPECT_FALSE(md::capability_table().empty());
}

TEST(CapabilityTable, ParseRoundTripsEveryModelName) {
  for (const md::ProcessModel m : md::all_process_models()) {
    md::ProcessModel parsed{};
    ASSERT_TRUE(md::parse_process_model(md::process_model_name(m), &parsed));
    EXPECT_EQ(parsed, m);
  }
  md::ProcessModel parsed{};
  EXPECT_TRUE(md::parse_process_model("machine", &parsed));
  EXPECT_EQ(parsed, md::ProcessModel::kThread);
  EXPECT_FALSE(md::parse_process_model("bogus", &parsed));
  EXPECT_NE(std::string(md::process_model_valid_set()).find("os-fork"),
            std::string::npos);
}

// --- (a) the runtime, per model ---------------------------------------------

class BackendCapabilityTest
    : public ::testing::TestWithParam<md::ProcessModel> {};

TEST_P(BackendCapabilityTest, EnvironmentRejectionsMatchTheTable) {
  const md::ProcessModel model = GetParam();
  fc::ForceEnvironment env(config_for(model));
  EXPECT_EQ(env.process_model(), model);
  EXPECT_STREQ(env.backend().name(), md::process_model_name(model));
  for (const md::CapabilityRow& row : md::capability_table()) {
    const bool supported = md::backend_supports(model, row.cap);
    EXPECT_EQ(env.supports(row.cap), supported) << row.id;
    if (supported) {
      EXPECT_NO_THROW(env.require(row.cap, row.construct, "probe-site"))
          << row.id;
      continue;
    }
    try {
      env.require(row.cap, row.construct, "probe-site");
      FAIL() << row.id << " must be rejected under "
             << md::process_model_name(model);
    } catch (const force::util::CheckError& e) {
      // The uniform diagnostic names the construct, site, backend,
      // capability id and the table's reason.
      const std::string what = e.what();
      EXPECT_NE(what.find(row.construct), std::string::npos) << what;
      EXPECT_NE(what.find("'probe-site'"), std::string::npos) << what;
      EXPECT_NE(what.find(md::process_model_name(model)), std::string::npos)
          << what;
      EXPECT_NE(what.find(std::string("[capability ") + row.id + "]"),
                std::string::npos)
          << what;
      EXPECT_NE(what.find(row.reason), std::string::npos) << what;
    }
  }
}

TEST_P(BackendCapabilityTest, NonTrivialPayloadConstructorsMatchTheTable) {
  const md::ProcessModel model = GetParam();
  fc::ForceEnvironment env(config_for(model));
  const bool ok =
      md::backend_supports(model, md::Capability::kNonTrivialPayloads);
  if (ok) {
    EXPECT_NO_THROW(fc::Askfor<std::string>(env, "cap-probe/askfor-nt"));
    EXPECT_NO_THROW(fc::Async<std::string>(env, "cap-probe/async-nt"));
    EXPECT_NO_THROW(fc::Reduction<std::string>(env, 2, "cap-probe/reduce-nt"));
  } else {
    EXPECT_THROW(fc::Askfor<std::string>(env, "cap-probe/askfor-nt"),
                 force::util::CheckError);
    EXPECT_THROW(fc::Async<std::string>(env, "cap-probe/async-nt"),
                 force::util::CheckError);
    EXPECT_THROW(fc::Reduction<std::string>(env, 2, "cap-probe/reduce-nt"),
                 force::util::CheckError);
  }
  // Trivially copyable payloads construct on every backend.
  EXPECT_NO_THROW(fc::Askfor<std::int64_t>(env, "cap-probe/askfor-tc"));
  EXPECT_NO_THROW(fc::Async<std::int64_t>(env, "cap-probe/async-tc"));
  EXPECT_NO_THROW(
      fc::Reduction<std::int64_t>(env, 2, "cap-probe/reduce-tc"));
}

TEST_P(BackendCapabilityTest, IsfullMatchesTheTable) {
  const md::ProcessModel model = GetParam();
  fc::ForceEnvironment env(config_for(model));
  fc::Async<std::int64_t> cell(env, "cap-probe/isfull");
  if (md::backend_supports(model, md::Capability::kIsfull)) {
    EXPECT_NO_THROW((void)cell.is_full());
  } else {
    EXPECT_THROW((void)cell.is_full(), force::util::CheckError);
  }
}

TEST_P(BackendCapabilityTest, ThreadBarrierFactoryMatchesTheTable) {
  const md::ProcessModel model = GetParam();
  fc::ForceEnvironment env(config_for(model));
  if (md::backend_supports(model,
                           md::Capability::kThreadBarrierAlgorithms)) {
    EXPECT_NO_THROW(env.make_barrier(2));
  } else {
    EXPECT_THROW(env.make_barrier(2), force::util::CheckError);
  }
}

TEST_P(BackendCapabilityTest, ConfigurationRejectionsMatchTheTable) {
  const md::ProcessModel model = GetParam();
  const auto construct_with = [&](void (*tweak)(fc::ForceConfig&)) {
    fc::ForceConfig cfg = config_for(model);
    tweak(cfg);
    fc::ForceEnvironment env(cfg);
  };
  const auto expect_gate = [&](md::Capability cap,
                               void (*tweak)(fc::ForceConfig&)) {
    if (md::backend_supports(model, cap)) {
      EXPECT_NO_THROW(construct_with(tweak)) << md::capability_row(cap).id;
    } else {
      EXPECT_THROW(construct_with(tweak), force::util::CheckError)
          << md::capability_row(cap).id;
    }
  };
  expect_gate(md::Capability::kSentry,
              [](fc::ForceConfig& c) { c.sentry = true; });
  expect_gate(md::Capability::kTrace,
              [](fc::ForceConfig& c) { c.trace = true; });
  expect_gate(md::Capability::kTeamPool,
              [](fc::ForceConfig& c) { c.team_pool = true; });
  expect_gate(md::Capability::kNmScheduling,
              [](fc::ForceConfig& c) { c.pool_workers = 2; });
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, BackendCapabilityTest,
    ::testing::ValuesIn(md::all_process_models()),
    [](const ::testing::TestParamInfo<md::ProcessModel>& info) {
      std::string name = md::process_model_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- (b) forcelint R7, per model --------------------------------------------

namespace {

constexpr const char* kPcaseSource =
    "Force S\n"
    "End declarations\n"
    "Pcase\n"
    "Usect\n"
    "  ;\n"
    "End pcase\n"
    "Join\n";

constexpr const char* kNonScalarAskforSource =
    "Force S\n"
    "Private integer T\n"
    "End declarations\n"
    "Seedwork 10 1\n"
    "Askfor 10 T of std::string\n"
    "10 End Askfor\n"
    "Join\n";

constexpr const char* kIsfullSource =
    "Force S\n"
    "Async real CELL\n"
    "Private integer F\n"
    "End declarations\n"
    "Produce CELL = 1.0\n"
    "Isfull CELL into F\n"
    "Join\n";

struct LintCase {
  const char* name;
  const char* source;
  md::Capability cap;
};

}  // namespace

TEST(LintMatrixAgreesWithTable, RejectedConstructsMatchPerModel) {
  const LintCase cases[] = {
      {"pcase", kPcaseSource, md::Capability::kPcase},
      {"askfor-payload", kNonScalarAskforSource,
       md::Capability::kNonTrivialPayloads},
      {"isfull", kIsfullSource, md::Capability::kIsfull},
  };
  for (const LintCase& c : cases) {
    fp::DiagSink diags;
    const fp::LintResult res = fp::run_forcelint(c.source, {}, diags);
    const md::CapabilityRow& row = md::capability_row(c.cap);
    for (const md::ProcessModel m : md::all_process_models()) {
      const std::string model = md::process_model_name(m);
      EXPECT_EQ(res.compatible_with(model), md::backend_supports(m, c.cap))
          << c.name << " x " << model;
    }
    // The R7 reasons quote the capability row verbatim, so the static
    // matrix cannot drift from the runtime diagnostic.
    bool quotes_row = false;
    for (const fp::ModelViolation& v : res.model_violations) {
      if (v.reason.find(std::string("[capability ") + row.id + "]") !=
              std::string::npos &&
          v.reason.find(row.reason) != std::string::npos) {
        quotes_row = true;
      }
    }
    EXPECT_TRUE(quotes_row) << c.name;
  }
}

TEST(LintMatrixAgreesWithTable, CleanProgramIsCompatibleEverywhere) {
  fp::DiagSink diags;
  const fp::LintResult res = fp::run_forcelint(
      "Force S\n"
      "End declarations\n"
      "Barrier\n"
      "End barrier\n"
      "Join\n",
      {}, diags);
  EXPECT_TRUE(res.model_violations.empty());
  for (const md::ProcessModel m : md::all_process_models()) {
    EXPECT_TRUE(res.compatible_with(md::process_model_name(m)));
  }
}

TEST(LintMatrixAgreesWithTable, LintModelListMatchesBackendList) {
  const std::vector<std::string>& lint_models = fp::lint_process_models();
  const std::vector<md::ProcessModel>& models = md::all_process_models();
  ASSERT_EQ(lint_models.size(), models.size());
  for (std::size_t i = 0; i < models.size(); ++i) {
    EXPECT_EQ(lint_models[i], md::process_model_name(models[i]));
  }
}

// --- (c) the docs/PORTING.md table ------------------------------------------

TEST(PortingDoc, EmbeddedMatrixMatchesTheGenerator) {
  std::ifstream in(FORCE_PORTING_MD, std::ios::binary);
  ASSERT_TRUE(in.good()) << "cannot open " << FORCE_PORTING_MD;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();

  const std::string begin_marker = "<!-- capability-matrix:begin -->";
  const std::string end_marker = "<!-- capability-matrix:end -->";
  const std::size_t b = doc.find(begin_marker);
  const std::size_t e = doc.find(end_marker);
  ASSERT_NE(b, std::string::npos) << "begin marker missing from PORTING.md";
  ASSERT_NE(e, std::string::npos) << "end marker missing from PORTING.md";
  ASSERT_LT(b, e);
  const std::string embedded =
      doc.substr(b + begin_marker.size(), e - (b + begin_marker.size()));
  EXPECT_EQ(trimmed(embedded), trimmed(md::capability_matrix_markdown()))
      << "docs/PORTING.md capability matrix is stale; regenerate it from "
         "machdep::capability_matrix_markdown()";
}
