// Execution tracing for Force programs.
//
// A lightweight per-process ring-buffer tracer: constructs record begin/end
// events (barrier episodes, critical sections, loop dispatches, async
// accesses) with nanosecond timestamps; the collected timeline exports to
// the Chrome trace-event JSON format (load via chrome://tracing or
// https://ui.perfetto.dev) so the interleaving of a Force program can be
// inspected visually.
//
// Recording is off unless a Tracer is installed, and the hot-path cost of
// the disabled case is one pointer test. Buffers are fixed-capacity rings:
// a long run keeps the most recent events rather than growing unboundedly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace force::util {

/// What a trace event describes. Kept small: the event payload is POD.
enum class TraceKind : std::uint8_t {
  kBarrier,       ///< one barrier episode (arrive -> release)
  kSection,       ///< a barrier section execution
  kCritical,      ///< a critical-section occupancy
  kLoopDispatch,  ///< one selfsched index grab (instant)
  kLoopRun,       ///< a whole DOALL participation
  kProduce,       ///< async produce (instant)
  kConsume,       ///< async consume (instant)
  kAskforGrant,   ///< one askfor grant (instant)
  kPhase          ///< user-named phase (Tracer::phase)
};

const char* trace_kind_name(TraceKind kind);

/// One event. `end_ns == begin_ns` marks an instant event.
struct TraceEvent {
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  TraceKind kind = TraceKind::kPhase;
  std::int32_t proc = 0;
  std::int64_t arg = 0;  ///< kind-specific (loop index, site hash, ...)
};

/// Per-process fixed-capacity ring of events. Single-writer (its process);
/// drained after the force joins.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void record(const TraceEvent& e);
  [[nodiscard]] std::size_t capacity() const { return events_.size(); }
  /// Number of events recorded over the ring's lifetime (may exceed
  /// capacity; the oldest are overwritten).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Events in record order (oldest first), at most `capacity`.
  [[nodiscard]] std::vector<TraceEvent> drain() const;

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t recorded_ = 0;
};

/// The tracer: one ring per process. Thread-safe under the Force model
/// (process p only writes ring p).
class Tracer {
 public:
  Tracer(int nproc, std::size_t events_per_process = 64 * 1024);

  /// Records a completed span or instant event for process `proc`.
  void record(int proc, TraceKind kind, std::int64_t begin_ns,
              std::int64_t end_ns, std::int64_t arg = 0);

  /// Convenience: an instant event stamped now.
  void instant(int proc, TraceKind kind, std::int64_t arg = 0);

  /// RAII span: records kind from construction to destruction.
  class Span {
   public:
    Span(Tracer* tracer, int proc, TraceKind kind, std::int64_t arg = 0);
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    Tracer* tracer_;
    int proc_;
    TraceKind kind_;
    std::int64_t arg_;
    std::int64_t begin_ns_;
  };

  [[nodiscard]] int nproc() const { return static_cast<int>(rings_.size()); }
  [[nodiscard]] std::uint64_t total_recorded() const;
  [[nodiscard]] std::vector<TraceEvent> all_events() const;

  /// Chrome trace-event JSON ("traceEvents" array; X events for spans,
  /// i events for instants; one tid per Force process).
  [[nodiscard]] std::string to_chrome_json() const;
  /// Writes the JSON to `path`, creating parent directories as needed;
  /// returns false (with the errno reported on stderr) on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

}  // namespace force::util
