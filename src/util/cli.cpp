#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace force::util {

CliParser& CliParser::option(const std::string& name,
                             const std::string& default_value,
                             const std::string& help) {
  Option opt;
  opt.value = default_value;
  opt.default_value = default_value;
  opt.help = help;
  options_[name] = std::move(opt);
  return *this;
}

CliParser& CliParser::flag(const std::string& name, const std::string& help) {
  Option opt;
  opt.value = "false";
  opt.default_value = "false";
  opt.help = help;
  opt.is_flag = true;
  options_[name] = std::move(opt);
  return *this;
}

CliParser& CliParser::optional_value_option(const std::string& name,
                                            const std::string& implicit_value,
                                            const std::string& help) {
  Option opt;
  opt.implicit_value = implicit_value;
  opt.help = help;
  opt.optional_value = true;
  options_[name] = std::move(opt);
  return *this;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(name);
    FORCE_CHECK(it != options_.end(), "unknown option --" + name);
    Option& opt = it->second;
    if (opt.is_flag) {
      FORCE_CHECK(!has_value || value == "true" || value == "false",
                  "flag --" + name + " takes no value");
      opt.value = has_value ? value : "true";
    } else if (has_value) {
      opt.value = value;
    } else if (opt.optional_value) {
      opt.value = opt.implicit_value;
    } else {
      FORCE_CHECK(i + 1 < argc, "option --" + name + " needs a value");
      opt.value = argv[++i];
    }
    opt.seen = true;
  }
  return true;
}

const CliParser::Option& CliParser::lookup(const std::string& name) const {
  auto it = options_.find(name);
  FORCE_CHECK(it != options_.end(), "option --" + name + " not registered");
  return it->second;
}

std::string CliParser::get(const std::string& name) const {
  return lookup(name).value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string& v = lookup(name).value;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  FORCE_CHECK(end == v.c_str() + v.size() && !v.empty(),
              "option --" + name + " is not an integer: " + v);
  return parsed;
}

double CliParser::get_double(const std::string& name) const {
  const std::string& v = lookup(name).value;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  FORCE_CHECK(end == v.c_str() + v.size() && !v.empty(),
              "option --" + name + " is not a number: " + v);
  return parsed;
}

bool CliParser::get_flag(const std::string& name) const {
  return lookup(name).value == "true";
}

bool CliParser::seen(const std::string& name) const {
  return lookup(name).seen;
}

std::string CliParser::usage(const std::string& program) const {
  std::string out = "usage: " + program + " [options]\n";
  for (const auto& [name, opt] : options_) {
    out += "  --" + name;
    if (opt.optional_value) {
      out += "[=<" + opt.implicit_value + ">]";
    } else if (!opt.is_flag) {
      out += "=<" + (opt.default_value.empty() ? std::string("value")
                                               : opt.default_value) + ">";
    }
    out += "\n      " + opt.help + "\n";
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    std::string token = s.substr(start, comma - start);
    // trim
    while (!token.empty() && (token.front() == ' ' || token.front() == '\t'))
      token.erase(token.begin());
    while (!token.empty() && (token.back() == ' ' || token.back() == '\t'))
      token.pop_back();
    if (!token.empty()) out.push_back(std::move(token));
    if (comma == s.size()) break;
    start = comma + 1;
  }
  return out;
}

std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  for (const auto& tok : split_csv(s)) {
    char* end = nullptr;
    const long parsed = std::strtol(tok.c_str(), &end, 10);
    FORCE_CHECK(end == tok.c_str() + tok.size(),
                "not an integer in list: " + tok);
    out.push_back(static_cast<int>(parsed));
  }
  return out;
}

}  // namespace force::util
