// Wall-clock timing helpers for tests and benchmarks.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace force::util {

/// Monotonic nanosecond timestamp.
std::int64_t now_ns();

/// Simple start/stop wall timer; restartable, accumulating.
class WallTimer {
 public:
  WallTimer() = default;

  void start();
  /// Stops the timer and adds the elapsed span to the accumulated total.
  void stop();
  void reset();

  /// Accumulated time across all start/stop spans (plus the live span if
  /// the timer is currently running).
  [[nodiscard]] std::int64_t elapsed_ns() const;
  [[nodiscard]] double elapsed_s() const;
  [[nodiscard]] bool running() const { return running_; }

 private:
  std::int64_t accumulated_ns_ = 0;
  std::int64_t start_ns_ = 0;
  bool running_ = false;
};

/// RAII span that adds its lifetime to a WallTimer.
class ScopedTimer {
 public:
  explicit ScopedTimer(WallTimer& t) : timer_(t) { timer_.start(); }
  ~ScopedTimer() { timer_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  WallTimer& timer_;
};

/// Formats a nanosecond duration with an adaptive unit ("1.23 ms").
std::string format_duration_ns(double ns);

/// Busy-spins for roughly `ns` nanoseconds; used by benchmarks to model
/// computational grain without touching memory. Returns a value that
/// depends on the spin so the loop cannot be optimized away.
std::uint64_t spin_for_ns(std::int64_t ns);

}  // namespace force::util
