// Deterministic pseudo-random number generation.
//
// Benchmarks and property tests need reproducible streams that can be
// split per process without correlation; we use SplitMix64 for seeding and
// xoshiro256** as the workhorse generator (both public-domain algorithms).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace force::util {

/// SplitMix64: tiny generator used to expand a single seed into the state
/// of a larger generator. Passes BigCrush when used as designed.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator with jump support so
/// each Force process can own a provably disjoint substream.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Advances 2^128 steps; used to derive per-process substreams.
  void jump();

  /// Returns a generator jumped `n` times past this one (this one is not
  /// modified). Substream i for process i.
  [[nodiscard]] Xoshiro256 substream(unsigned n) const;

  /// Uniform double in [0, 1).
  double uniform01();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive), lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (no cached second value; keeps the
  /// generator state a pure function of draw count).
  double normal();
  /// Lognormal with the given log-space mu and sigma.
  double lognormal(double mu, double sigma);
  /// Exponential with rate lambda.
  double exponential(double lambda);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace force::util
