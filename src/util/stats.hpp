// Summary statistics for benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace force::util {

/// Online mean/variance/min/max via Welford's algorithm; O(1) space.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(n_); }

  [[nodiscard]] std::string summary() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every sample; supports exact percentiles. Use for per-iteration
/// latency distributions in benches.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Exact percentile by nearest-rank; p in [0,100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  // Sorted lazily, cached; mutable because percentile() is logically const.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins. Used to visualize load-imbalance distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  /// ASCII rendering, one line per bin.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Relative load imbalance of a per-process work vector:
///   max(work)/mean(work) - 1. Zero means perfectly balanced.
double load_imbalance(const std::vector<double>& per_process_work);

}  // namespace force::util
