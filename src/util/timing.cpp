#include "util/timing.hpp"

#include <array>
#include <cstdio>

#include "util/check.hpp"

namespace force::util {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void WallTimer::start() {
  FORCE_CHECK(!running_, "WallTimer started twice");
  start_ns_ = now_ns();
  running_ = true;
}

void WallTimer::stop() {
  FORCE_CHECK(running_, "WallTimer stopped while not running");
  accumulated_ns_ += now_ns() - start_ns_;
  running_ = false;
}

void WallTimer::reset() {
  accumulated_ns_ = 0;
  running_ = false;
}

std::int64_t WallTimer::elapsed_ns() const {
  std::int64_t total = accumulated_ns_;
  if (running_) total += now_ns() - start_ns_;
  return total;
}

double WallTimer::elapsed_s() const {
  return static_cast<double>(elapsed_ns()) * 1e-9;
}

std::string format_duration_ns(double ns) {
  struct Unit {
    double scale;
    const char* suffix;
  };
  static constexpr std::array<Unit, 4> units{{
      {1e9, "s"}, {1e6, "ms"}, {1e3, "us"}, {1.0, "ns"}}};
  for (const auto& u : units) {
    if (ns >= u.scale || u.scale == 1.0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f %s", ns / u.scale, u.suffix);
      return buf;
    }
  }
  return "0 ns";
}

std::uint64_t spin_for_ns(std::int64_t ns) {
  const std::int64_t deadline = now_ns() + ns;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  do {
    // A few dependent ALU ops per poll keeps the clock-read frequency low.
    for (int i = 0; i < 32; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
  } while (now_ns() < deadline);
  return x;
}

}  // namespace force::util
