#include "util/trace.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/check.hpp"
#include "util/timing.hpp"

namespace force::util {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kBarrier: return "barrier";
    case TraceKind::kSection: return "barrier-section";
    case TraceKind::kCritical: return "critical";
    case TraceKind::kLoopDispatch: return "loop-dispatch";
    case TraceKind::kLoopRun: return "doall";
    case TraceKind::kProduce: return "produce";
    case TraceKind::kConsume: return "consume";
    case TraceKind::kAskforGrant: return "askfor-grant";
    case TraceKind::kPhase: return "phase";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity) : events_(capacity) {
  FORCE_CHECK(capacity > 0, "trace ring needs capacity");
}

void TraceRing::record(const TraceEvent& e) {
  events_[recorded_ % events_.size()] = e;
  ++recorded_;
}

std::vector<TraceEvent> TraceRing::drain() const {
  std::vector<TraceEvent> out;
  const std::uint64_t n =
      std::min<std::uint64_t>(recorded_, events_.size());
  out.reserve(static_cast<std::size_t>(n));
  const std::uint64_t first = recorded_ - n;
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(events_[(first + i) % events_.size()]);
  }
  return out;
}

Tracer::Tracer(int nproc, std::size_t events_per_process) {
  FORCE_CHECK(nproc > 0, "tracer needs at least one process");
  rings_.reserve(static_cast<std::size_t>(nproc));
  for (int p = 0; p < nproc; ++p) {
    rings_.push_back(std::make_unique<TraceRing>(events_per_process));
  }
}

void Tracer::record(int proc, TraceKind kind, std::int64_t begin_ns,
                    std::int64_t end_ns, std::int64_t arg) {
  FORCE_CHECK(proc >= 0 && proc < nproc(), "trace process id out of range");
  TraceEvent e;
  e.begin_ns = begin_ns;
  e.end_ns = end_ns;
  e.kind = kind;
  e.proc = proc;
  e.arg = arg;
  rings_[static_cast<std::size_t>(proc)]->record(e);
}

void Tracer::instant(int proc, TraceKind kind, std::int64_t arg) {
  const std::int64_t now = now_ns();
  record(proc, kind, now, now, arg);
}

Tracer::Span::Span(Tracer* tracer, int proc, TraceKind kind,
                   std::int64_t arg)
    : tracer_(tracer),
      proc_(proc),
      kind_(kind),
      arg_(arg),
      begin_ns_(now_ns()) {}

Tracer::Span::~Span() {
  if (tracer_ != nullptr) {
    tracer_->record(proc_, kind_, begin_ns_, now_ns(), arg_);
  }
}

std::uint64_t Tracer::total_recorded() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->recorded();
  return n;
}

std::vector<TraceEvent> Tracer::all_events() const {
  std::vector<TraceEvent> out;
  for (const auto& r : rings_) {
    auto v = r->drain();
    out.insert(out.end(), v.begin(), v.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.begin_ns < b.begin_ns;
            });
  return out;
}

std::string Tracer::to_chrome_json() const {
  // Chrome trace format: timestamps/durations in microseconds (doubles).
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& e : all_events()) {
    if (!first) out += ",\n";
    first = false;
    const double ts_us = static_cast<double>(e.begin_ns) / 1000.0;
    const double dur_us =
        static_cast<double>(e.end_ns - e.begin_ns) / 1000.0;
    char buf[256];
    if (e.end_ns > e.begin_ns) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                    "\"dur\":%.3f,\"pid\":1,\"tid\":%d,"
                    "\"args\":{\"arg\":%lld}}",
                    trace_kind_name(e.kind), ts_us, dur_us, e.proc + 1,
                    static_cast<long long>(e.arg));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,"
                    "\"pid\":1,\"tid\":%d,\"s\":\"t\","
                    "\"args\":{\"arg\":%lld}}",
                    trace_kind_name(e.kind), ts_us, e.proc + 1,
                    static_cast<long long>(e.arg));
    }
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  // Trace paths often point into a not-yet-existing artifact directory
  // (CI uploads, bench output dirs); create it rather than failing.
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  errno = 0;
  std::ofstream f(path, std::ios::binary);
  if (!f.good()) {
    std::fprintf(stderr, "[force.trace] cannot open %s: %s\n", path.c_str(),
                 errno != 0 ? std::strerror(errno) : "unknown error");
    return false;
  }
  f << to_chrome_json();
  f.flush();
  if (!f.good()) {
    std::fprintf(stderr, "[force.trace] short write to %s: %s\n",
                 path.c_str(),
                 errno != 0 ? std::strerror(errno) : "unknown error");
    return false;
  }
  return true;
}

}  // namespace force::util
