// Minimal command-line option parsing for examples and bench harnesses.
//
// Supports --name=value, --name value, and boolean --flag forms plus
// positional arguments. Unknown options are an error so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace force::util {

class CliParser {
 public:
  /// Registers an option. `help` is shown by usage(). Options are
  /// string-typed at registration; typed getters convert on access.
  CliParser& option(const std::string& name, const std::string& default_value,
                    const std::string& help);
  CliParser& flag(const std::string& name, const std::string& help);
  /// An option whose value is optional: bare `--name` takes
  /// `implicit_value` (the next argv word is NOT consumed), `--name=x`
  /// takes x. Use seen() to distinguish "absent" from the implicit value.
  CliParser& optional_value_option(const std::string& name,
                                   const std::string& implicit_value,
                                   const std::string& help);

  /// Parses argv; throws util::CheckError on unknown options or a missing
  /// value. Returns false if --help was requested (usage already printed).
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;
  /// True if the option appeared on the command line at all.
  [[nodiscard]] bool seen(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  struct Option {
    std::string value;
    std::string default_value;
    std::string implicit_value;
    std::string help;
    bool is_flag = false;
    bool optional_value = false;
    bool seen = false;
  };
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;

  const Option& lookup(const std::string& name) const;
};

/// Splits "a,b,c" into trimmed tokens; empty input yields empty vector.
std::vector<std::string> split_csv(const std::string& s);

/// Parses a comma-separated list of integers such as "1,2,4,8".
std::vector<int> parse_int_list(const std::string& s);

}  // namespace force::util
