// Lightweight runtime checking used throughout the library.
//
// FORCE_CHECK is always on (it guards user-facing invariants such as
// "produce on a full async variable must block, not corrupt"); FORCE_DCHECK
// compiles out in NDEBUG builds and guards internal invariants.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <source_location>
#include <stdexcept>
#include <string>

namespace force::util {

/// Thrown by FORCE_CHECK failures and by API misuse detected at run time.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void check_failed(
    const char* expr, const std::string& msg,
    std::source_location loc = std::source_location::current()) {
  std::string full = std::string("FORCE_CHECK failed: (") + expr + ") " + msg +
                     " at " + loc.file_name() + ":" + std::to_string(loc.line());
  throw CheckError(full);
}

}  // namespace force::util

#define FORCE_CHECK(expr, msg)                          \
  do {                                                  \
    if (!(expr)) ::force::util::check_failed(#expr, msg); \
  } while (0)

#ifdef NDEBUG
#define FORCE_DCHECK(expr, msg) ((void)0)
#else
#define FORCE_DCHECK(expr, msg) FORCE_CHECK(expr, msg)
#endif
