#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/check.hpp"

namespace force::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::mean() const { return n_ ? mean_ : 0.0; }

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }
double OnlineStats::min() const { return min_; }
double OnlineStats::max() const { return max_; }

std::string OnlineStats::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.4g sd=%.4g min=%.4g max=%.4g", n_, mean(),
                stddev(), min_, max_);
  return buf;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::percentile(double p) const {
  FORCE_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range");
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto n = samples_.size();
  // Nearest-rank definition.
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return samples_[rank - 1];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  FORCE_CHECK(hi > lo, "Histogram requires hi > lo");
  FORCE_CHECK(bins > 0, "Histogram requires at least one bin");
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(
      frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  FORCE_CHECK(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  const double bin_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "[%9.3g,%9.3g) %8zu ",
                  lo_ + bin_width * static_cast<double>(i),
                  lo_ + bin_width * static_cast<double>(i + 1), counts_[i]);
    out += label;
    const std::size_t bar =
        peak ? counts_[i] * width / peak : 0;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

double load_imbalance(const std::vector<double>& per_process_work) {
  if (per_process_work.empty()) return 0.0;
  const double total = std::accumulate(per_process_work.begin(),
                                       per_process_work.end(), 0.0);
  const double mean = total / static_cast<double>(per_process_work.size());
  if (mean <= 0.0) return 0.0;
  const double peak =
      *std::max_element(per_process_work.begin(), per_process_work.end());
  return peak / mean - 1.0;
}

}  // namespace force::util
