// ASCII table rendering for benchmark reports.
//
// Every experiment harness prints its results as a table with the same rows
// and series the corresponding paper claim talks about; this helper keeps
// those reports uniform and diff-friendly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace force::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with %.4g.
  static std::string num(double v);
  static std::string num(std::size_t v);
  static std::string num(std::int64_t v);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders with a header rule and column alignment (numbers look best
  /// right-aligned; we right-align cells that parse as numbers).
  [[nodiscard]] std::string render() const;

  /// Renders as CSV (for machine post-processing of bench output).
  [[nodiscard]] std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace force::util
