#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace force::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FORCE_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  FORCE_CHECK(cells.size() == headers_.size(),
              "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string Table::num(std::size_t v) { return std::to_string(v); }
std::string Table::num(std::int64_t v) { return std::to_string(v); }

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}
}  // namespace

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += (c == 0) ? "| " : " | ";
      const std::size_t pad = width[c] - row[c].size();
      if (looks_numeric(row[c])) {
        out.append(pad, ' ');
        out += row[c];
      } else {
        out += row[c];
        out.append(pad, ' ');
      }
    }
    out += " |\n";
  };

  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += (c == 0) ? "|-" : "-|-";
    out.append(width[c], '-');
  }
  out += "-|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::render_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += quote(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += quote(row[c]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace force::util
