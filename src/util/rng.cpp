#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace force::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::array<std::uint64_t, 4> kJump{
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> t{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        t[0] ^= s_[0];
        t[1] ^= s_[1];
        t[2] ^= s_[2];
        t[3] ^= s_[3];
      }
      next();
    }
  }
  s_ = t;
}

Xoshiro256 Xoshiro256::substream(unsigned n) const {
  Xoshiro256 g = *this;
  for (unsigned i = 0; i < n; ++i) g.jump();
  return g;
}

double Xoshiro256::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) {
  FORCE_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Debiased modulo (Lemire-style rejection is overkill here).
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Xoshiro256::normal() {
  // Box-Muller; draw u1 away from 0 to keep log finite.
  double u1 = uniform01();
  while (u1 <= 1e-300) u1 = uniform01();
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Xoshiro256::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

double Xoshiro256::exponential(double lambda) {
  FORCE_CHECK(lambda > 0.0, "exponential requires lambda > 0");
  double u = uniform01();
  while (u <= 1e-300) u = uniform01();
  return -std::log(u) / lambda;
}

}  // namespace force::util
