// Pass 1: the "sed" stage (paper §4.3).
//
// "The stream editor sed translates the Force syntax into parameterized
// function macros." This pass is deliberately dumb and stateless, exactly
// like a sed script: each source line either matches one Force statement
// pattern and is rewritten into a @macro(...) call line, or passes through
// untouched (computational statements are written in C++ in this dialect).
//
// The statement grammar (case-insensitive keywords):
//
//   Force NAME                         main program header
//   Forcesub NAME / End Forcesub       parallel subroutine
//   Externf NAME                       external subroutine declaration
//   Forcecall NAME                     call a parallel subroutine
//   End declarations                   end of declaration section
//   Shared  <type> v[(d[,d])] [, ...]  shared variable(s)
//   Private <type> v[(d[,d])] [, ...]  private variable(s)
//   Async   <type> v [, ...]           asynchronous variable(s)
//   Barrier / End barrier              barrier with section
//   Critical NAME / End critical       named critical section
//   Presched  DO <label> v = a, b[, c] prescheduled loop
//   <label> End Presched DO
//   Selfsched DO <label> v = a, b[, c] selfscheduled loop
//   <label> End Selfsched DO
//   Pcase [Selfsched] / Usect / Csect (cond) / End pcase
//   Produce v = expr                   write-and-fill
//   Consume v into x                   read-and-empty
//   Copy v into x                      read-keeping-full
//   Void v                             force empty
//   Isfull v into x                    state test
//   Join                               end of main program
//   !...                               comment
//
// <type> is integer | real | logical | double precision.
#pragma once

#include <string>
#include <vector>

#include "preproc/diag.hpp"

namespace force::preproc {

struct RewriteResult {
  std::vector<std::string> lines;  ///< @macro calls and passthrough lines
  std::vector<int> origin;         ///< 1-based source line per output line
};

/// Rewrites Force-dialect source text into macro-call form.
RewriteResult rewrite_force_syntax(const std::string& source, DiagSink& diags);

/// Single-line rule application (exposed for unit tests): returns the
/// rewritten line(s) for one source line.
std::vector<std::string> rewrite_line(const std::string& line, int lineno,
                                      DiagSink& diags);

}  // namespace force::preproc
