// The two macro layers of the Force implementation (paper §4.1, §4.2).
//
// install_statement_macros() registers the machine-INDEPENDENT layer: the
// statement macros that translate Force constructs into C++ runtime calls
// plus calls on the lower layer, and the internal bookkeeping they need
// (construct nesting, module boundaries, declaration manifests).
//
// install_machine_macros() registers the machine-DEPENDENT layer for one
// target: the @md_* macros for variable binding and the driver fragments.
// Porting forcepp to a new machine means writing exactly this set - the
// paper's central claim, reproduced.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "preproc/diag.hpp"
#include "preproc/macro.hpp"

namespace force::preproc {

/// One declared variable of a Force module.
struct VarInfo {
  std::string force_type;            ///< integer | real | ...
  std::string cpp_type;              ///< std::int64_t | double | ...
  std::string name;
  std::vector<std::string> dims;     ///< empty for scalars
  char cls = 's';                    ///< 's'hared | 'p'rivate | 'a'sync

  /// Full C++ type including array nesting.
  [[nodiscard]] std::string full_cpp_type() const;
};

/// One Force module (the main program or a Forcesub).
struct ModuleInfo {
  std::string name;
  bool is_main = false;
  std::vector<VarInfo> variables;

  [[nodiscard]] std::vector<VarInfo> shared_variables() const;
};

/// Translator state threaded through the native macros ("storing and
/// retrieving definitions" across the expansion).
struct TranslateContext {
  std::string machine = "native";
  bool needs_startup = false;  ///< link-time / run-time sharing machines
  std::vector<ModuleInfo> modules;
  int current_module = -1;  ///< index into modules; -1 = outside any module
  std::vector<std::string> externfs;
  /// Askfor label -> C++ task type, pre-scanned before expansion so that
  /// Seedwork statements (which textually precede their block) agree with
  /// the block's task type.
  std::map<std::string, std::string> askfor_types;

  // Construct nesting ("barrier", "critical", "pcase", "do:<label>",
  // "module").
  std::vector<std::string> block_stack;
  bool pcase_sect_open = false;
  std::string pcase_mode;  // "presched" | "selfsched"
  bool main_seen = false;
  bool join_seen = false;

  [[nodiscard]] ModuleInfo* current();
  [[nodiscard]] std::string indent() const;  ///< per nesting depth
  void record_var(VarInfo v, int line, DiagSink& diags);
};

/// Maps a Force type name to C++ ("integer" -> "std::int64_t", ...);
/// empty string if unknown.
std::string map_force_type(const std::string& force_type);

/// Registers the machine-independent statement macros. `ctx` must outlive
/// the processor.
void install_statement_macros(MacroProcessor& mp, TranslateContext& ctx);

/// Registers the machine-dependent macro set for `machine` (a name from
/// machdep::machine_names()). Also sets ctx.machine / ctx.needs_startup.
void install_machine_macros(MacroProcessor& mp, TranslateContext& ctx,
                            const std::string& machine);

}  // namespace force::preproc
