// Driver and startup-routine generation (paper §4.1.1, §4.1.2).
//
// "The processes are created in a Force driver which is generated when the
// program is preprocessed" - generate_epilogue() emits that driver as a
// C++ main(): it builds the ForceConfig for the target machine, wires the
// startup routines (on machines that share at link or run time), registers
// the Force subroutines, runs the main body on the force, and joins.
//
// generate_startup_routines() emits one startup routine per module on the
// machines that need them: the routine declares the module's shared
// variables into the arena, and the main program's startup is the one the
// driver runs first - the Sequent "two-run" structure.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "preproc/machmacros.hpp"

namespace force::preproc {

struct TranslateOptions {
  std::string machine = "native";
  int default_nproc = 4;
  std::string source_name = "<input>";
  bool emit_pass1 = false;  ///< also keep the pass-1 intermediate text
  /// Module mode: the source contains only Forcesubs (no Force main, no
  /// Join); no driver is generated. Instead each subroutine gets an
  /// exported registration function `force_register_<NAME>(force::Force&)`
  /// that the main translation unit's driver calls for every Externf -
  /// the paper's separately compiled Force subroutines (§4.2 Externf).
  bool module_mode = false;
  /// Run forcelint (preproc/lint.hpp) over the source before translating.
  bool lint = false;
  /// The `--lint=` spec: rule subset and W/E severity (empty = all, W).
  std::string lint_spec;
  /// Extra translation units for whole-program lint (`--lint-units=`):
  /// (name, source) pairs linted together with the primary source so
  /// Forcecall sites resolve across files. Only lint sees these; the
  /// translator proper still translates one unit at a time.
  std::vector<std::pair<std::string, std::string>> lint_units;
  /// Render the machine-readable lint report into
  /// TranslationResult::lint_report_json (`--lint-report=`). Implies lint.
  bool lint_report = false;
  /// Promote every warning (lint findings included) to an error.
  bool werror = false;
  /// Process backend baked into the generated driver: empty keeps the
  /// machine's thread-emulated model; "os-fork" runs the force as real
  /// fork(2) children over a MAP_SHARED arena (docs/PORTING.md).
  std::string process_model;
  /// Bake `config.team_pool = true` into the driver: the team parks
  /// between force entries instead of being created/joined per run
  /// (docs/PORTING.md, team-lifetime axis).
  bool team_pool = false;
  /// With team_pool, bake an N:M worker count into the driver (0 = one
  /// worker per member). Thread-backed process models only.
  int pool_workers = 0;
};

/// File header: banner + includes.
std::string generate_prologue(const TranslateContext& ctx,
                              const TranslateOptions& opts);

/// Startup routines for every module (empty string on compile-time-sharing
/// machines, which need none).
std::string generate_startup_routines(const TranslateContext& ctx);

/// The machine-dependent driver main().
std::string generate_driver(const TranslateContext& ctx,
                            const TranslateOptions& opts);

/// Module mode: exported registration functions, one per subroutine,
/// wiring its startup routine (when the machine needs one) and its body
/// into a Force instance built elsewhere.
std::string generate_module_registrations(const TranslateContext& ctx);

}  // namespace force::preproc
