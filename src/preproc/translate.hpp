// The complete forcepp pipeline (paper §4.3).
//
// "In a UNIX environment, the compilation of Force programs proceeds in
// three steps: sed translates the Force syntax into parameterized function
// macros; the macro processor m4 replaces the function macros with
// [target-language] code and the language extensions supporting parallel
// programming, in two steps; the machine dependent driver module is put at
// the beginning of the code; finally the manufacturer provided compiler
// processes the macro expanded code."
//
// translate() runs exactly that pipeline and returns a compilable C++
// translation unit targeting the force runtime library.
#pragma once

#include <string>

#include "preproc/diag.hpp"
#include "preproc/driver_gen.hpp"

namespace force::preproc {

struct TranslationResult {
  bool ok = false;
  std::string cpp_code;     ///< complete translation unit
  std::string pass1_text;   ///< intermediate macro-call form (if requested)
  DiagSink diags;
  std::size_t macro_expansions = 0;
  TranslateContext context;  ///< symbol/module information for tooling
  /// The machine-readable lint report (options.lint_report): findings,
  /// per-routine effect summaries and the process-model compatibility
  /// matrix. Rendered even when translation fails, so a gate can consume
  /// it either way. Empty when no report was requested.
  std::string lint_report_json;
};

/// Translates Force-dialect source for one target machine.
TranslationResult translate(const std::string& source,
                            const TranslateOptions& options);

}  // namespace force::preproc
