#include "preproc/pass1.hpp"

#include "preproc/textutil.hpp"

namespace force::preproc {

namespace {

bool known_type(const std::string& lower) {
  return lower == "integer" || lower == "real" || lower == "logical" ||
         lower == "double precision" || lower == "double";
}

/// Parses "<type> name(dims), name2, ..." after Shared/Private/Async and
/// emits one @<macro>(type, name, dims...) per declarator.
std::vector<std::string> rewrite_decl(const std::string& macro,
                                      const std::string& rest, int lineno,
                                      DiagSink& diags) {
  // The type is one word, except "double precision".
  std::string type;
  std::string items;
  if (auto dp = match_keywords(rest, {"double", "precision"})) {
    type = "double precision";
    items = *dp;
  } else {
    const std::size_t space = rest.find_first_of(" \t");
    if (space == std::string::npos) {
      diags.error(lineno, "declaration needs a type and a variable list");
      return {};
    }
    type = to_lower(trim(rest.substr(0, space)));
    items = trim(rest.substr(space));
  }
  if (!known_type(type)) {
    diags.error(lineno, "unknown Force type '" + type + "'");
    return {};
  }

  std::vector<std::string> out;
  for (const auto& item : split_args(items)) {
    std::string name = item;
    std::string dims;
    if (auto paren = item.find('('); paren != std::string::npos) {
      if (item.back() != ')') {
        diags.error(lineno, "malformed array declarator: " + item);
        continue;
      }
      name = trim(item.substr(0, paren));
      dims = trim(item.substr(paren + 1, item.size() - paren - 2));
    }
    if (!is_identifier(name)) {
      diags.error(lineno, "bad variable name: " + name);
      continue;
    }
    std::string call = "@" + macro + "(" + type + ", " + name;
    for (const auto& dim : split_args(dims)) call += ", " + dim;
    call += ")";
    out.push_back(std::move(call));
  }
  if (out.empty()) diags.error(lineno, "empty declaration");
  return out;
}

/// Parses one "v = a, b[, c]" loop control; returns {var,a,b,c} or empty.
std::vector<std::string> parse_loop_control(const std::string& text,
                                            int lineno, DiagSink& diags) {
  const std::size_t eq = text.find('=');
  if (eq == std::string::npos) {
    diags.error(lineno, "loop control needs 'var = start, last[, incr]'");
    return {};
  }
  const std::string var = trim(text.substr(0, eq));
  if (!is_identifier(var)) {
    diags.error(lineno, "bad DO variable: " + var);
    return {};
  }
  auto bounds = split_args(text.substr(eq + 1));
  if (bounds.size() != 2 && bounds.size() != 3) {
    diags.error(lineno, "loop control needs 2 or 3 bounds");
    return {};
  }
  if (bounds.size() == 2) bounds.push_back("1");
  return {var, bounds[0], bounds[1], bounds[2]};
}

/// Parses "<label> v = a, b[, c] ; w = d, e[, f]" after a DO2 keyword.
std::vector<std::string> rewrite_do2(const std::string& macro,
                                     const std::string& rest, int lineno,
                                     DiagSink& diags) {
  const LabeledLine ll = split_label(rest);
  if (!ll.label) {
    diags.error(lineno, "DO2 statement needs a label: " + rest);
    return {};
  }
  const std::size_t semi = ll.rest.find(';');
  if (semi == std::string::npos) {
    diags.error(lineno,
                "DO2 needs two ';'-separated loop controls: " + ll.rest);
    return {};
  }
  const auto outer =
      parse_loop_control(trim(ll.rest.substr(0, semi)), lineno, diags);
  const auto inner =
      parse_loop_control(trim(ll.rest.substr(semi + 1)), lineno, diags);
  if (outer.empty() || inner.empty()) return {};
  std::string call = "@" + macro + "(" + std::to_string(*ll.label);
  for (const auto& part : outer) call += ", " + part;
  for (const auto& part : inner) call += ", " + part;
  call += ")";
  return {call};
}

/// Parses "<label> v = a, b[, c]" after Presched/Selfsched DO.
std::vector<std::string> rewrite_do(const std::string& macro,
                                    const std::string& rest, int lineno,
                                    DiagSink& diags) {
  const LabeledLine ll = split_label(rest);
  if (!ll.label) {
    diags.error(lineno, "DO statement needs a label: " + rest);
    return {};
  }
  const std::size_t eq = ll.rest.find('=');
  if (eq == std::string::npos) {
    diags.error(lineno, "DO statement needs 'var = start, last[, incr]'");
    return {};
  }
  const std::string var = trim(ll.rest.substr(0, eq));
  if (!is_identifier(var)) {
    diags.error(lineno, "bad DO variable: " + var);
    return {};
  }
  auto bounds = split_args(ll.rest.substr(eq + 1));
  if (bounds.size() != 2 && bounds.size() != 3) {
    diags.error(lineno, "DO statement needs 2 or 3 bounds");
    return {};
  }
  if (bounds.size() == 2) bounds.push_back("1");
  return {"@" + macro + "(" + std::to_string(*ll.label) + ", " + var + ", " +
          bounds[0] + ", " + bounds[1] + ", " + bounds[2] + ")"};
}

/// "v = expr" split for Produce.
std::vector<std::string> rewrite_produce(const std::string& rest, int lineno,
                                         DiagSink& diags) {
  const std::size_t eq = rest.find('=');
  if (eq == std::string::npos) {
    diags.error(lineno, "Produce needs 'var = expression'");
    return {};
  }
  const std::string var = trim(rest.substr(0, eq));
  const std::string expr = trim(rest.substr(eq + 1));
  if (!is_identifier(var) || expr.empty()) {
    diags.error(lineno, "malformed Produce statement");
    return {};
  }
  return {"@produce(" + var + ", " + expr + ")"};
}

/// "v into x" split for Consume/Copy/Isfull.
std::vector<std::string> rewrite_into(const std::string& macro,
                                      const std::string& rest, int lineno,
                                      DiagSink& diags) {
  // Find the "into" keyword.
  const std::string lower = to_lower(rest);
  const std::size_t pos = lower.find(" into ");
  if (pos == std::string::npos) {
    diags.error(lineno, macro + " needs 'var into target'");
    return {};
  }
  const std::string var = trim(rest.substr(0, pos));
  const std::string target = trim(rest.substr(pos + 6));
  if (!is_identifier(var) || target.empty()) {
    diags.error(lineno, "malformed " + macro + " statement");
    return {};
  }
  return {"@" + macro + "(" + var + ", " + target + ")"};
}

}  // namespace

std::vector<std::string> rewrite_line(const std::string& line, int lineno,
                                      DiagSink& diags) {
  const std::string t = trim(line);
  if (t.empty()) return {line};
  if (t[0] == '!') return {"// " + trim(t.substr(1))};

  // End-of-construct forms first (they start with labels or "End").
  const LabeledLine ll = split_label(t);
  if (ll.label) {
    if (match_keywords(ll.rest, {"End", "Askfor"})) {
      return {"@end_askfor(" + std::to_string(*ll.label) + ")"};
    }
    if (match_keywords(ll.rest, {"End", "Presched", "DO2"})) {
      return {"@end_presched_do2(" + std::to_string(*ll.label) + ")"};
    }
    if (match_keywords(ll.rest, {"End", "Selfsched", "DO2"})) {
      return {"@end_selfsched_do2(" + std::to_string(*ll.label) + ")"};
    }
    if (match_keywords(ll.rest, {"End", "Guided", "DO"})) {
      return {"@end_guided_do(" + std::to_string(*ll.label) + ")"};
    }
    if (match_keywords(ll.rest, {"End", "Presched", "DO"})) {
      return {"@end_presched_do(" + std::to_string(*ll.label) + ")"};
    }
    if (match_keywords(ll.rest, {"End", "Selfsched", "DO"})) {
      return {"@end_selfsched_do(" + std::to_string(*ll.label) + ")"};
    }
    diags.error(lineno, "labeled line is not an End DO: " + t);
    return {line};
  }
  if (match_keywords(t, {"End", "declarations"})) return {"@end_declarations()"};
  if (match_keywords(t, {"End", "barrier"})) return {"@barrier_end()"};
  if (match_keywords(t, {"End", "critical"})) return {"@critical_end()"};
  if (match_keywords(t, {"End", "pcase"})) return {"@pcase_end()"};
  if (match_keywords(t, {"End", "Forcesub"})) return {"@end_forcesub()"};

  if (auto rest = match_keyword(t, "Force")) {
    return {"@force_main(" + *rest + ")"};
  }
  if (auto rest = match_keyword(t, "Forcesub")) {
    return {"@forcesub(" + *rest + ")"};
  }
  if (auto rest = match_keyword(t, "Externf")) {
    return {"@externf(" + *rest + ")"};
  }
  if (auto rest = match_keyword(t, "Forcecall")) {
    return {"@forcecall(" + *rest + ")"};
  }
  if (auto rest = match_keyword(t, "Shared")) {
    return rewrite_decl("shared_decl", *rest, lineno, diags);
  }
  if (auto rest = match_keyword(t, "Private")) {
    return rewrite_decl("private_decl", *rest, lineno, diags);
  }
  if (auto rest = match_keyword(t, "Async")) {
    return rewrite_decl("async_decl", *rest, lineno, diags);
  }
  if (auto rest = match_keyword(t, "Barrier")) {
    if (rest->empty()) return {"@barrier_begin()"};
  }
  if (auto rest = match_keyword(t, "Critical")) {
    if (is_identifier(*rest)) return {"@critical_begin(" + *rest + ")"};
    diags.error(lineno, "Critical needs a lock name");
    return {line};
  }
  if (auto rest = match_keywords(t, {"Presched", "DO2"})) {
    return rewrite_do2("presched_do2", *rest, lineno, diags);
  }
  if (auto rest = match_keywords(t, {"Selfsched", "DO2"})) {
    return rewrite_do2("selfsched_do2", *rest, lineno, diags);
  }
  if (auto rest = match_keywords(t, {"Guided", "DO"})) {
    return rewrite_do("guided_do", *rest, lineno, diags);
  }
  if (auto rest = match_keywords(t, {"Presched", "DO"})) {
    return rewrite_do("presched_do", *rest, lineno, diags);
  }
  if (auto rest = match_keywords(t, {"Selfsched", "DO"})) {
    return rewrite_do("selfsched_do", *rest, lineno, diags);
  }
  if (auto rest = match_keyword(t, "Pcase")) {
    if (rest->empty()) return {"@pcase_begin(presched)"};
    if (match_keyword(*rest, "Selfsched")) return {"@pcase_begin(selfsched)"};
    diags.error(lineno, "Pcase takes nothing or 'Selfsched'");
    return {line};
  }
  if (auto rest = match_keyword(t, "Usect")) {
    if (rest->empty()) return {"@usect()"};
  }
  if (auto rest = match_keyword(t, "Csect")) {
    std::string cond = *rest;
    if (cond.size() >= 2 && cond.front() == '(' && cond.back() == ')') {
      cond = trim(cond.substr(1, cond.size() - 2));
    }
    if (cond.empty()) {
      diags.error(lineno, "Csect needs a (condition)");
      return {line};
    }
    return {"@csect(" + cond + ")"};
  }
  if (auto rest = match_keyword(t, "Askfor")) {
    // Askfor <label> VAR of <type>
    const LabeledLine al = split_label(*rest);
    if (!al.label) {
      diags.error(lineno, "Askfor needs a label: " + *rest);
      return {line};
    }
    const std::string lower = to_lower(al.rest);
    const std::size_t of = lower.find(" of ");
    if (of == std::string::npos) {
      diags.error(lineno, "Askfor needs '<label> var of <type>'");
      return {line};
    }
    const std::string var = trim(al.rest.substr(0, of));
    const std::string type = trim(al.rest.substr(of + 4));
    if (!is_identifier(var) || type.empty()) {
      diags.error(lineno, "malformed Askfor statement");
      return {line};
    }
    return {"@askfor_begin(" + std::to_string(*al.label) + ", " + var +
            ", " + type + ")"};
  }
  if (auto rest = match_keyword(t, "Seedwork")) {
    // Seedwork <label> <expr>   (executed by process 1, barrier after)
    const LabeledLine sl = split_label(*rest);
    if (!sl.label || sl.rest.empty()) {
      diags.error(lineno, "Seedwork needs '<label> <expression>'");
      return {line};
    }
    return {"@seedwork(" + std::to_string(*sl.label) + ", " + sl.rest + ")"};
  }
  if (auto rest = match_keyword(t, "Putwork")) {
    if (rest->empty()) {
      diags.error(lineno, "Putwork needs an expression");
      return {line};
    }
    return {"@putwork(" + *rest + ")"};
  }
  if (auto rest = match_keyword(t, "Probend")) {
    if (rest->empty()) return {"@probend()"};
    diags.error(lineno, "Probend takes no operand");
    return {line};
  }
  if (auto rest = match_keyword(t, "Lock")) {
    if (is_identifier(*rest)) return {"@rawlock(" + *rest + ")"};
    diags.error(lineno, "Lock needs a lock name");
    return {line};
  }
  if (auto rest = match_keyword(t, "Unlock")) {
    if (is_identifier(*rest)) return {"@rawunlock(" + *rest + ")"};
    diags.error(lineno, "Unlock needs a lock name");
    return {line};
  }
  if (auto rest = match_keyword(t, "Reduce")) {
    // Reduce <local-expr> into <shared-var> [with +|*|max|min]
    const std::string lower = to_lower(*rest);
    const std::size_t into = lower.find(" into ");
    if (into == std::string::npos) {
      diags.error(lineno, "Reduce needs '<expr> into <var> [with op]'");
      return {line};
    }
    const std::string expr = trim(rest->substr(0, into));
    std::string target = trim(rest->substr(into + 6));
    std::string op = "+";
    const std::string target_lower = to_lower(target);
    if (const std::size_t with = target_lower.find(" with ");
        with != std::string::npos) {
      op = trim(target.substr(with + 6));
      target = trim(target.substr(0, with));
    }
    if (expr.empty() || !is_identifier(target)) {
      diags.error(lineno, "malformed Reduce statement");
      return {line};
    }
    return {"@reduce_stmt(" + target + ", " + op + ", " + expr + ")"};
  }
  if (auto rest = match_keyword(t, "Produce")) {
    return rewrite_produce(*rest, lineno, diags);
  }
  if (auto rest = match_keyword(t, "Consume")) {
    return rewrite_into("consume", *rest, lineno, diags);
  }
  if (auto rest = match_keyword(t, "Copy")) {
    return rewrite_into("copyasync", *rest, lineno, diags);
  }
  if (auto rest = match_keyword(t, "Void")) {
    if (is_identifier(*rest)) return {"@voidasync(" + *rest + ")"};
    diags.error(lineno, "Void needs a variable name");
    return {line};
  }
  if (auto rest = match_keyword(t, "Isfull")) {
    return rewrite_into("isfull", *rest, lineno, diags);
  }
  if (auto rest = match_keyword(t, "Join")) {
    if (rest->empty()) return {"@join()"};
  }

  return {line};  // a computational statement: pass through
}

RewriteResult rewrite_force_syntax(const std::string& source,
                                   DiagSink& diags) {
  RewriteResult result;
  int lineno = 0;
  for (const auto& line : split_lines(source)) {
    ++lineno;
    for (auto& out : rewrite_line(line, lineno, diags)) {
      result.lines.push_back(std::move(out));
      result.origin.push_back(lineno);
    }
  }
  return result;
}

}  // namespace force::preproc
