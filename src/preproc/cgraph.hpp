// The construct graph: forcelint's intermediate representation.
//
// Pass 1 turns Force syntax into a stream of parameterized macro calls
// (@barrier_begin(), @selfsched_do(100, I, 0, 1023, 1), ...) interleaved
// with passthrough C++ lines. build_construct_graph() lowers that stream
// into a per-routine statement list with resolved construct kinds and a
// variable-class table (Shared/Private/Async) - the structure the lint
// rules (preproc/lint.{hpp,cpp}) walk. The translator proper never sees
// this IR; it exists so correctness questions ("is this write protected?",
// "can this barrier diverge?") are answered on a typed graph instead of
// text.
//
// LockOrderGraph is the static analogue of the runtime Sentry's
// acquisition-order graph (src/core/sentry.hpp): named critical sections
// and raw Lock/Unlock statements become nodes, "B acquired while A is
// held" becomes an edge A->B, and cycles() reports every strongly
// connected knot - the same inversion class the Sentry flags at run time,
// available at translate time.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "preproc/pass1.hpp"

namespace force::preproc {

enum class StmtKind {
  kPassthrough,   ///< a computational C++ line
  kComment,       ///< a rewritten ! comment
  kModuleBegin,   ///< Force NAME or Forcesub NAME
  kModuleEnd,     ///< End Forcesub
  kEndDeclarations,
  kSharedDecl, kPrivateDecl, kAsyncDecl,
  kExternf,
  kBarrierBegin, kBarrierEnd,
  kCriticalBegin, kCriticalEnd,
  kLock, kUnlock,
  kDoBegin, kDoEnd,    ///< presched/selfsched/guided DO and DO2
  kPcaseBegin, kUsect, kCsect, kPcaseEnd,
  kAskforBegin, kAskforEnd,
  kSeedwork, kPutwork, kProbend,
  kProduce, kConsume, kCopy, kVoid, kIsfull,
  kReduce,
  kForcecall,
  kJoin,
};

/// One lowered statement. `name` is the construct's identity when it has
/// one: the lock name for Critical/Lock, the variable for async ops, the
/// label for DO/Askfor, the target for Reduce, the module name for
/// ModuleBegin.
struct Stmt {
  StmtKind kind = StmtKind::kPassthrough;
  int line = 0;                    ///< 1-based source line
  std::string text;                ///< the pass-1 line
  std::string name;
  std::vector<std::string> args;   ///< raw macro arguments
  std::vector<std::string> index_vars;  ///< DO index variable(s)
};

enum class VarClass { kShared, kPrivate, kAsync };

struct LintVar {
  std::string name;
  std::string force_type;
  VarClass cls = VarClass::kShared;
  int decl_line = 0;
  bool is_array = false;
};

/// One Force module (the main program or a Forcesub) with its statements
/// and declared variables.
struct Routine {
  std::string name;
  bool is_main = false;
  int begin_line = 0;
  std::vector<Stmt> stmts;
  std::map<std::string, LintVar> vars;
};

struct ConstructGraph {
  std::vector<Routine> routines;
  std::vector<Stmt> toplevel;  ///< statements outside any routine
};

/// Lowers the pass-1 stream. Robust against malformed input: unknown
/// macro calls and unbalanced constructs degrade to passthrough/best
/// effort, never throw - pass1 has already diagnosed them.
ConstructGraph build_construct_graph(const RewriteResult& pass1);

/// The static lock-order graph (rule R4). Nodes are lock names; an edge
/// A->B means B was acquired somewhere while A was held.
struct LockOrderGraph {
  /// outer name -> inner name -> source line of the first such acquisition.
  std::map<std::string, std::map<std::string, int>> edges;

  void add_edge(const std::string& outer, const std::string& inner, int line);

  /// Every nontrivial strongly connected component (mutual-reachability
  /// knot) plus self-loops, as sorted lock-name lists, deterministically
  /// ordered. Each is a potential deadlock: some acquisition order within
  /// the set contradicts another.
  [[nodiscard]] std::vector<std::vector<std::string>> cycles() const;

  /// The latest source line among the edges internal to `cycle` - where a
  /// diagnostic for it should point.
  [[nodiscard]] int cycle_line(const std::vector<std::string>& cycle) const;
};

}  // namespace force::preproc
