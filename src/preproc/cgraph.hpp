// The construct graph: forcelint's intermediate representation.
//
// Pass 1 turns Force syntax into a stream of parameterized macro calls
// (@barrier_begin(), @selfsched_do(100, I, 0, 1023, 1), ...) interleaved
// with passthrough C++ lines. build_construct_graph() lowers that stream
// into a per-routine statement list with resolved construct kinds and a
// variable-class table (Shared/Private/Async) - the structure the lint
// rules (preproc/lint.{hpp,cpp}) walk. The translator proper never sees
// this IR; it exists so correctness questions ("is this write protected?",
// "can this barrier diverge?") are answered on a typed graph instead of
// text.
//
// LockOrderGraph is the static analogue of the runtime Sentry's
// acquisition-order graph (src/core/sentry.hpp): named critical sections
// and raw Lock/Unlock statements become nodes, "B acquired while A is
// held" becomes an edge A->B, and cycles() reports every strongly
// connected knot - the same inversion class the Sentry flags at run time,
// available at translate time.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "preproc/pass1.hpp"

namespace force::preproc {

enum class StmtKind {
  kPassthrough,   ///< a computational C++ line
  kComment,       ///< a rewritten ! comment
  kModuleBegin,   ///< Force NAME or Forcesub NAME
  kModuleEnd,     ///< End Forcesub
  kEndDeclarations,
  kSharedDecl, kPrivateDecl, kAsyncDecl,
  kExternf,
  kBarrierBegin, kBarrierEnd,
  kCriticalBegin, kCriticalEnd,
  kLock, kUnlock,
  kDoBegin, kDoEnd,    ///< presched/selfsched/guided DO and DO2
  kPcaseBegin, kUsect, kCsect, kPcaseEnd,
  kAskforBegin, kAskforEnd,
  kSeedwork, kPutwork, kProbend,
  kProduce, kConsume, kCopy, kVoid, kIsfull,
  kReduce,
  kForcecall,
  kJoin,
};

/// One lowered statement. `name` is the construct's identity when it has
/// one: the lock name for Critical/Lock, the variable for async ops, the
/// label for DO/Askfor, the target for Reduce, the module name for
/// ModuleBegin.
struct Stmt {
  StmtKind kind = StmtKind::kPassthrough;
  int line = 0;                    ///< 1-based source line
  std::string text;                ///< the pass-1 line
  std::string name;
  std::vector<std::string> args;   ///< raw macro arguments
  std::vector<std::string> index_vars;  ///< DO index variable(s)
};

enum class VarClass { kShared, kPrivate, kAsync };

struct LintVar {
  std::string name;
  std::string force_type;
  VarClass cls = VarClass::kShared;
  int decl_line = 0;
  bool is_array = false;
};

/// One Force module (the main program or a Forcesub) with its statements
/// and declared variables.
struct Routine {
  std::string name;
  bool is_main = false;
  int begin_line = 0;
  std::vector<Stmt> stmts;
  std::map<std::string, LintVar> vars;
};

struct ConstructGraph {
  std::vector<Routine> routines;
  std::vector<Stmt> toplevel;  ///< statements outside any routine
};

/// Lowers the pass-1 stream. Robust against malformed input: unknown
/// macro calls and unbalanced constructs degrade to passthrough/best
/// effort, never throw - pass1 has already diagnosed them.
ConstructGraph build_construct_graph(const RewriteResult& pass1);

/// A source position with file provenance. `file` is empty for the
/// primary translation unit (rendered under the unit name forcepp was
/// given); whole-program lint stamps the extra units' file names so
/// cross-file findings point into the right file.
struct SrcSite {
  std::string file;
  int line = 0;
};

/// The static lock-order graph (rule R4). Nodes are lock names; an edge
/// A->B means B was acquired somewhere while A was held - in whole-program
/// mode the acquisitions may sit in different routines (the inner lock
/// acquired by a callee while the caller holds the outer) or different
/// translation units.
struct LockOrderGraph {
  /// outer name -> inner name -> site of the first such acquisition.
  std::map<std::string, std::map<std::string, SrcSite>> edges;

  void add_edge(const std::string& outer, const std::string& inner,
                const SrcSite& site);

  /// Every nontrivial strongly connected component (mutual-reachability
  /// knot) plus self-loops, as sorted lock-name lists, deterministically
  /// ordered. Each is a potential deadlock: some acquisition order within
  /// the set contradicts another.
  [[nodiscard]] std::vector<std::vector<std::string>> cycles() const;

  /// The latest source site among the edges internal to `cycle` - where a
  /// diagnostic for it should point ("latest" by (file, line) so the
  /// choice is deterministic across units).
  [[nodiscard]] SrcSite cycle_site(const std::vector<std::string>& cycle)
      const;
};

// --- whole-program layer ----------------------------------------------------

/// One translation unit of a whole program: its (report) name and its
/// lowered construct graph.
struct ProgramUnit {
  std::string name;
  ConstructGraph graph;
};

/// Index of every routine definition across a program's units. First
/// definition of a name wins (Fortran-style: duplicate definitions are a
/// link-time concern, not lint's).
struct RoutineRef {
  int unit = -1;
  int routine = -1;
};

class RoutineIndex {
 public:
  explicit RoutineIndex(const std::vector<ProgramUnit>& units);

  /// nullptr when `name` has no definition in any unit (an Externf whose
  /// module was not given to the whole-program run).
  [[nodiscard]] const RoutineRef* resolve(const std::string& name) const;

 private:
  std::map<std::string, RoutineRef> index_;
};

/// How a routine leaves one async variable's full/empty state, observed
/// at its return (the transformer the caller applies at a Forcecall).
enum class AsyncOut {
  kFull,     ///< definitely full on every straight-line path
  kEmpty,    ///< definitely empty on every straight-line path
  kUnknown,  ///< touched under control flow / work distribution
};

/// Bottom-up interprocedural effect summary of one routine: what a caller
/// must assume happens when every process Forcecalls it. Computed by
/// lint's fixpoint (preproc/lint.cpp) over the whole-program call graph;
/// the lattice top ("this routine may do anything") is expressed by
/// `calls_unresolved` + `async_top` + `may_execute_collective`.
struct EffectSummary {
  std::string routine;
  std::string unit;  ///< defining unit name ("" = primary)

  /// A collective construct (Barrier, DOALL, Pcase, Reduce, Askfor,
  /// Seedwork, Join) may execute inside this routine or its callees.
  bool may_execute_collective = false;
  /// ... and at least one executes on the straight-line (non-divergent)
  /// path, i.e. on every invocation.
  bool collective_on_straight_path = false;
  /// This routine (transitively) Forcecalls a routine with no definition
  /// in the program: every non-monotone fact degrades to "unknown".
  bool calls_unresolved = false;
  /// Async effects are unknowable: the routine recurses, or calls an
  /// unresolved routine. Callers must drop every async variable to the
  /// unknown state at the call site.
  bool async_top = false;
  /// Locks/critical sections (transitively) acquired inside. For an
  /// unresolved callee no lock knowledge is invented: R4 under-
  /// approximates there (docs/VALIDATION.md, soundness stance).
  std::set<std::string> locks_acquired;
  /// Shared variables (transitively) written inside.
  std::set<std::string> shared_writes;
  /// Per async variable (COMMON-style, matched by name): the state the
  /// routine leaves it in. Variables absent from the map are untouched.
  std::map<std::string, AsyncOut> async_out;
  /// Resolved callee names (the call-graph edges), for tooling.
  std::set<std::string> callees;

  /// Equality drives the fixpoint's convergence test.
  [[nodiscard]] bool operator==(const EffectSummary& other) const = default;
};

const char* async_out_name(AsyncOut out);  ///< "full" | "empty" | "unknown"

}  // namespace force::preproc
