// The macro processor: level two of the Force implementation (paper §4.2,
// §4.3).
//
// In the original, sed translated Force syntax into parameterized function
// macros and m4 replaced those with Fortran plus the low-level parallel
// extensions, in two steps: machine-independent statement macros expanding
// into calls on machine-dependent macros. This class is the m4 of the
// reproduction:
//
//   * "statement macros" and "internal macros" are registered as natives
//     (C++ handlers) or text templates with $1..$9 / $* / $# substitution;
//   * "utility macros" (first, rest, concat, len, ifelse, ...) are
//     built in, usable inline anywhere in a line;
//   * definitions can be stored and retrieved at expansion time (the
//     paper's "storing and retrieving definitions" utility), which is how
//     stateful constructs (Pcase blocks, Forcesub boundaries) are handled.
//
// A macro call is written @name(args...). Whole-line calls may expand to
// multiple lines and are expanded recursively; inline calls must expand to
// a single line.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "preproc/diag.hpp"

namespace force::preproc {

class MacroProcessor {
 public:
  /// Native handler: receives the (unexpanded) argument list and the
  /// origin line for diagnostics; returns the replacement lines.
  using Native = std::function<std::vector<std::string>(
      const std::vector<std::string>& args, int line, DiagSink& diags)>;

  MacroProcessor();

  /// Registers a text-template macro; `$1`..`$9` substitute arguments,
  /// `$*` the whole comma-joined list, `$#` the count, `$0` the name.
  void define(const std::string& name, const std::string& body);
  void define_native(const std::string& name, Native fn);
  /// Removes a definition (paper: definitions can be deleted too).
  void undefine(const std::string& name);

  [[nodiscard]] bool has(const std::string& name) const;
  /// The template body of a text macro, if `name` is one.
  [[nodiscard]] std::optional<std::string> definition(
      const std::string& name) const;

  /// Mutable key/value store shared with native handlers ("storing and
  /// retrieving definitions"): the translator keeps construct state here.
  std::string& slot(const std::string& key) { return slots_[key]; }
  [[nodiscard]] std::string slot_or(const std::string& key,
                                    const std::string& fallback) const;

  /// Expands one line: a whole-line @call is replaced (recursively, depth
  /// capped) and inline @calls inside any line are substituted. Lines
  /// without calls pass through untouched.
  std::vector<std::string> expand_line(const std::string& line,
                                       int origin_line, DiagSink& diags);

  /// Expands a whole text (convenience for tests).
  std::vector<std::string> expand_text(const std::string& text,
                                       DiagSink& diags);

  [[nodiscard]] std::size_t expansions() const { return expansions_; }

 private:
  struct ParsedCall {
    std::string name;
    std::vector<std::string> args;
    std::size_t begin = 0;  // offset of '@'
    std::size_t end = 0;    // offset one past ')'
  };

  /// Finds the first @name( call with balanced parentheses at or after
  /// `from`; returns nullopt if none.
  static std::optional<ParsedCall> find_call(const std::string& line,
                                             std::size_t from);

  std::vector<std::string> expand_call(const ParsedCall& call,
                                       int origin_line, DiagSink& diags,
                                       int depth);
  /// Expands every defined inline @call in `work` (results must be single
  /// lines); also used for m4-style argument pre-expansion.
  std::string expand_inline(std::string work, int origin_line,
                            DiagSink& diags, int depth);
  std::vector<std::string> expand_lines(std::vector<std::string> lines,
                                        int origin_line, DiagSink& diags,
                                        int depth);
  static std::string substitute(const std::string& body,
                                const std::string& name,
                                const std::vector<std::string>& args);
  void install_utility_macros();

  std::map<std::string, std::string> templates_;
  std::map<std::string, Native> natives_;
  std::map<std::string, std::string> slots_;
  std::size_t expansions_ = 0;
};

}  // namespace force::preproc
