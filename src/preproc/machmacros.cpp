#include "preproc/machmacros.hpp"

#include <algorithm>

#include "machdep/machine.hpp"
#include "preproc/textutil.hpp"
#include "util/check.hpp"

namespace force::preproc {

std::string VarInfo::full_cpp_type() const {
  std::string t = cpp_type;
  // Fortran dimensions nest right-to-left: X(10,20) is 10 rows of 20.
  for (auto it = dims.rbegin(); it != dims.rend(); ++it) {
    t = "std::array<" + t + ", " + *it + ">";
  }
  return t;
}

std::vector<VarInfo> ModuleInfo::shared_variables() const {
  std::vector<VarInfo> out;
  for (const auto& v : variables) {
    if (v.cls == 's') out.push_back(v);
  }
  return out;
}

ModuleInfo* TranslateContext::current() {
  if (current_module < 0 ||
      current_module >= static_cast<int>(modules.size())) {
    return nullptr;
  }
  return &modules[static_cast<std::size_t>(current_module)];
}

std::string TranslateContext::indent() const {
  return std::string(2 * block_stack.size(), ' ');
}

void TranslateContext::record_var(VarInfo v, int line, DiagSink& diags) {
  ModuleInfo* m = current();
  if (m == nullptr) {
    diags.error(line, "declaration outside a Force module");
    return;
  }
  const bool dup = std::any_of(
      m->variables.begin(), m->variables.end(),
      [&](const VarInfo& existing) { return existing.name == v.name; });
  if (dup) {
    diags.error(line, "duplicate declaration of " + v.name);
    return;
  }
  m->variables.push_back(std::move(v));
}

std::string map_force_type(const std::string& force_type) {
  const std::string t = to_lower(trim(force_type));
  if (t == "integer") return "std::int64_t";
  if (t == "real") return "double";
  if (t == "double precision" || t == "double") return "double";
  if (t == "logical") return "bool";
  return "";
}

namespace {

using Args = std::vector<std::string>;

/// Builds a VarInfo from (type, name, dims...) macro arguments.
bool parse_var(const Args& args, char cls, VarInfo* out, int line,
               DiagSink& diags) {
  if (args.size() < 2) {
    diags.error(line, "declaration macro needs (type, name, ...)");
    return false;
  }
  out->force_type = to_lower(args[0]);
  out->cpp_type = map_force_type(args[0]);
  out->name = args[1];
  out->dims.assign(args.begin() + 2, args.end());
  out->cls = cls;
  if (out->cpp_type.empty()) {
    diags.error(line, "unknown Force type: " + args[0]);
    return false;
  }
  return true;
}

}  // namespace

void install_statement_macros(MacroProcessor& mp, TranslateContext& ctx) {
  auto* c = &ctx;

  // --- program structure ----------------------------------------------------

  mp.define_native("force_main", [c](const Args& args, int line,
                                     DiagSink& diags)
                                     -> std::vector<std::string> {
    if (args.size() != 1 || !is_identifier(args[0])) {
      diags.error(line, "Force needs a program name");
      return {};
    }
    if (c->main_seen) {
      diags.error(line, "second Force main program");
      return {};
    }
    c->main_seen = true;
    c->modules.push_back({args[0], /*is_main=*/true, {}});
    c->current_module = static_cast<int>(c->modules.size()) - 1;
    std::vector<std::string> out{
        "// Force main program " + args[0],
        "static void " + args[0] + "_body(force::core::Ctx& ctx) {",
    };
    c->block_stack.push_back("module");
    out.push_back(c->indent() + "(void)ctx;");
    return out;
  });

  mp.define_native("forcesub", [c](const Args& args, int line,
                                   DiagSink& diags)
                                   -> std::vector<std::string> {
    if (args.size() != 1 || !is_identifier(args[0])) {
      diags.error(line, "Forcesub needs a subroutine name");
      return {};
    }
    if (c->current_module >= 0) {
      diags.error(line, "Forcesub may not be nested in another module");
      return {};
    }
    c->modules.push_back({args[0], /*is_main=*/false, {}});
    c->current_module = static_cast<int>(c->modules.size()) - 1;
    std::vector<std::string> out{
        "// Force parallel subroutine " + args[0] +
            " (executed by all processes concurrently)",
        "static void " + args[0] + "_body(force::core::Ctx& ctx) {",
    };
    c->block_stack.push_back("module");
    out.push_back(c->indent() + "(void)ctx;");
    return out;
  });

  mp.define_native("end_forcesub", [c](const Args&, int line,
                                       DiagSink& diags)
                                       -> std::vector<std::string> {
    ModuleInfo* m = c->current();
    if (m == nullptr || m->is_main) {
      diags.error(line, "End Forcesub outside a Forcesub");
      return {};
    }
    if (c->block_stack.empty() || c->block_stack.back() != "module") {
      diags.error(line, "End Forcesub with an open construct");
      return {};
    }
    c->block_stack.pop_back();
    c->current_module = -1;
    return {"}", ""};
  });

  mp.define_native("join", [c](const Args&, int line, DiagSink& diags)
                               -> std::vector<std::string> {
    ModuleInfo* m = c->current();
    if (m == nullptr || !m->is_main) {
      diags.error(line, "Join belongs at the end of the Force main program");
      return {};
    }
    if (c->block_stack.empty() || c->block_stack.back() != "module") {
      diags.error(line, "Join with an open construct");
      return {};
    }
    c->block_stack.pop_back();
    c->current_module = -1;
    c->join_seen = true;
    return {"  // Join: the driver joins the force when the body returns.",
            "}", ""};
  });

  mp.define_native("externf", [c](const Args& args, int line,
                                  DiagSink& diags)
                                  -> std::vector<std::string> {
    if (args.size() != 1 || !is_identifier(args[0])) {
      diags.error(line, "Externf needs a subroutine name");
      return {};
    }
    c->externfs.push_back(args[0]);
    return {c->indent() + "// Externf " + args[0] +
            ": startup linkage generated in the driver"};
  });

  mp.define_native("forcecall", [c](const Args& args, int line,
                                    DiagSink& diags)
                                    -> std::vector<std::string> {
    if (args.size() != 1 || !is_identifier(args[0])) {
      diags.error(line, "Forcecall needs a subroutine name");
      return {};
    }
    return {c->indent() + "ctx.call(\"" + args[0] + "\");"};
  });

  mp.define_native("end_declarations",
                   [c](const Args&, int, DiagSink&) -> std::vector<std::string> {
                     return {c->indent() + "// end of declarations"};
                   });

  // --- declarations (expand into the machine-dependent layer) ---------------

  mp.define_native("shared_decl", [c](const Args& args, int line,
                                      DiagSink& diags)
                                      -> std::vector<std::string> {
    VarInfo v;
    if (!parse_var(args, 's', &v, line, diags)) return {};
    c->record_var(v, line, diags);
    return {c->indent() + "@md_shared_bind(" + v.full_cpp_type() + ", " +
            v.name + ")"};
  });

  mp.define_native("private_decl", [c](const Args& args, int line,
                                       DiagSink& diags)
                                       -> std::vector<std::string> {
    VarInfo v;
    if (!parse_var(args, 'p', &v, line, diags)) return {};
    c->record_var(v, line, diags);
    return {c->indent() + "@md_private_bind(" + v.full_cpp_type() + ", " +
            v.name + ")"};
  });

  mp.define_native("async_decl", [c](const Args& args, int line,
                                     DiagSink& diags)
                                     -> std::vector<std::string> {
    VarInfo v;
    if (!parse_var(args, 'a', &v, line, diags)) return {};
    if (!v.dims.empty()) {
      diags.error(line, "async arrays are not supported in the dialect; "
                        "declare several async scalars");
      return {};
    }
    c->record_var(v, line, diags);
    return {c->indent() + "@md_async_bind(" + v.cpp_type + ", " + v.name +
            ")"};
  });

  // --- synchronization -------------------------------------------------------

  mp.define_native("barrier_begin", [c](const Args&, int, DiagSink&)
                                        -> std::vector<std::string> {
    std::vector<std::string> out{c->indent() + "ctx.barrier([&] {"};
    c->block_stack.push_back("barrier");
    return out;
  });

  mp.define_native("barrier_end", [c](const Args&, int line, DiagSink& diags)
                                      -> std::vector<std::string> {
    if (c->block_stack.empty() || c->block_stack.back() != "barrier") {
      diags.error(line, "End barrier without Barrier");
      return {};
    }
    c->block_stack.pop_back();
    return {c->indent() + "});"};
  });

  mp.define_native("critical_begin", [c](const Args& args, int line,
                                         DiagSink& diags)
                                         -> std::vector<std::string> {
    if (args.size() != 1 || !is_identifier(args[0])) {
      diags.error(line, "Critical needs a lock name");
      return {};
    }
    std::vector<std::string> out{c->indent() +
                                 "ctx.critical(FORCE_SITE_TAGGED(\"" +
                                 args[0] + "\"), [&] {"};
    c->block_stack.push_back("critical");
    return out;
  });

  mp.define_native("critical_end", [c](const Args&, int line,
                                       DiagSink& diags)
                                       -> std::vector<std::string> {
    if (c->block_stack.empty() || c->block_stack.back() != "critical") {
      diags.error(line, "End critical without Critical");
      return {};
    }
    c->block_stack.pop_back();
    return {c->indent() + "});"};
  });

  // --- work distribution -----------------------------------------------------

  auto do_begin = [c](const std::string& runtime_call, const Args& args,
                      int line, DiagSink& diags,
                      bool sited) -> std::vector<std::string> {
    if (args.size() != 5) {
      diags.error(line, "DO macro needs (label, var, start, last, incr)");
      return {};
    }
    const std::string& label = args[0];
    const std::string& var = args[1];
    std::string head = c->indent() + "ctx." + runtime_call + "(";
    if (sited) head += "FORCE_SITE_TAGGED(\"L" + label + "\"), ";
    head += "(" + args[2] + "), (" + args[3] + "), (" + args[4] +
            "), [&](std::int64_t " + var + ") {";
    c->block_stack.push_back("do:" + label);
    return {head};
  };

  auto do_end = [c](const std::string& kind, const Args& args, int line,
                    DiagSink& diags) -> std::vector<std::string> {
    if (args.size() != 1) {
      diags.error(line, "End DO macro needs (label)");
      return {};
    }
    if (c->block_stack.empty() ||
        c->block_stack.back() != "do:" + args[0]) {
      diags.error(line, "mismatched End " + kind + " DO label " + args[0]);
      return {};
    }
    c->block_stack.pop_back();
    return {c->indent() + "});"};
  };

  auto do2_begin = [c](const std::string& runtime_call, const Args& args,
                       int line, DiagSink& diags,
                       bool sited) -> std::vector<std::string> {
    if (args.size() != 9) {
      diags.error(line, "DO2 macro needs (label, v,a,b,c, w,d,e,f)");
      return {};
    }
    const std::string& label = args[0];
    std::string head = c->indent() + "ctx." + runtime_call + "(";
    if (sited) head += "FORCE_SITE_TAGGED(\"L" + label + "\"), ";
    head += "(" + args[2] + "), (" + args[3] + "), (" + args[4] + "), (" +
            args[6] + "), (" + args[7] + "), (" + args[8] +
            "), [&](std::int64_t " + args[1] + ", std::int64_t " + args[5] +
            ") {";
    c->block_stack.push_back("do:" + label);
    return {head};
  };

  mp.define_native("presched_do2",
                   [do2_begin](const Args& args, int line, DiagSink& diags) {
                     return do2_begin("presched_do2", args, line, diags,
                                      false);
                   });
  mp.define_native("end_presched_do2",
                   [do_end](const Args& args, int line, DiagSink& diags) {
                     return do_end("Presched", args, line, diags);
                   });
  mp.define_native("selfsched_do2",
                   [do2_begin](const Args& args, int line, DiagSink& diags) {
                     return do2_begin("selfsched_do2", args, line, diags,
                                      true);
                   });
  mp.define_native("end_selfsched_do2",
                   [do_end](const Args& args, int line, DiagSink& diags) {
                     return do_end("Selfsched", args, line, diags);
                   });
  mp.define_native("guided_do",
                   [do_begin](const Args& args, int line, DiagSink& diags) {
                     return do_begin("guided_do", args, line, diags, true);
                   });
  mp.define_native("end_guided_do",
                   [do_end](const Args& args, int line, DiagSink& diags) {
                     return do_end("Guided", args, line, diags);
                   });
  mp.define_native("presched_do",
                   [do_begin](const Args& args, int line, DiagSink& diags) {
                     return do_begin("presched_do", args, line, diags, false);
                   });
  mp.define_native("end_presched_do",
                   [do_end](const Args& args, int line, DiagSink& diags) {
                     return do_end("Presched", args, line, diags);
                   });
  mp.define_native("selfsched_do",
                   [do_begin](const Args& args, int line, DiagSink& diags) {
                     return do_begin("selfsched_do", args, line, diags, true);
                   });
  mp.define_native("end_selfsched_do",
                   [do_end](const Args& args, int line, DiagSink& diags) {
                     return do_end("Selfsched", args, line, diags);
                   });

  // --- pcase -------------------------------------------------------------------

  mp.define_native("pcase_begin", [c](const Args& args, int line,
                                      DiagSink& diags)
                                      -> std::vector<std::string> {
    if (args.size() != 1 ||
        (args[0] != "presched" && args[0] != "selfsched")) {
      diags.error(line, "pcase_begin needs presched|selfsched");
      return {};
    }
    c->pcase_mode = args[0];
    c->pcase_sect_open = false;
    std::vector<std::string> out{
        c->indent() + "{",
        c->indent() + "  auto pcase__ = ctx.pcase(FORCE_SITE);"};
    c->block_stack.push_back("pcase");
    return out;
  });

  auto close_sect = [c]() -> std::vector<std::string> {
    if (!c->pcase_sect_open) return {};
    c->pcase_sect_open = false;
    std::vector<std::string> out;
    // The sect lambda opened one extra indent level.
    out.push_back(c->indent() + "});");
    return out;
  };

  mp.define_native("usect", [c, close_sect](const Args&, int line,
                                            DiagSink& diags)
                                            -> std::vector<std::string> {
    if (c->block_stack.empty() || c->block_stack.back() != "pcase") {
      diags.error(line, "Usect outside Pcase");
      return {};
    }
    auto out = close_sect();
    out.push_back(c->indent() + "pcase__.sect([&] {");
    c->pcase_sect_open = true;
    return out;
  });

  mp.define_native("csect", [c, close_sect](const Args& args, int line,
                                            DiagSink& diags)
                                            -> std::vector<std::string> {
    if (c->block_stack.empty() || c->block_stack.back() != "pcase") {
      diags.error(line, "Csect outside Pcase");
      return {};
    }
    if (args.empty()) {
      diags.error(line, "Csect needs a condition");
      return {};
    }
    std::string cond;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i) cond += ", ";
      cond += args[i];
    }
    auto out = close_sect();
    out.push_back(c->indent() + "pcase__.sect_if((" + cond + "), [&] {");
    c->pcase_sect_open = true;
    return out;
  });

  mp.define_native("pcase_end", [c, close_sect](const Args&, int line,
                                                DiagSink& diags)
                                                -> std::vector<std::string> {
    if (c->block_stack.empty() || c->block_stack.back() != "pcase") {
      diags.error(line, "End pcase without Pcase");
      return {};
    }
    auto out = close_sect();
    const std::string run = c->pcase_mode == "selfsched"
                                ? "pcase__.run_selfsched();"
                                : "pcase__.run_presched();";
    out.push_back(c->indent() + "  " + run);
    c->block_stack.pop_back();
    out.push_back(c->indent() + "}");
    return out;
  });

  // --- askfor (paper §3.3, [LO83]) ---------------------------------------------

  mp.define_native("askfor_begin", [c](const Args& args, int line,
                                       DiagSink& diags)
                                       -> std::vector<std::string> {
    if (args.size() != 3 || !is_identifier(args[1])) {
      diags.error(line, "askfor needs (label, var, type)");
      return {};
    }
    const std::string cpp_type = map_force_type(args[2]);
    if (cpp_type.empty()) {
      diags.error(line, "unknown Askfor task type: " + args[2]);
      return {};
    }
    const std::string& label = args[0];
    std::vector<std::string> out{
        c->indent() + "{",
        c->indent() + "  auto& askfor__ = ctx.askfor_named<" + cpp_type +
            ">(\"L" + label + "\");",
        c->indent() + "  askfor__.work([&](" + cpp_type + "& " + args[1] +
            ", force::core::Askfor<" + cpp_type + ">& askfor_self__) {",
    };
    c->block_stack.push_back("askfor:" + label);
    return out;
  });

  mp.define_native("end_askfor", [c](const Args& args, int line,
                                     DiagSink& diags)
                                     -> std::vector<std::string> {
    if (args.size() != 1 || c->block_stack.empty() ||
        c->block_stack.back() != "askfor:" + args[0]) {
      diags.error(line, "mismatched End Askfor label");
      return {};
    }
    c->block_stack.pop_back();
    return {c->indent() + "  });", c->indent() + "}"};
  });

  mp.define_native("seedwork", [c](const Args& args, int line,
                                   DiagSink& diags)
                                   -> std::vector<std::string> {
    if (args.size() < 2) {
      diags.error(line, "seedwork needs (label, expression)");
      return {};
    }
    std::string expr;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (i > 1) expr += ", ";
      expr += args[i];
    }
    // The monitor's task type comes from the matching Askfor block,
    // collected in a pre-scan (Seedwork usually precedes it textually).
    const auto it = c->askfor_types.find("L" + args[0]);
    if (it == c->askfor_types.end()) {
      diags.error(line, "Seedwork label " + args[0] +
                            " has no Askfor block in this unit");
      return {};
    }
    return {c->indent() + "if (ctx.leader()) {",
            c->indent() + "  ctx.askfor_named<" + it->second + ">(\"L" +
                args[0] + "\").put(" + expr + ");",
            c->indent() + "}",
            c->indent() + "ctx.barrier();  // all seeds visible before work"};
  });

  mp.define_native("putwork", [c](const Args& args, int line,
                                  DiagSink& diags)
                                  -> std::vector<std::string> {
    if (args.empty()) {
      diags.error(line, "putwork needs an expression");
      return {};
    }
    bool inside = false;
    for (const auto& b : c->block_stack) {
      if (b.rfind("askfor:", 0) == 0) inside = true;
    }
    if (!inside) {
      diags.error(line, "Putwork is only valid inside an Askfor block");
      return {};
    }
    std::string expr;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i) expr += ", ";
      expr += args[i];
    }
    return {c->indent() + "askfor_self__.put(" + expr + ");"};
  });

  mp.define_native("probend", [c](const Args&, int line, DiagSink& diags)
                                  -> std::vector<std::string> {
    bool inside = false;
    for (const auto& b : c->block_stack) {
      if (b.rfind("askfor:", 0) == 0) inside = true;
    }
    if (!inside) {
      diags.error(line, "Probend is only valid inside an Askfor block");
      return {};
    }
    return {c->indent() + "askfor_self__.probend();"};
  });

  // --- raw locks (the paper's low-level lock macros as statements) ------------

  mp.define_native("rawlock", [c](const Args& args, int line, DiagSink& diags)
                                  -> std::vector<std::string> {
    if (args.size() != 1 || !is_identifier(args[0])) {
      diags.error(line, "Lock needs a lock name");
      return {};
    }
    return {c->indent() + "ctx.named_lock(\"" + args[0] + "\").acquire();"};
  });
  mp.define_native("rawunlock", [c](const Args& args, int line,
                                    DiagSink& diags)
                                    -> std::vector<std::string> {
    if (args.size() != 1 || !is_identifier(args[0])) {
      diags.error(line, "Unlock needs a lock name");
      return {};
    }
    return {c->indent() + "ctx.named_lock(\"" + args[0] + "\").release();"};
  });

  // --- reductions (extension; uses the stored declarations) -------------------

  mp.define_native("reduce_stmt", [c](const Args& args, int line,
                                      DiagSink& diags)
                                      -> std::vector<std::string> {
    if (args.size() < 3) {
      diags.error(line, "reduce needs (target, op, expr)");
      return {};
    }
    const std::string& target = args[0];
    const std::string& op = args[1];
    std::string expr;
    for (std::size_t i = 2; i < args.size(); ++i) {
      if (i > 2) expr += ", ";
      expr += args[i];
    }
    // "Storing and retrieving definitions": the payload type comes from
    // the declaration the statement macros recorded earlier.
    ModuleInfo* m = c->current();
    if (m == nullptr) {
      diags.error(line, "Reduce outside a Force module");
      return {};
    }
    std::string cpp_type;
    for (const auto& v : m->variables) {
      if (v.name == target) {
        if (v.cls != 's' || !v.dims.empty()) {
          diags.error(line, "Reduce target must be a shared scalar: " + target);
          return {};
        }
        cpp_type = v.cpp_type;
      }
    }
    if (cpp_type.empty()) {
      diags.error(line, "Reduce target not declared: " + target);
      return {};
    }
    std::string combine;
    if (op == "+") {
      combine = "return a + b;";
    } else if (op == "*") {
      combine = "return a * b;";
    } else if (to_lower(op) == "max") {
      combine = "return a > b ? a : b;";
    } else if (to_lower(op) == "min") {
      combine = "return a < b ? a : b;";
    } else {
      diags.error(line, "Reduce op must be one of + * max min, got " + op);
      return {};
    }
    return {c->indent() + "ctx.reduce_into<" + cpp_type +
            ">(FORCE_SITE_TAGGED(\"R" + target + "\"), (" + expr + "), " +
            target + ", [](" + cpp_type + " a, " + cpp_type + " b) { " +
            combine + " });"};
  });

  // --- async accesses ---------------------------------------------------------

  mp.define_native("produce", [c](const Args& args, int line,
                                  DiagSink& diags)
                                  -> std::vector<std::string> {
    if (args.size() < 2) {
      diags.error(line, "produce needs (var, expression)");
      return {};
    }
    std::string expr;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (i > 1) expr += ", ";
      expr += args[i];
    }
    return {c->indent() + args[0] + ".produce(" + expr + ");"};
  });
  mp.define_native("consume", [c](const Args& args, int line,
                                  DiagSink& diags)
                                  -> std::vector<std::string> {
    if (args.size() != 2) {
      diags.error(line, "consume needs (var, target)");
      return {};
    }
    return {c->indent() + args[1] + " = " + args[0] + ".consume();"};
  });
  mp.define_native("copyasync", [c](const Args& args, int line,
                                    DiagSink& diags)
                                    -> std::vector<std::string> {
    if (args.size() != 2) {
      diags.error(line, "copy needs (var, target)");
      return {};
    }
    return {c->indent() + args[1] + " = " + args[0] + ".copy();"};
  });
  mp.define_native("voidasync", [c](const Args& args, int line,
                                    DiagSink& diags)
                                    -> std::vector<std::string> {
    if (args.size() != 1) {
      diags.error(line, "void needs (var)");
      return {};
    }
    return {c->indent() + args[0] + ".void_state();"};
  });
  mp.define_native("isfull", [c](const Args& args, int line,
                                 DiagSink& diags)
                                 -> std::vector<std::string> {
    if (args.size() != 2) {
      diags.error(line, "isfull needs (var, target)");
      return {};
    }
    return {c->indent() + args[1] + " = " + args[0] + ".is_full();"};
  });
}

void install_machine_macros(MacroProcessor& mp, TranslateContext& ctx,
                            const std::string& machine) {
  const machdep::MachineSpec& spec = machdep::machine_spec(machine);
  ctx.machine = machine;
  ctx.needs_startup =
      spec.sharing != machdep::SharingStrategy::kCompileTime;

  // The machine-dependent lower layer: everything the paper lists in §4.1
  // that shows up in generated code. The *same* statement macros above
  // expand onto these for every machine; only these definitions change in
  // a port.
  switch (spec.sharing) {
    case machdep::SharingStrategy::kCompileTime:
      // HEP / Flex-32 / Cray-2: the preprocessor "simply strips off the
      // word shared and places the variable in COMMON".
      mp.define("md_shared_bind",
                "auto& $2 = ctx.shared<$1>(\"$2\");  // COMMON /$2/");
      break;
    case machdep::SharingStrategy::kLinkTime:
      // Sequent: names resolved through the startup-routine protocol; the
      // driver registers the startup routines generated below.
      mp.define("md_shared_bind",
                "auto& $2 = ctx.shared<$1>(\"$2\");  "
                "// link-time shared (declared by the startup routine)");
      break;
    case machdep::SharingStrategy::kRuntimePadded:
    case machdep::SharingStrategy::kPageAlignedStart:
      // Encore / Alliant: placed into padded shared pages at run time.
      mp.define("md_shared_bind",
                "auto& $2 = ctx.shared<$1>(\"$2\");  "
                "// run-time shared pages (padded)");
      break;
  }

  if (spec.process_model == machdep::ProcessModelKind::kForkSharedData) {
    mp.define("md_private_bind",
              "$1 $2{};  // private (stack region: data segments are "
              "shared on this machine)");
  } else {
    mp.define("md_private_bind", "$1 $2{};  // private to this process");
  }

  if (spec.hardware_full_empty) {
    mp.define("md_async_bind",
              "auto& $2 = ctx.async_named<$1>(\"$2\");  "
              "// hardware full/empty tagged cell");
  } else {
    mp.define("md_async_bind",
              "auto& $2 = ctx.async_named<$1>(\"$2\");  "
              "// full/empty built from two generic locks (E/F)");
  }
}

}  // namespace force::preproc
