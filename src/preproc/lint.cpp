#include "preproc/lint.hpp"

#include <algorithm>
#include <cctype>

#include "preproc/textutil.hpp"

namespace force::preproc {

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) { return c == ' ' || c == '\t'; }

/// Whole-word containment ("I" in "I+1" but not in "MIN").
bool contains_word(const std::string& s, const std::string& word) {
  if (word.empty()) return false;
  std::size_t i = 0;
  while ((i = s.find(word, i)) != std::string::npos) {
    const bool left_ok = i == 0 || !is_word_char(s[i - 1]);
    const std::size_t after = i + word.size();
    const bool right_ok = after >= s.size() || !is_word_char(s[after]);
    if (left_ok && right_ok) return true;
    ++i;
  }
  return false;
}

/// Blanks out string literals, character literals and comments so the
/// write scanner and control tracker never match inside them. Offsets are
/// preserved (replaced chars become spaces).
std::string strip_code(const std::string& line) {
  std::string out = line;
  bool in_str = false;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    if (in_str) {
      if (c == '\\' && i + 1 < out.size()) {
        out[i] = ' ';
        out[++i] = ' ';
        continue;
      }
      if (c == '"') in_str = false;
      out[i] = ' ';
      continue;
    }
    if (c == '"') {
      in_str = true;
      out[i] = ' ';
      continue;
    }
    if (c == '\'') {
      // A character literal unless it is a digit separator (1'000).
      if (i > 0 && is_word_char(out[i - 1])) continue;
      std::size_t j = i + 1;
      if (j < out.size() && out[j] == '\\') ++j;
      if (j < out.size()) ++j;
      if (j < out.size() && out[j] == '\'') {
        for (std::size_t k = i; k <= j; ++k) out[k] = ' ';
        i = j;
      }
      continue;
    }
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '/') {
      for (std::size_t k = i; k < out.size(); ++k) out[k] = ' ';
      break;
    }
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '*') {
      const std::size_t close = out.find("*/", i + 2);
      const std::size_t end = close == std::string::npos ? out.size()
                                                         : close + 2;
      for (std::size_t k = i; k < end; ++k) out[k] = ' ';
      i = end == 0 ? 0 : end - 1;
      continue;
    }
  }
  return out;
}

// --- write scanner ----------------------------------------------------------

struct WriteHit {
  std::size_t pos = 0;                  ///< offset of the variable name
  std::vector<std::string> subscripts;  ///< consecutive [..] groups
  bool compound = false;                ///< +=, ++, ... (reads and writes)
  bool rhs_reads_target = false;        ///< plain '=' whose RHS names the var
};

/// Finds assignment-shaped uses of `name` in a stripped line: `name = ..`,
/// `name[..] op= ..`, `name++`, `++name`. Comparison operators are not
/// writes.
std::vector<WriteHit> find_writes(const std::string& s,
                                  const std::string& name) {
  std::vector<WriteHit> hits;
  std::size_t from = 0;
  std::size_t i = 0;
  while ((i = s.find(name, from)) != std::string::npos) {
    from = i + 1;
    if (i > 0 && is_word_char(s[i - 1])) continue;
    const std::size_t after = i + name.size();
    if (after < s.size() && is_word_char(s[after])) continue;

    WriteHit hit;
    hit.pos = i;

    // Prefix increment/decrement.
    std::size_t back = i;
    while (back > 0 && is_space(s[back - 1])) --back;
    if (back >= 2 && ((s[back - 1] == '+' && s[back - 2] == '+') ||
                      (s[back - 1] == '-' && s[back - 2] == '-'))) {
      hit.compound = true;
      hits.push_back(std::move(hit));
      continue;
    }

    // Consecutive balanced subscript groups.
    std::size_t j = after;
    bool malformed = false;
    while (true) {
      while (j < s.size() && is_space(s[j])) ++j;
      if (j >= s.size() || s[j] != '[') break;
      int depth = 1;
      const std::size_t start = j + 1;
      std::size_t k = start;
      while (k < s.size() && depth > 0) {
        if (s[k] == '[') ++depth;
        if (s[k] == ']') --depth;
        ++k;
      }
      if (depth != 0) {
        malformed = true;
        break;
      }
      hit.subscripts.push_back(s.substr(start, k - 1 - start));
      j = k;
    }
    if (malformed) continue;
    while (j < s.size() && is_space(s[j])) ++j;
    if (j >= s.size()) continue;

    const char c = s[j];
    const char c2 = j + 1 < s.size() ? s[j + 1] : '\0';
    bool is_write = false;
    if (c == '=' && c2 != '=') {
      is_write = true;
    } else if ((c == '+' && c2 == '+') || (c == '-' && c2 == '-')) {
      is_write = true;
      hit.compound = true;
    } else if (std::string("+-*/%&|^").find(c) != std::string::npos &&
               c2 == '=') {
      is_write = true;
      hit.compound = true;
    } else if (((c == '<' && c2 == '<') || (c == '>' && c2 == '>')) &&
               j + 2 < s.size() && s[j + 2] == '=') {
      is_write = true;
      hit.compound = true;
    }
    if (!is_write) continue;
    if (c == '=' && !hit.compound) {
      hit.rhs_reads_target = contains_word(s.substr(j + 1), name);
    }
    hits.push_back(std::move(hit));
  }
  return hits;
}

// --- passthrough control-flow tracker ---------------------------------------

/// Tracks C++ control regions opened by passthrough lines: brace-balanced
/// regions with a divergence flag (if/else/switch bodies may be entered by
/// a subset of the force; while/for bodies are assumed schedule-uniform,
/// the dialect's documented discipline - see docs/LANGUAGE.md "SPMD
/// discipline").
class ControlTracker {
 public:
  [[nodiscard]] bool divergent_now() const {
    if (pending_single_ > 0 && pending_divergent_) return true;
    return std::any_of(stack_.begin(), stack_.end(),
                       [](const Region& r) { return r.divergent; });
  }
  [[nodiscard]] bool inside_any() const {
    return !stack_.empty() || pending_single_ > 0;
  }
  /// A construct statement consumes a braceless single-statement control.
  void consume_statement() {
    if (pending_single_ > 0) --pending_single_;
  }

  /// Updates the region stack from one stripped passthrough line; returns
  /// true when any region opened or closed (async states go unknown).
  bool feed(const std::string& s) {
    bool changed = false;
    std::size_t i = 0;
    while (i < s.size() && is_space(s[i])) ++i;
    if (pending_single_ > 0 && i < s.size()) {
      if (s[i] == '{') {
        // The braceless control's compound statement: inherit divergence.
        stack_.push_back({pending_divergent_});
        changed = true;
        ++i;
      }
      pending_single_ = 0;
    }
    enum class Pend { kNone, kCond, kLoop };
    Pend pend = Pend::kNone;
    int paren = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (is_word_char(c) && !std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t j = i;
        while (j < s.size() && is_word_char(s[j])) ++j;
        const std::string word = s.substr(i, j - i);
        if (word == "if" || word == "else" || word == "switch") {
          pend = Pend::kCond;
        } else if (word == "while" || word == "for" || word == "do") {
          if (pend != Pend::kCond) pend = Pend::kLoop;
        }
        i = j;
        continue;
      }
      if (c == '(') ++paren;
      if (c == ')' && paren > 0) --paren;
      if (c == ';' && paren == 0) pend = Pend::kNone;
      if (c == '{') {
        stack_.push_back({pend == Pend::kCond});
        pend = Pend::kNone;
        changed = true;
      }
      if (c == '}' && !stack_.empty()) {
        stack_.pop_back();
        changed = true;
      }
      ++i;
    }
    if (pend != Pend::kNone && paren == 0) {
      // "if (cond)" / "for (...)" with the controlled statement on the
      // next line.
      pending_single_ = 1;
      pending_divergent_ = pend == Pend::kCond;
      changed = true;
    }
    return changed;
  }

 private:
  struct Region {
    bool divergent = false;
  };
  std::vector<Region> stack_;
  int pending_single_ = 0;
  bool pending_divergent_ = false;
};

// --- suppression directives -------------------------------------------------

/// Region-scoped suppression: `!force$ lint off(R2[,R5])` disables the
/// rules from that line until `!force$ lint on(...)` or end of file;
/// without a rule list every rule is toggled.
class Suppressions {
 public:
  explicit Suppressions(const std::vector<std::string>& lines) {
    for (std::size_t n = 0; n < lines.size(); ++n) {
      parse_line(trim(lines[n]), static_cast<int>(n) + 1);
    }
  }

  [[nodiscard]] bool suppressed(LintRule rule, int line) const {
    bool off_all = false;
    std::set<LintRule> off;
    for (const Event& ev : events_) {
      if (ev.line > line) break;
      if (ev.all) {
        off_all = ev.off;
        off.clear();
      } else if (ev.off) {
        off.insert(ev.rule);
      } else {
        off.erase(ev.rule);
      }
    }
    return off_all || off.count(rule) != 0;
  }

 private:
  struct Event {
    int line = 0;
    bool off = false;
    bool all = false;
    LintRule rule = LintRule::kR1;
  };

  void parse_line(const std::string& trimmed, int lineno) {
    std::string rest;
    const std::string lower = to_lower(trimmed);
    for (const char* prefix : {"!force$", "! force$", "//force$", "// force$"}) {
      if (lower.rfind(prefix, 0) == 0) {
        rest = trim(lower.substr(std::string(prefix).size()));
        break;
      }
    }
    if (rest.empty()) return;
    if (rest.rfind("lint", 0) != 0) return;
    rest = trim(rest.substr(4));
    // Allow a trailing comment on the directive line.
    if (const std::size_t bang = rest.find('!'); bang != std::string::npos) {
      rest = trim(rest.substr(0, bang));
    }
    if (const std::size_t sl = rest.find("//"); sl != std::string::npos) {
      rest = trim(rest.substr(0, sl));
    }
    bool off = false;
    if (rest.rfind("off", 0) == 0) {
      off = true;
      rest = trim(rest.substr(3));
    } else if (rest.rfind("on", 0) == 0) {
      rest = trim(rest.substr(2));
    } else {
      return;
    }
    if (rest.empty()) {
      events_.push_back({lineno, off, true, LintRule::kR1});
      return;
    }
    if (rest.front() != '(' || rest.back() != ')') return;
    for (const auto& tok : split_args(rest.substr(1, rest.size() - 2))) {
      const std::string t = to_lower(tok);
      if (t.size() == 2 && t[0] == 'r' && t[1] >= '1' && t[1] <= '6') {
        events_.push_back(
            {lineno, off, false,
             static_cast<LintRule>(t[1] - '1')});
      }
    }
  }

  std::vector<Event> events_;
};

// --- the rule engine --------------------------------------------------------

enum class ProtKind { kBarrier, kCritical, kLockHeld, kDoall, kAskfor };

struct Prot {
  ProtKind kind;
  std::string name;
  std::vector<std::string> index_vars;
};

enum class AsyncState { kEmpty, kFull, kUnknown };

bool is_collective(StmtKind k) {
  switch (k) {
    case StmtKind::kBarrierBegin:
    case StmtKind::kBarrierEnd:
    case StmtKind::kDoBegin:
    case StmtKind::kDoEnd:
    case StmtKind::kPcaseBegin:
    case StmtKind::kPcaseEnd:
    case StmtKind::kUsect:
    case StmtKind::kCsect:
    case StmtKind::kAskforBegin:
    case StmtKind::kAskforEnd:
    case StmtKind::kSeedwork:
    case StmtKind::kReduce:
    case StmtKind::kForcecall:
    case StmtKind::kJoin:
      return true;
    default:
      return false;
  }
}

class Linter {
 public:
  Linter(const LintOptions& opts, DiagSink& diags,
         std::vector<std::string> src_lines)
      : opts_(opts), diags_(diags), src_lines_(std::move(src_lines)),
        suppress_(src_lines_) {}

  LintResult run(const ConstructGraph& graph) {
    for (const Routine& r : graph.routines) lint_routine(r);
    report_lock_cycles();
    return std::move(result_);
  }

 private:
  // --- emission -------------------------------------------------------------

  [[nodiscard]] std::string source_line(int line) const {
    if (line < 1 || static_cast<std::size_t>(line) > src_lines_.size())
      return "";
    return src_lines_[static_cast<std::size_t>(line) - 1];
  }

  /// Column of the statement's first token in the original source line.
  [[nodiscard]] int stmt_col(int line) const {
    const std::string src = source_line(line);
    for (std::size_t i = 0; i < src.size(); ++i) {
      if (!is_space(src[i])) return static_cast<int>(i) + 1;
    }
    return src.empty() ? 0 : 1;
  }

  void emit(LintRule rule, int line, int col, int length, std::string msg) {
    if (opts_.rules.count(rule) == 0) return;
    if (suppress_.suppressed(rule, line)) return;
    const Severity sev = opts_.findings_are_errors ? Severity::kError
                                                   : Severity::kWarning;
    diags_.report(sev, line, col, length, lint_rule_id(rule),
                  std::move(msg), source_line(line));
    ++result_.findings;
  }

  void emit_stmt(LintRule rule, const Stmt& s, std::string msg) {
    const int col = stmt_col(s.line);
    const int length = static_cast<int>(trim(source_line(s.line)).size());
    emit(rule, s.line, col, length, std::move(msg));
  }

  /// Point a finding at the variable name inside the statement's line.
  void emit_at_name(LintRule rule, const Stmt& s, const std::string& name,
                    std::string msg) {
    const std::string src = source_line(s.line);
    std::size_t pos = std::string::npos;
    std::size_t from = 0;
    while ((pos = src.find(name, from)) != std::string::npos) {
      const bool left = pos == 0 || !is_word_char(src[pos - 1]);
      const std::size_t after = pos + name.size();
      const bool right = after >= src.size() || !is_word_char(src[after]);
      if (left && right) break;
      from = pos + 1;
    }
    if (pos == std::string::npos) {
      emit_stmt(rule, s, std::move(msg));
      return;
    }
    emit(rule, s.line, static_cast<int>(pos) + 1,
         static_cast<int>(name.size()), std::move(msg));
  }

  // --- protection helpers ---------------------------------------------------

  [[nodiscard]] bool write_protected_here() const {
    for (const Prot& p : prot_) {
      if (p.kind == ProtKind::kBarrier || p.kind == ProtKind::kCritical ||
          p.kind == ProtKind::kLockHeld) {
        return true;
      }
    }
    return std::any_of(pcase_sect_.begin(), pcase_sect_.end(),
                       [](bool b) { return b; });
  }

  [[nodiscard]] bool inside(ProtKind k) const {
    return std::any_of(prot_.begin(), prot_.end(),
                       [k](const Prot& p) { return p.kind == k; });
  }

  [[nodiscard]] std::vector<std::string> doall_index_vars() const {
    std::vector<std::string> out;
    for (const Prot& p : prot_) {
      if (p.kind != ProtKind::kDoall) continue;
      out.insert(out.end(), p.index_vars.begin(), p.index_vars.end());
    }
    return out;
  }

  void pop_last(ProtKind k) {
    for (auto it = prot_.rbegin(); it != prot_.rend(); ++it) {
      if (it->kind == k) {
        prot_.erase(std::next(it).base());
        return;
      }
    }
  }

  [[nodiscard]] std::vector<std::string> held_locks() const {
    std::vector<std::string> out;
    for (const Prot& p : prot_) {
      if (p.kind == ProtKind::kCritical || p.kind == ProtKind::kLockHeld) {
        out.push_back(p.name);
      }
    }
    return out;
  }

  void acquire_lock(const Stmt& s, ProtKind kind) {
    for (const std::string& outer : held_locks()) {
      result_.lock_graph.add_edge(outer, s.name, s.line);
    }
    prot_.push_back({kind, s.name, {}});
  }

  // --- async protocol (R3) --------------------------------------------------

  [[nodiscard]] bool async_context_unknown() const {
    return inside(ProtKind::kDoall) || inside(ProtKind::kAskfor) ||
           tracker_.inside_any();
  }

  void async_all_unknown() {
    for (auto& [name, st] : async_) st = AsyncState::kUnknown;
  }

  void async_op(const Routine& r, const Stmt& s) {
    const auto var = r.vars.find(s.name);
    if (var == r.vars.end() || var->second.cls != VarClass::kAsync) return;
    if (async_context_unknown()) {
      async_[s.name] = AsyncState::kUnknown;
      return;
    }
    // Declared async vars were pre-seeded in lint_routine.
    AsyncState& st = async_[s.name];
    switch (s.kind) {
      case StmtKind::kProduce:
        if (st == AsyncState::kFull) {
          emit_at_name(LintRule::kR3, s, s.name,
                       "Produce on async variable '" + s.name +
                           "' that is already full on this path - the "
                           "producer blocks forever unless another "
                           "process consumes");
        }
        st = AsyncState::kFull;
        break;
      case StmtKind::kConsume:
        if (st == AsyncState::kEmpty) {
          emit_at_name(LintRule::kR3, s, s.name,
                       "Consume of async variable '" + s.name +
                           "' with no reaching Produce - the consumer "
                           "blocks forever on this path");
        }
        st = AsyncState::kEmpty;
        break;
      case StmtKind::kCopy:
        if (st == AsyncState::kEmpty) {
          emit_at_name(LintRule::kR3, s, s.name,
                       "Copy of async variable '" + s.name +
                           "' with no reaching Produce - the reader "
                           "blocks forever on this path");
        }
        break;
      case StmtKind::kVoid:
        if (st == AsyncState::kEmpty) {
          emit_at_name(LintRule::kR3, s, s.name,
                       "double Void of async variable '" + s.name +
                           "' - it is already empty on this path");
        }
        st = AsyncState::kEmpty;
        break;
      default:
        break;
    }
  }

  // --- shared-write rules (R2, R5) ------------------------------------------

  void scan_writes(const Routine& r, const Stmt& s,
                   const std::string& stripped) {
    if (write_protected_here()) return;
    const bool in_doall = inside(ProtKind::kDoall);
    const std::vector<std::string> index_vars = doall_index_vars();
    for (const auto& [name, var] : r.vars) {
      if (var.cls != VarClass::kShared) continue;
      for (const WriteHit& hit : find_writes(stripped, name)) {
        const int col = static_cast<int>(hit.pos) + 1;
        const int len = static_cast<int>(name.size());
        if (!in_doall) {
          emit(LintRule::kR2, s.line, col, len,
               "write to shared variable '" + name +
                   "' outside any critical section, barrier section, "
                   "lock, or Pcase section - every process races on "
                   "this store");
          continue;
        }
        if (!hit.subscripts.empty()) {
          bool exact = false;
          bool offset = false;
          for (const std::string& sub : hit.subscripts) {
            const std::string t = trim(sub);
            if (std::find(index_vars.begin(), index_vars.end(), t) !=
                index_vars.end()) {
              exact = true;
            } else {
              for (const std::string& iv : index_vars) {
                if (contains_word(sub, iv)) offset = true;
              }
            }
          }
          if (exact && !offset) continue;  // partitioned by the index
          if (offset) {
            emit(LintRule::kR5, s.line, col, len,
                 "write to shared array '" + name +
                     "' at an offset of the loop index inside a DOALL "
                     "body - a loop-carried dependence the scheduler is "
                     "free to reorder");
            continue;
          }
          emit(LintRule::kR2, s.line, col, len,
               "write to shared array '" + name +
                   "' whose subscript does not depend on the DOALL index "
                   "- concurrent iterations race on the same element");
          continue;
        }
        if (hit.compound || hit.rhs_reads_target) {
          emit(LintRule::kR5, s.line, col, len,
               "scalar reduction into shared variable '" + name +
                   "' inside a DOALL body without the Reduce statement - "
                   "concurrent iterations lose updates");
        } else {
          emit(LintRule::kR2, s.line, col, len,
               "write to shared variable '" + name +
                   "' inside a DOALL body with no protecting critical "
                   "section or lock");
        }
      }
    }
  }

  // --- the walk -------------------------------------------------------------

  void lint_routine(const Routine& r) {
    tracker_ = ControlTracker{};
    prot_.clear();
    pcase_sect_.clear();
    async_.clear();
    for (const auto& [name, var] : r.vars) {
      if (var.cls == VarClass::kAsync) {
        async_[name] = r.is_main ? AsyncState::kEmpty : AsyncState::kUnknown;
      }
    }
    bool join_seen = false;
    bool after_join_reported = false;

    for (const Stmt& s : r.stmts) {
      if (s.kind == StmtKind::kComment) continue;
      if (s.kind == StmtKind::kPassthrough) {
        const std::string stripped = strip_code(s.text);
        if (trim(stripped).empty()) continue;
        if (join_seen && !after_join_reported) {
          after_join_reported = true;
          emit_stmt(LintRule::kR6, s,
                    "statement after Join is unreachable - the force has "
                    "already been joined");
        }
        scan_writes(r, s, stripped);
        if (tracker_.feed(stripped)) async_all_unknown();
        continue;
      }

      // A construct statement.
      if (join_seen && s.kind != StmtKind::kModuleEnd) {
        if (s.kind == StmtKind::kJoin) {
          emit_stmt(LintRule::kR6, s, "duplicate Join - the force is "
                                      "already joined on every path");
        } else if (!after_join_reported) {
          after_join_reported = true;
          emit_stmt(LintRule::kR6, s,
                    "statement after Join is unreachable - the force has "
                    "already been joined");
        }
      }
      if (is_collective(s.kind) && tracker_.divergent_now()) {
        emit_stmt(LintRule::kR1, s,
                  "collective construct on a divergent control path - "
                  "processes not taking this branch never arrive and the "
                  "force deadlocks");
      }
      tracker_.consume_statement();

      switch (s.kind) {
        case StmtKind::kBarrierBegin:
          prot_.push_back({ProtKind::kBarrier, "", {}});
          break;
        case StmtKind::kBarrierEnd:
          pop_last(ProtKind::kBarrier);
          break;
        case StmtKind::kCriticalBegin:
          acquire_lock(s, ProtKind::kCritical);
          break;
        case StmtKind::kCriticalEnd:
          pop_last(ProtKind::kCritical);
          break;
        case StmtKind::kLock:
          acquire_lock(s, ProtKind::kLockHeld);
          break;
        case StmtKind::kUnlock:
          for (auto it = prot_.rbegin(); it != prot_.rend(); ++it) {
            if (it->kind == ProtKind::kLockHeld && it->name == s.name) {
              prot_.erase(std::next(it).base());
              break;
            }
          }
          break;
        case StmtKind::kDoBegin:
          prot_.push_back({ProtKind::kDoall, s.name, s.index_vars});
          break;
        case StmtKind::kDoEnd:
          pop_last(ProtKind::kDoall);
          break;
        case StmtKind::kPcaseBegin:
          pcase_sect_.push_back(false);
          break;
        case StmtKind::kUsect:
        case StmtKind::kCsect:
          if (!pcase_sect_.empty()) pcase_sect_.back() = true;
          break;
        case StmtKind::kPcaseEnd:
          if (!pcase_sect_.empty()) pcase_sect_.pop_back();
          break;
        case StmtKind::kAskforBegin:
          prot_.push_back({ProtKind::kAskfor, s.name, {}});
          break;
        case StmtKind::kAskforEnd:
          pop_last(ProtKind::kAskfor);
          break;
        case StmtKind::kProduce:
        case StmtKind::kConsume:
        case StmtKind::kCopy:
        case StmtKind::kVoid:
          async_op(r, s);
          break;
        case StmtKind::kForcecall:
          // The callee may produce/consume anything.
          async_all_unknown();
          break;
        case StmtKind::kJoin:
          join_seen = true;
          break;
        default:
          break;
      }
    }
  }

  void report_lock_cycles() {
    for (const auto& cycle : result_.lock_graph.cycles()) {
      std::string names;
      for (const auto& n : cycle) {
        if (!names.empty()) names += " -> ";
        names += "'" + n + "'";
      }
      if (cycle.size() == 1) names += " -> '" + cycle[0] + "'";
      const int line = result_.lock_graph.cycle_line(cycle);
      emit(LintRule::kR4, line, stmt_col(line),
           static_cast<int>(trim(source_line(line)).size()),
           "static lock-order cycle: " + names +
               " - a schedule interleaving these acquisition chains "
               "deadlocks (the runtime Sentry reports the same "
               "inversion class)");
    }
  }

  const LintOptions& opts_;
  DiagSink& diags_;
  std::vector<std::string> src_lines_;
  Suppressions suppress_;
  LintResult result_;

  ControlTracker tracker_;
  std::vector<Prot> prot_;
  std::vector<bool> pcase_sect_;
  std::map<std::string, AsyncState> async_;
};

}  // namespace

const char* lint_rule_id(LintRule rule) {
  switch (rule) {
    case LintRule::kR1: return "force-lint-R1";
    case LintRule::kR2: return "force-lint-R2";
    case LintRule::kR3: return "force-lint-R3";
    case LintRule::kR4: return "force-lint-R4";
    case LintRule::kR5: return "force-lint-R5";
    case LintRule::kR6: return "force-lint-R6";
  }
  return "force-lint";
}

LintOptions parse_lint_spec(const std::string& spec) {
  LintOptions opts;
  std::set<LintRule> selected;
  for (const std::string& raw : split_args(spec)) {
    const std::string tok = to_lower(raw);
    if (tok.empty() || tok == "all" || tok == "w") continue;
    if (tok == "e") {
      opts.findings_are_errors = true;
      continue;
    }
    if (tok.size() == 2 && tok[0] == 'r' && tok[1] >= '1' && tok[1] <= '6') {
      selected.insert(static_cast<LintRule>(tok[1] - '1'));
      continue;
    }
    opts.unknown_tokens.push_back(raw);
  }
  if (!selected.empty()) opts.rules = selected;
  return opts;
}

LintResult run_forcelint(const std::string& source, const LintOptions& opts,
                         DiagSink& diags) {
  if (!opts.unknown_tokens.empty()) {
    std::string toks;
    for (const auto& t : opts.unknown_tokens) {
      if (!toks.empty()) toks += ", ";
      toks += "'" + t + "'";
    }
    diags.note(0, "forcelint: ignoring unknown --lint token(s) " + toks +
                      " (expected R1..R6, W, E, all)");
  }
  // Lint analyzes whatever pass 1 can recover; its syntax diagnostics are
  // the translator's to report, so they go to a scratch sink here.
  DiagSink scratch;
  const RewriteResult pass1 = rewrite_force_syntax(source, scratch);
  const ConstructGraph graph = build_construct_graph(pass1);
  Linter linter(opts, diags, split_lines(source));
  return linter.run(graph);
}

}  // namespace force::preproc
