#include "preproc/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <optional>

#include "machdep/backend.hpp"
#include "preproc/machmacros.hpp"
#include "preproc/pass1.hpp"
#include "preproc/textutil.hpp"

namespace force::preproc {

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) { return c == ' ' || c == '\t'; }

/// Whole-word containment ("I" in "I+1" but not in "MIN").
bool contains_word(const std::string& s, const std::string& word) {
  if (word.empty()) return false;
  std::size_t i = 0;
  while ((i = s.find(word, i)) != std::string::npos) {
    const bool left_ok = i == 0 || !is_word_char(s[i - 1]);
    const std::size_t after = i + word.size();
    const bool right_ok = after >= s.size() || !is_word_char(s[after]);
    if (left_ok && right_ok) return true;
    ++i;
  }
  return false;
}

/// Blanks out string literals, character literals and comments so the
/// write scanner and control tracker never match inside them. Offsets are
/// preserved (replaced chars become spaces).
std::string strip_code(const std::string& line) {
  std::string out = line;
  bool in_str = false;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    if (in_str) {
      if (c == '\\' && i + 1 < out.size()) {
        out[i] = ' ';
        out[++i] = ' ';
        continue;
      }
      if (c == '"') in_str = false;
      out[i] = ' ';
      continue;
    }
    if (c == '"') {
      in_str = true;
      out[i] = ' ';
      continue;
    }
    if (c == '\'') {
      // A character literal unless it is a digit separator (1'000).
      if (i > 0 && is_word_char(out[i - 1])) continue;
      std::size_t j = i + 1;
      if (j < out.size() && out[j] == '\\') ++j;
      if (j < out.size()) ++j;
      if (j < out.size() && out[j] == '\'') {
        for (std::size_t k = i; k <= j; ++k) out[k] = ' ';
        i = j;
      }
      continue;
    }
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '/') {
      for (std::size_t k = i; k < out.size(); ++k) out[k] = ' ';
      break;
    }
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '*') {
      const std::size_t close = out.find("*/", i + 2);
      const std::size_t end = close == std::string::npos ? out.size()
                                                         : close + 2;
      for (std::size_t k = i; k < end; ++k) out[k] = ' ';
      i = end == 0 ? 0 : end - 1;
      continue;
    }
  }
  return out;
}

// --- write scanner ----------------------------------------------------------

struct WriteHit {
  std::size_t pos = 0;                  ///< offset of the variable name
  std::vector<std::string> subscripts;  ///< consecutive [..] groups
  bool compound = false;                ///< +=, ++, ... (reads and writes)
  bool rhs_reads_target = false;        ///< plain '=' whose RHS names the var
};

/// Finds assignment-shaped uses of `name` in a stripped line: `name = ..`,
/// `name[..] op= ..`, `name++`, `++name`. Comparison operators are not
/// writes.
std::vector<WriteHit> find_writes(const std::string& s,
                                  const std::string& name) {
  std::vector<WriteHit> hits;
  std::size_t from = 0;
  std::size_t i = 0;
  while ((i = s.find(name, from)) != std::string::npos) {
    from = i + 1;
    if (i > 0 && is_word_char(s[i - 1])) continue;
    const std::size_t after = i + name.size();
    if (after < s.size() && is_word_char(s[after])) continue;

    WriteHit hit;
    hit.pos = i;

    // Prefix increment/decrement.
    std::size_t back = i;
    while (back > 0 && is_space(s[back - 1])) --back;
    if (back >= 2 && ((s[back - 1] == '+' && s[back - 2] == '+') ||
                      (s[back - 1] == '-' && s[back - 2] == '-'))) {
      hit.compound = true;
      hits.push_back(std::move(hit));
      continue;
    }

    // Consecutive balanced subscript groups.
    std::size_t j = after;
    bool malformed = false;
    while (true) {
      while (j < s.size() && is_space(s[j])) ++j;
      if (j >= s.size() || s[j] != '[') break;
      int depth = 1;
      const std::size_t start = j + 1;
      std::size_t k = start;
      while (k < s.size() && depth > 0) {
        if (s[k] == '[') ++depth;
        if (s[k] == ']') --depth;
        ++k;
      }
      if (depth != 0) {
        malformed = true;
        break;
      }
      hit.subscripts.push_back(s.substr(start, k - 1 - start));
      j = k;
    }
    if (malformed) continue;
    while (j < s.size() && is_space(s[j])) ++j;
    if (j >= s.size()) continue;

    const char c = s[j];
    const char c2 = j + 1 < s.size() ? s[j + 1] : '\0';
    bool is_write = false;
    if (c == '=' && c2 != '=') {
      is_write = true;
    } else if ((c == '+' && c2 == '+') || (c == '-' && c2 == '-')) {
      is_write = true;
      hit.compound = true;
    } else if (std::string("+-*/%&|^").find(c) != std::string::npos &&
               c2 == '=') {
      is_write = true;
      hit.compound = true;
    } else if (((c == '<' && c2 == '<') || (c == '>' && c2 == '>')) &&
               j + 2 < s.size() && s[j + 2] == '=') {
      is_write = true;
      hit.compound = true;
    }
    if (!is_write) continue;
    if (c == '=' && !hit.compound) {
      hit.rhs_reads_target = contains_word(s.substr(j + 1), name);
    }
    hits.push_back(std::move(hit));
  }
  return hits;
}

// --- passthrough control-flow tracker ---------------------------------------

/// Tracks C++ control regions opened by passthrough lines: brace-balanced
/// regions with a divergence flag (if/else/switch bodies may be entered by
/// a subset of the force; while/for bodies are assumed schedule-uniform,
/// the dialect's documented discipline - see docs/LANGUAGE.md "SPMD
/// discipline").
class ControlTracker {
 public:
  [[nodiscard]] bool divergent_now() const {
    if (pending_single_ > 0 && pending_divergent_) return true;
    return std::any_of(stack_.begin(), stack_.end(),
                       [](const Region& r) { return r.divergent; });
  }
  [[nodiscard]] bool inside_any() const {
    return !stack_.empty() || pending_single_ > 0;
  }
  /// A construct statement consumes a braceless single-statement control.
  void consume_statement() {
    if (pending_single_ > 0) --pending_single_;
  }

  /// Updates the region stack from one stripped passthrough line; returns
  /// true when any region opened or closed (async states go unknown).
  bool feed(const std::string& s) {
    bool changed = false;
    std::size_t i = 0;
    while (i < s.size() && is_space(s[i])) ++i;
    if (pending_single_ > 0 && i < s.size()) {
      if (s[i] == '{') {
        // The braceless control's compound statement: inherit divergence.
        stack_.push_back({pending_divergent_});
        changed = true;
        ++i;
      }
      pending_single_ = 0;
    }
    enum class Pend { kNone, kCond, kLoop };
    Pend pend = Pend::kNone;
    int paren = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (is_word_char(c) && !std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t j = i;
        while (j < s.size() && is_word_char(s[j])) ++j;
        const std::string word = s.substr(i, j - i);
        if (word == "if" || word == "else" || word == "switch") {
          pend = Pend::kCond;
        } else if (word == "while" || word == "for" || word == "do") {
          if (pend != Pend::kCond) pend = Pend::kLoop;
        }
        i = j;
        continue;
      }
      if (c == '(') ++paren;
      if (c == ')' && paren > 0) --paren;
      if (c == ';' && paren == 0) pend = Pend::kNone;
      if (c == '{') {
        stack_.push_back({pend == Pend::kCond});
        pend = Pend::kNone;
        changed = true;
      }
      if (c == '}' && !stack_.empty()) {
        stack_.pop_back();
        changed = true;
      }
      ++i;
    }
    if (pend != Pend::kNone && paren == 0) {
      // "if (cond)" / "for (...)" with the controlled statement on the
      // next line.
      pending_single_ = 1;
      pending_divergent_ = pend == Pend::kCond;
      changed = true;
    }
    return changed;
  }

 private:
  struct Region {
    bool divergent = false;
  };
  std::vector<Region> stack_;
  int pending_single_ = 0;
  bool pending_divergent_ = false;
};

// --- suppression directives -------------------------------------------------

/// Region-scoped suppression: `!force$ lint off(R2[,R5])` disables the
/// rules from that line until `!force$ lint on(...)` or end of file;
/// without a rule list every rule is toggled.
class Suppressions {
 public:
  explicit Suppressions(const std::vector<std::string>& lines) {
    for (std::size_t n = 0; n < lines.size(); ++n) {
      parse_line(trim(lines[n]), static_cast<int>(n) + 1);
    }
  }

  [[nodiscard]] bool suppressed(LintRule rule, int line) const {
    bool off_all = false;
    std::set<LintRule> off;
    for (const Event& ev : events_) {
      if (ev.line > line) break;
      if (ev.all) {
        off_all = ev.off;
        off.clear();
      } else if (ev.off) {
        off.insert(ev.rule);
      } else {
        off.erase(ev.rule);
      }
    }
    return off_all || off.count(rule) != 0;
  }

  /// Directive lines whose `off` region is still open at end of file
  /// (the W1 diagnostic: rules silently disabled for the rest of the
  /// unit is almost always a forgotten `!force$ lint on`).
  [[nodiscard]] std::vector<int> unclosed_off_lines() const {
    std::optional<int> open_all;
    std::map<LintRule, int> open_rules;
    for (const Event& ev : events_) {
      if (ev.all) {
        if (ev.off) {
          open_all = ev.line;
        } else {
          open_all.reset();
        }
        open_rules.clear();
      } else if (ev.off) {
        open_rules.emplace(ev.rule, ev.line);  // region start = first off
      } else {
        open_rules.erase(ev.rule);
      }
    }
    std::set<int> lines;
    if (open_all) lines.insert(*open_all);
    for (const auto& [rule, line] : open_rules) lines.insert(line);
    return {lines.begin(), lines.end()};
  }

 private:
  struct Event {
    int line = 0;
    bool off = false;
    bool all = false;
    LintRule rule = LintRule::kR1;
  };

  void parse_line(const std::string& trimmed, int lineno) {
    std::string rest;
    const std::string lower = to_lower(trimmed);
    for (const char* prefix : {"!force$", "! force$", "//force$", "// force$"}) {
      if (lower.rfind(prefix, 0) == 0) {
        rest = trim(lower.substr(std::string(prefix).size()));
        break;
      }
    }
    if (rest.empty()) return;
    if (rest.rfind("lint", 0) != 0) return;
    rest = trim(rest.substr(4));
    // Allow a trailing comment on the directive line.
    if (const std::size_t bang = rest.find('!'); bang != std::string::npos) {
      rest = trim(rest.substr(0, bang));
    }
    if (const std::size_t sl = rest.find("//"); sl != std::string::npos) {
      rest = trim(rest.substr(0, sl));
    }
    bool off = false;
    if (rest.rfind("off", 0) == 0) {
      off = true;
      rest = trim(rest.substr(3));
    } else if (rest.rfind("on", 0) == 0) {
      rest = trim(rest.substr(2));
    } else {
      return;
    }
    if (rest.empty()) {
      events_.push_back({lineno, off, true, LintRule::kR1});
      return;
    }
    if (rest.front() != '(' || rest.back() != ')') return;
    for (const auto& tok : split_args(rest.substr(1, rest.size() - 2))) {
      const std::string t = to_lower(tok);
      if (t.size() == 2 && t[0] == 'r' && t[1] >= '1' && t[1] <= '7') {
        events_.push_back(
            {lineno, off, false,
             static_cast<LintRule>(t[1] - '1')});
      }
    }
  }

  std::vector<Event> events_;
};

// --- the rule engine --------------------------------------------------------

enum class ProtKind { kBarrier, kCritical, kLockHeld, kDoall, kAskfor };

struct Prot {
  ProtKind kind;
  std::string name;
  std::vector<std::string> index_vars;
};

enum class AsyncState { kEmpty, kFull, kUnknown };

/// Collective constructs every process must reach together. Forcecall is
/// NOT in this set: whether a call is collective is decided by the
/// callee's effect summary (interprocedural R1).
bool is_collective(StmtKind k) {
  switch (k) {
    case StmtKind::kBarrierBegin:
    case StmtKind::kBarrierEnd:
    case StmtKind::kDoBegin:
    case StmtKind::kDoEnd:
    case StmtKind::kPcaseBegin:
    case StmtKind::kPcaseEnd:
    case StmtKind::kUsect:
    case StmtKind::kCsect:
    case StmtKind::kAskforBegin:
    case StmtKind::kAskforEnd:
    case StmtKind::kSeedwork:
    case StmtKind::kReduce:
    case StmtKind::kJoin:
      return true;
    default:
      return false;
  }
}

/// One lowered translation unit plus everything the rule walk needs from
/// it: source lines for snippets/columns, suppression regions, and the
/// diagnostic file tag ("" = primary unit).
struct UnitState {
  std::string file;         ///< diagnostic provenance; "" = primary unit
  std::string report_name;  ///< real name (report JSON, summaries)
  std::vector<std::string> lines;
  Suppressions suppress;
  ConstructGraph graph;
};

// --- interprocedural effect summaries ---------------------------------------

/// Computes per-routine EffectSummary bottom-up over the whole-program
/// Forcecall graph. Monotone facts (collectives, locks, shared writes,
/// unresolved-call taint) converge by fixpoint iteration; the async
/// full/empty transformer is not monotone under recursion, so every
/// routine on a call-graph cycle is pre-marked async-top (callers drop
/// all async knowledge at the call, then apply any definite states the
/// routine establishes after its last recursive call).
class SummaryBuilder {
 public:
  explicit SummaryBuilder(const std::vector<UnitState>& units)
      : units_(units) {
    for (std::size_t u = 0; u < units_.size(); ++u) {
      const auto& routines = units_[u].graph.routines;
      for (std::size_t r = 0; r < routines.size(); ++r) {
        const std::string& name = routines[r].name;
        if (order_.count(name) != 0) continue;  // first definition wins
        order_.emplace(name, owned_.size());
        owned_.push_back({u, r});
      }
    }
    mark_recursive();
  }

  std::map<std::string, EffectSummary> build() {
    std::map<std::string, EffectSummary> out;
    for (const auto& [name, idx] : order_) {
      EffectSummary s;
      s.routine = name;
      s.unit = units_[owned_[idx].first].report_name;
      s.async_top = recursive_.count(name) != 0;
      out.emplace(name, std::move(s));
    }
    // Fixpoint: the monotone facts form a finite lattice, so iteration
    // bounded by the routine count converges; the bound below is a
    // belt-and-braces guard, after which unstable routines (which a
    // correct premark should have prevented) degrade to the top.
    const std::size_t max_iters = 2 * owned_.size() + 4;
    bool changed = true;
    std::size_t iter = 0;
    while (changed && iter++ < max_iters) {
      changed = false;
      for (const auto& [u, r] : owned_) {
        const Routine& routine = units_[u].graph.routines[r];
        EffectSummary next = summarize(units_[u], routine, out);
        EffectSummary& cur = out[routine.name];
        if (!(next == cur)) {
          cur = std::move(next);
          changed = true;
        }
      }
    }
    if (changed) {
      for (auto& [name, s] : out) s.async_top = true;
    }
    return out;
  }

 private:
  /// Syntactic call edges (resolved names only), used to find routines
  /// that can reach themselves.
  void mark_recursive() {
    std::map<std::string, std::set<std::string>> callees;
    for (const auto& [u, r] : owned_) {
      const Routine& routine = units_[u].graph.routines[r];
      auto& edges = callees[routine.name];
      for (const Stmt& s : routine.stmts) {
        if (s.kind == StmtKind::kForcecall && order_.count(s.name) != 0) {
          edges.insert(s.name);
        }
      }
    }
    for (const auto& [name, direct] : callees) {
      std::set<std::string> seen;
      std::vector<std::string> stack(direct.begin(), direct.end());
      bool reaches_self = direct.count(name) != 0;
      while (!stack.empty() && !reaches_self) {
        const std::string cur = stack.back();
        stack.pop_back();
        if (!seen.insert(cur).second) continue;
        const auto it = callees.find(cur);
        if (it == callees.end()) continue;
        if (it->second.count(name) != 0) reaches_self = true;
        for (const auto& next : it->second) stack.push_back(next);
      }
      if (reaches_self) recursive_.insert(name);
    }
  }

  static void set_async(EffectSummary& s, const std::string& var,
                        AsyncOut out) {
    s.async_out[var] = out;
  }

  EffectSummary summarize(const UnitState& unit, const Routine& r,
                          const std::map<std::string, EffectSummary>& cur) {
    EffectSummary s;
    s.routine = r.name;
    s.unit = unit.report_name;
    s.async_top = recursive_.count(r.name) != 0;
    ControlTracker tracker;
    int region_depth = 0;  // DOALL / Askfor bodies run per-iteration
    for (const Stmt& st : r.stmts) {
      if (st.kind == StmtKind::kComment) continue;
      if (st.kind == StmtKind::kPassthrough) {
        const std::string stripped = strip_code(st.text);
        if (trim(stripped).empty()) continue;
        for (const auto& [name, var] : r.vars) {
          if (var.cls != VarClass::kShared) continue;
          if (!find_writes(stripped, name).empty()) {
            s.shared_writes.insert(name);
          }
        }
        tracker.feed(stripped);
        continue;
      }
      const bool conditional =
          tracker.inside_any() || region_depth > 0;
      if (is_collective(st.kind)) {
        s.may_execute_collective = true;
        if (!tracker.divergent_now()) s.collective_on_straight_path = true;
      }
      tracker.consume_statement();
      switch (st.kind) {
        case StmtKind::kCriticalBegin:
        case StmtKind::kLock:
          if (!st.name.empty()) s.locks_acquired.insert(st.name);
          break;
        case StmtKind::kProduce:
          set_async(s, st.name,
                    conditional ? AsyncOut::kUnknown : AsyncOut::kFull);
          break;
        case StmtKind::kConsume:
        case StmtKind::kVoid:
          set_async(s, st.name,
                    conditional ? AsyncOut::kUnknown : AsyncOut::kEmpty);
          break;
        case StmtKind::kDoBegin:
        case StmtKind::kAskforBegin:
          ++region_depth;
          break;
        case StmtKind::kDoEnd:
        case StmtKind::kAskforEnd:
          if (region_depth > 0) --region_depth;
          break;
        case StmtKind::kForcecall: {
          const auto callee = cur.find(st.name);
          if (callee == cur.end()) {
            // Unresolved: the lattice top. It may execute a collective
            // and do anything to async state; no lock knowledge is
            // invented (R4 under-approximates across unknown callees).
            s.calls_unresolved = true;
            s.async_top = true;
            s.may_execute_collective = true;
            for (auto& [var, out] : s.async_out) out = AsyncOut::kUnknown;
            break;
          }
          const EffectSummary& c = callee->second;
          s.callees.insert(st.name);
          s.may_execute_collective |= c.may_execute_collective;
          if (!tracker.divergent_now() && c.collective_on_straight_path) {
            s.collective_on_straight_path = true;
          }
          s.calls_unresolved |= c.calls_unresolved;
          s.locks_acquired.insert(c.locks_acquired.begin(),
                                  c.locks_acquired.end());
          s.shared_writes.insert(c.shared_writes.begin(),
                                 c.shared_writes.end());
          if (c.async_top) {
            // Everything known so far is stale; states the callee (or
            // this routine, later) establishes definitively still apply.
            s.async_top = true;
            for (auto& [var, out] : s.async_out) out = AsyncOut::kUnknown;
          }
          for (const auto& [var, out] : c.async_out) {
            set_async(s, var,
                      conditional ? AsyncOut::kUnknown : out);
          }
          break;
        }
        default:
          break;
      }
    }
    return s;
  }

  const std::vector<UnitState>& units_;
  std::map<std::string, std::size_t> order_;           // name -> owned_ idx
  std::vector<std::pair<std::size_t, std::size_t>> owned_;  // (unit, routine)
  std::set<std::string> recursive_;
};

class Linter {
 public:
  Linter(const LintOptions& opts, DiagSink& diags,
         const std::vector<UnitState>& units)
      : opts_(opts), diags_(diags), units_(units) {}

  LintResult run() {
    SummaryBuilder builder(units_);
    summaries_ = builder.build();
    for (std::size_t u = 0; u < units_.size(); ++u) {
      cur_unit_ = u;
      for (const Routine& r : units_[u].graph.routines) lint_routine(r);
    }
    scan_process_models();
    report_lock_cycles();
    report_unclosed_suppressions();
    for (std::size_t u = 0; u < units_.size(); ++u) {
      for (const Routine& r : units_[u].graph.routines) {
        const auto it = summaries_.find(r.name);
        if (it != summaries_.end() &&
            it->second.unit == units_[u].report_name &&
            !contains_summary(it->second.routine)) {
          result_.summaries.push_back(it->second);
        }
      }
    }
    return std::move(result_);
  }

 private:
  [[nodiscard]] bool contains_summary(const std::string& routine) const {
    return std::any_of(result_.summaries.begin(), result_.summaries.end(),
                       [&](const EffectSummary& s) {
                         return s.routine == routine;
                       });
  }

  // --- emission -------------------------------------------------------------

  [[nodiscard]] const UnitState& unit() const { return units_[cur_unit_]; }

  [[nodiscard]] std::size_t unit_index_for_file(const std::string& file)
      const {
    for (std::size_t u = 0; u < units_.size(); ++u) {
      if (units_[u].file == file) return u;
    }
    return 0;
  }

  [[nodiscard]] std::string source_line(int line) const {
    const auto& lines = unit().lines;
    if (line < 1 || static_cast<std::size_t>(line) > lines.size()) return "";
    return lines[static_cast<std::size_t>(line) - 1];
  }

  /// Column of the statement's first token in the original source line.
  [[nodiscard]] int stmt_col(int line) const {
    const std::string src = source_line(line);
    for (std::size_t i = 0; i < src.size(); ++i) {
      if (!is_space(src[i])) return static_cast<int>(i) + 1;
    }
    return src.empty() ? 0 : 1;
  }

  void emit(LintRule rule, int line, int col, int length, std::string msg) {
    if (opts_.rules.count(rule) == 0) return;
    if (unit().suppress.suppressed(rule, line)) return;
    const Severity sev = opts_.findings_are_errors ? Severity::kError
                                                   : Severity::kWarning;
    diags_.report_in_file(unit().file, sev, line, col, length,
                          lint_rule_id(rule), std::move(msg),
                          source_line(line));
    ++result_.findings;
  }

  void emit_stmt(LintRule rule, const Stmt& s, std::string msg) {
    const int col = stmt_col(s.line);
    const int length = static_cast<int>(trim(source_line(s.line)).size());
    emit(rule, s.line, col, length, std::move(msg));
  }

  /// Point a finding at the variable name inside the statement's line.
  void emit_at_name(LintRule rule, const Stmt& s, const std::string& name,
                    std::string msg) {
    const std::string src = source_line(s.line);
    std::size_t pos = std::string::npos;
    std::size_t from = 0;
    while ((pos = src.find(name, from)) != std::string::npos) {
      const bool left = pos == 0 || !is_word_char(src[pos - 1]);
      const std::size_t after = pos + name.size();
      const bool right = after >= src.size() || !is_word_char(src[after]);
      if (left && right) break;
      from = pos + 1;
    }
    if (pos == std::string::npos) {
      emit_stmt(rule, s, std::move(msg));
      return;
    }
    emit(rule, s.line, static_cast<int>(pos) + 1,
         static_cast<int>(name.size()), std::move(msg));
  }

  // --- protection helpers ---------------------------------------------------

  [[nodiscard]] bool write_protected_here() const {
    for (const Prot& p : prot_) {
      if (p.kind == ProtKind::kBarrier || p.kind == ProtKind::kCritical ||
          p.kind == ProtKind::kLockHeld) {
        return true;
      }
    }
    return std::any_of(pcase_sect_.begin(), pcase_sect_.end(),
                       [](bool b) { return b; });
  }

  [[nodiscard]] bool inside(ProtKind k) const {
    return std::any_of(prot_.begin(), prot_.end(),
                       [k](const Prot& p) { return p.kind == k; });
  }

  [[nodiscard]] std::vector<std::string> doall_index_vars() const {
    std::vector<std::string> out;
    for (const Prot& p : prot_) {
      if (p.kind != ProtKind::kDoall) continue;
      out.insert(out.end(), p.index_vars.begin(), p.index_vars.end());
    }
    return out;
  }

  void pop_last(ProtKind k) {
    for (auto it = prot_.rbegin(); it != prot_.rend(); ++it) {
      if (it->kind == k) {
        prot_.erase(std::next(it).base());
        return;
      }
    }
  }

  [[nodiscard]] std::vector<std::string> held_locks() const {
    std::vector<std::string> out;
    for (const Prot& p : prot_) {
      if (p.kind == ProtKind::kCritical || p.kind == ProtKind::kLockHeld) {
        out.push_back(p.name);
      }
    }
    return out;
  }

  void acquire_lock(const Stmt& s, ProtKind kind) {
    for (const std::string& outer : held_locks()) {
      result_.lock_graph.add_edge(outer, s.name,
                                  SrcSite{unit().file, s.line});
    }
    prot_.push_back({kind, s.name, {}});
  }

  // --- async protocol (R3) --------------------------------------------------

  [[nodiscard]] bool async_context_unknown() const {
    return inside(ProtKind::kDoall) || inside(ProtKind::kAskfor) ||
           tracker_.inside_any();
  }

  void async_all_unknown() {
    for (auto& [name, st] : async_) st = AsyncState::kUnknown;
  }

  void async_op(const Routine& r, const Stmt& s) {
    const auto var = r.vars.find(s.name);
    if (var == r.vars.end() || var->second.cls != VarClass::kAsync) return;
    if (async_context_unknown()) {
      async_[s.name] = AsyncState::kUnknown;
      return;
    }
    // Declared async vars were pre-seeded in lint_routine.
    AsyncState& st = async_[s.name];
    switch (s.kind) {
      case StmtKind::kProduce:
        if (st == AsyncState::kFull) {
          emit_at_name(LintRule::kR3, s, s.name,
                       "Produce on async variable '" + s.name +
                           "' that is already full on this path - the "
                           "producer blocks forever unless another "
                           "process consumes");
        }
        st = AsyncState::kFull;
        break;
      case StmtKind::kConsume:
        if (st == AsyncState::kEmpty) {
          emit_at_name(LintRule::kR3, s, s.name,
                       "Consume of async variable '" + s.name +
                           "' with no reaching Produce - the consumer "
                           "blocks forever on this path");
        }
        st = AsyncState::kEmpty;
        break;
      case StmtKind::kCopy:
        if (st == AsyncState::kEmpty) {
          emit_at_name(LintRule::kR3, s, s.name,
                       "Copy of async variable '" + s.name +
                           "' with no reaching Produce - the reader "
                           "blocks forever on this path");
        }
        break;
      case StmtKind::kVoid:
        if (st == AsyncState::kEmpty) {
          emit_at_name(LintRule::kR3, s, s.name,
                       "double Void of async variable '" + s.name +
                           "' - it is already empty on this path");
        }
        st = AsyncState::kEmpty;
        break;
      default:
        break;
    }
  }

  /// Applies the callee's async transformer at a Forcecall site - the
  /// interprocedural upgrade over "everything becomes unknown".
  void apply_call_async(const EffectSummary* callee) {
    if (callee == nullptr || callee->async_top) {
      async_all_unknown();
      if (callee == nullptr) return;
    }
    const bool ctx_unknown = async_context_unknown();
    for (const auto& [var, out] : callee->async_out) {
      const auto it = async_.find(var);
      if (it == async_.end()) continue;
      if (ctx_unknown || out == AsyncOut::kUnknown) {
        it->second = AsyncState::kUnknown;
      } else {
        it->second = out == AsyncOut::kFull ? AsyncState::kFull
                                            : AsyncState::kEmpty;
      }
    }
  }

  // --- shared-write rules (R2, R5) ------------------------------------------

  void scan_writes(const Routine& r, const Stmt& s,
                   const std::string& stripped) {
    if (write_protected_here()) return;
    const bool in_doall = inside(ProtKind::kDoall);
    const std::vector<std::string> index_vars = doall_index_vars();
    for (const auto& [name, var] : r.vars) {
      if (var.cls != VarClass::kShared) continue;
      for (const WriteHit& hit : find_writes(stripped, name)) {
        const int col = static_cast<int>(hit.pos) + 1;
        const int len = static_cast<int>(name.size());
        if (!in_doall) {
          emit(LintRule::kR2, s.line, col, len,
               "write to shared variable '" + name +
                   "' outside any critical section, barrier section, "
                   "lock, or Pcase section - every process races on "
                   "this store");
          continue;
        }
        if (!hit.subscripts.empty()) {
          bool exact = false;
          bool offset = false;
          for (const std::string& sub : hit.subscripts) {
            const std::string t = trim(sub);
            if (std::find(index_vars.begin(), index_vars.end(), t) !=
                index_vars.end()) {
              exact = true;
            } else {
              for (const std::string& iv : index_vars) {
                if (contains_word(sub, iv)) offset = true;
              }
            }
          }
          if (exact && !offset) continue;  // partitioned by the index
          if (offset) {
            emit(LintRule::kR5, s.line, col, len,
                 "write to shared array '" + name +
                     "' at an offset of the loop index inside a DOALL "
                     "body - a loop-carried dependence the scheduler is "
                     "free to reorder");
            continue;
          }
          emit(LintRule::kR2, s.line, col, len,
               "write to shared array '" + name +
                   "' whose subscript does not depend on the DOALL index "
                   "- concurrent iterations race on the same element");
          continue;
        }
        if (hit.compound || hit.rhs_reads_target) {
          emit(LintRule::kR5, s.line, col, len,
               "scalar reduction into shared variable '" + name +
                   "' inside a DOALL body without the Reduce statement - "
                   "concurrent iterations lose updates");
        } else {
          emit(LintRule::kR2, s.line, col, len,
               "write to shared variable '" + name +
                   "' inside a DOALL body with no protecting critical "
                   "section or lock");
        }
      }
    }
  }

  // --- the walk -------------------------------------------------------------

  [[nodiscard]] const EffectSummary* summary(const std::string& name) const {
    const auto it = summaries_.find(name);
    return it == summaries_.end() ? nullptr : &it->second;
  }

  void lint_routine(const Routine& r) {
    tracker_ = ControlTracker{};
    prot_.clear();
    pcase_sect_.clear();
    async_.clear();
    for (const auto& [name, var] : r.vars) {
      if (var.cls == VarClass::kAsync) {
        async_[name] = r.is_main ? AsyncState::kEmpty : AsyncState::kUnknown;
      }
    }
    bool join_seen = false;
    bool after_join_reported = false;

    for (const Stmt& s : r.stmts) {
      if (s.kind == StmtKind::kComment) continue;
      if (s.kind == StmtKind::kPassthrough) {
        const std::string stripped = strip_code(s.text);
        if (trim(stripped).empty()) continue;
        if (join_seen && !after_join_reported) {
          after_join_reported = true;
          emit_stmt(LintRule::kR6, s,
                    "statement after Join is unreachable - the force has "
                    "already been joined");
        }
        scan_writes(r, s, stripped);
        if (tracker_.feed(stripped)) async_all_unknown();
        continue;
      }

      // A construct statement.
      if (join_seen && s.kind != StmtKind::kModuleEnd) {
        if (s.kind == StmtKind::kJoin) {
          emit_stmt(LintRule::kR6, s, "duplicate Join - the force is "
                                      "already joined on every path");
        } else if (!after_join_reported) {
          after_join_reported = true;
          emit_stmt(LintRule::kR6, s,
                    "statement after Join is unreachable - the force has "
                    "already been joined");
        }
      }

      // R1: collective on a divergent path. A Forcecall is collective
      // exactly when its callee's summary says a collective may execute
      // inside (unresolved callees stay conservatively collective).
      const EffectSummary* callee =
          s.kind == StmtKind::kForcecall ? summary(s.name) : nullptr;
      bool collective = is_collective(s.kind);
      if (s.kind == StmtKind::kForcecall) {
        collective = callee == nullptr || callee->may_execute_collective;
      }
      if (collective && tracker_.divergent_now()) {
        if (s.kind == StmtKind::kForcecall) {
          emit_stmt(LintRule::kR1,
                    s,
                    callee == nullptr
                        ? "Forcecall '" + s.name +
                              "' on a divergent control path - the callee "
                              "is not statically resolvable and may "
                              "execute a collective construct, so "
                              "processes not taking this branch never "
                              "arrive and the force deadlocks"
                        : "Forcecall '" + s.name +
                              "' on a divergent control path - routine '" +
                              s.name +
                              "' executes a collective construct, so "
                              "processes not taking this branch never "
                              "arrive and the force deadlocks");
        } else {
          emit_stmt(LintRule::kR1, s,
                    "collective construct on a divergent control path - "
                    "processes not taking this branch never arrive and the "
                    "force deadlocks");
        }
      }
      tracker_.consume_statement();

      switch (s.kind) {
        case StmtKind::kBarrierBegin:
          prot_.push_back({ProtKind::kBarrier, "", {}});
          break;
        case StmtKind::kBarrierEnd:
          pop_last(ProtKind::kBarrier);
          break;
        case StmtKind::kCriticalBegin:
          acquire_lock(s, ProtKind::kCritical);
          break;
        case StmtKind::kCriticalEnd:
          pop_last(ProtKind::kCritical);
          break;
        case StmtKind::kLock:
          acquire_lock(s, ProtKind::kLockHeld);
          break;
        case StmtKind::kUnlock:
          for (auto it = prot_.rbegin(); it != prot_.rend(); ++it) {
            if (it->kind == ProtKind::kLockHeld && it->name == s.name) {
              prot_.erase(std::next(it).base());
              break;
            }
          }
          break;
        case StmtKind::kDoBegin:
          prot_.push_back({ProtKind::kDoall, s.name, s.index_vars});
          break;
        case StmtKind::kDoEnd:
          pop_last(ProtKind::kDoall);
          break;
        case StmtKind::kPcaseBegin:
          pcase_sect_.push_back(false);
          break;
        case StmtKind::kUsect:
        case StmtKind::kCsect:
          if (!pcase_sect_.empty()) pcase_sect_.back() = true;
          break;
        case StmtKind::kPcaseEnd:
          if (!pcase_sect_.empty()) pcase_sect_.pop_back();
          break;
        case StmtKind::kAskforBegin:
          prot_.push_back({ProtKind::kAskfor, s.name, {}});
          break;
        case StmtKind::kAskforEnd:
          pop_last(ProtKind::kAskfor);
          break;
        case StmtKind::kProduce:
        case StmtKind::kConsume:
        case StmtKind::kCopy:
        case StmtKind::kVoid:
          async_op(r, s);
          break;
        case StmtKind::kForcecall:
          // R4: locks the callee acquires while the caller holds one are
          // ordered after every held lock - the cross-routine edges.
          if (callee != nullptr) {
            for (const std::string& outer : held_locks()) {
              for (const std::string& inner : callee->locks_acquired) {
                result_.lock_graph.add_edge(
                    outer, inner, SrcSite{unit().file, s.line});
              }
            }
          }
          // R3: apply the callee's async transformer.
          apply_call_async(callee);
          break;
        case StmtKind::kJoin:
          join_seen = true;
          break;
        default:
          break;
      }
    }
  }

  // --- R7: process-model portability ----------------------------------------

  void add_model_violation(const Stmt& s, const std::string& model,
                           const std::string& construct,
                           const std::string& reason) {
    result_.model_violations.push_back(
        {model, construct, unit().file, s.line, reason});
    if (model == opts_.target_process_model) {
      emit_stmt(LintRule::kR7, s,
                reason + " - this program cannot run with --process-model=" +
                    model);
    }
  }

  /// One statement tripping one capability: every process model the
  /// declarative backend matrix (machdep::capability_table) marks
  /// unsupporting gets a matrix entry, with the reason quoted from the
  /// same table the runtime's rejection diagnostics quote - the two can
  /// no longer drift (tests/test_backend_capabilities.cpp proves it).
  void add_capability_violation(const Stmt& s, machdep::Capability cap,
                                const std::string& construct,
                                const std::string& detail) {
    const machdep::CapabilityRow& row = machdep::capability_row(cap);
    for (const machdep::ProcessModel m : machdep::all_process_models()) {
      if (machdep::backend_supports(m, cap)) continue;
      const std::string model = machdep::process_model_name(m);
      std::string reason = construct + " is rejected by the " + model +
                           " process model [capability " +
                           std::string(row.id) + "]: " + row.reason;
      if (!detail.empty()) reason = detail + " - " + reason;
      add_model_violation(s, model, construct, reason);
    }
  }

  void scan_stmts_for_models(const std::vector<Stmt>& stmts) {
    for (const Stmt& s : stmts) {
      switch (s.kind) {
        case StmtKind::kPcaseBegin:
          add_capability_violation(s, machdep::Capability::kPcase, "Pcase",
                                   "");
          break;
        case StmtKind::kAskforBegin: {
          if (s.args.size() < 3) break;
          const std::string& type = s.args[2];
          if (!map_force_type(type).empty()) break;  // Force scalar: OK
          add_capability_violation(
              s, machdep::Capability::kNonTrivialPayloads, "Askfor payload",
              "Askfor task type '" + type +
                  "' is not provably trivially copyable");
          break;
        }
        case StmtKind::kIsfull:
          add_capability_violation(s, machdep::Capability::kIsfull, "Isfull",
                                   "");
          break;
        default:
          break;
      }
    }
  }

  void scan_process_models() {
    for (std::size_t u = 0; u < units_.size(); ++u) {
      cur_unit_ = u;
      for (const Routine& r : units_[u].graph.routines) {
        scan_stmts_for_models(r.stmts);
      }
      scan_stmts_for_models(units_[u].graph.toplevel);
    }
  }

  // --- program-level reports ------------------------------------------------

  void report_lock_cycles() {
    for (const auto& cycle : result_.lock_graph.cycles()) {
      std::string names;
      for (const auto& n : cycle) {
        if (!names.empty()) names += " -> ";
        names += "'" + n + "'";
      }
      if (cycle.size() == 1) names += " -> '" + cycle[0] + "'";
      const SrcSite site = result_.lock_graph.cycle_site(cycle);
      cur_unit_ = unit_index_for_file(site.file);
      emit(LintRule::kR4, site.line, stmt_col(site.line),
           static_cast<int>(trim(source_line(site.line)).size()),
           "static lock-order cycle: " + names +
               " - a schedule interleaving these acquisition chains "
               "deadlocks (the runtime Sentry reports the same "
               "inversion class)");
    }
  }

  void report_unclosed_suppressions() {
    for (std::size_t u = 0; u < units_.size(); ++u) {
      cur_unit_ = u;
      for (const int line : unit().suppress.unclosed_off_lines()) {
        diags_.report_in_file(
            unit().file, Severity::kWarning, line, stmt_col(line),
            static_cast<int>(trim(source_line(line)).size()),
            kLintUnclosedSuppressionId,
            "'!force$ lint off' region is never closed - the suppressed "
            "rules stay disabled to end of file (add '!force$ lint on')",
            source_line(line));
        ++result_.findings;
      }
    }
  }

  const LintOptions& opts_;
  DiagSink& diags_;
  const std::vector<UnitState>& units_;
  std::size_t cur_unit_ = 0;
  std::map<std::string, EffectSummary> summaries_;
  LintResult result_;

  ControlTracker tracker_;
  std::vector<Prot> prot_;
  std::vector<bool> pcase_sect_;
  std::map<std::string, AsyncState> async_;
};

// --- report JSON ------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_str(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

std::string json_str_list(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += json_str(items[i]);
  }
  return out + "]";
}

const char* severity_json_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

}  // namespace

const char* lint_rule_id(LintRule rule) {
  switch (rule) {
    case LintRule::kR1: return "force-lint-R1";
    case LintRule::kR2: return "force-lint-R2";
    case LintRule::kR3: return "force-lint-R3";
    case LintRule::kR4: return "force-lint-R4";
    case LintRule::kR5: return "force-lint-R5";
    case LintRule::kR6: return "force-lint-R6";
    case LintRule::kR7: return "force-lint-R7";
  }
  return "force-lint";
}

const std::vector<std::string>& lint_process_models() {
  // Derived from the backend layer's fixed model order so the lint matrix
  // and the runtime always enumerate the same axis.
  static const std::vector<std::string> models = [] {
    std::vector<std::string> out;
    for (const machdep::ProcessModel m : machdep::all_process_models()) {
      out.emplace_back(machdep::process_model_name(m));
    }
    return out;
  }();
  return models;
}

bool LintResult::compatible_with(const std::string& model) const {
  return std::none_of(model_violations.begin(), model_violations.end(),
                      [&](const ModelViolation& v) {
                        return v.model == model;
                      });
}

LintOptions parse_lint_spec(const std::string& spec) {
  LintOptions opts;
  std::set<LintRule> selected;
  for (const std::string& raw : split_args(spec)) {
    const std::string tok = to_lower(raw);
    if (tok.empty() || tok == "all" || tok == "w") continue;
    if (tok == "e") {
      opts.findings_are_errors = true;
      continue;
    }
    if (tok.size() == 2 && tok[0] == 'r' && tok[1] >= '1' && tok[1] <= '7') {
      selected.insert(static_cast<LintRule>(tok[1] - '1'));
      continue;
    }
    opts.unknown_tokens.push_back(raw);
  }
  if (!selected.empty()) opts.rules = selected;
  return opts;
}

LintResult run_forcelint(const std::string& source, const LintOptions& opts,
                         DiagSink& diags) {
  return run_forcelint_program({{std::string(), source}}, opts, diags);
}

LintResult run_forcelint_program(const std::vector<LintUnit>& units,
                                 const LintOptions& opts, DiagSink& diags) {
  if (!opts.unknown_tokens.empty()) {
    std::string toks;
    for (const auto& t : opts.unknown_tokens) {
      if (!toks.empty()) toks += ", ";
      toks += "'" + t + "'";
    }
    diags.note(0, "forcelint: ignoring unknown --lint token(s) " + toks +
                      " (expected R1..R7, W, E, all)");
  }
  std::vector<UnitState> states;
  states.reserve(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    // Lint analyzes whatever pass 1 can recover; its syntax diagnostics
    // are the translator's to report, so they go to a scratch sink here.
    DiagSink scratch;
    const RewriteResult pass1 = rewrite_force_syntax(units[i].source,
                                                     scratch);
    std::vector<std::string> lines = split_lines(units[i].source);
    states.push_back(UnitState{
        i == 0 ? std::string() : units[i].name, units[i].name, lines,
        Suppressions(lines), build_construct_graph(pass1)});
  }
  Linter linter(opts, diags, states);
  return linter.run();
}

std::string render_lint_report(const std::vector<LintUnit>& units,
                               const LintOptions& opts,
                               const LintResult& result,
                               const DiagSink& diags) {
  const std::string primary = units.empty() ? "" : units[0].name;
  const auto file_of = [&](const std::string& f) {
    return f.empty() ? primary : f;
  };

  std::string out = "{\n";
  out += "  \"schema_version\": " +
         std::to_string(kLintReportSchemaVersion) + ",\n";
  out += "  \"generator\": \"forcelint\",\n";

  std::vector<std::string> unit_names;
  unit_names.reserve(units.size());
  for (const auto& u : units) unit_names.push_back(u.name);
  out += "  \"units\": " + json_str_list(unit_names) + ",\n";

  out += "  \"target_process_model\": " +
         json_str(opts.target_process_model.empty()
                      ? "thread"
                      : opts.target_process_model) +
         ",\n";

  std::vector<std::string> rules;
  for (const LintRule r : opts.rules) {
    rules.push_back(std::string("R") +
                    std::to_string(static_cast<int>(r) + 1));
  }
  out += "  \"rules\": " + json_str_list(rules) + ",\n";
  out += std::string("  \"findings_are_errors\": ") +
         (opts.findings_are_errors ? "true" : "false") + ",\n";

  // Findings: every rule-carrying diagnostic, with file provenance.
  out += "  \"findings\": [";
  bool first = true;
  for (const Diagnostic& d : diags.all()) {
    if (d.rule.empty()) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"rule\": " + json_str(d.rule) +
           ", \"severity\": " + json_str(severity_json_name(d.severity)) +
           ", \"file\": " + json_str(file_of(d.file)) +
           ", \"line\": " + std::to_string(d.line) +
           ", \"col\": " + std::to_string(d.col) +
           ", \"message\": " + json_str(d.message) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  // Per-routine effect summaries.
  out += "  \"routines\": [";
  first = true;
  for (const EffectSummary& s : result.summaries) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": " + json_str(s.routine) +
           ", \"unit\": " + json_str(s.unit.empty() ? primary : s.unit) +
           ", \"may_execute_collective\": " +
           (s.may_execute_collective ? "true" : "false") +
           ", \"collective_on_straight_path\": " +
           (s.collective_on_straight_path ? "true" : "false") +
           ", \"calls_unresolved\": " +
           (s.calls_unresolved ? "true" : "false") +
           ", \"async_top\": " + (s.async_top ? "true" : "false");
    out += ", \"locks\": " +
           json_str_list({s.locks_acquired.begin(), s.locks_acquired.end()});
    out += ", \"shared_writes\": " +
           json_str_list({s.shared_writes.begin(), s.shared_writes.end()});
    out += ", \"callees\": " +
           json_str_list({s.callees.begin(), s.callees.end()});
    out += ", \"async\": {";
    bool afirst = true;
    for (const auto& [var, st] : s.async_out) {
      if (!afirst) out += ", ";
      afirst = false;
      out += json_str(var) + ": " + json_str(async_out_name(st));
    }
    out += "}}";
  }
  out += first ? "],\n" : "\n  ],\n";

  // The compatibility matrix: every model, every violation, always.
  out += "  \"models\": [\n";
  const auto& models = lint_process_models();
  for (std::size_t m = 0; m < models.size(); ++m) {
    const std::string& model = models[m];
    out += "    {\"model\": " + json_str(model) + ", \"compatible\": " +
           (result.compatible_with(model) ? "true" : "false") +
           ", \"violations\": [";
    bool vfirst = true;
    for (const ModelViolation& v : result.model_violations) {
      if (v.model != model) continue;
      out += vfirst ? "\n" : ",\n";
      vfirst = false;
      out += "      {\"construct\": " + json_str(v.construct) +
             ", \"file\": " + json_str(file_of(v.file)) +
             ", \"line\": " + std::to_string(v.line) +
             ", \"reason\": " + json_str(v.reason) + "}";
    }
    out += vfirst ? "]}" : "\n    ]}";
    out += m + 1 < models.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace force::preproc
