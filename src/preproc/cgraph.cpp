#include "preproc/cgraph.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <tuple>

#include "preproc/textutil.hpp"

namespace force::preproc {

namespace {

struct MacroRule {
  StmtKind kind;
  int name_arg = -1;          ///< which argument is the statement's name
  std::vector<int> index_args;  ///< which arguments are DO index vars
};

const std::map<std::string, MacroRule>& macro_rules() {
  static const std::map<std::string, MacroRule> rules = {
      {"force_main", {StmtKind::kModuleBegin, 0, {}}},
      {"forcesub", {StmtKind::kModuleBegin, 0, {}}},
      {"end_forcesub", {StmtKind::kModuleEnd, -1, {}}},
      {"end_declarations", {StmtKind::kEndDeclarations, -1, {}}},
      {"shared_decl", {StmtKind::kSharedDecl, 1, {}}},
      {"private_decl", {StmtKind::kPrivateDecl, 1, {}}},
      {"async_decl", {StmtKind::kAsyncDecl, 1, {}}},
      {"externf", {StmtKind::kExternf, 0, {}}},
      {"barrier_begin", {StmtKind::kBarrierBegin, -1, {}}},
      {"barrier_end", {StmtKind::kBarrierEnd, -1, {}}},
      {"critical_begin", {StmtKind::kCriticalBegin, 0, {}}},
      {"critical_end", {StmtKind::kCriticalEnd, -1, {}}},
      {"rawlock", {StmtKind::kLock, 0, {}}},
      {"rawunlock", {StmtKind::kUnlock, 0, {}}},
      {"presched_do", {StmtKind::kDoBegin, 0, {1}}},
      {"selfsched_do", {StmtKind::kDoBegin, 0, {1}}},
      {"guided_do", {StmtKind::kDoBegin, 0, {1}}},
      {"presched_do2", {StmtKind::kDoBegin, 0, {1, 5}}},
      {"selfsched_do2", {StmtKind::kDoBegin, 0, {1, 5}}},
      {"end_presched_do", {StmtKind::kDoEnd, 0, {}}},
      {"end_selfsched_do", {StmtKind::kDoEnd, 0, {}}},
      {"end_guided_do", {StmtKind::kDoEnd, 0, {}}},
      {"end_presched_do2", {StmtKind::kDoEnd, 0, {}}},
      {"end_selfsched_do2", {StmtKind::kDoEnd, 0, {}}},
      {"pcase_begin", {StmtKind::kPcaseBegin, -1, {}}},
      {"usect", {StmtKind::kUsect, -1, {}}},
      {"csect", {StmtKind::kCsect, -1, {}}},
      {"pcase_end", {StmtKind::kPcaseEnd, -1, {}}},
      {"askfor_begin", {StmtKind::kAskforBegin, 0, {}}},
      {"end_askfor", {StmtKind::kAskforEnd, 0, {}}},
      {"seedwork", {StmtKind::kSeedwork, 0, {}}},
      {"putwork", {StmtKind::kPutwork, -1, {}}},
      {"probend", {StmtKind::kProbend, -1, {}}},
      {"produce", {StmtKind::kProduce, 0, {}}},
      {"consume", {StmtKind::kConsume, 0, {}}},
      {"copyasync", {StmtKind::kCopy, 0, {}}},
      {"voidasync", {StmtKind::kVoid, 0, {}}},
      {"isfull", {StmtKind::kIsfull, 0, {}}},
      {"reduce_stmt", {StmtKind::kReduce, 0, {}}},
      {"forcecall", {StmtKind::kForcecall, 0, {}}},
      {"join", {StmtKind::kJoin, -1, {}}},
  };
  return rules;
}

Stmt lower_line(const std::string& line, int origin) {
  Stmt s;
  s.line = origin;
  s.text = line;
  const std::string t = trim(line);
  if (t.rfind("//", 0) == 0) {
    s.kind = StmtKind::kComment;
    return s;
  }
  if (t.empty() || t[0] != '@' || t.back() != ')') {
    s.kind = StmtKind::kPassthrough;
    return s;
  }
  const std::size_t paren = t.find('(');
  if (paren == std::string::npos) {
    s.kind = StmtKind::kPassthrough;
    return s;
  }
  const std::string macro = t.substr(1, paren - 1);
  const auto it = macro_rules().find(macro);
  if (it == macro_rules().end()) {
    // An internal or injected macro the lint IR does not model.
    s.kind = StmtKind::kPassthrough;
    return s;
  }
  const MacroRule& rule = it->second;
  s.kind = rule.kind;
  s.args = split_args(t.substr(paren + 1, t.size() - paren - 2));
  if (rule.name_arg >= 0 &&
      static_cast<std::size_t>(rule.name_arg) < s.args.size()) {
    s.name = s.args[static_cast<std::size_t>(rule.name_arg)];
  }
  for (const int ix : rule.index_args) {
    if (static_cast<std::size_t>(ix) < s.args.size()) {
      s.index_vars.push_back(s.args[static_cast<std::size_t>(ix)]);
    }
  }
  return s;
}

void record_decl(Routine& r, const Stmt& s, VarClass cls) {
  if (s.args.empty() || s.name.empty()) return;
  LintVar v;
  v.name = s.name;
  v.force_type = s.args[0];
  v.cls = cls;
  v.decl_line = s.line;
  v.is_array = s.args.size() > 2;  // (type, name, dims...)
  r.vars.emplace(v.name, std::move(v));  // first declaration wins
}

}  // namespace

ConstructGraph build_construct_graph(const RewriteResult& pass1) {
  ConstructGraph g;
  Routine* current = nullptr;
  for (std::size_t i = 0; i < pass1.lines.size(); ++i) {
    const int origin =
        i < pass1.origin.size() ? pass1.origin[i] : 0;
    Stmt s = lower_line(pass1.lines[i], origin);
    if (s.kind == StmtKind::kModuleBegin) {
      Routine r;
      r.name = s.name;
      const std::string t = trim(pass1.lines[i]);
      r.is_main = t.rfind("@force_main(", 0) == 0;
      r.begin_line = origin;
      g.routines.push_back(std::move(r));
      current = &g.routines.back();
      continue;
    }
    if (current == nullptr) {
      g.toplevel.push_back(std::move(s));
      continue;
    }
    switch (s.kind) {
      case StmtKind::kSharedDecl:
        record_decl(*current, s, VarClass::kShared);
        break;
      case StmtKind::kPrivateDecl:
        record_decl(*current, s, VarClass::kPrivate);
        break;
      case StmtKind::kAsyncDecl:
        record_decl(*current, s, VarClass::kAsync);
        break;
      default:
        break;
    }
    const bool ends_module = s.kind == StmtKind::kModuleEnd;
    current->stmts.push_back(std::move(s));
    if (ends_module) current = nullptr;
  }
  return g;
}

void LockOrderGraph::add_edge(const std::string& outer,
                              const std::string& inner, const SrcSite& site) {
  edges[outer].emplace(inner, site);  // keep the first site
}

std::vector<std::vector<std::string>> LockOrderGraph::cycles() const {
  // Collect the node set.
  std::set<std::string> nodes;
  for (const auto& [from, tos] : edges) {
    nodes.insert(from);
    for (const auto& [to, site] : tos) nodes.insert(to);
  }
  // reach[a] = every node reachable from a (graphs here are tiny: one
  // node per distinct lock name in the program).
  std::map<std::string, std::set<std::string>> reach;
  for (const auto& n : nodes) {
    std::vector<std::string> stack{n};
    auto& r = reach[n];
    while (!stack.empty()) {
      const std::string cur = stack.back();
      stack.pop_back();
      const auto it = edges.find(cur);
      if (it == edges.end()) continue;
      for (const auto& [to, site] : it->second) {
        if (r.insert(to).second) stack.push_back(to);
      }
    }
  }
  // Mutual-reachability components that contain a cycle: size > 1, or a
  // single node that reaches itself (self-loop).
  std::vector<std::vector<std::string>> out;
  std::set<std::string> assigned;
  for (const auto& n : nodes) {
    if (assigned.count(n) != 0) continue;
    std::vector<std::string> comp;
    for (const auto& m : nodes) {
      if (m == n || (reach[n].count(m) != 0 && reach[m].count(n) != 0)) {
        comp.push_back(m);
      }
    }
    const bool cyclic = comp.size() > 1 || reach[n].count(n) != 0;
    for (const auto& m : comp) assigned.insert(m);
    if (cyclic) out.push_back(std::move(comp));  // comp is sorted: set order
  }
  return out;
}

SrcSite LockOrderGraph::cycle_site(const std::vector<std::string>& cycle)
    const {
  const std::set<std::string> members(cycle.begin(), cycle.end());
  SrcSite site;
  for (const auto& from : cycle) {
    const auto it = edges.find(from);
    if (it == edges.end()) continue;
    for (const auto& [to, s] : it->second) {
      if (members.count(to) == 0) continue;
      if (std::tie(s.file, s.line) > std::tie(site.file, site.line)) site = s;
    }
  }
  return site;
}

RoutineIndex::RoutineIndex(const std::vector<ProgramUnit>& units) {
  for (std::size_t u = 0; u < units.size(); ++u) {
    const auto& routines = units[u].graph.routines;
    for (std::size_t r = 0; r < routines.size(); ++r) {
      index_.emplace(routines[r].name,
                     RoutineRef{static_cast<int>(u), static_cast<int>(r)});
    }
  }
}

const RoutineRef* RoutineIndex::resolve(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &it->second;
}

const char* async_out_name(AsyncOut out) {
  switch (out) {
    case AsyncOut::kFull: return "full";
    case AsyncOut::kEmpty: return "empty";
    case AsyncOut::kUnknown: return "unknown";
  }
  return "?";
}

}  // namespace force::preproc
