// Diagnostics for the forcepp translator.
#pragma once

#include <string>
#include <vector>

namespace force::preproc {

enum class Severity { kNote, kWarning, kError };

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string file;  ///< source file; empty = the unit render() is given
  int line = 0;     ///< 1-based source line; 0 = whole file
  int col = 0;      ///< 1-based column; 0 = whole line
  int length = 0;   ///< source-range length in chars (0 = point)
  std::string rule;     ///< stable diagnostic id ("force-lint-R2"); optional
  std::string message;
  std::string snippet;  ///< the source line, for the caret rendering

  /// "file:line:col: severity: message [rule]" plus, when a snippet is
  /// attached, the source line and a caret/underline marking the range.
  /// `filename` is the default unit name, used when `file` is empty (the
  /// single-file case); whole-program lint stamps `file` per unit.
  [[nodiscard]] std::string render(const std::string& filename) const;

  [[nodiscard]] bool operator==(const Diagnostic& other) const = default;
};

/// Collects diagnostics during translation.
class DiagSink {
 public:
  void note(int line, std::string message);
  void warning(int line, std::string message);
  void error(int line, std::string message);

  /// Full-fidelity emission with position, rule id and caret snippet.
  /// Warnings are promoted to errors when werror mode is on. An exact
  /// duplicate of an already-recorded diagnostic (same file, position,
  /// rule, message - e.g. the same finding reached through two call
  /// paths in whole-program lint) is dropped, so counts and rendering
  /// agree and stay deterministic.
  void report(Severity severity, int line, int col, int length,
              std::string rule, std::string message, std::string snippet);

  /// As above with explicit file provenance (whole-program mode; empty
  /// file means "the primary unit").
  void report_in_file(std::string file, Severity severity, int line, int col,
                      int length, std::string rule, std::string message,
                      std::string snippet);

  /// -Werror: subsequently reported warnings are recorded as errors and
  /// count in errors(), so ok() (and forcepp's exit code) reflects them.
  void set_werror(bool on) { werror_ = on; }
  [[nodiscard]] bool werror() const { return werror_; }

  [[nodiscard]] bool ok() const { return error_count_ == 0; }
  [[nodiscard]] std::size_t errors() const { return error_count_; }
  [[nodiscard]] std::size_t warnings() const { return warning_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }
  /// Renders every diagnostic sorted by (file, line, col) - the empty
  /// (primary-unit) file first, so multi-file runs never interleave
  /// units. Ties keep emission order, whole-file diagnostics (line 0)
  /// lead their file.
  [[nodiscard]] std::string render_all(const std::string& filename) const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
  std::size_t warning_count_ = 0;
  bool werror_ = false;
};

}  // namespace force::preproc
