// Diagnostics for the forcepp translator.
#pragma once

#include <string>
#include <vector>

namespace force::preproc {

enum class Severity { kNote, kWarning, kError };

struct Diagnostic {
  Severity severity = Severity::kError;
  int line = 0;  ///< 1-based source line; 0 = whole file
  std::string message;

  [[nodiscard]] std::string render(const std::string& filename) const;
};

/// Collects diagnostics during translation.
class DiagSink {
 public:
  void note(int line, std::string message);
  void warning(int line, std::string message);
  void error(int line, std::string message);

  [[nodiscard]] bool ok() const { return error_count_ == 0; }
  [[nodiscard]] std::size_t errors() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }
  [[nodiscard]] std::string render_all(const std::string& filename) const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

}  // namespace force::preproc
