#include "preproc/textutil.hpp"

#include <cctype>

namespace force::preproc {

namespace {
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<std::string> match_keyword(std::string_view s,
                                         std::string_view keyword) {
  if (s.size() < keyword.size()) return std::nullopt;
  for (std::size_t i = 0; i < keyword.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(keyword[i]))) {
      return std::nullopt;
    }
  }
  if (s.size() > keyword.size() && ident_char(s[keyword.size()])) {
    return std::nullopt;  // prefix of a longer identifier
  }
  return trim(s.substr(keyword.size()));
}

std::optional<std::string> match_keywords(
    std::string_view s, const std::vector<std::string>& kws) {
  std::string rest(trim(s));
  for (const auto& kw : kws) {
    auto m = match_keyword(rest, kw);
    if (!m) return std::nullopt;
    rest = *m;
  }
  return rest;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_')
    return false;
  for (char c : s) {
    if (!ident_char(c)) return false;
  }
  return true;
}

std::vector<std::string> split_args(std::string_view s, bool angle_nesting) {
  std::vector<std::string> out;
  int depth = 0;
  int angle_depth = 0;
  bool in_string = false;
  char quote = 0;
  std::string cur;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      cur += c;
      if (c == quote && (i == 0 || s[i - 1] != '\\')) in_string = false;
      continue;
    }
    switch (c) {
      case '"':
      case '\'':
        in_string = true;
        quote = c;
        cur += c;
        break;
      case '(':
      case '[':
      case '{':
        ++depth;
        cur += c;
        break;
      case ')':
      case ']':
      case '}':
        --depth;
        cur += c;
        break;
      case '<':
        if (angle_nesting) ++angle_depth;
        cur += c;
        break;
      case '>':
        // A '>' without a matching '<' (e.g. a comparison) is ignored.
        if (angle_nesting && angle_depth > 0) --angle_depth;
        cur += c;
        break;
      case ',':
        if (depth == 0 && angle_depth == 0) {
          out.push_back(trim(cur));
          cur.clear();
        } else {
          cur += c;
        }
        break;
      default:
        cur += c;
    }
  }
  const std::string last = trim(cur);
  if (!last.empty() || !out.empty()) out.push_back(last);
  return out;
}

LabeledLine split_label(std::string_view s) {
  const std::string t = trim(s);
  std::size_t i = 0;
  while (i < t.size() && std::isdigit(static_cast<unsigned char>(t[i]))) ++i;
  if (i == 0 || i == t.size() ||
      !std::isspace(static_cast<unsigned char>(t[i]))) {
    return {std::nullopt, t};
  }
  return {std::stol(t.substr(0, i)), trim(t.substr(i))};
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      std::string line(text.substr(start, i - start));
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines.push_back(std::move(line));
      start = i + 1;
    }
  }
  // A trailing newline produces one phantom empty line; drop it.
  if (!lines.empty() && lines.back().empty() && !text.empty() &&
      text.back() == '\n') {
    lines.pop_back();
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace force::preproc
