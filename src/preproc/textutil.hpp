// Text utilities for the line-oriented Force dialect.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace force::preproc {

std::string trim(std::string_view s);
std::string to_lower(std::string_view s);

/// Case-insensitive keyword match at the start of `s`; a match must be
/// followed by end-of-string or a non-identifier character. Returns the
/// rest of the line (trimmed) on success.
std::optional<std::string> match_keyword(std::string_view s,
                                         std::string_view keyword);

/// Like match_keyword for multi-word keywords ("End Presched DO"), with
/// arbitrary whitespace between the words.
std::optional<std::string> match_keywords(std::string_view s,
                                          const std::vector<std::string>& kws);

/// True if `s` is a valid Force/Fortran identifier (letter, then letters,
/// digits, underscores).
bool is_identifier(std::string_view s);

/// Splits on top-level commas (ignores commas nested in (), [], {} and
/// inside string literals); tokens are trimmed. With `angle_nesting`,
/// balanced <...> pairs also protect commas (needed for macro arguments
/// carrying C++ template types such as std::array<double, 16>).
std::vector<std::string> split_args(std::string_view s,
                                    bool angle_nesting = false);

/// Splits a statement line into an optional numeric label prefix and the
/// rest ("20 End Selfsched DO" -> {20, "End Selfsched DO"}).
struct LabeledLine {
  std::optional<long> label;
  std::string rest;
};
LabeledLine split_label(std::string_view s);

/// Splits source text into lines (no trailing newline artifacts).
std::vector<std::string> split_lines(std::string_view text);

/// Joins lines with '\n', appending a final newline when non-empty.
std::string join_lines(const std::vector<std::string>& lines);

}  // namespace force::preproc
