// forcelint: a static construct-graph analyzer for Force programs.
//
// The paper's portability story assumes the machine-independent constructs
// are used *correctly* - misplaced barriers, shared writes outside
// critical sections, and broken Produce/Consume protocols are exactly the
// bugs the structured constructs were designed to prevent, yet forcepp
// translates them silently and the runtime Sentry (docs/VALIDATION.md)
// only catches them while executing. forcelint runs the same small set of
// statically recognizable shared-memory bug patterns (after McKenney) over
// the construct graph at translate time: deterministic,
// schedule-independent, no execution needed.
//
// Rules:
//   R1  collective construct (Barrier/End, DOALL, Pcase, Reduce,
//       Forcecall, Join, Askfor, Seedwork) on a divergent control path
//       (inside an if/else/switch region) - barrier-divergence deadlock.
//   R2  write to a Shared variable outside every protection region
//       (barrier section, critical section, raw lock, Pcase section,
//       prescheduled-index partitioning).
//   R3  async full/empty protocol violations on straight-line paths:
//       Produce on a maybe-full cell, Consume/Copy with no reaching
//       Produce, double Void.
//   R4  cycle in the static lock-order graph over named critical sections
//       and raw locks (the runtime Sentry's inversion class, at translate
//       time - LockOrderGraph in preproc/cgraph.hpp).
//   R5  loop-carried dependence heuristics in DOALL bodies: a write whose
//       subscript offsets the loop index, and scalar reductions that do
//       not use the Reduce statement.
//   R6  unreachable or duplicate statements after Join.
//
// Findings flow through DiagSink with a 1-based column, a caret snippet,
// and a stable rule id ("force-lint-R2"). Suppress per region with
//   !force$ lint off(R2)        ... !force$ lint on(R2)
//   !force$ lint off            (all rules, until "on" or end of file)
#pragma once

#include <set>
#include <string>
#include <vector>

#include "preproc/cgraph.hpp"
#include "preproc/diag.hpp"

namespace force::preproc {

enum class LintRule { kR1, kR2, kR3, kR4, kR5, kR6 };

/// "force-lint-R1" ... "force-lint-R6".
const char* lint_rule_id(LintRule rule);

struct LintOptions {
  /// Enabled rules; defaults to all six.
  std::set<LintRule> rules = {LintRule::kR1, LintRule::kR2, LintRule::kR3,
                              LintRule::kR4, LintRule::kR5, LintRule::kR6};
  /// Report findings as errors instead of warnings (`--lint=E`).
  bool findings_are_errors = false;
  /// Spec tokens that did not parse (reported as a note by run_forcelint).
  std::vector<std::string> unknown_tokens;
};

/// Parses a `--lint=` spec: a comma list of rule ids (R1..R6, case
/// insensitive) selecting a subset, plus `W` (findings are warnings, the
/// default) or `E` (findings are errors). "", "all" and "W" alone keep
/// every rule enabled.
LintOptions parse_lint_spec(const std::string& spec);

struct LintResult {
  std::size_t findings = 0;
  /// The static lock-order graph, exposed so tests can cross-check it
  /// against the runtime Sentry's acquisition-order cycles.
  LockOrderGraph lock_graph;
};

/// Runs every enabled rule over `source` (a Force-dialect translation
/// unit), emitting findings into `diags`. Syntax errors are NOT emitted
/// here - the translator proper reports those; lint analyzes whatever
/// construct stream pass 1 can recover.
LintResult run_forcelint(const std::string& source, const LintOptions& opts,
                         DiagSink& diags);

}  // namespace force::preproc
