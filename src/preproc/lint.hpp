// forcelint: a static construct-graph analyzer for Force programs.
//
// The paper's portability story assumes the machine-independent constructs
// are used *correctly* - misplaced barriers, shared writes outside
// critical sections, and broken Produce/Consume protocols are exactly the
// bugs the structured constructs were designed to prevent, yet forcepp
// translates them silently and the runtime Sentry (docs/VALIDATION.md)
// only catches them while executing. forcelint runs the same small set of
// statically recognizable shared-memory bug patterns (after McKenney) over
// the construct graph at translate time: deterministic,
// schedule-independent, no execution needed.
//
// Since PR 8 the analysis is interprocedural and whole-program: every
// routine gets a bottom-up effect summary (collectives executed, locks
// acquired, async full/empty transformers, shared writes - see
// EffectSummary in preproc/cgraph.hpp) computed to a fixpoint over the
// Forcecall graph across all provided translation units, with a sound
// "unknown" lattice top for recursion and unresolved Externf calls. The
// rules consume summaries at call sites instead of degrading to "anything
// can happen" at every Forcecall.
//
// Rules:
//   R1  collective construct (Barrier/End, DOALL, Pcase, Reduce, Join,
//       Askfor, Seedwork - or a Forcecall whose callee may execute one)
//       on a divergent control path (inside an if/else/switch region) -
//       barrier-divergence deadlock.
//   R2  write to a Shared variable outside every protection region
//       (barrier section, critical section, raw lock, Pcase section,
//       prescheduled-index partitioning).
//   R3  async full/empty protocol violations on straight-line paths:
//       Produce on a maybe-full cell, Consume/Copy with no reaching
//       Produce, double Void. Forcecalls apply the callee's async
//       transformer instead of clearing all knowledge.
//   R4  cycle in the static lock-order graph over named critical sections
//       and raw locks, including cross-routine edges (a callee's lock
//       acquired while the caller holds one) - the runtime Sentry's
//       inversion class at translate time (LockOrderGraph in
//       preproc/cgraph.hpp).
//   R5  loop-carried dependence heuristics in DOALL bodies: a write whose
//       subscript offsets the loop index, and scalar reductions that do
//       not use the Reduce statement.
//   R6  unreachable or duplicate statements after Join.
//   R7  process-model portability: a construct the targeted process model
//       rejects at run time (Pcase under os-fork, askfor payload types
//       not provably trivially copyable, Isfull under the cluster
//       model). Diagnostics fire for the --process-model being targeted;
//       the full per-model compatibility matrix is always computed and
//       exported by `forcepp --lint-report=<path>.json`.
//   W1  an `!force$ lint off` region left unclosed at end of file.
//
// Findings flow through DiagSink with a 1-based column, a caret snippet,
// a stable rule id ("force-lint-R2") and per-unit file provenance in
// whole-program mode. Suppress per region with
//   !force$ lint off(R2)        ... !force$ lint on(R2)
//   !force$ lint off            (all rules, until "on" or end of file)
#pragma once

#include <set>
#include <string>
#include <vector>

#include "preproc/cgraph.hpp"
#include "preproc/diag.hpp"

namespace force::preproc {

enum class LintRule { kR1, kR2, kR3, kR4, kR5, kR6, kR7 };

/// "force-lint-R1" ... "force-lint-R7".
const char* lint_rule_id(LintRule rule);

/// Rule id of the unclosed-suppression-region warning (not a selectable
/// rule: it guards the suppression machinery itself).
inline constexpr const char* kLintUnclosedSuppressionId = "force-lint-W1";

struct LintOptions {
  /// Enabled rules; defaults to all seven.
  std::set<LintRule> rules = {LintRule::kR1, LintRule::kR2, LintRule::kR3,
                              LintRule::kR4, LintRule::kR5, LintRule::kR6,
                              LintRule::kR7};
  /// Report findings as errors instead of warnings (`--lint=E`).
  bool findings_are_errors = false;
  /// The process model the program is being translated for: "" (the
  /// machine's thread-emulated model, which accepts every construct),
  /// "os-fork", or "cluster". R7 diagnostics fire only for this model;
  /// the compatibility matrix always covers every model.
  std::string target_process_model;
  /// Spec tokens that did not parse (reported as a note by run_forcelint).
  std::vector<std::string> unknown_tokens;
};

/// Parses a `--lint=` spec: a comma list of rule ids (R1..R7, case
/// insensitive) selecting a subset, plus `W` (findings are warnings, the
/// default) or `E` (findings are errors). "", "all" and "W" alone keep
/// every rule enabled.
LintOptions parse_lint_spec(const std::string& spec);

/// One translation unit of a whole-program lint run. `name` is used for
/// diagnostic file provenance and the report; units[0] is the primary
/// unit (its diagnostics render under the name forcepp was invoked with,
/// exactly as in single-unit mode).
struct LintUnit {
  std::string name;
  std::string source;
};

/// One construct a process model statically rejects.
struct ModelViolation {
  std::string model;      ///< "os-fork" | "cluster"
  std::string construct;  ///< "Pcase", "Askfor payload", "Isfull"
  std::string file;       ///< "" = primary unit
  int line = 0;
  std::string reason;
};

/// The process models the compatibility matrix covers. "thread" is every
/// machine's default emulated model and accepts all constructs; "os-fork"
/// is the real fork(2) backend (docs/PORTING.md); "cluster" is the
/// ROADMAP's planned no-shared-mapping model, which inherits every
/// os-fork narrowing rule and additionally rejects Isfull.
const std::vector<std::string>& lint_process_models();

struct LintResult {
  std::size_t findings = 0;
  /// The static lock-order graph, exposed so tests can cross-check it
  /// against the runtime Sentry's acquisition-order cycles. In whole-
  /// program mode it spans routines and units.
  LockOrderGraph lock_graph;
  /// Per-routine interprocedural effect summaries, fixpoint-converged.
  std::vector<EffectSummary> summaries;
  /// Every construct any process model rejects (all models, regardless of
  /// target_process_model or the enabled-rule subset) - the source of the
  /// report's compatibility matrix.
  std::vector<ModelViolation> model_violations;

  /// True when no violation is recorded against `model`.
  [[nodiscard]] bool compatible_with(const std::string& model) const;
};

/// Runs every enabled rule over `source` (a Force-dialect translation
/// unit), emitting findings into `diags`. Syntax errors are NOT emitted
/// here - the translator proper reports those; lint analyzes whatever
/// construct stream pass 1 can recover.
LintResult run_forcelint(const std::string& source, const LintOptions& opts,
                         DiagSink& diags);

/// Whole-program lint: lowers every unit, links Forcecall sites to
/// routine definitions across units, computes effect summaries bottom-up,
/// then runs the rules. units must be non-empty; units[0] is the primary
/// unit. Diagnostics in extra units carry that unit's name as file
/// provenance; render_all() groups by file and dedupes findings reached
/// through multiple call paths.
LintResult run_forcelint_program(const std::vector<LintUnit>& units,
                                 const LintOptions& opts, DiagSink& diags);

/// Schema version of the `--lint-report` JSON (bump on breaking changes,
/// like kBenchSchemaVersion for BENCH_*.json).
inline constexpr int kLintReportSchemaVersion = 1;

/// Renders the machine-readable lint report: schema_version, units, the
/// enabled rules and target model, every finding with file/line/col
/// provenance, every routine's effect summary, and the per-model
/// compatibility matrix. tools/lint_report_check.py validates the schema;
/// a daemon can gate program admission on `models[*].compatible` without
/// parsing human-readable diagnostics.
std::string render_lint_report(const std::vector<LintUnit>& units,
                               const LintOptions& opts,
                               const LintResult& result,
                               const DiagSink& diags);

}  // namespace force::preproc
