#include "preproc/translate.hpp"

#include "preproc/lint.hpp"
#include "preproc/machmacros.hpp"
#include "preproc/macro.hpp"
#include "preproc/pass1.hpp"
#include "preproc/textutil.hpp"

#include <string_view>

namespace force::preproc {

TranslationResult translate(const std::string& source,
                            const TranslateOptions& options) {
  TranslationResult result;
  result.diags.set_werror(options.werror);

  // Step 0: forcelint - the static construct-graph analysis. Runs before
  // translation so its findings lead the diagnostic stream even when the
  // translator later bails out. With --lint-units the run is whole-program:
  // the extra units are linted together with this source so Forcecall
  // sites resolve across files (only lint sees them; translation stays
  // one unit at a time).
  if (options.lint || options.lint_report) {
    LintOptions lint_opts = parse_lint_spec(options.lint_spec);
    lint_opts.target_process_model = options.process_model;
    std::vector<LintUnit> units;
    units.push_back({options.source_name, source});
    for (const auto& [name, text] : options.lint_units) {
      units.push_back({name, text});
    }
    const LintResult lint =
        run_forcelint_program(units, lint_opts, result.diags);
    if (options.lint_report) {
      // Rendered now, while the sink holds only lint findings - the
      // translator's own diagnostics are not part of the report.
      result.lint_report_json =
          render_lint_report(units, lint_opts, lint, result.diags);
    }
  }

  // Step 1: "sed" - Force syntax to parameterized macro calls.
  const RewriteResult pass1 = rewrite_force_syntax(source, result.diags);
  if (options.emit_pass1) result.pass1_text = join_lines(pass1.lines);

  // Step 2: "m4" - the two macro layers. The machine-dependent set is
  // installed first, then the machine-independent statement macros expand
  // onto it.
  MacroProcessor mp;
  install_machine_macros(mp, result.context, options.machine);
  install_statement_macros(mp, result.context);

  // Pre-scan: Seedwork statements precede their Askfor block textually,
  // so the label -> task-type map is collected before expansion.
  for (std::size_t i = 0; i < pass1.lines.size(); ++i) {
    const std::string t = trim(pass1.lines[i]);
    constexpr std::string_view kPrefix = "@askfor_begin(";
    if (t.rfind(kPrefix, 0) == 0 && t.back() == ')') {
      const auto args = split_args(
          t.substr(kPrefix.size(), t.size() - kPrefix.size() - 1));
      if (args.size() == 3) {
        const std::string cpp_type = map_force_type(args[2]);
        if (!cpp_type.empty()) {
          result.context.askfor_types["L" + args[0]] = cpp_type;
        }
      }
    }
  }

  std::vector<std::string> body;
  for (std::size_t i = 0; i < pass1.lines.size(); ++i) {
    // Passthrough (computational) lines get the current block indentation
    // for readable output; macro lines produce their own indentation.
    const std::string& line = pass1.lines[i];
    const std::string trimmed = trim(line);
    const bool is_macro_line = !trimmed.empty() && trimmed[0] == '@';
    auto expanded = mp.expand_line(line, pass1.origin[i], result.diags);
    for (auto& out : expanded) {
      if (!is_macro_line && !trim(out).empty() &&
          result.context.current() != nullptr) {
        body.push_back(result.context.indent() + trim(out));
      } else {
        body.push_back(std::move(out));
      }
    }
  }
  result.macro_expansions = mp.expansions();

  // Structural validation.
  if (options.module_mode) {
    if (result.context.main_seen) {
      result.diags.error(
          0, "--module translation units must not contain a Force main "
             "program (compile it separately)");
    }
    if (result.context.modules.empty()) {
      result.diags.error(0, "--module translation unit has no Forcesub");
    }
  } else if (!result.context.main_seen) {
    result.diags.error(0, "no Force main program in the source");
  } else if (!result.context.join_seen) {
    result.diags.error(0, "Force main program has no Join");
  }
  if (!result.context.block_stack.empty()) {
    result.diags.error(0, "unterminated construct: " +
                              result.context.block_stack.back());
  }
  for (const auto& ext : result.context.externfs) {
    bool found = false;
    for (const auto& m : result.context.modules) {
      if (!m.is_main && m.name == ext) found = true;
    }
    if (!found && options.module_mode) {
      result.diags.error(0, "Externf " + ext +
                                " inside a --module unit must be resolved "
                                "by the main program's driver; remove it");
    } else if (!found) {
      result.diags.note(
          0, "Externf " + ext +
                 ": the generated driver will call force_register_" + ext +
                 " from its separately compiled translation unit");
    }
  }

  // Step 3: assemble - prologue, bodies, startup routines, then either the
  // generated machine-dependent driver (programs) or the registration
  // entry points (separately compiled modules).
  std::string code = generate_prologue(result.context, options);
  code += join_lines(body);
  code += "\n";
  code += generate_startup_routines(result.context);
  if (options.module_mode) {
    code += generate_module_registrations(result.context);
  } else {
    code += generate_driver(result.context, options);
  }

  result.cpp_code = std::move(code);
  result.ok = result.diags.ok();
  return result;
}

}  // namespace force::preproc
