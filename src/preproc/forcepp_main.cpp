// forcepp: the Force-to-C++ translator (paper §4.3).
//
//   forcepp program.force --machine encore --nproc 8 -o program.cpp
//
// Translates a Force-dialect source file into a C++ translation unit that
// links against the force runtime library. Pass --emit-pass1 to also dump
// the intermediate macro-call form (the output of the "sed" stage).
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "machdep/backend.hpp"
#include "machdep/machine.hpp"
#include "preproc/translate.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FORCE_CHECK(in.good(), "cannot open input file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  errno = 0;
  std::ofstream out(path, std::ios::binary);
  FORCE_CHECK(out.good(), "cannot open output file: " + path + ": " +
                              std::strerror(errno));
  out << content;
  FORCE_CHECK(out.good(), "failed writing output file: " + path);
}

}  // namespace

int main(int argc, char** argv) {
  using force::preproc::TranslateOptions;
  force::util::CliParser cli;
  cli.option("machine", "native",
             "target machine model (hep flex32 encore sequent alliant "
             "cray2 native)")
      .option("nproc", "4", "default force size baked into the driver")
      .option("process-model", "",
              "process backend baked into the driver: empty keeps the "
              "machine's thread-emulated model, os-fork runs real fork(2) "
              "children over a MAP_SHARED arena, cluster runs separate "
              "processes over a socket transport with a distributed arena")
      .optional_value_option(
          "team-pool", "0",
          "bake a persistent team pool into the driver; the optional value "
          "is the N:M worker count (default 0 = one worker per member)")
      .option("o", "", "output file (default: stdout)")
      .flag("module",
            "translate a separately compiled module (Forcesubs only, no "
            "driver); emits force_register_<NAME> entry points")
      .flag("emit-pass1", "also print the pass-1 macro-call form")
      .optional_value_option(
          "lint", "all",
          "run forcelint; optional spec selects rules and severity, e.g. "
          "--lint=R2,R4,E (R1..R7 subset, W=warnings, E=errors)")
      .option("lint-units", "",
              "comma-separated extra .force files linted together with the "
              "input (whole-program mode: Forcecall sites resolve across "
              "files); implies --lint")
      .option("lint-report", "",
              "write the machine-readable lint report (findings, effect "
              "summaries, process-model compatibility matrix) to this JSON "
              "path; implies --lint and is written even when translation "
              "fails")
      .flag("Werror", "treat warnings (lint findings included) as errors")
      .flag("list-machines", "list the supported machine models and exit");

  try {
    if (!cli.parse(argc, argv)) return 0;
    if (cli.get_flag("list-machines")) {
      for (const auto& name : force::machdep::machine_names()) {
        const auto& spec = force::machdep::machine_spec(name);
        std::printf("%-8s %s\n", name.c_str(), spec.description.c_str());
      }
      return 0;
    }
    FORCE_CHECK(cli.positional().size() == 1,
                "exactly one input .force file is required");
    const std::string input = cli.positional()[0];

    TranslateOptions options;
    options.machine = cli.get("machine");
    options.default_nproc = static_cast<int>(cli.get_int("nproc"));
    options.source_name = input;
    options.emit_pass1 = cli.get_flag("emit-pass1");
    options.module_mode = cli.get_flag("module");
    options.lint = cli.seen("lint") || cli.seen("lint-units") ||
                   cli.seen("lint-report");
    options.lint_spec = cli.seen("lint") ? cli.get("lint") : "";
    options.lint_report = cli.seen("lint-report");
    for (const std::string& path :
         force::util::split_csv(cli.get("lint-units"))) {
      options.lint_units.emplace_back(path, read_file(path));
    }
    options.werror = cli.get_flag("Werror");
    options.process_model = cli.get("process-model");
    if (!options.process_model.empty()) {
      force::machdep::ProcessModel model;
      FORCE_CHECK(
          force::machdep::parse_process_model(options.process_model, &model),
          "--process-model '" + options.process_model +
              "' is not recognized; valid values: " +
              force::machdep::process_model_valid_set());
      // Canonical spelling downstream: the generated driver text and the
      // lint matrix both use the backend layer's model names.
      options.process_model = force::machdep::process_model_name(model);
    }
    options.team_pool = cli.seen("team-pool");
    options.pool_workers =
        options.team_pool ? static_cast<int>(cli.get_int("team-pool")) : 0;
    FORCE_CHECK(options.pool_workers >= 0,
                "--team-pool worker count must be non-negative");
    FORCE_CHECK(options.pool_workers == 0 ||
                    options.process_model != "os-fork",
                "--team-pool=<workers> (N:M) is thread-only; the os-fork "
                "pool keeps one resident child per member");
    FORCE_CHECK(!options.team_pool || options.process_model != "cluster",
                "--team-pool is not available under the cluster process "
                "model (each run forks a fresh socket-connected team)");

    const auto result =
        force::preproc::translate(read_file(input), options);

    std::fputs(result.diags.render_all(input).c_str(), stderr);

    // The lint report is written before the ok check: a gate consuming
    // the compatibility matrix gets it even for programs that fail to
    // translate.
    const std::string report_path = cli.get("lint-report");
    if (!report_path.empty()) {
      write_file(report_path, result.lint_report_json);
      std::fprintf(stderr, "forcepp: wrote lint report %s\n",
                   report_path.c_str());
    }
    if (!result.ok) return 1;

    if (options.emit_pass1) {
      std::fputs("// ----- pass 1 (macro-call form) -----\n", stderr);
      std::fputs(result.pass1_text.c_str(), stderr);
      std::fputs("// ----- end pass 1 -----\n", stderr);
    }

    const std::string out_path = cli.get("o");
    if (out_path.empty()) {
      std::fputs(result.cpp_code.c_str(), stdout);
    } else {
      write_file(out_path, result.cpp_code);
      std::fprintf(stderr, "forcepp: wrote %s (%zu macro expansions)\n",
                   out_path.c_str(), result.macro_expansions);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "forcepp: %s\n", e.what());
    return 1;
  }
}
