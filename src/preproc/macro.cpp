#include "preproc/macro.hpp"

#include <cctype>

#include "preproc/textutil.hpp"
#include "util/check.hpp"

namespace force::preproc {

namespace {
constexpr int kMaxDepth = 64;

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

MacroProcessor::MacroProcessor() { install_utility_macros(); }

void MacroProcessor::define(const std::string& name, const std::string& body) {
  FORCE_CHECK(is_identifier(name), "bad macro name: " + name);
  natives_.erase(name);
  templates_[name] = body;
}

void MacroProcessor::define_native(const std::string& name, Native fn) {
  FORCE_CHECK(is_identifier(name), "bad macro name: " + name);
  templates_.erase(name);
  natives_[name] = std::move(fn);
}

void MacroProcessor::undefine(const std::string& name) {
  templates_.erase(name);
  natives_.erase(name);
}

bool MacroProcessor::has(const std::string& name) const {
  return templates_.contains(name) || natives_.contains(name);
}

std::optional<std::string> MacroProcessor::definition(
    const std::string& name) const {
  auto it = templates_.find(name);
  if (it == templates_.end()) return std::nullopt;
  return it->second;
}

std::string MacroProcessor::slot_or(const std::string& key,
                                    const std::string& fallback) const {
  auto it = slots_.find(key);
  return it == slots_.end() ? fallback : it->second;
}

std::optional<MacroProcessor::ParsedCall> MacroProcessor::find_call(
    const std::string& line, std::size_t from) {
  for (std::size_t i = from; i < line.size(); ++i) {
    if (line[i] != '@') continue;
    std::size_t j = i + 1;
    while (j < line.size() && ident_char(line[j])) ++j;
    if (j == i + 1 || j >= line.size() || line[j] != '(') continue;
    // Balanced-paren scan for the closing ')'.
    int depth = 0;
    std::size_t k = j;
    for (; k < line.size(); ++k) {
      if (line[k] == '(') ++depth;
      if (line[k] == ')') {
        --depth;
        if (depth == 0) break;
      }
    }
    if (k == line.size()) continue;  // unbalanced: not a call
    ParsedCall call;
    call.name = line.substr(i + 1, j - i - 1);
    const std::string inner = line.substr(j + 1, k - j - 1);
    call.args = inner.empty()
                    ? std::vector<std::string>{}
                    : split_args(inner, /*angle_nesting=*/true);
    call.begin = i;
    call.end = k + 1;
    return call;
  }
  return std::nullopt;
}

std::string MacroProcessor::substitute(const std::string& body,
                                       const std::string& name,
                                       const std::vector<std::string>& args) {
  std::string out;
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (body[i] == '$' && i + 1 < body.size()) {
      const char c = body[i + 1];
      if (c >= '1' && c <= '9') {
        const std::size_t idx = static_cast<std::size_t>(c - '1');
        if (idx < args.size()) out += args[idx];
        ++i;
        continue;
      }
      if (c == '0') {
        out += name;
        ++i;
        continue;
      }
      if (c == '*') {
        for (std::size_t a = 0; a < args.size(); ++a) {
          if (a) out += ", ";
          out += args[a];
        }
        ++i;
        continue;
      }
      if (c == '#') {
        out += std::to_string(args.size());
        ++i;
        continue;
      }
    }
    out += body[i];
  }
  return out;
}

std::string MacroProcessor::expand_inline(std::string work, int origin_line,
                                          DiagSink& diags, int depth) {
  std::size_t cursor = 0;
  int guard = 0;
  while (auto call = find_call(work, cursor)) {
    if (!has(call->name)) {
      cursor = call->begin + 1;
      continue;
    }
    auto sub = expand_call(*call, origin_line, diags, depth);
    if (sub.size() != 1) {
      diags.error(origin_line, "inline macro @" + call->name +
                                   " must expand to a single line");
      break;
    }
    work = work.substr(0, call->begin) + sub[0] + work.substr(call->end);
    cursor = call->begin;
    if (++guard > 1000) {
      diags.error(origin_line, "runaway inline macro expansion");
      break;
    }
  }
  return work;
}

std::vector<std::string> MacroProcessor::expand_call(const ParsedCall& call,
                                                     int origin_line,
                                                     DiagSink& diags,
                                                     int depth) {
  ++expansions_;
  if (depth > kMaxDepth) {
    diags.error(origin_line, "macro expansion too deep (recursive macro?)");
    return {};
  }
  // m4 applicative order: arguments are expanded before the macro runs.
  std::vector<std::string> args = call.args;
  for (auto& a : args) {
    if (a.find('@') != std::string::npos) {
      a = expand_inline(a, origin_line, diags, depth + 1);
    }
  }
  if (auto nit = natives_.find(call.name); nit != natives_.end()) {
    return expand_lines(nit->second(args, origin_line, diags), origin_line,
                        diags, depth + 1);
  }
  auto tit = templates_.find(call.name);
  FORCE_CHECK(tit != templates_.end(), "undefined macro @" + call.name);
  const std::string body = substitute(tit->second, call.name, args);
  return expand_lines(split_lines(body), origin_line, diags, depth + 1);
}

std::vector<std::string> MacroProcessor::expand_lines(
    std::vector<std::string> lines, int origin_line, DiagSink& diags,
    int depth) {
  if (depth > kMaxDepth) {
    diags.error(origin_line, "macro expansion too deep (recursive macro?)");
    return lines;
  }
  std::vector<std::string> out;
  for (auto& line : lines) {
    // Whole-line call: may expand to multiple lines, recursively. The
    // line's leading indentation is preserved on every expanded line.
    const std::string trimmed = trim(line);
    if (!trimmed.empty() && trimmed[0] == '@') {
      auto call = find_call(trimmed, 0);
      if (call && call->begin == 0 && call->end == trimmed.size() &&
          has(call->name)) {
        const std::string indent =
            line.substr(0, line.find_first_not_of(" \t"));
        auto sub = expand_call(*call, origin_line, diags, depth);
        for (auto& sline : sub) {
          out.push_back(sline.empty() ? std::move(sline) : indent + sline);
        }
        continue;
      }
    }
    // Inline calls: substitute each defined @name(...) in place; the
    // result must be a single line.
    out.push_back(expand_inline(line, origin_line, diags, depth));
  }
  return out;
}

std::vector<std::string> MacroProcessor::expand_line(const std::string& line,
                                                     int origin_line,
                                                     DiagSink& diags) {
  return expand_lines({line}, origin_line, diags, 0);
}

std::vector<std::string> MacroProcessor::expand_text(const std::string& text,
                                                     DiagSink& diags) {
  std::vector<std::string> out;
  int n = 0;
  for (const auto& line : split_lines(text)) {
    auto sub = expand_line(line, ++n, diags);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void MacroProcessor::install_utility_macros() {
  // The paper's utility macros: "returning the first element of a list,
  // storing and retrieving definitions, concatenating and truncating
  // arguments".
  define_native("first", [](const std::vector<std::string>& args, int,
                            DiagSink&) -> std::vector<std::string> {
    return {args.empty() ? "" : args[0]};
  });
  define_native("rest", [](const std::vector<std::string>& args, int,
                           DiagSink&) -> std::vector<std::string> {
    std::string out;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (i > 1) out += ", ";
      out += args[i];
    }
    return {out};
  });
  define_native("concat", [](const std::vector<std::string>& args, int,
                             DiagSink&) -> std::vector<std::string> {
    std::string out;
    for (const auto& a : args) out += a;
    return {out};
  });
  define_native("len", [](const std::vector<std::string>& args, int,
                          DiagSink&) -> std::vector<std::string> {
    return {std::to_string(args.size())};
  });
  // @ifelse(a, b, then, else): textual equality test, m4 style.
  define_native("ifelse", [](const std::vector<std::string>& args, int line,
                             DiagSink& diags) -> std::vector<std::string> {
    if (args.size() < 3) {
      diags.error(line, "@ifelse needs at least 3 arguments");
      return {""};
    }
    if (args[0] == args[1]) return {args[2]};
    return {args.size() > 3 ? args[3] : ""};
  });
  // @store(key, value) / @fetch(key[, fallback]): the definition store.
  define_native("store", [this](const std::vector<std::string>& args,
                                int line, DiagSink& diags)
                             -> std::vector<std::string> {
    if (args.size() != 2) {
      diags.error(line, "@store needs (key, value)");
      return {""};
    }
    slot(args[0]) = args[1];
    return {""};
  });
  define_native("fetch", [this](const std::vector<std::string>& args,
                                int line, DiagSink& diags)
                             -> std::vector<std::string> {
    if (args.empty()) {
      diags.error(line, "@fetch needs a key");
      return {""};
    }
    return {slot_or(args[0], args.size() > 1 ? args[1] : "")};
  });
}

}  // namespace force::preproc
