#include "preproc/diag.hpp"

namespace force::preproc {

namespace {
const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}
}  // namespace

std::string Diagnostic::render(const std::string& filename) const {
  std::string out = filename;
  if (line > 0) out += ":" + std::to_string(line);
  out += ": ";
  out += severity_name(severity);
  out += ": ";
  out += message;
  return out;
}

void DiagSink::note(int line, std::string message) {
  diags_.push_back({Severity::kNote, line, std::move(message)});
}

void DiagSink::warning(int line, std::string message) {
  diags_.push_back({Severity::kWarning, line, std::move(message)});
}

void DiagSink::error(int line, std::string message) {
  diags_.push_back({Severity::kError, line, std::move(message)});
  ++error_count_;
}

std::string DiagSink::render_all(const std::string& filename) const {
  std::string out;
  for (const auto& d : diags_) {
    out += d.render(filename);
    out += '\n';
  }
  return out;
}

}  // namespace force::preproc
