#include "preproc/diag.hpp"

#include <algorithm>
#include <numeric>

namespace force::preproc {

namespace {
const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}
}  // namespace

std::string Diagnostic::render(const std::string& filename) const {
  std::string out = file.empty() ? filename : file;
  if (line > 0) {
    out += ":" + std::to_string(line);
    if (col > 0) out += ":" + std::to_string(col);
  }
  out += ": ";
  out += severity_name(severity);
  out += ": ";
  out += message;
  if (!rule.empty()) out += " [" + rule + "]";
  if (!snippet.empty() && col > 0) {
    // Caret rendering: the source line (tabs flattened so the caret
    // column lines up), then ^~~~ under the reported range.
    std::string shown = snippet;
    std::replace(shown.begin(), shown.end(), '\t', ' ');
    out += "\n  " + shown + "\n  ";
    const std::size_t c = static_cast<std::size_t>(col - 1);
    out += std::string(std::min(c, shown.size()), ' ');
    out += '^';
    if (length > 1 && c < shown.size()) {
      const std::size_t avail = shown.size() - c;
      out += std::string(std::min<std::size_t>(length - 1, avail), '~');
    }
  }
  return out;
}

void DiagSink::note(int line, std::string message) {
  report(Severity::kNote, line, 0, 0, "", std::move(message), "");
}

void DiagSink::warning(int line, std::string message) {
  report(Severity::kWarning, line, 0, 0, "", std::move(message), "");
}

void DiagSink::error(int line, std::string message) {
  report(Severity::kError, line, 0, 0, "", std::move(message), "");
}

void DiagSink::report(Severity severity, int line, int col, int length,
                      std::string rule, std::string message,
                      std::string snippet) {
  report_in_file("", severity, line, col, length, std::move(rule),
                 std::move(message), std::move(snippet));
}

void DiagSink::report_in_file(std::string file, Severity severity, int line,
                              int col, int length, std::string rule,
                              std::string message, std::string snippet) {
  const bool was_warning = severity == Severity::kWarning;
  if (was_warning && werror_) severity = Severity::kError;
  const Diagnostic d{severity,        std::move(file),    line,
                     col,             length,             std::move(rule),
                     std::move(message), std::move(snippet)};
  if (std::find(diags_.begin(), diags_.end(), d) != diags_.end()) return;
  if (was_warning) ++warning_count_;
  if (d.severity == Severity::kError) ++error_count_;
  diags_.push_back(d);
}

std::string DiagSink::render_all(const std::string& filename) const {
  std::vector<std::size_t> order(diags_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     if (diags_[a].file != diags_[b].file)
                       return diags_[a].file < diags_[b].file;
                     if (diags_[a].line != diags_[b].line)
                       return diags_[a].line < diags_[b].line;
                     return diags_[a].col < diags_[b].col;
                   });
  std::string out;
  for (const std::size_t i : order) {
    out += diags_[i].render(filename);
    out += '\n';
  }
  return out;
}

}  // namespace force::preproc
