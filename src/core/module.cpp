#include "core/module.hpp"

#include <algorithm>

#include "core/env.hpp"
#include "util/check.hpp"

namespace force::core {

void SubroutineRegistry::register_sub(const std::string& name,
                                      StartupFn startup, BodyFn body) {
  FORCE_CHECK(!has(name), "duplicate Force subroutine: " + name);
  FORCE_CHECK(body != nullptr, "Force subroutine body must not be null");
  if (startup) {
    env_.linkage().register_module(name, std::move(startup));
  }
  subs_.push_back({name, std::move(body)});
}

void SubroutineRegistry::call(const std::string& name, Ctx& ctx) const {
  auto it = std::find_if(subs_.begin(), subs_.end(),
                         [&](const Sub& s) { return s.name == name; });
  FORCE_CHECK(it != subs_.end(),
              "Forcecall to unknown subroutine: " + name +
                  " (missing Externf/register_sub?)");
  it->body(ctx);
}

bool SubroutineRegistry::has(const std::string& name) const {
  return std::any_of(subs_.begin(), subs_.end(),
                     [&](const Sub& s) { return s.name == name; });
}

std::vector<std::string> SubroutineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(subs_.size());
  for (const auto& s : subs_) out.push_back(s.name);
  return out;
}

}  // namespace force::core
