#include "core/pcase.hpp"

#include "core/env.hpp"
#include "util/check.hpp"

namespace force::core {

PcaseBuilder::PcaseBuilder(ForceEnvironment& env, int me0, int width,
                           std::string site_key)
    : env_(env), me0_(me0), width_(width), site_key_(std::move(site_key)) {
  FORCE_CHECK(width_ > 0 && me0_ >= 0 && me0_ < width_,
              "bad pcase process id");
}

PcaseBuilder& PcaseBuilder::sect(std::function<void()> fn) {
  FORCE_CHECK(fn != nullptr, "pcase block must not be null");
  blocks_.push_back({true, std::move(fn)});
  return *this;
}

PcaseBuilder& PcaseBuilder::sect_if(bool cond, std::function<void()> fn) {
  FORCE_CHECK(fn != nullptr, "pcase block must not be null");
  blocks_.push_back({cond, std::move(fn)});
  return *this;
}

void PcaseBuilder::execute(const Block& b) {
  if (!b.enabled) return;
  env_.stats().pcase_blocks.fetch_add(1, std::memory_order_relaxed);
  b.fn();
}

void PcaseBuilder::run_presched() {
  // "The prescheduled version allocates the blocks sequentially to the
  // processes and is thus completely machine independent."
  for (std::size_t i = static_cast<std::size_t>(me0_); i < blocks_.size();
       i += static_cast<std::size_t>(width_)) {
    execute(blocks_[i]);
  }
}

void PcaseBuilder::run_selfsched() {
  // "A selfscheduled Pcase is similar to the selfscheduled DO loop in that
  // an asynchronous variable is needed for work distribution." We reuse
  // exactly that machinery: the shared dispatch state lives at this site.
  auto& loop = env_.sites().get_or_create<SelfschedLoop>(
      site_key_ + "%pcase",
      [this] { return std::make_unique<SelfschedLoop>(env_, width_); });
  FORCE_CHECK(loop.width() == width_,
              "pcase site reused from a team of a different width");
  loop.run(me0_, 0, static_cast<std::int64_t>(blocks_.size()) - 1, 1,
           [this](std::int64_t i) {
             execute(blocks_[static_cast<std::size_t>(i)]);
           });
}

}  // namespace force::core
