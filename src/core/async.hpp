// Asynchronous variables: Produce / Consume / Copy / Void / Isfull
// (paper §3.2, §3.4, §4.2).
//
// An async variable carries a full/empty state with its value:
//   Produce - waits for empty, writes, leaves full;
//   Consume - waits for full, reads, leaves empty;
//   Copy    - waits for full, reads, leaves full;
//   Void    - forces the state to empty regardless of its previous state;
//   Isfull  - tests the state.
//
// Two implementations, selected by the machine model:
//
//   * the generic two-lock scheme from §4.2, used on every machine except
//     the HEP: locks E and F, where empty == (E locked, F unlocked) and
//     full == (F locked, E unlocked).
//         Produce: Lock F;  write;  Unlock E.
//         Consume: Lock E;  read;   Unlock F.
//     Note the cross-thread unlock: this is why Force locks are binary
//     semaphores, not mutexes.
//
//   * the HEP hardware path: one tagged memory cell. Payloads of at most
//     one word are stored *in* the cell (bit-cast), exactly as on the real
//     machine; wider payloads sit beside the cell and are moved inside its
//     busy window.
#pragma once

#include <bit>
#include <cstring>
#include <memory>
#include <type_traits>

#include "core/env.hpp"
#include "core/sentry.hpp"
#include "machdep/backend.hpp"
#include "machdep/hepcell.hpp"
#include "machdep/locks.hpp"
#include "util/check.hpp"

namespace force::core {

template <typename T>
class Async {
  static_assert(std::is_default_constructible_v<T>,
                "async payloads must be default constructible");

  /// True when the payload fits inside one HEP tagged cell.
  static constexpr bool kInCell =
      std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(std::uint64_t);

 public:
  /// Creates the variable in the *empty* state (like Void at startup).
  /// `label` names the variable in sentry reports.
  explicit Async(ForceEnvironment& env, std::string label = "async")
      : env_(&env), sentry_(env.sentry()), label_(std::move(label)) {
    // Both per-process schemes below (lock pair + value_ member, HEP cell +
    // value_ member) keep the payload in this object, which a sibling
    // address space cannot see. Separate-process backends hand out a cell
    // engine keyed by the label instead (labels are construct-unique:
    // sites, names, array elements); the payload then crosses by memcpy,
    // which is why those backends reject non-trivially-copyable types.
    if constexpr (std::is_trivially_copyable_v<T>) {
      cell_engine_ = env.backend().make_async_cell(label_, sizeof(T),
                                                   alignof(T));
    } else {
      // Null engine + supported capability = the in-process schemes below;
      // backends that cannot memcpy the payload across reject here.
      env.require(machdep::Capability::kNonTrivialPayloads, "Async payload",
                  label_);
    }
    if (cell_engine_ != nullptr) return;
    hardware_ = env.machine().spec().hardware_full_empty;
    if (!hardware_) {
      lock_e_ = env.new_lock(machdep::LockRole::kSemaphore, label_ + ".E");
      lock_f_ = env.new_lock(machdep::LockRole::kSemaphore, label_ + ".F");
      void_guard_ = env.new_lock(machdep::LockRole::kMutex, label_ + ".void");
      lock_e_->acquire();  // empty: E locked, F unlocked
    }
  }

  Async(const Async&) = delete;
  Async& operator=(const Async&) = delete;

  /// Waits for empty, writes `v`, leaves full.
  void produce(const T& v) {
    env_->stats().produces.fetch_add(1, std::memory_order_relaxed);
    if (cell_engine_ != nullptr) {
      cell_engine_->produce(&v);
      return;
    }
    if (hardware_) {
      if (sentry_ != nullptr) {
        // Sentry mode always uses the wide-payload busy-window protocol so
        // the hooks sit inside the exclusion window the cell guarantees.
        {
          Sentry::WaitScope ws(sentry_, Sentry::WaitKind::kProduce, this,
                               label_);
          cell_.seize_empty();
        }
        sentry_->channel_enter(this, /*is_write=*/true, "Produce");
        value_ = v;
        sentry_->channel_exit(this);
        cell_.publish_full();
      } else if constexpr (kInCell) {
        cell_.produce(encode(v));
      } else {
        cell_.seize_empty();
        value_ = v;
        cell_.publish_full();
      }
    } else {
      if (sentry_ != nullptr) {
        {
          Sentry::WaitScope ws(sentry_, Sentry::WaitKind::kProduce, this,
                               label_);
          lock_f_->acquire();
        }
        sentry_->channel_enter(this, /*is_write=*/true, "Produce");
        value_ = v;
        sentry_->channel_exit(this);
      } else {
        lock_f_->acquire();
        value_ = v;
      }
      full_.store(true, std::memory_order_release);
      lock_e_->release();
    }
  }

  /// Waits for full, reads, leaves empty.
  T consume() {
    env_->stats().consumes.fetch_add(1, std::memory_order_relaxed);
    if (cell_engine_ != nullptr) {
      T v{};
      cell_engine_->consume(&v);
      return v;
    }
    if (hardware_) {
      if (sentry_ != nullptr) {
        {
          Sentry::WaitScope ws(sentry_, Sentry::WaitKind::kConsume, this,
                               label_);
          cell_.seize_full();
        }
        sentry_->channel_enter(this, /*is_write=*/false, "Consume");
        T v = value_;
        sentry_->channel_exit(this);
        cell_.publish_empty();
        return v;
      }
      if constexpr (kInCell) {
        return decode(cell_.consume());
      } else {
        cell_.seize_full();
        T v = value_;
        cell_.publish_empty();
        return v;
      }
    }
    if (sentry_ != nullptr) {
      {
        Sentry::WaitScope ws(sentry_, Sentry::WaitKind::kConsume, this,
                             label_);
        lock_e_->acquire();
      }
      sentry_->channel_enter(this, /*is_write=*/false, "Consume");
      T v = value_;
      sentry_->channel_exit(this);
      full_.store(false, std::memory_order_release);
      lock_f_->release();
      return v;
    }
    lock_e_->acquire();
    T v = value_;
    full_.store(false, std::memory_order_release);
    lock_f_->release();
    return v;
  }

  /// Waits for full, reads, leaves full (the Force Copy access).
  T copy() {
    if (cell_engine_ != nullptr) {
      T v{};
      cell_engine_->copy(&v);
      return v;
    }
    if (hardware_) {
      if (sentry_ != nullptr) {
        {
          Sentry::WaitScope ws(sentry_, Sentry::WaitKind::kConsume, this,
                               label_);
          cell_.seize_full();
        }
        sentry_->channel_enter(this, /*is_write=*/false, "Copy");
        T v = value_;
        sentry_->channel_exit(this);
        cell_.publish_full();
        return v;
      }
      if constexpr (kInCell) {
        return decode(cell_.copy());
      } else {
        cell_.seize_full();
        T v = value_;
        cell_.publish_full();
        return v;
      }
    }
    // Software path: momentarily consume and re-produce under E so that a
    // concurrent producer cannot interleave (it needs F, which stays
    // locked throughout).
    if (sentry_ != nullptr) {
      {
        Sentry::WaitScope ws(sentry_, Sentry::WaitKind::kConsume, this,
                             label_);
        lock_e_->acquire();
      }
      sentry_->channel_enter(this, /*is_write=*/false, "Copy");
      T v = value_;
      sentry_->channel_exit(this);
      lock_e_->release();
      return v;
    }
    lock_e_->acquire();
    T v = value_;
    lock_e_->release();
    return v;
  }

  /// Non-blocking produce; true on success.
  bool try_produce(const T& v) {
    if (cell_engine_ != nullptr) {
      const bool ok = cell_engine_->try_produce(&v);
      if (ok) env_->stats().produces.fetch_add(1, std::memory_order_relaxed);
      return ok;
    }
    if (hardware_) {
      if (sentry_ != nullptr) {
        if (!cell_.try_seize_empty()) return false;
        sentry_->channel_enter(this, /*is_write=*/true, "Produce");
        value_ = v;
        sentry_->channel_exit(this);
        cell_.publish_full();
        env_->stats().produces.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if constexpr (kInCell) {
        const bool ok = cell_.try_produce(encode(v));
        if (ok) env_->stats().produces.fetch_add(1, std::memory_order_relaxed);
        return ok;
      } else {
        if (!cell_.try_seize_empty()) return false;
        value_ = v;
        cell_.publish_full();
        env_->stats().produces.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    if (!lock_f_->try_acquire()) return false;
    if (sentry_ != nullptr) {
      sentry_->channel_enter(this, /*is_write=*/true, "Produce");
      value_ = v;
      sentry_->channel_exit(this);
    } else {
      value_ = v;
    }
    full_.store(true, std::memory_order_release);
    lock_e_->release();
    env_->stats().produces.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Non-blocking consume; true on success.
  bool try_consume(T* out) {
    FORCE_CHECK(out != nullptr, "try_consume needs an output slot");
    if (cell_engine_ != nullptr) {
      const bool ok = cell_engine_->try_consume(out);
      if (ok) env_->stats().consumes.fetch_add(1, std::memory_order_relaxed);
      return ok;
    }
    if (hardware_) {
      if (sentry_ != nullptr) {
        if (!cell_.try_seize_full()) return false;
        sentry_->channel_enter(this, /*is_write=*/false, "Consume");
        *out = value_;
        sentry_->channel_exit(this);
        cell_.publish_empty();
        env_->stats().consumes.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if constexpr (kInCell) {
        std::uint64_t bits;
        if (!cell_.try_consume(&bits)) return false;
        *out = decode(bits);
      } else {
        if (!cell_.try_seize_full()) return false;
        *out = value_;
        cell_.publish_empty();
      }
      env_->stats().consumes.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (!lock_e_->try_acquire()) return false;
    if (sentry_ != nullptr) {
      sentry_->channel_enter(this, /*is_write=*/false, "Consume");
      *out = value_;
      sentry_->channel_exit(this);
    } else {
      *out = value_;
    }
    full_.store(false, std::memory_order_release);
    lock_f_->release();
    env_->stats().consumes.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Forces the state to empty regardless of the previous state (Void).
  /// Concurrent Voids are serialized; a Void that overlaps an in-flight
  /// Produce may land before or after it, as on the original machines.
  void void_state() {
    if (cell_engine_ != nullptr) {
      cell_engine_->void_state();
      return;
    }
    // Void gives no exclusion window over the payload, so the sentry only
    // joins clocks (channel_sync), it does not record a payload access.
    if (hardware_) {
      if (sentry_ != nullptr) sentry_->channel_sync(this);
      cell_.make_empty();
      return;
    }
    void_guard_->acquire();
    if (sentry_ != nullptr) sentry_->channel_sync(this);
    if (full_.load(std::memory_order_acquire)) {
      lock_e_->acquire();  // consume the token without reading the value
      full_.store(false, std::memory_order_release);
      lock_f_->release();
    }
    void_guard_->release();
  }

  /// Tests the state (Force's Isfull). Inherently a snapshot.
  [[nodiscard]] bool is_full() const {
    // Backends without the isfull capability throw the uniform capability
    // diagnostic from inside their engine.
    if (cell_engine_ != nullptr) return cell_engine_->is_full();
    if (hardware_) return cell_.is_full();
    return full_.load(std::memory_order_acquire);
  }

  /// True if this variable uses the HEP tagged-cell path.
  [[nodiscard]] bool uses_hardware_path() const { return hardware_; }
  /// True if the payload lives inside the tagged cell itself.
  [[nodiscard]] static constexpr bool payload_in_cell() { return kInCell; }

 private:
  static std::uint64_t encode(const T& v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(T));
    return bits;
  }
  static T decode(std::uint64_t bits) {
    T v{};
    std::memcpy(&v, &bits, sizeof(T));
    return v;
  }

  ForceEnvironment* env_;
  Sentry* sentry_;  // null when validation is off (the usual case)
  bool hardware_ = false;
  std::string label_;
  // Separate-process backends: the full/empty state and payload live in
  // one backend cell engine keyed by label_ (an arena blob under os-fork,
  // the coordinator's cell table under cluster). Null on the thread
  // backend, which keeps the in-process schemes below.
  std::unique_ptr<machdep::AsyncCell> cell_engine_;
  // Software scheme state:
  std::unique_ptr<machdep::BasicLock> lock_e_;
  std::unique_ptr<machdep::BasicLock> lock_f_;
  std::unique_ptr<machdep::BasicLock> void_guard_;
  std::atomic<bool> full_{false};
  // Hardware scheme state:
  machdep::HepCell cell_;
  // Payload (software scheme, or hardware scheme with wide payloads):
  T value_{};
};

/// A fixed-size array of async variables (Force `Async real A(n)`), e.g.
/// for pipelined wavefront algorithms where element (i) being full means
/// row i is ready. Also the stress subject of the lock-scarcity bench.
template <typename T>
class AsyncArray {
 public:
  AsyncArray(ForceEnvironment& env, std::size_t n, std::string label = "async")
      : label_(std::move(label)) {
    slots_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      slots_.push_back(std::make_unique<Async<T>>(
          env, label_ + "(" + std::to_string(i) + ")"));
    }
  }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  Async<T>& operator[](std::size_t i) {
    FORCE_CHECK(i < slots_.size(), "async array index out of range");
    return *slots_[i];
  }

 private:
  std::string label_;
  std::vector<std::unique_ptr<Async<T>>> slots_;
};

}  // namespace force::core
