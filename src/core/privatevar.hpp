// Private variables (paper §3.2, §4.1.1).
//
// A Force private variable has one instance per process. What a child
// process finds in it at creation depends on the machine's process model:
// under the Unix fork models the child inherits a byte copy of the value
// the parent wrote before the force started; under the HEP create model
// the variable starts default-valued. Private<T> makes that observable:
//
//   force::Force f({.machine = "sequent"});          // fork model
//   force::core::Private<int> counter(f.env());
//   counter.parent() = 42;                           // before run()
//   f.run([&](force::Ctx& ctx) {
//     int& mine = counter.get(ctx);                  // 42 on sequent,
//   });                                              // 0 on hep
//
// The variable is placed in whichever private region is genuinely
// per-process under the machine's model (the *stack* region on the
// Alliant, whose data segments are shared). T must be trivially copyable:
// fork copies bytes.
#pragma once

#include <type_traits>

#include "core/force.hpp"
#include "machdep/process.hpp"

namespace force::core {

template <typename T>
class Private {
  static_assert(std::is_trivially_copyable_v<T>,
                "private variables are inherited by byte copy (fork)");

 public:
  /// Registers the slot; must run before the force is created.
  explicit Private(ForceEnvironment& env)
      : env_(&env),
        region_(machdep::private_region_for(
            env.machine().spec().process_model)),
        offset_(env.private_space().register_slot(region_, sizeof(T),
                                                  alignof(T))) {
    ::new (env_->private_space().parent_ptr(region_, offset_)) T();
  }

  /// The parent's (pre-fork) instance; write here before run() to seed
  /// fork-model children.
  [[nodiscard]] T& parent() {
    return *static_cast<T*>(
        env_->private_space().parent_ptr(region_, offset_));
  }

  /// This process's instance.
  [[nodiscard]] T& get(const Ctx& ctx) {
    return *static_cast<T*>(
        env_->private_space().ptr(ctx.me0(), region_, offset_));
  }

  /// A specific process's instance (diagnostics/tests only; touching
  /// another process's privates from user code defeats the classification).
  [[nodiscard]] T& for_process(int proc0) {
    return *static_cast<T*>(
        env_->private_space().ptr(proc0, region_, offset_));
  }

 private:
  ForceEnvironment* env_;
  machdep::PrivateSpace::Region region_;
  std::size_t offset_;
};

/// A deliberately misplaced "private" variable that always lives in the
/// data region. On the Alliant model the data region is shared, so this
/// exhibits the accidental-sharing hazard the paper's Encore/Alliant
/// discussion warns about; tests use it to demonstrate why the runtime
/// places privates per machine.
template <typename T>
class MisplacedPrivate {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit MisplacedPrivate(ForceEnvironment& env)
      : env_(&env),
        offset_(env.private_space().register_slot(
            machdep::PrivateSpace::Region::kData, sizeof(T), alignof(T))) {
    ::new (env_->private_space().parent_ptr(
        machdep::PrivateSpace::Region::kData, offset_)) T();
  }

  [[nodiscard]] T& get(const Ctx& ctx) {
    return *static_cast<T*>(env_->private_space().ptr(
        ctx.me0(), machdep::PrivateSpace::Region::kData, offset_));
  }

 private:
  ForceEnvironment* env_;
  std::size_t offset_;
};

}  // namespace force::core
