#include "core/force.hpp"

#include "util/check.hpp"

namespace force::core {

void Ctx::call(const std::string& subroutine) {
  FORCE_CHECK(subs_ != nullptr,
              "Forcecall is only available on driver-created contexts");
  // Parallel subroutines are executed by all processes concurrently; each
  // process simply calls the body with its own context (paper §3.1).
  subs_->call(subroutine, *this);
}

ResolveBuilder Ctx::resolve(const Site& site) {
  env_->require(machdep::Capability::kResolve, "Resolve", site_key(site));
  return ResolveBuilder(*this, site_key(site));
}

ResolveBuilder& ResolveBuilder::component(std::string name, int weight,
                                          std::function<void(Ctx&)> body) {
  FORCE_CHECK(body != nullptr, "Resolve component body must not be null");
  components_.push_back({std::move(name), weight, std::move(body)});
  return *this;
}

void ResolveBuilder::run() {
  FORCE_CHECK(!components_.empty(), "Resolve needs at least one component");
  std::vector<int> weights;
  weights.reserve(components_.size());
  for (const auto& c : components_) weights.push_back(c.weight);

  // Every process computes the same deterministic partition.
  const std::vector<int> sizes = resolve_partition(parent_.np(), weights);
  auto& env = parent_.env();
  auto& st = env.sites().get_or_create<ResolveState>(
      site_key_ + "%resolve", [&env, &sizes] {
        return std::make_unique<ResolveState>(env, sizes);
      });
  FORCE_CHECK(st.sizes() == sizes,
              "Resolve site reached with divergent components");

  const ComponentAssignment a = assign_component(parent_.me0(), sizes);
  Component& mine = components_[static_cast<std::size_t>(a.component)];

  // The Unify join is a barrier over the whole team, so it carries the
  // same happens-before edges as any barrier when the sentry is on.
  Sentry* sn = env.sentry();
  BarrierAlgorithm& join = st.join_barrier();
  const auto arrive_join = [&] {
    if (sn != nullptr) sn->barrier_publish(&join);
    join.arrive(parent_.me0());
    if (sn != nullptr) sn->barrier_join(&join);
  };

  // Sub-context: remapped rank/width, component-sized barrier, and a
  // namespaced construct-site space so nested constructs get fresh state.
  Ctx sub(parent_.env_, parent_.subs_, a.rank, a.width,
          site_key_ + "#" + mine.name, &st.component_barrier(a.component));
  try {
    mine.body(sub);
  } catch (...) {
    // Unify even on failure so other components are not wedged forever.
    arrive_join();
    throw;
  }
  arrive_join();
}

Force::Force(ForceConfig config)
    : env_(std::make_unique<ForceEnvironment>(std::move(config))),
      subs_(*env_) {}

machdep::SpawnStats Force::run(const std::function<void(Ctx&)>& program) {
  FORCE_CHECK(program != nullptr, "Force program must not be null");
  machdep::PrivateSpace* space = nullptr;
  if (!started_) {
    // The preprocess-generated driver runs every module's startup routine
    // (declaring shared variables; linking them on link-time machines)
    // before the force is created.
    env_->linkage().run_startup(env_->arena());
    space = &env_->private_space();
    started_ = true;
  }

  // Stamp the new force entry before any member can reach a construct:
  // long-lived sites (pooled teams re-enter them run after run) compare
  // this generation to re-arm per-entry episode state, e.g. the Askfor
  // drained/probend latch.
  env_->begin_team_entry();

  Sentry* sn = env_->sentry();
  if (sn != nullptr) {
    // Linkage-declared shared variables become named, race-checked ranges.
    // The walk costs per-allocation work on every entry, which pooled
    // re-entry makes hot - skip it unless a new allocation was placed
    // since the last run (the arena generation says so).
    const std::uint64_t arena_gen = env_->arena().generation();
    if (arena_gen != tracked_arena_generation_) {
      env_->arena().for_each_allocation(
          [sn](const std::string& name, void* addr, std::size_t bytes) {
            sn->track_range(addr, bytes, name);
          });
      tracked_arena_generation_ = arena_gen;
    }
    sn->begin_run();  // fork edge: every process starts after the driver
  }

  const int np = env_->nproc();
  const auto member = [this, np, sn, &program](int proc0) {
    Ctx ctx(env_.get(), &subs_, proc0, np, "", &env_->global_barrier());
    if (sn != nullptr) {
      Sentry::ThreadScope scope(*sn, proc0);
      program(ctx);
    } else {
      program(ctx);
    }
  };

  // The backend owns the whole team lifetime: pools, spawn, join, death
  // reporting. The program's closure type rides along so the os-fork pool
  // can pin one program per armed team (docs/PORTING.md spells out that
  // contract); other backends ignore it.
  const machdep::SpawnStats stats =
      env_->backend().run_team(np, space, member, &program.target_type());

  if (sn != nullptr) sn->end_run();  // join edge: the driver sees all writes

  lifetime_.create_ns += stats.create_ns;
  lifetime_.join_ns += stats.join_ns;
  lifetime_.bytes_copied += stats.bytes_copied;
  lifetime_.processes = stats.processes;
  return stats;
}

}  // namespace force::core
