#include "core/force.hpp"

#include "machdep/cluster.hpp"
#include "machdep/teampool.hpp"
#include "util/check.hpp"

namespace force::core {

void Ctx::call(const std::string& subroutine) {
  FORCE_CHECK(subs_ != nullptr,
              "Forcecall is only available on driver-created contexts");
  // Parallel subroutines are executed by all processes concurrently; each
  // process simply calls the body with its own context (paper §3.1).
  subs_->call(subroutine, *this);
}

ResolveBuilder Ctx::resolve(const Site& site) {
  FORCE_CHECK(!env_->fork_backend(),
              "Resolve is not supported under the os-fork backend (its "
              "component barriers and claim state are per-address-space)");
  FORCE_CHECK(!env_->cluster_backend(),
              "Resolve is not supported under the cluster backend (its "
              "component barriers and claim state are per-address-space)");
  return ResolveBuilder(*this, site_key(site));
}

ResolveBuilder& ResolveBuilder::component(std::string name, int weight,
                                          std::function<void(Ctx&)> body) {
  FORCE_CHECK(body != nullptr, "Resolve component body must not be null");
  components_.push_back({std::move(name), weight, std::move(body)});
  return *this;
}

void ResolveBuilder::run() {
  FORCE_CHECK(!components_.empty(), "Resolve needs at least one component");
  std::vector<int> weights;
  weights.reserve(components_.size());
  for (const auto& c : components_) weights.push_back(c.weight);

  // Every process computes the same deterministic partition.
  const std::vector<int> sizes = resolve_partition(parent_.np(), weights);
  auto& env = parent_.env();
  auto& st = env.sites().get_or_create<ResolveState>(
      site_key_ + "%resolve", [&env, &sizes] {
        return std::make_unique<ResolveState>(env, sizes);
      });
  FORCE_CHECK(st.sizes() == sizes,
              "Resolve site reached with divergent components");

  const ComponentAssignment a = assign_component(parent_.me0(), sizes);
  Component& mine = components_[static_cast<std::size_t>(a.component)];

  // The Unify join is a barrier over the whole team, so it carries the
  // same happens-before edges as any barrier when the sentry is on.
  Sentry* sn = env.sentry();
  BarrierAlgorithm& join = st.join_barrier();
  const auto arrive_join = [&] {
    if (sn != nullptr) sn->barrier_publish(&join);
    join.arrive(parent_.me0());
    if (sn != nullptr) sn->barrier_join(&join);
  };

  // Sub-context: remapped rank/width, component-sized barrier, and a
  // namespaced construct-site space so nested constructs get fresh state.
  Ctx sub(parent_.env_, parent_.subs_, a.rank, a.width,
          site_key_ + "#" + mine.name, &st.component_barrier(a.component));
  try {
    mine.body(sub);
  } catch (...) {
    // Unify even on failure so other components are not wedged forever.
    arrive_join();
    throw;
  }
  arrive_join();
}

Force::Force(ForceConfig config)
    : env_(std::make_unique<ForceEnvironment>(std::move(config))),
      subs_(*env_) {}

machdep::SpawnStats Force::run(const std::function<void(Ctx&)>& program) {
  FORCE_CHECK(program != nullptr, "Force program must not be null");
  machdep::PrivateSpace* space = nullptr;
  if (!started_) {
    // The preprocess-generated driver runs every module's startup routine
    // (declaring shared variables; linking them on link-time machines)
    // before the force is created.
    env_->linkage().run_startup(env_->arena());
    space = &env_->private_space();
    started_ = true;
  }

  // Stamp the new force entry before any member can reach a construct:
  // long-lived sites (pooled teams re-enter them run after run) compare
  // this generation to re-arm per-entry episode state, e.g. the Askfor
  // drained/probend latch.
  env_->begin_team_entry();

  Sentry* sn = env_->sentry();
  if (sn != nullptr) {
    // Linkage-declared shared variables become named, race-checked ranges.
    // The walk costs per-allocation work on every entry, which pooled
    // re-entry makes hot - skip it unless a new allocation was placed
    // since the last run (the arena generation says so).
    const std::uint64_t arena_gen = env_->arena().generation();
    if (arena_gen != tracked_arena_generation_) {
      env_->arena().for_each_allocation(
          [sn](const std::string& name, void* addr, std::size_t bytes) {
            sn->track_range(addr, bytes, name);
          });
      tracked_arena_generation_ = arena_gen;
    }
    sn->begin_run();  // fork edge: every process starts after the driver
  }

  const int np = env_->nproc();
  const auto member = [this, np, sn, &program](int proc0) {
    Ctx ctx(env_.get(), &subs_, proc0, np, "", &env_->global_barrier());
    if (sn != nullptr) {
      Sentry::ThreadScope scope(*sn, proc0);
      program(ctx);
    } else {
      program(ctx);
    }
  };

  machdep::SpawnStats stats;
  if (env_->team_pool_enabled() && env_->fork_backend()) {
    machdep::ForkTeamPool& pool = env_->fork_pool(np);
    // The pool's resident children re-execute the closure they were
    // forked with, so every pooled run must pass the same program. The
    // closure's type is the strongest identity available on a
    // std::function; same-type closures with different captured state
    // cannot be told apart (docs/PORTING.md spells out the contract).
    const std::type_info& program_type = program.target_type();
    if (pool.armed()) {
      FORCE_CHECK(pooled_program_type_ != nullptr &&
                      *pooled_program_type_ == program_type,
                  "an os-fork team pool runs one program: its resident "
                  "children re-execute the closure they were forked with; "
                  "use a fresh Force (or team_pool = false) for a "
                  "different program");
    }
    try {
      stats = pool.run(space, member);
    } catch (const machdep::ProcessDeathError&) {
      // The pool is already retired; the dead team left the arena's
      // synchronization words wherever the victims stood. Scrub them now
      // so the fresh team the next run forks starts from a clean slate.
      env_->reset_shared_sync_after_death();
      throw;
    }
    pooled_program_type_ = &program_type;
  } else if (env_->team_pool_enabled()) {
    if (space != nullptr) {
      // Same fork-time copy semantics as the one-shot team; the pool only
      // changes who executes the members, not what they inherit.
      space->materialize(np,
                         machdep::init_mode_for(env_->process_team().kind()));
    }
    stats = env_->team_pool().run(np, member);
    if (space != nullptr) stats.bytes_copied = space->bytes_copied();
  } else if (env_->cluster_backend()) {
    // The cluster team reads its arena and transport through the installed
    // runtime config (ProcessTeam::run's signature carries neither); the
    // scope guarantees no dangling arena pointer survives this run.
    machdep::cluster::ScopedRuntimeConfig cluster_cfg(
        {&env_->arena(), env_->config().cluster_transport});
    auto team = env_->process_team();
    stats = team.run(np, space, member);
  } else {
    auto team = env_->process_team();
    stats = team.run(np, space, member);
  }

  if (sn != nullptr) sn->end_run();  // join edge: the driver sees all writes

  lifetime_.create_ns += stats.create_ns;
  lifetime_.join_ns += stats.join_ns;
  lifetime_.bytes_copied += stats.bytes_copied;
  lifetime_.processes = stats.processes;
  return stats;
}

}  // namespace force::core
