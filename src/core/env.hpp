// The Force parallel environment (paper §4.1.2).
//
// The preprocessor provides "a set of variables used to implement the Force
// constructs for work distribution and synchronization, such as process
// number, barrier locks and arrival counter, and asynchronous loop index
// for selfscheduled loops". ForceEnvironment is that set, plus ownership of
// the machine model, the shared arena, the private space, the startup
// linkage registry and the construct-site table.
//
// Everything here is machine independent: the environment only talks to
// the machine through MachineModel's generic interfaces.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "machdep/arena.hpp"
#include "machdep/backend.hpp"
#include "machdep/linkage.hpp"
#include "machdep/machine.hpp"
#include "core/site.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace force::core {

class BarrierAlgorithm;  // core/barrier.hpp
class Sentry;            // core/sentry.hpp

/// Configuration of one Force program execution.
struct ForceConfig {
  /// Number of processes in the force. The whole point of the Force is
  /// that programs do not depend on this value.
  int nproc = 4;
  /// Machine model name: hep, flex32, encore, sequent, alliant, cray2,
  /// or native (default).
  std::string machine = "native";
  /// Barrier algorithm for ctx.barrier(): paper-lock (faithful to the
  /// two-lock/counter structure), central-sense, tree, or dissemination.
  std::string barrier_algorithm = "paper-lock";
  /// Dispatch engine selection. "auto" (default) follows the machine's
  /// hardware_atomic_rmw capability: lock-free fetch-add/CAS dispatch and
  /// work stealing where the hardware has atomic RMW, the paper's
  /// lock-protected expansion everywhere else. "locked" forces the lock
  /// engine even on capable machines (benches/tests comparing engines).
  std::string dispatch = "auto";
  /// Process backend. "machine" (default) uses the machine model's
  /// thread-emulated process creation; "os-fork" spawns real child
  /// processes with fork(2) over a MAP_SHARED arena and process-shared
  /// (futex) synchronization; "cluster" spawns real child processes with
  /// *no shared mapping at all* - a coordinator serves every construct
  /// over a framed socket transport and a software distributed-shared
  /// arena (machdep/cluster.hpp) - see docs/PORTING.md, process-model
  /// axis. Under os-fork and cluster the sentry, tracing and schedule
  /// fuzzing are unavailable (their state is per-address-space): setting
  /// them explicitly is an error, while the FORCE_SENTRY /
  /// FORCE_SCHEDULE_FUZZ environment variables are silently ignored so a
  /// suite-wide validation run does not break the fork/cluster tests.
  std::string process_model = "machine";
  /// Socket transport between cluster members and the coordinator:
  /// "unix" (AF_UNIX socketpair, default) or "tcp" (loopback TCP with
  /// TCP_NODELAY). Cluster backend only; also set by
  /// FORCE_CLUSTER_TRANSPORT when left at the default.
  std::string cluster_transport = "unix";
  /// Shared arena capacity (rounded up to whole pages).
  std::size_t arena_bytes = 4u << 20;
  /// Private data / stack region sizes per process.
  std::size_t private_data_bytes = 256u << 10;
  std::size_t private_stack_bytes = 256u << 10;
  /// Base seed; process p draws from substream p of this seed.
  std::uint64_t seed = 0x464f524345u;  // "FORCE"
  /// Record an execution trace (barrier episodes, sections, critical
  /// occupancy, DOALL participation and dispatches). Export it with
  /// env().tracer()->write_chrome_json(path). Off by default: the only
  /// cost when off is a pointer test per construct.
  bool trace = false;
  std::size_t trace_events_per_process = 64u << 10;
  /// Enable the sentry (runtime race/deadlock validation, core/sentry.hpp).
  /// Same cost model as tracing: a pointer test per construct when off.
  /// Also switched on by the FORCE_SENTRY=1 environment variable so the
  /// whole test suite can be validated without editing every test.
  bool sentry = false;
  /// Schedule-fuzz seed for the sentry (0 = no fuzzing). Deterministic:
  /// the same seed explores the same perturbation schedule. Also set by
  /// FORCE_SCHEDULE_FUZZ=<seed> (implies sentry).
  std::uint64_t schedule_fuzz = 0;
  /// Wait length the sentry's watchdog reports as a stall, in ms.
  /// Also set by FORCE_SENTRY_STALL_MS=<n>.
  int sentry_stall_ms = 1000;
  /// Keep the team alive across Force::run invocations: workers (or fork
  /// children under os-fork) park between forces on a generation-stamped
  /// entry protocol instead of being created and joined per run - see
  /// docs/PORTING.md, team-lifetime axis. Also switched on by
  /// FORCE_TEAM_POOL=1. Under os-fork, every pooled run must execute the
  /// same program closure (the resident children re-run the entry they
  /// were forked with).
  bool team_pool = false;
  /// N:M member scheduling: run the force's nproc members on this many
  /// pooled worker threads as run-to-barrier continuations (0 = one
  /// worker per member). Setting it implies team_pool; thread-backed
  /// process models only, and incompatible with the sentry (two members
  /// share one OS thread, defeating its per-thread bookkeeping). Also set
  /// by FORCE_POOL_WORKERS=<w>.
  int pool_workers = 0;
};

/// Machine-independent runtime statistics, aggregated across processes.
struct RuntimeStats {
  std::atomic<std::uint64_t> barrier_episodes{0};
  std::atomic<std::uint64_t> critical_entries{0};
  std::atomic<std::uint64_t> doall_iterations{0};
  std::atomic<std::uint64_t> doall_dispatches{0};  ///< selfsched index grabs
  std::atomic<std::uint64_t> produces{0};
  std::atomic<std::uint64_t> consumes{0};
  std::atomic<std::uint64_t> askfor_grants{0};
  std::atomic<std::uint64_t> pcase_blocks{0};

  void reset();
};

class ForceEnvironment {
 public:
  explicit ForceEnvironment(ForceConfig config);
  ~ForceEnvironment();

  ForceEnvironment(const ForceEnvironment&) = delete;
  ForceEnvironment& operator=(const ForceEnvironment&) = delete;

  [[nodiscard]] const ForceConfig& config() const { return config_; }
  [[nodiscard]] int nproc() const { return config_.nproc; }

  [[nodiscard]] machdep::MachineModel& machine() { return *machine_; }
  [[nodiscard]] const machdep::MachineModel& machine() const {
    return *machine_;
  }
  [[nodiscard]] machdep::SharedArena& arena() { return *arena_; }
  [[nodiscard]] machdep::PrivateSpace& private_space() { return *private_; }
  [[nodiscard]] machdep::LinkageRegistry& linkage() { return linkage_; }
  [[nodiscard]] SiteTable& sites() { return sites_; }
  [[nodiscard]] RuntimeStats& stats() { return stats_; }

  /// Generic lock factory (budget-aware, instrumented).
  std::unique_ptr<machdep::BasicLock> new_lock() {
    return machine_->new_lock();
  }

  /// Lock factory for construct-internal locks that the sentry should
  /// observe. `role` tells the deadlock detector how the lock is used
  /// (kMutex: acquire/release by the same process, participates in the
  /// lock-order graph and locksets; kSemaphore: cross-process release is
  /// part of the protocol, e.g. async full/empty pairs and barrier
  /// turnstiles). `label` gives reports a human-readable name. When the
  /// sentry is off this is exactly new_lock().
  std::unique_ptr<machdep::BasicLock> new_lock(machdep::LockRole role,
                                               std::string label);

  /// True when dispatch-heavy constructs (selfsched DOALL, Askfor) may use
  /// the lock-free fast path on this run: the machine declares
  /// hardware_atomic_rmw and the config does not force "locked".
  [[nodiscard]] bool lock_free_dispatch() const {
    return machine_->spec().hardware_atomic_rmw &&
           config_.dispatch != "locked";
  }

  /// Dispatch-counter factory honouring lock_free_dispatch().
  std::unique_ptr<machdep::DispatchCounter> new_dispatch_counter() {
    return machine_->new_dispatch_counter(!lock_free_dispatch());
  }

  /// The process substrate this environment selected at construction
  /// (ForceConfig::process_model parsed into the enum).
  [[nodiscard]] machdep::ProcessModel process_model() const { return model_; }

  /// The execution backend realizing the constructs on that substrate.
  /// Constructs ask it for engines (a null engine means "use the
  /// monomorphic thread machinery") - core never names a backend.
  [[nodiscard]] machdep::ExecutionBackend& backend() { return *backend_; }

  /// Capability probe against the declarative backend matrix.
  [[nodiscard]] bool supports(machdep::Capability cap) const {
    return machdep::backend_supports(model_, cap);
  }

  /// Rejects `construct` at `site` with the uniform capability diagnostic
  /// when this backend does not support `cap`; no-op when it does.
  void require(machdep::Capability cap, const std::string& construct,
               const std::string& site) const;

  /// The team that Force::run spawns: the machine model's emulated team,
  /// or the backend's separate-process team.
  [[nodiscard]] machdep::ProcessTeam process_team() const;

  /// True when this environment keeps its team pooled across force
  /// entries (ForceConfig::team_pool / FORCE_TEAM_POOL).
  [[nodiscard]] bool team_pool_enabled() const { return config_.team_pool; }

  /// Worker-thread count of the pooled team: pool_workers when set,
  /// otherwise one worker per member except member 0, which the driver
  /// thread runs inline (still 1:1 - every member owns an OS thread).
  [[nodiscard]] int pool_workers() const {
    if (config_.pool_workers > 0) return config_.pool_workers;
    return config_.nproc > 1 ? config_.nproc - 1 : 1;
  }

  /// The persistent thread-axis team, created (and its workers parked) on
  /// first use. Thread-backed process models only.
  [[nodiscard]] machdep::TeamPool& team_pool();

  /// The persistent process-axis team sized for `nproc` resident fork
  /// children, created on first use (and recreated if the width changes).
  /// os-fork backend only.
  [[nodiscard]] machdep::ForkTeamPool& fork_pool(int nproc);

  /// Scrubs every process-shared synchronization blob in the arena after
  /// a pooled team died mid-protocol: lock words freed, barrier arrival
  /// counts zeroed, askfor rings and selfsched episodes re-initialized,
  /// busy async cells emptied. A poisoned team leaves this state wherever
  /// the victims stood (a dead champion never publishes its episode), so
  /// the fresh team the next run forks must not inherit it. User data -
  /// shared variables, full async payloads - is untouched. os-fork only;
  /// called with no team alive (between pool retirement and respawn).
  void reset_shared_sync_after_death();

  /// Force-entry generation: bumped once at the top of every Force::run,
  /// before the team is (re-)armed. Long-lived construct sites compare it
  /// to their own stamp to re-arm per-entry episode state (e.g. the
  /// Askfor drained/probend latch) when a pooled team re-enters the same
  /// force. Under os-fork the counter lives in the shared arena so
  /// resident children observe the bump.
  [[nodiscard]] std::uint32_t run_generation() const;
  void begin_team_entry();

  /// The environment barrier used by un-sited ctx.barrier() calls on the
  /// full force; sized to nproc with the configured algorithm.
  [[nodiscard]] BarrierAlgorithm& global_barrier();

  /// Builds a barrier instance for `width` processes with the configured
  /// (or an explicitly named) algorithm; used by sited barriers and by
  /// Resolve components. Under the fork backend the default-algorithm
  /// overload is rejected (callers must key a process-shared barrier).
  std::unique_ptr<BarrierAlgorithm> make_barrier(int width);
  std::unique_ptr<BarrierAlgorithm> make_barrier(int width,
                                                 const std::string& algorithm);

  /// Arena-resident barrier for `width` processes at a deterministic key;
  /// the only barrier that spans os-fork processes. The key makes lazy
  /// construction race-free: every process that resolves the same key
  /// meets at the same two futex words.
  std::unique_ptr<BarrierAlgorithm> make_process_shared_barrier(
      int width, const std::string& shm_key);

  /// Per-process deterministic RNG substream.
  [[nodiscard]] util::Xoshiro256 rng_for(int proc0) const;

  /// The execution tracer, or null when tracing is disabled.
  [[nodiscard]] util::Tracer* tracer() { return tracer_.get(); }

  /// The sentry, or null when validation is disabled.
  [[nodiscard]] Sentry* sentry() { return sentry_.get(); }

 private:
  ForceConfig config_;
  std::unique_ptr<machdep::MachineModel> machine_;
  std::unique_ptr<machdep::SharedArena> arena_;
  std::unique_ptr<machdep::PrivateSpace> private_;
  machdep::LinkageRegistry linkage_;
  SiteTable sites_;
  RuntimeStats stats_;
  std::unique_ptr<util::Tracer> tracer_;
  /// Must outlive every ObservedLock handed out by new_lock(role, label);
  /// declared before global_barrier_ (whose locks reference it) and
  /// destroyed after it.
  std::unique_ptr<Sentry> sentry_;
  machdep::ProcessModel model_ = machdep::ProcessModel::kThread;
  /// The selected substrate. Declared after machine_ and arena_ (which it
  /// references) so it is destroyed first; it owns the pooled teams, whose
  /// resident fork children still reference the MAP_SHARED arena while
  /// they park.
  std::unique_ptr<machdep::ExecutionBackend> backend_;
  std::unique_ptr<BarrierAlgorithm> global_barrier_;
  std::atomic<std::uint32_t> run_generation_{0};
  /// Arena-resident generation word under os-fork (children's copies of
  /// this object are COW-frozen at fork time; the arena word is live).
  std::atomic<std::uint32_t>* run_gen_shm_ = nullptr;
};

}  // namespace force::core
