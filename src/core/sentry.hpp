// The Force sentry: an opt-in runtime validation layer.
//
// The paper's portability argument is that every upper-level construct is
// correct over any conforming lower level; the sentry *checks* the claim at
// run time instead of trusting inspection (after McKenney's validation
// chapters). Three cooperating detectors:
//
//   * a hybrid lockset + happens-before RACE DETECTOR for accesses the
//     program annotates (Ctx::note_read / note_write) and for async
//     variables. Happens-before edges come from barrier episodes,
//     Produce/Consume serialization, and run fork/join; mutex-role locks
//     deliberately add NO edges - instead, Eraser-style, an access pair is
//     racy only if it is unordered AND the locksets held at the two
//     accesses are disjoint. That flags *potential* races even when this
//     particular schedule serialized them.
//
//   * a DEADLOCK DETECTOR: a lock-order graph over mutex-role locks
//     (acquiring B while holding A adds edge A->B; a cycle is a potential
//     deadlock, reported immediately without needing the deadlock to
//     strike) plus a wait-for registry fed by blocked lock acquires,
//     Produce/Consume waits and Askfor polling. A watchdog thread turns
//     the registry into stall reports (waits longer than
//     ForceConfig::sentry_stall_ms) and actual wait-for-cycle reports.
//
//   * a SCHEDULE FUZZER: deterministic seeded yields and backoff spins
//     injected at the sentry hook points, widening the explored
//     interleavings (ForceConfig::schedule_fuzz, --schedule-fuzz=<seed>
//     in the test binaries).
//
// Cost model mirrors the Tracer: when ForceConfig::sentry is off the
// environment holds a null Sentry pointer and every construct pays one
// pointer test. When on, hooks serialize on one internal mutex - the
// sentry is a validation mode, not a production mode.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "machdep/locks.hpp"

namespace force::core {

class Sentry final : public machdep::LockObserver {
 public:
  enum class ReportKind {
    kRace,       ///< unordered, lockset-disjoint access pair
    kLockOrder,  ///< cycle in the lock acquisition-order graph
    kDeadlock,   ///< actual cycle in the wait-for graph
    kStall       ///< a wait exceeded the stall threshold
  };

  struct Report {
    ReportKind kind;
    std::string what;  ///< human-readable, with site/episode provenance
  };

  struct Options {
    int nproc = 1;
    std::uint64_t fuzz_seed = 0;  ///< 0 disables the schedule fuzzer
    int stall_ms = 1000;          ///< wait length that counts as a stall
  };

  explicit Sentry(const Options& opts);
  ~Sentry() override;

  Sentry(const Sentry&) = delete;
  Sentry& operator=(const Sentry&) = delete;

  // --- thread identity ------------------------------------------------------

  /// Binds the calling thread to force-process slot `slot` (0-based) for
  /// the scope's lifetime. Installed by the driver around each process
  /// body; unregistered threads degrade gracefully (fuzz and stall hooks
  /// only, no race/lockset tracking).
  class ThreadScope {
   public:
    ThreadScope(Sentry& sentry, int slot);
    ~ThreadScope();
    ThreadScope(const ThreadScope&) = delete;
    ThreadScope& operator=(const ThreadScope&) = delete;

   private:
    Sentry* saved_owner_;
    int saved_slot_;
  };

  /// Fork edge: seeds every slot's clock from the root clock. Called by
  /// the driver before the team starts.
  void begin_run();
  /// Join edge: folds every slot's clock back into the root clock.
  void end_run();

  // --- race detector --------------------------------------------------------

  /// Names an address range so race reports can say "counter+8" instead of
  /// a raw pointer. Idempotent per base address.
  void track_range(const void* base, std::size_t bytes, std::string name);

  /// Records a read/write of `addr` by the calling thread at source
  /// position `where`, and checks it against previous accesses.
  void on_access(const void* addr, bool is_write, std::string where);

  /// Publishes the caller's clock into barrier `b` (call before arriving).
  void barrier_publish(const void* b);
  /// Merges barrier `b`'s clock into the caller's and advances the
  /// caller's episode number (call after the barrier releases).
  void barrier_join(const void* b);

  // --- async (Produce/Consume) hooks ---------------------------------------

  /// Marks entry into async variable `chan`'s exclusive window (the
  /// region where the full/empty protocol guarantees mutual exclusion).
  /// Performs the bidirectional clock join that orders successive channel
  /// operations, records the access, and - the full/empty conformance
  /// check - reports if another thread is already inside the window,
  /// which can only happen when a machine's lock or tagged-cell emulation
  /// is broken.
  void channel_enter(const void* chan, bool is_write, const char* op);
  void channel_exit(const void* chan);
  /// Clock join only (Void: no exclusion guarantee to check).
  void channel_sync(const void* chan);

  // --- wait-for registry ----------------------------------------------------

  enum class WaitKind { kLock, kProduce, kConsume, kAskfor };

  /// Registers "this thread is blocked on `resource`" for the scope's
  /// lifetime; the watchdog reports stalls and wait-for cycles from these.
  class WaitScope {
   public:
    WaitScope(Sentry* sentry, WaitKind kind, const void* resource,
              std::string label);
    ~WaitScope();
    WaitScope(const WaitScope&) = delete;
    WaitScope& operator=(const WaitScope&) = delete;

   private:
    Sentry* sentry_;
    std::uint64_t token_ = 0;
  };

  // --- LockObserver ---------------------------------------------------------

  std::uint64_t on_acquire_begin(const machdep::ObservedLock& lock) override;
  void on_acquired(const machdep::ObservedLock& lock,
                   std::uint64_t wait_token) override;
  void on_released(const machdep::ObservedLock& lock) override;

  // --- schedule fuzzer ------------------------------------------------------

  /// Maybe yields or backoff-spins, deterministically from the seed and
  /// the caller's slot. No-op when fuzzing is off.
  void fuzz();

  [[nodiscard]] bool fuzzing() const { return fuzz_seed_ != 0; }

  // --- reports --------------------------------------------------------------

  [[nodiscard]] std::vector<Report> reports() const;
  [[nodiscard]] std::size_t report_count(ReportKind kind) const;
  [[nodiscard]] std::size_t total_reports() const;
  static const char* report_kind_name(ReportKind kind);

 private:
  using Clock = std::vector<std::uint32_t>;

  /// One recorded access for the race check.
  struct Access {
    int slot = -1;
    std::uint32_t clock = 0;      ///< accessor's own clock component
    std::uint64_t episode = 0;    ///< accessor's barrier episode number
    std::vector<const void*> locks;  ///< mutex-role locks held
    std::string where;
  };

  struct VarState {
    Access last_write;
    std::map<int, Access> reads;  ///< live reads since the last write
  };

  struct TrackedRange {
    const void* base;
    std::size_t bytes;
    std::string name;
  };

  struct SlotState {
    Clock vc;
    std::uint64_t episode = 0;
    std::vector<const void*> held;        ///< mutex-role lock ids
    std::vector<std::string> held_labels;  ///< parallel to `held`
    std::uint64_t wait_token = 0;          ///< current wait, 0 if none
  };

  struct WaitRecord {
    int slot = -1;
    WaitKind kind = WaitKind::kLock;
    const void* resource = nullptr;
    std::string label;
    std::chrono::steady_clock::time_point since;
    bool stall_reported = false;
  };

  // All private helpers below require mu_ to be held by the caller.
  void report_locked(ReportKind kind, std::string what);
  void check_access_locked(const VarState& var, const Access& prior,
                           const Access& cur, const std::string& name,
                           bool prior_is_write, bool cur_is_write);
  [[nodiscard]] std::string describe_addr_locked(const void* addr) const;
  [[nodiscard]] bool order_path_locked(const void* from, const void* to,
                                       std::set<const void*>& seen) const;
  std::uint64_t register_wait_locked(WaitKind kind, const void* resource,
                                     std::string label);
  void unregister_wait_locked(std::uint64_t token);
  void scan_for_stalls_locked();
  void scan_for_wait_cycles_locked();
  [[nodiscard]] int calling_slot() const;

  void watchdog_main();

  const int nproc_;
  const std::uint64_t fuzz_seed_;
  const int stall_ms_;

  mutable std::mutex mu_;
  std::vector<SlotState> slots_;
  Clock root_vc_;

  std::map<const void*, VarState> vars_;
  std::map<const void*, TrackedRange> ranges_;  ///< keyed by base address

  /// Barrier clocks grow monotonically (never reset), so a publish from a
  /// late thread of episode N can never race a reset for episode N+1; the
  /// extra ordering this implies is real (episodes order transitively).
  std::map<const void*, Clock> barrier_vc_;

  struct ChannelState {
    Clock vc;
    int in_window = 0;
    int window_slot = -1;
    std::string window_op;
  };
  std::map<const void*, ChannelState> channels_;

  /// Lock-order graph over mutex-role locks: edge A -> B with the label
  /// pair recorded at the first acquisition of B under A.
  std::map<const void*, std::map<const void*, std::string>> order_edges_;
  std::set<std::pair<const void*, const void*>> order_reported_;
  std::map<const void*, std::string> lock_labels_;
  std::map<const void*, int> lock_owner_;  ///< mutex-role holder slot

  std::map<std::uint64_t, WaitRecord> waits_;
  std::uint64_t next_wait_token_ = 1;
  std::set<std::string> deadlock_reported_;

  std::vector<Report> reports_;

  std::condition_variable watchdog_cv_;
  bool shutting_down_ = false;
  std::thread watchdog_;
};

}  // namespace force::core
