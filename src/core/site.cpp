#include "core/site.hpp"

namespace force::core {

// Site is header-only today; this translation unit anchors the type for
// faster incremental builds and hosts the namespacing helper.

/// Joins a context namespace (empty for the root force) with a site key.
std::string namespaced_site_key(const std::string& ns, const Site& site) {
  return ns.empty() ? site.key() : ns + "/" + site.key();
}

}  // namespace force::core
