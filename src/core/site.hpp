// Construct sites: the C++ analogue of the macro-generated shared state.
//
// The Force preprocessor statically generates one set of shared variables
// per construct occurrence (LOOP100 for the selfscheduled loop at label
// 100, BARWIN/BARWOT for its entry gate, ...). In library form the same
// effect is achieved by addressing shared construct state with a *site*:
// the file/line (plus an optional tag) of the construct. All processes of
// the force reach the same source location and therefore agree on which
// shared state to use - the SPMD discipline the Force already imposes.
//
// FORCE_SITE expands to the current source location. Inside a Resolve
// component the site is namespaced by the component so that the same
// source line executed by different subsets gets distinct state.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <typeindex>
#include <unordered_map>

#include "util/check.hpp"

namespace force::core {

/// A static source location identifying one construct occurrence.
struct Site {
  const char* file = "";
  int line = 0;
  const char* tag = "";

  [[nodiscard]] std::string key() const {
    return std::string(file) + ":" + std::to_string(line) +
           (tag[0] ? std::string("#") + tag : std::string());
  }
};

/// Concurrent registry mapping (namespace-prefixed) site keys to shared
/// construct state. First process to reach a site creates the state; the
/// stored type is checked so two constructs cannot collide on one site.
class SiteTable {
 public:
  /// Returns the state for `key`, creating it with `factory` on first use.
  /// Thread-safe; all callers receive the same instance.
  template <typename T>
  T& get_or_create(const std::string& key,
                   const std::function<std::unique_ptr<T>()>& factory) {
    {
      std::shared_lock read(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end()) return checked_cast<T>(key, it->second);
    }
    std::unique_lock write(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      Entry e;
      e.type = std::type_index(typeid(T));
      std::shared_ptr<T> obj(factory().release());
      e.object = obj;
      it = entries_.emplace(key, std::move(e)).first;
    }
    return checked_cast<T>(key, it->second);
  }

  [[nodiscard]] std::size_t size() const {
    std::shared_lock read(mutex_);
    return entries_.size();
  }

  [[nodiscard]] bool contains(const std::string& key) const {
    std::shared_lock read(mutex_);
    return entries_.contains(key);
  }

 private:
  struct Entry {
    std::type_index type = std::type_index(typeid(void));
    std::shared_ptr<void> object;
  };

  template <typename T>
  static T& checked_cast(const std::string& key, const Entry& e) {
    FORCE_CHECK(e.type == std::type_index(typeid(T)),
                "construct site reused with a different construct: " + key);
    return *static_cast<T*>(e.object.get());
  }

  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
};

/// Joins a context namespace (empty for the root force) with a site key;
/// Resolve components use this to keep their construct state disjoint.
std::string namespaced_site_key(const std::string& ns, const Site& site);

}  // namespace force::core

/// The construct-site token for the current source line.
#define FORCE_SITE \
  ::force::core::Site { __FILE__, __LINE__, "" }

/// A tagged site, for several constructs generated from one line (e.g. in
/// a helper function called from multiple places).
#define FORCE_SITE_TAGGED(tag_literal) \
  ::force::core::Site { __FILE__, __LINE__, tag_literal }
