// Parallel algorithm skeletons built purely from Force constructs.
//
// The paper positions the Force as the language its authors used to write
// numerical algorithms; this header is the reproduction's "first things a
// user builds on top": block-parallel prefix scan, odd-even block sort and
// histogramming, written SPMD against Ctx only - no threads, no atomics,
// no machine names - so they run unchanged on every machine model, like
// any other Force program.
//
// All functions are collective: every process of the team must call with
// the same arguments (SPMD discipline), and all return after an implied
// barrier with the full result visible to every process.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <functional>
#include <vector>

#include "core/force.hpp"

namespace force::core {

/// Inclusive prefix scan of `data` in place under `combine` (associative).
/// Blocked three-phase algorithm: per-block sequential scan (prescheduled),
/// block-offset scan by the barrier-section executor, offset application.
template <typename T>
void parallel_inclusive_scan(Ctx& ctx, const Site& site, std::vector<T>& data,
                             const std::function<T(T, T)>& combine) {
  const auto n = static_cast<std::int64_t>(data.size());
  if (n == 0) {
    ctx.barrier();
    return;
  }
  const int np = ctx.np();
  const std::int64_t block = (n + np - 1) / np;

  // Shared scratch: one slot per block for the block totals. This is
  // construct state (like the preprocessor-generated loop variables), so
  // it lives in the site table, not the arena - which also keeps it legal
  // on the link-time (sequent) machine, where run-time arena allocation
  // of new names is an error by design.
  auto& block_totals = ctx.state<std::vector<T>>(
      site, "%scan",
      [np] { return std::make_unique<std::vector<T>>(np); });
  FORCE_CHECK(static_cast<int>(block_totals.size()) == np,
              "scan site reused from a team of a different width");

  // Phase 1: sequential scan inside each block (block b on process b).
  ctx.presched_do(0, np - 1, 1, [&](std::int64_t b) {
    const std::int64_t lo = b * block;
    const std::int64_t hi = std::min<std::int64_t>(n, lo + block);
    for (std::int64_t i = lo + 1; i < hi; ++i) {
      data[static_cast<std::size_t>(i)] =
          combine(data[static_cast<std::size_t>(i - 1)],
                  data[static_cast<std::size_t>(i)]);
    }
    if (lo < hi) {
      block_totals[static_cast<std::size_t>(b)] =
          data[static_cast<std::size_t>(hi - 1)];
    }
  });

  // Phase 2: exclusive scan of the block totals, by the single barrier-
  // section executor (np values: cheap, and faithful to the Force idiom of
  // doing small sequential work in a barrier section).
  ctx.barrier([&] {
    T running = block_totals[0];
    for (int b = 1; b < np; ++b) {
      const T mine = block_totals[static_cast<std::size_t>(b)];
      block_totals[static_cast<std::size_t>(b)] = running;
      running = combine(running, mine);
    }
  });

  // Phase 3: add the preceding blocks' total to every later block.
  ctx.presched_do(1, np - 1, 1, [&](std::int64_t b) {
    const std::int64_t lo = b * block;
    const std::int64_t hi = std::min<std::int64_t>(n, lo + block);
    const T offset = block_totals[static_cast<std::size_t>(b)];
    for (std::int64_t i = lo; i < hi; ++i) {
      data[static_cast<std::size_t>(i)] =
          combine(offset, data[static_cast<std::size_t>(i)]);
    }
  });
  ctx.barrier();
}

/// Sorts `data` ascending by odd-even block transposition: each process
/// sorts its block, then NP merge-split phases alternate over even/odd
/// block pairs with a barrier between phases - the classic SPMD sort for
/// barrier machines.
template <typename T>
void parallel_sort(Ctx& ctx, const Site& site, std::vector<T>& data) {
  (void)site;
  const auto n = static_cast<std::int64_t>(data.size());
  const int np = ctx.np();
  const std::int64_t block = (n + np - 1) / np;
  auto lo_of = [&](int b) {
    return std::min<std::int64_t>(n, static_cast<std::int64_t>(b) * block);
  };
  auto hi_of = [&](int b) { return std::min<std::int64_t>(n, lo_of(b) + block); };

  // Phase 0: each block locally sorted.
  ctx.presched_do(0, np - 1, 1, [&](std::int64_t b) {
    std::sort(data.begin() + lo_of(static_cast<int>(b)),
              data.begin() + hi_of(static_cast<int>(b)));
  });
  ctx.barrier();

  // NP alternating phases; in phase p, block pair (b, b+1) with b of the
  // right parity is merged by one process (the pair's owner).
  for (int phase = 0; phase < np; ++phase) {
    const int parity = phase % 2;
    ctx.presched_do(0, np - 1, 1, [&](std::int64_t b) {
      if (b % 2 != parity || b + 1 >= np) return;
      const auto lo = data.begin() + lo_of(static_cast<int>(b));
      const auto mid = data.begin() + hi_of(static_cast<int>(b));
      const auto hi = data.begin() + hi_of(static_cast<int>(b) + 1);
      std::inplace_merge(lo, mid, hi);
    });
    ctx.barrier();
  }
}

/// Histogram of `data` into `bins` buckets over [lo, hi); out-of-range
/// samples clamp to the edge buckets. Private per-process histograms are
/// merged under a critical section (the Force reduction idiom for vector
/// payloads). Returns the full histogram to every process.
template <typename T>
std::vector<std::int64_t> parallel_histogram(Ctx& ctx, const Site& site,
                                             const std::vector<T>& data,
                                             std::size_t bins, T lo, T hi) {
  FORCE_CHECK(bins > 0 && hi > lo, "bad histogram shape");
  auto& shared_hist = ctx.state<std::vector<std::int64_t>>(
      site, "%hist",
      [bins] { return std::make_unique<std::vector<std::int64_t>>(bins); });
  FORCE_CHECK(shared_hist.size() == bins,
              "histogram site reused with a different bin count");
  ctx.barrier([&] { std::fill(shared_hist.begin(), shared_hist.end(), 0); });

  std::vector<std::int64_t> local(bins, 0);
  ctx.selfsched_do(
      site, 0, static_cast<std::int64_t>(data.size()) - 1, 1,
      [&](std::int64_t i) {
        const double frac =
            static_cast<double>(data[static_cast<std::size_t>(i)] - lo) /
            static_cast<double>(hi - lo);
        auto idx = static_cast<std::ptrdiff_t>(
            frac * static_cast<double>(bins));
        idx = std::clamp<std::ptrdiff_t>(
            idx, 0, static_cast<std::ptrdiff_t>(bins) - 1);
        ++local[static_cast<std::size_t>(idx)];
      },
      /*chunk=*/64);
  ctx.critical(site, [&] {
    for (std::size_t b = 0; b < bins; ++b) shared_hist[b] += local[b];
  });
  ctx.barrier();
  return shared_hist;
}

/// Index of a maximal element (ties broken toward the lowest index),
/// computed with a tournament reduction over (value, index) pairs.
template <typename T>
std::int64_t parallel_argmax(Ctx& ctx, const Site& site,
                             const std::vector<T>& data) {
  FORCE_CHECK(!data.empty(), "argmax of an empty vector");
  struct Best {
    T value{};
    std::int64_t index = -1;
  };
  Best local;
  ctx.presched_do(0, static_cast<std::int64_t>(data.size()) - 1, 1,
                  [&](std::int64_t i) {
    const T& v = data[static_cast<std::size_t>(i)];
    if (local.index < 0 || v > local.value ||
        (v == local.value && i < local.index)) {
      local = {v, i};
    }
  });
  // Processes with an empty share contribute a sentinel that always loses.
  const Best reduced = ctx.reduce<Best>(
      site, local, [](Best a, Best b) {
        if (a.index < 0) return b;
        if (b.index < 0) return a;
        if (a.value != b.value) return a.value > b.value ? a : b;
        return a.index < b.index ? a : b;
      },
      ReduceStrategy::kTournament);
  return reduced.index;
}

}  // namespace force::core
