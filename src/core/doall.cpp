#include "core/doall.hpp"

#include "core/env.hpp"
#include "core/sentry.hpp"
#include "util/check.hpp"
#include "util/timing.hpp"
#include "util/trace.hpp"

namespace force::core {

std::int64_t loop_trip_count(std::int64_t start, std::int64_t last,
                             std::int64_t incr) {
  FORCE_CHECK(incr != 0, "DO loop increment must be nonzero");
  if (incr > 0) {
    if (start > last) return 0;
    return (last - start) / incr + 1;
  }
  if (start < last) return 0;
  return (start - last) / (-incr) + 1;
}

void presched_do(int me0, int np, std::int64_t start, std::int64_t last,
                 std::int64_t incr,
                 const std::function<void(std::int64_t)>& body) {
  FORCE_CHECK(np > 0 && me0 >= 0 && me0 < np, "bad presched process id");
  const std::int64_t trips = loop_trip_count(start, last, incr);
  // Cyclic deal: process me0 takes trips me0, me0+np, me0+2np, ...
  for (std::int64_t t = me0; t < trips; t += np) {
    body(start + t * incr);
  }
}

void presched_do2(int me0, int np, std::int64_t i_start, std::int64_t i_last,
                  std::int64_t i_incr, std::int64_t j_start,
                  std::int64_t j_last, std::int64_t j_incr,
                  const std::function<void(std::int64_t, std::int64_t)>& body) {
  FORCE_CHECK(np > 0 && me0 >= 0 && me0 < np, "bad presched process id");
  const std::int64_t i_trips = loop_trip_count(i_start, i_last, i_incr);
  const std::int64_t j_trips = loop_trip_count(j_start, j_last, j_incr);
  const std::int64_t total = i_trips * j_trips;
  for (std::int64_t t = me0; t < total; t += np) {
    const std::int64_t i_idx = t / j_trips;
    const std::int64_t j_idx = t % j_trips;
    body(i_start + i_idx * i_incr, j_start + j_idx * j_incr);
  }
}

// ---------------------------------------------------------------------------
// SelfschedLoop - the paper's macro expansion, object-ified.
//
//   entry:  lock(BARWIN); if first arriver, initialize the dispatch
//           counter; report arrival; the LAST arriver unlocks BARWOT
//           (exits may now drain), every other arriver unlocks BARWIN
//           (the next process may enter).
//   body:   claim trips from the DispatchCounter - one fetch-add on
//           hardware-RMW machines, one generic-lock pass (the paper's
//           lock(LOOP); K = K_shared; K_shared = K + INCR; unlock(LOOP))
//           on lock-only machines. If the claim is nonempty, execute and
//           repeat; otherwise fall through.
//   exit:   lock(BARWOT); report departure; the LAST process out unlocks
//           BARWIN (the loop may be re-entered), every other unlocks
//           BARWOT. There is deliberately NO exit barrier: a process
//           leaves as soon as it draws an exhausted claim.
// ---------------------------------------------------------------------------

SelfschedLoop::SelfschedLoop(ForceEnvironment& env, int width,
                             const std::string& key)
    : env_(env), width_(width) {
  FORCE_CHECK(width_ > 0, "selfsched loop width must be positive");
  // The barwin/barwot labels are per-construct-kind, not per-site, so they
  // cannot key cross-process state. Separate-process backends key the
  // whole episode by the construct's site key instead.
  site_ = env.backend().make_doall_site(key.empty() ? "anon" : key, width_);
  if (site_ != nullptr) return;
  barwin_ = env.new_lock(machdep::LockRole::kSemaphore, "doall.barwin");
  barwot_ = env.new_lock(machdep::LockRole::kSemaphore, "doall.barwot");
  dispatch_ = env.new_dispatch_counter();
  barwot_->acquire();  // exits blocked until all have entered the episode
}

bool SelfschedLoop::enter_episode(std::int64_t start, std::int64_t last,
                                  std::int64_t incr) {
  if (site_ != nullptr) {
    // Champion episode barrier, across address spaces: the last arriver
    // publishes the bounds and re-arms the dispatch while every other
    // process is provably parked on the episode entry, then releases
    // them. No process can be inside the claim loop of the *previous*
    // episode at that moment, because it would not have arrived here yet -
    // so there is still no exit barrier, exactly as in the thread
    // expansion.
    const machdep::DoallBounds b =
        site_->enter(start, last, incr, loop_trip_count(start, last, incr));
    start_ = b.start;
    last_ = b.last;
    incr_ = b.incr;
    trips_ = b.trips;
    return last == last_ && incr == incr_;
  }
  bool ok = true;
  barwin_->acquire();
  if (zznbar_ == 0) {
    start_ = start;
    last_ = last;
    incr_ = incr;
    trips_ = loop_trip_count(start, last, incr);
    // Gate-guarded single-writer reset; the BARWIN release publishes it.
    dispatch_->reset(0);
  } else {
    // SPMD discipline: every process must reach this site with the same
    // bounds. A divergent call would silently corrupt the distribution on
    // a real Force; here it is detected - but the arrival must still be
    // counted and the gates released, or the compliant processes would be
    // wedged in the exit protocol forever.
    ok = (last == last_ && incr == incr_);
  }
  ++zznbar_;
  if (zznbar_ == width_) {
    barwot_->release();
  } else {
    barwin_->release();
  }
  return ok;
}

void SelfschedLoop::leave_episode() {
  // Re-entry fenced by the engine's entry barrier on keyed backends.
  if (site_ != nullptr) return;
  barwot_->acquire();
  --zznbar_;
  if (zznbar_ == 0) {
    barwin_->release();
  } else {
    barwot_->release();
  }
}

void SelfschedLoop::run(int me0, std::int64_t start, std::int64_t last,
                        std::int64_t incr,
                        const std::function<void(std::int64_t)>& body,
                        std::int64_t chunk) {
  FORCE_CHECK(me0 >= 0 && me0 < width_, "bad selfsched process id");
  FORCE_CHECK(chunk >= 1, "chunk must be >= 1");
  const bool spmd_ok = enter_episode(start, last, incr);
  // Departure must be reported even if the body throws, or the loop could
  // never be re-entered by the remaining processes.
  struct Departure {
    SelfschedLoop* loop;
    ~Departure() { loop->leave_episode(); }
  } departure{this};
  FORCE_CHECK(spmd_ok, "selfsched DO reached with divergent loop bounds");
  util::Tracer* tracer = env_.tracer();
  const std::int64_t trace_begin = tracer ? util::now_ns() : 0;
  // Stats are tallied per process and flushed once per episode: two shared
  // fetch-adds per *claim* would serialize the processes on the stats
  // cache lines and swamp the lock-free dispatch itself. Flushed from the
  // departure guard so a throwing body still reports its progress.
  struct EpisodeStats {
    RuntimeStats& stats;
    std::uint64_t dispatches = 0;
    std::uint64_t iterations = 0;
    ~EpisodeStats() {
      stats.doall_dispatches.fetch_add(dispatches, std::memory_order_relaxed);
      stats.doall_iterations.fetch_add(iterations, std::memory_order_relaxed);
    }
  } tally{env_.stats()};
  // Bounds are episode-stable (SPMD-checked above), so the hot loop works
  // from the call arguments; trips_ was fixed by the first arriver.
  const std::int64_t trips = trips_;
  Sentry* sentry = env_.sentry();
  for (;;) {
    // The lock-free claim has no lock hook, so the fuzzer perturbs here.
    if (sentry != nullptr) sentry->fuzz();
    const machdep::DispatchClaim c = site_ != nullptr
                                         ? site_->claim(chunk, trips)
                                         : dispatch_->claim(chunk, trips);
    ++tally.dispatches;
    if (tracer) {
      tracer->instant(me0, util::TraceKind::kLoopDispatch,
                      start + c.begin * incr);
    }
    if (c.count == 0) break;
    for (std::int64_t t = c.begin; t < c.begin + c.count; ++t) {
      body(start + t * incr);
      ++tally.iterations;
    }
  }
  if (tracer) {
    tracer->record(me0, util::TraceKind::kLoopRun, trace_begin,
                   util::now_ns());
  }
}

void SelfschedLoop::run_guided(int me0, std::int64_t start, std::int64_t last,
                               std::int64_t incr,
                               const std::function<void(std::int64_t)>& body) {
  FORCE_CHECK(me0 >= 0 && me0 < width_, "bad selfsched process id");
  const bool spmd_ok = enter_episode(start, last, incr);
  struct Departure {
    SelfschedLoop* loop;
    ~Departure() { loop->leave_episode(); }
  } departure{this};
  FORCE_CHECK(spmd_ok, "selfsched DO reached with divergent loop bounds");
  util::Tracer* tracer = env_.tracer();
  const std::int64_t trace_begin = tracer ? util::now_ns() : 0;
  // Per-process tally, flushed once per episode (see run()).
  struct EpisodeStats {
    RuntimeStats& stats;
    std::uint64_t dispatches = 0;
    std::uint64_t iterations = 0;
    ~EpisodeStats() {
      stats.doall_dispatches.fetch_add(dispatches, std::memory_order_relaxed);
      stats.doall_iterations.fetch_add(iterations, std::memory_order_relaxed);
    }
  } tally{env_.stats()};
  const std::int64_t trips = trips_;
  Sentry* sentry = env_.sentry();
  for (;;) {
    if (sentry != nullptr) sentry->fuzz();
    // Guided selfscheduling: claim a fraction of the remaining trips so
    // early claims are big (low dispatch overhead) and late claims small
    // (good load balance at the tail). On the lock-free engine this is a
    // CAS loop on the remaining-trips value.
    const machdep::DispatchClaim c =
        site_ != nullptr ? site_->claim_fraction(trips, 2 * width_)
                         : dispatch_->claim_fraction(trips, 2 * width_);
    ++tally.dispatches;
    if (tracer) {
      tracer->instant(me0, util::TraceKind::kLoopDispatch,
                      start + c.begin * incr);
    }
    if (c.count == 0) break;
    for (std::int64_t t = c.begin; t < c.begin + c.count; ++t) {
      body(start + t * incr);
      ++tally.iterations;
    }
  }
  if (tracer) {
    tracer->record(me0, util::TraceKind::kLoopRun, trace_begin,
                   util::now_ns());
  }
}

Selfsched2Loop::Selfsched2Loop(ForceEnvironment& env, int width,
                               const std::string& key)
    : flat_(env, width, key) {}

void Selfsched2Loop::run(
    int me0, std::int64_t i_start, std::int64_t i_last, std::int64_t i_incr,
    std::int64_t j_start, std::int64_t j_last, std::int64_t j_incr,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    std::int64_t chunk) {
  const std::int64_t i_trips = loop_trip_count(i_start, i_last, i_incr);
  const std::int64_t j_trips = loop_trip_count(j_start, j_last, j_incr);
  const std::int64_t total = i_trips * j_trips;
  // Dispatch over the flattened pair space; the body unflattens.
  flat_.run(
      me0, 0, total - 1, 1,
      [&](std::int64_t t) {
        const std::int64_t i_idx = t / j_trips;
        const std::int64_t j_idx = t % j_trips;
        body(i_start + i_idx * i_incr, j_start + j_idx * j_incr);
      },
      chunk);
}

}  // namespace force::core
