#include "core/env.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/barrier.hpp"
#include "core/sentry.hpp"
#include "util/check.hpp"

namespace force::core {

namespace {

// Environment-variable fallbacks let the whole existing test suite run
// under validation (FORCE_SENTRY=1 ctest ...) without touching each test.
// Explicit ForceConfig settings win; the variables only ever turn things on.
std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

void apply_env_overrides(ForceConfig& config, machdep::ProcessModel model) {
  if (!config.sentry && env_u64("FORCE_SENTRY", 0) != 0) config.sentry = true;
  if (config.schedule_fuzz == 0) {
    config.schedule_fuzz = env_u64("FORCE_SCHEDULE_FUZZ", 0);
  }
  if (config.schedule_fuzz != 0) config.sentry = true;
  const std::uint64_t stall = env_u64("FORCE_SENTRY_STALL_MS", 0);
  if (stall != 0) config.sentry_stall_ms = static_cast<int>(stall);
  if (!config.team_pool && env_u64("FORCE_TEAM_POOL", 0) != 0) {
    config.team_pool = true;
  }
  if (config.pool_workers == 0) {
    config.pool_workers =
        static_cast<int>(env_u64("FORCE_POOL_WORKERS", 0));
    // Env-var-driven N:M is dropped where the capability table says it
    // cannot work (os-fork and cluster fork one child per member), so
    // suite-wide pooled runs don't break the fork tests. Explicit configs
    // are validated in the constructor.
    if (!machdep::backend_supports(model,
                                   machdep::Capability::kNmScheduling)) {
      config.pool_workers = 0;
    }
  }
  if (config.pool_workers > 0) config.team_pool = true;
  if (config.cluster_transport == "unix") {
    const char* t = std::getenv("FORCE_CLUSTER_TRANSPORT");
    if (t != nullptr && *t != '\0') config.cluster_transport = t;
  }
}

}  // namespace

void RuntimeStats::reset() {
  barrier_episodes.store(0, std::memory_order_relaxed);
  critical_entries.store(0, std::memory_order_relaxed);
  doall_iterations.store(0, std::memory_order_relaxed);
  doall_dispatches.store(0, std::memory_order_relaxed);
  produces.store(0, std::memory_order_relaxed);
  consumes.store(0, std::memory_order_relaxed);
  askfor_grants.store(0, std::memory_order_relaxed);
  pcase_blocks.store(0, std::memory_order_relaxed);
}

void ForceEnvironment::require(machdep::Capability cap,
                               const std::string& construct,
                               const std::string& site) const {
  FORCE_CHECK(machdep::backend_supports(model_, cap),
              machdep::capability_reject_message(model_, cap, construct,
                                                 site));
}

ForceEnvironment::ForceEnvironment(ForceConfig config)
    : config_(std::move(config)) {
  FORCE_CHECK(config_.nproc > 0, "ForceConfig::nproc must be positive");
  FORCE_CHECK(config_.dispatch == "auto" || config_.dispatch == "locked",
              "ForceConfig::dispatch must be 'auto' or 'locked'");
  FORCE_CHECK(machdep::parse_process_model(config_.process_model, &model_),
              "ForceConfig::process_model '" + config_.process_model +
                  "' is not recognized; valid values: " +
                  machdep::process_model_valid_set());
  FORCE_CHECK(config_.cluster_transport == "unix" ||
                  config_.cluster_transport == "tcp",
              "ForceConfig::cluster_transport must be 'unix' or 'tcp'");
  FORCE_CHECK(config_.pool_workers >= 0,
              "ForceConfig::pool_workers must be non-negative");
  if (config_.pool_workers > 0) {
    config_.team_pool = true;
    require(machdep::Capability::kNmScheduling, "N:M member scheduling", "");
    // Two members multiplexed on one OS thread defeat the sentry's
    // per-thread bookkeeping (ThreadScope, vector clocks, locksets).
    // Explicit configs are an error; the FORCE_SENTRY family is dropped
    // below, as for os-fork.
    FORCE_CHECK(!config_.sentry && config_.schedule_fuzz == 0,
                "the sentry cannot observe N:M pooled members (two members "
                "share one OS thread); validate with a 1:1 team");
  }
  if (config_.sentry || config_.schedule_fuzz != 0) {
    // The sentry keeps its state in ordinary (per-address-space) memory,
    // so it cannot see an os-fork or cluster team. Explicitly asking for
    // it is a configuration error; the FORCE_SENTRY family of environment
    // variables is dropped below instead, so suite-wide validation runs do
    // not break the fork/cluster tests.
    require(machdep::Capability::kSentry, "the runtime sentry", "");
  }
  if (config_.trace) {
    require(machdep::Capability::kTrace, "event tracing", "");
  }
  if (config_.team_pool) {
    require(machdep::Capability::kTeamPool, "persistent team pools", "");
  }
  const machdep::MachineSpec& spec = machdep::machine_spec(config_.machine);
  machine_ = std::make_unique<machdep::MachineModel>(spec);
  arena_ = std::make_unique<machdep::SharedArena>(
      config_.arena_bytes, spec.page_size, spec.sharing,
      model_ == machdep::ProcessModel::kOsFork
          ? machdep::ArenaBacking::kSharedMapping
          : machdep::ArenaBacking::kPrivateHeap);
  private_ = std::make_unique<machdep::PrivateSpace>(
      config_.private_data_bytes, config_.private_stack_bytes);
  if (config_.trace) {
    tracer_ = std::make_unique<util::Tracer>(
        config_.nproc, config_.trace_events_per_process);
  }
  apply_env_overrides(config_, model_);
  if (!supports(machdep::Capability::kSentry) && config_.sentry) {
    config_.sentry = false;  // env-var-driven; see the note above
    config_.schedule_fuzz = 0;
  }
  if (!supports(machdep::Capability::kTeamPool) && config_.team_pool) {
    config_.team_pool = false;  // env-var-driven (FORCE_TEAM_POOL); see above
    config_.pool_workers = 0;
  }
  if (config_.pool_workers > 0 && config_.sentry) {
    config_.sentry = false;  // env-var-driven; see the N:M note above
    config_.schedule_fuzz = 0;
  }
  if (config_.sentry) {
    Sentry::Options opts;
    opts.nproc = config_.nproc;
    opts.fuzz_seed = config_.schedule_fuzz;
    opts.stall_ms = config_.sentry_stall_ms;
    sentry_ = std::make_unique<Sentry>(opts);
  }
  machdep::BackendInit init;
  init.machine = machine_.get();
  init.arena = arena_.get();
  init.team_pool = config_.team_pool;
  init.pool_workers = pool_workers();
  init.member_stack_bytes = config_.private_stack_bytes;
  init.cluster_transport = config_.cluster_transport;
  backend_ = machdep::make_execution_backend(model_, init);
  // Resident pooled children observe force-entry generations through the
  // backend's shared word (os-fork); their own copies of this object
  // freeze at fork. Null means the per-process counter below suffices.
  run_gen_shm_ = backend_->shared_run_generation_word();
  // Last: the barrier's locks may be ObservedLocks referencing sentry_.
  std::unique_ptr<machdep::BarrierEngine> global_engine =
      backend_->make_team_barrier(config_.nproc, "%force/global");
  global_barrier_ =
      global_engine != nullptr
          ? std::make_unique<EngineBarrier>(config_.nproc,
                                            std::move(global_engine))
          : make_barrier(config_.nproc);
}

// Out of line so BarrierAlgorithm/Sentry can stay incomplete in the header.
ForceEnvironment::~ForceEnvironment() {
  // Surface validation findings even when the program never asked: a
  // sentry run that found something should not exit looking clean.
  if (sentry_ != nullptr && sentry_->total_reports() > 0) {
    std::fprintf(stderr, "[force.sentry] %zu finding(s) this run:\n",
                 sentry_->total_reports());
    for (const Sentry::Report& r : sentry_->reports()) {
      std::fprintf(stderr, "[force.sentry]   [%s] %s\n",
                   Sentry::report_kind_name(r.kind), r.what.c_str());
    }
  }
}

std::unique_ptr<machdep::BasicLock> ForceEnvironment::new_lock(
    machdep::LockRole role, std::string label) {
  return backend_->new_lock(role, label, sentry_.get());
}

machdep::TeamPool& ForceEnvironment::team_pool() {
  return backend_->team_pool();
}

machdep::ForkTeamPool& ForceEnvironment::fork_pool(int nproc) {
  return backend_->fork_pool(nproc);
}

void ForceEnvironment::reset_shared_sync_after_death() {
  backend_->reset_shared_sync_after_death();
}

std::uint32_t ForceEnvironment::run_generation() const {
  if (run_gen_shm_ != nullptr) {
    return run_gen_shm_->load(std::memory_order_acquire);
  }
  return run_generation_.load(std::memory_order_acquire);
}

void ForceEnvironment::begin_team_entry() {
  if (run_gen_shm_ != nullptr) {
    run_gen_shm_->fetch_add(1, std::memory_order_acq_rel);
    return;
  }
  run_generation_.fetch_add(1, std::memory_order_acq_rel);
}

machdep::ProcessTeam ForceEnvironment::process_team() const {
  return backend_->process_team();
}

BarrierAlgorithm& ForceEnvironment::global_barrier() {
  return *global_barrier_;
}

std::unique_ptr<BarrierAlgorithm> ForceEnvironment::make_barrier(int width) {
  return make_barrier(width, config_.barrier_algorithm);
}

std::unique_ptr<BarrierAlgorithm> ForceEnvironment::make_barrier(
    int width, const std::string& algorithm) {
  require(machdep::Capability::kThreadBarrierAlgorithms,
          "thread barrier algorithms", "");
  return make_barrier_algorithm(algorithm, *this, width);
}

std::unique_ptr<BarrierAlgorithm> ForceEnvironment::make_process_shared_barrier(
    int width, const std::string& shm_key) {
  std::unique_ptr<machdep::BarrierEngine> engine =
      backend_->make_team_barrier(width, shm_key);
  FORCE_CHECK(engine != nullptr,
              "process-shared barrier needs a separate-process backend "
              "(ForceConfig::process_model = \"os-fork\" or \"cluster\")");
  return std::make_unique<EngineBarrier>(width, std::move(engine));
}

util::Xoshiro256 ForceEnvironment::rng_for(int proc0) const {
  util::Xoshiro256 base(config_.seed);
  return base.substream(static_cast<unsigned>(proc0) + 1);
}

}  // namespace force::core
