#include "core/env.hpp"

#include "core/barrier.hpp"
#include "util/check.hpp"

namespace force::core {

void RuntimeStats::reset() {
  barrier_episodes.store(0, std::memory_order_relaxed);
  critical_entries.store(0, std::memory_order_relaxed);
  doall_iterations.store(0, std::memory_order_relaxed);
  doall_dispatches.store(0, std::memory_order_relaxed);
  produces.store(0, std::memory_order_relaxed);
  consumes.store(0, std::memory_order_relaxed);
  askfor_grants.store(0, std::memory_order_relaxed);
  pcase_blocks.store(0, std::memory_order_relaxed);
}

ForceEnvironment::ForceEnvironment(ForceConfig config)
    : config_(std::move(config)) {
  FORCE_CHECK(config_.nproc > 0, "ForceConfig::nproc must be positive");
  FORCE_CHECK(config_.dispatch == "auto" || config_.dispatch == "locked",
              "ForceConfig::dispatch must be 'auto' or 'locked'");
  const machdep::MachineSpec& spec = machdep::machine_spec(config_.machine);
  machine_ = std::make_unique<machdep::MachineModel>(spec);
  arena_ = std::make_unique<machdep::SharedArena>(
      config_.arena_bytes, spec.page_size, spec.sharing);
  private_ = std::make_unique<machdep::PrivateSpace>(
      config_.private_data_bytes, config_.private_stack_bytes);
  if (config_.trace) {
    tracer_ = std::make_unique<util::Tracer>(
        config_.nproc, config_.trace_events_per_process);
  }
  global_barrier_ = make_barrier(config_.nproc);
}

// Out of line so BarrierAlgorithm can stay incomplete in the header.
ForceEnvironment::~ForceEnvironment() = default;

BarrierAlgorithm& ForceEnvironment::global_barrier() {
  return *global_barrier_;
}

std::unique_ptr<BarrierAlgorithm> ForceEnvironment::make_barrier(int width) {
  return make_barrier(width, config_.barrier_algorithm);
}

std::unique_ptr<BarrierAlgorithm> ForceEnvironment::make_barrier(
    int width, const std::string& algorithm) {
  return make_barrier_algorithm(algorithm, *this, width);
}

util::Xoshiro256 ForceEnvironment::rng_for(int proc0) const {
  util::Xoshiro256 base(config_.seed);
  return base.substream(static_cast<unsigned>(proc0) + 1);
}

}  // namespace force::core
