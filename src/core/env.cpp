#include "core/env.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/barrier.hpp"
#include "core/sentry.hpp"
#include "machdep/cluster.hpp"
#include "machdep/shm.hpp"
#include "machdep/teampool.hpp"
#include "util/check.hpp"

namespace force::core {

namespace {

// Environment-variable fallbacks let the whole existing test suite run
// under validation (FORCE_SENTRY=1 ctest ...) without touching each test.
// Explicit ForceConfig settings win; the variables only ever turn things on.
std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

void apply_env_overrides(ForceConfig& config) {
  if (!config.sentry && env_u64("FORCE_SENTRY", 0) != 0) config.sentry = true;
  if (config.schedule_fuzz == 0) {
    config.schedule_fuzz = env_u64("FORCE_SCHEDULE_FUZZ", 0);
  }
  if (config.schedule_fuzz != 0) config.sentry = true;
  const std::uint64_t stall = env_u64("FORCE_SENTRY_STALL_MS", 0);
  if (stall != 0) config.sentry_stall_ms = static_cast<int>(stall);
  if (!config.team_pool && env_u64("FORCE_TEAM_POOL", 0) != 0) {
    config.team_pool = true;
  }
  if (config.pool_workers == 0) {
    config.pool_workers =
        static_cast<int>(env_u64("FORCE_POOL_WORKERS", 0));
    // Env-var-driven N:M is dropped where it cannot work (os-fork and
    // cluster fork one child per member), so suite-wide pooled runs don't
    // break the fork tests. Explicit configs are validated in the
    // constructor.
    if (config.process_model == "os-fork" ||
        config.process_model == "cluster") {
      config.pool_workers = 0;
    }
  }
  if (config.pool_workers > 0) config.team_pool = true;
  if (config.cluster_transport == "unix") {
    const char* t = std::getenv("FORCE_CLUSTER_TRANSPORT");
    if (t != nullptr && *t != '\0') config.cluster_transport = t;
  }
}

}  // namespace

void RuntimeStats::reset() {
  barrier_episodes.store(0, std::memory_order_relaxed);
  critical_entries.store(0, std::memory_order_relaxed);
  doall_iterations.store(0, std::memory_order_relaxed);
  doall_dispatches.store(0, std::memory_order_relaxed);
  produces.store(0, std::memory_order_relaxed);
  consumes.store(0, std::memory_order_relaxed);
  askfor_grants.store(0, std::memory_order_relaxed);
  pcase_blocks.store(0, std::memory_order_relaxed);
}

ForceEnvironment::ForceEnvironment(ForceConfig config)
    : config_(std::move(config)) {
  FORCE_CHECK(config_.nproc > 0, "ForceConfig::nproc must be positive");
  FORCE_CHECK(config_.dispatch == "auto" || config_.dispatch == "locked",
              "ForceConfig::dispatch must be 'auto' or 'locked'");
  FORCE_CHECK(config_.process_model == "machine" ||
                  config_.process_model == "os-fork" ||
                  config_.process_model == "cluster",
              "ForceConfig::process_model must be 'machine', 'os-fork' or "
              "'cluster'");
  fork_backend_ = config_.process_model == "os-fork";
  cluster_backend_ = config_.process_model == "cluster";
  FORCE_CHECK(config_.cluster_transport == "unix" ||
                  config_.cluster_transport == "tcp",
              "ForceConfig::cluster_transport must be 'unix' or 'tcp'");
  FORCE_CHECK(config_.pool_workers >= 0,
              "ForceConfig::pool_workers must be non-negative");
  if (config_.pool_workers > 0) {
    config_.team_pool = true;
    FORCE_CHECK(!fork_backend_ && !cluster_backend_,
                "N:M member scheduling is thread-only; the os-fork pool "
                "keeps one resident child per member and the cluster "
                "backend forks one peer per member");
    // Two members multiplexed on one OS thread defeat the sentry's
    // per-thread bookkeeping (ThreadScope, vector clocks, locksets).
    // Explicit configs are an error; the FORCE_SENTRY family is dropped
    // below, as for os-fork.
    FORCE_CHECK(!config_.sentry && config_.schedule_fuzz == 0,
                "the sentry cannot observe N:M pooled members (two members "
                "share one OS thread); validate with a 1:1 team");
  }
  if (fork_backend_ || cluster_backend_) {
    // These observers keep their state in ordinary (per-address-space)
    // memory, so they cannot see an os-fork or cluster team. Explicitly
    // asking for them is a configuration error; the FORCE_SENTRY family
    // of environment variables is dropped below instead, so suite-wide
    // validation runs do not break the fork/cluster tests.
    FORCE_CHECK(!config_.sentry && config_.schedule_fuzz == 0,
                "the sentry cannot observe a separate-address-space team "
                "(its state is per-process); validate on a thread-emulated "
                "process model");
    FORCE_CHECK(!config_.trace,
                "tracing is per-address-space; the os-fork and cluster "
                "backends cannot collect child events");
  }
  if (cluster_backend_) {
    FORCE_CHECK(!config_.team_pool,
                "persistent team pools are not supported under the cluster "
                "backend (each run forks a fresh socket-connected team)");
  }
  const machdep::MachineSpec& spec = machdep::machine_spec(config_.machine);
  machine_ = std::make_unique<machdep::MachineModel>(spec);
  arena_ = std::make_unique<machdep::SharedArena>(
      config_.arena_bytes, spec.page_size, spec.sharing,
      fork_backend_ ? machdep::ArenaBacking::kSharedMapping
                    : machdep::ArenaBacking::kPrivateHeap);
  private_ = std::make_unique<machdep::PrivateSpace>(
      config_.private_data_bytes, config_.private_stack_bytes);
  if (config_.trace) {
    tracer_ = std::make_unique<util::Tracer>(
        config_.nproc, config_.trace_events_per_process);
  }
  if (fork_backend_) {
    // Resident pooled children observe force-entry generations through
    // this arena word; their own copies of this object freeze at fork.
    run_gen_shm_ =
        &arena_->get_or_create<std::atomic<std::uint32_t>>("%force/run_gen");
  }
  apply_env_overrides(config_);
  if ((fork_backend_ || cluster_backend_) && config_.sentry) {
    config_.sentry = false;  // env-var-driven; see the note above
    config_.schedule_fuzz = 0;
  }
  if (cluster_backend_ && config_.team_pool) {
    config_.team_pool = false;  // env-var-driven (FORCE_TEAM_POOL); see above
    config_.pool_workers = 0;
  }
  if (config_.pool_workers > 0 && config_.sentry) {
    config_.sentry = false;  // env-var-driven; see the N:M note above
    config_.schedule_fuzz = 0;
  }
  if (config_.sentry) {
    Sentry::Options opts;
    opts.nproc = config_.nproc;
    opts.fuzz_seed = config_.schedule_fuzz;
    opts.stall_ms = config_.sentry_stall_ms;
    sentry_ = std::make_unique<Sentry>(opts);
  }
  // Last: the barrier's locks may be ObservedLocks referencing sentry_.
  global_barrier_ =
      fork_backend_ || cluster_backend_
          ? make_process_shared_barrier(config_.nproc, "%force/global")
          : make_barrier(config_.nproc);
}

// Out of line so BarrierAlgorithm/Sentry can stay incomplete in the header.
ForceEnvironment::~ForceEnvironment() {
  // Surface validation findings even when the program never asked: a
  // sentry run that found something should not exit looking clean.
  if (sentry_ != nullptr && sentry_->total_reports() > 0) {
    std::fprintf(stderr, "[force.sentry] %zu finding(s) this run:\n",
                 sentry_->total_reports());
    for (const Sentry::Report& r : sentry_->reports()) {
      std::fprintf(stderr, "[force.sentry]   [%s] %s\n",
                   Sentry::report_kind_name(r.kind), r.what.c_str());
    }
  }
}

std::unique_ptr<machdep::BasicLock> ForceEnvironment::new_lock(
    machdep::LockRole role, std::string label) {
  if (cluster_backend_) {
    // One keyed lock cell on the coordinator. Same label discipline as
    // the fork branch below: construct-unique labels mean every member
    // contends on the same coordinator cell.
    return std::make_unique<machdep::cluster::ClusterLock>(std::move(label));
  }
  if (fork_backend_) {
    // One futex word in the MAP_SHARED arena, keyed by the construct
    // label. Labels are construct-unique here (critical sections embed
    // their site key, named locks their name), so every process that
    // reaches the same construct contends on the same word.
    auto* state = &arena_->get_or_create<machdep::shm::ShmLockState>(
        "%lock/" + label);
    return std::make_unique<machdep::shm::ShmLock>(state, std::move(label));
  }
  std::unique_ptr<machdep::BasicLock> inner = machine_->new_lock();
  if (sentry_ == nullptr) return inner;
  return std::make_unique<machdep::ObservedLock>(std::move(inner),
                                                 sentry_.get(), role,
                                                 std::move(label));
}

machdep::TeamPool& ForceEnvironment::team_pool() {
  FORCE_CHECK(!fork_backend_,
              "the thread team pool cannot drive os-fork processes");
  if (team_pool_ == nullptr) {
    team_pool_ = std::make_unique<machdep::TeamPool>(
        pool_workers(), config_.private_stack_bytes);
  }
  return *team_pool_;
}

machdep::ForkTeamPool& ForceEnvironment::fork_pool(int nproc) {
  FORCE_CHECK(fork_backend_,
              "the fork team pool needs process_model = \"os-fork\"");
  if (fork_pool_ != nullptr && fork_pool_->nproc() != nproc) {
    fork_pool_->shutdown();
    fork_pool_.reset();
  }
  if (fork_pool_ == nullptr) {
    fork_pool_ = std::make_unique<machdep::ForkTeamPool>(nproc);
  }
  return *fork_pool_;
}

void ForceEnvironment::reset_shared_sync_after_death() {
  FORCE_CHECK(fork_backend_,
              "sync-state death recovery is an os-fork concern");
  namespace shm = machdep::shm;
  arena_->for_each_allocation([](const std::string& name, void* addr,
                                 std::size_t) {
    const auto prefixed = [&name](const char* p) {
      return name.rfind(p, 0) == 0;
    };
    if (name == "%force/global") {
      // Arrival count of the global barrier: the victims' arrivals can
      // never complete. The episode word stays monotonic (arrivals read
      // it fresh), so zeroing the count alone re-arms the episode.
      static_cast<shm::ShmBarrierState*>(addr)->count.store(
          0, std::memory_order_release);
    } else if (prefixed("%lock/")) {
      static_cast<shm::ShmLockState*>(addr)->word.store(
          0, std::memory_order_release);
    } else if (prefixed("%ssdo/")) {
      // The dispatch counter is re-armed by the entry champion anyway;
      // only the entry barrier carries dead arrivals.
      static_cast<shm::ShmSelfschedState*>(addr)->entry.count.store(
          0, std::memory_order_release);
    } else if (prefixed("%askfor/")) {
      auto* a = static_cast<shm::ShmAskforState*>(addr);
      a->monitor.word.store(0, std::memory_order_release);
      a->head = 0;
      a->tail = 0;
      a->working = 0;
      a->ended = 0;
      // Back to "never armed": the next entry's first operation runs the
      // full generation re-arm.
      a->seen_gen.store(0, std::memory_order_release);
    } else if (prefixed("%async/")) {
      // Busy means a victim died inside the payload window and the bytes
      // are undefined: drop to empty. Full cells are user data and stay.
      auto* c = static_cast<shm::ShmCellState*>(addr);
      std::uint32_t busy = 2;
      c->state.compare_exchange_strong(busy, 0, std::memory_order_acq_rel);
    } else if (prefixed("%reduce/")) {
      auto* h = static_cast<shm::ShmReduceHeader*>(addr);
      h->lock.word.store(0, std::memory_order_release);
      h->barrier.count.store(0, std::memory_order_release);
      h->arrived = 0;
    }
  });
}

std::uint32_t ForceEnvironment::run_generation() const {
  if (run_gen_shm_ != nullptr) {
    return run_gen_shm_->load(std::memory_order_acquire);
  }
  return run_generation_.load(std::memory_order_acquire);
}

void ForceEnvironment::begin_team_entry() {
  if (run_gen_shm_ != nullptr) {
    run_gen_shm_->fetch_add(1, std::memory_order_acq_rel);
    return;
  }
  run_generation_.fetch_add(1, std::memory_order_acq_rel);
}

machdep::ProcessTeam ForceEnvironment::process_team() const {
  if (fork_backend_) {
    return machdep::ProcessTeam(machdep::ProcessModelKind::kOsFork);
  }
  if (cluster_backend_) {
    return machdep::ProcessTeam(machdep::ProcessModelKind::kCluster);
  }
  return machine_->process_team();
}

BarrierAlgorithm& ForceEnvironment::global_barrier() {
  return *global_barrier_;
}

std::unique_ptr<BarrierAlgorithm> ForceEnvironment::make_barrier(int width) {
  return make_barrier(width, config_.barrier_algorithm);
}

std::unique_ptr<BarrierAlgorithm> ForceEnvironment::make_barrier(
    int width, const std::string& algorithm) {
  FORCE_CHECK(!fork_backend_ && !cluster_backend_,
              "thread barrier algorithms cannot span separate address "
              "spaces; use make_process_shared_barrier with a keyed "
              "barrier");
  return make_barrier_algorithm(algorithm, *this, width);
}

std::unique_ptr<BarrierAlgorithm> ForceEnvironment::make_process_shared_barrier(
    int width, const std::string& shm_key) {
  if (cluster_backend_) {
    return std::make_unique<ClusterBarrier>(width, shm_key);
  }
  return std::make_unique<ProcessSharedBarrier>(*this, width, shm_key);
}

util::Xoshiro256 ForceEnvironment::rng_for(int proc0) const {
  util::Xoshiro256 base(config_.seed);
  return base.substream(static_cast<unsigned>(proc0) + 1);
}

}  // namespace force::core
