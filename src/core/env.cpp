#include "core/env.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/barrier.hpp"
#include "core/sentry.hpp"
#include "util/check.hpp"

namespace force::core {

namespace {

// Environment-variable fallbacks let the whole existing test suite run
// under validation (FORCE_SENTRY=1 ctest ...) without touching each test.
// Explicit ForceConfig settings win; the variables only ever turn things on.
std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

void apply_env_overrides(ForceConfig& config) {
  if (!config.sentry && env_u64("FORCE_SENTRY", 0) != 0) config.sentry = true;
  if (config.schedule_fuzz == 0) {
    config.schedule_fuzz = env_u64("FORCE_SCHEDULE_FUZZ", 0);
  }
  if (config.schedule_fuzz != 0) config.sentry = true;
  const std::uint64_t stall = env_u64("FORCE_SENTRY_STALL_MS", 0);
  if (stall != 0) config.sentry_stall_ms = static_cast<int>(stall);
}

}  // namespace

void RuntimeStats::reset() {
  barrier_episodes.store(0, std::memory_order_relaxed);
  critical_entries.store(0, std::memory_order_relaxed);
  doall_iterations.store(0, std::memory_order_relaxed);
  doall_dispatches.store(0, std::memory_order_relaxed);
  produces.store(0, std::memory_order_relaxed);
  consumes.store(0, std::memory_order_relaxed);
  askfor_grants.store(0, std::memory_order_relaxed);
  pcase_blocks.store(0, std::memory_order_relaxed);
}

ForceEnvironment::ForceEnvironment(ForceConfig config)
    : config_(std::move(config)) {
  FORCE_CHECK(config_.nproc > 0, "ForceConfig::nproc must be positive");
  FORCE_CHECK(config_.dispatch == "auto" || config_.dispatch == "locked",
              "ForceConfig::dispatch must be 'auto' or 'locked'");
  FORCE_CHECK(config_.process_model == "machine" ||
                  config_.process_model == "os-fork",
              "ForceConfig::process_model must be 'machine' or 'os-fork'");
  fork_backend_ = config_.process_model == "os-fork";
  if (fork_backend_) {
    // These observers keep their state in ordinary (per-address-space)
    // memory, so they cannot see an os-fork team. Explicitly asking for
    // them is a configuration error; the FORCE_SENTRY family of
    // environment variables is dropped below instead, so suite-wide
    // validation runs do not break the fork tests.
    FORCE_CHECK(!config_.sentry && config_.schedule_fuzz == 0,
                "the sentry cannot observe an os-fork team (its state is "
                "per-process); validate on a thread-emulated process model");
    FORCE_CHECK(!config_.trace,
                "tracing is per-address-space; the os-fork backend cannot "
                "collect child events");
  }
  const machdep::MachineSpec& spec = machdep::machine_spec(config_.machine);
  machine_ = std::make_unique<machdep::MachineModel>(spec);
  arena_ = std::make_unique<machdep::SharedArena>(
      config_.arena_bytes, spec.page_size, spec.sharing,
      fork_backend_ ? machdep::ArenaBacking::kSharedMapping
                    : machdep::ArenaBacking::kPrivateHeap);
  private_ = std::make_unique<machdep::PrivateSpace>(
      config_.private_data_bytes, config_.private_stack_bytes);
  if (config_.trace) {
    tracer_ = std::make_unique<util::Tracer>(
        config_.nproc, config_.trace_events_per_process);
  }
  apply_env_overrides(config_);
  if (fork_backend_ && config_.sentry) {
    config_.sentry = false;  // env-var-driven; see the note above
    config_.schedule_fuzz = 0;
  }
  if (config_.sentry) {
    Sentry::Options opts;
    opts.nproc = config_.nproc;
    opts.fuzz_seed = config_.schedule_fuzz;
    opts.stall_ms = config_.sentry_stall_ms;
    sentry_ = std::make_unique<Sentry>(opts);
  }
  // Last: the barrier's locks may be ObservedLocks referencing sentry_.
  global_barrier_ =
      fork_backend_
          ? make_process_shared_barrier(config_.nproc, "%force/global")
          : make_barrier(config_.nproc);
}

// Out of line so BarrierAlgorithm/Sentry can stay incomplete in the header.
ForceEnvironment::~ForceEnvironment() {
  // Surface validation findings even when the program never asked: a
  // sentry run that found something should not exit looking clean.
  if (sentry_ != nullptr && sentry_->total_reports() > 0) {
    std::fprintf(stderr, "[force.sentry] %zu finding(s) this run:\n",
                 sentry_->total_reports());
    for (const Sentry::Report& r : sentry_->reports()) {
      std::fprintf(stderr, "[force.sentry]   [%s] %s\n",
                   Sentry::report_kind_name(r.kind), r.what.c_str());
    }
  }
}

std::unique_ptr<machdep::BasicLock> ForceEnvironment::new_lock(
    machdep::LockRole role, std::string label) {
  if (fork_backend_) {
    // One futex word in the MAP_SHARED arena, keyed by the construct
    // label. Labels are construct-unique here (critical sections embed
    // their site key, named locks their name), so every process that
    // reaches the same construct contends on the same word.
    auto* state = &arena_->get_or_create<machdep::shm::ShmLockState>(
        "%lock/" + label);
    return std::make_unique<machdep::shm::ShmLock>(state, std::move(label));
  }
  std::unique_ptr<machdep::BasicLock> inner = machine_->new_lock();
  if (sentry_ == nullptr) return inner;
  return std::make_unique<machdep::ObservedLock>(std::move(inner),
                                                 sentry_.get(), role,
                                                 std::move(label));
}

machdep::ProcessTeam ForceEnvironment::process_team() const {
  if (fork_backend_) {
    return machdep::ProcessTeam(machdep::ProcessModelKind::kOsFork);
  }
  return machine_->process_team();
}

BarrierAlgorithm& ForceEnvironment::global_barrier() {
  return *global_barrier_;
}

std::unique_ptr<BarrierAlgorithm> ForceEnvironment::make_barrier(int width) {
  return make_barrier(width, config_.barrier_algorithm);
}

std::unique_ptr<BarrierAlgorithm> ForceEnvironment::make_barrier(
    int width, const std::string& algorithm) {
  FORCE_CHECK(!fork_backend_,
              "thread barrier algorithms cannot span os-fork processes; "
              "use make_process_shared_barrier with a shared-arena key");
  return make_barrier_algorithm(algorithm, *this, width);
}

std::unique_ptr<BarrierAlgorithm> ForceEnvironment::make_process_shared_barrier(
    int width, const std::string& shm_key) {
  return std::make_unique<ProcessSharedBarrier>(*this, width, shm_key);
}

util::Xoshiro256 ForceEnvironment::rng_for(int proc0) const {
  util::Xoshiro256 base(config_.seed);
  return base.substream(static_cast<unsigned>(proc0) + 1);
}

}  // namespace force::core
