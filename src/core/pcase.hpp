// Pcase: distributing distinct single-stream code blocks (paper §3.3, §4.2).
//
// "Pcase is a similar construct to DOALL, which distributes different
// single stream code blocks over the processes of the Force: each block may
// be associated with a condition, and any number of conditions may be true
// simultaneously." The prescheduled version deals blocks to processes
// cyclically and is completely machine independent; the selfscheduled
// version dispatches block indices through the same shared-counter
// machinery as the selfscheduled DO loop.
//
// Usage (every process of the force executes the same builder - SPMD):
//
//   ctx.pcase(FORCE_SITE)
//      .sect([&]{ ... })                 // Usect: unconditional block
//      .sect_if(cond, [&]{ ... })        // Csect: conditional block
//      .run_selfsched();                 // or .run_presched()
//
// No specific execution order may be assumed; a block runs exactly once
// per episode (if its condition is true), on exactly one process.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/doall.hpp"

namespace force::core {

class ForceEnvironment;

class PcaseBuilder {
 public:
  PcaseBuilder(ForceEnvironment& env, int me0, int width,
               std::string site_key);

  /// Adds an unconditional block (Force Usect).
  PcaseBuilder& sect(std::function<void()> fn);
  /// Adds a conditional block (Force Csect); `cond` was evaluated by this
  /// process when building - all processes must agree on it (it normally
  /// depends only on shared data).
  PcaseBuilder& sect_if(bool cond, std::function<void()> fn);

  /// Deals block i to process i mod NP; machine independent.
  void run_presched();
  /// Dispatches block indices through a shared counter; balances load when
  /// block costs differ.
  void run_selfsched();

  [[nodiscard]] std::size_t blocks() const { return blocks_.size(); }

 private:
  struct Block {
    bool enabled;
    std::function<void()> fn;
  };

  void execute(const Block& b);

  ForceEnvironment& env_;
  int me0_;
  int width_;
  std::string site_key_;
  std::vector<Block> blocks_;
};

}  // namespace force::core
