// Work distribution: prescheduled and selfscheduled DO loops (paper §3.3,
// §4.2), in singly and doubly nested forms, plus chunked and guided
// selfscheduling extensions from the Force User's Manual lineage.
//
// * Presched DO is "completely machine independent, since only the number
//   of executing processes is needed": iteration k goes to process
//   k mod NP. It is a pure function of (me, np) - no shared state at all.
//
// * Selfsched DO keeps the paper's episode protocol exactly - an entry
//   gate built from two locks (BARWIN / BARWOT) and an arrival counter
//   (ZZNBAR) whose only job is to initialize the dispatch once per episode
//   and to keep the loop from being re-entered before every process has
//   left it. Faithfully to the paper, there is NO exit barrier: a process
//   leaves as soon as it draws an index beyond LAST.
//
//   The shared loop index itself now lives in a machdep::DispatchCounter:
//   on machines with hardware atomic RMW a claim is one fetch-add (guided:
//   one CAS) with no lock at all; on lock-only machines it is the paper's
//   lock-protected expansion, byte-for-byte in lock traffic - one generic
//   lock pass per claim, on a lock from MachineModel::new_lock().
//
// Iteration ranges follow Fortran DO semantics: start/last/incr with
// positive or negative increments; an empty range executes nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/barrier.hpp"
#include "machdep/backend.hpp"
#include "machdep/locks.hpp"

namespace force::core {

class ForceEnvironment;

/// Trip count of DO start,last,incr (Fortran semantics; 0 if empty).
std::int64_t loop_trip_count(std::int64_t start, std::int64_t last,
                             std::int64_t incr);

/// True if index `k` is within the loop range given the increment sign.
inline bool loop_index_in_range(std::int64_t k, std::int64_t last,
                                std::int64_t incr) {
  return (incr > 0 && k <= last) || (incr < 0 && k >= last);
}

/// Prescheduled 1D DO: process `me0` (0-based) of `np` executes iterations
/// start + (me0 + j*np)*incr. Machine independent by construction.
void presched_do(int me0, int np, std::int64_t start, std::int64_t last,
                 std::int64_t incr, const std::function<void(std::int64_t)>& body);

/// Prescheduled doubly nested DO over index pairs (i, j); the flattened
/// pair sequence is dealt cyclically, matching the "index pairs specify
/// concurrently executable streams" description.
void presched_do2(int me0, int np, std::int64_t i_start, std::int64_t i_last,
                  std::int64_t i_incr, std::int64_t j_start,
                  std::int64_t j_last, std::int64_t j_incr,
                  const std::function<void(std::int64_t, std::int64_t)>& body);

/// Shared state of one selfscheduled loop site: the paper's expansion,
/// object-ified. Reusable (protected against re-entry) and usable from
/// any SPMD team of `width` processes.
class SelfschedLoop {
 public:
  /// `key` is the construct's stable site key. Separate-process backends
  /// key the loop's episode state (entry barrier + dispatch counter +
  /// bounds) by it so every real process reaches the same engine state;
  /// the thread backend ignores it.
  SelfschedLoop(ForceEnvironment& env, int width, const std::string& key = "");

  /// Executes the loop body for dynamically claimed indices. `chunk` > 1
  /// claims several consecutive indices per critical section (chunked
  /// selfscheduling); `guided` claims ceil(remaining / (2*np)) at a time.
  void run(int me0, std::int64_t start, std::int64_t last, std::int64_t incr,
           const std::function<void(std::int64_t)>& body,
           std::int64_t chunk = 1);
  void run_guided(int me0, std::int64_t start, std::int64_t last,
                  std::int64_t incr,
                  const std::function<void(std::int64_t)>& body);

  [[nodiscard]] int width() const { return width_; }

 private:
  /// Returns false on an SPMD violation (divergent bounds); the arrival is
  /// still counted so the other processes are not wedged - the caller
  /// completes the departure protocol and then reports the error.
  [[nodiscard]] bool enter_episode(std::int64_t start, std::int64_t last,
                                   std::int64_t incr);
  void leave_episode();

  ForceEnvironment& env_;
  int width_;

  // Separate-process backends: the whole episode protocol folds into one
  // backend engine (site_ non-null) - an entry barrier whose champion
  // publishes the bounds and re-arms the dispatch, then a claim loop;
  // faithful to the paper there is still no exit barrier. Null on the
  // thread backend, which keeps the monomorphic expansion below.
  std::unique_ptr<machdep::DoallSite> site_;

  // The paper's shared environment variables for this loop site:
  std::unique_ptr<machdep::BasicLock> barwin_;   // entry gate
  std::unique_ptr<machdep::BasicLock> barwot_;   // exit gate (starts locked)
  /// The asynchronous loop index, counted in *trips claimed* (0-based)
  /// rather than raw index values so claims clamp at the trip count and
  /// can never overflow, and so chunked/guided/2D all share one engine.
  std::unique_ptr<machdep::DispatchCounter> dispatch_;
  int zznbar_ = 0;                // arrival counter, guarded by gates
  std::int64_t trips_ = 0;        // trip count of the current episode
  std::int64_t start_ = 0;        // bounds of the current episode
  std::int64_t last_ = 0;
  std::int64_t incr_ = 1;
};

/// Selfscheduled doubly nested DO: one shared dispatch over the flattened
/// pair space, then unflattened to (i, j) for the body.
class Selfsched2Loop {
 public:
  Selfsched2Loop(ForceEnvironment& env, int width,
                 const std::string& key = "");

  void run(int me0, std::int64_t i_start, std::int64_t i_last,
           std::int64_t i_incr, std::int64_t j_start, std::int64_t j_last,
           std::int64_t j_incr,
           const std::function<void(std::int64_t, std::int64_t)>& body,
           std::int64_t chunk = 1);

 private:
  SelfschedLoop flat_;
};

}  // namespace force::core
