#include "core/sentry.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace force::core {

namespace {

/// The calling thread's sentry binding; set by ThreadScope. A plain
/// thread_local pair is enough: one force process runs on one thread at a
/// time, and nested scopes (Resolve sub-teams reuse the root registration)
/// save and restore.
struct TlsBinding {
  Sentry* owner = nullptr;
  int slot = -1;
};
thread_local TlsBinding tls_binding;

/// Per-thread fuzz generator, reseeded when the (sentry, slot) binding
/// changes so the stream is a pure function of (seed, slot, draw count)
/// for registered threads.
struct TlsFuzz {
  const Sentry* owner = nullptr;
  int slot = -2;
  force::util::Xoshiro256 rng{0};
};
thread_local TlsFuzz tls_fuzz;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

void join_into(std::vector<std::uint32_t>& dst,
               const std::vector<std::uint32_t>& src) {
  if (dst.size() < src.size()) dst.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = std::max(dst[i], src[i]);
  }
}

std::string hex_addr(const void* p) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%p", p);
  return buf;
}

}  // namespace

Sentry::Sentry(const Options& opts)
    : nproc_(opts.nproc),
      fuzz_seed_(opts.fuzz_seed),
      stall_ms_(opts.stall_ms > 0 ? opts.stall_ms : 1000),
      slots_(static_cast<std::size_t>(opts.nproc)),
      root_vc_(static_cast<std::size_t>(opts.nproc), 0) {
  FORCE_CHECK(nproc_ > 0, "sentry needs a positive process count");
  for (auto& s : slots_) s.vc.assign(static_cast<std::size_t>(nproc_), 0);
  watchdog_ = std::thread([this] { watchdog_main(); });
}

Sentry::~Sentry() {
  {
    std::lock_guard<std::mutex> g(mu_);
    shutting_down_ = true;
  }
  watchdog_cv_.notify_all();
  watchdog_.join();
}

// ---------------------------------------------------------------------------
// Thread identity and run fork/join edges.
// ---------------------------------------------------------------------------

Sentry::ThreadScope::ThreadScope(Sentry& sentry, int slot)
    : saved_owner_(tls_binding.owner), saved_slot_(tls_binding.slot) {
  FORCE_CHECK(slot >= 0 && slot < sentry.nproc_,
              "sentry thread slot out of range");
  tls_binding.owner = &sentry;
  tls_binding.slot = slot;
}

Sentry::ThreadScope::~ThreadScope() {
  tls_binding.owner = saved_owner_;
  tls_binding.slot = saved_slot_;
}

int Sentry::calling_slot() const {
  return tls_binding.owner == this ? tls_binding.slot : -1;
}

void Sentry::begin_run() {
  std::lock_guard<std::mutex> g(mu_);
  for (std::size_t p = 0; p < slots_.size(); ++p) {
    // Fork edge: everything the root (and any previous run) did happens
    // before anything this run's processes do.
    slots_[p].vc = root_vc_;
    slots_[p].vc[p] += 1;
  }
}

void Sentry::end_run() {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& s : slots_) join_into(root_vc_, s.vc);
}

// ---------------------------------------------------------------------------
// Race detector.
// ---------------------------------------------------------------------------

void Sentry::track_range(const void* base, std::size_t bytes,
                         std::string name) {
  std::lock_guard<std::mutex> g(mu_);
  ranges_.emplace(base, TrackedRange{base, bytes, std::move(name)});
}

std::string Sentry::describe_addr_locked(const void* addr) const {
  auto it = ranges_.upper_bound(addr);
  if (it != ranges_.begin()) {
    --it;
    const TrackedRange& r = it->second;
    const auto off = static_cast<std::size_t>(
        static_cast<const char*>(addr) - static_cast<const char*>(r.base));
    if (off < r.bytes) {
      if (off == 0) return "'" + r.name + "'";
      return "'" + r.name + "'+" + std::to_string(off);
    }
  }
  return hex_addr(addr);
}

void Sentry::check_access_locked(const VarState&, const Access& prior,
                                 const Access& cur, const std::string& name,
                                 bool prior_is_write, bool cur_is_write) {
  if (prior.slot < 0 || prior.slot == cur.slot) return;
  if (!prior_is_write && !cur_is_write) return;
  // Happens-before: ordered iff the current thread's clock has absorbed
  // the prior access's own component.
  const auto u = static_cast<std::size_t>(prior.slot);
  const Clock& my_vc = slots_[static_cast<std::size_t>(cur.slot)].vc;
  if (u < my_vc.size() && my_vc[u] >= prior.clock) return;
  // Eraser escape hatch: a common mutex-role lock orders them in practice.
  for (const void* l : cur.locks) {
    if (std::find(prior.locks.begin(), prior.locks.end(), l) !=
        prior.locks.end()) {
      return;
    }
  }
  auto lockset_str = [this](const std::vector<const void*>& ls) {
    if (ls.empty()) return std::string("{}");
    std::string out = "{";
    for (std::size_t i = 0; i < ls.size(); ++i) {
      auto it = lock_labels_.find(ls[i]);
      out += (i ? ", " : "") + (it != lock_labels_.end() ? it->second
                                                         : hex_addr(ls[i]));
    }
    return out + "}";
  };
  std::string what = "race on " + name + ": " +
                     (cur_is_write ? "write" : "read") + " at " + cur.where +
                     " by P" + std::to_string(cur.slot + 1) + " (episode " +
                     std::to_string(cur.episode) + ", locks " +
                     lockset_str(cur.locks) + ") unordered with " +
                     (prior_is_write ? "write" : "read") + " at " +
                     prior.where + " by P" + std::to_string(prior.slot + 1) +
                     " (episode " + std::to_string(prior.episode) +
                     ", locks " + lockset_str(prior.locks) + ")";
  report_locked(ReportKind::kRace, std::move(what));
}

void Sentry::on_access(const void* addr, bool is_write, std::string where) {
  fuzz();
  const int slot = calling_slot();
  if (slot < 0) return;  // unregistered threads carry no clock
  std::lock_guard<std::mutex> g(mu_);
  SlotState& me = slots_[static_cast<std::size_t>(slot)];
  Access cur;
  cur.slot = slot;
  cur.clock = me.vc[static_cast<std::size_t>(slot)];
  cur.episode = me.episode;
  cur.locks = me.held;
  cur.where = std::move(where);

  VarState& var = vars_[addr];
  const std::string name = describe_addr_locked(addr);
  check_access_locked(var, var.last_write, cur, name, /*prior_is_write=*/true,
                      is_write);
  if (is_write) {
    for (const auto& [rslot, racc] : var.reads) {
      if (rslot == slot) continue;
      check_access_locked(var, racc, cur, name, /*prior_is_write=*/false,
                          /*cur_is_write=*/true);
    }
    var.last_write = cur;
    var.reads.clear();
  } else {
    var.reads[slot] = cur;
  }
}

void Sentry::barrier_publish(const void* b) {
  fuzz();
  const int slot = calling_slot();
  if (slot < 0) return;
  std::lock_guard<std::mutex> g(mu_);
  join_into(barrier_vc_[b], slots_[static_cast<std::size_t>(slot)].vc);
}

void Sentry::barrier_join(const void* b) {
  const int slot = calling_slot();
  if (slot < 0) return;
  std::lock_guard<std::mutex> g(mu_);
  SlotState& me = slots_[static_cast<std::size_t>(slot)];
  join_into(me.vc, barrier_vc_[b]);
  // Bump after the merge: accesses in the next episode are unordered with
  // other processes' next-episode accesses but ordered after everything
  // published before the barrier.
  me.vc[static_cast<std::size_t>(slot)] += 1;
  me.episode += 1;
}

// ---------------------------------------------------------------------------
// Async channel hooks.
// ---------------------------------------------------------------------------

void Sentry::channel_enter(const void* chan, bool is_write, const char* op) {
  fuzz();
  const int slot = calling_slot();
  std::lock_guard<std::mutex> g(mu_);
  ChannelState& ch = channels_[chan];
  if (ch.in_window > 0) {
    // Two threads inside one async variable's exclusive window: the
    // machine's full/empty (or two-lock) emulation failed to serialize.
    report_locked(
        ReportKind::kRace,
        "async protocol violation on " + describe_addr_locked(chan) + ": " +
            op + " by P" + std::to_string(slot + 1) +
            " entered the exclusive window while " + ch.window_op + " by P" +
            std::to_string(ch.window_slot + 1) + " was still inside");
  }
  ch.in_window += 1;
  ch.window_slot = slot;
  ch.window_op = op;
  if (slot < 0) return;
  SlotState& me = slots_[static_cast<std::size_t>(slot)];
  // Bidirectional join: successive operations on one async variable are
  // totally ordered by the full/empty protocol, so the channel clock
  // carries each operation's knowledge to the next.
  join_into(ch.vc, me.vc);
  me.vc = ch.vc;
  me.vc[static_cast<std::size_t>(slot)] += 1;
  // The payload access itself, recorded against the channel address.
  Access cur;
  cur.slot = slot;
  cur.clock = me.vc[static_cast<std::size_t>(slot)] - 1;
  cur.episode = me.episode;
  cur.locks = me.held;
  cur.where = op;
  VarState& var = vars_[chan];
  const std::string name = describe_addr_locked(chan);
  check_access_locked(var, var.last_write, cur, name, true, is_write);
  if (is_write) {
    var.last_write = cur;
    var.reads.clear();
  } else {
    var.reads[slot] = cur;
  }
}

void Sentry::channel_exit(const void* chan) {
  std::lock_guard<std::mutex> g(mu_);
  ChannelState& ch = channels_[chan];
  if (ch.in_window > 0) ch.in_window -= 1;
}

void Sentry::channel_sync(const void* chan) {
  fuzz();
  const int slot = calling_slot();
  if (slot < 0) return;
  std::lock_guard<std::mutex> g(mu_);
  ChannelState& ch = channels_[chan];
  SlotState& me = slots_[static_cast<std::size_t>(slot)];
  join_into(ch.vc, me.vc);
  me.vc = ch.vc;
  me.vc[static_cast<std::size_t>(slot)] += 1;
}

// ---------------------------------------------------------------------------
// Wait-for registry.
// ---------------------------------------------------------------------------

std::uint64_t Sentry::register_wait_locked(WaitKind kind, const void* resource,
                                           std::string label) {
  const std::uint64_t token = next_wait_token_++;
  WaitRecord rec;
  rec.slot = calling_slot();
  rec.kind = kind;
  rec.resource = resource;
  rec.label = std::move(label);
  rec.since = std::chrono::steady_clock::now();
  if (rec.slot >= 0) {
    slots_[static_cast<std::size_t>(rec.slot)].wait_token = token;
  }
  waits_.emplace(token, std::move(rec));
  return token;
}

void Sentry::unregister_wait_locked(std::uint64_t token) {
  auto it = waits_.find(token);
  if (it == waits_.end()) return;
  if (it->second.slot >= 0) {
    SlotState& s = slots_[static_cast<std::size_t>(it->second.slot)];
    if (s.wait_token == token) s.wait_token = 0;
  }
  waits_.erase(it);
}

Sentry::WaitScope::WaitScope(Sentry* sentry, WaitKind kind,
                             const void* resource, std::string label)
    : sentry_(sentry) {
  if (sentry_ == nullptr) return;
  sentry_->fuzz();
  std::lock_guard<std::mutex> g(sentry_->mu_);
  token_ = sentry_->register_wait_locked(kind, resource, std::move(label));
}

Sentry::WaitScope::~WaitScope() {
  if (sentry_ == nullptr || token_ == 0) return;
  std::lock_guard<std::mutex> g(sentry_->mu_);
  sentry_->unregister_wait_locked(token_);
}

// ---------------------------------------------------------------------------
// LockObserver: lockset, acquisition-order graph, owner tracking.
// ---------------------------------------------------------------------------

std::uint64_t Sentry::on_acquire_begin(const machdep::ObservedLock& lock) {
  fuzz();
  // Semaphore-role locks (barrier turnstiles, DOALL gates, async full/empty
  // pairs) block by design, for as long as the slowest process takes; their
  // waits would be stall false positives. The constructs register their own
  // protocol waits (kProduce/kConsume/kAskfor) where a wait is reportable.
  if (lock.role() != machdep::LockRole::kMutex) return 0;
  std::lock_guard<std::mutex> g(mu_);
  return register_wait_locked(WaitKind::kLock, lock.id(), lock.label());
}

bool Sentry::order_path_locked(const void* from, const void* to,
                               std::set<const void*>& seen) const {
  if (from == to) return true;
  if (!seen.insert(from).second) return false;
  auto it = order_edges_.find(from);
  if (it == order_edges_.end()) return false;
  for (const auto& [next, site] : it->second) {
    (void)site;
    if (order_path_locked(next, to, seen)) return true;
  }
  return false;
}

void Sentry::on_acquired(const machdep::ObservedLock& lock,
                         std::uint64_t wait_token) {
  std::lock_guard<std::mutex> g(mu_);
  if (wait_token != 0) unregister_wait_locked(wait_token);
  lock_labels_.emplace(lock.id(), lock.label());
  if (lock.role() != machdep::LockRole::kMutex) return;
  const int slot = calling_slot();
  lock_owner_[lock.id()] = slot;
  if (slot < 0) return;
  SlotState& me = slots_[static_cast<std::size_t>(slot)];
  for (std::size_t i = 0; i < me.held.size(); ++i) {
    const void* outer = me.held[i];
    if (outer == lock.id()) continue;
    auto& edges = order_edges_[outer];
    if (edges.emplace(lock.id(), me.held_labels[i] + " -> " + lock.label())
            .second) {
      // New edge outer -> lock: a path lock ->* outer now closes a cycle.
      std::set<const void*> seen;
      if (order_path_locked(lock.id(), outer, seen)) {
        // Not std::minmax: it returns a pair of references, which would
        // dangle off the lock.id() temporary past this statement.
        const void* lo = outer;
        const void* hi = lock.id();
        if (hi < lo) std::swap(lo, hi);
        if (order_reported_.insert({lo, hi}).second) {
          report_locked(
              ReportKind::kLockOrder,
              "lock-order inversion: '" + lock.label() + "' acquired while "
              "holding '" + me.held_labels[i] + "' by P" +
                  std::to_string(slot + 1) +
                  ", but the acquisition-order graph already orders '" +
                  lock.label() + "' before '" + me.held_labels[i] +
                  "' - a schedule interleaving these chains deadlocks");
        }
      }
    }
  }
  me.held.push_back(lock.id());
  me.held_labels.push_back(lock.label());
}

void Sentry::on_released(const machdep::ObservedLock& lock) {
  std::lock_guard<std::mutex> g(mu_);
  if (lock.role() != machdep::LockRole::kMutex) return;
  const int slot = calling_slot();
  // Normal path: the releasing thread holds the lock. A cross-thread
  // release of a mutex-role lock (legal Force semantics, unusual usage)
  // clears the recorded owner's bookkeeping instead.
  int owner = slot;
  if (slot < 0 || std::find(slots_[static_cast<std::size_t>(slot)].held.begin(),
                            slots_[static_cast<std::size_t>(slot)].held.end(),
                            lock.id()) ==
                      slots_[static_cast<std::size_t>(slot)].held.end()) {
    auto it = lock_owner_.find(lock.id());
    owner = (it != lock_owner_.end()) ? it->second : -1;
  }
  lock_owner_.erase(lock.id());
  if (owner < 0) return;
  SlotState& holder = slots_[static_cast<std::size_t>(owner)];
  for (std::size_t i = holder.held.size(); i-- > 0;) {
    if (holder.held[i] == lock.id()) {
      holder.held.erase(holder.held.begin() + static_cast<std::ptrdiff_t>(i));
      holder.held_labels.erase(holder.held_labels.begin() +
                               static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Watchdog: stall and wait-for-cycle reporting.
// ---------------------------------------------------------------------------

void Sentry::scan_for_stalls_locked() {
  const auto now = std::chrono::steady_clock::now();
  for (auto& [token, rec] : waits_) {
    (void)token;
    if (rec.stall_reported) continue;
    const auto waited =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - rec.since)
            .count();
    if (waited < stall_ms_) continue;
    rec.stall_reported = true;
    const char* kind = rec.kind == WaitKind::kProduce   ? "Produce"
                       : rec.kind == WaitKind::kConsume ? "Consume"
                       : rec.kind == WaitKind::kAskfor
                           ? "Askfor termination wait"
                           : "lock acquire";
    std::string who = rec.slot >= 0 ? "P" + std::to_string(rec.slot + 1)
                                    : "an unregistered thread";
    report_locked(ReportKind::kStall,
                  "stall: " + who + " blocked " + std::to_string(waited) +
                      "ms in " + kind + " on '" + rec.label + "'");
  }
}

void Sentry::scan_for_wait_cycles_locked() {
  // slot -> waited-on mutex lock -> owner slot -> ... ; a cycle of
  // registered slots is an actual deadlock in progress.
  for (std::size_t start = 0; start < slots_.size(); ++start) {
    std::vector<int> chain;
    int cur = static_cast<int>(start);
    bool cycle = false;
    while (cur >= 0 &&
           std::find(chain.begin(), chain.end(), cur) == chain.end()) {
      chain.push_back(cur);
      const std::uint64_t token =
          slots_[static_cast<std::size_t>(cur)].wait_token;
      if (token == 0) break;
      auto wit = waits_.find(token);
      if (wit == waits_.end() || wit->second.kind != WaitKind::kLock) break;
      auto oit = lock_owner_.find(wit->second.resource);
      if (oit == lock_owner_.end()) break;
      cur = oit->second;
      if (cur == static_cast<int>(start)) {
        cycle = true;
        break;
      }
    }
    if (!cycle) continue;
    std::string key;
    std::string desc;
    for (int p : chain) {
      key += std::to_string(p) + ",";
      const auto& rec =
          waits_.at(slots_[static_cast<std::size_t>(p)].wait_token);
      desc += "P";
      desc += std::to_string(p + 1);
      desc += " waits on '";
      desc += rec.label;
      desc += "'; ";
    }
    if (deadlock_reported_.insert(key).second) {
      report_locked(ReportKind::kDeadlock,
                    "deadlock: wait-for cycle - " + desc);
    }
  }
}

void Sentry::watchdog_main() {
  std::unique_lock<std::mutex> g(mu_);
  const auto interval = std::chrono::milliseconds(
      std::max(10, std::min(stall_ms_ / 2, 50)));
  while (!shutting_down_) {
    watchdog_cv_.wait_for(g, interval);
    if (shutting_down_) break;
    scan_for_stalls_locked();
    scan_for_wait_cycles_locked();
  }
}

// ---------------------------------------------------------------------------
// Schedule fuzzer.
// ---------------------------------------------------------------------------

void Sentry::fuzz() {
  if (fuzz_seed_ == 0) return;
  const int slot = calling_slot();
  if (tls_fuzz.owner != this || tls_fuzz.slot != slot) {
    // Deterministic per (seed, slot) stream; unregistered threads share
    // substream 0.
    tls_fuzz.owner = this;
    tls_fuzz.slot = slot;
    tls_fuzz.rng = force::util::Xoshiro256(fuzz_seed_)
                       .substream(static_cast<unsigned>(slot + 1));
  }
  const std::uint64_t u = tls_fuzz.rng.next();
  if ((u & 7u) == 0) {
    std::this_thread::yield();
  } else if ((u & 63u) == 1) {
    const int spins = static_cast<int>((u >> 6) & 255u);
    for (int i = 0; i < spins; ++i) cpu_relax();
  }
}

// ---------------------------------------------------------------------------
// Reports.
// ---------------------------------------------------------------------------

void Sentry::report_locked(ReportKind kind, std::string what) {
  reports_.push_back({kind, std::move(what)});
}

std::vector<Sentry::Report> Sentry::reports() const {
  std::lock_guard<std::mutex> g(mu_);
  return reports_;
}

std::size_t Sentry::report_count(ReportKind kind) const {
  std::lock_guard<std::mutex> g(mu_);
  std::size_t n = 0;
  for (const auto& r : reports_) n += r.kind == kind ? 1 : 0;
  return n;
}

std::size_t Sentry::total_reports() const {
  std::lock_guard<std::mutex> g(mu_);
  return reports_.size();
}

const char* Sentry::report_kind_name(ReportKind kind) {
  switch (kind) {
    case ReportKind::kRace:
      return "race";
    case ReportKind::kLockOrder:
      return "lock-order";
    case ReportKind::kDeadlock:
      return "deadlock";
    case ReportKind::kStall:
      return "stall";
  }
  return "?";
}

}  // namespace force::core
