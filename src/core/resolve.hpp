// Resolve: partitioning the force into components (paper §3.3).
//
// "A yet unimplemented concept is Resolve, which would partition the set
// of processes into subsets executing different parallel code sections."
// The paper leaves Resolve as future work; this reproduction implements it
// as a documented extension (DESIGN.md §1).
//
// Each component declares a weight; the force is split proportionally
// (largest-remainder apportionment, every component gets at least one
// process). Within a component, processes get a sub-context with remapped
// me/np, a component-sized barrier, and a namespaced construct-site space,
// so every Force construct works unchanged inside a component. Unify at
// the end: Resolve concludes with a full-force barrier.
//
// The builder lives in force.hpp (it hands out sub-contexts); this header
// holds the partitioning arithmetic and the shared per-site state.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/barrier.hpp"

namespace force::core {

class ForceEnvironment;

/// Splits `np` processes over components proportionally to `weights`
/// (all positive). Requires np >= weights.size(); every component receives
/// at least one process. Returns per-component process counts summing to
/// np, stable under permutation of equal remainders (deterministic).
std::vector<int> resolve_partition(int np, const std::vector<int>& weights);

/// Maps a process rank to (component, rank-within-component) given the
/// partition sizes (components own consecutive rank ranges).
struct ComponentAssignment {
  int component = 0;
  int rank = 0;   ///< 0-based rank within the component
  int width = 0;  ///< component size
};
ComponentAssignment assign_component(int proc0,
                                     const std::vector<int>& sizes);

/// Shared state of one Resolve site: the per-component barriers plus the
/// join barrier, created once by the first arriving process.
class ResolveState {
 public:
  ResolveState(ForceEnvironment& env, const std::vector<int>& sizes);

  [[nodiscard]] const std::vector<int>& sizes() const { return sizes_; }
  [[nodiscard]] BarrierAlgorithm& component_barrier(int component);
  [[nodiscard]] BarrierAlgorithm& join_barrier() { return *join_; }

 private:
  std::vector<int> sizes_;
  std::vector<std::unique_ptr<BarrierAlgorithm>> component_barriers_;
  std::unique_ptr<BarrierAlgorithm> join_;
};

}  // namespace force::core
