// Parallel subroutines: Forcesub / Externf / Forcecall (paper §3.1, §4.2).
//
// "Parallel Force subroutines are supported by the Forcesub statement.
// Such a parallel subroutine is executed by all processes concurrently."
// Separately compiled Force subroutines need Externf declarations so the
// main program's startup routine can call each subroutine's startup
// routine, linking all shared variables used throughout the program.
//
// SubroutineRegistry is that mechanism: each registered module contributes
//   * a startup routine that declares its shared variables into the arena
//     (wired through machdep::LinkageRegistry, i.e. the Sequent two-run
//     protocol when the machine shares at link time), and
//   * a parallel body executed by all processes via Forcecall.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "machdep/arena.hpp"

namespace force::core {

class Ctx;
class ForceEnvironment;

class SubroutineRegistry {
 public:
  using StartupFn = std::function<void(machdep::SharedArena&)>;
  using BodyFn = std::function<void(Ctx&)>;

  explicit SubroutineRegistry(ForceEnvironment& env) : env_(env) {}

  /// Registers a Force subroutine (Forcesub + its startup routine). Must
  /// happen before the force is created - exactly the Externf rule that
  /// external subroutines are declared before the program runs. The
  /// startup routine is immediately wired into the linkage registry so
  /// run_startup() reaches it.
  void register_sub(const std::string& name, StartupFn startup, BodyFn body);

  /// Forcecall: invoked by every process of the force; runs the named
  /// subroutine's body concurrently on all of them.
  void call(const std::string& name, Ctx& ctx) const;

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  struct Sub {
    std::string name;
    BodyFn body;
  };
  ForceEnvironment& env_;
  std::vector<Sub> subs_;
};

}  // namespace force::core
