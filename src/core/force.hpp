// The Force driver and per-process context (paper §3, §4.1.1).
//
// A Force program has a *global parallelism* execution model: it is written
// assuming a force of processes executes all of it, SPMD style. The driver
// (class Force) creates the processes at program start with the machine
// model's creation semantics and joins them at the end (the Join
// statement). Work is never assigned to specific processes by the
// programmer; it is distributed over the whole force by the constructs
// exposed on Ctx.
//
//   force::Force f({.nproc = 8, .machine = "encore"});
//   f.run([&](force::core::Ctx& ctx) {
//     ctx.selfsched_do(FORCE_SITE, 1, n, 1, [&](long i) { ... });
//     ctx.barrier([&] { ...one process... });
//     ctx.critical(FORCE_SITE, [&] { ... });
//   });                                    // Join implied
//
// Ctx::me() is 1-based like the Force's process number; every construct
// that needs shared state takes a FORCE_SITE token, the library analogue
// of the preprocessor's statically generated shared variables.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <typeinfo>
#include <vector>

#include "core/askfor.hpp"
#include "core/async.hpp"
#include "core/barrier.hpp"
#include "core/critical.hpp"
#include "core/doall.hpp"
#include "core/env.hpp"
#include "core/module.hpp"
#include "core/pcase.hpp"
#include "core/reduce.hpp"
#include "core/resolve.hpp"
#include "core/sentry.hpp"
#include "core/site.hpp"
#include "machdep/process.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"
#include "util/trace.hpp"

namespace force::core {

class Force;
class ResolveBuilder;

/// Per-process view of the running force. Created by the driver (or by
/// Resolve for component sub-teams); cheap to copy around by reference.
class Ctx {
 public:
  /// Process number, 1..np (Fortran convention, like the Force's ME).
  [[nodiscard]] int me() const { return me0_ + 1; }
  /// 0-based process index.
  [[nodiscard]] int me0() const { return me0_; }
  /// Team size (the Force's NP). Programs should treat this as opaque.
  [[nodiscard]] int np() const { return np_; }
  [[nodiscard]] ForceEnvironment& env() const { return *env_; }
  /// True on exactly one process of the team (process 1).
  [[nodiscard]] bool leader() const { return me0_ == 0; }

  // --- synchronization ----------------------------------------------------

  /// Barrier over this team; no section.
  void barrier() { barrier_impl(BarrierAlgorithm::no_section()); }
  /// Barrier with a barrier section: one arbitrary process executes
  /// `section` while the others are suspended (paper §3.4).
  void barrier(const std::function<void()>& section) {
    barrier_impl(section);
  }

  /// Critical section at `site`: mutual exclusion among the whole force.
  /// The traced span covers wait + occupancy.
  void critical(const Site& site, const std::function<void()>& body) {
    if (auto* tr = env_->tracer()) {
      util::Tracer::Span span(tr, me0_, util::TraceKind::kCritical);
      critical_section(site).enter(body);
      return;
    }
    critical_section(site).enter(body);
  }
  /// The underlying section object (for RAII-style Guard use).
  CriticalSection& critical_section(const Site& site) {
    return state<CriticalSection>(site, "%crit", [this, &site] {
      return std::make_unique<CriticalSection>(*env_,
                                               "critical@" + site.key());
    });
  }

  // --- work distribution ----------------------------------------------------

  /// Prescheduled DO: iteration k to process k mod np; no shared state.
  void presched_do(std::int64_t start, std::int64_t last, std::int64_t incr,
                   const std::function<void(std::int64_t)>& body) const {
    core::presched_do(me0_, np_, start, last, incr, body);
  }

  /// Prescheduled doubly nested DO over index pairs.
  void presched_do2(std::int64_t i_start, std::int64_t i_last,
                    std::int64_t i_incr, std::int64_t j_start,
                    std::int64_t j_last, std::int64_t j_incr,
                    const std::function<void(std::int64_t, std::int64_t)>&
                        body) const {
    core::presched_do2(me0_, np_, i_start, i_last, i_incr, j_start, j_last,
                       j_incr, body);
  }

  /// Selfscheduled DO (paper's macro expansion); `chunk` > 1 is the
  /// chunked-selfscheduling extension.
  void selfsched_do(const Site& site, std::int64_t start, std::int64_t last,
                    std::int64_t incr,
                    const std::function<void(std::int64_t)>& body,
                    std::int64_t chunk = 1) {
    selfsched_loop(site).run(me0_, start, last, incr, body, chunk);
  }

  /// Guided selfscheduled DO (extension; decreasing chunk sizes).
  void guided_do(const Site& site, std::int64_t start, std::int64_t last,
                 std::int64_t incr,
                 const std::function<void(std::int64_t)>& body) {
    selfsched_loop(site).run_guided(me0_, start, last, incr, body);
  }

  /// Selfscheduled doubly nested DO over index pairs.
  void selfsched_do2(
      const Site& site, std::int64_t i_start, std::int64_t i_last,
      std::int64_t i_incr, std::int64_t j_start, std::int64_t j_last,
      std::int64_t j_incr,
      const std::function<void(std::int64_t, std::int64_t)>& body,
      std::int64_t chunk = 1) {
    auto& loop = state<Selfsched2Loop>(site, "%ss2", [this, &site] {
      return std::make_unique<Selfsched2Loop>(*env_, np_,
                                              site_key(site) + "#2");
    });
    loop.run(me0_, i_start, i_last, i_incr, j_start, j_last, j_incr, body,
             chunk);
  }

  /// Pcase builder for distinct code blocks (paper §3.3).
  [[nodiscard]] PcaseBuilder pcase(const Site& site) {
    env_->require(machdep::Capability::kPcase, "Pcase", site_key(site));
    return PcaseBuilder(*env_, me0_, np_, site_key(site));
  }

  /// The Askfor monitor at `site` (paper §3.3, [LO83]).
  template <typename T>
  [[nodiscard]] Askfor<T>& askfor(const Site& site) {
    return state<Askfor<T>>(site, "%askfor", [this, &site] {
      return std::make_unique<Askfor<T>>(*env_, site_key(site));
    });
  }

  /// Named Askfor monitor: dialect Askfor blocks and their Seedwork
  /// statements can be textually far apart, so the monitor is addressed by
  /// label rather than by source location.
  template <typename T>
  [[nodiscard]] Askfor<T>& askfor_named(const std::string& name) {
    const std::string key =
        (ns_.empty() ? name : ns_ + "/" + name) + "%askforvar";
    return env_->sites().get_or_create<Askfor<T>>(
        key, [this, &key] { return std::make_unique<Askfor<T>>(*env_, key); });
  }

  /// Resolve: partition the force into weighted components (paper §3.3,
  /// implemented extension). See ResolveBuilder below.
  [[nodiscard]] ResolveBuilder resolve(const Site& site);

  /// Allreduce over the team: contributes `local`, returns the combined
  /// value to every process. `combine` must be associative/commutative.
  /// Packages the Force's "private partial + critical + barrier" idiom
  /// (kCritical, default) or a log-depth combining tree (kTournament).
  template <typename T>
  T reduce(const Site& site, const T& local,
           const std::function<T(T, T)>& combine,
           ReduceStrategy strategy = ReduceStrategy::kCritical) {
    auto& red = state<Reduction<T>>(site, "%reduce", [this, &site] {
      return std::make_unique<Reduction<T>>(*env_, np_, site_key(site));
    });
    return red.allreduce(me0_, local, combine, strategy);
  }

  /// Like reduce(), but also stores the result into a *shared* variable at
  /// the construct's single-writer point (race-free; visible to every
  /// process when reduce_into returns). The dialect's Reduce statement
  /// compiles to this.
  template <typename T>
  T reduce_into(const Site& site, const T& local, T& shared_target,
                const std::function<T(T, T)>& combine,
                ReduceStrategy strategy = ReduceStrategy::kCritical) {
    auto& red = state<Reduction<T>>(site, "%reduce", [this, &site] {
      return std::make_unique<Reduction<T>>(*env_, np_, site_key(site));
    });
    return red.allreduce(me0_, local, combine, strategy, &shared_target);
  }

  /// A raw named lock: the paper's low-level define_lock / lock / unlock
  /// macros surfaced (the dialect's Lock/Unlock statements compile to
  /// this). Binary-semaphore semantics; prefer critical() in new code.
  [[nodiscard]] machdep::BasicLock& named_lock(const std::string& name) {
    struct Holder {
      std::unique_ptr<machdep::BasicLock> lock;
    };
    const std::string key =
        (ns_.empty() ? name : ns_ + "/" + name) + "%rawlock";
    auto& holder = env_->sites().get_or_create<Holder>(key, [this, &name] {
      auto h = std::make_unique<Holder>();
      h->lock = env_->new_lock(machdep::LockRole::kMutex, "lock '" + name + "'");
      return h;
    });
    return *holder.lock;
  }

  // --- validation -----------------------------------------------------------

  /// Annotates a read of a shared location for the sentry's race detector
  /// (no-op unless ForceConfig::sentry). `site` is report provenance.
  void note_read(const Site& site, const void* addr) {
    if (Sentry* sn = env_->sentry()) sn->on_access(addr, false, site.key());
  }
  /// Annotates a write of a shared location for the sentry's race detector.
  void note_write(const Site& site, const void* addr) {
    if (Sentry* sn = env_->sentry()) sn->on_access(addr, true, site.key());
  }

  // --- variables ------------------------------------------------------------

  /// Named shared variable in the machine's shared arena (Force `Shared`);
  /// default-constructed once, same object for every process.
  template <typename T>
  [[nodiscard]] T& shared(const std::string& name) {
    const std::string key = ns_.empty() ? name : ns_ + "/" + name;
    T& ref = env_->arena().get_or_create<T>(key, machdep::VarClass::kShared);
    if (Sentry* sn = env_->sentry()) sn->track_range(&ref, sizeof(T), key);
    return ref;
  }

  /// Asynchronous variable at `site` (Force `Async`), with
  /// produce/consume/void/isfull semantics.
  template <typename T>
  [[nodiscard]] Async<T>& async_var(const Site& site) {
    return state<Async<T>>(site, "%async", [this, &site] {
      return std::make_unique<Async<T>>(*env_, "async@" + site.key());
    });
  }

  /// Named asynchronous variable (Force `Async real V` declarations;
  /// preprocessor-generated code binds async variables by name).
  template <typename T>
  [[nodiscard]] Async<T>& async_named(const std::string& name) {
    const std::string key =
        (ns_.empty() ? name : ns_ + "/" + name) + "%asyncvar";
    return env_->sites().get_or_create<Async<T>>(key, [this, &name] {
      return std::make_unique<Async<T>>(*env_, "async '" + name + "'");
    });
  }

  /// Array of async variables at `site` (Force `Async real A(n)`). All
  /// processes must request the same size.
  template <typename T>
  [[nodiscard]] AsyncArray<T>& async_array(const Site& site, std::size_t n) {
    auto& arr = state<AsyncArray<T>>(site, "%asyncarr", [this, n, &site] {
      return std::make_unique<AsyncArray<T>>(*env_, n,
                                             "async@" + site.key());
    });
    FORCE_CHECK(arr.size() == n, "async array size disagrees across processes");
    return arr;
  }

  // --- misc -----------------------------------------------------------------

  /// Deterministic per-process RNG substream.
  [[nodiscard]] util::Xoshiro256& rng() { return rng_; }

  /// Forcecall: run a registered parallel subroutine on the whole team.
  void call(const std::string& subroutine);

  /// Namespaced key for `site` (component-qualified inside Resolve).
  [[nodiscard]] std::string site_key(const Site& site) const {
    return namespaced_site_key(ns_, site);
  }

  /// Shared construct state addressed by site (advanced; the typed
  /// accessors above are the normal interface).
  template <typename T>
  T& state(const Site& site, const char* kind,
           std::function<std::unique_ptr<T>()> factory) {
    return env_->sites().get_or_create<T>(site_key(site) + kind,
                                          std::move(factory));
  }

 private:
  friend class Force;
  friend class ResolveBuilder;

  Ctx(ForceEnvironment* env, const SubroutineRegistry* subs, int me0, int np,
      std::string ns, BarrierAlgorithm* team_barrier)
      : env_(env),
        subs_(subs),
        me0_(me0),
        np_(np),
        ns_(std::move(ns)),
        team_barrier_(team_barrier),
        rng_(env->rng_for(me0)) {}

  void barrier_impl(const std::function<void()>& section) {
    Sentry* sn = env_->sentry();
    if (sn == nullptr) {
      barrier_arrive(section);
    } else {
      sn->barrier_publish(team_barrier_);
      if (section) {
        barrier_arrive([&] {
          // The section runs after every process has arrived (and hence
          // published), so joining first orders the section's accesses
          // after everything from the preceding episode ...
          sn->barrier_join(team_barrier_);
          section();
          // ... and republishing while the rest of the team is still
          // parked orders them before every process's join below.
          sn->barrier_publish(team_barrier_);
        });
      } else {
        barrier_arrive(section);
      }
      sn->barrier_join(team_barrier_);
    }
    if (me0_ == 0) {
      env_->stats().barrier_episodes.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void barrier_arrive(const std::function<void()>& section) {
    if (auto* tr = env_->tracer()) {
      const std::int64_t t0 = util::now_ns();
      if (section) {
        team_barrier_->arrive(me0_, [&] {
          util::Tracer::Span span(tr, me0_, util::TraceKind::kSection);
          section();
        });
      } else {
        team_barrier_->arrive(me0_);
      }
      tr->record(me0_, util::TraceKind::kBarrier, t0, util::now_ns());
    } else {
      team_barrier_->arrive(me0_, section);
    }
  }

  SelfschedLoop& selfsched_loop(const Site& site) {
    auto& loop = state<SelfschedLoop>(site, "%ssdo", [this, &site] {
      return std::make_unique<SelfschedLoop>(*env_, np_, site_key(site));
    });
    FORCE_CHECK(loop.width() == np_,
                "selfsched site reused from a team of different width");
    return loop;
  }

  ForceEnvironment* env_;
  const SubroutineRegistry* subs_;
  int me0_;
  int np_;
  std::string ns_;  // site namespace ("" for the root force)
  BarrierAlgorithm* team_barrier_;
  util::Xoshiro256 rng_;
};

/// Builder for a Resolve construct; collects weighted components, then
/// partitions the team and runs each component on its subset. Concludes
/// with a team-wide join barrier.
class ResolveBuilder {
 public:
  ResolveBuilder& component(std::string name, int weight,
                            std::function<void(Ctx&)> body);
  /// Executes; every process of the team must call run() (SPMD).
  void run();

 private:
  friend class Ctx;
  ResolveBuilder(Ctx& parent, std::string site_key)
      : parent_(parent), site_key_(std::move(site_key)) {}

  struct Component {
    std::string name;
    int weight;
    std::function<void(Ctx&)> body;
  };
  Ctx& parent_;
  std::string site_key_;
  std::vector<Component> components_;
};

/// The Force program driver: owns the environment, creates the force of
/// processes per the machine model, runs the program, joins (the Join
/// statement), and surfaces the first exception any process threw.
class Force {
 public:
  explicit Force(ForceConfig config = {});

  [[nodiscard]] ForceEnvironment& env() { return *env_; }
  [[nodiscard]] SubroutineRegistry& subroutines() { return subs_; }
  [[nodiscard]] int nproc() const { return env_->nproc(); }

  /// Declares a shared variable before the force starts (the role of a
  /// module's startup routine); useful to initialize shared data that
  /// fork-model machines must see before process creation.
  template <typename T>
  T& shared(const std::string& name) {
    return env_->arena().get_or_create<T>(name, machdep::VarClass::kShared);
  }

  /// Handle to initialize a private variable before the run: under the
  /// fork models children inherit this value, under HEP-create they see a
  /// default-constructed one. See core/privatevar.hpp.
  [[nodiscard]] machdep::PrivateSpace& private_space() {
    return env_->private_space();
  }

  /// Runs `program` on the whole force and joins. May be called multiple
  /// times; startup routines and private-space materialization happen on
  /// the first run only (one driver, one force - repeated runs reuse it).
  machdep::SpawnStats run(const std::function<void(Ctx&)>& program);

  /// Total creation/join statistics accumulated over all run() calls.
  [[nodiscard]] const machdep::SpawnStats& lifetime_stats() const {
    return lifetime_;
  }

 private:
  std::unique_ptr<ForceEnvironment> env_;
  SubroutineRegistry subs_;
  bool started_ = false;
  machdep::SpawnStats lifetime_;
  /// Arena placement generation whose allocations the sentry has already
  /// tracked; pooled re-entry skips the per-run range walk when nothing
  /// new was placed.
  std::uint64_t tracked_arena_generation_ = ~std::uint64_t{0};
};

}  // namespace force::core

namespace force {
// Convenience aliases: the public API most programs touch.
using core::Ctx;
using core::Force;
using core::ForceConfig;
}  // namespace force
