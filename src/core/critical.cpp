#include "core/critical.hpp"

#include "core/env.hpp"

namespace force::core {

CriticalSection::CriticalSection(ForceEnvironment& env, std::string label)
    : lock_(env.new_lock(machdep::LockRole::kMutex, std::move(label))),
      env_(env) {}

void CriticalSection::enter(const std::function<void()>& body) {
  Guard g(*this);
  ++entries_;
  env_.stats().critical_entries.fetch_add(1, std::memory_order_relaxed);
  body();
}

}  // namespace force::core
