// A bounded queue monitor in the style of the Argonne macro monitors
// ([LO83], which the paper cites as the source of Askfor; the same report
// builds send/receive queues from locks and delay conditions).
//
// MonitorQueue<T> is a multi-producer / multi-consumer bounded buffer built
// ONLY from the machine-dependent layer's generic locks - exactly the
// discipline the Force imposes on its own constructs, and therefore
// portable to every machine model unchanged. Waiting follows the macro
// monitors' delay/continue pattern: release the monitor lock, poll
// politely, retry (no condition variables existed on the 1989 targets).
//
// close() gives producers a way to end the stream: consumers drain the
// remaining items and then pop() returns false forever.
#pragma once

#include <deque>
#include <memory>
#include <thread>

#include "core/env.hpp"
#include "machdep/fiber.hpp"
#include "machdep/locks.hpp"
#include "util/check.hpp"

namespace force::core {

template <typename T>
class MonitorQueue {
 public:
  MonitorQueue(ForceEnvironment& env, std::size_t capacity)
      : capacity_(capacity),
        monitor_(env.new_lock(machdep::LockRole::kMutex, "monitor-queue")) {
    FORCE_CHECK(capacity_ > 0, "queue capacity must be positive");
  }

  /// Blocks while the queue is full; returns false (and drops the item)
  /// if the queue was closed.
  bool push(T item) {
    for (;;) {
      monitor_->acquire();
      if (closed_) {
        monitor_->release();
        return false;
      }
      if (items_.size() < capacity_) {
        items_.push_back(std::move(item));
        ++pushed_;
        monitor_->release();
        return true;
      }
      monitor_->release();
      machdep::member_yield();  // delay/continue, monitor-macro style
    }
  }

  /// Non-blocking push; false if full or closed.
  bool try_push(T item) {
    monitor_->acquire();
    const bool ok = !closed_ && items_.size() < capacity_;
    if (ok) {
      items_.push_back(std::move(item));
      ++pushed_;
    }
    monitor_->release();
    return ok;
  }

  /// Blocks until an item is available or the queue is closed AND empty;
  /// returns false only in the latter case (the stream has ended).
  bool pop(T* out) {
    FORCE_CHECK(out != nullptr, "pop needs an output slot");
    for (;;) {
      monitor_->acquire();
      if (!items_.empty()) {
        *out = std::move(items_.front());
        items_.pop_front();
        ++popped_;
        monitor_->release();
        return true;
      }
      if (closed_) {
        monitor_->release();
        return false;
      }
      monitor_->release();
      machdep::member_yield();
    }
  }

  /// Non-blocking pop; false if nothing is available right now.
  bool try_pop(T* out) {
    FORCE_CHECK(out != nullptr, "try_pop needs an output slot");
    monitor_->acquire();
    const bool ok = !items_.empty();
    if (ok) {
      *out = std::move(items_.front());
      items_.pop_front();
      ++popped_;
    }
    monitor_->release();
    return ok;
  }

  /// Ends the stream: producers are refused from now on; consumers drain
  /// what remains. Idempotent; any process may close.
  void close() {
    monitor_->acquire();
    closed_ = true;
    monitor_->release();
  }

  [[nodiscard]] bool closed() const {
    monitor_->acquire();
    const bool c = closed_;
    monitor_->release();
    return c;
  }

  [[nodiscard]] std::size_t size() const {
    monitor_->acquire();
    const std::size_t n = items_.size();
    monitor_->release();
    return n;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Lifetime counters (diagnostics; exact because they are guarded).
  [[nodiscard]] std::uint64_t total_pushed() const {
    monitor_->acquire();
    const auto v = pushed_;
    monitor_->release();
    return v;
  }
  [[nodiscard]] std::uint64_t total_popped() const {
    monitor_->acquire();
    const auto v = popped_;
    monitor_->release();
    return v;
  }

 private:
  std::size_t capacity_;
  std::unique_ptr<machdep::BasicLock> monitor_;
  std::deque<T> items_;       // guarded by *monitor_
  bool closed_ = false;       // guarded by *monitor_
  std::uint64_t pushed_ = 0;  // guarded by *monitor_
  std::uint64_t popped_ = 0;  // guarded by *monitor_
};

}  // namespace force::core
