// The Askfor monitor (paper §3.3, after Lusk & Overbeek [LO83]).
//
// "The most general concept for concurrent code segments ... provides a
// means of work distribution in cases where the degree of concurrency is
// not known at compile time. Rather, the program can request during run
// time that a new concurrent instance of the code segment is executed."
//
// AskforCore is the monitor: work tokens plus the bookkeeping needed to
// distinguish "no work right now, but a working process may still put()
// more" (wait) from "no work and nobody working" (done). Askfor<T> is the
// typed façade with the canonical worker loop.
//
// Dispatch has two engines, selected by the machine capability
// (MachineSpec::hardware_atomic_rmw, via ForceEnvironment):
//
//   * Lock-only machines run the Argonne monitor shape unchanged: one
//     generic lock around a central queue, poll-with-yield waiting. Every
//     operation is one lock pass, exactly as the 1989 expansion - and
//     exactly as the seed of this repo, so LockCounters totals for these
//     machines are unchanged.
//
//   * Hardware-RMW machines add a lock-free fast path: one bounded
//     Chase-Lev deque per worker (owner pops LIFO, thieves steal FIFO)
//     plus a single packed pending/working counter for termination
//     detection. The monitor lock survives as the slow path - seeding
//     from unregistered threads, deque overflow, probend, and the final
//     "computation drained" latch all still go through it.
//
// probend() aborts the whole computation early (e.g. when a search finds
// its answer).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>

#include "core/env.hpp"
#include "machdep/backend.hpp"
#include "machdep/locks.hpp"
#include "machdep/stealdeque.hpp"
#include "util/check.hpp"

namespace force::core {

class AskforCore {
 public:
  explicit AskforCore(ForceEnvironment& env);
  ~AskforCore();

  AskforCore(const AskforCore&) = delete;
  AskforCore& operator=(const AskforCore&) = delete;

  enum class Outcome {
    kWork,  ///< a token was granted; caller must complete() afterwards
    kDone   ///< the computation is over (drained or probend)
  };

  /// Registers the calling thread as a worker for the fast path: binds it
  /// to one of the per-worker steal deques for the guard's lifetime, so
  /// its put() calls go to its own deque and its ask() calls pop LIFO
  /// before stealing. Purely an optimization - threads without a slot
  /// (seeders, oversubscribed teams, lock-only machines) fall back to the
  /// central queue and stealing, with identical semantics.
  class WorkerSlot {
   public:
    explicit WorkerSlot(AskforCore& core);
    ~WorkerSlot();
    WorkerSlot(const WorkerSlot&) = delete;
    WorkerSlot& operator=(const WorkerSlot&) = delete;
    [[nodiscard]] int slot() const { return slot_; }

   private:
    AskforCore& core_;
    int slot_;
    const void* saved_core_;
    int saved_slot_;
  };

  /// Adds a work token (callable from inside a granted task).
  void put(std::size_t token);

  /// Blocks until work is available or the computation completes.
  Outcome ask(std::size_t* token);

  /// Reports that the token most recently granted to this process has
  /// been fully processed (its put() calls, if any, already made).
  void complete();

  /// complete() for the current task fused with ask() for the next one.
  /// Semantically identical to the two calls in sequence; on the fast path
  /// the common case (next task from the caller's own deque) collapses the
  /// two inflight-counter updates into a single atomic subtract. On the
  /// lock engine it IS the two calls - same monitor passes as the seed.
  Outcome next(std::size_t* token);

  /// Ends the computation immediately; subsequent and pending ask()s
  /// return kDone. Idempotent.
  void probend();

  /// Re-arms the monitor for force-entry generation `gen`: a pooled team
  /// re-enters the same force (and so the same construct sites) many
  /// times, and the drained/probend latch must reset per entry. Leftover
  /// tokens of an aborted episode are discarded. No-op once the monitor
  /// has seen `gen`; must only run at episode boundaries (no worker
  /// inside ask()/complete()).
  void rearm_for(std::uint32_t gen);

  [[nodiscard]] bool ended() const;
  [[nodiscard]] std::size_t granted() const;

  /// True when this monitor runs the work-stealing fast path.
  [[nodiscard]] bool lock_free() const { return deques_ != nullptr; }

 private:
  friend class WorkerSlot;

  [[nodiscard]] int current_slot() const;
  int grab_slot();
  void release_slot(int slot);
  void grant_fast(int slot);
  Outcome ask_fast(std::size_t* token);
  Outcome ask_locked(std::size_t* token);

  ForceEnvironment& env_;
  std::unique_ptr<machdep::BasicLock> monitor_;
  std::deque<std::size_t> queue_;  // central queue, guarded by *monitor_
  int working_ = 0;                // lock engine only, guarded by *monitor_

  // Shared by both engines. The lock engine only touches them under the
  // monitor (the atomics are then just storage); the fast path reads them
  // lock-free.
  std::atomic<bool> ended_{false};
  /// True when ended_ was set by probend() rather than the drained latch.
  /// The distinction matters for seeding: a drain is provisional - put()
  /// racing behind it re-opens the monitor, so a seed put from inside the
  /// force (the leader puts, everyone works) is never silently lost when a
  /// sibling's first ask latched "drained" first - while a probend is
  /// final for the force entry and later put()s are dropped, as ever.
  std::atomic<bool> probend_{false};
  std::atomic<std::size_t> granted_{0};
  /// Force-entry generation this monitor was last (re-)armed for; atomic
  /// so the common "already armed" probe in rearm_for stays lock-free.
  std::atomic<std::uint32_t> seen_generation_{0};

  // Fast path only (null / unused on lock-only machines):
  int nslots_ = 0;
  std::unique_ptr<machdep::StealDeque[]> deques_;
  std::unique_ptr<std::atomic<bool>[]> slot_taken_;
  /// Per-slot grant accounting on its own cache line: the slot owner
  /// tallies grants with a relaxed increment (exclusive line, no
  /// contention) instead of two shared fetch-adds per grant; the tally is
  /// cumulative and granted() sums it, while the env-stats delta is
  /// flushed when the slot is released.
  struct alignas(64) SlotTally {
    std::atomic<std::uint64_t> grants{0};
    std::uint64_t stats_reported = 0;  // touched only at grab/release
  };
  std::unique_ptr<SlotTally[]> slot_tally_;
  /// Tokens queued anywhere (low 32 bits) and tasks being executed (high
  /// 32 bits), packed so one load decides termination race-free: a grant
  /// moves one unit from pending to working in a single atomic add, so no
  /// interleaving can show "0 pending, 0 working" while work is alive.
  std::atomic<std::uint64_t> inflight_{0};
  /// Hint that queue_ is nonempty, so the fast path only pays a monitor
  /// pass when there is central work to fetch.
  std::atomic<std::int64_t> central_count_{0};
};

/// Typed askfor: stores tasks by value (stable storage) and runs the
/// canonical worker loop. Every process of the force calls work() with the
/// same site-shared instance; any process may seed() or put() tasks.
///
/// Under the separate-process backends the monitor is a backend engine
/// keyed by the construct's site key (a fixed-capacity FIFO ring in the
/// MAP_SHARED arena under os-fork; a coordinator monitor under cluster); T
/// must then be trivially copyable, and the worker body receives a
/// reference to a process-local *copy* of the granted task - mutations do
/// not write back into the ring.
template <typename T>
class Askfor {
 public:
  explicit Askfor(ForceEnvironment& env, const std::string& key = "askfor")
      : env_(&env) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      ring_ = env.backend().make_askfor_ring(key, kForkRingCapacity,
                                             sizeof(T));
    } else {
      // Null engine + supported capability = the thread monitor below;
      // backends that cannot memcpy tasks across reject here.
      env.require(machdep::Capability::kNonTrivialPayloads,
                  "Askfor task type", key);
    }
    if (ring_ == nullptr) core_ = std::make_unique<AskforCore>(env);
  }

  /// Adds a task; thread-safe, callable before or during work().
  void put(T task) {
    maybe_rearm();
    if (ring_ != nullptr) {
      ring_->put(&task);
      return;
    }
    std::size_t token;
    {
      std::lock_guard<std::mutex> g(guard_);
      tasks_.push_back(std::move(task));
      token = tasks_.size() - 1;
    }
    core_->put(token);
  }

  /// The worker loop: repeatedly asks for work and runs
  /// `body(task, *this)`; the body may put() new tasks and may probend().
  /// Returns the number of tasks this process executed.
  std::size_t work(const std::function<void(T&, Askfor<T>&)>& body) {
    maybe_rearm();
    if (ring_ != nullptr) return work_ring(body);
    // Register with the dispatch fast path for the duration of the loop
    // (no-op on lock-only machines).
    AskforCore::WorkerSlot worker(*core_);
    std::size_t executed = 0;
    std::size_t token = 0;
    AskforCore::Outcome outcome = core_->ask(&token);
    while (outcome == AskforCore::Outcome::kWork) {
      T* task = nullptr;
      {
        std::lock_guard<std::mutex> g(guard_);
        task = &tasks_[token];
      }
      try {
        body(*task, *this);
      } catch (...) {
        core_->complete();
        throw;
      }
      ++executed;
      // Fused complete+ask: one inflight update when the next task comes
      // from this worker's own deque.
      outcome = core_->next(&token);
    }
    return executed;
  }

  /// Aborts the computation (e.g. a search hit).
  void probend() {
    maybe_rearm();
    if (ring_ != nullptr) {
      ring_->probend();
      return;
    }
    core_->probend();
  }

  [[nodiscard]] bool ended() const {
    if (ring_ != nullptr) return ring_->ended();
    return core_->ended();
  }
  [[nodiscard]] std::size_t granted() const {
    if (ring_ != nullptr) {
      return static_cast<std::size_t>(ring_->granted());
    }
    return core_->granted();
  }

 private:
  /// Ring capacity under os-fork; put() beyond this many queued-but-
  /// ungranted tasks is a checked error (the thread engines' unbounded
  /// stable storage cannot be shared across address spaces).
  static constexpr std::uint32_t kForkRingCapacity = 4096;

  /// Pooled teams re-enter the same force over long-lived construct sites:
  /// the first put/work/probend of a new force entry resets the previous
  /// entry's drained/probend latch. Tasks in tasks_ stay (grow-only
  /// storage invariant); only the dispatch state re-arms.
  void maybe_rearm() {
    if (ring_ != nullptr) {
      // The engine decides what re-arming means on its substrate (the
      // cluster monitor is born fresh per team, so its rearm is a no-op).
      ring_->rearm(env_->run_generation());
      return;
    }
    core_->rearm_for(env_->run_generation());
  }

  std::size_t work_ring(const std::function<void(T&, Askfor<T>&)>& body) {
    std::size_t executed = 0;
    // Raw storage instead of T{}: the grant memcpy fully initializes it,
    // and T need not be default constructible (only trivially copyable,
    // which the constructor already checked).
    alignas(T) unsigned char raw[sizeof(T)];
    T* task = reinterpret_cast<T*>(raw);
    while (ring_->ask(raw)) {
      try {
        body(*task, *this);
      } catch (...) {
        ring_->complete();
        throw;
      }
      ++executed;
      ring_->complete();
    }
    return executed;
  }

  ForceEnvironment* env_;
  std::unique_ptr<AskforCore> core_;  // thread backend only
  /// Backend monitor engine; null on the thread backend.
  std::unique_ptr<machdep::AskforRing> ring_;
  /// Guards growth of tasks_ only. The monitor lock cannot be reused
  /// (put() may be called while the caller does not hold it), and a plain
  /// mutex suffices: this is task *storage*, not dispatch.
  std::mutex guard_;
  /// Task storage. INVARIANT: tasks_ is a std::deque and only ever grows
  /// (push_back; never erase/clear/pop while workers run), so a reference
  /// obtained from tasks_[token] stays valid for the task's whole
  /// execution even while other threads put() concurrently - deque growth
  /// never relocates existing elements. Replacing the container or adding
  /// removal would break every outstanding `T&` held by worker bodies.
  std::deque<T> tasks_;
};

}  // namespace force::core
