// The Askfor monitor (paper §3.3, after Lusk & Overbeek [LO83]).
//
// "The most general concept for concurrent code segments ... provides a
// means of work distribution in cases where the degree of concurrency is
// not known at compile time. Rather, the program can request during run
// time that a new concurrent instance of the code segment is executed."
//
// AskforCore is the monitor: a queue of work tokens plus the bookkeeping
// needed to distinguish "no work right now, but a working process may
// still put() more" (wait) from "no work and nobody working" (done).
// Askfor<T> is the typed façade with the canonical worker loop.
//
// Waiting uses the monitor's generic lock plus poll-with-yield, the shape
// the Argonne monitor macros took on lock-only machines. probend() aborts
// the whole computation early (e.g. when a search finds its answer).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "machdep/locks.hpp"
#include "util/check.hpp"

namespace force::core {

class ForceEnvironment;

class AskforCore {
 public:
  explicit AskforCore(ForceEnvironment& env);

  enum class Outcome {
    kWork,  ///< a token was granted; caller must complete() afterwards
    kDone   ///< the computation is over (drained or probend)
  };

  /// Adds a work token (callable from inside a granted task).
  void put(std::size_t token);

  /// Blocks until work is available or the computation completes.
  Outcome ask(std::size_t* token);

  /// Reports that the token most recently granted to this process has
  /// been fully processed (its put() calls, if any, already made).
  void complete();

  /// Ends the computation immediately; subsequent and pending ask()s
  /// return kDone. Idempotent.
  void probend();

  [[nodiscard]] bool ended() const;
  [[nodiscard]] std::size_t granted() const;

 private:
  ForceEnvironment& env_;
  std::unique_ptr<machdep::BasicLock> monitor_;
  std::deque<std::size_t> queue_;   // guarded by *monitor_
  int working_ = 0;                 // guarded by *monitor_
  bool ended_ = false;              // guarded by *monitor_
  std::size_t granted_ = 0;         // guarded by *monitor_
};

/// Typed askfor: stores tasks by value (stable storage) and runs the
/// canonical worker loop. Every process of the force calls work() with the
/// same site-shared instance; any process may seed() or put() tasks.
template <typename T>
class Askfor {
 public:
  explicit Askfor(ForceEnvironment& env) : core_(env), guard_(nullptr) {
    // Task storage needs its own tiny mutex: deque growth must not race.
    // (The monitor lock cannot be reused: put() may be called while the
    // caller does not hold it.)
    guard_ = std::make_unique<std::mutex>();
  }

  /// Adds a task; thread-safe, callable before or during work().
  void put(T task) {
    std::size_t token;
    {
      std::lock_guard<std::mutex> g(*guard_);
      tasks_.push_back(std::move(task));
      token = tasks_.size() - 1;
    }
    core_.put(token);
  }

  /// The worker loop: repeatedly asks for work and runs
  /// `body(task, *this)`; the body may put() new tasks and may probend().
  /// Returns the number of tasks this process executed.
  std::size_t work(const std::function<void(T&, Askfor<T>&)>& body) {
    std::size_t executed = 0;
    std::size_t token = 0;
    while (core_.ask(&token) == AskforCore::Outcome::kWork) {
      T* task = nullptr;
      {
        std::lock_guard<std::mutex> g(*guard_);
        task = &tasks_[token];  // deque: stable under push_back
      }
      try {
        body(*task, *this);
      } catch (...) {
        core_.complete();
        throw;
      }
      core_.complete();
      ++executed;
    }
    return executed;
  }

  /// Aborts the computation (e.g. a search hit).
  void probend() { core_.probend(); }

  [[nodiscard]] bool ended() const { return core_.ended(); }
  [[nodiscard]] std::size_t granted() const { return core_.granted(); }

 private:
  AskforCore core_;
  std::unique_ptr<std::mutex> guard_;
  std::deque<T> tasks_;  // grows only; references stay valid
};

}  // namespace force::core
