// Critical sections (paper §3.4).
//
// "Critical sections implement the mutual exclusion condition. Only one
// process at a given time is allowed to execute within the critical
// section." Each Critical ... End critical pair in Force source owns one
// generic lock; here each CriticalSection object (usually addressed by
// construct site) owns one machine lock.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "machdep/locks.hpp"

namespace force::core {

class ForceEnvironment;

class CriticalSection {
 public:
  /// `label` names the section's lock in sentry reports.
  explicit CriticalSection(ForceEnvironment& env,
                           std::string label = "critical");

  /// Runs `body` under mutual exclusion. Exception-safe: the lock is
  /// released if the body throws.
  void enter(const std::function<void()>& body);

  /// RAII guard for callers that prefer scoped style.
  class Guard {
   public:
    explicit Guard(CriticalSection& cs) : cs_(cs) { cs_.lock_->acquire(); }
    ~Guard() { cs_.lock_->release(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    CriticalSection& cs_;
  };

  /// Number of times the section has been entered (diagnostic).
  [[nodiscard]] std::uint64_t entries() const { return entries_; }

 private:
  friend class Guard;
  std::unique_ptr<machdep::BasicLock> lock_;
  ForceEnvironment& env_;
  std::uint64_t entries_ = 0;  // guarded by *lock_
};

}  // namespace force::core
