#include "core/resolve.hpp"

#include <algorithm>
#include <numeric>

#include "core/env.hpp"
#include "util/check.hpp"

namespace force::core {

std::vector<int> resolve_partition(int np, const std::vector<int>& weights) {
  FORCE_CHECK(!weights.empty(), "Resolve needs at least one component");
  FORCE_CHECK(np >= static_cast<int>(weights.size()),
              "Resolve needs at least one process per component");
  for (int w : weights) FORCE_CHECK(w > 0, "component weights must be > 0");

  const int n = static_cast<int>(weights.size());
  const long long total_weight =
      std::accumulate(weights.begin(), weights.end(), 0LL);

  // Largest-remainder apportionment of the ideal shares np*w/W, then a
  // floor fix so every component runs on at least one process.
  std::vector<int> sizes(static_cast<std::size_t>(n), 0);
  std::vector<std::pair<long long, int>> remainders;  // (-remainder, idx)
  int assigned = 0;
  for (int i = 0; i < n; ++i) {
    const long long numer =
        static_cast<long long>(np) * weights[static_cast<std::size_t>(i)];
    sizes[static_cast<std::size_t>(i)] = static_cast<int>(numer / total_weight);
    assigned += sizes[static_cast<std::size_t>(i)];
    remainders.emplace_back(-(numer % total_weight), i);
  }
  std::sort(remainders.begin(), remainders.end());
  for (int k = 0; k < np - assigned; ++k) {
    sizes[static_cast<std::size_t>(
        remainders[static_cast<std::size_t>(k % n)].second)] += 1;
  }
  // Floor fix: a starved component takes one process from the largest.
  for (auto& size : sizes) {
    if (size == 0) {
      auto largest = std::max_element(sizes.begin(), sizes.end());
      FORCE_CHECK(*largest > 1, "partition floor fix impossible");
      --*largest;
      size = 1;
    }
  }
  FORCE_CHECK(std::accumulate(sizes.begin(), sizes.end(), 0) == np,
              "partition arithmetic error");
  return sizes;
}

ComponentAssignment assign_component(int proc0,
                                     const std::vector<int>& sizes) {
  int base = 0;
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    if (proc0 < base + sizes[c]) {
      return {static_cast<int>(c), proc0 - base, sizes[c]};
    }
    base += sizes[c];
  }
  FORCE_CHECK(false, "process rank beyond the partition");
}

ResolveState::ResolveState(ForceEnvironment& env,
                           const std::vector<int>& sizes)
    : sizes_(sizes) {
  component_barriers_.reserve(sizes_.size());
  int total = 0;
  for (int s : sizes_) {
    component_barriers_.push_back(env.make_barrier(s));
    total += s;
  }
  join_ = env.make_barrier(total);
}

BarrierAlgorithm& ResolveState::component_barrier(int component) {
  FORCE_CHECK(component >= 0 &&
                  component < static_cast<int>(component_barriers_.size()),
              "component index out of range");
  return *component_barriers_[static_cast<std::size_t>(component)];
}

}  // namespace force::core
