#include "core/askfor.hpp"

#include "core/env.hpp"

namespace force::core {

AskforCore::AskforCore(ForceEnvironment& env)
    : env_(env), monitor_(env.new_lock()) {}

void AskforCore::put(std::size_t token) {
  monitor_->acquire();
  if (!ended_) queue_.push_back(token);
  monitor_->release();
}

AskforCore::Outcome AskforCore::ask(std::size_t* token) {
  FORCE_CHECK(token != nullptr, "ask needs an output slot");
  for (;;) {
    monitor_->acquire();
    if (ended_) {
      monitor_->release();
      return Outcome::kDone;
    }
    if (!queue_.empty()) {
      *token = queue_.front();
      queue_.pop_front();
      ++working_;
      ++granted_;
      env_.stats().askfor_grants.fetch_add(1, std::memory_order_relaxed);
      monitor_->release();
      return Outcome::kWork;
    }
    if (working_ == 0) {
      // No work queued and nobody who could create any: the computation
      // has drained. Latch the end so every process agrees.
      ended_ = true;
      monitor_->release();
      return Outcome::kDone;
    }
    // Work may still appear: release the monitor and retry politely.
    monitor_->release();
    std::this_thread::yield();
  }
}

void AskforCore::complete() {
  monitor_->acquire();
  FORCE_CHECK(working_ > 0, "complete() without a granted task");
  --working_;
  monitor_->release();
}

void AskforCore::probend() {
  monitor_->acquire();
  ended_ = true;
  queue_.clear();
  monitor_->release();
}

bool AskforCore::ended() const {
  monitor_->acquire();
  const bool e = ended_;
  monitor_->release();
  return e;
}

std::size_t AskforCore::granted() const {
  monitor_->acquire();
  const std::size_t g = granted_;
  monitor_->release();
  return g;
}

}  // namespace force::core
