#include "core/askfor.hpp"

#include <optional>

#include "core/env.hpp"
#include "core/sentry.hpp"
#include "machdep/fiber.hpp"

namespace force::core {

namespace {

/// One pending/working unit in the packed inflight counter: pending in
/// the low 32 bits, working in the high 32. A grant adds kGrantDelta -
/// pending-1 and working+1 in a single atomic RMW.
constexpr std::uint64_t kWorkingOne = std::uint64_t{1} << 32;
constexpr std::uint64_t kGrantDelta = kWorkingOne - 1;

/// The calling thread's current worker binding. One binding per thread is
/// enough: a thread runs one work() loop at a time, and nested monitors
/// (a body driving a second Askfor) save and restore it via WorkerSlot.
struct TlsBinding {
  const void* core = nullptr;
  int slot = -1;
};
thread_local TlsBinding tls_binding;

}  // namespace

AskforCore::AskforCore(ForceEnvironment& env)
    : env_(env),
      monitor_(env.new_lock(machdep::LockRole::kMutex, "askfor.monitor")) {
  if (env.lock_free_dispatch()) {
    nslots_ = env.nproc();
    deques_ = std::make_unique<machdep::StealDeque[]>(
        static_cast<std::size_t>(nslots_));
    slot_taken_ = std::make_unique<std::atomic<bool>[]>(
        static_cast<std::size_t>(nslots_));
    slot_tally_ = std::make_unique<SlotTally[]>(
        static_cast<std::size_t>(nslots_));
    for (int i = 0; i < nslots_; ++i) {
      slot_taken_[i].store(false, std::memory_order_relaxed);
    }
  }
}

AskforCore::~AskforCore() = default;

// ---------------------------------------------------------------------------
// Worker-slot registration (fast path only; a no-op shell otherwise).
// ---------------------------------------------------------------------------

AskforCore::WorkerSlot::WorkerSlot(AskforCore& core)
    : core_(core),
      // Never bind a deque to an N:M pooled member: two members share one
      // OS thread, so a thread_local slot binding would be clobbered (and
      // dangle) across continuation switches. Slotless workers are the
      // documented fallback - central queue plus stealing, same semantics.
      slot_(machdep::on_fiber() ? -1 : core.grab_slot()),
      saved_core_(tls_binding.core),
      saved_slot_(tls_binding.slot) {
  tls_binding.core = &core_;
  tls_binding.slot = slot_;
}

AskforCore::WorkerSlot::~WorkerSlot() {
  tls_binding.core = saved_core_;
  tls_binding.slot = saved_slot_;
  core_.release_slot(slot_);
}

int AskforCore::current_slot() const {
  return tls_binding.core == this ? tls_binding.slot : -1;
}

int AskforCore::grab_slot() {
  if (deques_ == nullptr) return -1;
  for (int i = 0; i < nslots_; ++i) {
    bool expected = false;
    if (slot_taken_[i].compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
      return i;
    }
  }
  // More concurrent workers than nproc slots: work slotless (correct,
  // just steals instead of owning a deque).
  return -1;
}

void AskforCore::release_slot(int slot) {
  if (slot < 0) return;
  // Flush this slot's grant tally into the env stats (the tally itself is
  // cumulative; granted() sums it live). stats_reported needs no atomics:
  // it is only touched by the slot holder, and the release/acquire pair on
  // slot_taken_ hands it to the next holder.
  SlotTally& tally = slot_tally_[slot];
  const std::uint64_t grants = tally.grants.load(std::memory_order_relaxed);
  env_.stats().askfor_grants.fetch_add(grants - tally.stats_reported,
                                       std::memory_order_relaxed);
  tally.stats_reported = grants;
  // The deque stays owned by the core, not the slot holder: tokens left
  // behind (e.g. a body threw mid-episode) remain stealable, and the next
  // holder of the slot simply inherits them.
  slot_taken_[slot].store(false, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// put / ask / complete - engine dispatch.
// ---------------------------------------------------------------------------

void AskforCore::put(std::size_t token) {
  if (Sentry* sn = env_.sentry()) sn->fuzz();
  if (deques_ == nullptr) {
    // Lock engine: the Argonne monitor shape, one lock pass.
    monitor_->acquire();
    if (!probend_.load(std::memory_order_relaxed)) {
      // A drained latch that beat this put is provisional: with the seed
      // put inside the force (the leader puts, everyone works), a
      // sibling's first ask can find the queue empty with nobody working
      // and latch "drained" first - on a parked pool every member wakes
      // hot at once, so the race is live, not theoretical. The seed must
      // never be lost: re-open. Workers that already left their work()
      // loop just sit at the next barrier while the remaining members (at
      // least the seeder itself) drain the work - fewer hands, same
      // answer. A probend stays final: those tokens drop, as ever.
      ended_.store(false, std::memory_order_relaxed);
      queue_.push_back(token);
    }
    monitor_->release();
    return;
  }
  if (probend_.load(std::memory_order_acquire)) return;  // dropped, as ever
  // Count the token *before* it becomes visible so termination detection
  // can never see an empty system while a token is mid-publish.
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (ended_.load(std::memory_order_acquire)) {
    // Drained latch raced ahead of this seed (see the lock engine above):
    // re-open under the monitor. The latch cannot re-fire once the
    // fetch_add has landed - its double-check reads inflight under the
    // monitor - and ask_fast re-opens too when it sees tokens behind the
    // latch, so the seed survives either side of the race.
    monitor_->acquire();
    if (probend_.load(std::memory_order_relaxed)) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      monitor_->release();
      return;
    }
    ended_.store(false, std::memory_order_release);
    monitor_->release();
  }
  const int slot = current_slot();
  if (slot >= 0 && deques_[slot].push(token)) return;
  // Unregistered thread, or the bounded deque is full: central queue.
  monitor_->acquire();
  if (probend_.load(std::memory_order_relaxed)) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  } else {
    queue_.push_back(token);
    central_count_.fetch_add(1, std::memory_order_release);
  }
  monitor_->release();
}

AskforCore::Outcome AskforCore::ask(std::size_t* token) {
  FORCE_CHECK(token != nullptr, "ask needs an output slot");
  return deques_ != nullptr ? ask_fast(token) : ask_locked(token);
}

void AskforCore::grant_fast(int slot) {
  inflight_.fetch_add(kGrantDelta, std::memory_order_acq_rel);
  if (slot >= 0) {
    // Exclusive cache line: a relaxed increment, not a shared fetch-add.
    SlotTally& tally = slot_tally_[slot];
    tally.grants.store(tally.grants.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    return;
  }
  granted_.fetch_add(1, std::memory_order_relaxed);
  env_.stats().askfor_grants.fetch_add(1, std::memory_order_relaxed);
}

AskforCore::Outcome AskforCore::ask_fast(std::size_t* token) {
  const int slot = current_slot();
  Sentry* sn = env_.sentry();
  // Registered lazily, on the first unproductive pass: the watchdog then
  // sees "blocked in Askfor termination wait" if the loop never ends.
  std::optional<Sentry::WaitScope> wait;
  for (;;) {
    if (sn != nullptr) sn->fuzz();
    if (ended_.load(std::memory_order_acquire)) {
      if (probend_.load(std::memory_order_acquire) ||
          inflight_.load(std::memory_order_acquire) == 0) {
        return Outcome::kDone;
      }
      // Live tokens behind a drained latch: a seed was published right
      // after the latch fired (put() re-opens, but this asker may observe
      // the latch first). Re-open under the monitor and keep serving.
      monitor_->acquire();
      if (!probend_.load(std::memory_order_relaxed) &&
          inflight_.load(std::memory_order_acquire) != 0) {
        ended_.store(false, std::memory_order_release);
      }
      monitor_->release();
      continue;
    }
    // 1. Own deque, newest first (cache-warm, depth-first on task trees).
    if (slot >= 0 && deques_[slot].pop(token)) {
      grant_fast(slot);
      return Outcome::kWork;
    }
    // 2. Steal from the other workers, oldest first.
    for (int i = 0; i < nslots_; ++i) {
      const int victim = slot >= 0 ? (slot + 1 + i) % nslots_ : i;
      if (victim == slot) continue;
      if (deques_[victim].steal(token)) {
        grant_fast(slot);
        return Outcome::kWork;
      }
    }
    // 3. The central (slow-path) queue, only when the hint says nonempty.
    if (central_count_.load(std::memory_order_acquire) > 0) {
      monitor_->acquire();
      if (!queue_.empty()) {
        *token = queue_.front();
        queue_.pop_front();
        central_count_.fetch_sub(1, std::memory_order_release);
        monitor_->release();
        grant_fast(slot);
        return Outcome::kWork;
      }
      monitor_->release();
    }
    // 4. Termination: one load of the packed counter is authoritative -
    //    no token pending anywhere and nobody who could create one.
    if (inflight_.load(std::memory_order_acquire) == 0) {
      // Latch the decision under the monitor so every process agrees
      // (and so a racing probend cannot interleave half-way).
      monitor_->acquire();
      bool done = ended_.load(std::memory_order_relaxed);
      if (!done && inflight_.load(std::memory_order_acquire) == 0 &&
          queue_.empty()) {
        ended_.store(true, std::memory_order_release);
        done = true;
      }
      monitor_->release();
      if (done) return Outcome::kDone;
      continue;
    }
    // Work may still appear: retry politely.
    if (sn != nullptr && !wait.has_value()) {
      wait.emplace(sn, Sentry::WaitKind::kAskfor, this, "askfor");
    }
    machdep::member_yield();
  }
}

AskforCore::Outcome AskforCore::ask_locked(std::size_t* token) {
  Sentry* sn = env_.sentry();
  std::optional<Sentry::WaitScope> wait;
  for (;;) {
    monitor_->acquire();
    if (ended_.load(std::memory_order_relaxed)) {
      monitor_->release();
      return Outcome::kDone;
    }
    if (!queue_.empty()) {
      *token = queue_.front();
      queue_.pop_front();
      ++working_;
      granted_.fetch_add(1, std::memory_order_relaxed);
      env_.stats().askfor_grants.fetch_add(1, std::memory_order_relaxed);
      monitor_->release();
      return Outcome::kWork;
    }
    if (working_ == 0) {
      // No work queued and nobody who could create any: the computation
      // has drained. Latch the end so every process agrees.
      ended_.store(true, std::memory_order_relaxed);
      monitor_->release();
      return Outcome::kDone;
    }
    // Work may still appear: release the monitor and retry politely.
    monitor_->release();
    if (sn != nullptr && !wait.has_value()) {
      wait.emplace(sn, Sentry::WaitKind::kAskfor, this, "askfor");
    }
    machdep::member_yield();
  }
}

AskforCore::Outcome AskforCore::next(std::size_t* token) {
  FORCE_CHECK(token != nullptr, "next needs an output slot");
  if (deques_ != nullptr) {
    const int slot = current_slot();
    if (slot >= 0 && !ended_.load(std::memory_order_acquire) &&
        deques_[slot].pop(token)) {
      // The common case on task trees: finish one task, start its child.
      // complete() (working-1) and grant (pending-1, working+1) fuse into
      // pending-1 - one RMW, and the working count never transiently
      // drops, so termination detection only gets *more* conservative.
      // No underflow: the popped token was counted pending by put().
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      SlotTally& tally = slot_tally_[slot];
      tally.grants.store(tally.grants.load(std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
      return Outcome::kWork;
    }
  }
  // Own deque empty (or lock engine / no slot): the plain two-step path.
  complete();
  return ask(token);
}

void AskforCore::complete() {
  if (deques_ != nullptr) {
    const std::uint64_t old =
        inflight_.fetch_sub(kWorkingOne, std::memory_order_acq_rel);
    if ((old >> 32) == 0) {
      inflight_.fetch_add(kWorkingOne, std::memory_order_acq_rel);
      FORCE_CHECK(false, "complete() without a granted task");
    }
    return;
  }
  monitor_->acquire();
  FORCE_CHECK(working_ > 0, "complete() without a granted task");
  --working_;
  monitor_->release();
}

void AskforCore::rearm_for(std::uint32_t gen) {
  if (seen_generation_.load(std::memory_order_acquire) == gen) return;
  monitor_->acquire();
  if (seen_generation_.load(std::memory_order_relaxed) != gen) {
    // Fresh force entry on a reused site: clear the previous episode.
    // Tokens still queued belonged to a probend()ed computation - drain
    // them from the central queue and, on the fast path, from the deques
    // by stealing (safe: the caller is at an episode boundary, so no
    // deque owner is popping concurrently). The generation stamp is the
    // last write, so racing first-ops of the same entry see either the
    // old generation (and reset themselves, idempotently, under the
    // monitor) or a fully reset monitor.
    queue_.clear();
    working_ = 0;
    if (deques_ != nullptr) {
      std::size_t token;
      for (int i = 0; i < nslots_; ++i) {
        while (deques_[i].steal(&token)) {
        }
      }
      central_count_.store(0, std::memory_order_release);
      inflight_.store(0, std::memory_order_release);
    }
    probend_.store(false, std::memory_order_release);
    ended_.store(false, std::memory_order_release);
    seen_generation_.store(gen, std::memory_order_release);
  }
  monitor_->release();
}

void AskforCore::probend() {
  monitor_->acquire();
  // probend_ first: a reader that sees ended_ without the monitor must
  // never mistake an explicit end for a provisional drain and re-open it
  // (the re-open paths re-check probend_ under the monitor regardless).
  probend_.store(true, std::memory_order_release);
  ended_.store(true, std::memory_order_release);
  queue_.clear();
  central_count_.store(0, std::memory_order_release);
  monitor_->release();
}

bool AskforCore::ended() const {
  if (deques_ != nullptr) return ended_.load(std::memory_order_acquire);
  monitor_->acquire();
  const bool e = ended_.load(std::memory_order_relaxed);
  monitor_->release();
  return e;
}

std::size_t AskforCore::granted() const {
  if (deques_ != nullptr) {
    std::size_t g = granted_.load(std::memory_order_acquire);
    for (int i = 0; i < nslots_; ++i) {
      g += slot_tally_[i].grants.load(std::memory_order_relaxed);
    }
    return g;
  }
  monitor_->acquire();
  const std::size_t g = granted_.load(std::memory_order_relaxed);
  monitor_->release();
  return g;
}

}  // namespace force::core
