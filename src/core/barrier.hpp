// Barriers with barrier sections (paper §3.4, §4.2; algorithms per [AJ87],
// "Comparing Barrier Algorithms").
//
// Force semantics: at a barrier all processes wait for each other; one
// arbitrary process then executes the barrier section while all others
// remain suspended; when it leaves the section, everyone proceeds. A
// barrier must be reusable (programs put them inside sequential loops).
//
// Four algorithms are provided, matching the families [AJ87] compares:
//
//   * paper-lock    - built from generic Force locks only (two turnstiles
//                     and a counter), the shape a lock-only machine uses;
//   * central-sense - one atomic counter + sense reversal;
//   * tree          - binary combining tree arrival, sense-reversed release;
//   * dissemination - log2(P) rounds of pairwise signalling (no natural
//                     champion, so the section costs one extra mini-phase).
//
// All algorithms implement the same interface and all support sections, so
// bench E2 can sweep them under identical workloads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "machdep/backend.hpp"
#include "machdep/locks.hpp"

namespace force::core {

class ForceEnvironment;

/// A reusable barrier over a fixed set of `width` processes (0-based ids).
class BarrierAlgorithm {
 public:
  virtual ~BarrierAlgorithm() = default;

  /// Waits for all processes; `section` (may be empty) runs exactly once
  /// per episode, by exactly one process, while the others are suspended.
  virtual void arrive(int proc0, const std::function<void()>& section) = 0;
  void arrive(int proc0) { arrive(proc0, no_section()); }

  /// The canonical empty barrier section. The no-section overload used to
  /// materialize a fresh std::function temporary from nullptr at every
  /// call; all no-section arrivals now share this one empty instance, and
  /// every algorithm routes through run_section()/has_section() below so
  /// the emptiness check lives in exactly one place.
  static const std::function<void()>& no_section();

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual int width() const = 0;

 protected:
  /// Runs `section` iff it has a target; never throws on an empty one.
  static void run_section(const std::function<void()>& section) {
    if (section) section();
  }
  static bool has_section(const std::function<void()>& section) {
    return static_cast<bool>(section);
  }
};

/// The lock-only barrier: mutex lock + two turnstile locks + counter, the
/// construction available on every 1989 machine (cf. the BARWIN / BARWOT /
/// ZZNBAR environment variables in the paper's macro expansion).
class PaperLockBarrier final : public BarrierAlgorithm {
 public:
  using BarrierAlgorithm::arrive;
  PaperLockBarrier(ForceEnvironment& env, int width);
  void arrive(int proc0, const std::function<void()>& section) override;
  const char* name() const override { return "paper-lock"; }
  int width() const override { return width_; }

 private:
  int width_;
  int count_ = 0;  // guarded by *mutex_
  std::unique_ptr<machdep::BasicLock> mutex_;
  std::unique_ptr<machdep::BasicLock> turnstile1_;  // starts locked
  std::unique_ptr<machdep::BasicLock> turnstile2_;  // starts unlocked
};

/// Central counter with sense reversal; the classic shared-memory barrier.
class CentralSenseBarrier final : public BarrierAlgorithm {
 public:
  using BarrierAlgorithm::arrive;
  explicit CentralSenseBarrier(int width);
  void arrive(int proc0, const std::function<void()>& section) override;
  const char* name() const override { return "central-sense"; }
  int width() const override { return width_; }

 private:
  int width_;
  std::atomic<int> count_;
  std::atomic<std::uint32_t> sense_{0};
  std::vector<std::uint32_t> local_sense_;  // one slot per process, padded
};

/// Binary combining tree: arrivals propagate up; the root (champion) runs
/// the section and flips the global sense.
class TreeBarrier final : public BarrierAlgorithm {
 public:
  using BarrierAlgorithm::arrive;
  explicit TreeBarrier(int width);
  void arrive(int proc0, const std::function<void()>& section) override;
  const char* name() const override { return "tree"; }
  int width() const override { return width_; }

 private:
  // One cache line per process: its arrival stamp (read by the parent in
  // the combining tree) and its private episode counter.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> arrival{0};
    std::uint64_t episode = 0;
  };
  int width_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> release_{0};
};

/// Dissemination barrier: ceil(log2 P) rounds; process i signals
/// (i + 2^r) mod P each round. Symmetric, no champion: when a section is
/// requested, process 0 runs it behind an extra release flag.
class DisseminationBarrier final : public BarrierAlgorithm {
 public:
  using BarrierAlgorithm::arrive;
  explicit DisseminationBarrier(int width);
  void arrive(int proc0, const std::function<void()>& section) override;
  const char* name() const override { return "dissemination"; }
  int width() const override { return width_; }

 private:
  struct alignas(64) Flag {
    std::atomic<std::uint64_t> stamp{0};
  };
  struct alignas(64) Episode {
    std::uint64_t value = 0;
  };
  int width_;
  int rounds_;
  std::vector<Flag> flags_;  // flags_[proc * rounds_ + round], episode-stamped
  std::vector<Episode> episode_;  // per-process episode counter
  std::atomic<std::uint64_t> section_done_{0};
};

/// Adapter over the selected backend's keyed BarrierEngine - the barrier
/// that spans separate address spaces (futex words in the MAP_SHARED arena
/// under os-fork; coordinator RPCs under cluster). Core never names the
/// substrate: ForceEnvironment::make_process_shared_barrier asks the
/// backend for an engine and wraps it here.
class EngineBarrier final : public BarrierAlgorithm {
 public:
  using BarrierAlgorithm::arrive;
  EngineBarrier(int width, std::unique_ptr<machdep::BarrierEngine> engine);
  void arrive(int proc0, const std::function<void()>& section) override;
  const char* name() const override { return engine_->name(); }
  int width() const override { return width_; }

 private:
  int width_;
  std::unique_ptr<machdep::BarrierEngine> engine_;
};

/// Names accepted by make_barrier / ForceConfig::barrier_algorithm.
std::vector<std::string> barrier_algorithm_names();

/// Factory; throws on unknown names.
std::unique_ptr<BarrierAlgorithm> make_barrier_algorithm(
    const std::string& name, ForceEnvironment& env, int width);

}  // namespace force::core
