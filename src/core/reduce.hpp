// Reductions over the force (extension; construction per paper §4.2).
//
// The Force's own reduction idiom is "private partial + critical section
// + barrier", spelled out in every numerical program. This header packages
// that idiom as a construct, in the two shapes the machine-independent
// layer can build from the low-level primitives:
//
//   * kCritical  - every process adds its contribution under one lock,
//                  then a barrier publishes the result (O(P) serialized
//                  lock passes: the faithful Force idiom);
//   * kTournament - pairwise combining over per-process slots along the
//                  tree-barrier schedule (O(log P) depth, no locks).
//
// Both return the reduced value to every process (allreduce semantics),
// and both are reusable across episodes. The ablation bench (E2b in
// EXPERIMENTS.md) contrasts their traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "core/barrier.hpp"
#include "core/critical.hpp"
#include "core/env.hpp"
#include "machdep/backend.hpp"
#include "machdep/fiber.hpp"

namespace force::core {

enum class ReduceStrategy {
  kCritical,   ///< lock-serialized accumulation (the Force idiom)
  kTournament  ///< pairwise combining tree (log-depth extension)
};

/// Shared state of one reduction site for payload T.
/// T must be copyable; `combine` must be associative and commutative
/// (contributions arrive in no particular order).
template <typename T>
class Reduction {
 public:
  /// `key` is the construct's stable site key; separate-process backends
  /// key the site's engine state (accumulator, arrival count, result) by
  /// it (thread backends keep them as members, and only use the key to
  /// label the critical section in sentry reports).
  Reduction(ForceEnvironment& env, int width,
            const std::string& key = "reduce")
      : width_(width) {
    // A backend reduction engine runs the faithful critical idiom across
    // its address spaces: accumulate under a keyed lock, champion snapshot
    // at the keyed barrier. The payload crosses by memcpy, so backends
    // that hand out engines reject non-trivially-copyable types.
    if constexpr (std::is_trivially_copyable_v<T>) {
      site_ = env.backend().make_reduction_site(key, width_, sizeof(T),
                                                alignof(T));
    } else {
      // Null engine + supported capability = the thread shapes below.
      env.require(machdep::Capability::kNonTrivialPayloads,
                  "Reduction payload", key);
    }
    if (site_ != nullptr) return;
    critical_ = std::make_unique<CriticalSection>(env, "reduce@" + key);
    barrier_ = env.make_barrier(width);
    // vector(count) rather than resize(): Slot holds an atomic, so it is
    // not MoveInsertable, which resize() formally requires.
    slots_ = std::vector<Slot>(static_cast<std::size_t>(width));
  }

  /// Contributes `local` and returns the combined value of all width
  /// contributions of this episode. Every process of the team must call
  /// (SPMD); the identity element is the first contribution itself, so no
  /// identity value is needed.
  T allreduce(int me0, const T& local, const std::function<T(T, T)>& combine,
              ReduceStrategy strategy, T* shared_target = nullptr) {
    FORCE_CHECK(me0 >= 0 && me0 < width_, "bad reduce process id");
    if (site_ != nullptr) {
      // The tournament's per-process slots cannot cross address spaces;
      // the engine runs the faithful critical idiom regardless of the
      // requested strategy.
      const machdep::ReductionSite::Combine fold =
          [&combine](void* acc, const void* contribution) {
            T* a = static_cast<T*>(acc);
            *a = combine(*a, *static_cast<const T*>(contribution));
          };
      // Raw storage: the engine's result memcpy fully initializes it.
      alignas(T) unsigned char raw[sizeof(T)];
      site_->allreduce(me0, &local, raw, shared_target, fold);
      return *reinterpret_cast<T*>(raw);
    }
    if (strategy == ReduceStrategy::kCritical) {
      return allreduce_critical(me0, local, combine, shared_target);
    }
    return allreduce_tournament(me0, local, combine, shared_target);
  }

 private:
  T allreduce_critical(int me0, const T& local,
                       const std::function<T(T, T)>& combine,
                       T* shared_target) {
    critical_->enter([&] {
      if (arrived_ == 0) {
        accumulator_ = local;
      } else {
        accumulator_ = combine(accumulator_, local);
      }
      ++arrived_;
    });
    // The barrier section snapshots the total and re-arms the episode
    // while every process is parked - no second barrier needed. A shared
    // target is written here, by the single section executor, so the
    // store is race-free and visible to everyone leaving the barrier.
    barrier_->arrive(me0, [this, shared_target] {
      result_ = accumulator_;
      arrived_ = 0;
      if (shared_target != nullptr) *shared_target = result_;
    });
    return result_;
  }

  T allreduce_tournament(int me0, const T& local,
                         const std::function<T(T, T)>& combine,
                         T* shared_target) {
    Slot& mine = slots_[static_cast<std::size_t>(me0)];
    mine.value = local;
    const std::uint64_t ep = ++mine.episode;
    // Combine along the same pairwise schedule as TreeBarrier: rank p
    // collects rank p + 2^r while p is a multiple of 2^(r+1).
    for (int r = 0; (1 << r) < width_; ++r) {
      const int span = 1 << (r + 1);
      if (me0 % span == 0) {
        const int child = me0 + (1 << r);
        if (child < width_) {
          Slot& theirs = slots_[static_cast<std::size_t>(child)];
          // Wait for the child to have *fully combined its subtree* for
          // this episode: it bumps `combined` after losing round r.
          wait_for(theirs.combined, ep);
          mine.value = combine(mine.value, theirs.value);
        }
      } else {
        mine.combined.store(ep, std::memory_order_release);
        mine.combined.notify_all();
        break;
      }
    }
    if (me0 == 0) {
      mine.combined.store(ep, std::memory_order_release);
      result_ = mine.value;
      // Single-writer point: the champion holds the only complete value.
      if (shared_target != nullptr) *shared_target = result_;
      broadcast_.store(ep, std::memory_order_release);
      broadcast_.notify_all();
    } else {
      wait_for(broadcast_, ep);
    }
    // A trailing barrier keeps the episode reusable: nobody may overwrite
    // its slot while a parent could still read it.
    barrier_->arrive(me0);
    return result_;
  }

  static void wait_for(const std::atomic<std::uint64_t>& flag,
                       std::uint64_t ep) {
    for (int probe = 0; probe < 64; ++probe) {
      if (flag.load(std::memory_order_acquire) >= ep) return;
    }
    if (machdep::on_fiber()) {
      // N:M pooled member: the stamp may come from a sibling continuation
      // on this same worker thread - yield to it instead of sleeping.
      while (flag.load(std::memory_order_acquire) < ep) {
        machdep::member_yield();
      }
      return;
    }
    for (;;) {
      const std::uint64_t v = flag.load(std::memory_order_acquire);
      if (v >= ep) return;
      flag.wait(v, std::memory_order_relaxed);
    }
  }

  struct alignas(64) Slot {
    T value{};
    std::uint64_t episode = 0;
    std::atomic<std::uint64_t> combined{0};
  };

  int width_;
  std::unique_ptr<CriticalSection> critical_;  // thread backend only
  std::unique_ptr<BarrierAlgorithm> barrier_;  // thread backend only
  /// Backend reduction engine; null on the thread backend, which keeps
  /// the two strategy shapes below.
  std::unique_ptr<machdep::ReductionSite> site_;
  std::vector<Slot> slots_;
  // kCritical state (guarded by critical_ / published by the barrier):
  T accumulator_{};
  int arrived_ = 0;
  T result_{};
  std::atomic<std::uint64_t> broadcast_{0};
};

}  // namespace force::core
