#include "core/barrier.hpp"

#include <bit>
#include <thread>

#include "core/env.hpp"
#include "machdep/fiber.hpp"
#include "util/check.hpp"

namespace force::core {

namespace {

/// Spin-with-yield wait on an atomic until `pred(value)` holds. Uses the
/// C++20 futex-style wait once polite spinning has not paid off, so the
/// barrier stays live with more processes than CPUs. An N:M pooled member
/// must not sleep in the kernel instead: the arrival it waits for may
/// belong to a sibling member multiplexed onto the same worker thread, so
/// it yields its continuation and lets the worker run the sibling.
template <typename T, typename Pred>
void wait_until(const std::atomic<T>& a, Pred pred) {
  for (int probe = 0; probe < 64; ++probe) {
    if (pred(a.load(std::memory_order_acquire))) return;
  }
  if (machdep::on_fiber()) {
    while (!pred(a.load(std::memory_order_acquire))) {
      machdep::member_yield();
    }
    return;
  }
  for (;;) {
    T v = a.load(std::memory_order_acquire);
    if (pred(v)) return;
    a.wait(v, std::memory_order_relaxed);
  }
}

}  // namespace

const std::function<void()>& BarrierAlgorithm::no_section() {
  static const std::function<void()> kEmpty;
  return kEmpty;
}

// ---------------------------------------------------------------------------
// PaperLockBarrier: the reusable two-turnstile barrier built exclusively
// from generic Force locks (binary semaphores) - the construction available
// on every 1989 machine. The barrier section runs in the last arriver,
// which holds the entry mutex, so all other processes are provably parked
// before turnstile 1.
// ---------------------------------------------------------------------------

PaperLockBarrier::PaperLockBarrier(ForceEnvironment& env, int width)
    : width_(width),
      mutex_(env.new_lock(machdep::LockRole::kMutex, "barrier.mutex")),
      turnstile1_(env.new_lock(machdep::LockRole::kSemaphore,
                               "barrier.turnstile1")),
      turnstile2_(env.new_lock(machdep::LockRole::kSemaphore,
                               "barrier.turnstile2")) {
  FORCE_CHECK(width_ > 0, "barrier width must be positive");
  turnstile1_->acquire();  // phase-1 gate starts closed
}

void PaperLockBarrier::arrive(int proc0, const std::function<void()>& section) {
  FORCE_CHECK(proc0 >= 0 && proc0 < width_, "barrier process id out of range");
  // Phase 1: count arrivals; the last arriver re-arms the phase-2 gate,
  // runs the barrier section and opens the phase-1 gate.
  mutex_->acquire();
  ++count_;
  if (count_ == width_) {
    turnstile2_->acquire();
    run_section(section);
    turnstile1_->release();
  }
  mutex_->release();
  turnstile1_->acquire();  // pass the gate...
  turnstile1_->release();  // ...and hand the baton to the next process

  // Phase 2: count departures; the last process out re-arms the phase-1
  // gate and opens phase 2, making the barrier safely reusable.
  mutex_->acquire();
  --count_;
  if (count_ == 0) {
    turnstile1_->acquire();
    turnstile2_->release();
  }
  mutex_->release();
  turnstile2_->acquire();
  turnstile2_->release();
}

// ---------------------------------------------------------------------------
// CentralSenseBarrier
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kSenseStride = 16;  // 64B per process slot
}

CentralSenseBarrier::CentralSenseBarrier(int width)
    : width_(width),
      count_(0),
      local_sense_(static_cast<std::size_t>(width) * kSenseStride, 0) {
  FORCE_CHECK(width_ > 0, "barrier width must be positive");
}

void CentralSenseBarrier::arrive(int proc0,
                                 const std::function<void()>& section) {
  FORCE_CHECK(proc0 >= 0 && proc0 < width_, "barrier process id out of range");
  std::uint32_t& mine =
      local_sense_[static_cast<std::size_t>(proc0) * kSenseStride];
  mine ^= 1u;
  if (count_.fetch_add(1, std::memory_order_acq_rel) == width_ - 1) {
    // Champion: everyone else has arrived and is (or will be) waiting on
    // the sense word; safe to run the section and flip.
    count_.store(0, std::memory_order_relaxed);
    run_section(section);
    sense_.store(mine, std::memory_order_release);
    sense_.notify_all();
  } else {
    const std::uint32_t want = mine;
    wait_until(sense_, [want](std::uint32_t v) { return v == want; });
  }
}

// ---------------------------------------------------------------------------
// TreeBarrier: pairwise combining by rank. In round r, ranks that are
// multiples of 2^(r+1) collect the arrival of rank + 2^r; other ranks
// publish their arrival stamp and drop to the release wait. Rank 0 ends up
// the champion, runs the section, and publishes the release stamp.
// ---------------------------------------------------------------------------

TreeBarrier::TreeBarrier(int width) : width_(width), slots_(width) {
  FORCE_CHECK(width_ > 0, "barrier width must be positive");
}

void TreeBarrier::arrive(int proc0, const std::function<void()>& section) {
  FORCE_CHECK(proc0 >= 0 && proc0 < width_, "barrier process id out of range");
  Slot& me = slots_[static_cast<std::size_t>(proc0)];
  const std::uint64_t ep = ++me.episode;

  for (int r = 0; (1 << r) < width_; ++r) {
    const int span = 1 << (r + 1);
    if (proc0 % span == 0) {
      const int child = proc0 + (1 << r);
      if (child < width_) {
        wait_until(slots_[static_cast<std::size_t>(child)].arrival,
                   [ep](std::uint64_t v) { return v >= ep; });
      }
    } else {
      // Subtree fully combined (rounds 0..r-1 won); report and stop.
      me.arrival.store(ep, std::memory_order_release);
      me.arrival.notify_all();
      break;
    }
  }

  if (proc0 == 0) {
    run_section(section);
    release_.store(ep, std::memory_order_release);
    release_.notify_all();
  } else {
    wait_until(release_, [ep](std::uint64_t v) { return v >= ep; });
  }
}

// ---------------------------------------------------------------------------
// DisseminationBarrier
// ---------------------------------------------------------------------------

DisseminationBarrier::DisseminationBarrier(int width)
    : width_(width),
      rounds_(width > 1 ? std::bit_width(static_cast<unsigned>(width - 1))
                        : 0),
      flags_(static_cast<std::size_t>(width) *
             static_cast<std::size_t>(rounds_ == 0 ? 1 : rounds_)),
      episode_(static_cast<std::size_t>(width)) {
  FORCE_CHECK(width_ > 0, "barrier width must be positive");
}

void DisseminationBarrier::arrive(int proc0,
                                  const std::function<void()>& section) {
  FORCE_CHECK(proc0 >= 0 && proc0 < width_, "barrier process id out of range");
  const std::uint64_t ep = ++episode_[static_cast<std::size_t>(proc0)].value;
  const auto stride = static_cast<std::size_t>(rounds_ == 0 ? 1 : rounds_);

  for (int r = 0; r < rounds_; ++r) {
    const int dest = (proc0 + (1 << r)) % width_;
    Flag& out = flags_[static_cast<std::size_t>(dest) * stride +
                       static_cast<std::size_t>(r)];
    out.stamp.store(ep, std::memory_order_release);
    out.stamp.notify_all();
    Flag& in = flags_[static_cast<std::size_t>(proc0) * stride +
                      static_cast<std::size_t>(r)];
    wait_until(in.stamp, [ep](std::uint64_t v) { return v >= ep; });
  }

  if (has_section(section)) {
    // No natural champion: rank 0 runs the section behind one extra flag.
    if (proc0 == 0) {
      section();
      section_done_.store(ep, std::memory_order_release);
      section_done_.notify_all();
    } else {
      wait_until(section_done_, [ep](std::uint64_t v) { return v >= ep; });
    }
  }
}

// ---------------------------------------------------------------------------
// EngineBarrier
// ---------------------------------------------------------------------------

EngineBarrier::EngineBarrier(int width,
                             std::unique_ptr<machdep::BarrierEngine> engine)
    : width_(width), engine_(std::move(engine)) {
  FORCE_CHECK(width_ > 0, "barrier width must be positive");
  FORCE_CHECK(engine_ != nullptr, "EngineBarrier needs a barrier engine");
}

void EngineBarrier::arrive(int proc0, const std::function<void()>& section) {
  FORCE_CHECK(proc0 >= 0 && proc0 < width_, "barrier process id out of range");
  engine_->arrive(proc0, has_section(section) ? &section : nullptr);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::vector<std::string> barrier_algorithm_names() {
  return {"paper-lock", "central-sense", "tree", "dissemination"};
}

std::unique_ptr<BarrierAlgorithm> make_barrier_algorithm(
    const std::string& name, ForceEnvironment& env, int width) {
  if (name == "paper-lock")
    return std::make_unique<PaperLockBarrier>(env, width);
  if (name == "central-sense")
    return std::make_unique<CentralSenseBarrier>(width);
  if (name == "tree") return std::make_unique<TreeBarrier>(width);
  if (name == "dissemination")
    return std::make_unique<DisseminationBarrier>(width);
  FORCE_CHECK(false, "unknown barrier algorithm: " + name);
}

}  // namespace force::core
