#include "machdep/shm.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "util/check.hpp"

#ifdef __linux__
#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#else
#include <sys/mman.h>
#endif

namespace force::machdep::shm {

// --- futex layer -----------------------------------------------------------

void futex_wait(std::atomic<std::uint32_t>* word, std::uint32_t expected,
                std::int64_t timeout_ns) {
#ifdef __linux__
  timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_ns / 1'000'000'000);
  ts.tv_nsec = static_cast<long>(timeout_ns % 1'000'000'000);
  // No FUTEX_PRIVATE_FLAG: the queue must be keyed by the shared page so
  // waiters and wakers in different address spaces find each other.
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAIT,
          expected, timeout_ns > 0 ? &ts : nullptr, nullptr, 0);
#else
  // Portable fallback: bounded sleep-poll. Correct (callers re-check) but
  // slower to wake; the Linux container never takes this path.
  const std::int64_t slice_ns = std::min<std::int64_t>(timeout_ns, 1'000'000);
  if (word->load(std::memory_order_acquire) == expected) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(slice_ns));
  }
#endif
}

void futex_wake(std::atomic<std::uint32_t>* word, int count) {
#ifdef __linux__
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAKE,
          count < 0 ? INT32_MAX : count, nullptr, nullptr, 0);
#else
  (void)word;
  (void)count;  // sleep-poll waiters wake by themselves
#endif
}

// --- team poison / site slot -----------------------------------------------

namespace {
// One fork team per process at a time (the Force's one-driver model), and
// forked children are single-threaded, so plain globals suffice. They are
// atomics anyway so thread-mode unit tests of these primitives stay clean.
std::atomic<std::atomic<std::uint32_t>*> g_poison{nullptr};
std::atomic<char*> g_site_slot{nullptr};
std::atomic<std::size_t> g_site_cap{0};
}  // namespace

void set_team_poison(std::atomic<std::uint32_t>* word) {
  g_poison.store(word, std::memory_order_release);
}

std::atomic<std::uint32_t>* team_poison() {
  return g_poison.load(std::memory_order_acquire);
}

bool team_poisoned() {
  std::atomic<std::uint32_t>* w = team_poison();
  return w != nullptr && w->load(std::memory_order_acquire) != 0;
}

void check_poison() {
  if (team_poisoned()) throw TeamPoisoned();
}

void set_site_slot(char* slot, std::size_t capacity) {
  g_site_slot.store(slot, std::memory_order_release);
  g_site_cap.store(capacity, std::memory_order_release);
}

void note_site(const char* label) {
  char* slot = g_site_slot.load(std::memory_order_acquire);
  if (slot == nullptr || label == nullptr) return;
  const std::size_t cap = g_site_cap.load(std::memory_order_acquire);
  if (cap == 0) return;
  // Best-effort: torn reads by the parent can only garble the *text* of a
  // diagnostic, never correctness, and the buffer stays NUL-terminated.
  std::strncpy(slot, label, cap - 1);
  slot[cap - 1] = '\0';
}

// --- shared anonymous mappings ---------------------------------------------

SharedMapping::SharedMapping(std::size_t bytes) : bytes_(bytes) {
  FORCE_CHECK(bytes > 0, "shared mapping must have a size");
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  FORCE_CHECK(p != MAP_FAILED, "mmap(MAP_SHARED) failed for " +
                                   std::to_string(bytes) + " bytes");
  data_ = p;  // anonymous mappings are zero-filled, a valid initial state
              // for every shm state struct in this file
}

SharedMapping::~SharedMapping() {
  if (data_ != nullptr) ::munmap(data_, bytes_);
}

// --- process-shared lock ---------------------------------------------------

void shm_lock_acquire(ShmLockState& s) {
  std::uint32_t c = 0;
  if (s.word.compare_exchange_strong(c, 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
    return;  // uncontended
  }
  // Contended: advertise a waiter (state 2) and park. Acquiring via the
  // exchange leaves the word at 2, so the eventual release always wakes -
  // one spurious wake per contention burst, never a lost one.
  for (;;) {
    if (s.word.exchange(2, std::memory_order_acquire) == 0) return;
    check_poison();
    futex_wait(&s.word, 2);
  }
}

bool shm_lock_try_acquire(ShmLockState& s) {
  std::uint32_t c = 0;
  return s.word.compare_exchange_strong(c, 1, std::memory_order_acquire,
                                        std::memory_order_relaxed);
}

void shm_lock_release(ShmLockState& s) {
  // Binary-semaphore contract: any process may release. Releasing an
  // unlocked lock is a caller bug; the exchange makes it harmless here.
  if (s.word.exchange(0, std::memory_order_release) == 2) {
    futex_wake(&s.word, 1);
  }
}

// --- process-shared barrier ------------------------------------------------

void shm_barrier_arrive(ShmBarrierState& b, std::uint32_t width,
                        const std::function<void()>& section,
                        const char* label) {
  note_site(label);
  const std::uint32_t ep = b.episode.load(std::memory_order_acquire);
  const std::uint32_t arrived =
      b.count.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (arrived == width) {
    // Champion: everyone else is parked on the episode word. The count
    // reset is published by the episode store; a process re-arriving for
    // the next episode must first acquire-load episode != ep, ordering
    // its fetch_add after this reset.
    if (section) section();
    b.count.store(0, std::memory_order_relaxed);
    b.episode.store(ep + 1, std::memory_order_release);
    futex_wake(&b.episode, -1);
    return;
  }
  for (;;) {
    if (b.episode.load(std::memory_order_acquire) != ep) return;
    check_poison();
    futex_wait(&b.episode, ep);
  }
}

// --- process-shared full/empty cell ----------------------------------------

namespace {
constexpr std::uint32_t kEmpty = 0;
constexpr std::uint32_t kFull = 1;
constexpr std::uint32_t kBusy = 2;

/// CAS the cell from `from` to kBusy, waiting (bounded, poison-checked)
/// while it holds any other value.
void seize(ShmCellState& c, std::uint32_t from) {
  for (;;) {
    std::uint32_t s = from;
    if (c.state.compare_exchange_strong(s, kBusy, std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      return;
    }
    check_poison();
    futex_wait(&c.state, s);
  }
}

void publish(ShmCellState& c, std::uint32_t to) {
  c.state.store(to, std::memory_order_release);
  futex_wake(&c.state, -1);
}
}  // namespace

void shm_cell_produce(ShmCellState& c, void* payload, const void* src,
                      std::size_t n, const char* label) {
  note_site(label);
  seize(c, kEmpty);
  std::memcpy(payload, src, n);
  publish(c, kFull);
}

void shm_cell_consume(ShmCellState& c, const void* payload, void* dst,
                      std::size_t n, const char* label) {
  note_site(label);
  seize(c, kFull);
  std::memcpy(dst, payload, n);
  publish(c, kEmpty);
}

void shm_cell_copy(ShmCellState& c, const void* payload, void* dst,
                   std::size_t n, const char* label) {
  note_site(label);
  seize(c, kFull);
  std::memcpy(dst, payload, n);
  publish(c, kFull);
}

bool shm_cell_try_produce(ShmCellState& c, void* payload, const void* src,
                          std::size_t n) {
  std::uint32_t s = kEmpty;
  if (!c.state.compare_exchange_strong(s, kBusy, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
    return false;
  }
  std::memcpy(payload, src, n);
  publish(c, kFull);
  return true;
}

bool shm_cell_try_consume(ShmCellState& c, const void* payload, void* dst,
                          std::size_t n) {
  std::uint32_t s = kFull;
  if (!c.state.compare_exchange_strong(s, kBusy, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
    return false;
  }
  std::memcpy(dst, payload, n);
  publish(c, kEmpty);
  return true;
}

void shm_cell_void(ShmCellState& c) {
  // Force the state to empty. A Void overlapping an in-flight access
  // waits out the busy window, as on the original machines.
  for (;;) {
    std::uint32_t s = c.state.load(std::memory_order_acquire);
    if (s == kEmpty) return;
    if (s == kFull &&
        c.state.compare_exchange_strong(s, kEmpty, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      futex_wake(&c.state, -1);
      return;
    }
    check_poison();
    futex_wait(&c.state, kBusy);
  }
}

bool shm_cell_is_full(const ShmCellState& c) {
  return c.state.load(std::memory_order_acquire) == kFull;
}

// --- process-shared dispatch counter ---------------------------------------
// Mirrors DispatchCounter's lock-free engine (locks.cpp) exactly; plain
// atomic RMW is address-free, so the same algorithm is fork-safe as-is.

DispatchClaim shm_dispatch_claim(ShmDispatchState& d, std::int64_t want,
                                 std::int64_t limit) {
  FORCE_CHECK(want >= 1, "dispatch claim must want at least one trip");
  const std::int64_t t = d.value.fetch_add(want, std::memory_order_acq_rel);
  if (t >= limit) {
    // Clamp the runaway value back to `limit` (overflow guard; every trip
    // below limit has already been granted exactly once).
    std::int64_t cur = d.value.load(std::memory_order_relaxed);
    while (cur > limit &&
           !d.value.compare_exchange_weak(cur, limit,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
    }
    return {t, 0};
  }
  return {t, std::min(want, limit - t)};
}

DispatchClaim shm_dispatch_claim_fraction(ShmDispatchState& d,
                                          std::int64_t limit,
                                          std::int64_t divisor) {
  FORCE_CHECK(divisor >= 1, "dispatch divisor must be at least one");
  std::int64_t t = d.value.load(std::memory_order_relaxed);
  for (;;) {
    if (t >= limit) return {t, 0};
    const std::int64_t want = std::max<std::int64_t>(1, (limit - t) / divisor);
    if (d.value.compare_exchange_weak(t, t + want, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      return {t, want};
    }
  }
}

// --- process-shared askfor monitor -----------------------------------------

std::size_t shm_askfor_bytes(std::uint32_t capacity, std::uint32_t stride) {
  return sizeof(ShmAskforState) +
         static_cast<std::size_t>(capacity) * stride;
}

namespace {
std::byte* ring_base(ShmAskforState& a) {
  return reinterpret_cast<std::byte*>(&a + 1);
}

std::byte* ring_slot(ShmAskforState& a, std::uint32_t index) {
  return ring_base(a) + static_cast<std::size_t>(index % a.capacity) * a.stride;
}

void bump_version(ShmAskforState& a) {
  a.version.fetch_add(1, std::memory_order_release);
  futex_wake(&a.version, -1);
}
}  // namespace

void shm_askfor_init(void* blob, std::uint32_t capacity,
                     std::uint32_t stride) {
  FORCE_CHECK(capacity > 0 && stride > 0, "askfor ring needs a shape");
  auto* a = ::new (blob) ShmAskforState();
  a->capacity = capacity;
  a->stride = stride;
}

void shm_askfor_rearm(ShmAskforState& a, std::uint32_t gen) {
  if (a.seen_gen.load(std::memory_order_acquire) == gen) return;
  shm_lock_acquire(a.monitor);
  if (a.seen_gen.load(std::memory_order_relaxed) != gen) {
    // Fresh force entry on a reused site: clear the previous episode. Any
    // tokens still queued belonged to a probend()ed computation; the
    // stamp is the last write so racing first-ops of the same generation
    // see a fully reset ring.
    a.head = 0;
    a.tail = 0;
    a.working = 0;
    a.ended = 0;
    a.seen_gen.store(gen, std::memory_order_release);
  }
  shm_lock_release(a.monitor);
}

void shm_askfor_put(ShmAskforState& a, const void* task) {
  shm_lock_acquire(a.monitor);
  if (a.ended == kShmAskforProbend) {  // explicitly ended: dropped, as ever
    shm_lock_release(a.monitor);
    return;
  }
  // A drain is provisional: with the seed put() inside the force (only the
  // leader puts, everyone works), a sibling's first ask can find the ring
  // empty with nobody working and latch "drained" before the seed lands -
  // on a parked pool every member wakes hot at once, so the race is live,
  // not theoretical. The seed must never be lost: re-open the ring. The
  // raced siblings may already have left their work() loop; they just sit
  // at the next barrier while the remaining members (at least the seeder
  // itself) drain the work - fewer hands, same answer.
  if (a.ended == kShmAskforDrained) a.ended = 0;
  const bool full = a.tail - a.head >= a.capacity;
  if (full) {
    shm_lock_release(a.monitor);
    FORCE_CHECK(false,
                "os-fork askfor ring overflow; reduce fan-out or enlarge "
                "the per-site task capacity");
  }
  std::memcpy(ring_slot(a, a.tail), task, a.stride);
  ++a.tail;
  shm_lock_release(a.monitor);
  bump_version(a);
}

bool shm_askfor_ask(ShmAskforState& a, void* out, const char* label) {
  note_site(label);
  for (;;) {
    check_poison();
    shm_lock_acquire(a.monitor);
    if (a.ended != 0) {
      shm_lock_release(a.monitor);
      return false;
    }
    if (a.head != a.tail) {
      std::memcpy(out, ring_slot(a, a.head), a.stride);
      ++a.head;
      ++a.working;
      a.granted.fetch_add(1, std::memory_order_relaxed);
      shm_lock_release(a.monitor);
      return true;
    }
    if (a.working == 0) {
      // Drained: no tokens anywhere and nobody who could put() more.
      // Latch the end so every parked process leaves too.
      a.ended = kShmAskforDrained;
      shm_lock_release(a.monitor);
      bump_version(a);
      return false;
    }
    // No work *right now*, but a working process may still put() more:
    // sleep on the version word until something changes.
    const std::uint32_t v = a.version.load(std::memory_order_acquire);
    shm_lock_release(a.monitor);
    if (a.version.load(std::memory_order_acquire) == v) {
      futex_wait(&a.version, v);
    }
  }
}

void shm_askfor_complete(ShmAskforState& a) {
  shm_lock_acquire(a.monitor);
  --a.working;
  const bool drained = a.working == 0 && a.head == a.tail;
  shm_lock_release(a.monitor);
  // Wake parked askers so the drained case latches promptly (put() has
  // already bumped the version for the new-work case).
  if (drained) bump_version(a);
}

void shm_askfor_probend(ShmAskforState& a) {
  shm_lock_acquire(a.monitor);
  a.ended = kShmAskforProbend;
  shm_lock_release(a.monitor);
  bump_version(a);
}

bool shm_askfor_ended(const ShmAskforState& a) {
  auto& m = const_cast<ShmAskforState&>(a);
  shm_lock_acquire(m.monitor);
  const bool e = m.ended != 0;
  shm_lock_release(m.monitor);
  return e;
}

}  // namespace force::machdep::shm
