#include "machdep/fiber.hpp"

#include <exception>
#include <memory>
#include <thread>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FORCE_HAVE_UCONTEXT 1
#include <ucontext.h>
#endif

// AddressSanitizer tracks one shadow stack per thread; every continuation
// switch must be announced or ASan reports wild stack-use-after-return.
// The tsan CI job instead excludes the N:M tests (label "nm"): TSan cannot
// follow swapcontext without a parallel fiber API we do not need here.
#if defined(__SANITIZE_ADDRESS__)
#define FORCE_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FORCE_FIBER_ASAN 1
#endif
#endif
#if defined(FORCE_FIBER_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif

namespace force::machdep {

#if defined(FORCE_HAVE_UCONTEXT)

namespace {

struct Fiber {
  ucontext_t ctx{};
  std::unique_ptr<std::byte[]> stack;
  std::size_t stack_bytes = 0;
  std::function<void()> body;
  bool done = false;
  std::exception_ptr error;
#if defined(FORCE_FIBER_ASAN)
  void* asan_fake_stack = nullptr;  // saved when this fiber switches out
#endif
};

/// Per-thread scheduler state: the context to yield back to and the fiber
/// currently on the CPU (null when the thread runs its own stack).
struct SchedState {
  ucontext_t main_ctx{};
  Fiber* current = nullptr;
#if defined(FORCE_FIBER_ASAN)
  void* asan_fake_stack = nullptr;
  const void* main_stack_bottom = nullptr;
  std::size_t main_stack_size = 0;
#endif
};

thread_local SchedState* g_sched = nullptr;

#if defined(FORCE_FIBER_ASAN)
inline void asan_enter_fiber(SchedState* s, Fiber* f) {
  __sanitizer_start_switch_fiber(&s->asan_fake_stack, f->stack.get(),
                                 f->stack_bytes);
}
inline void asan_back_in_sched(SchedState* s) {
  __sanitizer_finish_switch_fiber(s->asan_fake_stack, nullptr, nullptr);
}
inline void asan_fiber_arrived(SchedState* s, Fiber* f, bool first) {
  __sanitizer_finish_switch_fiber(first ? nullptr : f->asan_fake_stack,
                                  &s->main_stack_bottom, &s->main_stack_size);
}
inline void asan_leave_fiber(SchedState* s, Fiber* f, bool final_exit) {
  __sanitizer_start_switch_fiber(final_exit ? nullptr : &f->asan_fake_stack,
                                 s->main_stack_bottom, s->main_stack_size);
}
#else
inline void asan_enter_fiber(SchedState*, Fiber*) {}
inline void asan_back_in_sched(SchedState*) {}
inline void asan_fiber_arrived(SchedState*, Fiber*, bool) {}
inline void asan_leave_fiber(SchedState*, Fiber*, bool) {}
#endif

/// makecontext passes ints only; the fiber pointer rides in two halves.
/// The shifts are split in two steps because a single `<< 32` / `>> 32`
/// is UB where uintptr_t is 32 bits wide (arm32 and friends are inside
/// the __unix__ guard); two 16-bit steps are defined at both widths and
/// yield 0 for the high half on a 32-bit host.
void trampoline(unsigned hi, unsigned lo) {
  auto addr = (static_cast<std::uintptr_t>(hi) << 16 << 16) |
              static_cast<std::uintptr_t>(lo);
  auto* f = reinterpret_cast<Fiber*>(addr);
  SchedState* s = g_sched;
  asan_fiber_arrived(s, f, /*first=*/true);
  try {
    f->body();
  } catch (...) {
    f->error = std::current_exception();
  }
  f->done = true;
  // Explicit final switch (not uc_link) so the ASan bookkeeping can mark
  // the fake stack for destruction on the way out.
  asan_leave_fiber(s, f, /*final_exit=*/true);
  swapcontext(&f->ctx, &s->main_ctx);
}

}  // namespace

bool on_fiber() {
  return g_sched != nullptr && g_sched->current != nullptr;
}

void member_yield() {
  SchedState* s = g_sched;
  if (s == nullptr || s->current == nullptr) {
    std::this_thread::yield();
    return;
  }
  Fiber* f = s->current;
  asan_leave_fiber(s, f, /*final_exit=*/false);
  swapcontext(&f->ctx, &s->main_ctx);
  // Resumed by the scheduler on the same thread; re-read its state.
  asan_fiber_arrived(g_sched, f, /*first=*/false);
}

MemberScheduler::MemberScheduler(std::size_t stack_bytes)
    : stack_bytes_(stack_bytes) {
  FORCE_CHECK(stack_bytes_ >= (16u << 10),
              "member continuation stacks need at least 16 KiB");
}

MemberScheduler::~MemberScheduler() = default;

void MemberScheduler::run(std::vector<std::function<void()>> bodies) {
  if (bodies.empty()) return;
  FORCE_CHECK(!on_fiber(), "member schedulers do not nest");

  SchedState state;
  SchedState* saved = g_sched;
  g_sched = &state;

  std::vector<Fiber> fibers(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    Fiber& f = fibers[i];
    f.body = std::move(bodies[i]);
    f.stack_bytes = stack_bytes_;
    if (!free_stacks_.empty()) {
      f.stack = std::move(free_stacks_.back());
      free_stacks_.pop_back();
    } else {
      f.stack = std::make_unique<std::byte[]>(stack_bytes_);
    }
    FORCE_CHECK(getcontext(&f.ctx) == 0, "getcontext failed");
    f.ctx.uc_stack.ss_sp = f.stack.get();
    f.ctx.uc_stack.ss_size = stack_bytes_;
    f.ctx.uc_link = &state.main_ctx;  // never taken; trampoline swaps out
    const auto addr = reinterpret_cast<std::uintptr_t>(&f);
    makecontext(&f.ctx, reinterpret_cast<void (*)()>(trampoline), 2,
                static_cast<unsigned>(addr >> 16 >> 16),
                static_cast<unsigned>(addr & 0xffffffffu));
  }

  std::size_t unfinished = fibers.size();
  while (unfinished > 0) {
    bool progressed = false;
    for (Fiber& f : fibers) {
      if (f.done) continue;
      state.current = &f;
      asan_enter_fiber(&state, &f);
      swapcontext(&state.main_ctx, &f.ctx);
      asan_back_in_sched(&state);
      state.current = nullptr;
      if (f.done) {
        --unfinished;
        progressed = true;
      }
    }
    // Every live member yielded without finishing: they are all waiting on
    // something outside this worker (another worker's member, a lock held
    // elsewhere). One OS yield keeps the oversubscribed host live.
    if (!progressed && unfinished > 0) std::this_thread::yield();
  }

  g_sched = saved;

  // All fibers have run to completion (the loop above only exits at
  // unfinished == 0), so their stacks are dead and safe to recycle - even
  // when a body threw, since the rethrow below happens off-fiber.
  for (Fiber& f : fibers) {
    free_stacks_.push_back(std::move(f.stack));
  }

  for (Fiber& f : fibers) {
    if (f.error) std::rethrow_exception(f.error);
  }
}

#else  // !FORCE_HAVE_UCONTEXT

bool on_fiber() { return false; }

void member_yield() { std::this_thread::yield(); }

MemberScheduler::MemberScheduler(std::size_t stack_bytes)
    : stack_bytes_(stack_bytes) {}

MemberScheduler::~MemberScheduler() = default;

void MemberScheduler::run(std::vector<std::function<void()>>) {
  FORCE_CHECK(false,
              "N:M member multiplexing needs ucontext (POSIX host); run the "
              "pool with pool_workers >= nproc on this platform");
}

#endif

}  // namespace force::machdep
