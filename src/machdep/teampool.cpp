#include "machdep/teampool.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <new>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "machdep/fiber.hpp"
#include "machdep/shm.hpp"
#include "util/check.hpp"
#include "util/timing.hpp"

namespace force::machdep {

// ---------------------------------------------------------------------------
// TeamPool (thread axis)
// ---------------------------------------------------------------------------

namespace {
/// Polite probes on the arm word before a worker commits to the futex-style
/// atomic wait: a force arriving within this window is picked up without a
/// kernel round trip, which is most of the pooled re-entry win. On a
/// single-hardware-thread host spinning is strictly harmful - the spinner
/// holds the only core against the very thread it is waiting for - so the
/// window collapses to zero there.
int park_spins() {
  static const int spins =
      std::thread::hardware_concurrency() > 1 ? 4096 : 0;
  return spins;
}
}  // namespace

TeamPool::TeamPool(int workers, std::size_t member_stack_bytes)
    : workers_(workers), member_stack_bytes_(member_stack_bytes) {
  FORCE_CHECK(workers_ > 0, "a team pool needs at least one worker");
  threads_.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

TeamPool::~TeamPool() {
  shutdown_.store(true, std::memory_order_release);
  arm_.fetch_add(1, std::memory_order_acq_rel);
  arm_.notify_all();
  threads_.clear();  // jthread joins
}

void TeamPool::worker_main(int w) {
  std::uint32_t seen = 0;
  // Lives as long as the worker so fiber stacks are warm across forces.
  MemberScheduler sched(member_stack_bytes_);
  for (;;) {
    std::uint32_t g = arm_.load(std::memory_order_acquire);
    for (int probe = park_spins(); probe > 0 && g == seen; --probe) {
      g = arm_.load(std::memory_order_acquire);
    }
    while (g == seen) {
      arm_.wait(seen, std::memory_order_relaxed);
      g = arm_.load(std::memory_order_acquire);
    }
    if (shutdown_.load(std::memory_order_acquire)) return;
    seen = g;
    run_members(w, job_, sched);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      done_.store(g, std::memory_order_release);
      done_.notify_all();
    }
  }
}

void TeamPool::run_members(int w, const Job& job, MemberScheduler& sched) {
  try {
    // The driver runs member 0 inline (TeamPool::run); worker w owns
    // members {w+1, w+1+W, ...}.
    if (w + 1 >= job.nproc) return;  // no member this force: idle pass
    if (job.nproc - 1 <= workers_) {
      // 1:1 fast path: this worker IS member w+1, on its own OS thread.
      (*job.entry)(w + 1);
      return;
    }
    // N:M: multiplex this worker's members as run-to-barrier continuations
    // so a member blocked on a sibling mapped to this same worker gets off
    // the CPU instead of deadlocking it.
    std::vector<std::function<void()>> bodies;
    for (int m = w + 1; m < job.nproc; m += workers_) {
      const std::function<void(int)>* entry = job.entry;
      bodies.emplace_back([entry, m] { (*entry)(m); });
    }
    sched.run(std::move(bodies));
  } catch (...) {
    std::lock_guard<std::mutex> g(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

SpawnStats TeamPool::run(int nproc, const std::function<void(int)>& entry) {
  FORCE_CHECK(nproc > 0, "a force needs at least one process");
  SpawnStats stats;
  stats.processes = nproc;

  if (nproc == 1) {
    // Solo force: the driver is the whole team - no wake, no join.
    entry(0);
    return stats;
  }

  const std::int64_t t0 = util::now_ns();
  job_.entry = &entry;
  job_.nproc = nproc;
  remaining_.store(workers_, std::memory_order_relaxed);
  // The arm generation publishes the job (release) and unparks the team.
  const std::uint32_t g = arm_.fetch_add(1, std::memory_order_acq_rel) + 1;
  arm_.notify_all();
  stats.create_ns = util::now_ns() - t0;

  // The driver is member 0: its work overlaps the workers' wakeup, and a
  // force entry costs one wake fewer. A member-0 exception is recorded
  // like any worker's - the team must still quiesce before rethrow.
  try {
    entry(0);
  } catch (...) {
    std::lock_guard<std::mutex> guard(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }

  const std::int64_t t1 = util::now_ns();
  std::uint32_t d = done_.load(std::memory_order_acquire);
  for (int probe = park_spins(); probe > 0 && d != g; --probe) {
    d = done_.load(std::memory_order_acquire);
  }
  while (d != g) {
    done_.wait(d, std::memory_order_relaxed);
    d = done_.load(std::memory_order_acquire);
  }
  stats.join_ns = util::now_ns() - t1;

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> guard(error_mutex_);
    err = first_error_;
    first_error_ = nullptr;  // the pool stays usable after an error
  }
  if (err) std::rethrow_exception(err);
  return stats;
}

// ---------------------------------------------------------------------------
// ForkTeamPool (process axis)
// ---------------------------------------------------------------------------

/// Head of the pool control mapping. arm carries the generation to
/// execute; children park on it with futex waits. poison reuses the shm
/// layer's team-poison protocol so a death releases every parked wait.
struct ForkTeamPool::PoolControl {
  std::atomic<std::uint32_t> arm{0};
  std::atomic<std::uint32_t> shutdown{0};
  std::atomic<std::uint32_t> poison{0};
};

/// Per-child slot: the generation it last completed, plus the same
/// last-site / error-text channel the one-shot os-fork backend uses.
struct ForkTeamPool::PoolSlot {
  std::atomic<std::uint32_t> done{0};
  char site[128];
  char error[256];
};

#if defined(__unix__) || defined(__APPLE__)

namespace {
constexpr std::int64_t kDeathGraceNs = 5'000'000'000;  // mirror run_os_fork
}

ForkTeamPool::ForkTeamPool(int nproc) : nproc_(nproc) {
  FORCE_CHECK(nproc_ > 0, "a force needs at least one process");
}

ForkTeamPool::~ForkTeamPool() { shutdown(); }

void ForkTeamPool::spawn(const std::function<void(int)>& entry) {
  const std::size_t bytes =
      sizeof(PoolControl) + static_cast<std::size_t>(nproc_) * sizeof(PoolSlot);
  control_ = std::make_unique<shm::SharedMapping>(bytes);
  ctl_ = ::new (control_->data()) PoolControl();
  slots_ = reinterpret_cast<PoolSlot*>(
      static_cast<std::byte*>(control_->data()) + sizeof(PoolControl));
  for (int p = 0; p < nproc_; ++p) {
    ::new (&slots_[p]) PoolSlot();
    std::strncpy(slots_[p].site, "pool-parked", sizeof(slots_[p].site) - 1);
    slots_[p].site[sizeof(slots_[p].site) - 1] = '\0';
    slots_[p].error[0] = '\0';
  }
  generation_ = 0;
  pids_.assign(static_cast<std::size_t>(nproc_), -1);

  shm::set_team_poison(&ctl_->poison);
  std::fflush(nullptr);

  for (int proc = 0; proc < nproc_; ++proc) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Resident child: park on the arm generation, execute each force,
      // report completion, park again. The fork-point stack frames (and
      // with them the COW copies everything `entry` refers to) stay live
      // for the child's whole lifetime because this loop never returns.
      PoolControl* ctl = ctl_;
      PoolSlot& slot = slots_[proc];
      shm::set_site_slot(slot.site, sizeof(slot.site));
      std::uint32_t seen = 0;
      for (;;) {
        std::uint32_t g = ctl->arm.load(std::memory_order_acquire);
        while (g == seen) {
          if (ctl->shutdown.load(std::memory_order_acquire) != 0) {
            std::fflush(nullptr);
            std::_Exit(0);
          }
          if (ctl->poison.load(std::memory_order_acquire) != 0) {
            std::fflush(nullptr);
            std::_Exit(kPoisonCollateralExit);
          }
          shm::futex_wait(&ctl->arm, seen);
          g = ctl->arm.load(std::memory_order_acquire);
        }
        seen = g;
        // shutdown() wakes the park via an arm bump (a wake alone could be
        // slept through: the futex word would still equal `seen`), so a new
        // generation can mean retirement, not work - re-check before running.
        if (ctl->shutdown.load(std::memory_order_acquire) != 0) {
          std::fflush(nullptr);
          std::_Exit(0);
        }
        try {
          entry(proc);
        } catch (const shm::TeamPoisoned&) {
          std::fflush(nullptr);
          std::_Exit(kPoisonCollateralExit);
        } catch (const std::exception& e) {
          std::strncpy(slot.error, e.what(), sizeof(slot.error) - 1);
          slot.error[sizeof(slot.error) - 1] = '\0';
          std::fflush(nullptr);
          std::_Exit(1);
        } catch (...) {
          std::strncpy(slot.error, "unknown exception",
                       sizeof(slot.error) - 1);
          std::fflush(nullptr);
          std::_Exit(1);
        }
        shm::note_site("pool-parked");
        slot.done.store(g, std::memory_order_release);
        shm::futex_wake(&slot.done, -1);
      }
    }
    if (pid < 0) {
      // fork failed mid-spawn: release and reap whatever exists.
      ctl_->shutdown.store(1, std::memory_order_release);
      ctl_->poison.store(1, std::memory_order_release);
      shm::futex_wake(&ctl_->arm, -1);
      for (int k = 0; k < proc; ++k) {
        if (pids_[static_cast<std::size_t>(k)] > 0) {
          int status = 0;
          ::waitpid(static_cast<pid_t>(pids_[static_cast<std::size_t>(k)]),
                    &status, 0);
        }
      }
      shm::set_team_poison(nullptr);
      control_.reset();
      ctl_ = nullptr;
      slots_ = nullptr;
      FORCE_CHECK(false, "fork() failed spawning pooled force process " +
                             std::to_string(proc + 1) + " of " +
                             std::to_string(nproc_));
    }
    pids_[static_cast<std::size_t>(proc)] = pid;
  }
  alive_ = true;
}

void ForkTeamPool::teardown_after_death() {
  shm::set_team_poison(nullptr);
  control_.reset();
  ctl_ = nullptr;
  slots_ = nullptr;
  pids_.clear();
  alive_ = false;
}

SpawnStats ForkTeamPool::run(PrivateSpace* space,
                             const std::function<void(int)>& entry) {
  SpawnStats stats;
  stats.processes = nproc_;

  const std::int64_t t0 = util::now_ns();
  // Privates are inherited ONCE, at first fork: resident children keep
  // their fork-point copy-on-write snapshot across runs, so a re-armed run
  // has nobody left to inherit a fresh copy (per-run state must go through
  // the shared arena - docs/PORTING.md, pooled contracts).
  if (space != nullptr && !space->materialized()) {
    space->materialize(nproc_, init_mode_for(ProcessModelKind::kOsFork));
    stats.bytes_copied = space->bytes_copied();
  }
  if (!alive_) spawn(entry);  // first run, or respawn after a death

  // Re-arm: clear any stale poison, then publish the new generation.
  ctl_->poison.store(0, std::memory_order_release);
  const std::uint32_t g = ++generation_;
  ctl_->arm.store(g, std::memory_order_release);
  shm::futex_wake(&ctl_->arm, -1);
  stats.create_ns = util::now_ns() - t0;

  // Join: wait for every slot to report this generation, reaping with
  // WNOHANG so a dead child is seen promptly (PR 4's robust-join design;
  // a pool child has no business exiting at all mid-run).
  const std::int64_t t1 = util::now_ns();
  int primary_proc = -1;
  pid_t primary_pid = -1;
  int primary_status = 0;
  std::int64_t poisoned_at = -1;
  bool killed_stragglers = false;
  bool any_death = false;

  for (;;) {
    bool all_done = true;
    if (!any_death) {
      for (int p = 0; p < nproc_; ++p) {
        if (slots_[p].done.load(std::memory_order_acquire) != g) {
          all_done = false;
          break;
        }
      }
      if (all_done) break;
    }

    for (int p = 0; p < nproc_; ++p) {
      auto& pid = pids_[static_cast<std::size_t>(p)];
      if (pid <= 0) continue;
      int status = 0;
      const pid_t r = ::waitpid(static_cast<pid_t>(pid), &status, WNOHANG);
      if (r == 0) continue;
      FORCE_CHECK(r == static_cast<pid_t>(pid),
                  "waitpid lost track of a pooled force process");
      pid = -1;
      any_death = true;
      const bool collateral =
          WIFEXITED(status) && WEXITSTATUS(status) == kPoisonCollateralExit;
      if (!collateral && primary_proc < 0) {
        primary_proc = p;
        primary_pid = r;
        primary_status = status;
        ctl_->poison.store(1, std::memory_order_release);
        shm::futex_wake(&ctl_->poison, -1);
        shm::futex_wake(&ctl_->arm, -1);
        poisoned_at = util::now_ns();
      }
    }

    if (any_death) {
      int live = 0;
      for (int p = 0; p < nproc_; ++p) {
        if (pids_[static_cast<std::size_t>(p)] > 0) ++live;
      }
      if (live == 0) break;
      if (poisoned_at >= 0 && !killed_stragglers &&
          util::now_ns() - poisoned_at > kDeathGraceNs) {
        for (int p = 0; p < nproc_; ++p) {
          if (pids_[static_cast<std::size_t>(p)] > 0) {
            ::kill(static_cast<pid_t>(pids_[static_cast<std::size_t>(p)]),
                   SIGKILL);
          }
        }
        killed_stragglers = true;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      continue;
    }

    // Park briefly on the first unfinished slot; one slice bounds how
    // stale the death poll above can get.
    for (int p = 0; p < nproc_; ++p) {
      const std::uint32_t cur =
          slots_[p].done.load(std::memory_order_acquire);
      if (cur != g) {
        shm::futex_wait(&slots_[p].done, cur, 1'000'000 /* 1 ms */);
        break;
      }
    }
  }
  stats.join_ns = util::now_ns() - t1;

  if (any_death) {
    std::string site = "pool-parked";
    std::string error_text;
    int exit_code = -1;
    int term_signal = 0;
    std::ostringstream msg;
    if (primary_proc >= 0) {
      site = slots_[primary_proc].site;
      error_text = slots_[primary_proc].error;
      exit_code =
          WIFEXITED(primary_status) ? WEXITSTATUS(primary_status) : -1;
      term_signal =
          WIFSIGNALED(primary_status) ? WTERMSIG(primary_status) : 0;
      msg << "pooled force process " << (primary_proc + 1) << " of "
          << nproc_ << " (pid " << primary_pid << ")";
      if (term_signal != 0) {
        msg << " killed by signal " << term_signal;
      } else {
        msg << " exited with code " << exit_code;
      }
      msg << " at construct site '" << site << "'";
      if (!error_text.empty()) msg << ": " << error_text;
    } else {
      msg << "pooled force team lost processes without a primary status";
    }
    msg << " (pool retired; the next force re-forks a fresh team)";
    teardown_after_death();
    throw ProcessDeathError(msg.str(), primary_proc + 1,
                            static_cast<long>(primary_pid), exit_code,
                            term_signal, site, error_text);
  }
  return stats;
}

void ForkTeamPool::shutdown() {
  if (!alive_) return;
  ctl_->shutdown.store(1, std::memory_order_release);
  ctl_->arm.fetch_add(1, std::memory_order_acq_rel);
  shm::futex_wake(&ctl_->arm, -1);

  const std::int64_t deadline = util::now_ns() + 2'000'000'000;  // 2 s
  bool killed = false;
  int live = nproc_;
  while (live > 0) {
    live = 0;
    for (int p = 0; p < nproc_; ++p) {
      auto& pid = pids_[static_cast<std::size_t>(p)];
      if (pid <= 0) continue;
      int status = 0;
      const pid_t r = ::waitpid(static_cast<pid_t>(pid), &status, WNOHANG);
      if (r == static_cast<pid_t>(pid)) {
        pid = -1;
      } else {
        ++live;
      }
    }
    if (live == 0) break;
    if (!killed && util::now_ns() > deadline) {
      for (int p = 0; p < nproc_; ++p) {
        if (pids_[static_cast<std::size_t>(p)] > 0) {
          ::kill(static_cast<pid_t>(pids_[static_cast<std::size_t>(p)]),
                 SIGKILL);
        }
      }
      killed = true;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  teardown_after_death();
}

#else  // !(__unix__ || __APPLE__)

ForkTeamPool::ForkTeamPool(int nproc) : nproc_(nproc) {
  FORCE_CHECK(false,
              "the os-fork team pool needs a POSIX host (fork/waitpid)");
}

ForkTeamPool::~ForkTeamPool() = default;

SpawnStats ForkTeamPool::run(PrivateSpace*,
                             const std::function<void(int)>&) {
  return {};
}

void ForkTeamPool::spawn(const std::function<void(int)>&) {}
void ForkTeamPool::teardown_after_death() {}
void ForkTeamPool::shutdown() {}

#endif

}  // namespace force::machdep
