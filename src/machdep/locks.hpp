// The paper's generic lock layer (§4.1.3).
//
// The Force implements *all* higher-level synchronization out of four
// machine-dependent macros: define_lock / init_lock / lock / unlock. This
// file is the C++ rendering of that contract. Each 1989 machine contributed
// a different mechanism, all of which are implemented here:
//
//   * software locks  - spinning with test&set        (Sequent, Encore)
//   * ttas locks      - test-and-test&set w/ backoff  (Alliant, refinement)
//   * system locks    - OS cooperates with scheduler  (Cray-2)
//   * combined locks  - spin a while, then block      (Flex/32)
//   * full/empty      - hardware tagged memory cells  (HEP)
//
// IMPORTANT SEMANTICS: a Force lock is a *binary semaphore*, not a mutex.
// The Produce/Consume protocol (paper §4.2) locks E in one process and
// unlocks it in another, which is undefined behaviour for std::mutex; every
// implementation here therefore permits cross-thread release.
//
// All spin loops yield to the OS after a bounded number of iterations so
// that the library stays live on oversubscribed hosts (more Force processes
// than hardware CPUs), which is the normal situation in this reproduction's
// container. The pre-yield spin budget is tunable per machine model.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace force::machdep {

/// Instrumentation shared by all lock types. Counters use relaxed atomics;
/// they are statistics, not synchronization. One LockCounters instance is
/// typically shared by every lock a machine model hands out, giving the
/// benches deterministic per-run lock-operation totals.
struct LockCounters {
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> contended_acquires{0};
  std::atomic<std::uint64_t> spin_iterations{0};
  std::atomic<std::uint64_t> blocking_waits{0};
  std::atomic<std::uint64_t> releases{0};

  void reset() {
    acquires.store(0, std::memory_order_relaxed);
    contended_acquires.store(0, std::memory_order_relaxed);
    spin_iterations.store(0, std::memory_order_relaxed);
    blocking_waits.store(0, std::memory_order_relaxed);
    releases.store(0, std::memory_order_relaxed);
  }
};

/// Snapshot of LockCounters (plain integers, copyable).
struct LockCountersSnapshot {
  std::uint64_t acquires = 0;
  std::uint64_t contended_acquires = 0;
  std::uint64_t spin_iterations = 0;
  std::uint64_t blocking_waits = 0;
  std::uint64_t releases = 0;

  LockCountersSnapshot operator-(const LockCountersSnapshot& rhs) const;
};

LockCountersSnapshot snapshot(const LockCounters& c);

/// Abstract binary-semaphore lock: the define_lock/lock/unlock contract.
/// Constructed in the *unlocked* state (the paper's init_lock).
/// Any thread may call release(), not only the acquirer.
class BasicLock {
 public:
  virtual ~BasicLock() = default;

  /// Blocks until the lock is held by the caller.
  virtual void acquire() = 0;
  /// Non-blocking acquire; returns true on success.
  virtual bool try_acquire() = 0;
  /// Releases the lock; callable from any thread. Releasing an unlocked
  /// lock is a caller bug; implementations detect it where cheap.
  virtual void release() = 0;

  /// Human-readable mechanism name ("tas-spin", "system", ...).
  [[nodiscard]] virtual const char* mechanism() const = 0;
};

/// How a lock is *used* by the construct that owns it. The machine layer
/// does not care (every Force lock is a binary semaphore), but validation
/// layers do: only mutex-role locks participate in lockset and
/// lock-ordering analysis, because semaphore-role locks (Produce/Consume
/// pairs, barrier turnstiles, DOALL gates) are legitimately released by a
/// thread other than the acquirer.
enum class LockRole {
  kMutex,     ///< acquired and released by the same thread, critical-style
  kSemaphore  ///< signalling use; cross-thread release is expected
};

/// Hook interface for lock instrumentation (implemented by the sentry in
/// core/; declared here so machdep stays free of core dependencies).
/// Implementations must be thread-safe: hooks fire concurrently from every
/// thread using an observed lock.
class ObservedLock;
class LockObserver {
 public:
  virtual ~LockObserver() = default;
  /// Fires before a blocking acquire starts; the returned token is handed
  /// to on_acquired() so the observer can pair up wait bookkeeping.
  virtual std::uint64_t on_acquire_begin(const ObservedLock& lock) = 0;
  /// Fires after the lock is held. `wait_token` is the value returned by
  /// on_acquire_begin, or 0 for a successful try_acquire (no wait phase).
  virtual void on_acquired(const ObservedLock& lock,
                           std::uint64_t wait_token) = 0;
  /// Fires just before the underlying release (i.e. while still held).
  virtual void on_released(const ObservedLock& lock) = 0;
};

/// Decorator that reports acquire/release traffic to a LockObserver. The
/// decorated lock keeps the machine lock's semantics and counter traffic
/// exactly (one inner acquire per acquire); the decorator only adds the
/// hook calls. Its own address is the lock's *logical* identity - distinct
/// even when the machine's lock budget multiplexes several logical locks
/// onto one physical lock (striping).
class ObservedLock final : public BasicLock {
 public:
  ObservedLock(std::unique_ptr<BasicLock> inner, LockObserver* observer,
               LockRole role, std::string label);
  void acquire() override;
  bool try_acquire() override;
  void release() override;
  const char* mechanism() const override { return inner_->mechanism(); }

  [[nodiscard]] LockRole role() const { return role_; }
  [[nodiscard]] const std::string& label() const { return label_; }
  /// Stable logical identity for graphs keyed by lock.
  [[nodiscard]] const void* id() const { return this; }

 private:
  std::unique_ptr<BasicLock> inner_;
  LockObserver* observer_;
  LockRole role_;
  std::string label_;
};

/// Lock mechanisms available to machine models.
enum class LockKind {
  kTasSpin,      ///< test&set spin (Sequent/Encore software lock)
  kTtasSpin,     ///< test-and-test&set with exponential backoff (Alliant)
  kTicket,       ///< FIFO ticket lock (modern "native" choice)
  kMcs,          ///< MCS queue lock (modern scalable choice)
  kSystem,       ///< blocking lock via the OS scheduler (Cray-2)
  kCombined,     ///< spin for a budget, then block (Flex/32)
  kHepFullEmpty  ///< full/empty tagged cell used as a lock (HEP)
};

const char* lock_kind_name(LockKind kind);
/// Parses the names produced by lock_kind_name; throws on unknown input.
LockKind lock_kind_from_name(const std::string& name);

/// Spin/backoff tuning shared by spin-flavoured locks.
struct SpinPolicy {
  /// Spin iterations before the first yield to the OS.
  std::uint32_t spins_before_yield = 64;
  /// For kCombined: spin iterations before falling back to blocking.
  std::uint32_t combined_spin_budget = 256;
  /// Max exponential-backoff pause iterations for kTtasSpin.
  std::uint32_t max_backoff = 128;
};

/// Creates a lock of the given mechanism in the unlocked state.
/// `counters` may be null (no instrumentation).
std::unique_ptr<BasicLock> make_lock(LockKind kind, LockCounters* counters,
                                     const SpinPolicy& policy = {});

// ---------------------------------------------------------------------------
// Concrete implementations (exposed for targeted unit tests and benches;
// ordinary code should go through make_lock).
// ---------------------------------------------------------------------------

/// Test&set spin lock: every probe is a read-modify-write, which on the bus-
/// based 1989 machines generated coherence traffic on each spin - the reason
/// the Alliant/modern variants test before setting.
class TasSpinLock final : public BasicLock {
 public:
  explicit TasSpinLock(LockCounters* counters, const SpinPolicy& policy);
  void acquire() override;
  bool try_acquire() override;
  void release() override;
  const char* mechanism() const override { return "tas-spin"; }

 private:
  std::atomic<bool> held_{false};
  LockCounters* counters_;
  SpinPolicy policy_;
};

/// Test-and-test&set with exponential backoff.
class TtasLock final : public BasicLock {
 public:
  explicit TtasLock(LockCounters* counters, const SpinPolicy& policy);
  void acquire() override;
  bool try_acquire() override;
  void release() override;
  const char* mechanism() const override { return "ttas-spin"; }

 private:
  std::atomic<bool> held_{false};
  LockCounters* counters_;
  SpinPolicy policy_;
};

/// FIFO ticket lock. Cross-thread release simply advances now-serving.
class TicketLock final : public BasicLock {
 public:
  explicit TicketLock(LockCounters* counters, const SpinPolicy& policy);
  void acquire() override;
  bool try_acquire() override;
  void release() override;
  const char* mechanism() const override { return "ticket"; }

 private:
  std::atomic<std::uint32_t> next_{0};
  std::atomic<std::uint32_t> serving_{0};
  LockCounters* counters_;
  SpinPolicy policy_;
};

/// MCS queue lock: each waiter spins on its own node, giving O(1) coherence
/// traffic per handoff. Nodes come from an internal freelist so that
/// release() may run on a different thread than acquire() (the releasing
/// thread recycles the *owner's* node, recorded at acquire time).
class McsLock final : public BasicLock {
 public:
  explicit McsLock(LockCounters* counters, const SpinPolicy& policy);
  ~McsLock() override;
  void acquire() override;
  bool try_acquire() override;
  void release() override;
  const char* mechanism() const override { return "mcs"; }

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> ready{false};
    Node* free_next = nullptr;  // freelist linkage, guarded by free_mutex_
  };
  Node* alloc_node();
  void recycle_node(Node* n);

  std::atomic<Node*> tail_{nullptr};
  std::atomic<Node*> owner_{nullptr};  // node of the current holder
  std::mutex free_mutex_;
  Node* free_head_ = nullptr;
  LockCounters* counters_;
  SpinPolicy policy_;
};

/// Blocking "system call" lock: the OS parks waiters (Cray-2 model). No
/// spinning at all, so uncontended cost is high but waiters burn no CPU.
class SystemLock final : public BasicLock {
 public:
  explicit SystemLock(LockCounters* counters);
  void acquire() override;
  bool try_acquire() override;
  void release() override;
  const char* mechanism() const override { return "system"; }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  bool held_ = false;
  LockCounters* counters_;
};

// ---------------------------------------------------------------------------
// DispatchCounter - the capability-gated dispatch fast path (§4.1.3).
//
// Every selfscheduled DOALL claim (and similar central-counter dispatch)
// is an atomic read-modify-write on one shared integer. Machines whose
// hardware exposes atomic RMW directly (MachineSpec::hardware_atomic_rmw)
// run it as a padded std::atomic fetch-add / CAS - no lock, no serialized
// critical section, no lock-holder preemption. Lock-only machines fall
// back to exactly the paper's expansion: the counter lives behind one
// generic lock obtained from the machine model, so every claim remains
// visible to LockCounters and the lock-scarcity experiments.
// ---------------------------------------------------------------------------

/// One dispatch grant: trips [begin, begin+count) of the current episode.
/// count == 0 means the work is exhausted (the claim still counts as a
/// dispatch, matching the paper's one-exhausted-grab-per-process shape).
struct DispatchClaim {
  std::int64_t begin = 0;
  std::int64_t count = 0;
};

/// A monotone trips-claimed counter with two interchangeable engines:
/// a cache-line-padded atomic (hardware RMW machines) or a lock-guarded
/// plain value (everything else). Both engines clamp at `limit`, so the
/// stored value never runs away past the episode's trip count no matter
/// how many exhausted processes keep probing (signed-overflow guard).
class DispatchCounter {
 public:
  /// Lock-free engine (requires hardware_atomic_rmw).
  DispatchCounter();
  /// Lock-guarded engine; `lock` must come from MachineModel::new_lock()
  /// so claims stay on the machine's instrumented, budgeted locks.
  explicit DispatchCounter(std::unique_ptr<BasicLock> lock);

  DispatchCounter(const DispatchCounter&) = delete;
  DispatchCounter& operator=(const DispatchCounter&) = delete;

  [[nodiscard]] bool lock_free() const { return lock_ == nullptr; }

  /// Resets to `v`. NOT thread-safe: callers synchronize externally (the
  /// DOALL entry gate runs this in the first-arriver critical section and
  /// publishes it through the gate-lock release).
  void reset(std::int64_t v);

  /// Current value (diagnostic; one lock pass on the lock engine).
  [[nodiscard]] std::int64_t value() const;

  /// Claims up to `want` trips, never past `limit`. Fast path: a single
  /// fetch-add. A result that lands at or beyond `limit` claims nothing.
  DispatchClaim claim(std::int64_t want, std::int64_t limit);

  /// Guided claim: max(1, remaining / divisor) trips where remaining =
  /// limit - current. Fast path: a CAS loop on the remaining trips (the
  /// claim size depends on the value being replaced, so plain fetch-add
  /// cannot express it). Lock engine: one lock pass, like the paper.
  DispatchClaim claim_fraction(std::int64_t limit, std::int64_t divisor);

 private:
  // Padded so a hot dispatch counter never false-shares with neighbours
  // (or with the cold fields of its owning construct).
  alignas(64) std::atomic<std::int64_t> value_{0};
  char pad_[64 - sizeof(std::atomic<std::int64_t>)];
  std::unique_ptr<BasicLock> lock_;  // null => lock-free engine
};

/// Combined lock (Flex/32): spin for `combined_spin_budget` probes, then
/// fall back to the blocking path. Best of both worlds for mixed hold times.
class CombinedLock final : public BasicLock {
 public:
  explicit CombinedLock(LockCounters* counters, const SpinPolicy& policy);
  void acquire() override;
  bool try_acquire() override;
  void release() override;
  const char* mechanism() const override { return "combined"; }

 private:
  // `held_` is the fast path; the mutex/cv pair only wakes blocked waiters.
  std::atomic<bool> held_{false};
  std::atomic<std::uint32_t> sleepers_{0};
  std::mutex m_;
  std::condition_variable cv_;
  LockCounters* counters_;
  SpinPolicy policy_;
};

}  // namespace force::machdep
